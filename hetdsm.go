// Package hetdsm is an adaptive heterogeneous software distributed shared
// memory system: a Go reproduction of "An Adaptive Heterogeneous Software
// DSM" (Walters, Jiang, Chaudhary; ICPP Workshops 2006).
//
// The system has three layers, re-exported here as one public API:
//
//   - DSD (Distributed Shared Data): a home-based release-consistency DSM
//     whose synchronization primitives — Lock, Unlock, Barrier, Join — map
//     one-to-one onto their Pthreads counterparts. Write detection is
//     page-granular (a software MMU with twin/diff), propagation is
//     object-granular through an architecture-independent index table, and
//     data crosses platforms as CGT-RMR tags plus raw bytes converted
//     "receiver makes right".
//
//   - MigThread: application-level thread state capture and restoration.
//     Workloads are step-structured with their migratable locals in a typed
//     Frame; threads move between heterogeneous virtual platforms under an
//     iso-computing discipline (thread i only lands in skeleton slot i).
//
//   - The adaptive layer: a double-threshold load balancer that sheds
//     threads from overloaded nodes onto idle machines holding matching
//     skeleton slots.
//
// Heterogeneity is modeled with virtual platforms (LinuxX86, SolarisSPARC,
// and 64-bit variants) that differ in byte order, data model and page size
// — the exact ABI surface the paper's Sun Fire V440 / Pentium 4 pairing
// exercised. Everything runs in one process over the in-process transport,
// or genuinely distributed over TCP.
//
// A minimal program:
//
//	gthv := hetdsm.Struct{Name: "GThV_t", Fields: []hetdsm.Field{
//		{Name: "counter", T: hetdsm.Int()},
//	}}
//	home, _ := hetdsm.NewHome(gthv, hetdsm.LinuxX86, 2, hetdsm.DefaultOptions())
//	a, _ := home.LocalThread(0, hetdsm.SolarisSPARC, hetdsm.DefaultOptions())
//	b, _ := home.LocalThread(1, hetdsm.LinuxX86, hetdsm.DefaultOptions())
//	// In goroutine 1:
//	a.Lock(0)
//	v := a.Globals().MustVar("counter")
//	x, _ := v.Int(0)
//	v.SetInt(0, x+1)
//	a.Unlock(0)
//	// goroutine 2 does the same with b; no increment is ever lost,
//	// byte order notwithstanding.
package hetdsm

import (
	"io"

	"hetdsm/internal/apps"
	"hetdsm/internal/checkpoint"
	"hetdsm/internal/dsd"
	"hetdsm/internal/migio"
	"hetdsm/internal/migthread"
	"hetdsm/internal/platform"
	"hetdsm/internal/sched"
	"hetdsm/internal/stats"
	"hetdsm/internal/tag"
	"hetdsm/internal/trace"
	"hetdsm/internal/transport"
)

// --- Virtual platforms ---

// Platform describes one virtual machine's ABI surface: byte order, data
// model, alignment and page size.
type Platform = platform.Platform

// The paper's evaluation platforms and their 64-bit variants.
var (
	// LinuxX86 is the paper's Pentium 4: little-endian ILP32, 4 KiB pages.
	LinuxX86 = platform.LinuxX86
	// SolarisSPARC is the paper's Sun Fire V440: big-endian ILP32, 8 KiB
	// pages.
	SolarisSPARC = platform.SolarisSPARC
	// LinuxX8664 is a little-endian LP64 variant.
	LinuxX8664 = platform.LinuxX8664
	// SolarisSPARC64 is a big-endian LP64 variant.
	SolarisSPARC64 = platform.SolarisSPARC64
)

// PlatformByName resolves a built-in platform from its name.
func PlatformByName(name string) *Platform { return platform.ByName(name) }

// Platforms returns all built-in platforms.
func Platforms() []*Platform { return platform.All() }

// --- Shared-data type language (the GThV structure) ---

// Struct declares a C-like structure; the single global structure GThV is
// always a Struct.
type Struct = tag.Struct

// Field is one Struct member.
type Field = tag.Field

// Type is a platform-independent C data type.
type Type = tag.Type

// Scalar is a logical C scalar type.
type Scalar = tag.Scalar

// Pointer is a C data pointer (transferred via the index table).
type Pointer = tag.Pointer

// Array is a fixed-length C array.
type Array = tag.Array

// Int returns the C int type.
func Int() Scalar { return tag.Int() }

// Long returns the C long type (4 bytes ILP32, 8 bytes LP64).
func Long() Scalar { return tag.Long() }

// LongLong returns the C long long type (8 bytes on every platform).
func LongLong() Scalar { return tag.LongLong() }

// Double returns the C double type.
func Double() Scalar { return tag.Double() }

// Char returns the C char type.
func Char() Scalar { return tag.Char() }

// IntArray returns int[n].
func IntArray(n int) Array { return tag.IntArray(n) }

// DoubleArray returns double[n].
func DoubleArray(n int) Array { return tag.DoubleArray(n) }

// --- DSD: the distributed shared data layer ---

// Options tune the DSD pipeline (coalescing, whole-array transfers, diff
// granularity, segment base address).
type Options = dsd.Options

// DefaultOptions is the paper's configuration.
func DefaultOptions() Options { return dsd.DefaultOptions() }

// Protocol selects how the home propagates modifications.
type Protocol = dsd.Protocol

// The propagation protocols.
const (
	// ProtocolUpdate is the paper's scheme: grants carry the data.
	ProtocolUpdate = dsd.ProtocolUpdate
	// ProtocolInvalidate carries invalidations; reads fetch on demand.
	ProtocolInvalidate = dsd.ProtocolInvalidate
)

// Home is the base node: master copy, distributed mutexes, barriers.
type Home = dsd.Home

// NewHome creates the home node for a GThV type; nthreads is the number of
// worker threads participating in barriers and joins.
func NewHome(gthv Struct, p *Platform, nthreads int, opts Options) (*Home, error) {
	return dsd.NewHome(gthv, p, nthreads, opts)
}

// Thread is a DSD worker: Lock/Unlock/Barrier/Join plus typed access to its
// GThV replica.
type Thread = dsd.Thread

// Globals is the typed view of a replica.
type Globals = dsd.Globals

// Var is a typed handle on one GThV member.
type Var = dsd.Var

// Dial connects a new worker thread to a home over a network.
func Dial(nw Network, addr string, p *Platform, rank int32, gthv Struct, opts Options) (*Thread, error) {
	return dsd.Dial(nw, addr, p, rank, gthv, opts)
}

// --- MigThread: heterogeneous thread migration ---

// Node hosts iso-computing thread slots on one virtual machine.
type Node = migthread.Node

// NewNode creates a node whose threads reach the DSD home at homeAddr.
func NewNode(name string, p *Platform, nw Network, homeAddr string, gthv Struct, opts Options) *Node {
	return migthread.NewNode(name, p, nw, homeAddr, gthv, opts)
}

// Work is a step-structured migratable workload.
type Work = migthread.Work

// Ctx is a running thread's context: DSD endpoint plus local frame.
type Ctx = migthread.Ctx

// Frame holds a thread's migratable locals in platform layout.
type Frame = migthread.Frame

// Role is a thread slot's role (master/local/skeleton/remote/stub).
type Role = migthread.Role

// The Figure 1 roles.
const (
	RoleMaster   = migthread.RoleMaster
	RoleLocal    = migthread.RoleLocal
	RoleSkeleton = migthread.RoleSkeleton
	RoleRemote   = migthread.RoleRemote
	RoleStub     = migthread.RoleStub
	RoleDone     = migthread.RoleDone
)

// MigrationRecord documents one completed migration.
type MigrationRecord = migthread.MigrationRecord

// --- Checkpointing (MigThread's portable checkpoint facility) ---

// Checkpoint is a complete application-level thread state, restorable on
// any platform.
type Checkpoint = checkpoint.Checkpoint

// LoadCheckpoint reads a checkpoint blob from r, verifying its integrity.
func LoadCheckpoint(r io.Reader) (*Checkpoint, error) { return checkpoint.Load(r) }

// DecodeCheckpoint parses a checkpoint blob.
func DecodeCheckpoint(b []byte) (*Checkpoint, error) { return checkpoint.Decode(b) }

// --- Migratable I/O (the paper's future work: file and socket migration) ---

// SharedFS is the cluster-visible in-memory filesystem.
type SharedFS = migio.SharedFS

// NewSharedFS returns an empty shared filesystem.
func NewSharedFS() *SharedFS { return migio.NewSharedFS() }

// FileTable is a thread's migratable open-file descriptor table.
type FileTable = migio.Table

// NewFileTable returns an empty descriptor table over fs.
func NewFileTable(fs *SharedFS) *FileTable { return migio.NewTable(fs) }

// RestoreFileTable rebuilds a captured descriptor table on another
// platform, reopening every file at its recorded offset.
func RestoreFileTable(fs *SharedFS, dest *Platform, srcPlatName, tagStr string, img []byte) (*FileTable, error) {
	return migio.RestoreTable(fs, dest, srcPlatName, tagStr, img)
}

// File access modes.
const (
	ModeRead      = migio.ModeRead
	ModeWrite     = migio.ModeWrite
	ModeReadWrite = migio.ModeReadWrite
)

// SessionServer accepts resumable (migration-surviving) sessions.
type SessionServer = migio.SessionServer

// NewSessionServer listens for resumable sessions at addr.
func NewSessionServer(nw Network, addr string) (*SessionServer, error) {
	return migio.NewSessionServer(nw, addr)
}

// MigSocket is the client end of a resumable session.
type MigSocket = migio.MigSocket

// SocketState is a captured session, re-attachable from any node.
type SocketState = migio.SocketState

// DialSession opens a new resumable session.
func DialSession(nw Network, addr string) (*MigSocket, error) { return migio.DialSession(nw, addr) }

// ResumeSession re-attaches a captured session — socket migration.
func ResumeSession(nw Network, st SocketState) (*MigSocket, error) {
	return migio.ResumeSession(nw, st)
}

// --- Adaptive scheduling ---

// Balancer redistributes threads by the double-threshold policy.
type Balancer = sched.Balancer

// Policy holds balancer thresholds.
type Policy = sched.Policy

// DefaultPolicy sheds above 0.75 load onto nodes below 0.25.
func DefaultPolicy() Policy { return sched.DefaultPolicy() }

// LoadSource reports node loads to the balancer.
type LoadSource = sched.LoadSource

// LoadFunc adapts a function to LoadSource.
type LoadFunc = sched.LoadFunc

// NewBalancer builds a balancer over a set of nodes.
func NewBalancer(policy Policy, loads LoadSource, nodes ...*Node) (*Balancer, error) {
	return sched.NewBalancer(policy, loads, nodes...)
}

// NewScriptedLoad replays per-node load traces.
func NewScriptedLoad(traces map[string][]float64) *sched.ScriptedLoad {
	return sched.NewScriptedLoad(traces)
}

// --- Transports ---

// Network creates listeners and dials peers.
type Network = transport.Network

// Conn is a frame connection between nodes.
type Conn = transport.Conn

// Listener accepts inbound connections.
type Listener = transport.Listener

// NewInproc returns an in-process network (single-process clusters).
func NewInproc() *transport.Inproc { return transport.NewInproc() }

// TCPNetwork returns the TCP network (genuinely distributed clusters).
func TCPNetwork() Network { return transport.TCP{} }

// --- Instrumentation ---

// TraceLog is a ring buffer of protocol events; install one via
// Options.Trace to observe lock grants, releases, barriers, redirects and
// update applications.
type TraceLog = trace.Log

// TraceEvent is one recorded protocol occurrence.
type TraceEvent = trace.Event

// NewTraceLog returns a ring retaining the last capacity events.
func NewTraceLog(capacity int) *TraceLog { return trace.NewLog(capacity) }

// Breakdown accumulates the Eq. 1 data-sharing cost decomposition.
type Breakdown = stats.Breakdown

// Phase labels one Eq. 1 component.
type Phase = stats.Phase

// The Eq. 1 components: Cshare = t_index+t_tag+t_pack+t_unpack+t_conv.
const (
	PhaseIndex  = stats.Index
	PhaseTag    = stats.Tag
	PhasePack   = stats.Pack
	PhaseUnpack = stats.Unpack
	PhaseConv   = stats.Conv
	NumPhases   = stats.NumPhases
)

// --- Evaluation workloads (the paper's benchmarks) ---

// ExperimentConfig describes one paper experiment run.
type ExperimentConfig = apps.Config

// ExperimentResult is one experiment's measurements.
type ExperimentResult = apps.Result

// PlatformPair is a home/remote platform pairing ("LL", "SS", "SL").
type PlatformPair = apps.Pair

// PlatformPairs returns the paper's three pairs.
func PlatformPairs() []PlatformPair { return apps.Pairs() }

// ExtPlatformPairs returns the word-size-heterogeneous extension pairs
// (ILP32 vs LP64) beyond the paper's testbed.
func ExtPlatformPairs() []PlatformPair { return apps.ExtPairs() }

// RunExperiment executes one matmul or LU experiment in the paper's
// three-thread configuration and returns its Cshare breakdown.
func RunExperiment(cfg ExperimentConfig) (*ExperimentResult, error) { return apps.Run(cfg) }
