package indextable

import (
	"math/rand"
	"strings"
	"testing"

	"hetdsm/internal/platform"
	"hetdsm/internal/tag"
	"hetdsm/internal/vmem"
)

// gthv is the Figure 4 structure.
func gthv() tag.Struct {
	const n = 237 * 237
	return tag.Struct{
		Name: "GThV_t",
		Fields: []tag.Field{
			{Name: "GThP", T: tag.Pointer{}},
			{Name: "A", T: tag.IntArray(n)},
			{Name: "B", T: tag.IntArray(n)},
			{Name: "C", T: tag.IntArray(n)},
			{Name: "n", T: tag.Int()},
		},
	}
}

// TestTable1IndexTable reproduces Table 1 of the paper exactly: the index
// table generated from the Figure 4 struct at base 0x40058000 on the Linux
// machine.
func TestTable1IndexTable(t *testing.T) {
	l := tag.MustLayout(gthv(), platform.LinuxX86)
	tb := MustBuild(l, 0x40058000)
	want := []Row{
		{Addr: 0x40058000, Size: 4, Number: -1},
		{Addr: 0x40058004, Size: 0, Number: 0},
		{Addr: 0x40058004, Size: 4, Number: 56169},
		{Addr: 0x4008eda8, Size: 0, Number: 0},
		{Addr: 0x4008eda8, Size: 4, Number: 56169},
		{Addr: 0x400c5b4c, Size: 0, Number: 0},
		{Addr: 0x400c5b4c, Size: 4, Number: 56169},
		{Addr: 0x400fc8f0, Size: 0, Number: 0},
		{Addr: 0x400fc8f0, Size: 4, Number: 1},
		{Addr: 0x400fc8f4, Size: 0, Number: 0},
	}
	rows := tb.Rows()
	if len(rows) != len(want) {
		t.Fatalf("got %d rows, want %d:\n%s", len(rows), len(want), tb.Format())
	}
	for i, w := range want {
		if rows[i] != w {
			t.Errorf("row %d = %+v, want %+v", i, rows[i], w)
		}
	}
}

func TestIndexesArchitectureIndependent(t *testing.T) {
	// Entry indexes must coincide on every platform even when addresses
	// and sizes differ (paper: "the indexes of each element will remain
	// the same").
	base := uint64(0x40058000)
	var tables []*Table
	for _, p := range platform.All() {
		tables = append(tables, MustBuild(tag.MustLayout(gthv(), p), base))
	}
	first := tables[0]
	for _, tb := range tables[1:] {
		if err := Compatible(first, tb); err != nil {
			t.Errorf("tables incompatible: %v", err)
		}
		for i := 0; i < first.Len(); i++ {
			if first.Entry(i).Name != tb.Entry(i).Name {
				t.Errorf("entry %d name %q vs %q", i, first.Entry(i).Name, tb.Entry(i).Name)
			}
		}
	}
	// Pointer entry size differs between ILP32 and LP64 tables.
	t32 := MustBuild(tag.MustLayout(gthv(), platform.LinuxX86), base)
	t64 := MustBuild(tag.MustLayout(gthv(), platform.LinuxX8664), base)
	if t32.Entry(0).ElemSize != 4 || t64.Entry(0).ElemSize != 8 {
		t.Errorf("pointer sizes = %d/%d, want 4/8", t32.Entry(0).ElemSize, t64.Entry(0).ElemSize)
	}
}

func TestEntryLookup(t *testing.T) {
	tb := MustBuild(tag.MustLayout(gthv(), platform.LinuxX86), 0x40058000)
	e, ok := tb.EntryByName("B")
	if !ok {
		t.Fatal("entry B not found")
	}
	if e.Index != 2 || e.Count != 56169 || e.CType != platform.CInt {
		t.Errorf("B = %+v", e)
	}
	if _, ok := tb.EntryByName("zzz"); ok {
		t.Error("bogus name found")
	}
}

func TestMapOffset(t *testing.T) {
	tb := MustBuild(tag.MustLayout(gthv(), platform.LinuxX86), 0x40058000)
	// Offset 4 is A[0]; offset 4+4*10 is A[10].
	entry, elem, ok := tb.MapOffset(4 + 4*10)
	if !ok || entry != 1 || elem != 10 {
		t.Errorf("MapOffset(A[10]) = %d,%d,%v", entry, elem, ok)
	}
	// Mid-element offsets map to the containing element.
	entry, elem, ok = tb.MapOffset(4 + 4*10 + 3)
	if !ok || entry != 1 || elem != 10 {
		t.Errorf("MapOffset(A[10]+3) = %d,%d,%v", entry, elem, ok)
	}
	// Before everything.
	if _, _, ok := tb.MapOffset(-1); ok {
		t.Error("negative offset mapped")
	}
	// Past the end.
	if _, _, ok := tb.MapOffset(tb.Size() + 100); ok {
		t.Error("out-of-range offset mapped")
	}
}

func TestMapAddrAndTranslator(t *testing.T) {
	lx := MustBuild(tag.MustLayout(gthv(), platform.LinuxX86), 0x40058000)
	sp := MustBuild(tag.MustLayout(gthv(), platform.SolarisSPARC), 0x80000000)
	// A[5] on sparc -> same element on linux.
	spA, _ := sp.EntryByName("A")
	lxA, _ := lx.EntryByName("A")
	remote := spA.Addr + uint64(5*spA.ElemSize)
	tr := lx.Translator(sp)
	local, ok := tr.Translate(remote)
	if !ok {
		t.Fatal("translate failed")
	}
	if want := lxA.Addr + uint64(5*lxA.ElemSize); local != want {
		t.Errorf("translated = %#x, want %#x", local, want)
	}
	if _, ok := tr.Translate(0xdeadbeef); ok {
		t.Error("address outside remote table translated")
	}
}

func TestMapRangesWholeElementWidening(t *testing.T) {
	tb := MustBuild(tag.MustLayout(gthv(), platform.LinuxX86), 0x40058000)
	// One byte inside A[7] dirties the whole element.
	spans := tb.MapRanges([]vmem.Range{{Start: 4 + 4*7 + 2, End: 4 + 4*7 + 3}})
	if len(spans) != 1 || spans[0] != (Span{Entry: 1, First: 7, Count: 1}) {
		t.Errorf("spans = %v", spans)
	}
}

func TestMapRangesCoalescing(t *testing.T) {
	tb := MustBuild(tag.MustLayout(gthv(), platform.LinuxX86), 0x40058000)
	// A contiguous byte range across A[10..19] coalesces to one span.
	spans := tb.MapRanges([]vmem.Range{{Start: 4 + 4*10, End: 4 + 4*20}})
	if len(spans) != 1 || spans[0] != (Span{Entry: 1, First: 10, Count: 10}) {
		t.Fatalf("spans = %v", spans)
	}
	if got := tb.SpanTag(spans[0]).String(); got != "(4,10)" {
		t.Errorf("span tag = %q, want (4,10)", got)
	}
	// Two adjacent ranges also merge.
	spans = tb.MapRanges([]vmem.Range{
		{Start: 4 + 4*10, End: 4 + 4*15},
		{Start: 4 + 4*15, End: 4 + 4*20},
	})
	if len(spans) != 1 || spans[0].Count != 10 {
		t.Errorf("adjacent ranges did not merge: %v", spans)
	}
	// Disjoint ranges stay separate.
	spans = tb.MapRanges([]vmem.Range{
		{Start: 4 + 4*10, End: 4 + 4*11},
		{Start: 4 + 4*100, End: 4 + 4*101},
	})
	if len(spans) != 2 {
		t.Errorf("disjoint ranges merged: %v", spans)
	}
}

func TestMapRangesNoCoalesce(t *testing.T) {
	tb := MustBuild(tag.MustLayout(gthv(), platform.LinuxX86), 0x40058000)
	spans := tb.MapRangesNoCoalesce([]vmem.Range{{Start: 4 + 4*10, End: 4 + 4*20}})
	if len(spans) != 10 {
		t.Fatalf("got %d spans, want 10", len(spans))
	}
	for i, s := range spans {
		if s != (Span{Entry: 1, First: 10 + i, Count: 1}) {
			t.Errorf("span %d = %v", i, s)
		}
	}
}

func TestMapRangesSpanningEntries(t *testing.T) {
	tb := MustBuild(tag.MustLayout(gthv(), platform.LinuxX86), 0x40058000)
	aEnd := 4 + 4*56169
	// A range covering the last element of A and the first two of B.
	spans := tb.MapRanges([]vmem.Range{{Start: aEnd - 4, End: aEnd + 8}})
	want := []Span{
		{Entry: 1, First: 56168, Count: 1},
		{Entry: 2, First: 0, Count: 2},
	}
	if len(spans) != 2 || spans[0] != want[0] || spans[1] != want[1] {
		t.Errorf("spans = %v, want %v", spans, want)
	}
}

func TestMapRangesSkipsPadding(t *testing.T) {
	// struct { char c; int x; } has 3 bytes of padding after c.
	s := tag.Struct{Name: "p", Fields: []tag.Field{
		{Name: "c", T: tag.Char()},
		{Name: "x", T: tag.Int()},
	}}
	tb := MustBuild(tag.MustLayout(s, platform.LinuxX86), 0x1000)
	// Dirty the padding plus x.
	spans := tb.MapRanges([]vmem.Range{{Start: 1, End: 8}})
	if len(spans) != 1 || spans[0] != (Span{Entry: 1, First: 0, Count: 1}) {
		t.Errorf("spans = %v", spans)
	}
	// Purely padding: nothing.
	if spans := tb.MapRanges([]vmem.Range{{Start: 2, End: 3}}); len(spans) != 0 {
		t.Errorf("padding-only range produced %v", spans)
	}
}

func TestNestedStructFlattening(t *testing.T) {
	inner := tag.Struct{Name: "in", Fields: []tag.Field{
		{Name: "a", T: tag.Int()},
		{Name: "b", T: tag.Double()},
	}}
	outer := tag.Struct{Name: "out", Fields: []tag.Field{
		{Name: "hdr", T: inner},
		{Name: "n", T: tag.Int()},
	}}
	tb := MustBuild(tag.MustLayout(outer, platform.LinuxX86), 0x1000)
	if tb.Len() != 3 {
		t.Fatalf("got %d entries, want 3:\n%s", tb.Len(), tb.Format())
	}
	if e, _ := tb.EntryByName("hdr.b"); e.CType != platform.CDouble {
		t.Errorf("hdr.b = %+v", e)
	}
}

func TestArrayOfStructFlattening(t *testing.T) {
	inner := tag.Struct{Name: "pt", Fields: []tag.Field{
		{Name: "x", T: tag.Int()},
		{Name: "y", T: tag.Int()},
	}}
	outer := tag.Struct{Name: "out", Fields: []tag.Field{
		{Name: "pts", T: tag.Array{Elem: inner, N: 3}},
	}}
	tb := MustBuild(tag.MustLayout(outer, platform.LinuxX86), 0x1000)
	if tb.Len() != 6 {
		t.Fatalf("got %d entries, want 6", tb.Len())
	}
	if e, ok := tb.EntryByName("pts[2].y"); !ok || e.Offset != 20 {
		t.Errorf("pts[2].y = %+v ok=%v", e, ok)
	}
}

func TestBuildRejectsNonStruct(t *testing.T) {
	if _, err := Build(tag.MustLayout(tag.Int(), platform.LinuxX86), 0); err == nil {
		t.Error("non-struct GThV must fail")
	}
}

func TestFormatShape(t *testing.T) {
	tb := MustBuild(tag.MustLayout(gthv(), platform.LinuxX86), 0x40058000)
	out := tb.Format()
	if !strings.Contains(out, "0x40058000") || !strings.Contains(out, "56169") {
		t.Errorf("Format output missing expected cells:\n%s", out)
	}
}

func TestMergeSpans(t *testing.T) {
	in := []Span{
		{Entry: 1, First: 20, Count: 5},
		{Entry: 0, First: 0, Count: 1},
		{Entry: 1, First: 10, Count: 10}, // adjacent to the first
		{Entry: 1, First: 22, Count: 2},  // contained
		{Entry: 2, First: 0, Count: 3},
	}
	got := MergeSpans(in)
	want := []Span{
		{Entry: 0, First: 0, Count: 1},
		{Entry: 1, First: 10, Count: 15},
		{Entry: 2, First: 0, Count: 3},
	}
	if len(got) != len(want) {
		t.Fatalf("MergeSpans = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("span %d = %v, want %v", i, got[i], want[i])
		}
	}
	// Input order preserved: MergeSpans must not mutate its argument.
	if in[0] != (Span{Entry: 1, First: 20, Count: 5}) {
		t.Error("MergeSpans mutated its input")
	}
	if out := MergeSpans(nil); len(out) != 0 {
		t.Errorf("MergeSpans(nil) = %v", out)
	}
}

// Property: MapOffset is the inverse of entry/element arithmetic for every
// element of a random flat struct, on every platform.
func TestQuickMapOffsetInverse(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for trial := 0; trial < 50; trial++ {
		nf := 1 + r.Intn(6)
		fields := make([]tag.Field, nf)
		for i := range fields {
			var ft tag.Type
			switch r.Intn(4) {
			case 0:
				ft = tag.Char()
			case 1:
				ft = tag.Int()
			case 2:
				ft = tag.Pointer{}
			default:
				ft = tag.IntArray(1 + r.Intn(50))
			}
			fields[i] = tag.Field{Name: string(rune('a' + i)), T: ft}
		}
		s := tag.Struct{Name: "s", Fields: fields}
		for _, p := range platform.All() {
			tb := MustBuild(tag.MustLayout(s, p), 0x10000)
			for i := 0; i < tb.Len(); i++ {
				e := tb.Entry(i)
				for elem := 0; elem < e.Count; elem++ {
					off := e.Offset + elem*e.ElemSize
					gi, ge, ok := tb.MapOffset(off)
					if !ok || gi != i || ge != elem {
						t.Fatalf("%s: MapOffset(%d) = %d,%d,%v want %d,%d",
							p, off, gi, ge, ok, i, elem)
					}
				}
			}
		}
	}
}

// Property: coalesced and non-coalesced mappings cover exactly the same
// element sets.
func TestQuickCoalesceEquivalence(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	tb := MustBuild(tag.MustLayout(gthv(), platform.LinuxX86), 0x40058000)
	for trial := 0; trial < 100; trial++ {
		var ranges []vmem.Range
		for i := 0; i < 1+r.Intn(5); i++ {
			start := r.Intn(tb.Size() - 64)
			ranges = append(ranges, vmem.Range{Start: start, End: start + 1 + r.Intn(63)})
		}
		cover := func(spans []Span) map[[2]int]bool {
			m := make(map[[2]int]bool)
			for _, s := range spans {
				for k := 0; k < s.Count; k++ {
					m[[2]int{s.Entry, s.First + k}] = true
				}
			}
			return m
		}
		a := cover(tb.MapRanges(ranges))
		b := cover(tb.MapRangesNoCoalesce(ranges))
		if len(a) != len(b) {
			t.Fatalf("coverage sizes differ: %d vs %d (ranges %v)", len(a), len(b), ranges)
		}
		for k := range a {
			if !b[k] {
				t.Fatalf("element %v missing from non-coalesced cover", k)
			}
		}
	}
}

func TestIntersectSpans(t *testing.T) {
	spans := []Span{
		{Entry: 1, First: 10, Count: 10}, // [10,20)
		{Entry: 1, First: 30, Count: 5},  // [30,35)
		{Entry: 2, First: 0, Count: 100},
	}
	got := IntersectSpans(spans, Span{Entry: 1, First: 15, Count: 17}) // [15,32)
	want := []Span{{Entry: 1, First: 15, Count: 5}, {Entry: 1, First: 30, Count: 2}}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("part %d = %v, want %v", i, got[i], want[i])
		}
	}
	if out := IntersectSpans(spans, Span{Entry: 3, First: 0, Count: 10}); len(out) != 0 {
		t.Errorf("foreign entry intersected: %v", out)
	}
	if out := IntersectSpans(spans, Span{Entry: 1, First: 20, Count: 10}); len(out) != 0 {
		t.Errorf("gap intersected: %v", out)
	}
}

func TestSubtractSpan(t *testing.T) {
	spans := []Span{
		{Entry: 1, First: 10, Count: 10}, // [10,20)
		{Entry: 2, First: 0, Count: 4},
	}
	// Carve a hole in the middle.
	got := SubtractSpan(spans, Span{Entry: 1, First: 13, Count: 4}) // remove [13,17)
	want := []Span{
		{Entry: 1, First: 10, Count: 3},
		{Entry: 1, First: 17, Count: 3},
		{Entry: 2, First: 0, Count: 4},
	}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("part %d = %v, want %v", i, got[i], want[i])
		}
	}
	// Remove everything.
	got = SubtractSpan(got, Span{Entry: 1, First: 0, Count: 100})
	if len(got) != 1 || got[0].Entry != 2 {
		t.Errorf("after full removal: %v", got)
	}
	// Removing from an unrelated entry is a no-op.
	got2 := SubtractSpan(spans, Span{Entry: 9, First: 0, Count: 5})
	if len(got2) != len(spans) {
		t.Errorf("no-op subtraction changed spans: %v", got2)
	}
}

// Property: subtract(s) then intersect(s) is empty, and intersect + subtract
// partition the original coverage.
func TestQuickSubtractIntersectPartition(t *testing.T) {
	r := rand.New(rand.NewSource(77))
	for trial := 0; trial < 200; trial++ {
		var spans []Span
		for i := 0; i < 1+r.Intn(5); i++ {
			spans = append(spans, Span{Entry: r.Intn(3), First: r.Intn(100), Count: 1 + r.Intn(30)})
		}
		spans = MergeSpans(spans)
		s := Span{Entry: r.Intn(3), First: r.Intn(100), Count: 1 + r.Intn(40)}
		inter := IntersectSpans(spans, s)
		rest := SubtractSpan(spans, s)
		if again := IntersectSpans(rest, s); len(again) != 0 {
			t.Fatalf("residual overlap after subtraction: %v", again)
		}
		cover := func(list []Span) map[[2]int]bool {
			m := map[[2]int]bool{}
			for _, sp := range list {
				for k := 0; k < sp.Count; k++ {
					m[[2]int{sp.Entry, sp.First + k}] = true
				}
			}
			return m
		}
		orig := cover(spans)
		parts := cover(inter)
		for k := range cover(rest) {
			parts[k] = true
		}
		if len(orig) != len(parts) {
			t.Fatalf("partition lost elements: %d vs %d", len(orig), len(parts))
		}
		for k := range orig {
			if !parts[k] {
				t.Fatalf("element %v lost", k)
			}
		}
	}
}
