package indextable

import (
	"testing"

	"hetdsm/internal/platform"
	"hetdsm/internal/tag"
	"hetdsm/internal/vmem"
)

// Index-table costs: mapping diffs to spans is the second half of t_index;
// building the table is a one-time start-up cost.

func BenchmarkBuildGThV(b *testing.B) {
	l := tag.MustLayout(gthv(), platform.LinuxX86)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Build(l, 0x40058000); err != nil {
			b.Fatal(err)
		}
	}
}

func benchMapRanges(b *testing.B, coalesce bool, nRanges int) {
	tb := MustBuild(tag.MustLayout(gthv(), platform.LinuxX86), 0x40058000)
	var ranges []vmem.Range
	// Scattered 64-byte dirty runs through the A array.
	for i := 0; i < nRanges; i++ {
		start := 4 + (i*733)%(4*56169-64)
		ranges = append(ranges, vmem.Range{Start: start, End: start + 64})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var spans []Span
		if coalesce {
			spans = tb.MapRanges(ranges)
		} else {
			spans = tb.MapRangesNoCoalesce(ranges)
		}
		if len(spans) == 0 {
			b.Fatal("no spans")
		}
	}
}

func BenchmarkMapRangesCoalesced100(b *testing.B)   { benchMapRanges(b, true, 100) }
func BenchmarkMapRangesCoalesced1000(b *testing.B)  { benchMapRanges(b, true, 1000) }
func BenchmarkMapRangesPerElement100(b *testing.B)  { benchMapRanges(b, false, 100) }
func BenchmarkMapRangesPerElement1000(b *testing.B) { benchMapRanges(b, false, 1000) }

func BenchmarkMapOffset(b *testing.B) {
	tb := MustBuild(tag.MustLayout(gthv(), platform.LinuxX86), 0x40058000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, ok := tb.MapOffset(4 + (i*733)%(12*56169)); !ok {
			b.Fatal("unmapped")
		}
	}
}

func BenchmarkSpanTag(b *testing.B) {
	tb := MustBuild(tag.MustLayout(gthv(), platform.LinuxX86), 0x40058000)
	s := Span{Entry: 1, First: 100, Count: 5000}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if str := tb.SpanTag(s).String(); len(str) == 0 {
			b.Fatal("empty tag")
		}
	}
}

func BenchmarkMergeSpans(b *testing.B) {
	var spans []Span
	for i := 0; i < 1000; i++ {
		spans = append(spans, Span{Entry: i % 4, First: (i * 37) % 50000, Count: 10})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if out := MergeSpans(spans); len(out) == 0 {
			b.Fatal("no spans")
		}
	}
}
