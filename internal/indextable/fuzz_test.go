package indextable

import (
	"testing"

	"hetdsm/internal/platform"
	"hetdsm/internal/tag"
	"hetdsm/internal/vmem"
)

// decodeShape turns an arbitrary byte string into a GThV struct type: each
// byte pair picks a field kind and a count, so the fuzzer explores layouts
// (scalar runs, nested structs, pointer fields, long arrays) rather than
// raw bytes. Returns nil when the input encodes no fields.
func decodeShape(data []byte) *tag.Struct {
	var fields []tag.Field
	name := 'a'
	for i := 0; i+1 < len(data) && len(fields) < 16; i += 2 {
		kind, n := data[i]%8, int(data[i+1]%64)+1
		var ft tag.Type
		switch kind {
		case 0:
			ft = tag.Char()
		case 1:
			ft = tag.Int()
		case 2:
			ft = tag.Long()
		case 3:
			ft = tag.Double()
		case 4:
			ft = tag.Pointer{}
		case 5:
			ft = tag.IntArray(n)
		case 6:
			ft = tag.DoubleArray(n)
		default:
			// Nested struct of a char and an int array — the shape that
			// produces interior padding on aligned ABIs.
			ft = tag.Struct{Name: "in", Fields: []tag.Field{
				{Name: "c", T: tag.Char()},
				{Name: "v", T: tag.IntArray(n%8 + 1)},
			}}
		}
		fields = append(fields, tag.Field{Name: string(name), T: ft})
		name++
	}
	if len(fields) == 0 {
		return nil
	}
	return &tag.Struct{Name: "GThV_t", Fields: fields}
}

// FuzzIndexTable builds the index table for arbitrary GThV shapes on every
// platform and checks the invariants the DSM update path rests on:
//
//   - entry indexes are architecture independent (tables built on any two
//     platforms are Compatible);
//   - MapOffset inverts addEntry for every element, and padding bytes map
//     to no element;
//   - MapRanges covers exactly the elements of MapRangesNoCoalesce, stays
//     in bounds, and its spans survive a MergeSpans round trip;
//   - SpanOffset/SpanBytes address storage inside the segment.
//
// The corpus seeds encode the unit-test fixtures: the paper's Table 1
// struct, the padded nested struct, and an array-of-struct shape.
func FuzzIndexTable(f *testing.F) {
	f.Add([]byte{4, 0, 5, 36, 5, 36, 5, 36, 1, 0}, uint16(0), uint16(64))   // Table 1: ptr + 3 int arrays + int
	f.Add([]byte{0, 0, 1, 0, 3, 0}, uint16(1), uint16(9))                   // char/int/double padding shape
	f.Add([]byte{7, 3, 7, 3}, uint16(2), uint16(31))                        // array-of-struct flattening
	f.Add([]byte{4, 0, 4, 0, 0, 0}, uint16(0), uint16(1))                   // pointers + trailing char
	f.Add([]byte{5, 63, 6, 63, 2, 0, 255, 255}, uint16(100), uint16(10000)) // long arrays, wild range
	f.Fuzz(func(t *testing.T, data []byte, start, length uint16) {
		shape := decodeShape(data)
		if shape == nil {
			return
		}
		const base = 0x40058000
		tables := make([]*Table, 0, 4)
		for _, p := range platform.All() {
			l, err := tag.NewLayout(*shape, p)
			if err != nil {
				return // shape rejected uniformly; nothing to check
			}
			tb, err := Build(l, base)
			if err != nil {
				t.Fatalf("%s: Build failed on a valid layout: %v", p, err)
			}
			tables = append(tables, tb)

			// MapOffset must invert element addressing, exactly.
			for i := 0; i < tb.Len(); i++ {
				e := tb.Entry(i)
				for elem := 0; elem < e.Count; elem++ {
					gi, ge, ok := tb.MapOffset(e.Offset + elem*e.ElemSize)
					if !ok || gi != i || ge != elem {
						t.Fatalf("%s: MapOffset(%d) = (%d,%d,%v), want (%d,%d)",
							p, e.Offset+elem*e.ElemSize, gi, ge, ok, i, elem)
					}
				}
			}

			// A dirty byte range maps to in-bounds spans covering the same
			// element set coalesced or not.
			lo := int(start) % tb.Size()
			hi := lo + int(length)%(tb.Size()-lo+1)
			ranges := []vmem.Range{{Start: lo, End: hi}}
			spans := tb.MapRanges(ranges)
			elements := func(spans []Span) map[[2]int]bool {
				set := make(map[[2]int]bool)
				for _, s := range spans {
					e := tb.Entry(s.Entry)
					if s.First < 0 || s.Count < 1 || s.First+s.Count > e.Count {
						t.Fatalf("%s: span %+v out of bounds for entry %+v", p, s, e)
					}
					if off := tb.SpanOffset(s); off < 0 || off+tb.SpanBytes(s) > tb.Size() {
						t.Fatalf("%s: span %+v storage [%d,%d) outside segment of %d",
							p, s, off, off+tb.SpanBytes(s), tb.Size())
					}
					for i := 0; i < s.Count; i++ {
						set[[2]int{s.Entry, s.First + i}] = true
					}
				}
				return set
			}
			cov := elements(spans)
			single := elements(tb.MapRangesNoCoalesce(ranges))
			if len(cov) != len(single) {
				t.Fatalf("%s: coalesced covers %d elements, non-coalesced %d", p, len(cov), len(single))
			}
			for k := range single {
				if !cov[k] {
					t.Fatalf("%s: element %v lost by coalescing", p, k)
				}
			}
			if merged := MergeSpans(spans); len(elements(merged)) != len(cov) {
				t.Fatalf("%s: MergeSpans changed coverage", p)
			}
		}
		// Entry indexes are the cross-platform contract.
		for _, tb := range tables[1:] {
			if err := Compatible(tables[0], tb); err != nil {
				t.Fatalf("same shape incompatible across platforms: %v", err)
			}
		}
	})
}
