// Package indextable implements the application-level index table of paper
// Section 4 (Figure 4 / Table 1).
//
// The MigThread preprocessor collects all globals into one structure, GThV.
// At start-up each node builds a table with one row per GThV element (plus
// the interleaved padding rows Table 1 shows): base address, element size
// on this machine, and element count — negative for pointers. The table is
// architecture independent in the sense that element *indexes* coincide on
// every platform even when sizes and addresses differ, which is what lets a
// page-level diff be abstracted to a portable (index, element-range) form
// and re-materialized at a heterogeneous receiver.
package indextable

import (
	"fmt"
	"sort"
	"strings"

	"hetdsm/internal/platform"
	"hetdsm/internal/tag"
	"hetdsm/internal/vmem"
)

// Row is one printable row of the table, in exactly the shape of the
// paper's Table 1: element rows alternate with padding rows (Size and
// Number zero, address = end of the previous element).
type Row struct {
	// Addr is the virtual base address of the element (or of the padding
	// slot).
	Addr uint64
	// Size is the element size in bytes on this platform; 0 on padding
	// rows (non-empty padding keeps Size 0 and records its length in
	// Pad, matching the (m,0) tag form when rendered).
	Size int
	// Number is the element count, negative for pointers, 0 for padding.
	Number int
	// Pad is the padding length for padding rows.
	Pad int
}

// Entry is one addressable element of GThV: the unit updates are expressed
// in. Entry indexes are identical on every platform for the same GThV type.
type Entry struct {
	// Index is the entry's position, shared across platforms.
	Index int
	// Name is the dotted member path, e.g. "A" or "hdr.len".
	Name string
	// Offset is the byte offset of the element inside the local segment.
	Offset int
	// Addr is the local virtual address (segment base + Offset).
	Addr uint64
	// ElemSize is the per-element size on this platform.
	ElemSize int
	// Count is the number of consecutive elements (1 for scalars).
	Count int
	// CType is the logical C type of the elements; this is what gives
	// the receiver enough information to sign-extend or float-convert.
	CType platform.CType
	// Pointer marks pointer elements (Number column is negative).
	Pointer bool
}

// Bytes returns the total storage of the entry on this platform.
func (e Entry) Bytes() int { return e.ElemSize * e.Count }

// Table is the index table for one node's GThV segment.
type Table struct {
	platform *platform.Platform
	base     uint64
	size     int
	entries  []Entry
	rows     []Row
}

// Build flattens the GThV layout into a table rooted at the virtual base
// address. The layout must be a struct (GThV always is). Nested structs
// flatten recursively; arrays of scalars become single multi-element
// entries exactly as in Table 1; arrays of aggregates flatten per element.
func Build(l *tag.Layout, base uint64) (*Table, error) {
	if l.Fields == nil {
		return nil, fmt.Errorf("indextable: GThV layout must be a struct, got %s", tag.TypeString(l.Type))
	}
	t := &Table{platform: l.Platform, base: base, size: l.Size}
	if err := t.flattenStruct(l, "", 0); err != nil {
		return nil, err
	}
	if len(t.entries) == 0 {
		return nil, fmt.Errorf("indextable: GThV has no elements")
	}
	return t, nil
}

// MustBuild is Build that panics on error.
func MustBuild(l *tag.Layout, base uint64) *Table {
	t, err := Build(l, base)
	if err != nil {
		panic(err)
	}
	return t
}

func (t *Table) flattenStruct(l *tag.Layout, prefix string, off int) error {
	for _, f := range l.Fields {
		name := f.Name
		if prefix != "" {
			name = prefix + "." + name
		}
		if err := t.flattenItem(f.Layout, name, off+f.Offset); err != nil {
			return err
		}
		// The padding row after the element, as in Table 1. Its address
		// is the end of the element just emitted.
		end := off + f.Offset + f.Layout.Size
		t.rows = append(t.rows, Row{Addr: t.base + uint64(end), Pad: f.PadAfter})
	}
	return nil
}

func (t *Table) flattenItem(l *tag.Layout, name string, off int) error {
	switch {
	case l.Fields != nil:
		return t.flattenNested(l, name, off)
	case l.Elem != nil:
		el := l.Elem
		if el.IsScalar() {
			t.addEntry(el, name, off, l.N)
			return nil
		}
		for i := 0; i < l.N; i++ {
			if err := t.flattenItem(el, fmt.Sprintf("%s[%d]", name, i), off+i*el.Size); err != nil {
				return err
			}
		}
		return nil
	default:
		t.addEntry(l, name, off, 1)
		return nil
	}
}

// flattenNested handles a struct used as a member: its fields become
// entries (and padding rows) of the outer table.
func (t *Table) flattenNested(l *tag.Layout, prefix string, off int) error {
	for _, f := range l.Fields {
		if err := t.flattenItem(f.Layout, prefix+"."+f.Name, off+f.Offset); err != nil {
			return err
		}
		end := off + f.Offset + f.Layout.Size
		t.rows = append(t.rows, Row{Addr: t.base + uint64(end), Pad: f.PadAfter})
	}
	return nil
}

func (t *Table) addEntry(leaf *tag.Layout, name string, off, count int) {
	ct := leafCType(leaf)
	e := Entry{
		Index:    len(t.entries),
		Name:     name,
		Offset:   off,
		Addr:     t.base + uint64(off),
		ElemSize: leaf.Size,
		Count:    count,
		CType:    ct,
		Pointer:  ct == platform.CPtr,
	}
	t.entries = append(t.entries, e)
	num := count
	if e.Pointer {
		num = -count
	}
	t.rows = append(t.rows, Row{Addr: e.Addr, Size: e.ElemSize, Number: num})
}

func leafCType(l *tag.Layout) platform.CType {
	switch typ := l.Type.(type) {
	case tag.Scalar:
		return typ.T
	case tag.Pointer:
		return platform.CPtr
	default:
		panic(fmt.Sprintf("indextable: %s is not a leaf", tag.TypeString(l.Type)))
	}
}

// Platform returns the platform the table was built for.
func (t *Table) Platform() *platform.Platform { return t.platform }

// Base returns the virtual base address of the GThV segment.
func (t *Table) Base() uint64 { return t.base }

// Size returns the GThV storage size on this platform.
func (t *Table) Size() int { return t.size }

// Len returns the number of element entries.
func (t *Table) Len() int { return len(t.entries) }

// Entry returns element entry i.
func (t *Table) Entry(i int) Entry { return t.entries[i] }

// Entries returns all element entries in index order. The slice is shared;
// callers must not mutate it.
func (t *Table) Entries() []Entry { return t.entries }

// Rows returns the printable table including padding rows, in Table 1's
// format and order.
func (t *Table) Rows() []Row { return t.rows }

// EntryByName finds an entry by its dotted member path.
func (t *Table) EntryByName(name string) (Entry, bool) {
	for _, e := range t.entries {
		if e.Name == name {
			return e, true
		}
	}
	return Entry{}, false
}

// MapOffset maps a segment byte offset to (entry index, element index
// within the entry). ok is false when the offset falls into padding or
// outside the segment.
func (t *Table) MapOffset(off int) (entry, elem int, ok bool) {
	// Entries are sorted by Offset (flattening walks storage order), so
	// binary search for the last entry with Offset <= off.
	i := sort.Search(len(t.entries), func(i int) bool { return t.entries[i].Offset > off }) - 1
	if i < 0 {
		return 0, 0, false
	}
	e := t.entries[i]
	rel := off - e.Offset
	if rel >= e.Bytes() {
		return 0, 0, false // padding gap after entry i
	}
	return i, rel / e.ElemSize, true
}

// MapAddr maps a local virtual address like MapOffset.
func (t *Table) MapAddr(addr uint64) (entry, elem int, ok bool) {
	if addr < t.base {
		return 0, 0, false
	}
	return t.MapOffset(int(addr - t.base))
}

// Span is a run of whole consecutive elements within one entry — the
// portable form a page diff is abstracted to, and the unit a CGT-RMR tag
// describes. Spans are the "many indexes distilled into a single tag" of
// paper Section 5.
type Span struct {
	// Entry is the index-table entry the run belongs to.
	Entry int
	// First is the index of the first modified element within the entry.
	First int
	// Count is the number of consecutive modified elements.
	Count int
}

// MapRanges converts raw dirty byte ranges (segment offsets, as produced by
// vmem.Segment.Diff) into coalesced element spans. Bytes that fall into
// padding are dropped — padding never carries data. A byte range that
// partially covers an element widens to the whole element: the element is
// the atomic update unit.
//
// This is the t_index stage of Eq. 1 (with coalescing, the default the
// paper describes; see MapRangesNoCoalesce for the ablation).
func (t *Table) MapRanges(ranges []vmem.Range) []Span {
	return t.mapRanges(ranges, true)
}

// MapRangesNoCoalesce maps each modified element to its own single-element
// span, the naive scheme the paper's coalescing optimization replaces.
func (t *Table) MapRangesNoCoalesce(ranges []vmem.Range) []Span {
	return t.mapRanges(ranges, false)
}

func (t *Table) mapRanges(ranges []vmem.Range, coalesce bool) []Span {
	// Normalize: sort by start and merge overlaps so the single forward
	// sweep below is correct for arbitrary caller input. vmem.Diff output
	// is already sorted; this protects other producers.
	sorted := make([]vmem.Range, len(ranges))
	copy(sorted, ranges)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Start < sorted[j].Start })
	merged := sorted[:0]
	for _, r := range sorted {
		if r.Len() <= 0 {
			continue
		}
		if n := len(merged); n > 0 && merged[n-1].End >= r.Start {
			if r.End > merged[n-1].End {
				merged[n-1].End = r.End
			}
			continue
		}
		merged = append(merged, r)
	}
	ranges = merged

	var out []Span
	emit := func(entry, first, count int) {
		if coalesce && len(out) > 0 {
			last := &out[len(out)-1]
			if last.Entry == entry && last.First+last.Count >= first {
				// Merge overlapping/adjacent runs in the same entry.
				end := first + count
				if lastEnd := last.First + last.Count; lastEnd > end {
					end = lastEnd
				}
				last.Count = end - last.First
				return
			}
		}
		if coalesce {
			out = append(out, Span{Entry: entry, First: first, Count: count})
			return
		}
		for i := 0; i < count; i++ {
			out = append(out, Span{Entry: entry, First: first + i, Count: 1})
		}
	}
	for _, r := range ranges {
		off := r.Start
		for off < r.End {
			entry, elem, ok := t.MapOffset(off)
			if !ok {
				// Padding byte: skip forward to the next entry start.
				off = t.nextEntryStart(off, r.End)
				continue
			}
			e := t.entries[entry]
			// Cover elements from elem up to the element containing
			// the last byte of the overlap with this entry.
			entryEnd := e.Offset + e.Bytes()
			end := r.End
			if entryEnd < end {
				end = entryEnd
			}
			lastElem := (end - 1 - e.Offset) / e.ElemSize
			emit(entry, elem, lastElem-elem+1)
			off = entryEnd
		}
	}
	return out
}

// nextEntryStart returns the offset of the first entry starting after off,
// or limit when none is below limit.
func (t *Table) nextEntryStart(off, limit int) int {
	i := sort.Search(len(t.entries), func(i int) bool { return t.entries[i].Offset > off })
	if i == len(t.entries) || t.entries[i].Offset >= limit {
		return limit
	}
	return t.entries[i].Offset
}

// MergeSpans sorts spans by (entry, first element) and merges overlapping
// or adjacent runs within the same entry. The home node uses this to keep
// per-thread pending-update queues compact across many unlocks.
func MergeSpans(spans []Span) []Span {
	if len(spans) <= 1 {
		out := make([]Span, len(spans))
		copy(out, spans)
		return out
	}
	sorted := make([]Span, len(spans))
	copy(sorted, spans)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].Entry != sorted[j].Entry {
			return sorted[i].Entry < sorted[j].Entry
		}
		return sorted[i].First < sorted[j].First
	})
	out := sorted[:1]
	for _, s := range sorted[1:] {
		last := &out[len(out)-1]
		if s.Entry == last.Entry && s.First <= last.First+last.Count {
			if end := s.First + s.Count; end > last.First+last.Count {
				last.Count = end - last.First
			}
			continue
		}
		out = append(out, s)
	}
	return out
}

// IntersectSpans returns the parts of spans that overlap s, merged.
func IntersectSpans(spans []Span, s Span) []Span {
	var out []Span
	for _, sp := range spans {
		if sp.Entry != s.Entry {
			continue
		}
		lo := sp.First
		if s.First > lo {
			lo = s.First
		}
		hi := sp.First + sp.Count
		if end := s.First + s.Count; end < hi {
			hi = end
		}
		if lo < hi {
			out = append(out, Span{Entry: s.Entry, First: lo, Count: hi - lo})
		}
	}
	return MergeSpans(out)
}

// SubtractSpan removes the element range of s from spans, splitting spans
// that straddle it. The result is merged and sorted.
func SubtractSpan(spans []Span, s Span) []Span {
	var out []Span
	for _, sp := range spans {
		if sp.Entry != s.Entry {
			out = append(out, sp)
			continue
		}
		spEnd := sp.First + sp.Count
		sEnd := s.First + s.Count
		if sEnd <= sp.First || s.First >= spEnd {
			out = append(out, sp) // no overlap
			continue
		}
		if sp.First < s.First {
			out = append(out, Span{Entry: sp.Entry, First: sp.First, Count: s.First - sp.First})
		}
		if sEnd < spEnd {
			out = append(out, Span{Entry: sp.Entry, First: sEnd, Count: spEnd - sEnd})
		}
	}
	return MergeSpans(out)
}

// SpanBytes returns the local storage size of a span.
func (t *Table) SpanBytes(s Span) int {
	return t.entries[s.Entry].ElemSize * s.Count
}

// SpanOffset returns the segment offset of the first byte of a span.
func (t *Table) SpanOffset(s Span) int {
	e := t.entries[s.Entry]
	return e.Offset + s.First*e.ElemSize
}

// SpanTag renders the CGT-RMR tag for a span: "(m,n)" with n negative for
// pointer entries. This is the t_tag product of Eq. 1.
func (t *Table) SpanTag(s Span) tag.Seq {
	e := t.entries[s.Entry]
	count := s.Count
	if e.Pointer {
		count = -count
	}
	return tag.Seq{{Size: e.ElemSize, Count: count}}
}

// Translator returns a convert.Translator-compatible mapping from addresses
// of the remote table's platform into this (local) table's address space,
// by way of the shared entry indexes.
func (t *Table) Translator(remote *Table) AddrTranslator {
	return AddrTranslator{local: t, remote: remote}
}

// AddrTranslator maps remote GThV addresses to local ones through the
// architecture-independent entry indexes.
type AddrTranslator struct {
	local, remote *Table
}

// Translate implements convert.Translator.
func (a AddrTranslator) Translate(remoteAddr uint64) (uint64, bool) {
	entry, elem, ok := a.remote.MapAddr(remoteAddr)
	if !ok || entry >= a.local.Len() {
		return 0, false
	}
	le := a.local.Entry(entry)
	if elem >= le.Count {
		return 0, false
	}
	return le.Addr + uint64(elem*le.ElemSize), true
}

// Format renders the table in the three-column layout of Table 1.
func (t *Table) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s %6s %8s\n", "Address", "Size", "Number")
	for _, r := range t.rows {
		if r.Size == 0 && r.Number == 0 {
			fmt.Fprintf(&b, "0x%08x %6d %8d\n", r.Addr, r.Pad, 0)
			continue
		}
		fmt.Fprintf(&b, "0x%08x %6d %8d\n", r.Addr, r.Size, r.Number)
	}
	return b.String()
}

// Compatible reports whether two tables describe the same GThV shape: same
// entry count, and per entry the same logical type, count and pointer-ness.
// Sizes and addresses may differ (that is the point of heterogeneity).
func Compatible(a, b *Table) error {
	if a.Len() != b.Len() {
		return fmt.Errorf("indextable: entry counts differ: %d vs %d", a.Len(), b.Len())
	}
	for i := 0; i < a.Len(); i++ {
		ea, eb := a.Entry(i), b.Entry(i)
		if ea.CType != eb.CType || ea.Count != eb.Count || ea.Pointer != eb.Pointer {
			return fmt.Errorf("indextable: entry %d (%s) incompatible: %v x%d vs %v x%d",
				i, ea.Name, ea.CType, ea.Count, eb.CType, eb.Count)
		}
	}
	return nil
}
