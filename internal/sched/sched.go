// Package sched is the adaptive layer of the system: it watches node loads
// and redistributes running threads, which is what makes the DSM of the
// paper's title *adaptive*. The paper's motivation (Section 1) is harvesting
// idle workstations: "parallel computing jobs can be dispatched to newly
// added machines by migrating running threads dynamically".
//
// The balancer implements the classic double-threshold policy: a node whose
// load exceeds the high watermark sheds one thread per tick to the
// least-loaded node below the low watermark that holds a matching skeleton
// slot (iso-computing restricts each thread to its own rank's slots).
package sched

import (
	"fmt"
	"sync"
	"time"

	"hetdsm/internal/migthread"
)

// LoadSource reports the current load of a node, in arbitrary units
// (typically normalized CPU utilization). Implementations must be safe for
// concurrent use.
type LoadSource interface {
	// Load returns the node's load; higher means busier.
	Load(node string) float64
}

// LoadFunc adapts a function to LoadSource.
type LoadFunc func(node string) float64

// Load implements LoadSource.
func (f LoadFunc) Load(node string) float64 { return f(node) }

// ScriptedLoad replays per-node load traces, one sample per Advance call —
// the synthetic stand-in for the paper's dynamically changing machine set.
type ScriptedLoad struct {
	mu     sync.Mutex
	traces map[string][]float64
	tick   int
}

// NewScriptedLoad builds a trace source. Each node's slice is sampled at
// the current tick; past-the-end ticks repeat the last sample.
func NewScriptedLoad(traces map[string][]float64) *ScriptedLoad {
	c := make(map[string][]float64, len(traces))
	for k, v := range traces {
		c[k] = append([]float64(nil), v...)
	}
	return &ScriptedLoad{traces: c}
}

// Load implements LoadSource.
func (s *ScriptedLoad) Load(node string) float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	tr := s.traces[node]
	if len(tr) == 0 {
		return 0
	}
	i := s.tick
	if i >= len(tr) {
		i = len(tr) - 1
	}
	return tr[i]
}

// Advance moves to the next trace sample.
func (s *ScriptedLoad) Advance() {
	s.mu.Lock()
	s.tick++
	s.mu.Unlock()
}

// Decision records one migration the balancer ordered.
type Decision struct {
	// Rank is the thread being moved.
	Rank int32
	// From and To are node names.
	From, To string
	// FromLoad and ToLoad are the loads that justified the move.
	FromLoad, ToLoad float64
}

// Policy holds the balancer thresholds.
type Policy struct {
	// HighWater is the load above which a node sheds threads.
	HighWater float64
	// LowWater is the load below which a node accepts threads.
	LowWater float64
	// MaxMovesPerTick caps migrations per evaluation to avoid
	// thrashing; zero means one.
	MaxMovesPerTick int
}

// DefaultPolicy sheds above 0.75 utilization onto nodes below 0.25.
func DefaultPolicy() Policy {
	return Policy{HighWater: 0.75, LowWater: 0.25, MaxMovesPerTick: 1}
}

func (p Policy) validate() error {
	if p.HighWater <= p.LowWater {
		return fmt.Errorf("sched: high water %v must exceed low water %v", p.HighWater, p.LowWater)
	}
	return nil
}

// Balancer evaluates loads and orders migrations among a fixed set of
// nodes.
type Balancer struct {
	policy Policy
	loads  LoadSource

	mu        sync.Mutex
	nodes     []*migthread.Node
	decisions []Decision
}

// NewBalancer builds a balancer over the given nodes.
func NewBalancer(policy Policy, loads LoadSource, nodes ...*migthread.Node) (*Balancer, error) {
	if err := policy.validate(); err != nil {
		return nil, err
	}
	if loads == nil {
		return nil, fmt.Errorf("sched: nil load source")
	}
	return &Balancer{policy: policy, loads: loads, nodes: nodes}, nil
}

// AddNode registers a newly joined machine — the paper's "newly added
// machines" scenario.
func (b *Balancer) AddNode(n *migthread.Node) {
	b.mu.Lock()
	b.nodes = append(b.nodes, n)
	b.mu.Unlock()
}

// Decisions returns every migration ordered so far.
func (b *Balancer) Decisions() []Decision {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([]Decision, len(b.decisions))
	copy(out, b.decisions)
	return out
}

// Tick evaluates the policy once and issues migration requests; it returns
// the decisions made this tick. Requests are asynchronous: the thread moves
// at its next safe point.
func (b *Balancer) Tick() []Decision {
	b.mu.Lock()
	nodes := append([]*migthread.Node(nil), b.nodes...)
	b.mu.Unlock()

	maxMoves := b.policy.MaxMovesPerTick
	if maxMoves <= 0 {
		maxMoves = 1
	}
	var made []Decision
	for _, src := range nodes {
		if len(made) >= maxMoves {
			break
		}
		srcLoad := b.loads.Load(src.Name())
		if srcLoad <= b.policy.HighWater {
			continue
		}
		for _, rank := range src.ActiveRanks() {
			dst := b.pickDestination(nodes, src, rank)
			if dst == nil {
				continue
			}
			if err := src.RequestMigration(rank, dst.MigrationAddr()); err != nil {
				continue
			}
			d := Decision{
				Rank: rank, From: src.Name(), To: dst.Name(),
				FromLoad: srcLoad, ToLoad: b.loads.Load(dst.Name()),
			}
			made = append(made, d)
			break // at most one shed per overloaded node per tick
		}
	}
	b.mu.Lock()
	b.decisions = append(b.decisions, made...)
	b.mu.Unlock()
	return made
}

// pickDestination returns the least-loaded node below the low watermark
// holding an idle skeleton for rank, or nil.
func (b *Balancer) pickDestination(nodes []*migthread.Node, src *migthread.Node, rank int32) *migthread.Node {
	var best *migthread.Node
	bestLoad := b.policy.LowWater
	for _, n := range nodes {
		if n == src || n.MigrationAddr() == "" {
			continue
		}
		load := b.loads.Load(n.Name())
		if load >= bestLoad {
			continue
		}
		for _, r := range n.SkeletonRanks() {
			if r == rank {
				best = n
				bestLoad = load
				break
			}
		}
	}
	return best
}

// Run evaluates the policy every interval until stop is closed.
func (b *Balancer) Run(interval time.Duration, stop <-chan struct{}) {
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-t.C:
			b.Tick()
		}
	}
}
