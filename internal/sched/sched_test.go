package sched

import (
	"testing"
	"time"

	"hetdsm/internal/dsd"
	"hetdsm/internal/migthread"
	"hetdsm/internal/platform"
	"hetdsm/internal/tag"
	"hetdsm/internal/transport"
)

func testGThV() tag.Struct {
	return tag.Struct{Name: "GThV_t", Fields: []tag.Field{
		{Name: "sum", T: tag.Scalar{T: platform.CLongLong}},
	}}
}

// slowWork is a long-running migratable workload for balancer tests.
type slowWork struct {
	steps int64
}

func (w *slowWork) FrameType() tag.Struct {
	return tag.Struct{Name: "frame", Fields: []tag.Field{
		{Name: "i", T: tag.Scalar{T: platform.CLongLong}},
	}}
}

func (w *slowWork) Init(ctx *migthread.Ctx) error { return ctx.Frame().SetInt("i", 0) }

func (w *slowWork) Step(ctx *migthread.Ctx) (bool, error) {
	i, err := ctx.Frame().Int("i")
	if err != nil {
		return false, err
	}
	i++
	if err := ctx.Frame().SetInt("i", i); err != nil {
		return false, err
	}
	if i >= w.steps {
		if err := ctx.T.Lock(0); err != nil {
			return false, err
		}
		if err := ctx.T.Globals().MustVar("sum").SetInt(0, i); err != nil {
			return false, err
		}
		if err := ctx.T.Unlock(0); err != nil {
			return false, err
		}
		return true, nil
	}
	time.Sleep(time.Millisecond)
	return false, nil
}

func rig(t *testing.T) (home *dsd.Home, busy, idle *migthread.Node) {
	t.Helper()
	nw := transport.NewInproc()
	home, err := dsd.NewHome(testGThV(), platform.LinuxX86, 1, dsd.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	l, err := nw.Listen("home")
	if err != nil {
		t.Fatal(err)
	}
	go home.Serve(l)
	t.Cleanup(home.Close)

	busy = migthread.NewNode("busy", platform.LinuxX86, nw, "home", testGThV(), dsd.DefaultOptions())
	idle = migthread.NewNode("idle", platform.SolarisSPARC, nw, "home", testGThV(), dsd.DefaultOptions())
	if err := busy.ListenMigrations("busy-mig"); err != nil {
		t.Fatal(err)
	}
	if err := idle.ListenMigrations("idle-mig"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(busy.Close)
	t.Cleanup(idle.Close)
	return home, busy, idle
}

func TestPolicyValidation(t *testing.T) {
	if _, err := NewBalancer(Policy{HighWater: 0.2, LowWater: 0.8}, LoadFunc(func(string) float64 { return 0 })); err == nil {
		t.Error("inverted watermarks must fail")
	}
	if _, err := NewBalancer(DefaultPolicy(), nil); err == nil {
		t.Error("nil load source must fail")
	}
}

func TestScriptedLoad(t *testing.T) {
	s := NewScriptedLoad(map[string][]float64{"a": {0.1, 0.9}})
	if got := s.Load("a"); got != 0.1 {
		t.Errorf("tick 0 = %v", got)
	}
	s.Advance()
	if got := s.Load("a"); got != 0.9 {
		t.Errorf("tick 1 = %v", got)
	}
	s.Advance() // past the end: repeat last
	if got := s.Load("a"); got != 0.9 {
		t.Errorf("tick 2 = %v", got)
	}
	if got := s.Load("unknown"); got != 0 {
		t.Errorf("unknown node = %v", got)
	}
}

func TestBalancerMovesOverloadedThread(t *testing.T) {
	home, busy, idle := rig(t)
	w := &slowWork{steps: 300}
	if _, err := busy.StartThread(0, w, migthread.RoleLocal); err != nil {
		t.Fatal(err)
	}
	if _, err := idle.StartSkeleton(0, &slowWork{steps: 300}); err != nil {
		t.Fatal(err)
	}
	loads := LoadFunc(func(node string) float64 {
		if node == "busy" {
			return 0.95
		}
		return 0.05
	})
	b, err := NewBalancer(DefaultPolicy(), loads, busy, idle)
	if err != nil {
		t.Fatal(err)
	}
	// Let the thread run a little, then balance.
	time.Sleep(20 * time.Millisecond)
	decisions := b.Tick()
	if len(decisions) != 1 {
		t.Fatalf("decisions = %v, want 1", decisions)
	}
	d := decisions[0]
	if d.From != "busy" || d.To != "idle" || d.Rank != 0 {
		t.Errorf("decision = %+v", d)
	}
	if err := busy.WaitAll(); err != nil {
		t.Fatal(err)
	}
	if err := idle.WaitAll(); err != nil {
		t.Fatal(err)
	}
	home.Wait()
	// The thread really moved and finished on the idle node.
	if len(busy.Migrations()) != 1 {
		t.Errorf("migrations from busy = %d, want 1", len(busy.Migrations()))
	}
	role, err := idle.Role(0)
	if err != nil {
		t.Fatal(err)
	}
	if role != migthread.RoleDone {
		t.Errorf("idle slot role = %v, want done", role)
	}
	v, err := home.Globals().MustVar("sum").Int(0)
	if err != nil {
		t.Fatal(err)
	}
	if v != 300 {
		t.Errorf("result = %d, want 300", v)
	}
}

func TestBalancerQuietWhenBalanced(t *testing.T) {
	_, busy, idle := rig(t)
	w := &slowWork{steps: 50}
	if _, err := busy.StartThread(0, w, migthread.RoleLocal); err != nil {
		t.Fatal(err)
	}
	if _, err := idle.StartSkeleton(0, &slowWork{steps: 50}); err != nil {
		t.Fatal(err)
	}
	loads := LoadFunc(func(string) float64 { return 0.5 })
	b, err := NewBalancer(DefaultPolicy(), loads, busy, idle)
	if err != nil {
		t.Fatal(err)
	}
	if d := b.Tick(); len(d) != 0 {
		t.Errorf("balanced loads produced decisions %v", d)
	}
	if err := busy.WaitAll(); err != nil {
		t.Fatal(err)
	}
	// Unblock the skeleton: nothing will ever arrive, so just verify it
	// is still waiting and close the rig.
	if role, _ := idle.Role(0); role != migthread.RoleSkeleton {
		t.Errorf("skeleton role = %v", role)
	}
}

func TestBalancerRespectsIsoComputing(t *testing.T) {
	_, busy, idle := rig(t)
	w := &slowWork{steps: 50}
	if _, err := busy.StartThread(0, w, migthread.RoleLocal); err != nil {
		t.Fatal(err)
	}
	// The idle node has a skeleton only for rank 5: rank 0 cannot move.
	if _, err := idle.StartSkeleton(5, &slowWork{steps: 50}); err != nil {
		t.Fatal(err)
	}
	loads := LoadFunc(func(node string) float64 {
		if node == "busy" {
			return 0.95
		}
		return 0.05
	})
	b, err := NewBalancer(DefaultPolicy(), loads, busy, idle)
	if err != nil {
		t.Fatal(err)
	}
	if d := b.Tick(); len(d) != 0 {
		t.Errorf("no matching skeleton, but decisions %v", d)
	}
	if err := busy.WaitAll(); err != nil {
		t.Fatal(err)
	}
}

func TestBalancerNewNodeJoins(t *testing.T) {
	home, busy, idle := rig(t)
	w := &slowWork{steps: 300}
	if _, err := busy.StartThread(0, w, migthread.RoleLocal); err != nil {
		t.Fatal(err)
	}
	loads := LoadFunc(func(node string) float64 {
		if node == "busy" {
			return 0.95
		}
		return 0.05
	})
	// Balancer starts with only the busy node: nowhere to go.
	b, err := NewBalancer(DefaultPolicy(), loads, busy)
	if err != nil {
		t.Fatal(err)
	}
	if d := b.Tick(); len(d) != 0 {
		t.Fatalf("premature decisions %v", d)
	}
	// The idle machine joins (paper: "newly added machines"), bringing a
	// skeleton slot.
	if _, err := idle.StartSkeleton(0, &slowWork{steps: 300}); err != nil {
		t.Fatal(err)
	}
	b.AddNode(idle)
	if d := b.Tick(); len(d) != 1 {
		t.Fatalf("after join: decisions = %v, want 1", d)
	}
	if err := busy.WaitAll(); err != nil {
		t.Fatal(err)
	}
	if err := idle.WaitAll(); err != nil {
		t.Fatal(err)
	}
	home.Wait()
	if len(b.Decisions()) != 1 {
		t.Errorf("recorded decisions = %d, want 1", len(b.Decisions()))
	}
}

func TestBalancerRunLoop(t *testing.T) {
	home, busy, idle := rig(t)
	w := &slowWork{steps: 400}
	if _, err := busy.StartThread(0, w, migthread.RoleLocal); err != nil {
		t.Fatal(err)
	}
	if _, err := idle.StartSkeleton(0, &slowWork{steps: 400}); err != nil {
		t.Fatal(err)
	}
	loads := LoadFunc(func(node string) float64 {
		if node == "busy" {
			return 0.95
		}
		return 0.05
	})
	b, err := NewBalancer(DefaultPolicy(), loads, busy, idle)
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	go b.Run(5*time.Millisecond, stop)
	if err := busy.WaitAll(); err != nil {
		t.Fatal(err)
	}
	if err := idle.WaitAll(); err != nil {
		t.Fatal(err)
	}
	close(stop)
	home.Wait()
	if len(busy.Migrations()) != 1 {
		t.Errorf("run loop produced %d migrations, want 1", len(busy.Migrations()))
	}
}
