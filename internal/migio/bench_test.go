package migio

import (
	"testing"

	"hetdsm/internal/platform"
	"hetdsm/internal/transport"
)

func BenchmarkTableCaptureRestore(b *testing.B) {
	fs := NewSharedFS()
	tb := NewTable(fs)
	for i := 0; i < 16; i++ {
		fs.WriteFile(pathFor(i), make([]byte, 128))
		if _, err := tb.Open(pathFor(i), ModeReadWrite); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		img, tagStr, err := tb.Capture(platform.SolarisSPARC)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := RestoreTable(fs, platform.LinuxX86, platform.SolarisSPARC.Name, tagStr, img); err != nil {
			b.Fatal(err)
		}
	}
}

func pathFor(i int) string { return "/data/file-" + string(rune('a'+i)) }

func BenchmarkSessionRoundTrip(b *testing.B) {
	nw := transport.NewInproc()
	srv, err := NewSessionServer(nw, "bench")
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	go func() {
		ss, err := srv.Accept()
		if err != nil {
			return
		}
		for {
			p, err := ss.Recv()
			if err != nil {
				return
			}
			if err := ss.Send(p); err != nil {
				return
			}
		}
	}()
	c, err := DialSession(nw, "bench")
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	payload := make([]byte, 1024)
	b.SetBytes(1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.Send(payload); err != nil {
			b.Fatal(err)
		}
		if _, err := c.Recv(); err != nil {
			b.Fatal(err)
		}
	}
}
