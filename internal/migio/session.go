package migio

import (
	"encoding/binary"
	"fmt"
	"sync"

	"hetdsm/internal/transport"
)

// Socket migration. A Session is a logical connection that survives the
// loss of its physical transport: both sides number their data frames, the
// server retains unacknowledged output, and a migrated client re-attaches
// with its receive cursor so the server can replay exactly the frames it
// missed. This is the standard construction for TCP connection migration,
// reproduced over this repo's transports.

// Session protocol opcodes.
const (
	opOpen uint8 = iota + 1
	opOpenOK
	opResume
	opResumeOK
	opData
	opAck
	opDetach
	opDetachOK
)

// sframe is one session-layer frame.
type sframe struct {
	op      uint8
	id      uint64
	seq     uint64
	payload []byte
}

func encodeFrame(f sframe) []byte {
	out := make([]byte, 1+8+8+4+len(f.payload))
	out[0] = f.op
	binary.BigEndian.PutUint64(out[1:], f.id)
	binary.BigEndian.PutUint64(out[9:], f.seq)
	binary.BigEndian.PutUint32(out[17:], uint32(len(f.payload)))
	copy(out[21:], f.payload)
	return out
}

func decodeFrame(b []byte) (sframe, error) {
	if len(b) < 21 {
		return sframe{}, fmt.Errorf("migio: session frame of %d bytes is too short", len(b))
	}
	n := binary.BigEndian.Uint32(b[17:])
	if int(n) != len(b)-21 {
		return sframe{}, fmt.Errorf("migio: session frame length %d does not match payload %d", n, len(b)-21)
	}
	return sframe{
		op:      b[0],
		id:      binary.BigEndian.Uint64(b[1:]),
		seq:     binary.BigEndian.Uint64(b[9:]),
		payload: b[21:],
	}, nil
}

// SessionServer accepts resumable sessions at one address.
type SessionServer struct {
	l transport.Listener

	mu       sync.Mutex
	sessions map[uint64]*ServerSession
	nextID   uint64
	accepts  chan *ServerSession
	closed   bool
}

// NewSessionServer listens on nw at addr.
func NewSessionServer(nw transport.Network, addr string) (*SessionServer, error) {
	l, err := nw.Listen(addr)
	if err != nil {
		return nil, err
	}
	s := &SessionServer{
		l:        l,
		sessions: make(map[uint64]*ServerSession),
		accepts:  make(chan *ServerSession, 16),
	}
	go s.acceptLoop()
	return s, nil
}

// Addr returns the listen address.
func (s *SessionServer) Addr() string { return s.l.Addr() }

// Accept blocks for the next new session (resumed sessions do not reappear
// here).
func (s *SessionServer) Accept() (*ServerSession, error) {
	ss, ok := <-s.accepts
	if !ok {
		return nil, transport.ErrClosed
	}
	return ss, nil
}

// Close stops the listener and ends Accept.
func (s *SessionServer) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.mu.Unlock()
	s.l.Close()
	close(s.accepts)
}

func (s *SessionServer) acceptLoop() {
	for {
		c, err := s.l.Accept()
		if err != nil {
			return
		}
		go s.handshake(c)
	}
}

func (s *SessionServer) handshake(c transport.Conn) {
	raw, err := c.RecvFrame()
	if err != nil {
		c.Close()
		return
	}
	f, err := decodeFrame(raw)
	if err != nil {
		c.Close()
		return
	}
	switch f.op {
	case opOpen:
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			c.Close()
			return
		}
		s.nextID++
		ss := &ServerSession{id: s.nextID, conn: c, inbox: make(chan []byte, 64)}
		s.sessions[ss.id] = ss
		s.mu.Unlock()
		if c.SendFrame(encodeFrame(sframe{op: opOpenOK, id: ss.id})) != nil {
			c.Close()
			return
		}
		s.accepts <- ss
		ss.readLoop(c)
	case opResume:
		s.mu.Lock()
		ss := s.sessions[f.id]
		s.mu.Unlock()
		if ss == nil {
			c.Close()
			return
		}
		ss.resume(c, f.seq)
		ss.readLoop(c)
	default:
		c.Close()
	}
}

// ServerSession is the server end of a resumable session.
type ServerSession struct {
	id uint64

	mu       sync.Mutex
	conn     transport.Conn
	sendSeq  uint64
	recvSeq  uint64
	retained []sframe

	inbox chan []byte
}

// ID returns the session id a client resumes with.
func (ss *ServerSession) ID() uint64 { return ss.id }

// Send transmits a payload; it is retained until the client acknowledges,
// so a client that migrates mid-stream loses nothing.
func (ss *ServerSession) Send(payload []byte) error {
	ss.mu.Lock()
	ss.sendSeq++
	f := sframe{op: opData, id: ss.id, seq: ss.sendSeq, payload: append([]byte(nil), payload...)}
	ss.retained = append(ss.retained, f)
	conn := ss.conn
	ss.mu.Unlock()
	if conn != nil {
		// A transport error just detaches; the frame stays retained for
		// replay on resume.
		if err := conn.SendFrame(encodeFrame(f)); err != nil {
			ss.detach(conn)
		}
	}
	return nil
}

// Recv blocks for the next client payload.
func (ss *ServerSession) Recv() ([]byte, error) {
	p, ok := <-ss.inbox
	if !ok {
		return nil, transport.ErrClosed
	}
	return p, nil
}

func (ss *ServerSession) detach(old transport.Conn) {
	ss.mu.Lock()
	if ss.conn == old {
		ss.conn = nil
	}
	ss.mu.Unlock()
}

// resume swaps in a new physical connection and replays everything the
// client reports not having seen.
func (ss *ServerSession) resume(c transport.Conn, clientRecvSeq uint64) {
	ss.mu.Lock()
	ss.conn = c
	// Drop what the client has, replay the rest.
	keep := ss.retained[:0]
	var replay []sframe
	for _, f := range ss.retained {
		if f.seq > clientRecvSeq {
			keep = append(keep, f)
			replay = append(replay, f)
		}
	}
	ss.retained = keep
	ss.mu.Unlock()

	ok := encodeFrame(sframe{op: opResumeOK, id: ss.id, seq: ss.recvSeq})
	if c.SendFrame(ok) != nil {
		ss.detach(c)
		return
	}
	for _, f := range replay {
		if c.SendFrame(encodeFrame(f)) != nil {
			ss.detach(c)
			return
		}
	}
}

// readLoop consumes client frames on one physical connection until it
// drops.
func (ss *ServerSession) readLoop(c transport.Conn) {
	for {
		raw, err := c.RecvFrame()
		if err != nil {
			ss.detach(c)
			return
		}
		f, err := decodeFrame(raw)
		if err != nil {
			ss.detach(c)
			c.Close()
			return
		}
		switch f.op {
		case opData:
			ss.mu.Lock()
			dup := f.seq <= ss.recvSeq
			if !dup {
				ss.recvSeq = f.seq
			}
			ss.mu.Unlock()
			if !dup {
				ss.inbox <- f.payload
			}
		case opAck:
			ss.mu.Lock()
			keep := ss.retained[:0]
			for _, r := range ss.retained {
				if r.seq > f.seq {
					keep = append(keep, r)
				}
			}
			ss.retained = keep
			ss.mu.Unlock()
		case opDetach:
			// Quiesce: every client frame before the detach has been
			// processed (the transport is ordered), so the receive
			// cursor is final for this attachment. Confirm and detach.
			_ = c.SendFrame(encodeFrame(sframe{op: opDetachOK, id: ss.id, seq: ss.recvSeq}))
			ss.detach(c)
			return
		default:
			// Ignore unexpected ops on an established session.
		}
	}
}

// SocketState is the migratable state of a client session: everything a
// destination node needs to re-attach.
type SocketState struct {
	// Addr is the server's session address.
	Addr string
	// ID identifies the session at the server.
	ID uint64
	// SendSeq is the last sequence number this client sent.
	SendSeq uint64
	// RecvSeq is the last sequence number this client received; the
	// server replays everything after it.
	RecvSeq uint64
}

// MigSocket is the client end of a resumable session.
type MigSocket struct {
	nw   transport.Network
	addr string
	conn transport.Conn

	id      uint64
	sendSeq uint64
	recvSeq uint64
}

// DialSession opens a new session with the server at addr.
func DialSession(nw transport.Network, addr string) (*MigSocket, error) {
	c, err := nw.Dial(addr)
	if err != nil {
		return nil, err
	}
	if err := c.SendFrame(encodeFrame(sframe{op: opOpen})); err != nil {
		c.Close()
		return nil, err
	}
	raw, err := c.RecvFrame()
	if err != nil {
		c.Close()
		return nil, err
	}
	f, err := decodeFrame(raw)
	if err != nil || f.op != opOpenOK {
		c.Close()
		return nil, fmt.Errorf("migio: bad open reply")
	}
	return &MigSocket{nw: nw, addr: addr, conn: c, id: f.id}, nil
}

// ResumeSession re-attaches to a session from (possibly) another node: the
// heart of socket migration.
func ResumeSession(nw transport.Network, st SocketState) (*MigSocket, error) {
	c, err := nw.Dial(st.Addr)
	if err != nil {
		return nil, err
	}
	if err := c.SendFrame(encodeFrame(sframe{op: opResume, id: st.ID, seq: st.RecvSeq})); err != nil {
		c.Close()
		return nil, err
	}
	raw, err := c.RecvFrame()
	if err != nil {
		c.Close()
		return nil, err
	}
	f, err := decodeFrame(raw)
	if err != nil || f.op != opResumeOK || f.id != st.ID {
		c.Close()
		return nil, fmt.Errorf("migio: bad resume reply")
	}
	s := &MigSocket{nw: nw, addr: st.Addr, conn: c, id: st.ID, sendSeq: st.SendSeq, recvSeq: st.RecvSeq}
	// f.seq is the server's receive cursor for our direction; with a
	// reliable transport and a clean capture it matches SendSeq, but a
	// crash-capture may have lost in-flight frames — trust the server.
	if f.seq < s.sendSeq {
		s.sendSeq = f.seq
	}
	return s, nil
}

// ID returns the session id.
func (s *MigSocket) ID() uint64 { return s.id }

// Send transmits a payload to the server.
func (s *MigSocket) Send(payload []byte) error {
	s.sendSeq++
	return s.conn.SendFrame(encodeFrame(sframe{op: opData, id: s.id, seq: s.sendSeq, payload: payload}))
}

// Recv blocks for the next server payload (replays included, duplicates
// suppressed) and acknowledges it.
func (s *MigSocket) Recv() ([]byte, error) {
	for {
		raw, err := s.conn.RecvFrame()
		if err != nil {
			return nil, err
		}
		f, err := decodeFrame(raw)
		if err != nil {
			return nil, err
		}
		if f.op != opData {
			continue
		}
		if f.seq <= s.recvSeq {
			continue // duplicate from an overlapping replay
		}
		s.recvSeq = f.seq
		if err := s.conn.SendFrame(encodeFrame(sframe{op: opAck, id: s.id, seq: f.seq})); err != nil {
			// The data is delivered; a lost ack only costs retention.
			return f.payload, nil
		}
		return f.payload, nil
	}
}

// Capture freezes the session for migration: the connection is quiesced
// with a detach handshake (so every frame already sent is processed by the
// server — migrating mid-conversation loses nothing), then abandoned. The
// returned state re-attaches from anywhere. Server frames that race the
// detach are deliberately NOT acknowledged: the server retains them and
// replays them on resume.
func (s *MigSocket) Capture() SocketState {
	st := SocketState{Addr: s.addr, ID: s.id, SendSeq: s.sendSeq, RecvSeq: s.recvSeq}
	if err := s.conn.SendFrame(encodeFrame(sframe{op: opDetach, id: s.id})); err == nil {
		for {
			raw, err := s.conn.RecvFrame()
			if err != nil {
				break
			}
			f, err := decodeFrame(raw)
			if err != nil {
				break
			}
			if f.op == opDetachOK {
				break
			}
			// opData racing the detach: discard without acking; the
			// server will replay it after resume.
		}
	}
	s.conn.Close()
	return st
}

// Close ends the session's physical connection.
func (s *MigSocket) Close() error { return s.conn.Close() }
