package migio

import (
	"fmt"
	"testing"
	"time"

	"hetdsm/internal/transport"
)

// echoServer accepts one session and echoes payloads with a prefix, then
// pushes extra unsolicited frames when asked.
func startServer(t *testing.T, nw transport.Network, addr string) *SessionServer {
	t.Helper()
	srv, err := NewSessionServer(nw, addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	return srv
}

func TestSessionEcho(t *testing.T) {
	nw := transport.NewInproc()
	srv := startServer(t, nw, "svc")
	done := make(chan error, 1)
	go func() {
		ss, err := srv.Accept()
		if err != nil {
			done <- err
			return
		}
		for i := 0; i < 5; i++ {
			p, err := ss.Recv()
			if err != nil {
				done <- err
				return
			}
			if err := ss.Send(append([]byte("echo:"), p...)); err != nil {
				done <- err
				return
			}
		}
		done <- nil
	}()

	c, err := DialSession(nw, "svc")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for i := 0; i < 5; i++ {
		msg := fmt.Sprintf("m%d", i)
		if err := c.Send([]byte(msg)); err != nil {
			t.Fatal(err)
		}
		got, err := c.Recv()
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != "echo:"+msg {
			t.Errorf("recv = %q", got)
		}
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

func TestSocketMigrationReplaysUnseen(t *testing.T) {
	nw := transport.NewInproc()
	srv := startServer(t, nw, "stream")

	// The server streams 20 numbered messages as fast as it can.
	const total = 20
	go func() {
		ss, err := srv.Accept()
		if err != nil {
			return
		}
		for i := 0; i < total; i++ {
			_ = ss.Send([]byte(fmt.Sprintf("msg-%02d", i)))
			time.Sleep(time.Millisecond)
		}
	}()

	// The client consumes a few, then "migrates": captures its state and
	// abandons the connection, exactly as a thread leaving the node.
	c, err := DialSession(nw, "stream")
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	for i := 0; i < 5; i++ {
		p, err := c.Recv()
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, string(p))
	}
	state := c.Capture()

	// Give the server time to stream into the void (frames are retained).
	time.Sleep(50 * time.Millisecond)

	// Re-attach "from the destination node" and drain the rest. Nothing
	// is lost and nothing duplicated.
	c2, err := ResumeSession(nw, state)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	deadline := time.After(10 * time.Second)
	for len(got) < total {
		ch := make(chan []byte, 1)
		errCh := make(chan error, 1)
		go func() {
			p, err := c2.Recv()
			if err != nil {
				errCh <- err
				return
			}
			ch <- p
		}()
		select {
		case p := <-ch:
			got = append(got, string(p))
		case err := <-errCh:
			t.Fatal(err)
		case <-deadline:
			t.Fatalf("timed out with %d/%d messages: %v", len(got), total, got)
		}
	}
	for i, msg := range got {
		if want := fmt.Sprintf("msg-%02d", i); msg != want {
			t.Errorf("message %d = %q, want %q", i, msg, want)
		}
	}
}

func TestClientSendsSurviveMigration(t *testing.T) {
	nw := transport.NewInproc()
	srv := startServer(t, nw, "up")

	received := make(chan string, 64)
	go func() {
		ss, err := srv.Accept()
		if err != nil {
			return
		}
		for {
			p, err := ss.Recv()
			if err != nil {
				return
			}
			received <- string(p)
		}
	}()

	c, err := DialSession(nw, "up")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := c.Send([]byte(fmt.Sprintf("pre-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	state := c.Capture()
	c2, err := ResumeSession(nw, state)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	for i := 0; i < 3; i++ {
		if err := c2.Send([]byte(fmt.Sprintf("post-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	want := []string{"pre-0", "pre-1", "pre-2", "post-0", "post-1", "post-2"}
	for _, w := range want {
		select {
		case got := <-received:
			if got != w {
				t.Errorf("server received %q, want %q", got, w)
			}
		case <-time.After(10 * time.Second):
			t.Fatalf("server never received %q", w)
		}
	}
}

func TestAckPrunesRetention(t *testing.T) {
	nw := transport.NewInproc()
	srv := startServer(t, nw, "ack")
	sessCh := make(chan *ServerSession, 1)
	go func() {
		ss, err := srv.Accept()
		if err == nil {
			sessCh <- ss
		}
	}()
	c, err := DialSession(nw, "ack")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ss := <-sessCh
	for i := 0; i < 10; i++ {
		if err := ss.Send([]byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 10; i++ {
		if _, err := c.Recv(); err != nil {
			t.Fatal(err)
		}
	}
	// Acks are processed asynchronously by the server's read loop.
	deadline := time.Now().Add(5 * time.Second)
	for {
		ss.mu.Lock()
		n := len(ss.retained)
		ss.mu.Unlock()
		if n == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("%d frames still retained after all acks", n)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestResumeUnknownSessionFails(t *testing.T) {
	nw := transport.NewInproc()
	startServer(t, nw, "svc2")
	_, err := ResumeSession(nw, SocketState{Addr: "svc2", ID: 999, RecvSeq: 0})
	if err == nil {
		t.Error("resume of unknown session must fail")
	}
}

func TestFrameCodec(t *testing.T) {
	f := sframe{op: opData, id: 7, seq: 42, payload: []byte("hello")}
	got, err := decodeFrame(encodeFrame(f))
	if err != nil {
		t.Fatal(err)
	}
	if got.op != f.op || got.id != f.id || got.seq != f.seq || string(got.payload) != "hello" {
		t.Errorf("round trip = %+v", got)
	}
	if _, err := decodeFrame([]byte{1, 2, 3}); err == nil {
		t.Error("short frame accepted")
	}
	bad := encodeFrame(f)
	bad[17] = 0xFF // corrupt the length
	if _, err := decodeFrame(bad); err == nil {
		t.Error("bad length accepted")
	}
}
