// Package migio implements the paper's stated future work (Section 6):
// "supporting file I/O migration and socket migration ... as both will be
// necessary for a truly portable heterogeneous system."
//
// Three pieces:
//
//   - SharedFS: an in-memory filesystem visible to every node (the NFS-like
//     shared storage heterogeneous clusters of the paper's era assumed).
//     File *content* stays put; what migrates with a thread is its
//     descriptor state.
//
//   - Table: a thread's open-file descriptor table. Capture serializes the
//     descriptors — fds, modes, offsets, paths — into the source platform's
//     byte layout with a CGT-RMR tag, exactly like any other thread state;
//     Restore converts receiver-makes-right and reopens against the shared
//     filesystem.
//
//   - Session (session.go): a resumable connection layer. A migrating
//     thread captures its session state (id, receive cursor), abandons the
//     physical connection, and re-attaches from the destination node; the
//     peer replays anything unacknowledged. This is socket migration in the
//     form production systems use: sequence-numbered sessions over
//     plain transports.
package migio

import (
	"fmt"
	"io"
	"sort"
	"sync"
)

// SharedFS is a concurrency-safe in-memory filesystem shared by all nodes
// of a cluster.
type SharedFS struct {
	mu    sync.Mutex
	files map[string][]byte
}

// NewSharedFS returns an empty filesystem.
func NewSharedFS() *SharedFS {
	return &SharedFS{files: make(map[string][]byte)}
}

// WriteFile creates or replaces a file.
func (fs *SharedFS) WriteFile(path string, data []byte) {
	fs.mu.Lock()
	fs.files[path] = append([]byte(nil), data...)
	fs.mu.Unlock()
}

// ReadFile returns a copy of a file's content.
func (fs *SharedFS) ReadFile(path string) ([]byte, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	data, ok := fs.files[path]
	if !ok {
		return nil, fmt.Errorf("migio: no such file %q", path)
	}
	return append([]byte(nil), data...), nil
}

// Remove deletes a file.
func (fs *SharedFS) Remove(path string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if _, ok := fs.files[path]; !ok {
		return fmt.Errorf("migio: no such file %q", path)
	}
	delete(fs.files, path)
	return nil
}

// List returns all paths in sorted order.
func (fs *SharedFS) List() []string {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	out := make([]string, 0, len(fs.files))
	for p := range fs.files {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// Size returns a file's length in bytes.
func (fs *SharedFS) Size(path string) (int64, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	data, ok := fs.files[path]
	if !ok {
		return 0, fmt.Errorf("migio: no such file %q", path)
	}
	return int64(len(data)), nil
}

// Mode is a descriptor's access mode.
type Mode int32

const (
	// ModeRead permits reads only.
	ModeRead Mode = iota
	// ModeWrite permits writes only (creating the file if needed).
	ModeWrite
	// ModeReadWrite permits both.
	ModeReadWrite
)

// String returns "r", "w" or "rw".
func (m Mode) String() string {
	switch m {
	case ModeRead:
		return "r"
	case ModeWrite:
		return "w"
	case ModeReadWrite:
		return "rw"
	default:
		return fmt.Sprintf("Mode(%d)", int32(m))
	}
}

// File is an open handle: a path, a mode and a cursor. Handles are owned by
// a single thread, like POSIX descriptors before dup.
type File struct {
	fs   *SharedFS
	path string
	mode Mode
	off  int64
	open bool
}

// open opens or creates the file per mode.
func (fs *SharedFS) open(path string, mode Mode) (*File, error) {
	fs.mu.Lock()
	_, exists := fs.files[path]
	if !exists {
		if mode == ModeRead {
			fs.mu.Unlock()
			return nil, fmt.Errorf("migio: no such file %q", path)
		}
		fs.files[path] = nil
	}
	fs.mu.Unlock()
	return &File{fs: fs, path: path, mode: mode, open: true}, nil
}

// Path returns the file's path.
func (f *File) Path() string { return f.path }

// Offset returns the cursor position.
func (f *File) Offset() int64 { return f.off }

// Mode returns the access mode.
func (f *File) Mode() Mode { return f.mode }

// Read reads from the cursor, advancing it; io.EOF at end.
func (f *File) Read(p []byte) (int, error) {
	if !f.open {
		return 0, fmt.Errorf("migio: read on closed file %q", f.path)
	}
	if f.mode == ModeWrite {
		return 0, fmt.Errorf("migio: %q opened write-only", f.path)
	}
	f.fs.mu.Lock()
	data := f.fs.files[f.path]
	if f.off >= int64(len(data)) {
		f.fs.mu.Unlock()
		return 0, io.EOF
	}
	n := copy(p, data[f.off:])
	f.fs.mu.Unlock()
	f.off += int64(n)
	return n, nil
}

// Write writes at the cursor, extending the file as needed.
func (f *File) Write(p []byte) (int, error) {
	if !f.open {
		return 0, fmt.Errorf("migio: write on closed file %q", f.path)
	}
	if f.mode == ModeRead {
		return 0, fmt.Errorf("migio: %q opened read-only", f.path)
	}
	f.fs.mu.Lock()
	data := f.fs.files[f.path]
	end := f.off + int64(len(p))
	if int64(len(data)) < end {
		grown := make([]byte, end)
		copy(grown, data)
		data = grown
	}
	copy(data[f.off:end], p)
	f.fs.files[f.path] = data
	f.fs.mu.Unlock()
	f.off = end
	return len(p), nil
}

// Seek repositions the cursor (io.SeekStart/Current/End).
func (f *File) Seek(offset int64, whence int) (int64, error) {
	if !f.open {
		return 0, fmt.Errorf("migio: seek on closed file %q", f.path)
	}
	var base int64
	switch whence {
	case io.SeekStart:
		base = 0
	case io.SeekCurrent:
		base = f.off
	case io.SeekEnd:
		sz, err := f.fs.Size(f.path)
		if err != nil {
			return 0, err
		}
		base = sz
	default:
		return 0, fmt.Errorf("migio: bad whence %d", whence)
	}
	pos := base + offset
	if pos < 0 {
		return 0, fmt.Errorf("migio: negative seek to %d", pos)
	}
	f.off = pos
	return pos, nil
}

// Close invalidates the handle.
func (f *File) Close() error {
	if !f.open {
		return fmt.Errorf("migio: double close of %q", f.path)
	}
	f.open = false
	return nil
}
