package migio

import (
	"fmt"
	"io"
	"sort"

	"hetdsm/internal/convert"
	"hetdsm/internal/platform"
	"hetdsm/internal/tag"
)

// pathCap is the fixed path capacity in the serialized descriptor record,
// like PATH_MAX in the C original this models.
const pathCap = 128

// Table is a thread's open-file descriptor table. It is the migratable
// unit of file I/O state: capture produces a platform-laid-out image plus
// its CGT-RMR tag; restore reopens every descriptor against the shared
// filesystem at the recorded offset.
type Table struct {
	fs   *SharedFS
	next int32
	open map[int32]*File
}

// NewTable returns an empty table over a shared filesystem. Descriptors
// start at 3, after the conventional stdio range.
func NewTable(fs *SharedFS) *Table {
	return &Table{fs: fs, next: 3, open: make(map[int32]*File)}
}

// Open opens path with the given mode and returns its descriptor.
func (t *Table) Open(path string, mode Mode) (int32, error) {
	if len(path) >= pathCap {
		return 0, fmt.Errorf("migio: path %q exceeds %d bytes", path, pathCap-1)
	}
	f, err := t.fs.open(path, mode)
	if err != nil {
		return 0, err
	}
	fd := t.next
	t.next++
	t.open[fd] = f
	return fd, nil
}

// File resolves a descriptor.
func (t *Table) File(fd int32) (*File, error) {
	f, ok := t.open[fd]
	if !ok {
		return nil, fmt.Errorf("migio: bad descriptor %d", fd)
	}
	return f, nil
}

// Close closes and releases a descriptor.
func (t *Table) Close(fd int32) error {
	f, ok := t.open[fd]
	if !ok {
		return fmt.Errorf("migio: bad descriptor %d", fd)
	}
	delete(t.open, fd)
	return f.Close()
}

// Len returns the number of open descriptors.
func (t *Table) Len() int { return len(t.open) }

// FDs returns the open descriptors in ascending order.
func (t *Table) FDs() []int32 {
	out := make([]int32, 0, len(t.open))
	for fd := range t.open {
		out = append(out, fd)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// recordType is the serialized per-descriptor record:
//
//	struct { int fd; int mode; long long offset; char path[128]; }
func recordType() tag.Struct {
	return tag.Struct{Name: "fdrec", Fields: []tag.Field{
		{Name: "fd", T: tag.Int()},
		{Name: "mode", T: tag.Int()},
		{Name: "offset", T: tag.LongLong()},
		{Name: "path", T: tag.Array{Elem: tag.Char(), N: pathCap}},
	}}
}

// imageType is the whole table image: struct { int count; fdrec e[count]; }
func imageType(count int) tag.Struct {
	fields := []tag.Field{{Name: "count", T: tag.Int()}}
	if count > 0 {
		fields = append(fields, tag.Field{Name: "entries", T: tag.Array{Elem: recordType(), N: count}})
	}
	return tag.Struct{Name: "fdtable", Fields: fields}
}

// Capture serializes the table into p's byte layout, returning the image
// and its CGT-RMR tag string — the same portable form MigThread uses for
// every other piece of thread state.
func (t *Table) Capture(p *platform.Platform) ([]byte, string, error) {
	fds := t.FDs()
	typ := imageType(len(fds))
	layout, err := tag.NewLayout(typ, p)
	if err != nil {
		return nil, "", err
	}
	img := make([]byte, layout.Size)
	countOff, err := layout.Offset("count")
	if err != nil {
		return nil, "", err
	}
	p.PutInt(img[countOff:], 4, int64(len(fds)))
	if len(fds) > 0 {
		entriesOff, err := layout.Offset("entries")
		if err != nil {
			return nil, "", err
		}
		recLayout, err := tag.NewLayout(recordType(), p)
		if err != nil {
			return nil, "", err
		}
		fdOff, _ := recLayout.Offset("fd")
		modeOff, _ := recLayout.Offset("mode")
		offOff, _ := recLayout.Offset("offset")
		pathOff, _ := recLayout.Offset("path")
		for i, fd := range fds {
			f := t.open[fd]
			base := entriesOff + i*recLayout.Size
			p.PutInt(img[base+fdOff:], 4, int64(fd))
			p.PutInt(img[base+modeOff:], 4, int64(f.mode))
			p.PutInt(img[base+offOff:], 8, f.off)
			copy(img[base+pathOff:base+pathOff+pathCap-1], f.path)
		}
	}
	return img, tag.FromLayout(layout).String(), nil
}

// RestoreTable rebuilds a descriptor table on destPlat from an image
// captured on the platform named srcPlatName, converting receiver-makes-
// right and reopening every file against fs at its recorded offset.
func RestoreTable(fs *SharedFS, destPlat *platform.Platform, srcPlatName, tagStr string, img []byte) (*Table, error) {
	srcPlat := platform.ByName(srcPlatName)
	if srcPlat == nil {
		return nil, fmt.Errorf("migio: unknown source platform %q", srcPlatName)
	}
	// The record count is the leading int; everything else follows from
	// it. Reading it needs only the source byte order.
	if len(img) < 4 {
		return nil, fmt.Errorf("migio: table image of %d bytes is too short", len(img))
	}
	count := int(srcPlat.Int(img, 4))
	if count < 0 || count > 1<<20 {
		return nil, fmt.Errorf("migio: implausible descriptor count %d", count)
	}
	typ := imageType(count)
	srcLayout, err := tag.NewLayout(typ, srcPlat)
	if err != nil {
		return nil, err
	}
	if want := tag.FromLayout(srcLayout).String(); tagStr != want {
		return nil, fmt.Errorf("migio: table tag %q does not match expected %q", tagStr, want)
	}
	if len(img) != srcLayout.Size {
		return nil, fmt.Errorf("migio: table image %d bytes, want %d", len(img), srcLayout.Size)
	}
	dstLayout, err := tag.NewLayout(typ, destPlat)
	if err != nil {
		return nil, err
	}
	out, _, err := convert.Value(dstLayout, img, srcLayout, convert.Options{Ptr: convert.PtrAnnul})
	if err != nil {
		return nil, err
	}

	t := NewTable(fs)
	if count == 0 {
		return t, nil
	}
	entriesOff, err := dstLayout.Offset("entries")
	if err != nil {
		return nil, err
	}
	recLayout, err := tag.NewLayout(recordType(), destPlat)
	if err != nil {
		return nil, err
	}
	fdOff, _ := recLayout.Offset("fd")
	modeOff, _ := recLayout.Offset("mode")
	offOff, _ := recLayout.Offset("offset")
	pathOff, _ := recLayout.Offset("path")
	for i := 0; i < count; i++ {
		base := entriesOff + i*recLayout.Size
		fd := int32(destPlat.Int(out[base+fdOff:], 4))
		mode := Mode(destPlat.Int(out[base+modeOff:], 4))
		off := destPlat.Int(out[base+offOff:], 8)
		raw := out[base+pathOff : base+pathOff+pathCap]
		path := cString(raw)
		f, err := fs.open(path, mode)
		if err != nil {
			return nil, fmt.Errorf("migio: reopening fd %d: %w", fd, err)
		}
		if _, err := f.Seek(off, io.SeekStart); err != nil {
			return nil, fmt.Errorf("migio: reseeking fd %d: %w", fd, err)
		}
		t.open[fd] = f
		if fd >= t.next {
			t.next = fd + 1
		}
	}
	return t, nil
}

// cString trims a zero-padded C string buffer.
func cString(b []byte) string {
	for i, c := range b {
		if c == 0 {
			return string(b[:i])
		}
	}
	return string(b)
}
