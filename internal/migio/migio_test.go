package migio

import (
	"bytes"
	"io"
	"testing"

	"hetdsm/internal/platform"
)

func TestSharedFSBasics(t *testing.T) {
	fs := NewSharedFS()
	fs.WriteFile("/data/in.txt", []byte("hello"))
	got, err := fs.ReadFile("/data/in.txt")
	if err != nil || string(got) != "hello" {
		t.Fatalf("ReadFile = %q, %v", got, err)
	}
	if _, err := fs.ReadFile("/nope"); err == nil {
		t.Error("missing file must fail")
	}
	if sz, _ := fs.Size("/data/in.txt"); sz != 5 {
		t.Errorf("Size = %d", sz)
	}
	fs.WriteFile("/a", nil)
	if got := fs.List(); len(got) != 2 || got[0] != "/a" {
		t.Errorf("List = %v", got)
	}
	if err := fs.Remove("/a"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Remove("/a"); err == nil {
		t.Error("double remove must fail")
	}
}

func TestFileReadWriteSeek(t *testing.T) {
	fs := NewSharedFS()
	fs.WriteFile("/f", []byte("0123456789"))
	tb := NewTable(fs)
	fd, err := tb.Open("/f", ModeReadWrite)
	if err != nil {
		t.Fatal(err)
	}
	f, err := tb.File(fd)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4)
	if n, err := f.Read(buf); err != nil || n != 4 || string(buf) != "0123" {
		t.Fatalf("Read = %d %q %v", n, buf, err)
	}
	if f.Offset() != 4 {
		t.Errorf("offset = %d", f.Offset())
	}
	if _, err := f.Write([]byte("XY")); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		t.Fatal(err)
	}
	all := make([]byte, 10)
	if _, err := io.ReadFull(f, all); err != nil {
		t.Fatal(err)
	}
	if string(all) != "0123XY6789" {
		t.Errorf("content = %q", all)
	}
	// EOF at end.
	if _, err := f.Read(buf); err != io.EOF {
		t.Errorf("read at EOF = %v", err)
	}
	// Seek end + extend by write.
	if pos, err := f.Seek(0, io.SeekEnd); err != nil || pos != 10 {
		t.Fatalf("seek end = %d %v", pos, err)
	}
	if _, err := f.Write([]byte("!!")); err != nil {
		t.Fatal(err)
	}
	if sz, _ := fs.Size("/f"); sz != 12 {
		t.Errorf("size after extend = %d", sz)
	}
	// Negative seek rejected.
	if _, err := f.Seek(-1, io.SeekStart); err == nil {
		t.Error("negative seek must fail")
	}
	if err := tb.Close(fd); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Read(buf); err == nil {
		t.Error("read after close must fail")
	}
	if err := tb.Close(fd); err == nil {
		t.Error("double close must fail")
	}
}

func TestModeEnforcement(t *testing.T) {
	fs := NewSharedFS()
	fs.WriteFile("/r", []byte("x"))
	tb := NewTable(fs)
	rfd, err := tb.Open("/r", ModeRead)
	if err != nil {
		t.Fatal(err)
	}
	rf, _ := tb.File(rfd)
	if _, err := rf.Write([]byte("y")); err == nil {
		t.Error("write on read-only must fail")
	}
	wfd, err := tb.Open("/w", ModeWrite) // created on open
	if err != nil {
		t.Fatal(err)
	}
	wf, _ := tb.File(wfd)
	if _, err := wf.Read(make([]byte, 1)); err == nil {
		t.Error("read on write-only must fail")
	}
	if _, err := tb.Open("/missing", ModeRead); err == nil {
		t.Error("read-open of missing file must fail")
	}
}

func TestTableCaptureRestoreHeterogeneous(t *testing.T) {
	fs := NewSharedFS()
	fs.WriteFile("/input.dat", bytes.Repeat([]byte("abcdefgh"), 100))
	fs.WriteFile("/log", nil)

	// Thread on SPARC opens two files and reads part of one.
	src := NewTable(fs)
	in, err := src.Open("/input.dat", ModeRead)
	if err != nil {
		t.Fatal(err)
	}
	logFD, err := src.Open("/log", ModeWrite)
	if err != nil {
		t.Fatal(err)
	}
	inF, _ := src.File(in)
	if _, err := io.ReadFull(inF, make([]byte, 300)); err != nil {
		t.Fatal(err)
	}
	logF, _ := src.File(logFD)
	if _, err := logF.Write([]byte("progress=300\n")); err != nil {
		t.Fatal(err)
	}

	// Capture on SPARC, restore on x86 — file-I/O migration.
	img, tagStr, err := src.Capture(platform.SolarisSPARC)
	if err != nil {
		t.Fatal(err)
	}
	dst, err := RestoreTable(fs, platform.LinuxX86, platform.SolarisSPARC.Name, tagStr, img)
	if err != nil {
		t.Fatal(err)
	}
	if dst.Len() != 2 {
		t.Fatalf("restored %d descriptors, want 2", dst.Len())
	}
	// Same fds, same offsets, same modes.
	inF2, err := dst.File(in)
	if err != nil {
		t.Fatal(err)
	}
	if inF2.Offset() != 300 || inF2.Mode() != ModeRead || inF2.Path() != "/input.dat" {
		t.Errorf("restored input fd = %q %v off=%d", inF2.Path(), inF2.Mode(), inF2.Offset())
	}
	// Reading continues exactly where the source stopped.
	next := make([]byte, 8)
	if _, err := io.ReadFull(inF2, next); err != nil {
		t.Fatal(err)
	}
	want, _ := fs.ReadFile("/input.dat")
	if !bytes.Equal(next, want[300:308]) {
		t.Errorf("post-migration read = %q, want %q", next, want[300:308])
	}
	// The write-side descriptor appends where it left off.
	logF2, err := dst.File(logFD)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := logF2.Write([]byte("resumed\n")); err != nil {
		t.Fatal(err)
	}
	logData, _ := fs.ReadFile("/log")
	if string(logData) != "progress=300\nresumed\n" {
		t.Errorf("log = %q", logData)
	}
	// New opens on the restored table do not collide with old fds.
	fd3, err := dst.Open("/input.dat", ModeRead)
	if err != nil {
		t.Fatal(err)
	}
	if fd3 == in || fd3 == logFD {
		t.Errorf("fd collision: %d", fd3)
	}
}

func TestTableCaptureEmpty(t *testing.T) {
	fs := NewSharedFS()
	img, tagStr, err := NewTable(fs).Capture(platform.LinuxX86)
	if err != nil {
		t.Fatal(err)
	}
	dst, err := RestoreTable(fs, platform.SolarisSPARC, platform.LinuxX86.Name, tagStr, img)
	if err != nil {
		t.Fatal(err)
	}
	if dst.Len() != 0 {
		t.Errorf("restored %d descriptors", dst.Len())
	}
}

func TestRestoreTableValidation(t *testing.T) {
	fs := NewSharedFS()
	fs.WriteFile("/f", []byte("x"))
	tb := NewTable(fs)
	if _, err := tb.Open("/f", ModeRead); err != nil {
		t.Fatal(err)
	}
	img, tagStr, err := tb.Capture(platform.LinuxX86)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RestoreTable(fs, platform.SolarisSPARC, "vax", tagStr, img); err == nil {
		t.Error("unknown platform accepted")
	}
	if _, err := RestoreTable(fs, platform.SolarisSPARC, platform.LinuxX86.Name, "(4,1)(0,0)", img); err == nil {
		t.Error("wrong tag accepted")
	}
	if _, err := RestoreTable(fs, platform.SolarisSPARC, platform.LinuxX86.Name, tagStr, img[:8]); err == nil {
		t.Error("short image accepted")
	}
	if _, err := RestoreTable(fs, platform.SolarisSPARC, platform.LinuxX86.Name, tagStr, nil); err == nil {
		t.Error("empty image accepted")
	}
}

func TestPathTooLongRejected(t *testing.T) {
	fs := NewSharedFS()
	tb := NewTable(fs)
	long := "/" + string(bytes.Repeat([]byte("a"), pathCap))
	if _, err := tb.Open(long, ModeWrite); err == nil {
		t.Error("oversized path accepted")
	}
}
