package migio_test

import (
	"io"
	"sync"
	"testing"

	"hetdsm/internal/dsd"
	"hetdsm/internal/migio"
	"hetdsm/internal/migthread"
	"hetdsm/internal/platform"
	"hetdsm/internal/tag"
	"hetdsm/internal/transport"
)

// fileWork streams a shared input file in chunks, folding a checksum. The
// open file's descriptor table travels with the thread when it migrates:
// CaptureExtra serializes it with CGT-RMR tags, Restore reopens it on the
// destination platform at the exact offset. This is the paper's
// "supporting file I/O migration" future-work item, end to end.
type fileWork struct {
	fs    *migio.SharedFS
	path  string
	chunk int

	table *migio.Table
	fd    int32
	hook  func(pc int64)
}

func (w *fileWork) FrameType() tag.Struct {
	return tag.Struct{Name: "frame", Fields: []tag.Field{
		{Name: "fd", T: tag.Int()},
		{Name: "sum", T: tag.LongLong()},
	}}
}

func (w *fileWork) Init(ctx *migthread.Ctx) error {
	w.table = migio.NewTable(w.fs)
	fd, err := w.table.Open(w.path, migio.ModeRead)
	if err != nil {
		return err
	}
	w.fd = fd
	if err := ctx.Frame().SetInt("fd", int64(fd)); err != nil {
		return err
	}
	return ctx.Frame().SetInt("sum", 0)
}

// CaptureExtra ships the descriptor table with the thread state.
func (w *fileWork) CaptureExtra(ctx *migthread.Ctx) ([]byte, string, error) {
	return w.table.Capture(ctx.Platform())
}

// Restore rebuilds the descriptor table on the destination platform.
func (w *fileWork) Restore(ctx *migthread.Ctx) error {
	payload, tagStr, srcPlat := ctx.Extra()
	table, err := migio.RestoreTable(w.fs, ctx.Platform(), srcPlat, tagStr, payload)
	if err != nil {
		return err
	}
	w.table = table
	fd, err := ctx.Frame().Int("fd")
	if err != nil {
		return err
	}
	w.fd = int32(fd)
	return nil
}

func (w *fileWork) Step(ctx *migthread.Ctx) (bool, error) {
	f, err := w.table.File(w.fd)
	if err != nil {
		return false, err
	}
	sum, err := ctx.Frame().Int("sum")
	if err != nil {
		return false, err
	}
	buf := make([]byte, w.chunk)
	n, err := f.Read(buf)
	for i := 0; i < n; i++ {
		sum = sum*31 + int64(buf[i])
	}
	if err := ctx.Frame().SetInt("sum", sum); err != nil {
		return false, err
	}
	if w.hook != nil {
		w.hook(ctx.PC())
	}
	if err == io.EOF || n < w.chunk {
		// Publish the checksum and finish.
		if err := ctx.T.Lock(0); err != nil {
			return false, err
		}
		if err := ctx.T.Globals().MustVar("sum").SetInt(0, sum); err != nil {
			return false, err
		}
		if err := ctx.T.Unlock(0); err != nil {
			return false, err
		}
		return true, nil
	}
	if err != nil && err != io.EOF {
		return false, err
	}
	return false, nil
}

func TestFileIOMigratesWithThread(t *testing.T) {
	fs := migio.NewSharedFS()
	data := make([]byte, 64*1024)
	for i := range data {
		data[i] = byte(i*7 + 3)
	}
	fs.WriteFile("/input.bin", data)

	// Ground truth checksum.
	var want int64
	for _, b := range data {
		want = want*31 + int64(b)
	}

	gthv := tag.Struct{Name: "GThV_t", Fields: []tag.Field{
		{Name: "sum", T: tag.LongLong()},
	}}
	nw := transport.NewInproc()
	home, err := dsd.NewHome(gthv, platform.LinuxX86, 1, dsd.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	hl, err := nw.Listen("home")
	if err != nil {
		t.Fatal(err)
	}
	go home.Serve(hl)
	defer home.Close()

	n1 := migthread.NewNode("x86", platform.LinuxX86, nw, "home", gthv, dsd.DefaultOptions())
	n2 := migthread.NewNode("sparc", platform.SolarisSPARC, nw, "home", gthv, dsd.DefaultOptions())
	if err := n1.ListenMigrations("x86-mig"); err != nil {
		t.Fatal(err)
	}
	if err := n2.ListenMigrations("sparc-mig"); err != nil {
		t.Fatal(err)
	}
	defer n1.Close()
	defer n2.Close()

	var once sync.Once
	w := &fileWork{fs: fs, path: "/input.bin", chunk: 1024}
	w.hook = func(pc int64) {
		if pc >= 10 {
			once.Do(func() {
				if err := n1.RequestMigration(0, n2.MigrationAddr()); err != nil {
					t.Errorf("request: %v", err)
				}
			})
		}
	}
	if _, err := n2.StartSkeleton(0, &fileWork{fs: fs, path: "/input.bin", chunk: 1024}); err != nil {
		t.Fatal(err)
	}
	if _, err := n1.StartThread(0, w, migthread.RoleLocal); err != nil {
		t.Fatal(err)
	}
	if err := n1.WaitAll(); err != nil {
		t.Fatal(err)
	}
	if err := n2.WaitAll(); err != nil {
		t.Fatal(err)
	}
	home.Wait()

	if len(n1.Migrations()) != 1 {
		t.Fatalf("expected 1 migration, got %d", len(n1.Migrations()))
	}
	got, err := home.Globals().MustVar("sum").Int(0)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("checksum = %d, want %d — file offset did not survive migration", got, want)
	}
	role, _ := n2.Role(0)
	if role != migthread.RoleDone {
		t.Errorf("destination role = %v", role)
	}
}
