// Package check is the correctness oracle for deterministic DSM runs: it
// records every thread's synchronization operations and typed replica
// accesses through the dsd.Recorder interface, then validates the recorded
// history against an explicit release-consistency model.
//
// The model mirrors the paper's home-based protocol at the level of
// observable values, not wire traffic: each rank owns a model replica,
// writes are locally visible immediately and commit to the model master at
// release points (unlock, barrier enter, join), and replicas refresh from
// the master at acquire points (lock grant, barrier exit). Against that
// model the checker enforces:
//
//   - mutual exclusion — two ranks never hold the same mutex, including
//     nested and overlapping acquisition chains (a rank may hold several
//     mutexes; each is tracked independently);
//   - read coherence — every read observes exactly the value the model
//     replica holds, i.e. the latest write ordered before it by the
//     happens-before edges of any release/acquire pair — lock-release
//     edges alone are sufficient, so barrier-free producer/consumer
//     phases validate without ever entering a barrier;
//   - pointer coherence — pointer cells are modeled by their logical
//     (member, element) target rather than the platform-specific address,
//     so a stale or mistranslated pointer chase is flagged on
//     heterogeneous mixes too;
//   - barrier epoch consistency — all enters of generation i precede every
//     exit of generation i, with exactly one enter per participating rank;
//   - join finality — no rank acts after announcing termination.
//
// A violation carries the offending event and a minimized slice of the
// history (the events that touch the same cell or the same synchronization
// object), so a failing seed prints a readable reproducer instead of ten
// thousand raw events.
package check

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Op classifies a history event.
type Op uint8

// The event kinds a Recorder produces.
const (
	OpAcquire Op = iota
	OpRelease
	OpBarrierEnter
	OpBarrierExit
	OpJoin
	OpRead
	OpWrite
	// OpPtrWrite and OpPtrRead are pointer-cell accesses. Raw addresses
	// differ per platform, so the recorded value is the logical target the
	// address resolves to — a (member, element) pair — which is identical
	// on every platform and therefore comparable across a heterogeneous
	// run.
	OpPtrWrite
	OpPtrRead
)

// String returns the lowercase op name.
func (o Op) String() string {
	switch o {
	case OpAcquire:
		return "acquire"
	case OpRelease:
		return "release"
	case OpBarrierEnter:
		return "barrier-enter"
	case OpBarrierExit:
		return "barrier-exit"
	case OpJoin:
		return "join"
	case OpRead:
		return "read"
	case OpWrite:
		return "write"
	case OpPtrWrite:
		return "ptr-write"
	case OpPtrRead:
		return "ptr-read"
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// Event is one recorded occurrence. Stamp is the global arrival order at
// the History — a valid linearization of the run that produced it, because
// every hook fires at the moment its effect is visible to the thread.
type Event struct {
	Stamp uint64
	Rank  int32
	Op    Op
	// Sync is the mutex or barrier index; -1 for join/read/write.
	Sync int
	// Var and Index name the accessed cell for OpRead/OpWrite and the
	// pointer ops.
	Var   string
	Index int
	// Value is the canonical stored/loaded value for OpRead/OpWrite.
	Value int64
	// Target and TargetIndex are the logical cell a pointer op's address
	// resolves to; Target is "" (and TargetIndex -1) for a null or
	// unresolvable address.
	Target      string
	TargetIndex int
}

// targetString renders a pointer op's logical target.
func (e Event) targetString() string {
	if e.Target == "" {
		return "<nil>"
	}
	return fmt.Sprintf("%s[%d]", e.Target, e.TargetIndex)
}

// String renders one event for violation traces.
func (e Event) String() string {
	switch e.Op {
	case OpRead, OpWrite:
		return fmt.Sprintf("#%04d r%d %s %s[%d] = %d", e.Stamp, e.Rank, e.Op, e.Var, e.Index, e.Value)
	case OpPtrRead, OpPtrWrite:
		return fmt.Sprintf("#%04d r%d %s %s[%d] -> %s", e.Stamp, e.Rank, e.Op, e.Var, e.Index, e.targetString())
	case OpJoin:
		return fmt.Sprintf("#%04d r%d join", e.Stamp, e.Rank)
	default:
		return fmt.Sprintf("#%04d r%d %s %d", e.Stamp, e.Rank, e.Op, e.Sync)
	}
}

// History accumulates events from concurrently running threads. It
// implements dsd.Recorder; install it via dsd.Options.Recorder on every
// thread of a run, then hand Events() to Validate.
type History struct {
	mu     sync.Mutex
	events []Event
}

// NewHistory returns an empty history.
func NewHistory() *History { return &History{} }

func (h *History) add(e Event) {
	h.mu.Lock()
	e.Stamp = uint64(len(h.events))
	h.events = append(h.events, e)
	h.mu.Unlock()
}

// Acquire implements dsd.Recorder.
func (h *History) Acquire(rank int32, mutex int) {
	h.add(Event{Rank: rank, Op: OpAcquire, Sync: mutex})
}

// Release implements dsd.Recorder.
func (h *History) Release(rank int32, mutex int) {
	h.add(Event{Rank: rank, Op: OpRelease, Sync: mutex})
}

// BarrierEnter implements dsd.Recorder.
func (h *History) BarrierEnter(rank int32, barrier int) {
	h.add(Event{Rank: rank, Op: OpBarrierEnter, Sync: barrier})
}

// BarrierExit implements dsd.Recorder.
func (h *History) BarrierExit(rank int32, barrier int) {
	h.add(Event{Rank: rank, Op: OpBarrierExit, Sync: barrier})
}

// Join implements dsd.Recorder.
func (h *History) Join(rank int32) {
	h.add(Event{Rank: rank, Op: OpJoin, Sync: -1})
}

// Read implements dsd.Recorder.
func (h *History) Read(rank int32, name string, index int, value int64) {
	h.add(Event{Rank: rank, Op: OpRead, Sync: -1, Var: name, Index: index, Value: value})
}

// Write implements dsd.Recorder.
func (h *History) Write(rank int32, name string, index int, value int64) {
	h.add(Event{Rank: rank, Op: OpWrite, Sync: -1, Var: name, Index: index, Value: value})
}

// WritePtr implements dsd.Recorder.
func (h *History) WritePtr(rank int32, name string, index int, target string, targetIndex int) {
	h.add(Event{Rank: rank, Op: OpPtrWrite, Sync: -1, Var: name, Index: index, Target: target, TargetIndex: targetIndex})
}

// ReadPtr implements dsd.Recorder.
func (h *History) ReadPtr(rank int32, name string, index int, target string, targetIndex int) {
	h.add(Event{Rank: rank, Op: OpPtrRead, Sync: -1, Var: name, Index: index, Target: target, TargetIndex: targetIndex})
}

// Events returns a copy of the history in stamp order.
func (h *History) Events() []Event {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]Event, len(h.events))
	copy(out, h.events)
	return out
}

// Len returns the number of recorded events.
func (h *History) Len() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.events)
}

// PerRank splits the history into per-rank sequences, preserving each
// rank's program order.
func PerRank(events []Event) map[int32][]Event {
	out := make(map[int32][]Event)
	for _, e := range events {
		out[e.Rank] = append(out[e.Rank], e)
	}
	return out
}

// Canonical renders the history as a deterministic byte string: one line
// per event, grouped by rank in rank order, without global stamps. Global
// stamps vary run to run for concurrent phases (barrier arrivals race for
// the history mutex), but each rank's own sequence is its program order —
// so two runs of the same deterministic plan produce byte-identical
// canonical traces, which is the replay guarantee dsmsim asserts.
func Canonical(events []Event) []byte {
	byRank := PerRank(events)
	ranks := make([]int32, 0, len(byRank))
	for r := range byRank {
		ranks = append(ranks, r)
	}
	sort.Slice(ranks, func(i, j int) bool { return ranks[i] < ranks[j] })
	var b strings.Builder
	for _, r := range ranks {
		fmt.Fprintf(&b, "rank %d:\n", r)
		for _, e := range byRank[r] {
			switch e.Op {
			case OpRead, OpWrite:
				fmt.Fprintf(&b, "  %s %s[%d] = %d\n", e.Op, e.Var, e.Index, e.Value)
			case OpPtrRead, OpPtrWrite:
				fmt.Fprintf(&b, "  %s %s[%d] -> %s\n", e.Op, e.Var, e.Index, e.targetString())
			case OpJoin:
				fmt.Fprintf(&b, "  join\n")
			default:
				fmt.Fprintf(&b, "  %s %d\n", e.Op, e.Sync)
			}
		}
	}
	return []byte(b.String())
}

// Violation is one detected inconsistency.
type Violation struct {
	// Msg states what rule broke and how.
	Msg string
	// Event is the offending event.
	Event Event
	// Trace is the minimized context: the events relevant to the
	// violation, in stamp order, ending with the offending event.
	Trace []Event
}

// String renders the violation with its minimized trace.
func (v Violation) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "violation: %s\n  at: %s\n  minimized trace (%d events):\n", v.Msg, v.Event, len(v.Trace))
	for _, e := range v.Trace {
		fmt.Fprintf(&b, "    %s\n", e)
	}
	return b.String()
}

// cell addresses one element of one GThV member.
type cell struct {
	name  string
	index int
}

// model is the release-consistency reference machine Validate replays the
// history through.
type model struct {
	mem    map[cell]int64           // committed master state
	repl   map[int32]map[cell]int64 // per-rank replica view
	dirty  map[int32]map[cell]bool  // per-rank uncommitted writes
	holder map[int]int32            // mutex -> holding rank (or none)
}

func newModel() *model {
	return &model{
		mem:    make(map[cell]int64),
		repl:   make(map[int32]map[cell]int64),
		dirty:  make(map[int32]map[cell]bool),
		holder: make(map[int]int32),
	}
}

func (m *model) replOf(r int32) map[cell]int64 {
	v, ok := m.repl[r]
	if !ok {
		v = make(map[cell]int64)
		m.repl[r] = v
	}
	return v
}

func (m *model) dirtyOf(r int32) map[cell]bool {
	v, ok := m.dirty[r]
	if !ok {
		v = make(map[cell]bool)
		m.dirty[r] = v
	}
	return v
}

// commit flushes rank r's dirty cells into the master (a release point).
func (m *model) commit(r int32) {
	repl := m.replOf(r)
	for c := range m.dirtyOf(r) {
		m.mem[c] = repl[c]
	}
	m.dirty[r] = make(map[cell]bool)
}

// refresh brings rank r's replica up to the master (an acquire point),
// keeping locally dirty cells authoritative.
func (m *model) refresh(r int32) {
	repl := m.replOf(r)
	dirty := m.dirtyOf(r)
	for c, v := range m.mem {
		if !dirty[c] {
			repl[c] = v
		}
	}
}

// Validate replays the history in stamp order through the model and
// returns every violation found. nranks is the number of barrier
// participants (every rank is expected at every barrier generation);
// pass 0 to infer it from the distinct ranks present.
func Validate(events []Event, nranks int) []Violation {
	if nranks == 0 {
		seen := make(map[int32]bool)
		for _, e := range events {
			seen[e.Rank] = true
		}
		nranks = len(seen)
	}
	m := newModel()
	var out []Violation
	report := func(e Event, format string, args ...interface{}) {
		out = append(out, Violation{
			Msg:   fmt.Sprintf(format, args...),
			Event: e,
			Trace: Minimize(events, e, 40),
		})
	}

	// Pointer cells hold logical targets, not integers. Intern each
	// distinct (member, element) target into a nonzero id so pointer
	// events flow through the same replica machinery as integer cells;
	// a never-written (null) pointer stays id 0.
	ptrIDs := make(map[cell]int64)
	ptrNames := make(map[int64]string)
	ptrID := func(e Event) int64 {
		if e.Target == "" {
			return 0
		}
		t := cell{e.Target, e.TargetIndex}
		id, ok := ptrIDs[t]
		if !ok {
			id = int64(len(ptrIDs) + 1)
			ptrIDs[t] = id
			ptrNames[id] = fmt.Sprintf("%s[%d]", e.Target, e.TargetIndex)
		}
		return id
	}
	ptrName := func(id int64) string {
		if id == 0 {
			return "<nil>"
		}
		return ptrNames[id]
	}

	type epoch struct{ barrier, gen int }
	enters := make(map[epoch]int) // arrivals per barrier generation
	rankGen := make(map[int32]map[int]int)
	pendingBarrier := make(map[int32]*epoch)
	joined := make(map[int32]bool)

	genOf := func(r int32) map[int]int {
		g, ok := rankGen[r]
		if !ok {
			g = make(map[int]int)
			rankGen[r] = g
		}
		return g
	}

	for _, e := range events {
		if joined[e.Rank] {
			report(e, "rank %d acted after join", e.Rank)
			continue
		}
		switch e.Op {
		case OpAcquire:
			if h, held := m.holder[e.Sync]; held {
				report(e, "mutual exclusion broken: rank %d acquired mutex %d while rank %d holds it", e.Rank, e.Sync, h)
			}
			m.holder[e.Sync] = e.Rank
			m.refresh(e.Rank)
		case OpRelease:
			h, held := m.holder[e.Sync]
			if !held || h != e.Rank {
				report(e, "rank %d released mutex %d it does not hold", e.Rank, e.Sync)
			}
			delete(m.holder, e.Sync)
			m.commit(e.Rank)
		case OpBarrierEnter:
			if p := pendingBarrier[e.Rank]; p != nil {
				report(e, "rank %d entered barrier %d while still inside barrier %d", e.Rank, e.Sync, p.barrier)
			}
			g := genOf(e.Rank)
			ep := epoch{barrier: e.Sync, gen: g[e.Sync]}
			g[e.Sync]++
			enters[ep]++
			pendingBarrier[e.Rank] = &ep
			m.commit(e.Rank)
		case OpBarrierExit:
			p := pendingBarrier[e.Rank]
			if p == nil || p.barrier != e.Sync {
				report(e, "rank %d exited barrier %d without entering it", e.Rank, e.Sync)
			} else {
				if got := enters[*p]; got != nranks {
					report(e, "barrier %d generation %d opened with %d/%d arrivals", p.barrier, p.gen, got, nranks)
				}
				pendingBarrier[e.Rank] = nil
			}
			m.refresh(e.Rank)
		case OpJoin:
			m.commit(e.Rank)
			joined[e.Rank] = true
		case OpWrite:
			c := cell{e.Var, e.Index}
			m.replOf(e.Rank)[c] = e.Value
			m.dirtyOf(e.Rank)[c] = true
		case OpRead:
			c := cell{e.Var, e.Index}
			if want := m.replOf(e.Rank)[c]; e.Value != want {
				report(e, "stale read: rank %d read %s[%d] = %d, release-consistency model expects %d",
					e.Rank, e.Var, e.Index, e.Value, want)
			}
		case OpPtrWrite:
			c := cell{e.Var, e.Index}
			m.replOf(e.Rank)[c] = ptrID(e)
			m.dirtyOf(e.Rank)[c] = true
		case OpPtrRead:
			c := cell{e.Var, e.Index}
			if got, want := ptrID(e), m.replOf(e.Rank)[c]; got != want {
				report(e, "stale pointer read: rank %d read %s[%d] -> %s, release-consistency model expects %s",
					e.Rank, e.Var, e.Index, ptrName(got), ptrName(want))
			}
		}
	}
	return out
}

// FinalState replays the history and returns the model's committed master
// state, cell by cell. Compare it against the home's master replica to
// catch corruption that no read observed (e.g. a corrupted last write).
func FinalState(events []Event) map[string]map[int]int64 {
	m := newModel()
	for _, e := range events {
		switch e.Op {
		case OpAcquire, OpBarrierExit:
			m.refresh(e.Rank)
		case OpRelease, OpBarrierEnter, OpJoin:
			m.commit(e.Rank)
		case OpWrite:
			c := cell{e.Var, e.Index}
			m.replOf(e.Rank)[c] = e.Value
			m.dirtyOf(e.Rank)[c] = true
		}
	}
	out := make(map[string]map[int]int64)
	for c, v := range m.mem {
		inner, ok := out[c.name]
		if !ok {
			inner = make(map[int]int64)
			out[c.name] = inner
		}
		inner[c.index] = v
	}
	return out
}

// PtrTarget is the logical cell a committed pointer resolves to.
type PtrTarget struct {
	Var string
	// Index is the element index inside Var; -1 with Var "" for null.
	Index int
}

// String renders the target like the violation traces do.
func (t PtrTarget) String() string {
	if t.Var == "" {
		return "<nil>"
	}
	return fmt.Sprintf("%s[%d]", t.Var, t.Index)
}

// FinalPtrState replays the history's pointer writes through the release
// model and returns the committed master target of every pointer cell.
// Compare it against the home's master pointer values (resolved through its
// own index table) to catch a corrupted or untranslated committed pointer
// that no chase observed.
func FinalPtrState(events []Event) map[string]map[int]PtrTarget {
	mem := make(map[cell]PtrTarget)
	repl := make(map[int32]map[cell]PtrTarget)
	dirty := make(map[int32]map[cell]bool)
	for _, e := range events {
		switch e.Op {
		case OpRelease, OpBarrierEnter, OpJoin:
			for c := range dirty[e.Rank] {
				mem[c] = repl[e.Rank][c]
			}
			dirty[e.Rank] = nil
		case OpPtrWrite:
			if repl[e.Rank] == nil {
				repl[e.Rank] = make(map[cell]PtrTarget)
				dirty[e.Rank] = make(map[cell]bool)
			} else if dirty[e.Rank] == nil {
				dirty[e.Rank] = make(map[cell]bool)
			}
			c := cell{e.Var, e.Index}
			repl[e.Rank][c] = PtrTarget{Var: e.Target, Index: e.TargetIndex}
			dirty[e.Rank][c] = true
		}
	}
	out := make(map[string]map[int]PtrTarget)
	for c, t := range mem {
		inner, ok := out[c.name]
		if !ok {
			inner = make(map[int]PtrTarget)
			out[c.name] = inner
		}
		inner[c.index] = t
	}
	return out
}

// Minimize extracts the events relevant to bad from the full history: for
// a data or pointer violation, the accesses to the same cell plus
// bad.Rank's synchronization events; for a synchronization violation, every
// event on the same object. At most limit events are kept, nearest to bad.
func Minimize(events []Event, bad Event, limit int) []Event {
	var kept []Event
	for _, e := range events {
		if e.Stamp > bad.Stamp {
			break
		}
		relevant := false
		switch bad.Op {
		case OpRead, OpWrite, OpPtrRead, OpPtrWrite:
			switch e.Op {
			case OpRead, OpWrite, OpPtrRead, OpPtrWrite:
				relevant = e.Var == bad.Var && e.Index == bad.Index
			default:
				relevant = e.Rank == bad.Rank
			}
		default:
			relevant = e.Sync == bad.Sync || e.Rank == bad.Rank
			switch e.Op {
			case OpRead, OpWrite, OpPtrRead, OpPtrWrite:
				relevant = e.Rank == bad.Rank
			}
		}
		if relevant || e.Stamp == bad.Stamp {
			kept = append(kept, e)
		}
	}
	if limit > 0 && len(kept) > limit {
		kept = kept[len(kept)-limit:]
	}
	return kept
}
