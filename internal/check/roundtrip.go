package check

import (
	"fmt"

	"hetdsm/internal/convert"
	"hetdsm/internal/platform"
	"hetdsm/internal/trace"
)

// RoundTripInts verifies that the signed-integer values survive a full
// receiver-makes-right round trip between the two platforms: encode on a,
// convert a→b, convert b→a, decode, compare. Heterogeneous simulation runs
// call it for every value class their workload stores, so a conversion
// regression surfaces as an explicit violation even when the run's reads
// happen to stay on one platform.
func RoundTripInts(vals []int64, ct platform.CType, a, b *platform.Platform) error {
	if len(vals) == 0 {
		return nil
	}
	aSize := a.CSizeOf(ct)
	src := make([]byte, aSize*len(vals))
	for i, v := range vals {
		a.PutInt(src[i*aSize:], aSize, v)
	}
	onB, _, err := convert.ScalarRun(nil, b, src, a, ct, len(vals), convert.Options{})
	if err != nil {
		return fmt.Errorf("check: %v %s→%s: %w", ct, a, b, err)
	}
	back, _, err := convert.ScalarRun(nil, a, onB, b, ct, len(vals), convert.Options{})
	if err != nil {
		return fmt.Errorf("check: %v %s→%s: %w", ct, b, a, err)
	}
	for i, want := range vals {
		if got := a.Int(back[i*aSize:], aSize); got != want {
			return fmt.Errorf("check: %v value %d corrupted on %s→%s→%s round trip: got %d",
				ct, want, a, b, a, got)
		}
	}
	return nil
}

// CrossCheckTrace reconciles the recorded history against the home-side
// protocol trace rings: every acquire in the history must be covered by a
// lock-grant event somewhere in the logs, and every barrier enter by an
// arrival. The comparison is one-sided (logs may hold MORE events —
// idempotent replays after reconnects re-grant and re-arrive) and is
// skipped for any ring that overflowed, since a wrapped ring undercounts.
func CrossCheckTrace(events []Event, logs ...*trace.Log) []Violation {
	grants, arrivals := 0, 0
	for _, l := range logs {
		if l == nil {
			continue
		}
		if l.Dropped() > 0 {
			return nil // wrapped ring undercounts; nothing sound to assert
		}
		grants += len(l.Filter(trace.KindLockGrant))
		arrivals += len(l.Filter(trace.KindBarrierArrive))
	}
	acquires, enters := 0, 0
	var lastAcquire, lastEnter Event
	for _, e := range events {
		switch e.Op {
		case OpAcquire:
			acquires++
			lastAcquire = e
		case OpBarrierEnter:
			enters++
			lastEnter = e
		}
	}
	var out []Violation
	if acquires > grants {
		out = append(out, Violation{
			Msg:   fmt.Sprintf("history has %d acquires but home traces show only %d lock grants", acquires, grants),
			Event: lastAcquire,
		})
	}
	if enters > arrivals {
		out = append(out, Violation{
			Msg:   fmt.Sprintf("history has %d barrier enters but home traces show only %d arrivals", enters, arrivals),
			Event: lastEnter,
		})
	}
	return out
}
