package check

import (
	"bytes"
	"strings"
	"testing"

	"hetdsm/internal/platform"
	"hetdsm/internal/trace"
)

// record replays a compact script onto a History using the Recorder
// interface, so the tests exercise the same entry points dsd threads call.
type step struct {
	rank   int32
	op     Op
	sync   int
	name   string
	index  int
	value  int64
	target string
	tindex int
}

func record(steps []step) *History {
	h := NewHistory()
	for _, s := range steps {
		switch s.op {
		case OpAcquire:
			h.Acquire(s.rank, s.sync)
		case OpRelease:
			h.Release(s.rank, s.sync)
		case OpBarrierEnter:
			h.BarrierEnter(s.rank, s.sync)
		case OpBarrierExit:
			h.BarrierExit(s.rank, s.sync)
		case OpJoin:
			h.Join(s.rank)
		case OpRead:
			h.Read(s.rank, s.name, s.index, s.value)
		case OpWrite:
			h.Write(s.rank, s.name, s.index, s.value)
		case OpPtrWrite:
			h.WritePtr(s.rank, s.name, s.index, s.target, s.tindex)
		case OpPtrRead:
			h.ReadPtr(s.rank, s.name, s.index, s.target, s.tindex)
		}
	}
	return h
}

func TestValidateCleanLockHistory(t *testing.T) {
	// r0 writes A[0]=5 in a CS; r1 then reads 5 and writes 7; r0 reads 7.
	h := record([]step{
		{rank: 0, op: OpAcquire, sync: 0},
		{rank: 0, op: OpWrite, name: "A", value: 5},
		{rank: 0, op: OpRead, name: "A", value: 5}, // read-own-write
		{rank: 0, op: OpRelease, sync: 0},
		{rank: 1, op: OpAcquire, sync: 0},
		{rank: 1, op: OpRead, name: "A", value: 5},
		{rank: 1, op: OpWrite, name: "A", value: 7},
		{rank: 1, op: OpRelease, sync: 0},
		{rank: 0, op: OpAcquire, sync: 0},
		{rank: 0, op: OpRead, name: "A", value: 7},
		{rank: 0, op: OpRelease, sync: 0},
		{rank: 0, op: OpJoin},
		{rank: 1, op: OpJoin},
	})
	if vs := Validate(h.Events(), 2); len(vs) != 0 {
		t.Fatalf("clean history flagged: %v", vs)
	}
}

func TestValidateDetectsStaleRead(t *testing.T) {
	h := record([]step{
		{rank: 0, op: OpAcquire, sync: 0},
		{rank: 0, op: OpWrite, name: "A", value: 5},
		{rank: 0, op: OpRelease, sync: 0},
		{rank: 1, op: OpAcquire, sync: 0},
		{rank: 1, op: OpRead, name: "A", value: 0}, // lost update: must see 5
		{rank: 1, op: OpRelease, sync: 0},
	})
	vs := Validate(h.Events(), 2)
	if len(vs) != 1 {
		t.Fatalf("got %d violations, want 1: %v", len(vs), vs)
	}
	if !strings.Contains(vs[0].Msg, "stale read") {
		t.Fatalf("unexpected violation: %v", vs[0])
	}
	if len(vs[0].Trace) == 0 {
		t.Fatal("violation carries no minimized trace")
	}
}

func TestValidateDetectsMutualExclusionBreak(t *testing.T) {
	h := record([]step{
		{rank: 0, op: OpAcquire, sync: 0},
		{rank: 1, op: OpAcquire, sync: 0}, // double grant
		{rank: 0, op: OpRelease, sync: 0},
		{rank: 1, op: OpRelease, sync: 0},
	})
	vs := Validate(h.Events(), 2)
	found := false
	for _, v := range vs {
		if strings.Contains(v.Msg, "mutual exclusion") {
			found = true
		}
	}
	if !found {
		t.Fatalf("double grant not flagged: %v", vs)
	}
}

func TestValidateDetectsEarlyBarrierOpen(t *testing.T) {
	// r0 exits generation 0 although r1 never entered it.
	h := record([]step{
		{rank: 0, op: OpBarrierEnter, sync: 0},
		{rank: 0, op: OpBarrierExit, sync: 0},
		{rank: 1, op: OpBarrierEnter, sync: 0},
		{rank: 1, op: OpBarrierExit, sync: 0},
	})
	vs := Validate(h.Events(), 2)
	if len(vs) == 0 || !strings.Contains(vs[0].Msg, "arrivals") {
		t.Fatalf("early barrier open not flagged: %v", vs)
	}
}

func TestValidateCleanBarrierHistory(t *testing.T) {
	h := record([]step{
		{rank: 0, op: OpWrite, name: "A", index: 0, value: 1},
		{rank: 1, op: OpWrite, name: "A", index: 1, value: 2},
		{rank: 0, op: OpBarrierEnter, sync: 0},
		{rank: 1, op: OpBarrierEnter, sync: 0},
		{rank: 0, op: OpBarrierExit, sync: 0},
		{rank: 1, op: OpBarrierExit, sync: 0},
		// After the barrier both ranks see both writes.
		{rank: 0, op: OpRead, name: "A", index: 1, value: 2},
		{rank: 1, op: OpRead, name: "A", index: 0, value: 1},
	})
	if vs := Validate(h.Events(), 2); len(vs) != 0 {
		t.Fatalf("clean barrier history flagged: %v", vs)
	}
}

func TestValidateDetectsActAfterJoin(t *testing.T) {
	h := record([]step{
		{rank: 0, op: OpJoin},
		{rank: 0, op: OpAcquire, sync: 0},
	})
	vs := Validate(h.Events(), 1)
	if len(vs) != 1 || !strings.Contains(vs[0].Msg, "after join") {
		t.Fatalf("act-after-join not flagged: %v", vs)
	}
}

func TestFinalState(t *testing.T) {
	h := record([]step{
		{rank: 0, op: OpAcquire, sync: 0},
		{rank: 0, op: OpWrite, name: "A", index: 3, value: 9},
		{rank: 0, op: OpRelease, sync: 0},
		{rank: 1, op: OpWrite, name: "B", index: 0, value: 4},
		{rank: 1, op: OpJoin}, // join flushes the dirty write
	})
	fs := FinalState(h.Events())
	if got := fs["A"][3]; got != 9 {
		t.Errorf("A[3] = %d, want 9", got)
	}
	if got := fs["B"][0]; got != 4 {
		t.Errorf("B[0] = %d, want 4", got)
	}
}

func TestCanonicalIgnoresInterleaving(t *testing.T) {
	// Same per-rank programs, different global interleavings.
	a := record([]step{
		{rank: 0, op: OpWrite, name: "A", value: 1},
		{rank: 1, op: OpWrite, name: "B", value: 2},
		{rank: 0, op: OpJoin},
		{rank: 1, op: OpJoin},
	})
	b := record([]step{
		{rank: 1, op: OpWrite, name: "B", value: 2},
		{rank: 0, op: OpWrite, name: "A", value: 1},
		{rank: 1, op: OpJoin},
		{rank: 0, op: OpJoin},
	})
	ca, cb := Canonical(a.Events()), Canonical(b.Events())
	if !bytes.Equal(ca, cb) {
		t.Fatalf("canonical traces differ across interleavings:\n%s\nvs\n%s", ca, cb)
	}
}

func TestMinimizeKeepsOnlyRelevantEvents(t *testing.T) {
	h := record([]step{
		{rank: 0, op: OpWrite, name: "A", index: 0, value: 1},
		{rank: 1, op: OpWrite, name: "Z", index: 9, value: 99}, // unrelated
		{rank: 0, op: OpRead, name: "A", index: 0, value: 1},
	})
	events := h.Events()
	bad := events[len(events)-1]
	min := Minimize(events, bad, 40)
	for _, e := range min {
		if e.Var == "Z" {
			t.Fatalf("minimized trace kept unrelated event %s", e)
		}
	}
	if min[len(min)-1].Stamp != bad.Stamp {
		t.Fatal("minimized trace does not end at the violation")
	}
}

func TestRoundTripInts(t *testing.T) {
	vals := []int64{0, 1, -1, 1 << 20, -(1 << 20), 2147483647, -2147483648}
	pairs := [][2]*platform.Platform{
		{platform.LinuxX86, platform.SolarisSPARC}, // endianness flip
		{platform.LinuxX86, platform.LinuxX8664},   // ILP32 vs LP64
		{platform.SolarisSPARC, platform.SolarisSPARC64},
		{platform.LinuxX8664, platform.SolarisSPARC64}, // both LP64, endian flip
	}
	for _, p := range pairs {
		for _, ct := range []platform.CType{platform.CInt, platform.CLong, platform.CLongLong} {
			if err := RoundTripInts(vals, ct, p[0], p[1]); err != nil {
				t.Errorf("%v %s<->%s: %v", ct, p[0], p[1], err)
			}
		}
	}
}

func TestCrossCheckTrace(t *testing.T) {
	h := record([]step{
		{rank: 0, op: OpAcquire, sync: 0},
		{rank: 0, op: OpRelease, sync: 0},
		{rank: 0, op: OpBarrierEnter, sync: 0},
		{rank: 0, op: OpBarrierExit, sync: 0},
	})
	full := trace.NewLog(64)
	full.Record("home", trace.KindLockGrant, 0, 0, 0, "")
	full.Record("home", trace.KindBarrierArrive, 0, 0, 0, "")
	if vs := CrossCheckTrace(h.Events(), full); len(vs) != 0 {
		t.Fatalf("covered history flagged: %v", vs)
	}
	// Replays may over-count in the log: still fine.
	full.Record("home", trace.KindLockGrant, 0, 0, 0, "replay")
	if vs := CrossCheckTrace(h.Events(), full); len(vs) != 0 {
		t.Fatalf("over-counted log flagged: %v", vs)
	}
	empty := trace.NewLog(64)
	vs := CrossCheckTrace(h.Events(), empty)
	if len(vs) != 2 {
		t.Fatalf("missing grants/arrivals not flagged: %v", vs)
	}
}

// TestValidateNestedLockHistory round-trips a clean nested-lock history:
// a rank that writes while holding an outer+inner lock pair commits both
// writes at the releases, and a later acquirer of either lock must see
// them. This is the acquire-while-dirty shape the grammar's nested and
// ptr-pub actions emit.
func TestValidateNestedLockHistory(t *testing.T) {
	h := record([]step{
		{rank: 0, op: OpAcquire, sync: 0},
		{rank: 0, op: OpWrite, name: "A", value: 11},
		{rank: 0, op: OpAcquire, sync: 1}, // inner acquire with A dirty
		{rank: 0, op: OpWrite, name: "B", value: 22},
		{rank: 0, op: OpRead, name: "A", value: 11}, // own dirty write survives the inner refresh
		{rank: 0, op: OpRelease, sync: 1},
		{rank: 0, op: OpRelease, sync: 0},
		{rank: 1, op: OpAcquire, sync: 1},
		{rank: 1, op: OpRead, name: "B", value: 22},
		{rank: 1, op: OpRelease, sync: 1},
		{rank: 1, op: OpAcquire, sync: 0},
		{rank: 1, op: OpRead, name: "A", value: 11},
		{rank: 1, op: OpRelease, sync: 0},
		{rank: 0, op: OpJoin},
		{rank: 1, op: OpJoin},
	})
	if vs := Validate(h.Events(), 2); len(vs) != 0 {
		t.Fatalf("clean nested-lock history flagged: %v", vs)
	}
}

// TestValidateNestedExclusionBreak pins that mutual exclusion is tracked
// per lock even when held as a nested chain: a rank acquiring the inner
// lock while another rank still holds it is flagged.
func TestValidateNestedExclusionBreak(t *testing.T) {
	h := record([]step{
		{rank: 0, op: OpAcquire, sync: 0},
		{rank: 0, op: OpAcquire, sync: 1},
		{rank: 1, op: OpAcquire, sync: 1}, // inner lock granted twice
		{rank: 0, op: OpRelease, sync: 1},
		{rank: 0, op: OpRelease, sync: 0},
		{rank: 1, op: OpRelease, sync: 1},
	})
	if vs := Validate(h.Events(), 2); len(vs) == 0 {
		t.Fatal("double grant of a nested inner lock not flagged")
	}
}

// TestValidateBarrierFreeOrdering covers the producer/consumer shape: no
// barrier anywhere, ordering flows only through the flag lock's
// release->acquire edge. Blind writes published before the release must be
// visible after the matching acquire; the same read before the edge exists
// would be stale.
func TestValidateBarrierFreeOrdering(t *testing.T) {
	clean := []step{
		{rank: 0, op: OpWrite, name: "S", index: 2, value: 99}, // blind write outside any CS
		{rank: 0, op: OpAcquire, sync: 0},
		{rank: 0, op: OpWrite, name: "G", value: 1}, // generation bump
		{rank: 0, op: OpRelease, sync: 0},           // publishes S[2] and G
		{rank: 1, op: OpAcquire, sync: 0},
		{rank: 1, op: OpRead, name: "G", value: 1},
		{rank: 1, op: OpRead, name: "S", index: 2, value: 99},
		{rank: 1, op: OpRelease, sync: 0},
		{rank: 0, op: OpJoin},
		{rank: 1, op: OpJoin},
	}
	if vs := Validate(record(clean).Events(), 2); len(vs) != 0 {
		t.Fatalf("clean barrier-free history flagged: %v", vs)
	}

	stale := []step{
		{rank: 0, op: OpWrite, name: "S", index: 2, value: 99},
		{rank: 0, op: OpAcquire, sync: 0},
		{rank: 0, op: OpWrite, name: "G", value: 1},
		{rank: 0, op: OpRelease, sync: 0},
		{rank: 1, op: OpAcquire, sync: 0},
		{rank: 1, op: OpRead, name: "S", index: 2, value: 0}, // lost the published write
		{rank: 1, op: OpRelease, sync: 0},
	}
	vs := Validate(record(stale).Events(), 2)
	if len(vs) != 1 || !strings.Contains(vs[0].Msg, "stale read") {
		t.Fatalf("consumer reading past the release edge not flagged: %v", vs)
	}
}

// TestValidatePointerHistory round-trips pointer publication: a committed
// WritePtr must be observed by a post-acquire ReadPtr, and FinalPtrState
// must report the committed target.
func TestValidatePointerHistory(t *testing.T) {
	h := record([]step{
		{rank: 0, op: OpAcquire, sync: 0},
		{rank: 0, op: OpPtrWrite, name: "pt", index: 1, target: "a", tindex: 3},
		{rank: 0, op: OpRelease, sync: 0},
		{rank: 1, op: OpAcquire, sync: 0},
		{rank: 1, op: OpPtrRead, name: "pt", index: 1, target: "a", tindex: 3},
		{rank: 1, op: OpRelease, sync: 0},
		{rank: 0, op: OpJoin},
		{rank: 1, op: OpJoin},
	})
	if vs := Validate(h.Events(), 2); len(vs) != 0 {
		t.Fatalf("clean pointer history flagged: %v", vs)
	}
	final := FinalPtrState(h.Events())
	got, ok := final["pt"][1]
	if !ok || got != (PtrTarget{Var: "a", Index: 3}) {
		t.Fatalf("FinalPtrState[pt][1] = %v (ok=%v), want a[3]", got, ok)
	}
}

// TestValidateDetectsStalePointerRead pins the pointer-chase staleness
// rule: reading the pre-publication target after the release->acquire edge
// is a violation.
func TestValidateDetectsStalePointerRead(t *testing.T) {
	h := record([]step{
		{rank: 0, op: OpAcquire, sync: 0},
		{rank: 0, op: OpPtrWrite, name: "pt", index: 0, target: "b", tindex: 5},
		{rank: 0, op: OpRelease, sync: 0},
		{rank: 1, op: OpAcquire, sync: 0},
		{rank: 1, op: OpPtrRead, name: "pt", index: 0, target: "", tindex: -1}, // still nil: stale
		{rank: 1, op: OpRelease, sync: 0},
	})
	vs := Validate(h.Events(), 2)
	if len(vs) != 1 || !strings.Contains(vs[0].Msg, "stale pointer read") {
		t.Fatalf("stale pointer read not flagged: %v", vs)
	}
}

// TestRoundTripPointerValues complements TestRoundTripInts for the values
// grammar histories carry: the int64 payloads written under nested locks
// and producer phases must survive every heterogeneous platform hop used
// by the simulator's mixes.
func TestRoundTripPointerValues(t *testing.T) {
	h := record([]step{
		{rank: 0, op: OpAcquire, sync: 0},
		{rank: 0, op: OpWrite, name: "A", value: -1115292547},
		{rank: 0, op: OpAcquire, sync: 1},
		{rank: 0, op: OpWrite, name: "B", value: 1213937417},
		{rank: 0, op: OpRelease, sync: 1},
		{rank: 0, op: OpRelease, sync: 0},
	})
	var vals []int64
	for _, e := range h.Events() {
		if e.Op == OpWrite {
			vals = append(vals, e.Value)
		}
	}
	if len(vals) != 2 {
		t.Fatalf("expected 2 writes in history, got %d", len(vals))
	}
	pairs := [][2]*platform.Platform{
		{platform.LinuxX86, platform.SolarisSPARC},
		{platform.SolarisSPARC64, platform.LinuxX8664},
	}
	for _, p := range pairs {
		for _, ct := range []platform.CType{platform.CInt, platform.CLongLong} {
			if err := RoundTripInts(vals, ct, p[0], p[1]); err != nil {
				t.Errorf("%v %s<->%s: %v", ct, p[0], p[1], err)
			}
		}
	}
}
