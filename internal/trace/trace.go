// Package trace records DSD protocol events into a fixed-capacity ring
// buffer for debugging distributed runs: who acquired which mutex when,
// how many bytes each release shipped, when barriers opened, when threads
// were redirected to a new home. Tracing is off unless a Log is installed
// via dsd.Options.Trace; the hot path then pays one mutex and one slice
// store per event.
package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"sync"
	"time"
)

// Kind classifies an event.
type Kind string

// The event kinds the DSD layer emits.
const (
	// KindHello is a thread registration at the home.
	KindHello Kind = "hello"
	// KindLockGrant is a mutex grant (home side).
	KindLockGrant Kind = "lock-grant"
	// KindUnlock is a mutex release with updates (home side).
	KindUnlock Kind = "unlock"
	// KindBarrierArrive is one thread entering a barrier.
	KindBarrierArrive Kind = "barrier-arrive"
	// KindBarrierOpen is a barrier generation completing.
	KindBarrierOpen Kind = "barrier-open"
	// KindFlush is a lock-free update push (migration support).
	KindFlush Kind = "flush"
	// KindJoin is a thread termination announcement.
	KindJoin Kind = "join"
	// KindRedirect is a thread bounced to a new home.
	KindRedirect Kind = "redirect"
	// KindApply is an update batch applied to a replica or master.
	KindApply Kind = "apply"
	// KindDetach is a home freezing for handoff.
	KindDetach Kind = "detach"
	// KindSuspect is a failure detector declaring a node suspected dead.
	KindSuspect Kind = "suspect"
	// KindPromote is a standby promoting itself to home after a failover.
	KindPromote Kind = "promote"
	// KindReconnect is a thread redialing a home after a connection loss.
	KindReconnect Kind = "reconnect"
	// KindReplicate is a home-state mutation shipped to a hot standby.
	KindReplicate Kind = "replicate"
)

// Event is one recorded occurrence. Events marshal to JSON with stable
// lowercase field names, so the ring can be dumped as JSONL (-trace-out,
// the /trace endpoint) and post-processed by standard tooling.
type Event struct {
	// Seq is the global order of the event within this Log.
	Seq uint64 `json:"seq"`
	// At is the wall-clock timestamp.
	At time.Time `json:"at"`
	// Node identifies the recorder ("home", "rank-2/linux-x86", ...).
	Node string `json:"node"`
	// Kind classifies the event.
	Kind Kind `json:"kind"`
	// Rank is the thread rank involved, -1 when not applicable.
	Rank int32 `json:"rank"`
	// Mutex is the lock/barrier index, -1 when not applicable.
	Mutex int32 `json:"mutex"`
	// Bytes is the update payload size, 0 when not applicable.
	Bytes int `json:"bytes"`
	// Detail carries free-form context.
	Detail string `json:"detail,omitempty"`
}

// String renders one line of trace output.
func (e Event) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%6d %s %-18s %-14s", e.Seq, e.At.Format("15:04:05.000000"), e.Node, e.Kind)
	if e.Rank >= 0 {
		fmt.Fprintf(&b, " rank=%d", e.Rank)
	}
	if e.Mutex >= 0 {
		fmt.Fprintf(&b, " idx=%d", e.Mutex)
	}
	if e.Bytes > 0 {
		fmt.Fprintf(&b, " bytes=%d", e.Bytes)
	}
	if e.Detail != "" {
		fmt.Fprintf(&b, " %s", e.Detail)
	}
	return b.String()
}

// Log is a concurrency-safe ring buffer of events. The zero value is not
// usable; construct with NewLog.
type Log struct {
	mu      sync.Mutex
	buf     []Event
	next    uint64 // total events ever added
	dropped uint64
}

// NewLog returns a ring holding the last capacity events.
func NewLog(capacity int) *Log {
	if capacity <= 0 {
		capacity = 1024
	}
	return &Log{buf: make([]Event, 0, capacity)}
}

// Add records an event, stamping its sequence number and time.
func (l *Log) Add(e Event) {
	l.mu.Lock()
	e.Seq = l.next
	e.At = time.Now()
	l.next++
	if len(l.buf) < cap(l.buf) {
		l.buf = append(l.buf, e)
	} else {
		l.buf[int(e.Seq)%cap(l.buf)] = e
		l.dropped++
	}
	l.mu.Unlock()
}

// Record is the convenience used by the DSD hot path.
func (l *Log) Record(node string, kind Kind, rank, mutex int32, bytes int, detail string) {
	if l == nil {
		return
	}
	l.Add(Event{Node: node, Kind: kind, Rank: rank, Mutex: mutex, Bytes: bytes, Detail: detail})
}

// Len returns the number of retained events.
func (l *Log) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.buf)
}

// Total returns the number of events ever recorded.
func (l *Log) Total() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.next
}

// Dropped returns how many events the ring overwrote.
func (l *Log) Dropped() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.dropped
}

// Events returns the retained events in sequence order.
func (l *Log) Events() []Event {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]Event, 0, len(l.buf))
	if len(l.buf) < cap(l.buf) {
		out = append(out, l.buf...)
		return out
	}
	// The ring has wrapped: oldest entry sits at next % cap.
	start := int(l.next) % cap(l.buf)
	out = append(out, l.buf[start:]...)
	out = append(out, l.buf[:start]...)
	return out
}

// Filter returns retained events matching the kind, in order.
func (l *Log) Filter(kind Kind) []Event {
	var out []Event
	for _, e := range l.Events() {
		if e.Kind == kind {
			out = append(out, e)
		}
	}
	return out
}

// Dump writes the retained events one per line.
func (l *Log) Dump(w io.Writer) error {
	for _, e := range l.Events() {
		if _, err := fmt.Fprintln(w, e.String()); err != nil {
			return err
		}
	}
	return nil
}

// DumpJSON writes the retained events as JSONL, one JSON object per
// line, in sequence order. Safe on a nil receiver (writes nothing).
func (l *Log) DumpJSON(w io.Writer) error {
	if l == nil {
		return nil
	}
	enc := json.NewEncoder(w)
	for _, e := range l.Events() {
		if err := enc.Encode(e); err != nil {
			return err
		}
	}
	return nil
}
