package trace

import (
	"bytes"
	"fmt"
	"strings"
	"sync"
	"testing"
)

func TestAddAndEvents(t *testing.T) {
	l := NewLog(8)
	for i := 0; i < 5; i++ {
		l.Add(Event{Node: "home", Kind: KindLockGrant, Rank: int32(i), Mutex: 0})
	}
	evs := l.Events()
	if len(evs) != 5 {
		t.Fatalf("got %d events", len(evs))
	}
	for i, e := range evs {
		if e.Seq != uint64(i) {
			t.Errorf("event %d has seq %d", i, e.Seq)
		}
		if e.Rank != int32(i) {
			t.Errorf("event %d has rank %d", i, e.Rank)
		}
		if e.At.IsZero() {
			t.Errorf("event %d has zero time", i)
		}
	}
	if l.Total() != 5 || l.Dropped() != 0 || l.Len() != 5 {
		t.Errorf("counters: total=%d dropped=%d len=%d", l.Total(), l.Dropped(), l.Len())
	}
}

func TestRingWrap(t *testing.T) {
	l := NewLog(4)
	for i := 0; i < 10; i++ {
		l.Add(Event{Node: "home", Kind: KindApply, Rank: int32(i)})
	}
	evs := l.Events()
	if len(evs) != 4 {
		t.Fatalf("retained %d, want 4", len(evs))
	}
	// Oldest retained is seq 6; order must be 6,7,8,9.
	for i, e := range evs {
		if want := uint64(6 + i); e.Seq != want {
			t.Errorf("slot %d seq = %d, want %d", i, e.Seq, want)
		}
	}
	if l.Dropped() != 6 {
		t.Errorf("dropped = %d, want 6", l.Dropped())
	}
	if l.Total() != 10 {
		t.Errorf("total = %d, want 10", l.Total())
	}
}

func TestNilLogRecordIsNoop(t *testing.T) {
	var l *Log
	// Must not panic: the DSD hot path calls Record unconditionally.
	l.Record("home", KindHello, 1, -1, 0, "")
}

func TestRecordAndFilter(t *testing.T) {
	l := NewLog(64)
	l.Record("home", KindLockGrant, 1, 0, 100, "")
	l.Record("home", KindUnlock, 1, 0, 200, "")
	l.Record("home", KindLockGrant, 2, 0, 50, "")
	grants := l.Filter(KindLockGrant)
	if len(grants) != 2 {
		t.Fatalf("grants = %d", len(grants))
	}
	if grants[0].Rank != 1 || grants[1].Rank != 2 {
		t.Errorf("grant ranks = %d,%d", grants[0].Rank, grants[1].Rank)
	}
	if got := l.Filter(KindDetach); len(got) != 0 {
		t.Errorf("unexpected detach events: %v", got)
	}
}

func TestEventString(t *testing.T) {
	e := Event{Seq: 7, Node: "home@linux-x86", Kind: KindUnlock, Rank: 2, Mutex: 0, Bytes: 512, Detail: "x"}
	s := e.String()
	for _, sub := range []string{"home@linux-x86", "unlock", "rank=2", "idx=0", "bytes=512", "x"} {
		if !strings.Contains(s, sub) {
			t.Errorf("String %q missing %q", s, sub)
		}
	}
	// Negative rank/mutex suppressed.
	e2 := Event{Node: "home", Kind: KindDetach, Rank: -1, Mutex: -1}
	if s2 := e2.String(); strings.Contains(s2, "rank=") || strings.Contains(s2, "idx=") {
		t.Errorf("suppressed fields leaked: %q", s2)
	}
}

func TestDump(t *testing.T) {
	l := NewLog(8)
	l.Record("home", KindHello, 0, -1, 0, "linux-x86")
	l.Record("home", KindJoin, 0, -1, 0, "")
	var buf bytes.Buffer
	if err := l.Dump(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("dump lines = %d:\n%s", len(lines), buf.String())
	}
	if !strings.Contains(lines[0], "hello") || !strings.Contains(lines[1], "join") {
		t.Errorf("dump content wrong:\n%s", buf.String())
	}
}

func TestConcurrentAdds(t *testing.T) {
	l := NewLog(128)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				l.Record(fmt.Sprintf("rank-%d", g), KindApply, int32(g), -1, i, "")
			}
		}(g)
	}
	wg.Wait()
	if l.Total() != 4000 {
		t.Errorf("total = %d, want 4000", l.Total())
	}
	evs := l.Events()
	if len(evs) != 128 {
		t.Fatalf("retained = %d", len(evs))
	}
	// Strictly increasing seq in the retained window.
	for i := 1; i < len(evs); i++ {
		if evs[i].Seq != evs[i-1].Seq+1 {
			t.Fatalf("retained window not contiguous at %d: %d -> %d", i, evs[i-1].Seq, evs[i].Seq)
		}
	}
}

func TestDefaultCapacity(t *testing.T) {
	l := NewLog(0)
	for i := 0; i < 2000; i++ {
		l.Record("x", KindApply, 0, -1, 0, "")
	}
	if l.Len() != 1024 {
		t.Errorf("default capacity = %d, want 1024", l.Len())
	}
}
