package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// TestDumpJSONFieldNames pins the JSONL schema: stable lowercase keys,
// one object per line, in sequence order.
func TestDumpJSONFieldNames(t *testing.T) {
	l := NewLog(8)
	l.Record("home@linux-x86", KindLockGrant, 2, 5, 128, "grant")
	l.Record("rank-1@solaris-sparc", KindApply, 1, -1, 64, "")

	var buf bytes.Buffer
	if err := l.DumpJSON(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2:\n%s", len(lines), buf.String())
	}
	var first map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &first); err != nil {
		t.Fatalf("line 0 not JSON: %v", err)
	}
	for _, key := range []string{"seq", "at", "node", "kind", "rank", "mutex", "bytes", "detail"} {
		if _, ok := first[key]; !ok {
			t.Errorf("line 0 missing key %q: %s", key, lines[0])
		}
	}
	if first["kind"] != "lock-grant" {
		t.Errorf("kind = %v, want lock-grant", first["kind"])
	}
	if first["seq"] != float64(0) {
		t.Errorf("seq = %v, want 0", first["seq"])
	}
	// The second event has no detail; omitempty keeps the line lean.
	if strings.Contains(lines[1], "detail") {
		t.Errorf("empty detail should be omitted: %s", lines[1])
	}

	var e Event
	if err := json.Unmarshal([]byte(lines[0]), &e); err != nil {
		t.Fatalf("round-trip: %v", err)
	}
	if e.Node != "home@linux-x86" || e.Kind != KindLockGrant || e.Bytes != 128 {
		t.Errorf("round-trip lost fields: %+v", e)
	}
}

// TestDumpJSONNil checks the nil log writes nothing and does not panic.
func TestDumpJSONNil(t *testing.T) {
	var l *Log
	var buf bytes.Buffer
	if err := l.DumpJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 0 {
		t.Errorf("nil log wrote %q", buf.String())
	}
}

// TestEventsOrderAfterPartialWrap drives the ring to a fill level that
// is not a multiple of its capacity, where a naive oldest-first
// reconstruction goes wrong.
func TestEventsOrderAfterPartialWrap(t *testing.T) {
	l := NewLog(5)
	const total = 13 // 13 % 5 = 3: ring seam sits mid-buffer
	for i := 0; i < total; i++ {
		l.Add(Event{Node: "n", Kind: KindFlush, Rank: int32(i)})
	}
	evs := l.Events()
	if len(evs) != 5 {
		t.Fatalf("retained %d, want 5", len(evs))
	}
	for i, e := range evs {
		if want := uint64(total - 5 + i); e.Seq != want {
			t.Fatalf("slot %d seq = %d, want %d", i, e.Seq, want)
		}
		if want := int32(total - 5 + i); e.Rank != want {
			t.Fatalf("slot %d rank = %d, want %d (payload must travel with its seq)", i, e.Rank, want)
		}
	}
	if got, want := l.Dropped(), uint64(total-5); got != want {
		t.Errorf("dropped = %d, want %d", got, want)
	}
	if l.Total() != total {
		t.Errorf("total = %d, want %d", l.Total(), total)
	}
}

// TestFilterAfterWrap checks Filter sees only retained events, in
// order, once the ring has overwritten earlier matches.
func TestFilterAfterWrap(t *testing.T) {
	l := NewLog(6)
	// Alternate two kinds for 20 events; the ring keeps the last 6
	// (seqs 14..19), of which the even seqs are locks.
	for i := 0; i < 20; i++ {
		kind := KindLockGrant
		if i%2 == 1 {
			kind = KindUnlock
		}
		l.Add(Event{Node: "n", Kind: kind})
	}
	got := l.Filter(KindLockGrant)
	want := []uint64{14, 16, 18}
	if len(got) != len(want) {
		t.Fatalf("filter kept %d events, want %d", len(got), len(want))
	}
	for i, e := range got {
		if e.Seq != want[i] {
			t.Errorf("filter[%d].Seq = %d, want %d", i, e.Seq, want[i])
		}
		if e.Kind != KindLockGrant {
			t.Errorf("filter[%d].Kind = %v, want lock-grant", i, e.Kind)
		}
	}
}
