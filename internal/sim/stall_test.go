package sim

import (
	"bytes"
	"strings"
	"testing"
)

// The stall family is pure timing: for a fixed seed the canonical per-rank
// trace under stall and dribble must be byte-identical to the clean run's —
// slow frames may move deadlines, never values.
func TestStallCanonicalMatchesClean(t *testing.T) {
	for _, seed := range []int64{1, 11, 42} {
		clean := Run(NewPlan(seed, ProfileClean, "SL"))
		if !clean.OK() {
			t.Fatalf("seed %d clean:\n%s", seed, clean.Report())
		}
		for _, prof := range []Profile{ProfileStall, ProfileDribble} {
			res := Run(NewPlan(seed, prof, "SL"))
			if !res.OK() {
				t.Fatalf("seed %d %s:\n%s", seed, prof, res.Report())
			}
			if !bytes.Equal(res.Canonical, clean.Canonical) {
				t.Fatalf("seed %d: %s trace diverged from clean:\n--- clean ---\n%s\n--- %s ---\n%s",
					seed, prof, clean.Canonical, prof, res.Canonical)
			}
			if len(res.FaultLog) == 0 {
				t.Fatalf("seed %d %s: no fault log entries", seed, prof)
			}
			last := res.FaultLog[len(res.FaultLog)-1]
			if !strings.Contains(last, "delayed") {
				t.Fatalf("seed %d %s: fault log missing delay summary: %q", seed, prof, last)
			}
		}
	}
}

// The stall profiles compose with the sharded directory; the trace must
// still match the sharded clean run for the same seed.
func TestStallShardedCanonicalMatchesClean(t *testing.T) {
	mk := func(prof Profile) Plan {
		p := NewPlan(9, prof, "LL")
		p.Shards = 2
		return p
	}
	clean := Run(mk(ProfileClean))
	if !clean.OK() {
		t.Fatalf("sharded clean:\n%s", clean.Report())
	}
	for _, prof := range []Profile{ProfileStall, ProfileDribble} {
		res := Run(mk(prof))
		if !res.OK() {
			t.Fatalf("sharded %s:\n%s", prof, res.Report())
		}
		if !bytes.Equal(res.Canonical, clean.Canonical) {
			t.Fatalf("sharded %s trace diverged from clean", prof)
		}
	}
}
