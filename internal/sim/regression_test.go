package sim

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

// TestRegressionSeeds replays every plan in testdata/regression-seeds.txt —
// seeds that once exposed real bugs — and requires each to validate clean.
// The file is append-only: minimizing a new failure to a seed means adding
// a line here, so the bug's exact schedule stays under test forever.
func TestRegressionSeeds(t *testing.T) {
	plans, err := loadRegressionSeeds(filepath.Join("testdata", "regression-seeds.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if len(plans) == 0 {
		t.Fatal("regression-seeds.txt holds no plans")
	}
	for _, plan := range plans {
		plan := plan
		t.Run(strings.ReplaceAll(strings.TrimPrefix(plan.String(), "-seed "), " -", "_"), func(t *testing.T) {
			t.Parallel()
			if res := Run(plan); !res.OK() {
				t.Errorf("regression seed resurfaced:\n%s", res.Report())
			}
		})
	}
}

// loadRegressionSeeds parses the append-only seed file: one
// "<seed> <profile> <mix> <shards>" plan per line, '#' comments ignored.
func loadRegressionSeeds(path string) ([]Plan, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var plans []Plan
	sc := bufio.NewScanner(f)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) != 4 {
			return nil, fmt.Errorf("%s:%d: want \"seed profile mix shards\", got %q", path, line, text)
		}
		seed, err := strconv.ParseInt(fields[0], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("%s:%d: bad seed %q: %v", path, line, fields[0], err)
		}
		profile := Profile(fields[1])
		if !ValidProfile(profile) {
			return nil, fmt.Errorf("%s:%d: unknown profile %q", path, line, fields[1])
		}
		shards, err := strconv.Atoi(fields[3])
		if err != nil {
			return nil, fmt.Errorf("%s:%d: bad shard count %q: %v", path, line, fields[3], err)
		}
		plan := NewPlan(seed, profile, fields[2])
		plan.Shards = shards
		plans = append(plans, plan)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return plans, nil
}
