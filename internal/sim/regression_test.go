package sim

import (
	"bytes"
	"fmt"
	"path/filepath"
	"testing"
)

// corpusPath is the checked-in regression corpus TestRegressionSeeds
// replays and the dsmsim sweeper appends to.
var corpusPath = filepath.Join("testdata", "regression_seeds.json")

// TestRegressionSeeds replays every plan in the regression corpus — seeds
// that once exposed real bugs — and requires each to validate clean AND
// replay byte-identically. The corpus is append-only: minimizing a new
// failure means adding an entry (the sweeper does it automatically), so
// the bug's exact schedule stays under test forever.
func TestRegressionSeeds(t *testing.T) {
	entries, err := LoadCorpus(corpusPath)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) == 0 {
		t.Fatal("regression_seeds.json holds no entries")
	}
	for i, e := range entries {
		name := fmt.Sprintf("%d_seed%d_%s_%s", i, e.Seed, e.Profile, e.Mix)
		if e.Grammar != "" {
			name += "_" + e.Grammar
		}
		e := e
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			plan := e.Plan()
			a := Run(plan)
			if !a.OK() {
				t.Errorf("regression seed resurfaced:\n%s", a.Report())
			}
			b := Run(plan)
			if !bytes.Equal(a.Canonical, b.Canonical) {
				t.Errorf("replay of %s diverged from its first run", plan)
			}
		})
	}
}

// TestCorpusAppendRoundTrip is the oracle-to-corpus acceptance path: a
// negative-mode run (seeded wire corruption) must produce a violation, the
// sweeper's EntryForResult must capture it as a corpus entry, and
// replaying the reloaded entry must reproduce both the violation and the
// byte-identical canonical trace.
func TestCorpusAppendRoundTrip(t *testing.T) {
	plan := NewPlan(3, ProfileClean, "SL")
	plan.Negative = true
	res := Run(plan)
	if res.Err != nil {
		t.Fatalf("negative run errored instead of validating: %v", res.Err)
	}
	if len(res.Violations) == 0 || res.Corrupted == 0 {
		t.Fatalf("negative run produced no violation (%d corrupted frames):\n%s", res.Corrupted, res.Report())
	}

	path := filepath.Join(t.TempDir(), "regression_seeds.json")
	entry := EntryForResult(res)
	if entry.Note == "" || len(entry.Trace) == 0 {
		t.Errorf("corpus entry lost the violation context: note=%q trace=%d lines", entry.Note, len(entry.Trace))
	}
	added, err := AppendCorpus(path, entry)
	if err != nil || !added {
		t.Fatalf("appending the violation: added=%v err=%v", added, err)
	}
	// Idempotent: the same plan never lands twice.
	added, err = AppendCorpus(path, entry)
	if err != nil || added {
		t.Fatalf("duplicate plan was appended: added=%v err=%v", added, err)
	}

	entries, err := LoadCorpus(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("corpus holds %d entries, want 1", len(entries))
	}
	replay := Run(entries[0].Plan())
	if replay.Err != nil || len(replay.Violations) == 0 {
		t.Fatalf("corpus replay lost the violation:\n%s", replay.Report())
	}
	if !bytes.Equal(replay.Canonical, res.Canonical) {
		t.Error("corpus replay's canonical trace diverged from the original run")
	}
}

// TestCorpusEntryPlanFidelity pins that a grammar plan survives the
// entry round trip field-for-field.
func TestCorpusEntryPlanFidelity(t *testing.T) {
	plan := NewPlan(11, ProfileFlaky, "Lsl")
	plan.Grammar = "chaos"
	plan.Locks = 5
	plan.Threads = 4
	plan.Steps = 30
	plan.Shards = 2
	e := EntryForResult(Result{Plan: plan.withDefaults()})
	if got, want := e.Plan().withDefaults(), plan.withDefaults(); got != want {
		t.Errorf("plan did not survive the corpus round trip:\n got %+v\nwant %+v", got, want)
	}
}
