package sim

import (
	"fmt"

	"hetdsm/internal/dsd"
)

// worker owns one dsd.Thread on its own goroutine (the DSM's
// one-thread-one-address-space rule) and executes compiled instruction
// lists from the driver.
type worker struct {
	rank int
	th   *dsd.Thread
	cmds chan []instr
	done chan error
}

func newWorker(rank int, th *dsd.Thread) *worker {
	w := &worker{rank: rank, th: th, cmds: make(chan []instr), done: make(chan error, 1)}
	go w.loop()
	return w
}

func (w *worker) loop() {
	for ins := range w.cmds {
		w.done <- w.exec(ins)
	}
}

func (w *worker) exec(ins []instr) error {
	g := w.th.Globals()
	for _, in := range ins {
		if err := w.exec1(g, in); err != nil {
			return err
		}
	}
	return nil
}

func (w *worker) exec1(g *dsd.Globals, in instr) error {
	switch in.op {
	case inLock:
		if err := w.th.Lock(in.sync); err != nil {
			return fmt.Errorf("rank %d lock %d: %w", w.rank, in.sync, err)
		}
	case inUnlock:
		if err := w.th.Unlock(in.sync); err != nil {
			return fmt.Errorf("rank %d unlock %d: %w", w.rank, in.sync, err)
		}
	case inBarrier:
		if err := w.th.Barrier(in.sync); err != nil {
			return fmt.Errorf("rank %d barrier %d: %w", w.rank, in.sync, err)
		}
	case inJoin:
		if err := w.th.Join(); err != nil {
			return fmt.Errorf("rank %d join: %w", w.rank, err)
		}
	case inRMW:
		v := g.MustVar(in.v)
		x, err := v.Int(in.idx)
		if err != nil {
			return fmt.Errorf("rank %d read %s[%d]: %w", w.rank, in.v, in.idx, err)
		}
		if err := v.SetInt(in.idx, x+in.val); err != nil {
			return fmt.Errorf("rank %d write %s[%d]: %w", w.rank, in.v, in.idx, err)
		}
	case inWrite:
		if err := g.MustVar(in.v).SetInt(in.idx, in.val); err != nil {
			return fmt.Errorf("rank %d write %s[%d]: %w", w.rank, in.v, in.idx, err)
		}
	case inRead:
		if _, err := g.MustVar(in.v).Int(in.idx); err != nil {
			return fmt.Errorf("rank %d read %s[%d]: %w", w.rank, in.v, in.idx, err)
		}
	case inReadRun:
		if _, err := g.MustVar(in.v).Ints(in.idx, in.n); err != nil {
			return fmt.Errorf("rank %d read %s[%d..%d): %w", w.rank, in.v, in.idx, in.idx+in.n, err)
		}
	case inPtrPub:
		tv := g.MustVar(in.tv)
		addr, err := tv.Addr(in.ti)
		if err != nil {
			return fmt.Errorf("rank %d address of %s[%d]: %w", w.rank, in.tv, in.ti, err)
		}
		if err := g.MustVar(in.v).SetPtr(in.idx, addr); err != nil {
			return fmt.Errorf("rank %d publish %s[%d]: %w", w.rank, in.v, in.idx, err)
		}
	case inPtrChase:
		pv := g.MustVar(in.v)
		addr, err := pv.Ptr(in.idx)
		if err != nil {
			return fmt.Errorf("rank %d load pointer %s[%d]: %w", w.rank, in.v, in.idx, err)
		}
		// Follow the pointer: a null or out-of-segment value (nothing
		// published yet) ends the chase; so does a target that is itself
		// a pointer cell — the workload only ever publishes data cells,
		// but a corrupted frame could leave anything here, and reading a
		// pointer cell through the integer accessor would be a type
		// confusion, not a coherence check.
		name, idx, ok := g.Resolve(addr)
		if !ok {
			return nil
		}
		tv := g.MustVar(name)
		if tv.IsPointer() {
			return nil
		}
		if _, err := tv.Int(idx); err != nil {
			return fmt.Errorf("rank %d chase %s[%d] -> %s[%d]: %w", w.rank, in.v, in.idx, name, idx, err)
		}
	default:
		return fmt.Errorf("rank %d: unknown instruction op %d", w.rank, in.op)
	}
	return nil
}

// send dispatches an instruction list; await collects its result.
func (w *worker) send(ins []instr) { w.cmds <- ins }
func (w *worker) await() error     { return <-w.done }
func (w *worker) shutdown()        { close(w.cmds) }

// driver executes a compiled program. All randomness was consumed at
// compile time, and batches only run rank programs concurrently when they
// touch disjoint locks and disjoint cells — so every value any thread
// observes is a pure function of the plan's seed, the determinism the
// byte-identical-replay guarantee rests on.
type driver struct {
	workers []*worker
	// faultAt, when set, fires before each numbered step; profiles hook
	// their schedule here. It draws nothing from the plan's rng.
	faultAt func(step int) error
}

// run executes the numbered steps (with fault hooks), then the
// deterministic tail.
func (d *driver) run(prog *program) error {
	for i, st := range prog.steps {
		if d.faultAt != nil {
			if err := d.faultAt(i); err != nil {
				return err
			}
		}
		if err := d.exec(st); err != nil {
			return err
		}
	}
	for _, st := range prog.tail {
		if err := d.exec(st); err != nil {
			return err
		}
	}
	return nil
}

// exec runs one step's batches in order, dispatching each batch's rank
// programs concurrently and awaiting them all.
func (d *driver) exec(st progStep) error {
	for _, b := range st {
		for _, rp := range b {
			d.workers[rp.rank].send(rp.instrs)
		}
		var first error
		for _, rp := range b {
			if err := d.workers[rp.rank].await(); err != nil && first == nil {
				first = err
			}
		}
		if first != nil {
			return first
		}
	}
	return nil
}
