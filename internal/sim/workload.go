package sim

import (
	"fmt"
	"math/rand"

	"hetdsm/internal/dsd"
	"hetdsm/internal/platform"
	"hetdsm/internal/tag"
)

// Workload shape: two lock-protected counter arrays (lock 0 guards "a",
// lock 1 guards "b"), a barrier-phased array of rank-owned slices, and one
// barrier (index 0). Array lengths are small so coalesced spans and
// element-exact diffs both occur, but whole-array widening stays off (the
// driver disables it) — blind rank-owned writes must never ship stale
// copies of a neighbor's cells.
const (
	protLen  = 8 // cells per protected counter array
	sliceLen = 4 // cells each rank owns in the barrier-phase array
)

// simGThV builds the workload's shared structure for n threads.
func simGThV(n int) tag.Struct {
	return tag.Struct{Name: "GThV_t", Fields: []tag.Field{
		{Name: "a", T: tag.IntArray(protLen)},
		{Name: "b", T: tag.IntArray(protLen)},
		{Name: "slice", T: tag.IntArray(n * sliceLen)},
		{Name: "gen", T: tag.Scalar{T: platform.CLongLong}},
	}}
}

// lockVar maps a mutex index to the array it guards.
func lockVar(lock int) string {
	if lock == 0 {
		return "a"
	}
	return "b"
}

type cmdKind int

const (
	cmdCS cmdKind = iota
	cmdSliceWrite
	cmdSliceRead
	cmdBarrier
	cmdJoin
)

type csOp struct {
	index int
	delta int64
}

// cmd is one worker instruction from the driver.
type cmd struct {
	kind cmdKind
	lock int     // cmdCS
	ops  []csOp  // cmdCS
	vals []int64 // cmdSliceWrite: values for the rank's own slice
	from int     // cmdSliceRead: whose slice to read
}

// worker owns one dsd.Thread on its own goroutine (the DSM's
// one-thread-one-address-space rule) and executes driver commands.
type worker struct {
	rank int
	th   *dsd.Thread
	cmds chan cmd
	done chan error
}

func newWorker(rank int, th *dsd.Thread) *worker {
	w := &worker{rank: rank, th: th, cmds: make(chan cmd), done: make(chan error, 1)}
	go w.loop()
	return w
}

func (w *worker) loop() {
	for c := range w.cmds {
		w.done <- w.exec(c)
	}
}

func (w *worker) exec(c cmd) error {
	g := w.th.Globals()
	switch c.kind {
	case cmdCS:
		if err := w.th.Lock(c.lock); err != nil {
			return fmt.Errorf("rank %d lock %d: %w", w.rank, c.lock, err)
		}
		v := g.MustVar(lockVar(c.lock))
		for _, op := range c.ops {
			x, err := v.Int(op.index)
			if err != nil {
				return fmt.Errorf("rank %d read %s[%d]: %w", w.rank, lockVar(c.lock), op.index, err)
			}
			if err := v.SetInt(op.index, x+op.delta); err != nil {
				return fmt.Errorf("rank %d write %s[%d]: %w", w.rank, lockVar(c.lock), op.index, err)
			}
		}
		if err := w.th.Unlock(c.lock); err != nil {
			return fmt.Errorf("rank %d unlock %d: %w", w.rank, c.lock, err)
		}
		return nil
	case cmdSliceWrite:
		v := g.MustVar("slice")
		base := w.rank * sliceLen
		for i, val := range c.vals {
			if err := v.SetInt(base+i, val); err != nil {
				return fmt.Errorf("rank %d write slice[%d]: %w", w.rank, base+i, err)
			}
		}
		return nil
	case cmdSliceRead:
		v := g.MustVar("slice")
		base := c.from * sliceLen
		if _, err := v.Ints(base, sliceLen); err != nil {
			return fmt.Errorf("rank %d read slice of rank %d: %w", w.rank, c.from, err)
		}
		return nil
	case cmdBarrier:
		if err := w.th.Barrier(0); err != nil {
			return fmt.Errorf("rank %d barrier: %w", w.rank, err)
		}
		return nil
	case cmdJoin:
		if err := w.th.Join(); err != nil {
			return fmt.Errorf("rank %d join: %w", w.rank, err)
		}
		return nil
	}
	return fmt.Errorf("rank %d: unknown command %d", w.rank, c.kind)
}

// send dispatches a command; await collects its result.
func (w *worker) send(c cmd)   { w.cmds <- c }
func (w *worker) await() error { return <-w.done }
func (w *worker) shutdown()    { close(w.cmds) }

// driver executes the seeded schedule. Critical sections never overlap on
// the same lock (a concurrent pair runs on distinct locks over disjoint
// arrays) and barrier phases touch rank-owned slices, so every value any
// thread observes is a pure function of the plan's seed — the determinism
// the byte-identical-replay guarantee rests on.
type driver struct {
	rng     *rand.Rand
	workers []*worker
	// faultAt, when set, fires before the numbered step; profiles hook
	// their schedule here.
	faultAt func(step int) error
}

// run issues plan.Steps scheduled operations, then a deterministic tail —
// one critical section per rank (so every run exercises each rank's lock
// path and has enough unlocks for the negative-mode corruption target),
// one final barrier, and joins.
func (d *driver) run(steps int) error {
	n := len(d.workers)
	for step := 0; step < steps; step++ {
		if d.faultAt != nil {
			if err := d.faultAt(step); err != nil {
				return err
			}
		}
		switch pick := d.rng.Intn(10); {
		case pick < 5:
			// One serialized critical section.
			r := d.rng.Intn(n)
			if err := d.cs(r, d.rng.Intn(2)); err != nil {
				return err
			}
		case pick < 7 && n >= 2:
			// Two concurrent critical sections on distinct locks held by
			// distinct ranks: disjoint data, deterministic values, but the
			// home serves both at once.
			r0 := d.rng.Intn(n)
			r1 := (r0 + 1 + d.rng.Intn(n-1)) % n
			c0 := d.csCmd(0)
			c1 := d.csCmd(1)
			d.workers[r0].send(c0)
			d.workers[r1].send(c1)
			err0 := d.workers[r0].await()
			err1 := d.workers[r1].await()
			if err0 != nil {
				return err0
			}
			if err1 != nil {
				return err1
			}
		case pick < 8:
			// Slice phase: every rank blind-writes its own slice, all meet
			// at the barrier, then every rank reads its neighbor's slice.
			for _, w := range d.workers {
				vals := make([]int64, sliceLen)
				for i := range vals {
					vals[i] = int64(int32(d.rng.Uint32()))
				}
				w.send(cmd{kind: cmdSliceWrite, vals: vals})
			}
			if err := d.awaitAll(); err != nil {
				return err
			}
			if err := d.barrier(); err != nil {
				return err
			}
			for r, w := range d.workers {
				w.send(cmd{kind: cmdSliceRead, from: (r + 1) % n})
			}
			if err := d.awaitAll(); err != nil {
				return err
			}
		default:
			if err := d.barrier(); err != nil {
				return err
			}
		}
	}
	// Deterministic tail: every rank locks once with a forced non-zero
	// delta (an x+1 store always changes the cell bytes, so the unlock is
	// guaranteed to carry data — the negative mode's corruption target),
	// then a closing barrier.
	for r := range d.workers {
		d.workers[r].send(cmd{kind: cmdCS, lock: r % 2, ops: []csOp{{index: r % protLen, delta: 1}}})
		if err := d.workers[r].await(); err != nil {
			return err
		}
	}
	if err := d.barrier(); err != nil {
		return err
	}
	for _, w := range d.workers {
		w.send(cmd{kind: cmdJoin})
	}
	return d.awaitAll()
}

// csCmd draws a critical-section command: 1–2 read-modify-writes on the
// lock's array.
func (d *driver) csCmd(lock int) cmd {
	nops := 1 + d.rng.Intn(2)
	ops := make([]csOp, nops)
	for i := range ops {
		ops[i] = csOp{index: d.rng.Intn(protLen), delta: int64(int32(d.rng.Uint32()))}
	}
	return cmd{kind: cmdCS, lock: lock, ops: ops}
}

func (d *driver) cs(rank, lock int) error {
	d.workers[rank].send(d.csCmd(lock))
	return d.workers[rank].await()
}

func (d *driver) barrier() error {
	for _, w := range d.workers {
		w.send(cmd{kind: cmdBarrier})
	}
	return d.awaitAll()
}

func (d *driver) awaitAll() error {
	var first error
	for _, w := range d.workers {
		if err := w.await(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
