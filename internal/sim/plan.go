// Package sim is the deterministic cluster simulator: it runs a complete
// DSM deployment — home, worker threads on heterogeneous virtual platforms,
// and an in-memory transport — under a seeded plan that composes a workload
// with a fault schedule (connection kills, transient partitions, home
// failover via internal/ha, live home handoff). Every thread's operations
// are recorded through internal/check and validated against its
// release-consistency model, so a run either reports zero violations or
// prints a replayable seed with a minimized event trace.
//
// Determinism is by construction, not by luck: the workload grammar
// compiles the plan's seed into a complete instruction schedule before any
// thread runs (fault injection never consumes the plan's rng stream),
// critical sections are globally serialized (concurrent only across
// distinct locks over disjoint data), and barrier phases write rank-owned
// slices — so the values every thread reads and writes are a pure function
// of the seed, and the canonical per-rank event trace is byte-identical
// across runs of the same plan even when fault timing varies.
package sim

import (
	"fmt"

	"hetdsm/internal/platform"
)

// Profile names a fault schedule.
type Profile string

// The fault profiles dsmsim explores.
const (
	// ProfileClean runs without faults.
	ProfileClean Profile = "clean"
	// ProfileFlaky kills connections at seeded-random frame operations;
	// threads ride sticky locks + sequence replay through the failures.
	ProfileFlaky Profile = "flaky"
	// ProfilePartition makes the home unreachable for short windows,
	// severing every client connection; threads reconnect with backoff.
	ProfilePartition Profile = "partition"
	// ProfileFailover kills the primary home mid-run; a hot standby
	// (internal/ha) detects the death and promotes its replicated backup.
	ProfileFailover Profile = "failover"
	// ProfileHandoff detaches the home at a quiesced point and migrates
	// its state to a successor, redirecting every thread.
	ProfileHandoff Profile = "handoff"
	// ProfileLostAck drops frames of specific wire kinds — grants, barrier
	// releases, acks — chosen by the seed, stressing exactly the
	// request/ack races uniform random drops rarely hit.
	ProfileLostAck Profile = "lostack"
	// ProfileHomeCrashRestart kills the home mid-run with no standby; the
	// same process restarts it from its write-ahead log and every thread
	// reconnects and replays idempotently.
	ProfileHomeCrashRestart Profile = "homecrash-restart"
	// ProfileMigrate runs the multi-home sharded directory (Plan.Shards
	// homes) and attacks it three ways at once: forced entry re-homings on
	// a seeded schedule, biased drops of the sharding wire kinds
	// (sync-req/reply/ack, dir-forward), and a mid-run shard kill+restart
	// from its write-ahead log right after an entry migrated onto it.
	ProfileMigrate Profile = "migrate"
	// ProfileStall slows every connection with seeded per-frame latency and
	// periodic full-stall windows (transport.Delayed) — the slow-peer fault
	// family: frames arrive exactly once, in order and unchanged, only
	// late. Committed state must therefore be byte-identical to the clean
	// run; the profile proves timing faults cannot leak into values.
	ProfileStall Profile = "stall"
	// ProfileDribble delivers every frame in dribbled chunks with per-frame
	// latency — the slow-NIC/short-write shape of the stall family.
	ProfileDribble Profile = "dribble"
)

// Profiles returns every fault profile, in sweep order.
func Profiles() []Profile {
	return []Profile{ProfileClean, ProfileFlaky, ProfilePartition, ProfileFailover,
		ProfileHandoff, ProfileLostAck, ProfileHomeCrashRestart, ProfileMigrate,
		ProfileStall, ProfileDribble}
}

// Shardable reports whether the profile composes with Plan.Shards > 1.
// The rest script single-home fates — failover, handoff, whole-home
// partitions, the single home's crash-restart.
func (p Profile) Shardable() bool {
	switch p {
	case ProfileClean, ProfileFlaky, ProfileLostAck, ProfileMigrate,
		ProfileStall, ProfileDribble:
		return true
	}
	return false
}

// ValidProfile reports whether p names a known profile.
func ValidProfile(p Profile) bool {
	for _, q := range Profiles() {
		if p == q {
			return true
		}
	}
	return false
}

// Mixes returns the standard platform mixes: homogeneous little-endian,
// homogeneous big-endian, and the heterogeneous home/thread splits.
func Mixes() []string {
	return []string{"LL", "SS", "SL", "LS", "Lsl", "Sls"}
}

// Plan is one fully-specified simulation run. Two runs of an identical
// plan produce byte-identical canonical event traces.
type Plan struct {
	// Seed drives the workload schedule and all randomized fault timing.
	Seed int64
	// Mix encodes the platform assignment: the first letter is the home's
	// platform, the rest cycle across thread ranks (L = linux-x86,
	// S = solaris-sparc, l = linux-x86-64, s = solaris-sparc64).
	// "SL" is a big-endian home serving little-endian threads.
	Mix string
	// Profile selects the fault schedule.
	Profile Profile
	// Threads is the worker thread count (default 3).
	Threads int
	// Steps is the number of driver steps (default 25).
	Steps int
	// Grammar names the workload grammar mix — a builtin ("classic",
	// "nested", "pointer", "producer", "hotcold", "chaos") or a literal
	// weighted spec like "cs:3,nested:2". Empty means "classic", the
	// pre-grammar schedule reproduced draw-for-draw.
	Grammar string
	// Locks overrides the grammar's lock-protected array count (0 = the
	// mix's default; valid range 2..maxLocks).
	Locks int
	// Negative injects a deliberate wire corruption into one unlock's
	// update payload; the run is then expected to FAIL validation. dsmsim
	// uses it to test the oracle itself.
	Negative bool
	// Shards runs the deployment as a multi-home sharded directory with
	// this many home shards instead of a single home (default 1; the
	// migrate profile defaults to 4). Only the clean, flaky, lostack,
	// migrate, stall and dribble profiles compose with Shards > 1 — the
	// others script single-home fates (failover, handoff, whole-home
	// partitions).
	Shards int
}

// NewPlan returns the default-shaped plan for a seed, profile and mix.
func NewPlan(seed int64, profile Profile, mix string) Plan {
	return Plan{Seed: seed, Mix: mix, Profile: profile, Threads: 3, Steps: 25}
}

// withDefaults fills unset knobs.
func (p Plan) withDefaults() Plan {
	if p.Mix == "" {
		p.Mix = "LL"
	}
	if p.Profile == "" {
		p.Profile = ProfileClean
	}
	if p.Threads <= 0 {
		p.Threads = 3
	}
	if p.Steps <= 0 {
		p.Steps = 25
	}
	if p.Grammar == "" {
		p.Grammar = "classic"
	}
	if p.Shards <= 0 {
		p.Shards = 1
	}
	if p.Profile == ProfileMigrate && p.Shards < 2 {
		p.Shards = 4
	}
	return p
}

// Workload-size ceilings: generous for real sweeps, tight enough that a
// fuzzer-shaped plan cannot ask for an absurd deployment.
const (
	maxThreads = 16
	maxSteps   = 10000
)

// Validate reports the first problem that would make the plan fail mid-run
// — an unknown profile or grammar, zero-weight mixes, negative mode on a
// faulty profile, shards on a profile scripting single-home fates — so
// callers can reject bad flag combinations up front with one actionable
// message.
func (p Plan) Validate() error {
	q := p.withDefaults()
	if !ValidProfile(q.Profile) {
		return fmt.Errorf("sim: unknown profile %q", q.Profile)
	}
	if _, _, err := q.platforms(); err != nil {
		return err
	}
	if _, err := MixByName(q.Grammar); err != nil {
		return err
	}
	if p.Locks != 0 && (p.Locks < 2 || p.Locks > maxLocks) {
		return fmt.Errorf("sim: -locks %d out of range (want 2..%d, or 0 for the grammar's default)", p.Locks, maxLocks)
	}
	if q.Threads > maxThreads {
		return fmt.Errorf("sim: %d threads exceeds the %d-thread ceiling", q.Threads, maxThreads)
	}
	if q.Steps > maxSteps {
		return fmt.Errorf("sim: %d steps exceeds the %d-step ceiling", q.Steps, maxSteps)
	}
	if q.Negative && q.Profile != ProfileClean {
		return fmt.Errorf("sim: -negative requires the clean profile (got %q): corruption detection is only provable when the corruption is the sole fault", q.Profile)
	}
	if q.Shards > 1 && !q.Profile.Shardable() {
		return fmt.Errorf("sim: profile %q does not compose with -shards %d (want clean, flaky, lostack, migrate, stall or dribble — the rest script single-home fates)",
			q.Profile, q.Shards)
	}
	return nil
}

// String is the one-line reproducer printed with every violation.
func (p Plan) String() string {
	s := fmt.Sprintf("-seed %d -profile %s -mix %s", p.Seed, p.Profile, p.Mix)
	if p.Grammar != "" && p.Grammar != "classic" {
		s += " -grammar " + p.Grammar
	}
	if p.Locks != 0 {
		s += fmt.Sprintf(" -locks %d", p.Locks)
	}
	if p.Shards > 1 {
		s += fmt.Sprintf(" -shards %d", p.Shards)
	}
	if p.Negative {
		s += " -negative"
	}
	return s
}

// platforms resolves the mix into the home platform and one platform per
// thread rank.
func (p Plan) platforms() (*platform.Platform, []*platform.Platform, error) {
	if len(p.Mix) < 2 {
		return nil, nil, fmt.Errorf("sim: mix %q needs at least a home and one thread letter", p.Mix)
	}
	byLetter := func(c byte) *platform.Platform {
		switch c {
		case 'L':
			return platform.LinuxX86
		case 'S':
			return platform.SolarisSPARC
		case 'l':
			return platform.LinuxX8664
		case 's':
			return platform.SolarisSPARC64
		}
		return nil
	}
	home := byLetter(p.Mix[0])
	if home == nil {
		return nil, nil, fmt.Errorf("sim: mix %q: unknown platform letter %q", p.Mix, p.Mix[0])
	}
	rest := p.Mix[1:]
	threads := make([]*platform.Platform, p.Threads)
	for i := range threads {
		pl := byLetter(rest[i%len(rest)])
		if pl == nil {
			return nil, nil, fmt.Errorf("sim: mix %q: unknown platform letter %q", p.Mix, rest[i%len(rest)])
		}
		threads[i] = pl
	}
	return home, threads, nil
}

// Heterogeneous reports whether the plan mixes ABIs (any thread platform
// differing from the home's).
func (p Plan) Heterogeneous() bool {
	home, threads, err := p.withDefaults().platforms()
	if err != nil {
		return false
	}
	for _, t := range threads {
		if !t.SameABI(home) {
			return true
		}
	}
	return false
}
