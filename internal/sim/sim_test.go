package sim

import (
	"bytes"
	"testing"
)

// TestRunCleanProfile is the first smoke test: a homogeneous clean run
// must validate with zero violations.
func TestRunCleanProfile(t *testing.T) {
	res := Run(NewPlan(1, ProfileClean, "LL"))
	if res.Err != nil {
		t.Fatalf("run failed: %v", res.Err)
	}
	if len(res.Violations) != 0 {
		t.Fatalf("clean run flagged:\n%s", res.Report())
	}
	if res.Events == 0 {
		t.Fatal("no events recorded")
	}
}

// TestRunHeterogeneousMixes runs each standard mix once on the clean
// profile; heterogeneous mixes route every value through internal/convert.
func TestRunHeterogeneousMixes(t *testing.T) {
	for _, mix := range Mixes() {
		mix := mix
		t.Run(mix, func(t *testing.T) {
			t.Parallel()
			res := Run(NewPlan(2, ProfileClean, mix))
			if !res.OK() {
				t.Fatalf("mix %s:\n%s", mix, res.Report())
			}
		})
	}
}

// TestRunFaultProfiles exercises each fault schedule once.
func TestRunFaultProfiles(t *testing.T) {
	for _, prof := range Profiles() {
		prof := prof
		t.Run(string(prof), func(t *testing.T) {
			res := Run(NewPlan(3, prof, "SL"))
			if !res.OK() {
				t.Fatalf("profile %s:\n%s", prof, res.Report())
			}
		})
	}
}

// TestRunReplayIsByteIdentical is the determinism guarantee: the same
// plan run twice yields byte-identical canonical event traces, even on a
// fault profile where wall-clock timing varies run to run.
func TestRunReplayIsByteIdentical(t *testing.T) {
	for _, prof := range []Profile{ProfileClean, ProfilePartition} {
		prof := prof
		t.Run(string(prof), func(t *testing.T) {
			plan := NewPlan(7, prof, "Lsl")
			a := Run(plan)
			if !a.OK() {
				t.Fatalf("first run:\n%s", a.Report())
			}
			b := Run(plan)
			if !b.OK() {
				t.Fatalf("second run:\n%s", b.Report())
			}
			if !bytes.Equal(a.Canonical, b.Canonical) {
				t.Fatalf("replay diverged:\n--- first ---\n%s\n--- second ---\n%s", a.Canonical, b.Canonical)
			}
		})
	}
}

// TestRunSeedSweepShort is the short-mode sweep wired into go test: 8
// seeds across rotating profiles and mixes, all expected clean.
func TestRunSeedSweepShort(t *testing.T) {
	profiles := Profiles()
	mixes := Mixes()
	for seed := int64(0); seed < 8; seed++ {
		plan := NewPlan(seed, profiles[seed%int64(len(profiles))], mixes[seed%int64(len(mixes))])
		res := Run(plan)
		if !res.OK() {
			t.Errorf("seed sweep:\n%s", res.Report())
		}
	}
}

// TestRunNegativeModeIsDetected injects wire corruption and asserts the
// checker flags the run — the oracle's own test.
func TestRunNegativeModeIsDetected(t *testing.T) {
	plan := NewPlan(5, ProfileClean, "LL")
	plan.Negative = true
	res := Run(plan)
	if res.Err != nil {
		t.Fatalf("negative run failed to complete: %v", res.Err)
	}
	if res.Corrupted == 0 {
		t.Fatal("negative mode corrupted no frames")
	}
	if len(res.Violations) == 0 {
		t.Fatalf("corrupted run validated clean — the oracle is broken:\n%s", res.Report())
	}
	v := res.Violations[0]
	if len(v.Trace) == 0 {
		t.Fatalf("violation carries no minimized trace: %s", v)
	}
}

// TestRunNegativeRequiresClean rejects negative mode on fault profiles.
func TestRunNegativeRequiresClean(t *testing.T) {
	plan := NewPlan(1, ProfileFlaky, "LL")
	plan.Negative = true
	if res := Run(plan); res.Err == nil {
		t.Fatal("negative+flaky accepted")
	}
}
