package sim

import (
	"bytes"
	"math/rand"
	"reflect"
	"strings"
	"testing"
)

// TestGrammarDeterminism pins that identical seeds compile byte-identical
// programs for every builtin mix — the replay guarantee starts at the
// compiler.
func TestGrammarDeterminism(t *testing.T) {
	for _, name := range GrammarMixes() {
		m, err := MixByName(name)
		if err != nil {
			t.Fatalf("builtin mix %q failed to resolve: %v", name, err)
		}
		plan := NewPlan(7, ProfileClean, "SL")
		plan.Grammar = name
		plan = plan.withDefaults()
		lay := layoutFor(plan, m)
		p1 := compileProgram(plan, m, lay, rand.New(rand.NewSource(plan.Seed)))
		p2 := compileProgram(plan, m, lay, rand.New(rand.NewSource(plan.Seed)))
		if !reflect.DeepEqual(p1, p2) {
			t.Errorf("mix %q: two compiles of the same seed differ", name)
		}
	}
}

// TestGrammarMixesValidate runs every builtin mix clean on a heterogeneous
// platform mix and requires zero violations and byte-identical replay —
// every action the grammar can emit is validated by the checker.
func TestGrammarMixesValidate(t *testing.T) {
	for _, name := range GrammarMixes() {
		for _, pm := range []string{"SL", "Lsl"} {
			name, pm := name, pm
			t.Run(name+"_"+pm, func(t *testing.T) {
				t.Parallel()
				plan := NewPlan(5, ProfileClean, pm)
				plan.Grammar = name
				a := Run(plan)
				if !a.OK() {
					t.Fatalf("grammar %s on %s failed validation:\n%s", name, pm, a.Report())
				}
				b := Run(plan)
				if !bytes.Equal(a.Canonical, b.Canonical) {
					t.Errorf("grammar %s on %s: replay diverged", name, pm)
				}
			})
		}
	}
}

// TestGrammarUnderFaults exercises the richest mix under a non-clean
// profile: fault timing must not leak into the canonical trace.
func TestGrammarUnderFaults(t *testing.T) {
	for _, profile := range []Profile{ProfileFlaky, ProfileLostAck} {
		profile := profile
		t.Run(string(profile), func(t *testing.T) {
			t.Parallel()
			plan := NewPlan(9, profile, "SL")
			plan.Grammar = "chaos"
			a := Run(plan)
			if !a.OK() {
				t.Fatalf("chaos grammar under %s failed:\n%s", profile, a.Report())
			}
			b := Run(plan)
			if !bytes.Equal(a.Canonical, b.Canonical) {
				t.Errorf("chaos grammar under %s: replay diverged", profile)
			}
		})
	}
}

// TestGrammarShardedPointer runs the pointer mix on the sharded directory:
// published pointers must survive entry re-homing and heterogeneous
// translation across shards.
func TestGrammarShardedPointer(t *testing.T) {
	plan := NewPlan(4, ProfileMigrate, "SL")
	plan.Grammar = "pointer"
	if res := Run(plan); !res.OK() {
		t.Fatalf("pointer grammar under migrate failed:\n%s", res.Report())
	}
}

// TestGrammarActionCoverage compiles the chaos mix across seeds and
// requires every one of the grammar's action kinds to appear — the
// vocabulary really is reachable, not just declared.
func TestGrammarActionCoverage(t *testing.T) {
	m, err := MixByName("chaos")
	if err != nil {
		t.Fatal(err)
	}
	var total [numActions]int
	for seed := int64(0); seed < 24; seed++ {
		plan := NewPlan(seed, ProfileClean, "LL")
		plan.Grammar = "chaos"
		plan = plan.withDefaults()
		lay := layoutFor(plan, m)
		prog := compileProgram(plan, m, lay, rand.New(rand.NewSource(seed)))
		for k := range total {
			total[k] += prog.counts[k]
		}
	}
	for k := actionKind(0); k < numActions; k++ {
		if total[k] == 0 {
			t.Errorf("action %q never compiled across 24 chaos seeds", actionNames[k])
		}
	}
	if numActions < 10 {
		t.Errorf("grammar vocabulary shrank to %d actions, want >= 10", int(numActions))
	}
}

// TestClassicLayoutUnchanged pins that the classic mix still builds the
// pre-grammar GThV shape — the index-table entry order every historical
// fault schedule depends on.
func TestClassicLayoutUnchanged(t *testing.T) {
	m, _ := MixByName("classic")
	plan := NewPlan(0, ProfileClean, "LL").withDefaults()
	lay := layoutFor(plan, m)
	g := lay.gthv()
	var names []string
	for _, f := range g.Fields {
		names = append(names, f.Name)
	}
	if got, want := strings.Join(names, ","), "a,b,slice,gen"; got != want {
		t.Fatalf("classic layout fields = %s, want %s", got, want)
	}
	if lay.ptrEntry() != -1 {
		t.Errorf("classic layout grew a pointer entry")
	}
}

// TestParseMix covers the spec parser's accept and reject paths.
func TestParseMix(t *testing.T) {
	m, err := ParseMix("cs:3,nested:2, ptr-pub:1")
	if err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
	if m.Weights[actCS] != 3 || m.Weights[actNested] != 2 || m.Weights[actPtrPub] != 1 {
		t.Errorf("weights misparsed: %v", m.Weights)
	}
	if m.Locks != 4 {
		t.Errorf("nested spec got %d locks, want 4", m.Locks)
	}
	for _, bad := range []struct{ spec, wantErr string }{
		{"cs:0", "sum to zero"},
		{"warble:3", "unknown action"},
		{"cs", "not \"action:weight\""},
		{"cs:-1", "bad weight"},
		{"cs:x", "bad weight"},
	} {
		if _, err := ParseMix(bad.spec); err == nil || !strings.Contains(err.Error(), bad.wantErr) {
			t.Errorf("ParseMix(%q) = %v, want error containing %q", bad.spec, err, bad.wantErr)
		}
	}
	if _, err := MixByName("warble"); err == nil || !strings.Contains(err.Error(), "unknown grammar") {
		t.Errorf("MixByName(warble) = %v, want unknown-grammar error", err)
	}
}

// TestPlanValidate covers the up-front flag-combination checks.
func TestPlanValidate(t *testing.T) {
	good := NewPlan(1, ProfileClean, "SL")
	good.Grammar = "nested"
	if err := good.Validate(); err != nil {
		t.Errorf("valid plan rejected: %v", err)
	}
	for _, tc := range []struct {
		name    string
		mutate  func(*Plan)
		wantErr string
	}{
		{"negative_faulty", func(p *Plan) { p.Profile = ProfileFlaky; p.Negative = true }, "-negative requires the clean profile"},
		{"shards_failover", func(p *Plan) { p.Profile = ProfileFailover; p.Shards = 4 }, "does not compose with -shards"},
		{"zero_weights", func(p *Plan) { p.Grammar = "cs:0,pair:0" }, "sum to zero"},
		{"bad_grammar", func(p *Plan) { p.Grammar = "nope" }, "unknown grammar"},
		{"locks_range", func(p *Plan) { p.Locks = 1 }, "-locks 1 out of range"},
		{"too_many_threads", func(p *Plan) { p.Threads = 99 }, "thread ceiling"},
		{"bad_mix", func(p *Plan) { p.Mix = "X" }, "mix"},
	} {
		p := NewPlan(1, ProfileClean, "SL")
		tc.mutate(&p)
		if err := p.Validate(); err == nil || !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("%s: Validate() = %v, want error containing %q", tc.name, err, tc.wantErr)
		}
	}
}

// FuzzGrammarPlan fuzzes the grammar compiler and replayer: any plan that
// passes Validate must run without infrastructure errors or violations,
// and must replay byte-identically. Seeded from the regression corpus's
// shape space.
func FuzzGrammarPlan(f *testing.F) {
	if entries, err := LoadCorpus(corpusPath); err == nil {
		for i, e := range entries {
			f.Add(e.Seed, uint8(i), uint8(i%3), uint8(3), uint8(10), uint8(0))
		}
	}
	f.Add(int64(42), uint8(5), uint8(1), uint8(2), uint8(8), uint8(4))
	f.Fuzz(func(t *testing.T, seed int64, gi, mi, threads, steps, locks uint8) {
		grammars := GrammarMixes()
		mixes := Mixes()
		plan := NewPlan(seed, ProfileClean, mixes[int(mi)%len(mixes)])
		plan.Grammar = grammars[int(gi)%len(grammars)]
		plan.Threads = 1 + int(threads)%4
		plan.Steps = 1 + int(steps)%12
		if locks%2 == 1 {
			plan.Locks = 2 + int(locks)%7
		}
		if err := plan.Validate(); err != nil {
			t.Skip()
		}
		a := Run(plan)
		if a.Err != nil {
			t.Fatalf("plan %s: infrastructure error: %v", plan, a.Err)
		}
		if len(a.Violations) > 0 {
			t.Fatalf("plan %s: violations:\n%s", plan, a.Report())
		}
		b := Run(plan)
		if !bytes.Equal(a.Canonical, b.Canonical) {
			t.Fatalf("plan %s: replay diverged", plan)
		}
	})
}
