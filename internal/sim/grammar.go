package sim

import (
	"fmt"
	"math/rand"
	"strconv"
	"strings"

	"hetdsm/internal/platform"
	"hetdsm/internal/tag"
)

// The chaos grammar: a weighted vocabulary of workload actions compiled
// deterministically from the plan's seed into a concrete instruction
// schedule. The compiler draws every random choice up front, before any
// thread runs — fault injection never consumes the plan's rng stream — so
// the canonical event trace of a plan is byte-identical across runs and
// across fault profiles.
//
// The "classic" mix is special: it reproduces the pre-grammar workload
// draw-for-draw (same rng consumption, same two-lock/one-barrier shape),
// so every historical regression seed replays its original schedule.

// Workload shape: per-lock counter arrays (lock i guards the array named
// 'a'+i), a barrier-phased array of rank-owned slices, and — when a mix's
// weights call for them — a write-hot array, a read-mostly array, and an
// array of GThV pointers for pointer-chasing reads. Array lengths are small
// so coalesced spans and element-exact diffs both occur, but whole-array
// widening stays off (the driver disables it) — blind rank-owned writes
// must never ship stale copies of a neighbor's cells.
const (
	protLen  = 8 // cells per lock-protected counter array
	sliceLen = 4 // cells each rank owns in the barrier-phase array
	hotLen   = 8 // cells in the write-hot array
	roLen    = 8 // cells in the read-mostly array
	maxLocks = 8 // prot arrays are named 'a'..'h'
)

// layout is the concrete shared-structure shape a (plan, mix) pair
// compiles to. Optional members exist only when the mix's weights use
// them, so mixes that do not need them (the classic mix above all) keep
// the index table — and therefore every entry-indexed fault schedule —
// exactly as it was before the grammar existed.
type layout struct {
	locks    int // lock-protected counter arrays; lock i guards protName(i)
	threads  int
	ptrSlots int // elements of the "pt" pointer array; 0 = absent
	hotLen   int // elements of "hot"; 0 = absent
	roLen    int // elements of "ro"; 0 = absent
}

// protName is the counter array guarded by lock i.
func (l layout) protName(i int) string { return string(rune('a' + i)) }

// Auxiliary mutex indices live above the prot locks.
func (l layout) ptrLock() int  { return l.locks }     // guards "pt"
func (l layout) hotLock() int  { return l.locks + 1 } // guards "hot"
func (l layout) roLock() int   { return l.locks + 2 } // guards "ro"
func (l layout) flagLock() int { return l.locks + 3 } // producer/consumer edge

// gthv builds the shared structure for this layout.
func (l layout) gthv() tag.Struct {
	fs := make([]tag.Field, 0, l.locks+5)
	for i := 0; i < l.locks; i++ {
		fs = append(fs, tag.Field{Name: l.protName(i), T: tag.IntArray(protLen)})
	}
	fs = append(fs, tag.Field{Name: "slice", T: tag.IntArray(l.threads * sliceLen)})
	if l.hotLen > 0 {
		fs = append(fs, tag.Field{Name: "hot", T: tag.IntArray(l.hotLen)})
	}
	if l.roLen > 0 {
		fs = append(fs, tag.Field{Name: "ro", T: tag.IntArray(l.roLen)})
	}
	if l.ptrSlots > 0 {
		fs = append(fs, tag.Field{Name: "pt", T: tag.Array{Elem: tag.Pointer{}, N: l.ptrSlots}})
	}
	fs = append(fs, tag.Field{Name: "gen", T: tag.Scalar{T: platform.CLongLong}})
	return tag.Struct{Name: "GThV_t", Fields: fs}
}

// ptrEntry is the index-table entry of "pt", or -1 when absent. Each field
// flattens to exactly one entry in declaration order on every platform, so
// the entry index is just the field position.
func (l layout) ptrEntry() int {
	if l.ptrSlots == 0 {
		return -1
	}
	i := l.locks + 1 // prot arrays + "slice"
	if l.hotLen > 0 {
		i++
	}
	if l.roLen > 0 {
		i++
	}
	return i
}

// varSpec names one signed-integer member and its length.
type varSpec struct {
	name string
	n    int
}

// intSpecs lists every integer member for the final master comparison.
func (l layout) intSpecs() []varSpec {
	specs := make([]varSpec, 0, l.locks+4)
	for i := 0; i < l.locks; i++ {
		specs = append(specs, varSpec{l.protName(i), protLen})
	}
	specs = append(specs, varSpec{"slice", l.threads * sliceLen})
	if l.hotLen > 0 {
		specs = append(specs, varSpec{"hot", l.hotLen})
	}
	if l.roLen > 0 {
		specs = append(specs, varSpec{"ro", l.roLen})
	}
	specs = append(specs, varSpec{"gen", 1})
	return specs
}

// actionKind enumerates the grammar's weighted action vocabulary.
type actionKind int

const (
	// actCS: one rank runs a critical section on a random lock.
	actCS actionKind = iota
	// actPair: two ranks run concurrent critical sections on distinct
	// locks over disjoint arrays.
	actPair
	// actNested: one rank acquires an ascending chain of 2-3 locks,
	// mutating each guarded array while the chain is held, releasing in
	// reverse order.
	actNested
	// actNestedPair: two ranks hold disjoint nested chains concurrently
	// (lower vs. upper half of the lock space — a global order, so no
	// deadlock even when the home serves both at once).
	actNestedPair
	// actPhase: every rank blind-writes its own slice, all meet at the
	// barrier, then every rank reads its neighbor's slice.
	actPhase
	// actBarrier: a bare all-rank barrier.
	actBarrier
	// actProduce: a producer blind-writes its slice then bumps the "gen"
	// generation counter under the flag lock — the release carries the
	// slice writes, so consumers are ordered by the lock-release edge
	// alone, no barrier.
	actProduce
	// actConsume: a consumer takes the flag lock, reads "gen", and reads
	// a seeded rank's slice — fresh by the acquire's update grant.
	actConsume
	// actPtrPub: a rank mutates a counter cell under its lock, then nests
	// the pointer lock and publishes &cell into its own "pt" slot.
	actPtrPub
	// actPtrChase: a rank takes the pointer lock, loads a "pt" slot, and
	// if the pointer resolves, reads the cell it targets — a
	// pointer-chasing read whose staleness the checker models.
	actPtrChase
	// actHotWrite: a rank-asymmetric writer (low ranks favored) bursts
	// read-modify-writes into the write-hot array.
	actHotWrite
	// actROScan: a rank-asymmetric reader (high ranks favored) scans the
	// read-mostly array, with a rare refresh write.
	actROScan

	numActions
)

// actionNames maps kinds to the spec names "-grammar cs:3,nested:2" uses.
var actionNames = [numActions]string{
	"cs", "pair", "nested", "nested-pair", "phase", "barrier",
	"produce", "consume", "ptr-pub", "ptr-chase", "hot-write", "ro-scan",
}

// GrammarMix is a weighted grammar over the action vocabulary plus the
// layout knobs the weights imply.
type GrammarMix struct {
	// Name is the builtin name or the literal spec string.
	Name string
	// Locks is the prot-lock count when the plan leaves Plan.Locks 0.
	Locks int
	// Stagger ends the run with staggered joins — ranks leave one at a
	// time while survivors keep working — instead of barrier-then-join-all.
	Stagger bool
	// Weights holds the relative weight of each actionKind.
	Weights [numActions]int
	// legacy marks the classic mix: reproduce the pre-grammar schedule
	// draw-for-draw instead of weighted sampling.
	legacy bool
}

// uses reports whether the mix can emit the action.
func (m GrammarMix) uses(k actionKind) bool { return m.Weights[k] > 0 }

// builtinMixes returns the named grammar mixes, in sweep order.
func builtinMixes() []GrammarMix {
	classic := GrammarMix{Name: "classic", Locks: 2, legacy: true}
	// Indicative only — the legacy path draws its own schedule — but kept
	// truthful so layoutFor sees which members classic touches.
	classic.Weights[actCS] = 5
	classic.Weights[actPair] = 2
	classic.Weights[actPhase] = 1
	classic.Weights[actBarrier] = 2

	nested := GrammarMix{Name: "nested", Locks: 4}
	nested.Weights[actCS] = 3
	nested.Weights[actPair] = 1
	nested.Weights[actNested] = 4
	nested.Weights[actNestedPair] = 2
	nested.Weights[actPhase] = 1
	nested.Weights[actBarrier] = 1

	pointer := GrammarMix{Name: "pointer", Locks: 2}
	pointer.Weights[actCS] = 2
	pointer.Weights[actPtrPub] = 4
	pointer.Weights[actPtrChase] = 4
	pointer.Weights[actPhase] = 1
	pointer.Weights[actBarrier] = 1

	producer := GrammarMix{Name: "producer", Locks: 2}
	producer.Weights[actProduce] = 4
	producer.Weights[actConsume] = 4
	producer.Weights[actCS] = 2
	producer.Weights[actPhase] = 1
	producer.Weights[actBarrier] = 1

	hotcold := GrammarMix{Name: "hotcold", Locks: 2}
	hotcold.Weights[actHotWrite] = 4
	hotcold.Weights[actROScan] = 4
	hotcold.Weights[actCS] = 2
	hotcold.Weights[actBarrier] = 1

	chaos := GrammarMix{Name: "chaos", Locks: 4, Stagger: true}
	chaos.Weights[actCS] = 3
	chaos.Weights[actPair] = 2
	chaos.Weights[actNested] = 3
	chaos.Weights[actNestedPair] = 2
	chaos.Weights[actPhase] = 2
	chaos.Weights[actBarrier] = 1
	chaos.Weights[actProduce] = 2
	chaos.Weights[actConsume] = 2
	chaos.Weights[actPtrPub] = 2
	chaos.Weights[actPtrChase] = 2
	chaos.Weights[actHotWrite] = 2
	chaos.Weights[actROScan] = 2

	return []GrammarMix{classic, nested, pointer, producer, hotcold, chaos}
}

// GrammarMixes returns the builtin grammar names, in sweep order.
func GrammarMixes() []string {
	ms := builtinMixes()
	names := make([]string, len(ms))
	for i, m := range ms {
		names[i] = m.Name
	}
	return names
}

// MixByName resolves a grammar: "" or a builtin name, or a literal
// weighted spec like "cs:3,nested:2".
func MixByName(name string) (GrammarMix, error) {
	if name == "" {
		name = "classic"
	}
	for _, m := range builtinMixes() {
		if m.Name == name {
			return m, nil
		}
	}
	if strings.Contains(name, ":") {
		return ParseMix(name)
	}
	return GrammarMix{}, fmt.Errorf("sim: unknown grammar %q (want %s, or a spec like \"cs:3,nested:2\")",
		name, strings.Join(GrammarMixes(), "|"))
}

// ParseMix parses a weighted action spec: comma-separated "action:weight"
// pairs over the names cs, pair, nested, nested-pair, phase, barrier,
// produce, consume, ptr-pub, ptr-chase, hot-write, ro-scan.
func ParseMix(spec string) (GrammarMix, error) {
	m := GrammarMix{Name: spec, Locks: 2}
	total := 0
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, wstr, ok := strings.Cut(part, ":")
		if !ok {
			return m, fmt.Errorf("sim: grammar spec %q: %q is not \"action:weight\"", spec, part)
		}
		k := -1
		for i, n := range actionNames {
			if n == name {
				k = i
				break
			}
		}
		if k < 0 {
			return m, fmt.Errorf("sim: grammar spec %q: unknown action %q (want one of %s)",
				spec, name, strings.Join(actionNames[:], ", "))
		}
		w, err := strconv.Atoi(strings.TrimSpace(wstr))
		if err != nil || w < 0 {
			return m, fmt.Errorf("sim: grammar spec %q: bad weight %q for %q (want a non-negative integer)", spec, wstr, name)
		}
		m.Weights[k] += w
		total += w
	}
	if total == 0 {
		return m, fmt.Errorf("sim: grammar spec %q: weights sum to zero — no action can ever be drawn", spec)
	}
	if m.uses(actNested) || m.uses(actNestedPair) {
		m.Locks = 4
	}
	return m, nil
}

// layoutFor derives the concrete layout a (plan, mix) pair compiles to.
func layoutFor(p Plan, m GrammarMix) layout {
	locks := p.Locks
	if locks == 0 {
		locks = m.Locks
	}
	lay := layout{locks: locks, threads: p.Threads}
	if m.uses(actPtrPub) || m.uses(actPtrChase) {
		lay.ptrSlots = p.Threads
	}
	if m.uses(actHotWrite) {
		lay.hotLen = hotLen
	}
	if m.uses(actROScan) {
		lay.roLen = roLen
	}
	return lay
}

// instrOp is one worker instruction opcode.
type instrOp int

const (
	inLock     instrOp = iota // acquire mutex sync
	inUnlock                  // release mutex sync
	inBarrier                 // enter barrier sync
	inJoin                    // terminate the thread
	inRMW                     // v[idx] += val (read then write)
	inWrite                   // v[idx] = val (blind)
	inRead                    // load v[idx]
	inReadRun                 // load v[idx..idx+n)
	inPtrPub                  // v[idx] = &tv[ti]
	inPtrChase                // load pointer v[idx]; read its target if it resolves
)

// instr is one compiled worker instruction.
type instr struct {
	op   instrOp
	sync int    // inLock/inUnlock/inBarrier index
	v    string // member the instruction touches
	idx  int
	n    int   // inReadRun length
	val  int64 // inRMW delta / inWrite value
	tv   string
	ti   int // inPtrPub target member and element
}

// rankProg is one rank's instruction list within a batch.
type rankProg struct {
	rank   int
	instrs []instr
}

// batch holds rank programs dispatched concurrently and awaited together.
// The compiler guarantees programs in one batch touch disjoint locks and
// disjoint data cells, so concurrency never makes an observed value depend
// on scheduling.
type batch []rankProg

// progStep is the ordered batches of one schedule step.
type progStep []batch

// program is a fully compiled workload: numbered steps (the fault schedule
// fires before each) and a deterministic closing tail.
type program struct {
	steps []progStep
	tail  []progStep
	// counts tallies how many times each action was emitted.
	counts [numActions]int
}

// compileProgram compiles the plan's schedule from its rng. Compilation
// consumes the entire seeded stream before any thread runs; execution
// draws nothing.
func compileProgram(p Plan, m GrammarMix, lay layout, rng *rand.Rand) *program {
	c := &compiler{rng: rng, lay: lay, n: p.Threads, m: m}
	prog := &program{}
	for step := 0; step < p.Steps; step++ {
		if m.legacy {
			prog.steps = append(prog.steps, c.classicStep(&prog.counts))
		} else {
			prog.steps = append(prog.steps, c.grammarStep(&prog.counts))
		}
	}
	prog.tail = c.tail()
	return prog
}

type compiler struct {
	rng *rand.Rand
	lay layout
	n   int
	m   GrammarMix
}

// classicStep reproduces the pre-grammar schedule draw-for-draw: the same
// Intn(10) buckets, the same per-bucket rng consumption — so historical
// regression seeds replay their original schedules byte-identically.
func (c *compiler) classicStep(counts *[numActions]int) progStep {
	n := c.n
	switch pick := c.rng.Intn(10); {
	case pick < 5:
		r := c.rng.Intn(n)
		lock := c.rng.Intn(2)
		counts[actCS]++
		return progStep{batch{{r, c.csInstrs(lock)}}}
	case pick < 7 && n >= 2:
		r0 := c.rng.Intn(n)
		r1 := (r0 + 1 + c.rng.Intn(n-1)) % n
		i0 := c.csInstrs(0)
		i1 := c.csInstrs(1)
		counts[actPair]++
		return progStep{batch{{r0, i0}, {r1, i1}}}
	case pick < 8:
		counts[actPhase]++
		return c.phaseStep()
	default:
		counts[actBarrier]++
		return progStep{c.barrierBatch(0)}
	}
}

// grammarStep draws one weighted action and compiles it.
func (c *compiler) grammarStep(counts *[numActions]int) progStep {
	k := c.pickAction()
	// Degrade actions whose preconditions the plan cannot meet — the
	// fallback is drawn deterministically, so replay is unaffected.
	if k == actPair && c.n < 2 {
		k = actCS
	}
	if k == actNestedPair && (c.n < 2 || c.lay.locks < 4) {
		k = actNested
	}
	counts[k]++
	switch k {
	case actCS:
		r := c.rng.Intn(c.n)
		lock := c.rng.Intn(c.lay.locks)
		return progStep{batch{{r, c.csInstrs(lock)}}}
	case actPair:
		r0 := c.rng.Intn(c.n)
		r1 := (r0 + 1 + c.rng.Intn(c.n-1)) % c.n
		l0 := c.rng.Intn(c.lay.locks)
		l1 := (l0 + 1 + c.rng.Intn(c.lay.locks-1)) % c.lay.locks
		return progStep{batch{{r0, c.csInstrs(l0)}, {r1, c.csInstrs(l1)}}}
	case actNested:
		r := c.rng.Intn(c.n)
		return progStep{batch{{r, c.chainInstrs(c.chainStart())}}}
	case actNestedPair:
		r0 := c.rng.Intn(c.n)
		r1 := (r0 + 1 + c.rng.Intn(c.n-1)) % c.n
		half := c.lay.locks / 2
		a0 := c.rng.Intn(half - 1)                  // chain {a0, a0+1} in the lower half
		b0 := half + c.rng.Intn(c.lay.locks-half-1) // chain {b0, b0+1} in the upper half
		i0 := c.chain2Instrs(a0)
		i1 := c.chain2Instrs(b0)
		return progStep{batch{{r0, i0}, {r1, i1}}}
	case actPhase:
		return c.phaseStep()
	case actBarrier:
		return progStep{c.barrierBatch(c.rng.Intn(2))}
	case actProduce:
		p := c.rng.Intn(c.n)
		ins := make([]instr, 0, sliceLen+3)
		for i := 0; i < sliceLen; i++ {
			ins = append(ins, instr{op: inWrite, v: "slice", idx: p*sliceLen + i, val: c.val()})
		}
		fl := c.lay.flagLock()
		ins = append(ins,
			instr{op: inLock, sync: fl},
			instr{op: inRMW, v: "gen", idx: 0, val: 1},
			instr{op: inUnlock, sync: fl})
		return progStep{batch{{p, ins}}}
	case actConsume:
		r := c.rng.Intn(c.n)
		src := c.rng.Intn(c.n)
		fl := c.lay.flagLock()
		return progStep{batch{{r, []instr{
			{op: inLock, sync: fl},
			{op: inRead, v: "gen", idx: 0},
			{op: inReadRun, v: "slice", idx: src * sliceLen, n: sliceLen},
			{op: inUnlock, sync: fl},
		}}}}
	case actPtrPub:
		r := c.rng.Intn(c.n)
		lp := c.rng.Intn(c.lay.locks)
		cell := c.rng.Intn(protLen)
		name := c.lay.protName(lp)
		return progStep{batch{{r, []instr{
			{op: inLock, sync: lp},
			{op: inRMW, v: name, idx: cell, val: c.val()},
			{op: inLock, sync: c.lay.ptrLock()}, // prot lock < ptrLock: global order
			{op: inPtrPub, v: "pt", idx: r, tv: name, ti: cell},
			{op: inUnlock, sync: c.lay.ptrLock()},
			{op: inUnlock, sync: lp},
		}}}}
	case actPtrChase:
		r := c.rng.Intn(c.n)
		slot := c.rng.Intn(c.lay.ptrSlots)
		return progStep{batch{{r, []instr{
			{op: inLock, sync: c.lay.ptrLock()},
			{op: inPtrChase, v: "pt", idx: slot},
			{op: inUnlock, sync: c.lay.ptrLock()},
		}}}}
	case actHotWrite:
		r := c.asymRank(false)
		burst := 2 + c.rng.Intn(3)
		ins := make([]instr, 0, burst+2)
		ins = append(ins, instr{op: inLock, sync: c.lay.hotLock()})
		for i := 0; i < burst; i++ {
			ins = append(ins, instr{op: inRMW, v: "hot", idx: c.rng.Intn(c.lay.hotLen), val: c.val()})
		}
		ins = append(ins, instr{op: inUnlock, sync: c.lay.hotLock()})
		return progStep{batch{{r, ins}}}
	case actROScan:
		r := c.asymRank(true)
		ins := []instr{
			{op: inLock, sync: c.lay.roLock()},
			{op: inReadRun, v: "ro", idx: 0, n: c.lay.roLen},
		}
		if c.rng.Intn(8) == 0 {
			ins = append(ins, instr{op: inWrite, v: "ro", idx: c.rng.Intn(c.lay.roLen), val: c.val()})
		}
		ins = append(ins, instr{op: inUnlock, sync: c.lay.roLock()})
		return progStep{batch{{r, ins}}}
	}
	panic(fmt.Sprintf("sim: unhandled action %d", k))
}

// pickAction draws a weighted action kind.
func (c *compiler) pickAction() actionKind {
	total := 0
	for _, w := range c.m.Weights {
		total += w
	}
	x := c.rng.Intn(total)
	for k, w := range c.m.Weights {
		if x < w {
			return actionKind(k)
		}
		x -= w
	}
	panic("sim: weighted pick out of range")
}

// val draws a workload value — truncated to int32 so it round-trips
// through every platform's C int.
func (c *compiler) val() int64 { return int64(int32(c.rng.Uint32())) }

// asymRank draws a rank from a triangular distribution: weight n-r for
// rank r (favoring low ranks), or r+1 when high is set.
func (c *compiler) asymRank(high bool) int {
	total := c.n * (c.n + 1) / 2
	x := c.rng.Intn(total)
	for r := 0; r < c.n; r++ {
		w := c.n - r
		if high {
			w = r + 1
		}
		if x < w {
			return r
		}
		x -= w
	}
	return c.n - 1
}

// csInstrs compiles one critical section: 1-2 read-modify-writes on the
// lock's array. Draw order matches the pre-grammar csCmd exactly.
func (c *compiler) csInstrs(lock int) []instr {
	nops := 1 + c.rng.Intn(2)
	ins := make([]instr, 0, nops+2)
	ins = append(ins, instr{op: inLock, sync: lock})
	name := c.lay.protName(lock)
	for i := 0; i < nops; i++ {
		ins = append(ins, instr{op: inRMW, v: name, idx: c.rng.Intn(protLen), val: c.val()})
	}
	ins = append(ins, instr{op: inUnlock, sync: lock})
	return ins
}

// chainStart draws the depth (2-3, bounded by the lock count) and first
// lock of an ascending nested chain.
func (c *compiler) chainStart() (start, depth int) {
	depth = 2
	if c.lay.locks > 2 {
		max := c.lay.locks
		if max > 3 {
			max = 3
		}
		depth = 2 + c.rng.Intn(max-1)
	}
	start = c.rng.Intn(c.lay.locks - depth + 1)
	return start, depth
}

// chainInstrs compiles a nested critical section: acquire locks
// start..start+depth-1 in ascending order, mutate each guarded array while
// the chain is held, release in reverse.
func (c *compiler) chainInstrs(start, depth int) []instr {
	ins := make([]instr, 0, 3*depth)
	for d := 0; d < depth; d++ {
		ins = append(ins,
			instr{op: inLock, sync: start + d},
			instr{op: inRMW, v: c.lay.protName(start + d), idx: c.rng.Intn(protLen), val: c.val()})
	}
	for d := depth - 1; d >= 0; d-- {
		ins = append(ins, instr{op: inUnlock, sync: start + d})
	}
	return ins
}

// chain2Instrs is chainInstrs with a fixed depth of 2 (the nested-pair
// arms).
func (c *compiler) chain2Instrs(start int) []instr { return c.chainInstrs(start, 2) }

// phaseStep compiles a barrier phase: concurrent rank-owned slice writes,
// an all-rank barrier, concurrent neighbor reads. Draw order matches the
// pre-grammar slice phase exactly.
func (c *compiler) phaseStep() progStep {
	writes := make(batch, 0, c.n)
	for r := 0; r < c.n; r++ {
		ins := make([]instr, sliceLen)
		for i := range ins {
			ins[i] = instr{op: inWrite, v: "slice", idx: r*sliceLen + i, val: c.val()}
		}
		writes = append(writes, rankProg{r, ins})
	}
	reads := make(batch, 0, c.n)
	for r := 0; r < c.n; r++ {
		reads = append(reads, rankProg{r, []instr{
			{op: inReadRun, v: "slice", idx: ((r + 1) % c.n) * sliceLen, n: sliceLen},
		}})
	}
	return progStep{writes, c.barrierBatch(0), reads}
}

// barrierBatch sends every rank into barrier idx.
func (c *compiler) barrierBatch(idx int) batch {
	b := make(batch, c.n)
	for r := 0; r < c.n; r++ {
		b[r] = rankProg{r, []instr{{op: inBarrier, sync: idx}}}
	}
	return b
}

// tail compiles the deterministic closing phase. Every rank first locks
// once with a forced +1 delta (an x+1 store always changes the cell bytes,
// so the unlock is guaranteed to carry data — the negative mode's
// corruption target). Non-staggered mixes then meet at a final barrier and
// join together, draw-for-draw what the pre-grammar tail did. Staggered
// mixes instead retire ranks one at a time in a seeded order, with the
// next-to-leave rank running one more critical section between departures
// — and no barriers once the first rank is gone, since a barrier
// rendezvous can never complete without it.
func (c *compiler) tail() []progStep {
	var steps []progStep
	for r := 0; r < c.n; r++ {
		lock := r % c.lay.locks
		steps = append(steps, progStep{batch{{r, []instr{
			{op: inLock, sync: lock},
			{op: inRMW, v: c.lay.protName(lock), idx: r % protLen, val: 1},
			{op: inUnlock, sync: lock},
		}}}})
	}
	if !c.m.Stagger {
		steps = append(steps, progStep{c.barrierBatch(0)})
		join := make(batch, c.n)
		for r := 0; r < c.n; r++ {
			join[r] = rankProg{r, []instr{{op: inJoin}}}
		}
		steps = append(steps, progStep{join})
		return steps
	}
	order := c.rng.Perm(c.n)
	for k, r := range order {
		steps = append(steps, progStep{batch{{r, []instr{{op: inJoin}}}}})
		if k == c.n-1 {
			break
		}
		surv := order[k+1]
		lock := c.rng.Intn(c.lay.locks)
		steps = append(steps, progStep{batch{{surv, c.csInstrs(lock)}}})
	}
	return steps
}
