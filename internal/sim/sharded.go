package sim

import (
	"fmt"
	"math/rand"
	"os"
	"time"

	"hetdsm/internal/check"
	"hetdsm/internal/dir"
	"hetdsm/internal/dsd"
	"hetdsm/internal/flight"
	"hetdsm/internal/platform"
	"hetdsm/internal/telemetry"
	"hetdsm/internal/trace"
	"hetdsm/internal/transport"
	"hetdsm/internal/vclock"
	"hetdsm/internal/wire"
)

// runShardedSim is Run's multi-home branch: the same seeded workload and
// checker, but the deployment is a dir.Cluster of plan.Shards home shards
// behind per-thread proxies. The fault network sits on the proxy-to-shard
// path, where the sharding wire kinds (sync rounds, directory forwards,
// entry transfers) actually flow.
//
// The workload schedule draws from the plan seed exactly as the single-home
// path does, and the migrate profile's fault schedule draws from a separate
// stream — so for a fixed seed the canonical trace is identical across
// profiles, and re-homing an entry is observably value-neutral.
func runShardedSim(plan Plan, gm GrammarMix, lay layout, homePlat *platform.Platform, threadPlats []*platform.Platform) Result {
	res := Result{Plan: plan}
	rng := rand.New(rand.NewSource(plan.Seed))
	frng := rand.New(rand.NewSource(plan.Seed ^ 0x5ca1ab1e))
	clock := vclock.NewVirtual(time.Time{})
	hist := check.NewHistory()
	tlog := trace.NewLog(1 << 16)
	gthv := lay.gthv()

	opts := dsd.DefaultOptions()
	opts.WholeArrayThreshold = 0
	opts.StickyLocks = true
	opts.Trace = tlog
	spans := telemetry.NewSpanLog(1 << 16)
	fr := flight.New(4096)
	opts.Spans = spans
	opts.Flight = fr

	base := transport.NewInproc()
	var nw transport.Network = base
	var biased *BiasedNet
	var delayed *transport.Delayed
	switch plan.Profile {
	case ProfileClean:
	case ProfileFlaky:
		nw = transport.NewFlakyRand(base, 0.01, plan.Seed)
	case ProfileLostAck:
		biased = NewBiasedNet(base, lostAckKinds(plan.Seed), 0.25, plan.Seed)
		nw = biased
		res.FaultLog = append(res.FaultLog,
			fmt.Sprintf("lostack: dropping {%s} frames with p=0.25", biased.Targets()))
	case ProfileMigrate:
		biased = NewBiasedNet(base, migrateKinds(plan.Seed), 0.2, plan.Seed)
		nw = biased
		res.FaultLog = append(res.FaultLog,
			fmt.Sprintf("migrate: dropping {%s} frames with p=0.2", biased.Targets()))
	case ProfileStall:
		delayed = transport.NewDelayed(base, stallProfile(plan.Seed))
		nw = delayed
		res.FaultLog = append(res.FaultLog,
			"stall: seeded per-frame latency with periodic full-stall windows")
	case ProfileDribble:
		delayed = transport.NewDelayed(base, dribbleProfile(plan.Seed))
		nw = delayed
		res.FaultLog = append(res.FaultLog,
			"dribble: every frame delivered in dribbled chunks with per-frame latency")
	default:
		res.Err = fmt.Errorf("sim: profile %q does not compose with -shards %d (want clean, flaky, lostack, migrate, stall or dribble)",
			plan.Profile, plan.Shards)
		return res
	}

	var walDir string
	if plan.Profile == ProfileMigrate {
		// The mid-run shard kill restarts from a write-ahead log.
		d, err := os.MkdirTemp("", "dsmsim-shardwal-")
		if err != nil {
			res.Err = err
			return res
		}
		defer os.RemoveAll(d)
		walDir = d
	}
	cl, err := dir.NewCluster(gthv, homePlat, plan.Threads, dir.Config{
		Shards:  plan.Shards,
		Opts:    opts,
		Network: nw,
		WALDir:  walDir,
		Backoff: transport.Backoff{
			Base: 200 * time.Microsecond, Max: 5 * time.Millisecond,
			Factor: 2, Jitter: 0.3, Attempts: 400, Seed: plan.Seed,
		},
	})
	if err != nil {
		res.Err = err
		return res
	}
	defer cl.Close()

	workers := make([]*worker, plan.Threads)
	for rank := 0; rank < plan.Threads; rank++ {
		topts := opts
		topts.Recorder = hist
		th, err := cl.NewThread(int32(rank), threadPlats[rank], topts)
		if err != nil {
			res.Err = fmt.Errorf("sim: rank %d attach: %w", rank, err)
			return res
		}
		workers[rank] = newWorker(rank, th)
	}

	entries := cl.Home(0).Table().Len()
	epoch := clock.Now()
	logicalNow := func() time.Duration { return clock.Now().Sub(epoch) }
	faultAt := func(step int) error {
		defer clock.Advance(time.Millisecond)
		if plan.Profile != ProfileMigrate {
			return nil
		}
		if step%2 == 1 {
			entry := frng.Intn(entries)
			dst := int32(frng.Intn(plan.Shards))
			if err := cl.ForceMigrate(entry, dst); err != nil {
				return fmt.Errorf("sim: migrate entry %d to shard %d: %w", entry, dst, err)
			}
			res.FaultLog = append(res.FaultLog,
				fmt.Sprintf("step %d t=%s: migrate entry %d -> shard %d", step, logicalNow(), entry, dst))
		}
		if step == plan.Steps/2 {
			// Land a fresh master copy on the victim, then crash it: the
			// restart must recover the just-migrated entry from the WAL
			// record TransferEntry wrote before publishing the flip.
			victim := frng.Intn(plan.Shards)
			entry := frng.Intn(entries)
			if err := cl.ForceMigrate(entry, int32(victim)); err != nil {
				return fmt.Errorf("sim: migrate entry %d to victim shard %d: %w", entry, victim, err)
			}
			if err := cl.RestartShard(victim); err != nil {
				return fmt.Errorf("sim: restart shard %d: %w", victim, err)
			}
			res.FaultLog = append(res.FaultLog,
				fmt.Sprintf("step %d t=%s: migrate entry %d -> shard %d, kill shard %d, restart from WAL at epoch %d",
					step, logicalNow(), entry, victim, victim, cl.Home(victim).Epoch()))
		}
		return nil
	}

	prog := compileProgram(plan, gm, lay, rng)
	d := &driver{workers: workers, faultAt: faultAt}
	runErr := d.run(prog)
	for _, w := range workers {
		w.shutdown()
	}
	if runErr != nil {
		res.Err = runErr
		return res
	}
	cl.Wait()

	for _, w := range workers {
		res.Reconnects += w.th.Reconnects()
	}
	if biased != nil {
		res.FaultLog = append(res.FaultLog,
			fmt.Sprintf("%s: dropped %d frames", plan.Profile, biased.Drops()))
	}
	if delayed != nil {
		res.FaultLog = append(res.FaultLog,
			fmt.Sprintf("%s: delayed %d frames, %d full stalls", plan.Profile, delayed.Frames(), delayed.Stalls()))
	}

	events := hist.Events()
	res.Events = len(events)
	res.Canonical = check.Canonical(events)
	g, err := cl.MergedGlobals()
	if err != nil {
		res.Err = fmt.Errorf("sim: stitching master image: %w", err)
		return res
	}
	vs := check.Validate(events, plan.Threads)
	vs = append(vs, compareMaster(g, events, lay)...)
	vs = append(vs, check.CrossCheckTrace(events, tlog)...)
	vs = append(vs, roundTripViolations(events, homePlat, threadPlats)...)
	res.Violations = vs
	res.Spans = spans.Spans()
	if len(res.Violations) > 0 {
		fr.Note("checker", flight.KindViolation, -1, uint64(len(res.Violations)), 0)
		fr.Trip(fmt.Sprintf("checker: %d violations (plan %s)", len(res.Violations), plan))
	}
	res.FlightDump = fr.String()
	return res
}

// migrateKinds picks the seed's drop-target set among the sharding wire
// kinds, so a sweep isolates each leg of the proxy/shard protocol: sync
// requests, sync replies, drain acks, and directory forwards.
func migrateKinds(seed int64) []wire.Kind {
	sets := [][]wire.Kind{
		{wire.KindSyncReply},
		{wire.KindSyncAck},
		{wire.KindDirForward},
		{wire.KindSyncReq, wire.KindDirForward},
		{wire.KindSyncReply, wire.KindSyncAck},
	}
	i := int(seed % int64(len(sets)))
	if i < 0 {
		i += len(sets)
	}
	return sets[i]
}
