package sim

import (
	"fmt"
	"sync"
	"time"

	"hetdsm/internal/transport"
	"hetdsm/internal/wire"
)

// Net wraps a transport.Network with transient-partition support: Cut
// makes an address unreachable (new dials fail, existing connections to it
// are severed) until Heal. The heal is scheduled on a real timer so a
// driver blocked behind a partitioned request still recovers — retries do
// not change any observed value, so wall-clock fault timing never leaks
// into the canonical event trace.
type Net struct {
	inner transport.Network

	mu    sync.Mutex
	cut   map[string]bool
	conns map[string][]transport.Conn // live dialed conns per address
	cuts  int
}

// NewNet wraps inner.
func NewNet(inner transport.Network) *Net {
	return &Net{inner: inner, cut: make(map[string]bool), conns: make(map[string][]transport.Conn)}
}

// Listen implements transport.Network.
func (n *Net) Listen(addr string) (transport.Listener, error) { return n.inner.Listen(addr) }

// Dial implements transport.Network; it fails while addr is cut and tracks
// the connection so a later Cut can sever it.
func (n *Net) Dial(addr string) (transport.Conn, error) {
	n.mu.Lock()
	if n.cut[addr] {
		n.mu.Unlock()
		return nil, fmt.Errorf("sim: %q partitioned", addr)
	}
	n.mu.Unlock()
	c, err := n.inner.Dial(addr)
	if err != nil {
		return nil, err
	}
	n.mu.Lock()
	// Re-check: a Cut may have raced the dial; sever immediately if so.
	if n.cut[addr] {
		n.mu.Unlock()
		c.Close()
		return nil, fmt.Errorf("sim: %q partitioned", addr)
	}
	n.conns[addr] = append(n.conns[addr], c)
	n.mu.Unlock()
	return c, nil
}

// Cut partitions addr: existing connections are severed and dials fail
// until heal elapses (real time), after which the address is reachable
// again. Cuts returns how many times it ran.
func (n *Net) Cut(addr string, heal time.Duration) {
	n.mu.Lock()
	n.cut[addr] = true
	n.cuts++
	doomed := n.conns[addr]
	n.conns[addr] = nil
	n.mu.Unlock()
	for _, c := range doomed {
		c.Close()
	}
	time.AfterFunc(heal, func() {
		n.mu.Lock()
		n.cut[addr] = false
		n.mu.Unlock()
	})
}

// Cuts returns the number of partitions injected.
func (n *Net) Cuts() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.cuts
}

// CorruptNet implements the negative-test fault: it decodes client frames
// in flight and flips one bit in the data payload of every unlock request,
// re-encoding the frame so it still parses. The corruption changes
// committed values without the sender's recorder knowing — the
// release-consistency checker MUST flag the run, or the oracle is broken.
//
// Every data-bearing unlock is corrupted (not just one) so detection is
// guaranteed for every seed: a single mid-run corruption can be silently
// erased when the corrupting rank is itself the next read-modify-writer of
// the cell (its own replica still holds the uncorrupted value), but the
// run's final unlock has nothing after it to overwrite the damage, so the
// final-state comparison always diverges.
type CorruptNet struct {
	inner transport.Network
	skip  map[int32]bool // index-table entries never corrupted (pointers)

	mu        sync.Mutex
	corrupted int
}

// NewCorruptNet wraps inner, corrupting every unlock request's payload.
// skipEntries lists index-table entries whose updates must pass through
// unmangled — pointer entries, where a flipped bit breaks home-side
// translation (an infrastructure error) instead of silently diverging a
// committed value (the oracle's target). Negative indices are ignored.
func NewCorruptNet(inner transport.Network, skipEntries ...int) *CorruptNet {
	n := &CorruptNet{inner: inner, skip: make(map[int32]bool)}
	for _, e := range skipEntries {
		if e >= 0 {
			n.skip[int32(e)] = true
		}
	}
	return n
}

// Corrupted returns how many frames were corrupted.
func (n *CorruptNet) Corrupted() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.corrupted
}

// Listen implements transport.Network.
func (n *CorruptNet) Listen(addr string) (transport.Listener, error) { return n.inner.Listen(addr) }

// Dial implements transport.Network.
func (n *CorruptNet) Dial(addr string) (transport.Conn, error) {
	c, err := n.inner.Dial(addr)
	if err != nil {
		return nil, err
	}
	return &corruptConn{Conn: c, net: n}, nil
}

type corruptConn struct {
	transport.Conn
	net *CorruptNet
}

func (c *corruptConn) SendFrame(frame []byte) error {
	if mutated, ok := c.mangle(frame); ok {
		frame = mutated
	}
	return c.Conn.SendFrame(frame)
}

// mangle flips one bit in the first non-skipped update payload of an
// unlock request.
func (c *corruptConn) mangle(frame []byte) ([]byte, bool) {
	m, err := wire.Decode(frame)
	if err != nil || m.Kind != wire.KindUnlockReq {
		return nil, false
	}
	hit := false
	for i := range m.Updates {
		if c.net.skip[m.Updates[i].Entry] {
			continue
		}
		if len(m.Updates[i].Data) > 0 {
			m.Updates[i].Data[0] ^= 0x01
			hit = true
			break
		}
	}
	if !hit {
		return nil, false
	}
	out, err := wire.Encode(m)
	if err != nil {
		return nil, false
	}
	c.net.mu.Lock()
	c.net.corrupted++
	c.net.mu.Unlock()
	return out, true
}
