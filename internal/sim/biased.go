package sim

import (
	"math/rand"
	"strings"
	"sync"
	"sync/atomic"

	"hetdsm/internal/transport"
	"hetdsm/internal/wire"
)

// BiasedNet drops frames whose wire kind is in a target set, severing the
// carrying connection exactly as a mid-write link death would. Uniform
// random drops (transport.Flaky) mostly hit the high-volume request kinds;
// biasing the drop onto grants, barrier releases and acks aims the fault at
// the narrow request/ack windows where a lost reply — not a lost request —
// must be survived by sequence-numbered replay. The kind is read straight
// from the frame's leading byte, so the hot path never decodes.
type BiasedNet struct {
	inner  transport.Network
	target [256]bool
	p      float64
	names  string

	rmu   sync.Mutex
	rng   *rand.Rand
	drops atomic.Int64
}

// NewBiasedNet wraps inner so each frame of a targeted kind is dropped
// (with its connection) with probability p, deterministically from seed.
func NewBiasedNet(inner transport.Network, kinds []wire.Kind, p float64, seed int64) *BiasedNet {
	n := &BiasedNet{inner: inner, p: p, rng: rand.New(rand.NewSource(seed))}
	names := make([]string, 0, len(kinds))
	for _, k := range kinds {
		n.target[byte(k)] = true
		names = append(names, k.String())
	}
	n.names = strings.Join(names, ",")
	return n
}

// Targets describes the targeted kind set for fault logs.
func (n *BiasedNet) Targets() string { return n.names }

// Drops returns how many frames were dropped.
func (n *BiasedNet) Drops() int64 { return n.drops.Load() }

// Listen implements transport.Network; accepted connections drop too, so
// home-originated kinds (grants, releases, acks) are reachable.
func (n *BiasedNet) Listen(addr string) (transport.Listener, error) {
	l, err := n.inner.Listen(addr)
	if err != nil {
		return nil, err
	}
	return &biasedListener{l: l, net: n}, nil
}

// Dial implements transport.Network.
func (n *BiasedNet) Dial(addr string) (transport.Conn, error) {
	c, err := n.inner.Dial(addr)
	if err != nil {
		return nil, err
	}
	return &biasedConn{c: c, net: n}, nil
}

type biasedListener struct {
	l   transport.Listener
	net *BiasedNet
}

func (l *biasedListener) Accept() (transport.Conn, error) {
	c, err := l.l.Accept()
	if err != nil {
		return nil, err
	}
	return &biasedConn{c: c, net: l.net}, nil
}

func (l *biasedListener) Close() error { return l.l.Close() }
func (l *biasedListener) Addr() string { return l.l.Addr() }

type biasedConn struct {
	c   transport.Conn
	net *BiasedNet
}

func (c *biasedConn) SendFrame(frame []byte) error {
	n := c.net
	if len(frame) > 0 && n.target[frame[0]] {
		n.rmu.Lock()
		doomed := n.rng.Float64() < n.p
		n.rmu.Unlock()
		if doomed {
			n.drops.Add(1)
			c.c.Close()
			return transport.ErrClosed
		}
	}
	return c.c.SendFrame(frame)
}

func (c *biasedConn) RecvFrame() ([]byte, error) { return c.c.RecvFrame() }
func (c *biasedConn) Close() error               { return c.c.Close() }

// lostAckKinds picks the seed's target set. Each set isolates one class of
// home-to-thread reply so a sweep covers every ack race.
func lostAckKinds(seed int64) []wire.Kind {
	sets := [][]wire.Kind{
		{wire.KindLockGrant},
		{wire.KindBarrierRelease},
		{wire.KindUnlockAck, wire.KindJoinAck, wire.KindFlushAck},
		{wire.KindHelloAck},
		{wire.KindLockGrant, wire.KindBarrierRelease},
	}
	i := int(seed % int64(len(sets)))
	if i < 0 {
		i += len(sets)
	}
	return sets[i]
}
