package sim

import (
	"bytes"
	"strings"
	"testing"

	"hetdsm/internal/telemetry"
)

// TestTracedReleaseCrossesThreeNodes is the tentpole acceptance: a seeded
// sharded run with forced migrations must yield at least one release whose
// causal chain is stitched across three or more nodes (sender thread,
// shard home, WAL) with correct parent/child span ids at every hop — in
// particular the cross-node edge where the home's unpack span names the
// sender's ship span as its parent without the id ever crossing the wire.
func TestTracedReleaseCrossesThreeNodes(t *testing.T) {
	plan := NewPlan(5, ProfileMigrate, "LL")
	plan.Shards = 2
	res := Run(plan)
	if !res.OK() {
		t.Fatalf("migrate run failed:\n%s", res.Report())
	}
	if len(res.Spans) == 0 {
		t.Fatal("run recorded no spans")
	}
	rels := telemetry.MergeTimeline(res.Spans)
	var wide *telemetry.Release
	for i := range rels {
		if rels[i].TraceID != 0 && len(rels[i].Nodes()) >= 3 {
			wide = &rels[i]
			break
		}
	}
	if wide == nil {
		t.Fatalf("no release spans 3 nodes; %d releases, widest %d nodes",
			len(rels), widest(rels))
	}
	// The cross-node edge: the home's unpack span must parent to the id
	// the sender derived for its own ship span.
	ship, ok := wide.Stage(telemetry.StageShip)
	if !ok {
		t.Fatalf("3-node release missing ship span: %+v", wide.Spans)
	}
	unpack, ok := wide.Stage(telemetry.StageUnpack)
	if !ok {
		t.Fatalf("3-node release missing unpack span: %+v", wide.Spans)
	}
	if unpack.Parent != ship.SpanID {
		t.Fatalf("unpack parent %x != ship span id %x", unpack.Parent, ship.SpanID)
	}
	// Every non-root edge must resolve inside the release — no span may
	// name a parent belonging to a different trace.
	ids := make(map[uint64]bool, len(wide.Spans))
	for _, s := range wide.Spans {
		ids[s.SpanID] = true
	}
	for _, s := range wide.Spans {
		if s.Parent != 0 && !ids[s.Parent] {
			t.Fatalf("span %s@%s has dangling parent %x", s.Stage, s.Node, s.Parent)
		}
	}
	// And the critical path must traverse at least sender → home.
	cp := wide.CriticalPath()
	if len(cp) < 3 {
		t.Fatalf("critical path too short: %d spans", len(cp))
	}
}

// TestFlightDumpCoversShardRestart pins the black-box acceptance: the
// migrate profile's mid-run shard kill must leave a restart event (with
// the bumped epoch) in the run's flight dump, alongside the steady-state
// grants and migrations that preceded it.
func TestFlightDumpCoversShardRestart(t *testing.T) {
	plan := NewPlan(5, ProfileMigrate, "LL")
	plan.Shards = 2
	res := Run(plan)
	if !res.OK() {
		t.Fatalf("migrate run failed:\n%s", res.Report())
	}
	if res.FlightDump == "" {
		t.Fatal("run produced no flight dump")
	}
	for _, want := range []string{"restart", "migrate", "grant"} {
		if !strings.Contains(res.FlightDump, want) {
			t.Fatalf("flight dump missing %q events:\n%s", want, res.FlightDump)
		}
	}
}

// TestFlightDumpOnWALRecovery runs the single-home crash-restart profile:
// the WAL reopen must note the restart with its replay count, proving the
// black box survives the incarnation change it documents.
func TestFlightDumpOnWALRecovery(t *testing.T) {
	res := Run(NewPlan(3, ProfileHomeCrashRestart, "LL"))
	if !res.OK() {
		t.Fatalf("homecrash run failed:\n%s", res.Report())
	}
	if !strings.Contains(res.FlightDump, "restart") {
		t.Fatalf("flight dump missing the WAL restart event:\n%s", res.FlightDump)
	}
}

// TestTracingPreservesDeterminism re-runs a traced plan and requires the
// canonical trace to stay byte-identical: span recording must never leak
// into the event stream the replay guarantee is built on.
func TestTracingPreservesDeterminism(t *testing.T) {
	plan := NewPlan(11, ProfileMigrate, "SL")
	plan.Shards = 2
	a := Run(plan)
	if !a.OK() {
		t.Fatalf("first run:\n%s", a.Report())
	}
	b := Run(plan)
	if !b.OK() {
		t.Fatalf("second run:\n%s", b.Report())
	}
	if !bytes.Equal(a.Canonical, b.Canonical) {
		t.Fatal("tracing broke canonical-trace determinism")
	}
}

func widest(rels []telemetry.Release) int {
	w := 0
	for i := range rels {
		if n := len(rels[i].Nodes()); n > w {
			w = n
		}
	}
	return w
}
