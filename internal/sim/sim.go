package sim

import (
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"strings"
	"time"

	"hetdsm/internal/check"
	"hetdsm/internal/dsd"
	"hetdsm/internal/flight"
	"hetdsm/internal/ha"
	"hetdsm/internal/platform"
	"hetdsm/internal/telemetry"
	"hetdsm/internal/trace"
	"hetdsm/internal/transport"
	"hetdsm/internal/vclock"
	"hetdsm/internal/wal"
)

// The history recorder must satisfy the dsd hook interface.
var _ dsd.Recorder = (*check.History)(nil)

// Result is the outcome of one simulated run.
type Result struct {
	// Plan is the plan that ran (defaults filled in).
	Plan Plan
	// Violations holds every release-consistency violation the checker
	// found; empty on a correct run.
	Violations []check.Violation
	// Canonical is the deterministic per-rank event trace; byte-identical
	// across runs of the same plan.
	Canonical []byte
	// Events is the recorded history length.
	Events int
	// FaultLog describes each injected fault with its logical timestamp.
	FaultLog []string
	// Reconnects counts thread redials across all ranks.
	Reconnects uint64
	// Corrupted counts negative-mode frame corruptions.
	Corrupted int
	// Spans holds every release-pipeline span the run recorded, already
	// trace-context stitched; dsmsim can export them for dsmtrace.
	Spans []telemetry.Span
	// FlightDump is the formatted black-box flight-recorder dump of the
	// run's protocol events; attached to every violation artifact.
	FlightDump string
	// Err reports an infrastructure failure (the run could not complete);
	// distinct from a validation failure.
	Err error
}

// OK reports whether the run completed and validated clean.
func (r Result) OK() bool { return r.Err == nil && len(r.Violations) == 0 }

// Report renders the result for humans: the reproducer line, the fault
// schedule, and each violation with its minimized trace.
func (r Result) Report() string {
	var b strings.Builder
	fmt.Fprintf(&b, "plan: %s (%d events", r.Plan, r.Events)
	if r.Reconnects > 0 {
		fmt.Fprintf(&b, ", %d reconnects", r.Reconnects)
	}
	if r.Corrupted > 0 {
		fmt.Fprintf(&b, ", %d corrupted frames", r.Corrupted)
	}
	b.WriteString(")\n")
	for _, f := range r.FaultLog {
		fmt.Fprintf(&b, "fault: %s\n", f)
	}
	if r.Err != nil {
		fmt.Fprintf(&b, "run error: %v\n", r.Err)
	}
	for _, v := range r.Violations {
		b.WriteString(v.String())
	}
	if r.OK() {
		b.WriteString("ok: 0 violations\n")
	} else if r.FlightDump != "" {
		b.WriteString(r.FlightDump)
	}
	return b.String()
}

// simBackoff is the fast reconnect policy simulation threads dial with:
// sub-millisecond retries so partition heals and failover promotions are
// picked up promptly, seeded per rank for reproducible jitter.
func simBackoff(seed int64, rank int32) transport.Backoff {
	return transport.Backoff{
		Base:     200 * time.Microsecond,
		Max:      5 * time.Millisecond,
		Factor:   2,
		Jitter:   0.3,
		Attempts: 400,
		Seed:     seed*1000 + int64(rank) + 1,
	}
}

// stallProfile is the slow-peer schedule: seeded per-frame latency plus a
// network-wide full-stall window every 31st frame. Pure timing — the RC
// checker must see a canonical trace byte-identical to the clean run.
func stallProfile(seed int64) transport.DelayProfile {
	return transport.DelayProfile{
		Latency:    200 * time.Microsecond,
		StallEvery: 31,
		StallFor:   2 * time.Millisecond,
		Seed:       seed,
	}
}

// dribbleProfile is the slow-NIC schedule: every frame's latency paid in
// four separate dribbled sleeps, modeling trickled writes.
func dribbleProfile(seed int64) transport.DelayProfile {
	return transport.DelayProfile{
		Latency:       300 * time.Microsecond,
		DribbleChunks: 4,
		Seed:          seed,
	}
}

// Run executes one plan and validates the recorded history. It never
// panics on protocol misbehavior — everything lands in Result.
func Run(plan Plan) Result {
	plan = plan.withDefaults()
	res := Result{Plan: plan}
	if err := plan.Validate(); err != nil {
		res.Err = err
		return res
	}
	homePlat, threadPlats, err := plan.platforms()
	if err != nil {
		res.Err = err
		return res
	}
	gm, err := MixByName(plan.Grammar)
	if err != nil {
		res.Err = err
		return res
	}
	lay := layoutFor(plan, gm)
	if plan.Shards > 1 {
		return runShardedSim(plan, gm, lay, homePlat, threadPlats)
	}

	rng := rand.New(rand.NewSource(plan.Seed))
	clock := vclock.NewVirtual(time.Time{})
	hist := check.NewHistory()
	tlog := trace.NewLog(1 << 16)
	gthv := lay.gthv()

	opts := dsd.DefaultOptions()
	// Whole-array widening off: the workload's blind rank-owned slice
	// writes must never ship a stale copy of a neighbor's cells.
	opts.WholeArrayThreshold = 0
	// Sticky locks: all fault profiles reconnect rather than fail-stop.
	opts.StickyLocks = true
	opts.Trace = tlog
	spans := telemetry.NewSpanLog(1 << 16)
	fr := flight.New(4096)
	opts.Spans = spans
	opts.Flight = fr

	// Fault-injection network stack.
	base := transport.NewInproc()
	var nw transport.Network = base
	var snet *Net
	var corrupt *CorruptNet
	var biased *BiasedNet
	var delayed *transport.Delayed
	switch {
	case plan.Negative:
		// Never corrupt the pointer entry: a mangled pointer fails
		// home-side translation — an infrastructure error, not the silent
		// value divergence the oracle test must prove the checker catches.
		corrupt = NewCorruptNet(base, lay.ptrEntry())
		nw = corrupt
	case plan.Profile == ProfileFlaky:
		nw = transport.NewFlakyRand(base, 0.01, plan.Seed)
	case plan.Profile == ProfilePartition:
		snet = NewNet(base)
		nw = snet
	case plan.Profile == ProfileLostAck:
		biased = NewBiasedNet(base, lostAckKinds(plan.Seed), 0.25, plan.Seed)
		nw = biased
		res.FaultLog = append(res.FaultLog,
			fmt.Sprintf("lostack: dropping {%s} frames with p=0.25", biased.Targets()))
	case plan.Profile == ProfileStall:
		delayed = transport.NewDelayed(base, stallProfile(plan.Seed))
		nw = delayed
		res.FaultLog = append(res.FaultLog,
			"stall: seeded per-frame latency with periodic full-stall windows")
	case plan.Profile == ProfileDribble:
		delayed = transport.NewDelayed(base, dribbleProfile(plan.Seed))
		nw = delayed
		res.FaultLog = append(res.FaultLog,
			"dribble: every frame delivered in dribbled chunks with per-frame latency")
	}

	// Home-side deployment.
	addrs := []string{"home"}
	var primary *dsd.Home
	// curLog is the live write-ahead log under homecrash-restart; faultAt
	// swaps it for the reopened log when the home is restarted.
	var curLog *wal.Log
	var walDir string
	var standby *ha.Standby
	var repl *ha.Replicator
	// haClock drives the standby's failure detector. It advances only
	// after the scheduled kill, so the detector cannot falsely suspect a
	// live primary no matter how starved the host CPU is — early
	// promotion would freeze the backup (it rejects replication after
	// Promote) and silently lose every release between promotion and the
	// kill.
	var haClock *vclock.Virtual
	if plan.Profile == ProfileFailover {
		addrs = []string{"primary", "standby"}
		primary, err = dsd.NewHome(gthv, homePlat, plan.Threads, opts)
		if err != nil {
			res.Err = err
			return res
		}
		pl, err := nw.Listen("primary")
		if err != nil {
			res.Err = err
			return res
		}
		go primary.Serve(pl)
		backup := ha.NewBackup(gthv)
		counters := &ha.Counters{}
		haClock = vclock.NewVirtual(time.Time{})
		standby, err = ha.NewStandby(nw, backup, ha.StandbyConfig{
			PrimaryAddr:       "primary",
			ReplicaAddr:       "replica",
			ServeAddr:         "standby",
			Platform:          homePlat,
			Opts:              opts,
			HeartbeatInterval: 2 * time.Millisecond,
			FailoverTimeout:   12 * time.Millisecond,
			Clock:             haClock,
		})
		if err != nil {
			res.Err = err
			return res
		}
		standby.Counters = counters
		repConn, err := nw.Dial("replica")
		if err != nil {
			res.Err = err
			return res
		}
		repl = ha.NewReplicator(repConn, counters)
		repl.Spans = spans
		repl.Node = "replicator"
		if err := primary.StartReplication(repl); err != nil {
			res.Err = err
			return res
		}
		deadline := time.Now().Add(10 * time.Second)
		for !backup.Ready() {
			if time.Now().After(deadline) {
				res.Err = fmt.Errorf("sim: replication bootstrap never arrived")
				return res
			}
			runtime.Gosched()
		}
		standby.Start()
		defer standby.Stop()
	} else {
		var wlog *wal.Log
		homeOpts := opts
		if plan.Profile == ProfileHomeCrashRestart {
			walDir, err = os.MkdirTemp("", "dsmsim-wal-")
			if err != nil {
				res.Err = err
				return res
			}
			defer os.RemoveAll(walDir)
			wlog, err = wal.Open(wal.Options{Dir: walDir, GThV: gthv, Spans: spans, Node: "wal", Flight: fr})
			if err != nil {
				res.Err = err
				return res
			}
			homeOpts.Epoch = wlog.Epoch()
		}
		primary, err = dsd.NewHome(gthv, homePlat, plan.Threads, homeOpts)
		if err != nil {
			res.Err = err
			return res
		}
		l, err := nw.Listen("home")
		if err != nil {
			res.Err = err
			return res
		}
		go primary.Serve(l)
		if wlog != nil {
			if err := primary.StartReplication(wlog); err != nil {
				res.Err = err
				return res
			}
			curLog = wlog
			defer func() { curLog.Close() }()
		}
	}

	// Worker threads, one goroutine each, recording into the history.
	workers := make([]*worker, plan.Threads)
	for rank := 0; rank < plan.Threads; rank++ {
		topts := opts
		topts.Recorder = hist
		th, err := dsd.DialHABackoff(nw, addrs, threadPlats[rank], int32(rank), gthv, topts, simBackoff(plan.Seed, int32(rank)))
		if err != nil {
			res.Err = fmt.Errorf("sim: rank %d dial: %w", rank, err)
			return res
		}
		workers[rank] = newWorker(rank, th)
	}

	// Fault schedule, stamped on the logical clock (one tick per step).
	var successor *dsd.Home
	epoch := clock.Now()
	logicalNow := func() time.Duration { return clock.Now().Sub(epoch) }
	faultAt := func(step int) error {
		defer clock.Advance(time.Millisecond)
		switch plan.Profile {
		case ProfilePartition:
			if step == plan.Steps/3 || step == (2*plan.Steps)/3 {
				const heal = 2 * time.Millisecond
				snet.Cut("home", heal)
				res.FaultLog = append(res.FaultLog,
					fmt.Sprintf("step %d t=%s: partition home for %s", step, logicalNow(), heal))
			}
		case ProfileFailover:
			if step == plan.Steps/2 {
				primary.Kill()
				repl.Close()
				// Only now let detector time pass: advance the virtual
				// clock until suspicion promotes the standby.
				go func() {
					for {
						select {
						case <-standby.Promoted():
							return
						default:
							haClock.Advance(2 * time.Millisecond)
							runtime.Gosched()
						}
					}
				}()
				res.FaultLog = append(res.FaultLog,
					fmt.Sprintf("step %d t=%s: kill primary home", step, logicalNow()))
			}
		case ProfileHomeCrashRestart:
			if step == plan.Steps/2 {
				// Crash: no quiescence, no goodbye — and Abandon drops any
				// record not yet fsynced, exactly what kill -9 loses.
				primary.Kill()
				curLog.Abandon()
				wlog2, err := wal.Open(wal.Options{Dir: walDir, GThV: gthv, Spans: spans, Node: "wal", Flight: fr})
				if err != nil {
					return fmt.Errorf("sim: wal reopen: %w", err)
				}
				succ, err := wlog2.RecoverHome(homePlat, opts)
				if err != nil {
					return fmt.Errorf("sim: wal recover: %w", err)
				}
				l2, err := nw.Listen("home") // Kill freed the address
				if err != nil {
					return fmt.Errorf("sim: restart listen: %w", err)
				}
				go succ.Serve(l2)
				if err := succ.StartReplication(wlog2); err != nil {
					return fmt.Errorf("sim: restart replication: %w", err)
				}
				curLog = wlog2
				successor = succ
				res.FaultLog = append(res.FaultLog,
					fmt.Sprintf("step %d t=%s: kill home, restart from WAL at epoch %d (%d records replayed)",
						step, logicalNow(), wlog2.Epoch(), wlog2.Replayed()))
			}
		case ProfileHandoff:
			if step == plan.Steps/2 {
				state, err := primary.Detach(10 * time.Second)
				if err != nil {
					return fmt.Errorf("sim: detach: %w", err)
				}
				succ, err := dsd.NewHomeFromHandoff(gthv, homePlat, plan.Threads, opts, state)
				if err != nil {
					return fmt.Errorf("sim: handoff: %w", err)
				}
				l2, err := nw.Listen("home2")
				if err != nil {
					return fmt.Errorf("sim: handoff listen: %w", err)
				}
				go succ.Serve(l2)
				primary.RedirectTo("home2")
				successor = succ
				res.FaultLog = append(res.FaultLog,
					fmt.Sprintf("step %d t=%s: home handoff to home2", step, logicalNow()))
			}
		}
		return nil
	}

	prog := compileProgram(plan, gm, lay, rng)
	d := &driver{workers: workers, faultAt: faultAt}
	runErr := d.run(prog)
	for _, w := range workers {
		w.shutdown()
	}
	if runErr != nil {
		res.Err = runErr
		return res
	}

	// Resolve the home that holds the authoritative final state.
	finalHome := primary
	if plan.Profile == ProfileFailover {
		select {
		case <-standby.Promoted():
		case <-time.After(30 * time.Second):
			res.Err = fmt.Errorf("sim: standby never promoted after kill")
			return res
		}
		promoted, err := standby.Home()
		if err != nil {
			res.Err = fmt.Errorf("sim: failover: %w", err)
			return res
		}
		finalHome = promoted
	} else if successor != nil {
		finalHome = successor
	}
	finalHome.Wait() // every rank joined
	defer finalHome.Close()

	for _, w := range workers {
		res.Reconnects += w.th.Reconnects()
	}
	if corrupt != nil {
		res.Corrupted = corrupt.Corrupted()
	}
	if biased != nil {
		res.FaultLog = append(res.FaultLog, fmt.Sprintf("lostack: dropped %d frames", biased.Drops()))
	}
	if delayed != nil {
		res.FaultLog = append(res.FaultLog,
			fmt.Sprintf("%s: delayed %d frames, %d full stalls", plan.Profile, delayed.Frames(), delayed.Stalls()))
	}

	// Validation: model replay, master comparison, trace cross-check, and
	// conversion round-trips for heterogeneous mixes.
	events := hist.Events()
	res.Events = len(events)
	res.Canonical = check.Canonical(events)
	vs := check.Validate(events, plan.Threads)
	vs = append(vs, compareMaster(finalHome.Globals(), events, lay)...)
	vs = append(vs, check.CrossCheckTrace(events, tlog)...)
	vs = append(vs, roundTripViolations(events, homePlat, threadPlats)...)
	res.Violations = vs
	res.Spans = spans.Spans()
	if len(res.Violations) > 0 {
		fr.Note("checker", flight.KindViolation, -1, uint64(len(res.Violations)), 0)
		fr.Trip(fmt.Sprintf("checker: %d violations (plan %s)", len(res.Violations), plan))
	}
	res.FlightDump = fr.String()
	return res
}

// compareMaster checks the final master state (a single home's globals, or
// the sharded directory's stitched image) cell-by-cell against the model's
// committed state — every integer member of the layout, and every
// committed pointer target when the layout has pointer slots.
func compareMaster(g *dsd.Globals, events []check.Event, lay layout) []check.Violation {
	model := check.FinalState(events)
	var out []check.Violation
	for _, spec := range lay.intSpecs() {
		got, err := g.MustVar(spec.name).Ints(0, spec.n)
		if err != nil {
			out = append(out, check.Violation{Msg: fmt.Sprintf("reading master %s: %v", spec.name, err)})
			continue
		}
		for i, v := range got {
			want := model[spec.name][i] // missing cells default to 0
			if v != want {
				bad := check.Event{Rank: -1, Op: check.OpRead, Sync: -1, Var: spec.name, Index: i, Value: v}
				out = append(out, check.Violation{
					Msg:   fmt.Sprintf("master state diverged: %s[%d] = %d, model expects %d", spec.name, i, v, want),
					Event: bad,
					Trace: check.Minimize(events, lastTouch(events, spec.name, i, bad), 40),
				})
			}
		}
	}
	out = append(out, comparePtrMaster(g, events, lay)...)
	return out
}

// comparePtrMaster resolves the master's committed pointer values through
// its own index table and compares the logical targets against the model's
// committed pointer state — catching a corrupted or untranslated committed
// pointer that no chase ever observed.
func comparePtrMaster(g *dsd.Globals, events []check.Event, lay layout) []check.Violation {
	if lay.ptrSlots == 0 {
		return nil
	}
	model := check.FinalPtrState(events)
	v := g.MustVar("pt")
	var out []check.Violation
	for i := 0; i < lay.ptrSlots; i++ {
		addr, err := v.Ptr(i)
		if err != nil {
			out = append(out, check.Violation{Msg: fmt.Sprintf("reading master pt[%d]: %v", i, err)})
			continue
		}
		got := check.PtrTarget{Var: "", Index: -1}
		if name, idx, ok := g.Resolve(addr); ok {
			got = check.PtrTarget{Var: name, Index: idx}
		}
		want, ok := model["pt"][i]
		if !ok {
			want = check.PtrTarget{Var: "", Index: -1}
		}
		if got != want {
			bad := check.Event{Rank: -1, Op: check.OpPtrRead, Sync: -1, Var: "pt", Index: i,
				Target: got.Var, TargetIndex: got.Index}
			out = append(out, check.Violation{
				Msg:   fmt.Sprintf("master pointer diverged: pt[%d] -> %s, model expects %s", i, got, want),
				Event: bad,
				Trace: check.Minimize(events, lastPtrTouch(events, "pt", i, bad), 40),
			})
		}
	}
	return out
}

// lastTouch finds the last event on the cell so the minimized trace ends
// at the most recent relevant access rather than an unrelated point.
func lastTouch(events []check.Event, name string, index int, fallback check.Event) check.Event {
	for i := len(events) - 1; i >= 0; i-- {
		e := events[i]
		if (e.Op == check.OpRead || e.Op == check.OpWrite) && e.Var == name && e.Index == index {
			return e
		}
	}
	return fallback
}

// lastPtrTouch is lastTouch for pointer cells.
func lastPtrTouch(events []check.Event, name string, index int, fallback check.Event) check.Event {
	for i := len(events) - 1; i >= 0; i-- {
		e := events[i]
		if (e.Op == check.OpPtrRead || e.Op == check.OpPtrWrite) && e.Var == name && e.Index == index {
			return e
		}
	}
	return fallback
}

// roundTripViolations verifies every written value survives a conversion
// round trip between the home's ABI and each distinct thread ABI.
func roundTripViolations(events []check.Event, home *platform.Platform, threads []*platform.Platform) []check.Violation {
	vals := make([]int64, 0, 64)
	seen := make(map[int64]bool)
	for _, e := range events {
		if e.Op == check.OpWrite && !seen[e.Value] {
			seen[e.Value] = true
			vals = append(vals, e.Value)
			if len(vals) == cap(vals) {
				break
			}
		}
	}
	done := make(map[*platform.Platform]bool)
	var out []check.Violation
	for _, tp := range threads {
		if tp.SameABI(home) || done[tp] {
			continue
		}
		done[tp] = true
		if err := check.RoundTripInts(vals, platform.CInt, home, tp); err != nil {
			out = append(out, check.Violation{Msg: fmt.Sprintf("conversion round trip %s<->%s: %v", home, tp, err)})
		}
	}
	return out
}
