package sim

import (
	"encoding/json"
	"fmt"
	"os"
)

// CorpusEntry is one record of the structured regression-seed corpus
// (testdata/regression_seeds.json): a fully-specified plan that once
// exposed a real bug, plus the context a human needs to understand what it
// caught. TestRegressionSeeds replays every entry on every CI run; the
// dsmsim sweeper appends a new entry automatically whenever a sweep finds
// a violation, so every failure the fleet ever surfaces stays under test
// forever.
type CorpusEntry struct {
	// Note says what the entry caught, for humans.
	Note string `json:"note,omitempty"`
	// Seed..Negative reconstruct the plan exactly.
	Seed     int64  `json:"seed"`
	Profile  string `json:"profile"`
	Mix      string `json:"mix"`
	Grammar  string `json:"grammar,omitempty"`
	Locks    int    `json:"locks,omitempty"`
	Threads  int    `json:"threads,omitempty"`
	Steps    int    `json:"steps,omitempty"`
	Shards   int    `json:"shards,omitempty"`
	Negative bool   `json:"negative,omitempty"`
	// Trace is the minimized violation trace captured when the entry was
	// appended — context for debugging, not replayed.
	Trace []string `json:"trace,omitempty"`
}

// Plan reconstructs the entry's plan.
func (e CorpusEntry) Plan() Plan {
	p := NewPlan(e.Seed, Profile(e.Profile), e.Mix)
	if e.Threads > 0 {
		p.Threads = e.Threads
	}
	if e.Steps > 0 {
		p.Steps = e.Steps
	}
	p.Grammar = e.Grammar
	p.Locks = e.Locks
	p.Shards = e.Shards
	p.Negative = e.Negative
	return p
}

// EntryForResult builds the corpus record for a violating run: the exact
// plan plus the first violation's message and minimized trace.
func EntryForResult(res Result) CorpusEntry {
	p := res.Plan
	e := CorpusEntry{
		Seed:     p.Seed,
		Profile:  string(p.Profile),
		Mix:      p.Mix,
		Locks:    p.Locks,
		Threads:  p.Threads,
		Steps:    p.Steps,
		Negative: p.Negative,
	}
	if p.Grammar != "classic" {
		e.Grammar = p.Grammar
	}
	if p.Shards > 1 {
		e.Shards = p.Shards
	}
	if len(res.Violations) > 0 {
		v := res.Violations[0]
		e.Note = v.Msg
		const traceCap = 20
		for i, ev := range v.Trace {
			if i == traceCap {
				e.Trace = append(e.Trace, fmt.Sprintf("... %d more", len(v.Trace)-traceCap))
				break
			}
			e.Trace = append(e.Trace, ev.String())
		}
	}
	return e
}

// LoadCorpus reads a corpus file (a JSON array of entries).
func LoadCorpus(path string) ([]CorpusEntry, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var entries []CorpusEntry
	if err := json.Unmarshal(data, &entries); err != nil {
		return nil, fmt.Errorf("sim: corpus %s: %w", path, err)
	}
	return entries, nil
}

// AppendCorpus adds entry to the corpus at path (creating the file if
// absent), unless an entry with an identical plan is already present. It
// reports whether the entry was added. The file is rewritten atomically
// enough for CI use — one pretty-printed JSON array, append-only in
// spirit: existing entries are never dropped or reordered.
func AppendCorpus(path string, entry CorpusEntry) (bool, error) {
	entries, err := LoadCorpus(path)
	if err != nil && !os.IsNotExist(err) {
		return false, err
	}
	want := entry.Plan()
	for _, e := range entries {
		if e.Plan() == want {
			return false, nil
		}
	}
	entries = append(entries, entry)
	data, err := json.MarshalIndent(entries, "", "  ")
	if err != nil {
		return false, err
	}
	return true, os.WriteFile(path, append(data, '\n'), 0o644)
}
