package telemetry

import (
	"testing"
	"time"
)

// TestDisabledPathZeroAlloc pins the central promise of the package: a
// node built without -metrics-addr holds nil handles everywhere, and
// every operation on them is a no-op that allocates nothing.
func TestDisabledPathZeroAlloc(t *testing.T) {
	var (
		r *Registry
		c *Counter
		g *Gauge
		h *Histogram
		l *SpanLog
	)
	start := time.Unix(0, 0)
	allocs := testing.AllocsPerRun(1000, func() {
		c.Inc()
		c.Add(3)
		g.Set(1)
		g.Add(1)
		h.Observe(0.001)
		l.Record("n", StagePack, 1, 1, start, time.Millisecond, 64)
		l.RecordCtx("n", StageShip, 1, 1, 0xbeef, 0x77, start, time.Millisecond, 64)
		_ = c.Value()
		_ = h.Quantile(0.99)
	})
	if allocs != 0 {
		t.Errorf("disabled handles allocated %v per op set, want 0", allocs)
	}
	// Handing out handles from a nil registry is also free.
	allocs = testing.AllocsPerRun(1000, func() {
		_ = r.Counter("x", "")
		_ = r.Histogram("x", "")
	})
	if allocs != 0 {
		t.Errorf("nil registry handle creation allocated %v, want 0", allocs)
	}
}

// TestEnabledObserveLockFree guards the hot path on the enabled side:
// counter increments and histogram observations stay allocation-free.
func TestEnabledObserveLockFree(t *testing.T) {
	r := New()
	c := r.Counter("x_total", "")
	h := r.Histogram("x_seconds", "")
	allocs := testing.AllocsPerRun(1000, func() {
		c.Inc()
		h.Observe(0.002)
	})
	if allocs != 0 {
		t.Errorf("enabled Observe/Inc allocated %v per run, want 0", allocs)
	}
}
