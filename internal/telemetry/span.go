package telemetry

import (
	"encoding/json"
	"io"
	"sort"
	"sync"
	"time"
)

// The stages of one release as it moves through the DSD pipeline. The
// sender emits index, tag, pack and ship; the home emits unpack, conv
// and apply. A merged timeline for one (rank, seq) id therefore shows
// the paper's Eq. 1 components as an actual cross-node trace instead of
// an aggregate sum.
const (
	// StageIndex is the sender's diff→index-table span mapping (t_index).
	StageIndex = "index"
	// StageTag is CGT-RMR tag formation (t_tag).
	StageTag = "tag"
	// StagePack is data gathering and serialization (t_pack).
	StagePack = "pack"
	// StageShip is the request round-trip: send until the reply lands.
	StageShip = "ship"
	// StageUnpack is the home's frame decode (t_unpack).
	StageUnpack = "unpack"
	// StageConv is receiver-makes-right conversion at the home (t_conv).
	StageConv = "conv"
	// StageApply is the master-copy write plus pending-queue fan-out.
	StageApply = "apply"
)

// Span is one timed stage of one release, identified by the (rank, seq)
// pair the wire protocol already stamps on every request: Rank is the
// releasing thread and Seq its per-connection request id, so sender-side
// and home-side records of the same release carry the same id and can be
// merged across nodes.
type Span struct {
	// Rank is the releasing thread's rank.
	Rank int32 `json:"rank"`
	// Seq is the release's request sequence number on that rank.
	Seq uint64 `json:"seq"`
	// Node is the recording node ("rank-1@linux-x86", "home@...").
	Node string `json:"node"`
	// Stage is one of the Stage* constants.
	Stage string `json:"stage"`
	// Start is the stage's wall-clock start in Unix nanoseconds.
	Start int64 `json:"start_unix_ns"`
	// Dur is the stage duration in nanoseconds.
	Dur int64 `json:"dur_ns"`
	// Bytes is the payload size the stage handled, 0 when not applicable.
	Bytes int `json:"bytes,omitempty"`
}

// SpanLog is a concurrency-safe ring of span records, mirroring
// trace.Log. A nil *SpanLog is a valid disabled sink. Construct with
// NewSpanLog.
type SpanLog struct {
	mu      sync.Mutex
	buf     []Span
	next    uint64 // total spans ever recorded
	dropped uint64
}

// NewSpanLog returns a ring holding the last capacity spans.
func NewSpanLog(capacity int) *SpanLog {
	if capacity <= 0 {
		capacity = 4096
	}
	return &SpanLog{buf: make([]Span, 0, capacity)}
}

// Record adds one span; no-op on a nil receiver.
func (l *SpanLog) Record(node, stage string, rank int32, seq uint64, start time.Time, d time.Duration, bytes int) {
	if l == nil {
		return
	}
	s := Span{
		Rank:  rank,
		Seq:   seq,
		Node:  node,
		Stage: stage,
		Start: start.UnixNano(),
		Dur:   int64(d),
		Bytes: bytes,
	}
	l.mu.Lock()
	if len(l.buf) < cap(l.buf) {
		l.buf = append(l.buf, s)
	} else {
		l.buf[int(l.next)%cap(l.buf)] = s
		l.dropped++
	}
	l.next++
	l.mu.Unlock()
}

// Len returns the number of retained spans (0 on nil).
func (l *SpanLog) Len() int {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.buf)
}

// Total returns the number of spans ever recorded (0 on nil).
func (l *SpanLog) Total() uint64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.next
}

// Dropped returns how many spans the ring overwrote (0 on nil).
func (l *SpanLog) Dropped() uint64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.dropped
}

// Spans returns the retained spans in recording order (nil on nil).
func (l *SpanLog) Spans() []Span {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]Span, 0, len(l.buf))
	if len(l.buf) < cap(l.buf) {
		return append(out, l.buf...)
	}
	start := int(l.next) % cap(l.buf)
	out = append(out, l.buf[start:]...)
	return append(out, l.buf[:start]...)
}

// DumpJSON writes the retained spans as JSONL, one span per line.
func (l *SpanLog) DumpJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	for _, s := range l.Spans() {
		if err := enc.Encode(s); err != nil {
			return err
		}
	}
	return nil
}

// Release is one release's merged cross-node timeline: every recorded
// stage for a (rank, seq) id, ordered by wall-clock start.
type Release struct {
	// Rank and Seq identify the release.
	Rank int32  `json:"rank"`
	Seq  uint64 `json:"seq"`
	// Spans holds the stages in start order.
	Spans []Span `json:"spans"`
}

// Stage returns the release's first span of the named stage and whether
// one was recorded.
func (r *Release) Stage(stage string) (Span, bool) {
	for _, s := range r.Spans {
		if s.Stage == stage {
			return s, true
		}
	}
	return Span{}, false
}

// MergeTimeline groups spans from any number of logs (sender-side and
// home-side) by (rank, seq) and returns per-release timelines ordered by
// rank, then seq. Spans with Seq == 0 (no release id) are dropped.
func MergeTimeline(logs ...[]Span) []Release {
	type key struct {
		rank int32
		seq  uint64
	}
	byID := make(map[key][]Span)
	for _, spans := range logs {
		for _, s := range spans {
			if s.Seq == 0 {
				continue
			}
			k := key{s.Rank, s.Seq}
			byID[k] = append(byID[k], s)
		}
	}
	out := make([]Release, 0, len(byID))
	for k, spans := range byID {
		sort.SliceStable(spans, func(i, j int) bool { return spans[i].Start < spans[j].Start })
		out = append(out, Release{Rank: k.rank, Seq: k.seq, Spans: spans})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Rank != out[j].Rank {
			return out[i].Rank < out[j].Rank
		}
		return out[i].Seq < out[j].Seq
	})
	return out
}
