package telemetry

import (
	"bufio"
	"encoding/json"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// The stages of one release as it moves through the DSD pipeline. The
// sender emits index, tag, pack and ship; the home emits unpack, conv
// and apply; the durability and replication tails emit wal-fsync and
// replicate; the sharded directory emits forward for one-hop ownership
// corrections. A merged timeline for one trace id therefore shows the
// paper's Eq. 1 components as an actual cross-node causal DAG instead of
// an aggregate sum.
const (
	// StageIndex is the sender's diff→index-table span mapping (t_index).
	StageIndex = "index"
	// StageTag is CGT-RMR tag formation (t_tag).
	StageTag = "tag"
	// StagePack is data gathering and serialization (t_pack).
	StagePack = "pack"
	// StageShip is the request round-trip: send until the reply lands.
	StageShip = "ship"
	// StageUnpack is the home's frame decode (t_unpack).
	StageUnpack = "unpack"
	// StageConv is receiver-makes-right conversion at the home (t_conv).
	StageConv = "conv"
	// StageApply is the master-copy write plus pending-queue fan-out.
	StageApply = "apply"
	// StageForward is a sharded-directory one-hop correction: the time a
	// request spent at the wrong shard before being re-sent to the owner.
	StageForward = "forward"
	// StageWAL is the write-ahead-log group-commit fsync covering the
	// release's replication records (enqueue to durable).
	StageWAL = "wal-fsync"
	// StageReplicate is the hot-standby replication of the release's
	// records (enqueue to acknowledged by the standby).
	StageReplicate = "replicate"
)

// Span is one timed stage of one release. Legacy correlation uses the
// (rank, seq) pair the wire protocol stamps on every request; causal
// correlation uses TraceID (one per release, unique process-wide) with
// SpanID/Parent edges, so the same release can be stitched across a
// directory forward, a migration, or a shard-epoch reuse of (rank, seq).
type Span struct {
	// Rank is the releasing thread's rank.
	Rank int32 `json:"rank"`
	// Seq is the release's request sequence number on that rank.
	Seq uint64 `json:"seq"`
	// Node is the recording node ("rank-1@linux-x86", "home@...").
	Node string `json:"node"`
	// Stage is one of the Stage* constants.
	Stage string `json:"stage"`
	// Start is the stage's wall-clock start in Unix nanoseconds.
	Start int64 `json:"start_unix_ns"`
	// Dur is the stage duration in nanoseconds.
	Dur int64 `json:"dur_ns"`
	// Bytes is the payload size the stage handled, 0 when not applicable.
	Bytes int `json:"bytes,omitempty"`
	// TraceID identifies the release's causal trace; 0 on legacy spans.
	TraceID uint64 `json:"trace_id,omitempty"`
	// SpanID identifies this span within the trace; derived
	// deterministically from (TraceID, Node, Stage, Rank) so retries and
	// replays of the same stage collapse to one DAG node.
	SpanID uint64 `json:"span_id,omitempty"`
	// Parent is the SpanID of the causally preceding span (0 = root).
	Parent uint64 `json:"parent_span_id,omitempty"`
}

// End returns the span's wall-clock end in Unix nanoseconds.
func (s *Span) End() int64 { return s.Start + s.Dur }

// traceCounter feeds NewTraceID; process-wide so two shard incarnations
// can never mint the same trace id even for the same (rank, seq).
var traceCounter atomic.Uint64

// NewTraceID mints a nonzero trace id for one release by rank. IDs are
// unique within the process and well-mixed so hash-derived span ids
// spread even for adjacent releases.
func NewTraceID(rank int32) uint64 {
	n := traceCounter.Add(1)
	id := splitmix64(n<<16 ^ uint64(uint32(rank)))
	if id == 0 {
		id = 1
	}
	return id
}

// splitmix64 is the finalizer of the splitmix64 PRNG: a cheap, strong
// 64-bit mixer.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// SpanID derives the deterministic span id for a stage of a trace:
// FNV-1a over (traceID, node, stage, rank). Both ends of a wire hop can
// compute the same id without shipping it — the sender stamps
// wire.Message.ParentSpan with its ship span's id, and a retried or
// replayed stage lands on the same DAG node.
func SpanID(traceID uint64, node, stage string, rank int32) uint64 {
	if traceID == 0 {
		return 0
	}
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < 64; i += 8 {
		h = (h ^ (traceID >> i & 0xff)) * prime64
	}
	for i := 0; i < len(node); i++ {
		h = (h ^ uint64(node[i])) * prime64
	}
	for i := 0; i < len(stage); i++ {
		h = (h ^ uint64(stage[i])) * prime64
	}
	r := uint32(rank)
	for i := 0; i < 32; i += 8 {
		h = (h ^ uint64(r>>i&0xff)) * prime64
	}
	if h == 0 {
		h = 1
	}
	return h
}

// SpanLog is a concurrency-safe ring of span records, mirroring
// trace.Log. A nil *SpanLog is a valid disabled sink. Construct with
// NewSpanLog.
type SpanLog struct {
	capa    int // immutable after construction; readable without mu
	mu      sync.Mutex
	buf     []Span
	next    uint64 // total spans ever recorded
	dropped uint64
}

// NewSpanLog returns a ring holding the last capacity spans.
func NewSpanLog(capacity int) *SpanLog {
	if capacity <= 0 {
		capacity = 4096
	}
	return &SpanLog{capa: capacity, buf: make([]Span, 0, capacity)}
}

// Record adds one span without trace context; no-op on a nil receiver.
func (l *SpanLog) Record(node, stage string, rank int32, seq uint64, start time.Time, d time.Duration, bytes int) {
	l.RecordCtx(node, stage, rank, seq, 0, 0, start, d, bytes)
}

// RecordCtx adds one span carrying causal trace context; the span id is
// derived from (traceID, node, stage, rank). No-op on a nil receiver.
func (l *SpanLog) RecordCtx(node, stage string, rank int32, seq uint64, traceID, parent uint64, start time.Time, d time.Duration, bytes int) {
	if l == nil {
		return
	}
	s := Span{
		Rank:    rank,
		Seq:     seq,
		Node:    node,
		Stage:   stage,
		Start:   start.UnixNano(),
		Dur:     int64(d),
		Bytes:   bytes,
		TraceID: traceID,
		SpanID:  SpanID(traceID, node, stage, rank),
		Parent:  parent,
	}
	l.mu.Lock()
	if len(l.buf) < cap(l.buf) {
		l.buf = append(l.buf, s)
	} else {
		l.buf[int(l.next)%cap(l.buf)] = s
		l.dropped++
	}
	l.next++
	l.mu.Unlock()
}

// Len returns the number of retained spans (0 on nil).
func (l *SpanLog) Len() int {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.buf)
}

// Total returns the number of spans ever recorded (0 on nil).
func (l *SpanLog) Total() uint64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.next
}

// Dropped returns how many spans the ring overwrote (0 on nil).
func (l *SpanLog) Dropped() uint64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.dropped
}

// Spans returns the retained spans in recording order (nil on nil). The
// snapshot buffer is allocated before the lock is taken, so recorders on
// the release hot path only ever contend with two bounded memmoves, never
// with an allocation or encoding.
func (l *SpanLog) Spans() []Span {
	if l == nil {
		return nil
	}
	out := make([]Span, 0, l.capa)
	l.mu.Lock()
	if len(l.buf) < cap(l.buf) {
		out = append(out, l.buf...)
	} else {
		start := int(l.next) % cap(l.buf)
		out = append(out, l.buf[start:]...)
		out = append(out, l.buf[:start]...)
	}
	l.mu.Unlock()
	return out
}

// DumpJSON writes the retained spans as JSONL, one span per line. The
// ring is snapshotted first; encoding happens outside any lock and
// streams span-by-span through a buffered writer, so an HTTP scrape of a
// full ring neither stalls recorders nor buffers the dump in one blob.
func (l *SpanLog) DumpJSON(w io.Writer) error {
	spans := l.Spans()
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for i := range spans {
		if err := enc.Encode(&spans[i]); err != nil {
			return err
		}
	}
	return bw.Flush()
}
