package telemetry

import (
	"testing"
	"time"
)

// mkSpan builds one traced span the way the pipeline does: the span id is
// derived from (trace, node, stage, rank) and the parent is supplied by
// the caller.
func mkSpan(trace uint64, node, stage string, rank int32, seq uint64, parent uint64, start, dur int64) Span {
	return Span{
		Rank: rank, Seq: seq, Node: node, Stage: stage,
		Start: start, Dur: dur,
		TraceID: trace, SpanID: SpanID(trace, node, stage, rank), Parent: parent,
	}
}

// chainFor lays down the canonical sender→home→wal chain of one release
// for tests: index → tag → pack → ship on the sender, unpack → conv →
// apply on the home, wal-fsync on the log — each stage parented to its
// predecessor exactly as the production code stamps them.
func chainFor(trace uint64, rank int32, seq uint64, sender, home, walNode string, base int64) []Span {
	idx := SpanID(trace, sender, StageIndex, rank)
	tg := SpanID(trace, sender, StageTag, rank)
	pk := SpanID(trace, sender, StagePack, rank)
	sh := SpanID(trace, sender, StageShip, rank)
	un := SpanID(trace, home, StageUnpack, rank)
	cv := SpanID(trace, home, StageConv, rank)
	ap := SpanID(trace, home, StageApply, rank)
	return []Span{
		mkSpan(trace, sender, StageIndex, rank, seq, 0, base, 10),
		mkSpan(trace, sender, StageTag, rank, seq, idx, base+10, 5),
		mkSpan(trace, sender, StagePack, rank, seq, tg, base+15, 20),
		// Ship ends before the WAL tail: async durability outlives the reply.
		mkSpan(trace, sender, StageShip, rank, seq, pk, base+35, 100),
		mkSpan(trace, home, StageUnpack, rank, seq, sh, base+60, 8),
		mkSpan(trace, home, StageConv, rank, seq, un, base+68, 12),
		mkSpan(trace, home, StageApply, rank, seq, cv, base+80, 30),
		mkSpan(trace, walNode, StageWAL, rank, 0, ap, base+90, 120),
	}
}

// TestMergeTimelineStitchesTrace verifies the core DAG build: spans from
// three different logs (sender, home, wal) with one trace id become one
// release whose critical path walks the causal chain across all nodes.
func TestMergeTimelineStitchesTrace(t *testing.T) {
	const trace = 0xabcdef0123456789
	all := chainFor(trace, 2, 7, "rank-2", "shard1", "wal1", 1000)
	// Deliver the spans the way a scrape would: split per source.
	rels := MergeTimeline(all[:4], all[4:7], all[7:])
	if len(rels) != 1 {
		t.Fatalf("got %d releases, want 1", len(rels))
	}
	rel := rels[0]
	if rel.TraceID != trace || rel.Rank != 2 || rel.Seq != 7 {
		t.Fatalf("release identity = (%x, %d, %d), want (%x, 2, 7)", rel.TraceID, rel.Rank, rel.Seq, uint64(trace))
	}
	nodes := rel.Nodes()
	if len(nodes) != 3 || nodes[0] != "rank-2" || nodes[1] != "shard1" || nodes[2] != "wal1" {
		t.Fatalf("nodes = %v, want [rank-2 shard1 wal1]", nodes)
	}
	cp := rel.CriticalPath()
	want := []string{StageIndex, StageTag, StagePack, StageShip, StageUnpack, StageConv, StageApply, StageWAL}
	if len(cp) != len(want) {
		t.Fatalf("critical path has %d stages (%v), want %d", len(cp), stages(cp), len(want))
	}
	for i, s := range cp {
		if s.Stage != want[i] {
			t.Fatalf("critical path stage %d = %s, want %s (full: %v)", i, s.Stage, want[i], stages(cp))
		}
	}
	if got := rel.Latency(); got != 210 {
		t.Fatalf("latency = %d, want 210 (index start to wal end)", got)
	}
	// Children follows the forward edges: ship's only child is unpack.
	ship, _ := rel.Stage(StageShip)
	kids := rel.Children(ship.SpanID)
	if len(kids) != 1 || kids[0].Stage != StageUnpack {
		t.Fatalf("children of ship = %v, want [unpack]", stages(kids))
	}
}

// TestMergeTimelineMissingStages drops the tag span (a release below the
// tag-cache threshold) and the whole home side (scrape raced the home):
// the path must still resolve through the remaining parents instead of
// breaking or inventing stages.
func TestMergeTimelineMissingStages(t *testing.T) {
	const trace = 0x1111
	idx := SpanID(trace, "rank-0", StageIndex, 0)
	// No tag stage: ship parents straight to index, as the sender does for
	// tag-cache hits.
	spans := []Span{
		mkSpan(trace, "rank-0", StageIndex, 0, 3, 0, 100, 10),
		mkSpan(trace, "rank-0", StageShip, 0, 3, idx, 110, 50),
	}
	rels := MergeTimeline(spans)
	if len(rels) != 1 {
		t.Fatalf("got %d releases, want 1", len(rels))
	}
	cp := rels[0].CriticalPath()
	if len(cp) != 2 || cp[0].Stage != StageIndex || cp[1].Stage != StageShip {
		t.Fatalf("critical path = %v, want [index ship]", stages(cp))
	}
	// A dangling parent (home recorded, sender ring already wrapped) stops
	// the walk gracefully at the orphan.
	orphan := mkSpan(trace, "home", StageUnpack, 0, 3, SpanID(trace, "rank-0", StageShip, 0), 200, 5)
	rels = MergeTimeline([]Span{orphan})
	cp = rels[0].CriticalPath()
	if len(cp) != 1 || cp[0].Stage != StageUnpack {
		t.Fatalf("orphan critical path = %v, want [unpack]", stages(cp))
	}
}

// TestMergeTimelineOutOfOrder shuffles arrival order: merged spans must
// come back sorted by start time regardless of which log delivered them
// first.
func TestMergeTimelineOutOfOrder(t *testing.T) {
	const trace = 0x2222
	chain := chainFor(trace, 1, 9, "rank-1", "home", "wal", 500)
	// Deliver in reverse.
	rev := make([]Span, len(chain))
	for i, s := range chain {
		rev[len(chain)-1-i] = s
	}
	rels := MergeTimeline(rev)
	if len(rels) != 1 {
		t.Fatalf("got %d releases, want 1", len(rels))
	}
	for i := 1; i < len(rels[0].Spans); i++ {
		if rels[0].Spans[i].Start < rels[0].Spans[i-1].Start {
			t.Fatalf("spans not start-ordered: %v", stages(rels[0].Spans))
		}
	}
}

// TestMergeTimelineDuplicateRankSeqAcrossEpochs pins the reason TraceID
// grouping exists: two shard incarnations reusing (rank, seq) must remain
// two distinct releases, adjacent in the sorted output.
func TestMergeTimelineDuplicateRankSeqAcrossEpochs(t *testing.T) {
	a := chainFor(0xaaaa, 0, 4, "rank-0", "shard0", "wal0", 100)
	b := chainFor(0xbbbb, 0, 4, "rank-0", "shard0-epoch2", "wal0", 9000)
	rels := MergeTimeline(append(a, b...))
	if len(rels) != 2 {
		t.Fatalf("got %d releases, want 2 distinct for the reused (rank, seq)", len(rels))
	}
	if rels[0].Rank != rels[1].Rank || rels[0].Seq != rels[1].Seq {
		t.Fatalf("releases lost the shared wire identity: %+v / %+v", rels[0], rels[1])
	}
	if rels[0].TraceID == rels[1].TraceID {
		t.Fatal("releases merged despite distinct trace ids")
	}
	if rels[0].TraceID > rels[1].TraceID {
		t.Fatal("duplicate (rank, seq) releases not ordered by trace id")
	}
}

// TestMergeTimelineLegacySpans keeps the pre-trace behavior: spans with
// no trace id group by (rank, seq), have no DAG edges (nil critical
// path), and anonymous spans (no trace, no seq) are dropped.
func TestMergeTimelineLegacySpans(t *testing.T) {
	legacy := []Span{
		{Rank: 0, Seq: 1, Node: "rank-0", Stage: StagePack, Start: 10, Dur: 5},
		{Rank: 0, Seq: 1, Node: "home", Stage: StageApply, Start: 20, Dur: 5},
		{Rank: 0, Seq: 2, Node: "rank-0", Stage: StagePack, Start: 30, Dur: 5},
		{Node: "wal", Stage: StageWAL, Start: 40, Dur: 5}, // anonymous: dropped
	}
	rels := MergeTimeline(legacy)
	if len(rels) != 2 {
		t.Fatalf("got %d releases, want 2", len(rels))
	}
	if len(rels[0].Spans) != 2 || len(rels[1].Spans) != 1 {
		t.Fatalf("span grouping wrong: %d + %d spans", len(rels[0].Spans), len(rels[1].Spans))
	}
	if cp := rels[0].CriticalPath(); cp != nil {
		t.Fatalf("legacy release produced a critical path: %v", stages(cp))
	}
}

// TestSpanIDDeterministic pins the contract both ends of a wire hop rely
// on: the id is a pure function of (trace, node, stage, rank), nonzero
// for any real trace, and zero only for the zero trace.
func TestSpanIDDeterministic(t *testing.T) {
	a := SpanID(42, "home", StageApply, 3)
	b := SpanID(42, "home", StageApply, 3)
	if a != b || a == 0 {
		t.Fatalf("SpanID not deterministic/nonzero: %x vs %x", a, b)
	}
	if SpanID(42, "home", StageConv, 3) == a || SpanID(42, "home2", StageApply, 3) == a || SpanID(43, "home", StageApply, 3) == a {
		t.Fatal("SpanID collision across stage/node/trace variation")
	}
	if SpanID(0, "home", StageApply, 3) != 0 {
		t.Fatal("zero trace must yield zero span id")
	}
}

// TestNewTraceIDUniqueAndNonzero mints ids concurrently-adjacent releases
// would and requires no collisions in a modest sample.
func TestNewTraceIDUniqueAndNonzero(t *testing.T) {
	seen := make(map[uint64]bool)
	for i := 0; i < 10000; i++ {
		id := NewTraceID(int32(i % 7))
		if id == 0 {
			t.Fatal("zero trace id minted")
		}
		if seen[id] {
			t.Fatalf("duplicate trace id %x after %d mints", id, i)
		}
		seen[id] = true
	}
}

// TestRecordCtxStampsSpanID confirms the log derives the span id itself,
// so callers only thread the trace id and parent.
func TestRecordCtxStampsSpanID(t *testing.T) {
	l := NewSpanLog(8)
	l.RecordCtx("home", StageApply, 1, 5, 0x77, 0x12, time.Unix(0, 100), 30*time.Nanosecond, 64)
	spans := l.Spans()
	if len(spans) != 1 {
		t.Fatalf("got %d spans", len(spans))
	}
	if want := SpanID(0x77, "home", StageApply, 1); spans[0].SpanID != want {
		t.Fatalf("span id = %x, want %x", spans[0].SpanID, want)
	}
	if spans[0].Parent != 0x12 || spans[0].TraceID != 0x77 {
		t.Fatalf("trace context not stored: %+v", spans[0])
	}
}

func stages(spans []Span) []string {
	out := make([]string, len(spans))
	for i, s := range spans {
		out[i] = s.Stage
	}
	return out
}
