package telemetry

import "sort"

// Release is one release's merged cross-node timeline: every recorded
// stage of one causal trace, ordered by wall-clock start. Spans carrying
// a TraceID are grouped by it (so two shard incarnations reusing a
// (rank, seq) pair stay distinct releases); legacy spans without one fall
// back to (rank, seq) grouping.
type Release struct {
	// TraceID is the causal trace id; 0 for legacy (rank, seq) groups.
	TraceID uint64 `json:"trace_id,omitempty"`
	// Rank and Seq identify the release on the wire.
	Rank int32  `json:"rank"`
	Seq  uint64 `json:"seq"`
	// Spans holds the stages in start order.
	Spans []Span `json:"spans"`
}

// Stage returns the release's first span of the named stage and whether
// one was recorded.
func (r *Release) Stage(stage string) (Span, bool) {
	for _, s := range r.Spans {
		if s.Stage == stage {
			return s, true
		}
	}
	return Span{}, false
}

// Nodes returns the distinct recording nodes of the release's spans, in
// first-appearance order — the set of machines the release touched.
func (r *Release) Nodes() []string {
	seen := make(map[string]bool, 4)
	var out []string
	for _, s := range r.Spans {
		if !seen[s.Node] {
			seen[s.Node] = true
			out = append(out, s.Node)
		}
	}
	return out
}

// Children returns the spans whose Parent is id, in start order.
func (r *Release) Children(id uint64) []Span {
	var out []Span
	for _, s := range r.Spans {
		if s.Parent == id && s.Parent != 0 {
			out = append(out, s)
		}
	}
	return out
}

// CriticalPath walks the span DAG from the latest-finishing span back
// along Parent edges to a root and returns the chain in causal order —
// the sequence of stages that bound the release's end-to-end latency.
// Returns nil when no span carries an id (legacy spans have no edges).
func (r *Release) CriticalPath() []Span {
	byID := make(map[uint64]Span, len(r.Spans))
	var last Span
	found := false
	for _, s := range r.Spans {
		if s.SpanID == 0 {
			continue
		}
		// Retries and replays collapse onto one deterministic id; keep the
		// widest recording so the path reflects the attempt that mattered.
		if prev, ok := byID[s.SpanID]; !ok || s.Dur > prev.Dur {
			byID[s.SpanID] = s
		}
		if !found || s.End() > last.End() {
			last = s
			found = true
		}
	}
	if !found {
		return nil
	}
	path := []Span{last}
	seen := map[uint64]bool{last.SpanID: true}
	for cur := last; cur.Parent != 0; {
		p, ok := byID[cur.Parent]
		if !ok || seen[p.SpanID] {
			break
		}
		seen[p.SpanID] = true
		path = append(path, p)
		cur = p
	}
	for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
		path[i], path[j] = path[j], path[i]
	}
	return path
}

// Latency returns the wall-clock nanoseconds from the release's earliest
// span start to its latest span end (0 for an empty release).
func (r *Release) Latency() int64 {
	if len(r.Spans) == 0 {
		return 0
	}
	lo, hi := r.Spans[0].Start, r.Spans[0].End()
	for _, s := range r.Spans[1:] {
		if s.Start < lo {
			lo = s.Start
		}
		if s.End() > hi {
			hi = s.End()
		}
	}
	return hi - lo
}

// MergeTimeline stitches spans from any number of logs (sender-side,
// home-side, WAL, standby) into per-release DAGs. Spans with a TraceID
// group by it; spans without one group by (rank, seq) as before. Spans
// with neither (Seq == 0 and no trace) are dropped. Releases are ordered
// by rank, then seq, then trace id — so duplicate (rank, seq) pairs from
// different shard epochs appear as adjacent but distinct releases.
func MergeTimeline(logs ...[]Span) []Release {
	type key struct {
		trace uint64
		rank  int32
		seq   uint64
	}
	byID := make(map[key][]Span)
	for _, spans := range logs {
		for _, s := range spans {
			if s.TraceID == 0 && s.Seq == 0 {
				continue
			}
			k := key{trace: s.TraceID}
			if s.TraceID == 0 {
				k.rank, k.seq = s.Rank, s.Seq
			}
			byID[k] = append(byID[k], s)
		}
	}
	out := make([]Release, 0, len(byID))
	for k, spans := range byID {
		sort.SliceStable(spans, func(i, j int) bool { return spans[i].Start < spans[j].Start })
		rel := Release{TraceID: k.trace, Rank: k.rank, Seq: k.seq, Spans: spans}
		if k.trace != 0 {
			// Adopt the wire identity from the first span that has one.
			for _, s := range spans {
				if s.Seq != 0 {
					rel.Rank, rel.Seq = s.Rank, s.Seq
					break
				}
			}
		}
		out = append(out, rel)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Rank != out[j].Rank {
			return out[i].Rank < out[j].Rank
		}
		if out[i].Seq != out[j].Seq {
			return out[i].Seq < out[j].Seq
		}
		return out[i].TraceID < out[j].TraceID
	})
	return out
}
