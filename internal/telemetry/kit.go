package telemetry

import (
	"fmt"
	"os"

	"hetdsm/internal/trace"
)

// Kit bundles the per-node observability plumbing the binaries share: a
// metrics registry, a release-span ring, a protocol-event ring, the
// diagnostics HTTP server, and the on-exit JSONL dumps. A nil *Kit is
// fully disabled — every accessor returns nil and every method is a
// no-op — so callers thread k.Registry()/k.Spans()/k.TraceLog() into
// dsd.Options unconditionally.
type Kit struct {
	reg      *Registry
	spans    *SpanLog
	tlog     *trace.Log
	srv      *Server
	addr     string
	traceOut string
	spanOut  string
}

// NewKit builds the observability stack a node was asked for:
//
//   - metricsAddr != "": a registry, a span ring and a diagnostics
//     server on that address (start it with Serve).
//   - traceOut != "": a protocol-event ring whose contents Close writes
//     to the file as JSONL.
//   - spanOut != "": a span ring whose contents Close writes to the
//     file as JSONL.
//
// When every argument is empty NewKit returns nil, the disabled kit.
func NewKit(metricsAddr, traceOut, spanOut string) *Kit {
	if metricsAddr == "" && traceOut == "" && spanOut == "" {
		return nil
	}
	k := &Kit{addr: metricsAddr, traceOut: traceOut, spanOut: spanOut}
	if metricsAddr != "" {
		k.reg = New()
		k.spans = NewSpanLog(0)
		// The diagnostics server advertises /trace, so the ring backing
		// it must exist even when no on-exit dump was requested.
		k.tlog = trace.NewLog(0)
	}
	if spanOut != "" && k.spans == nil {
		k.spans = NewSpanLog(0)
	}
	if traceOut != "" && k.tlog == nil {
		k.tlog = trace.NewLog(0)
	}
	return k
}

// Registry returns the metrics registry (nil when disabled).
func (k *Kit) Registry() *Registry {
	if k == nil {
		return nil
	}
	return k.reg
}

// Spans returns the release-span ring (nil when disabled).
func (k *Kit) Spans() *SpanLog {
	if k == nil {
		return nil
	}
	return k.spans
}

// TraceLog returns the protocol-event ring (nil when none was asked
// for).
func (k *Kit) TraceLog() *trace.Log {
	if k == nil {
		return nil
	}
	return k.tlog
}

// SetTraceLog substitutes an externally-created event ring (dsmrun's
// -trace flag builds its own), so /trace and -trace-out see it.
func (k *Kit) SetTraceLog(l *trace.Log) {
	if k == nil || l == nil {
		return
	}
	k.tlog = l
}

// Serve starts the diagnostics HTTP server when the kit was built with
// a metrics address. stats and heat back the /stats and /heat routes
// and may be nil.
func (k *Kit) Serve(stats func() map[string]any, heat func() any) error {
	if k == nil || k.addr == "" {
		return nil
	}
	srv, err := ListenAndServe(k.addr, ServerConfig{
		Registry: k.reg,
		Stats:    stats,
		Trace:    k.tlog,
		Spans:    k.spans,
		Heat:     heat,
	})
	if err != nil {
		return err
	}
	k.srv = srv
	fmt.Fprintf(os.Stderr, "telemetry: diagnostics on http://%s/ (/metrics /stats /trace /spans /heat /debug/pprof)\n", srv.Addr())
	return nil
}

// Close writes the requested JSONL dumps and stops the server. The
// first error wins, but every step still runs.
func (k *Kit) Close() error {
	if k == nil {
		return nil
	}
	var first error
	dump := func(path string, write func(f *os.File) error) {
		if path == "" {
			return
		}
		f, err := os.Create(path)
		if err == nil {
			err = write(f)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil && first == nil {
			first = err
		}
	}
	dump(k.traceOut, func(f *os.File) error { return k.tlog.DumpJSON(f) })
	dump(k.spanOut, func(f *os.File) error { return k.spans.DumpJSON(f) })
	if err := k.srv.Close(); err != nil && first == nil {
		first = err
	}
	return first
}
