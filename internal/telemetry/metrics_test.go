package telemetry

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Errorf("Value = %d, want 5", got)
	}
}

func TestGauge(t *testing.T) {
	var g Gauge
	g.Set(2.5)
	g.Add(-1)
	if got := g.Value(); got != 1.5 {
		t.Errorf("Value = %v, want 1.5", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	cases := []struct {
		v    float64
		want int
	}{
		{0, 0},
		{-3, 0},
		{math.NaN(), 0},
		{math.Ldexp(1, -100), 0},            // below the range: clamp low
		{1, histOffset},                     // 2^0
		{1.5, histOffset},                   // still in [1, 2)
		{2, histOffset + 1},                 // 2^1
		{0.5, histOffset - 1},               // 2^-1
		{math.Ldexp(1, 100), histBuckets - 1}, // above the range: clamp high
	}
	for _, c := range cases {
		if got := histBucket(c.v); got != c.want {
			t.Errorf("histBucket(%v) = %d, want %d", c.v, got, c.want)
		}
	}
	// Every value must land strictly below its bucket's upper bound and
	// (for in-range values) at or above its lower bound.
	for _, v := range []float64{1e-9, 2.5e-6, 0.001, 0.7, 1, 3, 1024, 1e9} {
		i := histBucket(v)
		if v >= histUpper(i) {
			t.Errorf("v=%v >= upper bound %v of its bucket %d", v, histUpper(i), i)
		}
		if v < histLower(i) {
			t.Errorf("v=%v < lower bound %v of its bucket %d", v, histLower(i), i)
		}
	}
}

func TestHistogramQuantile(t *testing.T) {
	var h Histogram
	if got := h.Quantile(0.5); got != 0 {
		t.Errorf("empty histogram p50 = %v, want 0", got)
	}
	// 100 observations of 1ms and 1 of 1s: p50 must sit in the 1ms
	// bucket, p99+ near the outlier decade.
	for i := 0; i < 100; i++ {
		h.Observe(0.001)
	}
	h.Observe(1.0)

	if h.Count() != 101 {
		t.Fatalf("Count = %d, want 101", h.Count())
	}
	if got, want := h.Sum(), 100*0.001+1.0; math.Abs(got-want) > 1e-9 {
		t.Errorf("Sum = %v, want %v", got, want)
	}
	p50 := h.Quantile(0.5)
	if p50 < histLower(histBucket(0.001)) || p50 >= histUpper(histBucket(0.001)) {
		t.Errorf("p50 = %v, want within the 1ms bucket [%v, %v)",
			p50, histLower(histBucket(0.001)), histUpper(histBucket(0.001)))
	}
	p999 := h.Quantile(0.999)
	if p999 < histLower(histBucket(1.0)) {
		t.Errorf("p99.9 = %v, should reach the 1s outlier bucket (lower %v)",
			p999, histLower(histBucket(1.0)))
	}
	// Quantiles are monotone in q.
	prev := 0.0
	for _, q := range []float64{0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1} {
		v := h.Quantile(q)
		if v < prev {
			t.Errorf("Quantile(%v) = %v < Quantile of smaller q %v", q, v, prev)
		}
		prev = v
	}
}

func TestHistogramConcurrent(t *testing.T) {
	var h Histogram
	const (
		workers = 8
		perW    = 1000
	)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < perW; j++ {
				h.Observe(0.5)
			}
		}()
	}
	wg.Wait()
	if h.Count() != workers*perW {
		t.Errorf("Count = %d, want %d", h.Count(), workers*perW)
	}
	if got, want := h.Sum(), float64(workers*perW)*0.5; math.Abs(got-want) > 1e-6 {
		t.Errorf("Sum = %v, want %v", got, want)
	}
}

func TestRegistryReuse(t *testing.T) {
	r := New()
	c1 := r.Counter("requests_total", "requests")
	c2 := r.Counter("requests_total", "requests")
	if c1 != c2 {
		t.Error("same name returned distinct counters")
	}
	h1 := r.Histogram("latency_seconds", "latency")
	h2 := r.Histogram("latency_seconds", "latency")
	if h1 != h2 {
		t.Error("same name returned distinct histograms")
	}
}

func TestWritePrometheus(t *testing.T) {
	r := New()
	r.Counter("dsm_locks_total", "lock acquisitions").Add(3)
	r.Gauge("dsm_threads", "registered threads").Set(4)
	r.GaugeFunc("dsm_ha_replication_lag_records", "lag", func() float64 { return 2 })
	h := r.Histogram("dsm_lock_acquire_seconds", "lock acquire latency")
	for i := 0; i < 10; i++ {
		h.Observe(0.002)
	}

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE dsm_locks_total counter",
		"dsm_locks_total 3",
		"# TYPE dsm_threads gauge",
		"dsm_threads 4",
		"dsm_ha_replication_lag_records 2",
		"# TYPE dsm_lock_acquire_seconds histogram",
		`dsm_lock_acquire_seconds_bucket{le="+Inf"} 10`,
		"dsm_lock_acquire_seconds_count 10",
		"dsm_lock_acquire_seconds_sum 0.02",
		"dsm_lock_acquire_seconds_p50",
		"dsm_lock_acquire_seconds_p95",
		"dsm_lock_acquire_seconds_p99",
		"# HELP dsm_locks_total lock acquisitions",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// There must be at least one finite bucket line before +Inf.
	if !strings.Contains(out, `dsm_lock_acquire_seconds_bucket{le="0.00390625"} 10`) {
		t.Errorf("missing finite bucket for the 2ms observations:\n%s", out)
	}
}

func TestWritePrometheusNilRegistry(t *testing.T) {
	var r *Registry
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if sb.Len() != 0 {
		t.Errorf("nil registry wrote %q", sb.String())
	}
}

func TestNilHandles(t *testing.T) {
	var r *Registry
	c := r.Counter("x", "")
	g := r.Gauge("x", "")
	h := r.Histogram("x", "")
	r.GaugeFunc("x", "", func() float64 { return 1 })
	if c != nil || g != nil || h != nil {
		t.Fatal("nil registry must hand out nil handles")
	}
	// All of these must be safe no-ops.
	c.Inc()
	c.Add(5)
	g.Set(1)
	g.Add(1)
	h.Observe(1)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 || h.Quantile(0.5) != 0 {
		t.Error("nil handles must read as zero")
	}
}
