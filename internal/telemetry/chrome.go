package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// chromeEvent is one entry of the Chrome trace-event format ("X" complete
// events plus "M" metadata), loadable by Perfetto and chrome://tracing.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

type chromeDoc struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// WriteChromeTrace exports merged releases as Chrome trace-event JSON:
// one process lane per node, one thread lane per rank, one complete event
// per span, with the causal ids in args so a chain can be followed in the
// Perfetto UI. Timestamps are rebased to the earliest span so the trace
// opens at t=0 regardless of wall clock. Output is deterministic for a
// given input (lanes sorted by name, events by time).
func WriteChromeTrace(w io.Writer, rels []Release) error {
	var base int64 = -1
	nodes := map[string]bool{}
	for _, r := range rels {
		for _, s := range r.Spans {
			if base < 0 || s.Start < base {
				base = s.Start
			}
			nodes[s.Node] = true
		}
	}
	names := make([]string, 0, len(nodes))
	for n := range nodes {
		names = append(names, n)
	}
	sort.Strings(names)
	pid := make(map[string]int, len(names))
	doc := chromeDoc{DisplayTimeUnit: "ns"}
	for i, n := range names {
		pid[n] = i + 1
		doc.TraceEvents = append(doc.TraceEvents, chromeEvent{
			Name: "process_name", Ph: "M", PID: i + 1,
			Args: map[string]any{"name": n},
		})
	}
	for _, r := range rels {
		for _, s := range r.Spans {
			args := map[string]any{
				"rank": s.Rank,
				"seq":  s.Seq,
			}
			if s.Bytes != 0 {
				args["bytes"] = s.Bytes
			}
			if s.TraceID != 0 {
				args["trace_id"] = fmt.Sprintf("%016x", s.TraceID)
				args["span_id"] = fmt.Sprintf("%016x", s.SpanID)
				if s.Parent != 0 {
					args["parent_span_id"] = fmt.Sprintf("%016x", s.Parent)
				}
			}
			doc.TraceEvents = append(doc.TraceEvents, chromeEvent{
				Name: s.Stage,
				Cat:  "release",
				Ph:   "X",
				TS:   float64(s.Start-base) / 1e3,
				Dur:  float64(s.Dur) / 1e3,
				PID:  pid[s.Node],
				TID:  int(s.Rank),
				Args: args,
			})
		}
	}
	sort.SliceStable(doc.TraceEvents, func(i, j int) bool {
		a, b := doc.TraceEvents[i], doc.TraceEvents[j]
		if (a.Ph == "M") != (b.Ph == "M") {
			return a.Ph == "M"
		}
		if a.TS != b.TS {
			return a.TS < b.TS
		}
		if a.PID != b.PID {
			return a.PID < b.PID
		}
		return a.Name < b.Name
	})
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(doc)
}
