package telemetry

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"hetdsm/internal/trace"
)

func get(t *testing.T, srv *httptest.Server, path string) (int, string, string) {
	t.Helper()
	resp, err := http.Get(srv.URL + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body), resp.Header.Get("Content-Type")
}

func TestDiagnosticsEndpoints(t *testing.T) {
	reg := New()
	reg.Counter("dsm_locks_total", "locks").Add(2)
	reg.Histogram("dsm_barrier_wait_seconds", "barrier wait").Observe(0.004)

	tr := trace.NewLog(8)
	tr.Record("home", trace.KindLockGrant, 1, 0, 0, "")

	spans := NewSpanLog(8)
	spans.Record("rank-1", StageIndex, 1, 7, time.Unix(1, 0), time.Millisecond, 0)

	cfg := ServerConfig{
		Registry: reg,
		Stats:    func() map[string]any { return map[string]any{"total_seconds": 0.5} },
		Trace:    tr,
		Spans:    spans,
		Heat:     func() any { return map[string]any{"page_size": 4096} },
	}
	srv := httptest.NewServer(NewMux(cfg))
	defer srv.Close()

	code, body, ct := get(t, srv, "/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status %d", code)
	}
	if !strings.Contains(ct, "text/plain") {
		t.Errorf("/metrics content type %q", ct)
	}
	for _, want := range []string{
		"dsm_locks_total 2",
		"# TYPE dsm_barrier_wait_seconds histogram",
		"dsm_barrier_wait_seconds_p95",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q:\n%s", want, body)
		}
	}

	code, body, ct = get(t, srv, "/stats")
	if code != http.StatusOK || !strings.Contains(ct, "application/json") {
		t.Fatalf("/stats status %d content type %q", code, ct)
	}
	var stats map[string]any
	if err := json.Unmarshal([]byte(body), &stats); err != nil {
		t.Fatalf("/stats not JSON: %v", err)
	}
	if stats["total_seconds"] != 0.5 {
		t.Errorf("/stats = %v", stats)
	}

	code, body, _ = get(t, srv, "/trace")
	if code != http.StatusOK {
		t.Fatalf("/trace status %d", code)
	}
	if !strings.Contains(body, `"kind":"lock-grant"`) {
		t.Errorf("/trace missing event: %s", body)
	}

	code, body, _ = get(t, srv, "/spans")
	if code != http.StatusOK {
		t.Fatalf("/spans status %d", code)
	}
	if !strings.Contains(body, `"stage":"index"`) {
		t.Errorf("/spans missing span: %s", body)
	}

	code, body, _ = get(t, srv, "/heat")
	if code != http.StatusOK {
		t.Fatalf("/heat status %d", code)
	}
	if !strings.Contains(body, "4096") {
		t.Errorf("/heat = %s", body)
	}

	code, body, _ = get(t, srv, "/")
	if code != http.StatusOK || !strings.Contains(body, "/metrics") {
		t.Errorf("index page: %d %s", code, body)
	}
	if code, _, _ := get(t, srv, "/nope"); code != http.StatusNotFound {
		t.Errorf("unknown route status %d, want 404", code)
	}
	if code, body, _ := get(t, srv, "/debug/pprof/cmdline"); code != http.StatusOK || body == "" {
		t.Errorf("pprof cmdline: %d %q", code, body)
	}
}

func TestDiagnosticsEmptyConfig(t *testing.T) {
	srv := httptest.NewServer(NewMux(ServerConfig{}))
	defer srv.Close()
	for _, path := range []string{"/metrics", "/stats", "/trace", "/spans", "/heat"} {
		if code, _, _ := get(t, srv, path); code != http.StatusOK {
			t.Errorf("%s with empty config: status %d", path, code)
		}
	}
}

func TestListenAndServe(t *testing.T) {
	s, err := ListenAndServe("127.0.0.1:0", ServerConfig{Registry: New()})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if s.Addr() == "" {
		t.Fatal("empty bound address")
	}
	resp, err := http.Get("http://" + s.Addr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("status %d", resp.StatusCode)
	}
	if err := s.Close(); err != nil {
		t.Errorf("Close: %v", err)
	}
	var nils *Server
	if nils.Addr() != "" || nils.Close() != nil {
		t.Error("nil Server must be inert")
	}
}
