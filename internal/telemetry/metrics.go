// Package telemetry is the observability layer of the DSM: a
// dependency-light metrics registry (atomic counters, gauges and
// log-bucketed histograms with quantile export), per-release pipeline
// spans, and a per-node HTTP diagnostics server.
//
// The paper's entire evaluation is an observability exercise — it
// instruments Cshare = t_index + t_tag + t_pack + t_unpack + t_conv
// (Eq. 1) and reads the breakdown off live runs. The stats package keeps
// those aggregate sums; this package adds what aggregates cannot show:
// latency distributions (p50/p95/p99 of lock acquire, barrier wait,
// release round-trip), live scraping while a node runs, and per-release
// cross-node traces.
//
// Everything here is nil-safe and allocation-free when disabled: a nil
// *Registry hands out nil metric handles, and every method on a nil
// handle is a no-op. Layers therefore hold handles unconditionally and
// never branch on "is telemetry on".
package telemetry

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing value. All methods are safe for
// concurrent use and no-ops on a nil receiver.
type Counter struct {
	v atomic.Uint64
}

// Add increments the counter by n.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 on a nil receiver).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a value that can go up and down. All methods are safe for
// concurrent use and no-ops on a nil receiver.
type Gauge struct {
	bits atomic.Uint64 // math.Float64bits of the current value
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add adjusts the gauge by delta.
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value (0 on a nil receiver).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram buckets observations by order of magnitude: bucket i holds
// values v with floor(log2 v) == i - histOffset, so the full range
// 2^-40 .. 2^40 (sub-nanosecond latencies in seconds up to terabyte
// sizes in bytes) is covered by histBuckets counters with no
// configuration. Observations and quantile reads are lock-free. All
// methods are no-ops on a nil receiver.
type Histogram struct {
	count   atomic.Uint64
	sumBits atomic.Uint64 // math.Float64bits of the running sum
	buckets [histBuckets]atomic.Uint64
}

const (
	histOffset  = 40
	histBuckets = 81 // exponents -40 .. +40
)

// histBucket maps a value to its bucket index.
func histBucket(v float64) int {
	if v <= 0 || math.IsNaN(v) {
		return 0
	}
	i := math.Ilogb(v) + histOffset
	if i < 0 {
		return 0
	}
	if i >= histBuckets {
		return histBuckets - 1
	}
	return i
}

// histUpper returns the exclusive upper bound of bucket i.
func histUpper(i int) float64 {
	return math.Ldexp(1, i-histOffset+1)
}

// histLower returns the inclusive lower bound of bucket i.
func histLower(i int) float64 {
	if i == 0 {
		return 0
	}
	return math.Ldexp(1, i-histOffset)
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.buckets[histBucket(v)].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations (0 on a nil receiver).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observed values (0 on a nil receiver).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// Quantile estimates the q-th quantile (0 < q <= 1) by linear
// interpolation within the log bucket containing it. It returns 0 when
// the histogram is empty or nil.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := q * float64(total)
	var cum float64
	for i := 0; i < histBuckets; i++ {
		n := float64(h.buckets[i].Load())
		if n == 0 {
			continue
		}
		if cum+n >= target {
			lo, hi := histLower(i), histUpper(i)
			frac := (target - cum) / n
			return lo + frac*(hi-lo)
		}
		cum += n
	}
	return histUpper(histBuckets - 1)
}

// snapshotBuckets returns the non-empty buckets as (upper bound,
// cumulative count) pairs, for exposition.
func (h *Histogram) snapshotBuckets() (uppers []float64, cumulative []uint64) {
	var cum uint64
	for i := 0; i < histBuckets; i++ {
		n := h.buckets[i].Load()
		if n == 0 {
			continue
		}
		cum += n
		uppers = append(uppers, histUpper(i))
		cumulative = append(cumulative, cum)
	}
	return uppers, cumulative
}

// Registry is a named collection of metrics. The zero value is not
// usable; construct with New. A nil *Registry is the disabled registry:
// it hands out nil handles and registers nothing, so an un-instrumented
// node pays nothing.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	gaugeFuncs map[string]func() float64
	hists      map[string]*Histogram
	help       map[string]string
}

// New returns an empty registry.
func New() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		gaugeFuncs: make(map[string]func() float64),
		hists:      make(map[string]*Histogram),
		help:       make(map[string]string),
	}
}

// Counter returns the counter registered under name, creating it on
// first use. Returns nil on a nil registry.
func (r *Registry) Counter(name, help string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
		r.help[name] = help
	}
	return c
}

// Gauge returns the gauge registered under name, creating it on first
// use. Returns nil on a nil registry.
func (r *Registry) Gauge(name, help string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
		r.help[name] = help
	}
	return g
}

// GaugeFunc registers a gauge whose value is read from f at exposition
// time — the bridge for externally-maintained counters (ha.Counters).
// No-op on a nil registry; a later registration under the same name
// replaces the earlier one.
func (r *Registry) GaugeFunc(name, help string, f func() float64) {
	if r == nil || f == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.gaugeFuncs[name] = f
	r.help[name] = help
}

// Histogram returns the histogram registered under name, creating it on
// first use. Returns nil on a nil registry.
func (r *Registry) Histogram(name, help string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{}
		r.hists[name] = h
		r.help[name] = help
	}
	return h
}

// formatFloat renders a sample value the way Prometheus expects.
func formatFloat(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	return fmt.Sprintf("%g", v)
}

// WritePrometheus renders every metric in the Prometheus text exposition
// format (version 0.0.4). Histograms are exposed as native histogram
// families (bucket/sum/count) plus derived _p50/_p95/_p99 gauges, so a
// plain curl shows the quantiles without a query engine. Safe on a nil
// registry (writes nothing).
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	counters := make(map[string]uint64, len(r.counters))
	for n, c := range r.counters {
		counters[n] = c.Value()
	}
	gauges := make(map[string]float64, len(r.gauges)+len(r.gaugeFuncs))
	for n, g := range r.gauges {
		gauges[n] = g.Value()
	}
	funcs := make(map[string]func() float64, len(r.gaugeFuncs))
	for n, f := range r.gaugeFuncs {
		funcs[n] = f
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for n, h := range r.hists {
		hists[n] = h
	}
	help := make(map[string]string, len(r.help))
	for n, h := range r.help {
		help[n] = h
	}
	r.mu.Unlock()
	// Calling gauge funcs outside the registry lock keeps re-entrant
	// registrations from deadlocking.
	for n, f := range funcs {
		gauges[n] = f()
	}

	var b strings.Builder
	writeHeader := func(name, kind string) {
		if h := help[name]; h != "" {
			fmt.Fprintf(&b, "# HELP %s %s\n", name, h)
		}
		fmt.Fprintf(&b, "# TYPE %s %s\n", name, kind)
	}
	for _, name := range sortedKeys(counters) {
		writeHeader(name, "counter")
		fmt.Fprintf(&b, "%s %d\n", name, counters[name])
	}
	for _, name := range sortedKeysF(gauges) {
		writeHeader(name, "gauge")
		fmt.Fprintf(&b, "%s %s\n", name, formatFloat(gauges[name]))
	}
	histNames := make([]string, 0, len(hists))
	for n := range hists {
		histNames = append(histNames, n)
	}
	sort.Strings(histNames)
	for _, name := range histNames {
		h := hists[name]
		writeHeader(name, "histogram")
		uppers, cum := h.snapshotBuckets()
		for i := range uppers {
			fmt.Fprintf(&b, "%s_bucket{le=\"%s\"} %d\n", name, formatFloat(uppers[i]), cum[i])
		}
		fmt.Fprintf(&b, "%s_bucket{le=\"+Inf\"} %d\n", name, h.Count())
		fmt.Fprintf(&b, "%s_sum %s\n", name, formatFloat(h.Sum()))
		fmt.Fprintf(&b, "%s_count %d\n", name, h.Count())
		for _, q := range [...]struct {
			suffix string
			q      float64
		}{{"_p50", 0.50}, {"_p95", 0.95}, {"_p99", 0.99}} {
			fmt.Fprintf(&b, "# TYPE %s%s gauge\n", name, q.suffix)
			fmt.Fprintf(&b, "%s%s %s\n", name, q.suffix, formatFloat(h.Quantile(q.q)))
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func sortedKeys(m map[string]uint64) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func sortedKeysF(m map[string]float64) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
