package telemetry

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"

	"hetdsm/internal/trace"
)

// ServerConfig wires a node's diagnostics into the HTTP server. Every
// field is optional; a route whose source is nil serves an empty result.
type ServerConfig struct {
	// Registry backs /metrics (Prometheus text exposition format).
	Registry *Registry
	// Stats backs /stats: it returns the node's Eq. 1 breakdown document
	// (the same shape the -stats-json flags print), called per request so
	// a running node serves live numbers.
	Stats func() map[string]any
	// Trace backs /trace: the protocol event ring, streamed as JSONL.
	Trace *trace.Log
	// Spans backs /spans: the release-pipeline span ring, streamed as
	// JSONL.
	Spans *SpanLog
	// Heat backs /heat: it returns the node's page-heat report, called
	// per request.
	Heat func() any
}

// NewMux builds the diagnostics route table:
//
//	/metrics     Prometheus text exposition (counters, gauges,
//	             histogram buckets and p50/p95/p99 quantiles)
//	/stats       Eq. 1 breakdown JSON
//	/trace       protocol event ring as JSONL
//	/spans       release-pipeline spans as JSONL
//	/heat        page-heat report JSON
//	/debug/pprof Go runtime profiles
func NewMux(cfg ServerConfig) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "hetdsm diagnostics")
		for _, route := range []string{"/metrics", "/stats", "/trace", "/spans", "/heat", "/debug/pprof/"} {
			fmt.Fprintln(w, " ", route)
		}
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := cfg.Registry.WritePrometheus(w); err != nil {
			// The connection died mid-write; nothing to report to.
			return
		}
	})
	mux.HandleFunc("/stats", func(w http.ResponseWriter, r *http.Request) {
		var doc map[string]any
		if cfg.Stats != nil {
			doc = cfg.Stats()
		}
		if doc == nil {
			doc = map[string]any{}
		}
		writeJSON(w, doc)
	})
	mux.HandleFunc("/trace", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/x-ndjson")
		if cfg.Trace != nil {
			_ = cfg.Trace.DumpJSON(w)
		}
	})
	mux.HandleFunc("/spans", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/x-ndjson")
		_ = cfg.Spans.DumpJSON(w)
	})
	mux.HandleFunc("/heat", func(w http.ResponseWriter, r *http.Request) {
		var doc any
		if cfg.Heat != nil {
			doc = cfg.Heat()
		}
		if doc == nil {
			doc = map[string]any{}
		}
		writeJSON(w, doc)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

func writeJSON(w http.ResponseWriter, doc any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(doc)
}

// Server is a running diagnostics endpoint.
type Server struct {
	l   net.Listener
	srv *http.Server
}

// ListenAndServe starts the diagnostics server on addr (host:port; an
// empty port picks a free one) and serves until Close.
func ListenAndServe(addr string, cfg ServerConfig) (*Server, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	srv := &http.Server{
		Handler:           NewMux(cfg),
		ReadHeaderTimeout: 10 * time.Second,
	}
	go func() { _ = srv.Serve(l) }()
	return &Server{l: l, srv: srv}, nil
}

// Addr returns the bound address (useful with a ":0" listen spec).
func (s *Server) Addr() string {
	if s == nil {
		return ""
	}
	return s.l.Addr().String()
}

// Close stops serving. Safe on nil.
func (s *Server) Close() error {
	if s == nil {
		return nil
	}
	return s.srv.Close()
}
