package telemetry

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// TestWriteChromeTraceGolden pins the exporter's exact output for a fixed
// two-release input — the format contract with Perfetto and with any
// script parsing dsmtrace -chrome output. Regenerate with
// `go test ./internal/telemetry -run Golden -update` after an intentional
// format change, and eyeball the diff.
func TestWriteChromeTraceGolden(t *testing.T) {
	rels := MergeTimeline(
		chainFor(0x0102030405060708, 0, 1, "rank-0", "home", "wal", 1_000_000),
		chainFor(0x1112131415161718, 1, 1, "rank-1", "home", "wal", 1_000_500),
	)
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, rels); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "chrome_golden.json")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to generate)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("chrome trace output drifted from %s:\ngot:\n%s", golden, buf.String())
	}
	// Determinism across repeated exports of the same input.
	var again bytes.Buffer
	if err := WriteChromeTrace(&again, rels); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), again.Bytes()) {
		t.Error("two exports of the same releases differ")
	}
}

// TestWriteChromeTraceEmpty keeps the exporter total: zero releases still
// produce a valid document.
func TestWriteChromeTraceEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, nil); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(buf.Bytes(), []byte("traceEvents")) {
		t.Fatalf("empty export missing traceEvents: %s", buf.String())
	}
}
