package telemetry

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func TestSpanLogRing(t *testing.T) {
	l := NewSpanLog(3)
	base := time.Unix(0, 1_000_000)
	for i := 0; i < 7; i++ {
		l.Record("n", StagePack, 1, uint64(i+1), base.Add(time.Duration(i)*time.Millisecond), time.Millisecond, i)
	}
	if l.Len() != 3 {
		t.Fatalf("Len = %d, want 3", l.Len())
	}
	if l.Total() != 7 {
		t.Errorf("Total = %d, want 7", l.Total())
	}
	if l.Dropped() != 4 {
		t.Errorf("Dropped = %d, want 4", l.Dropped())
	}
	spans := l.Spans()
	for i, s := range spans {
		if want := uint64(5 + i); s.Seq != want {
			t.Errorf("span %d seq = %d, want %d (oldest-first after wrap)", i, s.Seq, want)
		}
	}
}

func TestSpanLogNil(t *testing.T) {
	var l *SpanLog
	l.Record("n", StageIndex, 0, 1, time.Now(), time.Millisecond, 0)
	if l.Len() != 0 || l.Total() != 0 || l.Dropped() != 0 || l.Spans() != nil {
		t.Error("nil SpanLog must read as empty")
	}
	var buf bytes.Buffer
	if err := l.DumpJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 0 {
		t.Errorf("nil SpanLog wrote %q", buf.String())
	}
}

func TestSpanDumpJSONFieldNames(t *testing.T) {
	l := NewSpanLog(4)
	l.Record("rank-2@linux-x86", StageShip, 2, 9, time.Unix(10, 0), 3*time.Millisecond, 512)
	var buf bytes.Buffer
	if err := l.DumpJSON(&buf); err != nil {
		t.Fatal(err)
	}
	line := strings.TrimSpace(buf.String())
	var m map[string]any
	if err := json.Unmarshal([]byte(line), &m); err != nil {
		t.Fatalf("not JSON: %v", err)
	}
	for _, key := range []string{"rank", "seq", "node", "stage", "start_unix_ns", "dur_ns", "bytes"} {
		if _, ok := m[key]; !ok {
			t.Errorf("missing key %q: %s", key, line)
		}
	}
	if m["stage"] != "ship" || m["dur_ns"] != float64(3_000_000) {
		t.Errorf("bad values: %s", line)
	}
}

func TestMergeTimeline(t *testing.T) {
	at := func(ms int) time.Time { return time.Unix(0, int64(ms)*1_000_000) }
	sender := NewSpanLog(16)
	home := NewSpanLog(16)

	// Two releases by rank 1 (seq 3 and 4) and one by rank 2 (seq 3):
	// identical seq on different ranks must stay distinct releases.
	for _, seq := range []uint64{3, 4} {
		off := int(seq) * 100
		sender.Record("rank-1", StageIndex, 1, seq, at(off+0), time.Millisecond, 0)
		sender.Record("rank-1", StageTag, 1, seq, at(off+1), time.Millisecond, 0)
		sender.Record("rank-1", StagePack, 1, seq, at(off+2), time.Millisecond, 256)
		sender.Record("rank-1", StageShip, 1, seq, at(off+3), 5*time.Millisecond, 256)
		home.Record("home", StageUnpack, 1, seq, at(off+4), time.Millisecond, 256)
		home.Record("home", StageConv, 1, seq, at(off+5), time.Millisecond, 256)
		home.Record("home", StageApply, 1, seq, at(off+6), time.Millisecond, 256)
	}
	sender.Record("rank-2", StageShip, 2, 3, at(900), time.Millisecond, 0)
	// Spans without a release id are metadata, not releases.
	sender.Record("rank-1", StageShip, 1, 0, at(950), time.Millisecond, 0)

	rels := MergeTimeline(sender.Spans(), home.Spans())
	if len(rels) != 3 {
		t.Fatalf("got %d releases, want 3", len(rels))
	}
	// Ordered by rank then seq.
	wantIDs := []struct {
		rank int32
		seq  uint64
	}{{1, 3}, {1, 4}, {2, 3}}
	for i, w := range wantIDs {
		if rels[i].Rank != w.rank || rels[i].Seq != w.seq {
			t.Errorf("release %d = (%d,%d), want (%d,%d)", i, rels[i].Rank, rels[i].Seq, w.rank, w.seq)
		}
	}
	full := rels[0]
	if len(full.Spans) != 7 {
		t.Fatalf("release (1,3) has %d spans, want 7", len(full.Spans))
	}
	// All seven stages present, and start-ordered so the pipeline reads
	// left to right: sender stages then home stages.
	wantStages := []string{StageIndex, StageTag, StagePack, StageShip, StageUnpack, StageConv, StageApply}
	for i, s := range full.Spans {
		if s.Stage != wantStages[i] {
			t.Errorf("span %d stage = %s, want %s", i, s.Stage, wantStages[i])
		}
	}
	if sp, ok := full.Stage(StageConv); !ok || sp.Node != "home" {
		t.Errorf("Stage(conv) = %+v, %v", sp, ok)
	}
	if _, ok := full.Stage("nope"); ok {
		t.Error("Stage on a missing stage must report false")
	}
}
