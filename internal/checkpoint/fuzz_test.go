package checkpoint_test

import (
	"testing"

	"hetdsm/internal/checkpoint"
	"hetdsm/internal/platform"
)

// FuzzDecode exercises the checkpoint blob parser: never panic; accepted
// blobs re-encode stably.
func FuzzDecode(f *testing.F) {
	good := &checkpoint.Checkpoint{
		Platform: platform.LinuxX86.Name,
		PC:       42,
		FrameTag: "(8,1)(0,0)",
		Frame:    make([]byte, 8),
	}
	f.Add(good.Encode())
	f.Add([]byte("HDSMCKPT"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		c, err := checkpoint.Decode(data)
		if err != nil {
			return
		}
		if _, err := checkpoint.Decode(c.Encode()); err != nil {
			t.Fatalf("accepted blob does not re-decode: %v", err)
		}
	})
}
