package checkpoint_test

import (
	"testing"

	"hetdsm/internal/checkpoint"
	"hetdsm/internal/platform"
)

func benchCheckpoint(globalsBytes int) *checkpoint.Checkpoint {
	return &checkpoint.Checkpoint{
		Platform:   platform.SolarisSPARC.Name,
		PC:         1234,
		FrameTag:   "(8,1)(0,0)(8,1)(0,0)",
		Frame:      make([]byte, 16),
		GlobalsTag: "(4,262144)(0,0)",
		Globals:    make([]byte, 1<<20),
	}
}

func BenchmarkCheckpointEncode(b *testing.B) {
	c := benchCheckpoint(1 << 20)
	b.SetBytes(int64(len(c.Globals)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if blob := c.Encode(); len(blob) == 0 {
			b.Fatal("empty blob")
		}
	}
}

func BenchmarkCheckpointDecode(b *testing.B) {
	blob := benchCheckpoint(1 << 20).Encode()
	b.SetBytes(int64(len(blob)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := checkpoint.Decode(blob); err != nil {
			b.Fatal(err)
		}
	}
}
