// Package checkpoint implements portable, heterogeneous checkpointing of
// application-level thread state — the other half of the MigThread package
// the paper builds on (paper Section 3.1; Jiang & Chaudhary, HICSS 2004).
//
// A Checkpoint freezes everything migration ships — logical PC, the typed
// local frame, the full GThV globals image, and an optional resource
// payload (e.g. a migio descriptor table) — into one self-describing blob
// in the *source* platform's layout, each piece accompanied by its CGT-RMR
// tag. The blob can be written to stable storage and later restored on any
// platform: restoration converts every piece receiver-makes-right, exactly
// like a live migration, so a computation checkpointed on the big-endian
// machine resumes on the little-endian one.
//
// The on-disk format is framed with a magic, a version and a CRC-32 so a
// damaged checkpoint is rejected rather than restored into garbage.
package checkpoint

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"

	"hetdsm/internal/convert"
	"hetdsm/internal/platform"
	"hetdsm/internal/tag"
)

// magic identifies a checkpoint blob.
const magic = "HDSMCKPT"

// version is the current format version.
const version = 1

// Checkpoint is a complete application-level thread state in the source
// platform's representation.
type Checkpoint struct {
	// Platform is the source platform's name.
	Platform string
	// PC is the logical program counter.
	PC int64
	// FrameTag and Frame hold the local-variable frame.
	FrameTag string
	Frame    []byte
	// GlobalsTag and Globals hold the full GThV image.
	GlobalsTag string
	Globals    []byte
	// ExtraTag and Extra hold an optional resource payload.
	ExtraTag string
	Extra    []byte
}

// Validate performs structural checks: the platform must be known and each
// tag must parse and account for its payload's bytes.
func (c *Checkpoint) Validate() error {
	if platform.ByName(c.Platform) == nil {
		return fmt.Errorf("checkpoint: unknown platform %q", c.Platform)
	}
	check := func(what, tagStr string, payload []byte) error {
		if tagStr == "" && len(payload) == 0 {
			return nil
		}
		seq, err := tag.Parse(tagStr)
		if err != nil {
			return fmt.Errorf("checkpoint: %s tag: %w", what, err)
		}
		if seq.Bytes() != len(payload) {
			return fmt.Errorf("checkpoint: %s tag covers %d bytes, payload has %d",
				what, seq.Bytes(), len(payload))
		}
		return nil
	}
	if err := check("frame", c.FrameTag, c.Frame); err != nil {
		return err
	}
	if err := check("globals", c.GlobalsTag, c.Globals); err != nil {
		return err
	}
	return check("extra", c.ExtraTag, c.Extra)
}

// OpaqueTag returns the CGT-RMR tag covering n opaque bytes: "(1,n)", n
// one-byte scalars. Producers use it for Extra payloads that are already
// platform independent (the WAL's snapshot metadata), so Validate's
// tag-covers-payload check still holds without inventing a real layout.
func OpaqueTag(n int) string {
	if n <= 0 {
		return ""
	}
	return fmt.Sprintf("(1,%d)", n)
}

// Encode serializes the checkpoint with magic, version and CRC framing.
func (c *Checkpoint) Encode() []byte {
	var body []byte
	body = appendString(body, c.Platform)
	body = binary.BigEndian.AppendUint64(body, uint64(c.PC))
	body = appendString(body, c.FrameTag)
	body = appendBytes(body, c.Frame)
	body = appendString(body, c.GlobalsTag)
	body = appendBytes(body, c.Globals)
	body = appendString(body, c.ExtraTag)
	body = appendBytes(body, c.Extra)

	out := make([]byte, 0, len(magic)+1+4+4+len(body))
	out = append(out, magic...)
	out = append(out, version)
	out = binary.BigEndian.AppendUint32(out, uint32(len(body)))
	out = append(out, body...)
	out = binary.BigEndian.AppendUint32(out, crc32.ChecksumIEEE(body))
	return out
}

// Decode parses and integrity-checks a checkpoint blob.
func Decode(b []byte) (*Checkpoint, error) {
	hdr := len(magic) + 1 + 4
	if len(b) < hdr+4 {
		return nil, fmt.Errorf("checkpoint: %d bytes is too short", len(b))
	}
	if string(b[:len(magic)]) != magic {
		return nil, fmt.Errorf("checkpoint: bad magic")
	}
	if b[len(magic)] != version {
		return nil, fmt.Errorf("checkpoint: unsupported version %d", b[len(magic)])
	}
	n := int(binary.BigEndian.Uint32(b[len(magic)+1:]))
	if len(b) != hdr+n+4 {
		return nil, fmt.Errorf("checkpoint: body length %d does not match blob of %d bytes", n, len(b))
	}
	body := b[hdr : hdr+n]
	want := binary.BigEndian.Uint32(b[hdr+n:])
	if got := crc32.ChecksumIEEE(body); got != want {
		return nil, fmt.Errorf("checkpoint: CRC mismatch (%#x != %#x): blob is corrupt", got, want)
	}

	d := &reader{b: body}
	c := &Checkpoint{}
	c.Platform = d.str()
	c.PC = int64(d.u64())
	c.FrameTag = d.str()
	c.Frame = d.bytes()
	c.GlobalsTag = d.str()
	c.Globals = d.bytes()
	c.ExtraTag = d.str()
	c.Extra = d.bytes()
	if d.err != nil {
		return nil, d.err
	}
	if d.off != len(body) {
		return nil, fmt.Errorf("checkpoint: %d trailing bytes", len(body)-d.off)
	}
	return c, nil
}

// Save writes an encoded checkpoint to w.
func (c *Checkpoint) Save(w io.Writer) error {
	_, err := w.Write(c.Encode())
	return err
}

// Load reads an entire checkpoint from r.
func Load(r io.Reader) (*Checkpoint, error) {
	b, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	return Decode(b)
}

// RestoreFrame converts the checkpointed frame into dest's layout. typ must
// be the frame's declared type.
func (c *Checkpoint) RestoreFrame(typ tag.Struct, dest *platform.Platform) ([]byte, error) {
	return c.restorePiece(typ, dest, c.FrameTag, c.Frame, "frame")
}

// RestoreGlobals converts the checkpointed GThV image into dest's layout.
func (c *Checkpoint) RestoreGlobals(gthv tag.Struct, dest *platform.Platform) ([]byte, error) {
	return c.restorePiece(gthv, dest, c.GlobalsTag, c.Globals, "globals")
}

func (c *Checkpoint) restorePiece(typ tag.Struct, dest *platform.Platform, tagStr string, payload []byte, what string) ([]byte, error) {
	src := platform.ByName(c.Platform)
	if src == nil {
		return nil, fmt.Errorf("checkpoint: unknown platform %q", c.Platform)
	}
	srcLayout, err := tag.NewLayout(typ, src)
	if err != nil {
		return nil, err
	}
	if want := tag.FromLayout(srcLayout).String(); tagStr != want {
		return nil, fmt.Errorf("checkpoint: %s tag %q does not match type (%q)", what, tagStr, want)
	}
	if len(payload) != srcLayout.Size {
		return nil, fmt.Errorf("checkpoint: %s payload %d bytes, want %d", what, len(payload), srcLayout.Size)
	}
	dstLayout, err := tag.NewLayout(typ, dest)
	if err != nil {
		return nil, err
	}
	out, _, err := convert.Value(dstLayout, payload, srcLayout, convert.Options{Ptr: convert.PtrAnnul})
	return out, err
}

func appendString(b []byte, s string) []byte {
	b = binary.BigEndian.AppendUint32(b, uint32(len(s)))
	return append(b, s...)
}

func appendBytes(b, p []byte) []byte {
	b = binary.BigEndian.AppendUint32(b, uint32(len(p)))
	return append(b, p...)
}

type reader struct {
	b   []byte
	off int
	err error
}

func (r *reader) fail() {
	if r.err == nil {
		r.err = fmt.Errorf("checkpoint: truncated at offset %d", r.off)
	}
}

func (r *reader) u32() uint32 {
	if r.err != nil || r.off+4 > len(r.b) {
		r.fail()
		return 0
	}
	v := binary.BigEndian.Uint32(r.b[r.off:])
	r.off += 4
	return v
}

func (r *reader) u64() uint64 {
	if r.err != nil || r.off+8 > len(r.b) {
		r.fail()
		return 0
	}
	v := binary.BigEndian.Uint64(r.b[r.off:])
	r.off += 8
	return v
}

func (r *reader) str() string {
	n := int(r.u32())
	if r.err != nil || r.off+n > len(r.b) {
		r.fail()
		return ""
	}
	s := string(r.b[r.off : r.off+n])
	r.off += n
	return s
}

func (r *reader) bytes() []byte {
	n := int(r.u32())
	if r.err != nil || n == 0 {
		return nil
	}
	if r.off+n > len(r.b) {
		r.fail()
		return nil
	}
	p := append([]byte(nil), r.b[r.off:r.off+n]...)
	r.off += n
	return p
}
