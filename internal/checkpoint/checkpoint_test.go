package checkpoint_test

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"hetdsm/internal/checkpoint"
	"hetdsm/internal/migthread"
	"hetdsm/internal/platform"
	"hetdsm/internal/tag"
)

func frameType() tag.Struct {
	return tag.Struct{Name: "frame", Fields: []tag.Field{
		{Name: "i", T: tag.LongLong()},
		{Name: "acc", T: tag.Double()},
	}}
}

func gthvType() tag.Struct {
	return tag.Struct{Name: "GThV_t", Fields: []tag.Field{
		{Name: "A", T: tag.IntArray(32)},
		{Name: "n", T: tag.Int()},
	}}
}

// buildCheckpoint freezes a synthetic thread state on platform p.
func buildCheckpoint(t *testing.T, p *platform.Platform) *checkpoint.Checkpoint {
	t.Helper()
	f, err := migthread.NewFrame(frameType(), p)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.SetInt("i", 12345); err != nil {
		t.Fatal(err)
	}
	if err := f.SetFloat64("acc", 6.75); err != nil {
		t.Fatal(err)
	}
	gl := tag.MustLayout(gthvType(), p)
	globals := make([]byte, gl.Size)
	aOff, _ := gl.Offset("A")
	for i := 0; i < 32; i++ {
		p.PutInt(globals[aOff+4*i:], 4, int64(i*i))
	}
	nOff, _ := gl.Offset("n")
	p.PutInt(globals[nOff:], 4, 32)
	return &checkpoint.Checkpoint{
		Platform:   p.Name,
		PC:         99,
		FrameTag:   f.TagString(),
		Frame:      f.Bytes(),
		GlobalsTag: tag.FromLayout(gl).String(),
		Globals:    globals,
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	c := buildCheckpoint(t, platform.SolarisSPARC)
	c.ExtraTag = "(1,4)"
	c.Extra = []byte{1, 2, 3, 4}
	got, err := checkpoint.Decode(c.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if got.Platform != c.Platform || got.PC != c.PC ||
		got.FrameTag != c.FrameTag || !bytes.Equal(got.Frame, c.Frame) ||
		got.GlobalsTag != c.GlobalsTag || !bytes.Equal(got.Globals, c.Globals) ||
		got.ExtraTag != c.ExtraTag || !bytes.Equal(got.Extra, c.Extra) {
		t.Errorf("round trip mismatch:\n got %+v\nwant %+v", got, c)
	}
}

func TestSaveLoad(t *testing.T) {
	c := buildCheckpoint(t, platform.LinuxX86)
	var buf bytes.Buffer
	if err := c.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := checkpoint.Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.PC != 99 {
		t.Errorf("loaded PC = %d", got.PC)
	}
}

func TestCorruptionDetected(t *testing.T) {
	c := buildCheckpoint(t, platform.LinuxX86)
	blob := c.Encode()
	// Flip one payload byte: CRC must catch it.
	bad := append([]byte(nil), blob...)
	bad[len(bad)/2] ^= 0x01
	if _, err := checkpoint.Decode(bad); err == nil {
		t.Error("corrupt checkpoint accepted")
	}
	// Bad magic.
	bad2 := append([]byte(nil), blob...)
	bad2[0] = 'X'
	if _, err := checkpoint.Decode(bad2); err == nil {
		t.Error("bad magic accepted")
	}
	// Bad version.
	bad3 := append([]byte(nil), blob...)
	bad3[8] = 99
	if _, err := checkpoint.Decode(bad3); err == nil {
		t.Error("bad version accepted")
	}
	// Truncations.
	for n := 0; n < len(blob); n += 7 {
		if _, err := checkpoint.Decode(blob[:n]); err == nil {
			t.Errorf("truncation to %d accepted", n)
		}
	}
}

func TestHeterogeneousRestore(t *testing.T) {
	// Checkpoint on SPARC, restore on every other platform.
	c := buildCheckpoint(t, platform.SolarisSPARC)
	blob := c.Encode()
	for _, dest := range platform.All() {
		got, err := checkpoint.Decode(blob)
		if err != nil {
			t.Fatal(err)
		}
		frame, err := got.RestoreFrame(frameType(), dest)
		if err != nil {
			t.Fatalf("%s: %v", dest, err)
		}
		fl := tag.MustLayout(frameType(), dest)
		iOff, _ := fl.Offset("i")
		accOff, _ := fl.Offset("acc")
		if v := dest.Int(frame[iOff:], 8); v != 12345 {
			t.Errorf("%s: i = %d", dest, v)
		}
		if v := dest.Float64(frame[accOff:]); v != 6.75 {
			t.Errorf("%s: acc = %g", dest, v)
		}
		globals, err := got.RestoreGlobals(gthvType(), dest)
		if err != nil {
			t.Fatalf("%s: %v", dest, err)
		}
		gl := tag.MustLayout(gthvType(), dest)
		aOff, _ := gl.Offset("A")
		for i := 0; i < 32; i++ {
			if v := dest.Int(globals[aOff+4*i:], 4); v != int64(i*i) {
				t.Errorf("%s: A[%d] = %d, want %d", dest, i, v, i*i)
			}
		}
	}
}

func TestValidate(t *testing.T) {
	c := buildCheckpoint(t, platform.LinuxX86)
	if err := c.Validate(); err != nil {
		t.Errorf("good checkpoint invalid: %v", err)
	}
	bad := *c
	bad.Platform = "vax"
	if err := bad.Validate(); err == nil {
		t.Error("unknown platform validated")
	}
	bad = *c
	bad.FrameTag = "((("
	if err := bad.Validate(); err == nil {
		t.Error("garbage tag validated")
	}
	bad = *c
	bad.Frame = bad.Frame[:4]
	if err := bad.Validate(); err == nil {
		t.Error("short frame validated")
	}
}

func TestRestoreRejectsWrongType(t *testing.T) {
	c := buildCheckpoint(t, platform.LinuxX86)
	wrong := tag.Struct{Name: "other", Fields: []tag.Field{{Name: "x", T: tag.Char()}}}
	if _, err := c.RestoreFrame(wrong, platform.SolarisSPARC); err == nil {
		t.Error("wrong frame type accepted")
	}
}

// Property: Decode never panics on arbitrary bytes.
func TestQuickDecodeNeverPanics(t *testing.T) {
	f := func(b []byte) bool {
		defer func() {
			if recover() != nil {
				t.Fatalf("panic on % x", b)
			}
		}()
		_, _ = checkpoint.Decode(b)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// Property: Encode/Decode round-trips random checkpoints bit-exactly.
func TestQuickRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		plats := platform.All()
		c := &checkpoint.Checkpoint{
			Platform: plats[r.Intn(len(plats))].Name,
			PC:       r.Int63(),
		}
		if r.Intn(2) == 0 {
			c.Frame = make([]byte, 8)
			r.Read(c.Frame)
			c.FrameTag = "(8,1)(0,0)"
		}
		got, err := checkpoint.Decode(c.Encode())
		if err != nil {
			return false
		}
		return got.Platform == c.Platform && got.PC == c.PC &&
			got.FrameTag == c.FrameTag && bytes.Equal(got.Frame, c.Frame)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
