package vmem

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// writeRound protects, writes, diffs and drops twins — one release
// window, the way the DSD layer drives a segment.
func writeRound(t *testing.T, s *Segment, writes map[int][]byte) {
	t.Helper()
	s.ProtectAll()
	for off, b := range writes {
		if err := s.Write(off, b); err != nil {
			t.Fatal(err)
		}
	}
	for _, p := range s.DirtyPages() {
		s.DiffPage(p, DiffByte)
	}
	s.DropTwins()
}

func TestHeatCounters(t *testing.T) {
	const pageSize = 256
	s := MustSegment(0x10000, 4*pageSize, pageSize)

	// Page 0: two rounds of one solid write each — hot, but not
	// fragmented. Page 2: one round, one write. Pages 1 and 3: untouched.
	// Each round writes different bytes so the twin diff sees real change.
	writeRound(t, s, map[int][]byte{
		0:            bytes.Repeat([]byte{0xAA}, 64),
		2 * pageSize: {1, 2, 3, 4},
	})
	writeRound(t, s, map[int][]byte{0: bytes.Repeat([]byte{0xBB}, 64)})

	r := s.Heat()
	if r.PageSize != pageSize {
		t.Errorf("PageSize = %d, want %d", r.PageSize, pageSize)
	}
	if len(r.Pages) != 2 {
		t.Fatalf("got %d active pages, want 2: %+v", len(r.Pages), r.Pages)
	}
	// Hottest first: page 0 has 2 faults, page 2 has 1.
	if r.Pages[0].Page != 0 || r.Pages[0].Faults != 2 {
		t.Errorf("hottest = %+v, want page 0 with 2 faults", r.Pages[0])
	}
	if r.Pages[1].Page != 2 || r.Pages[1].Faults != 1 {
		t.Errorf("second = %+v, want page 2 with 1 fault", r.Pages[1])
	}
	if r.Pages[0].DiffRuns != 2 || r.Pages[0].DiffBytes != 128 {
		t.Errorf("page 0 diff accounting = %+v, want 2 runs / 128 bytes", r.Pages[0])
	}
	if r.TotalFaults != 3 {
		t.Errorf("TotalFaults = %d, want 3", r.TotalFaults)
	}
	if r.TotalDiffBytes != 128+4 {
		t.Errorf("TotalDiffBytes = %d, want 132", r.TotalDiffBytes)
	}
	if r.TwinsMade != 3 {
		t.Errorf("TwinsMade = %d, want 3", r.TwinsMade)
	}
	for _, p := range r.Pages {
		if p.FalseSharingSuspect {
			t.Errorf("page %d flagged as false sharing despite solid writes", p.Page)
		}
	}
}

func TestHeatFalseSharingSuspect(t *testing.T) {
	const pageSize = 256
	s := MustSegment(0x10000, 2*pageSize, pageSize)

	// Page 0 takes many scattered 2-byte writes per round — several
	// distinct runs, each far below pageSize/8 — across three rounds.
	// That is the false-sharing signature.
	for round := 0; round < 3; round++ {
		writes := map[int][]byte{}
		for i := 0; i < 4; i++ {
			writes[i*50] = []byte{byte(round), byte(i)}
		}
		// Page 1 gets one solid half-page write: hot, not fragmented.
		writes[pageSize] = bytes.Repeat([]byte{byte(round + 1)}, pageSize/2)
		writeRound(t, s, writes)
	}

	r := s.Heat()
	byPage := map[int]PageHeat{}
	for _, p := range r.Pages {
		byPage[p.Page] = p
	}
	if !byPage[0].FalseSharingSuspect {
		t.Errorf("page 0 not flagged: %+v", byPage[0])
	}
	if byPage[1].FalseSharingSuspect {
		t.Errorf("page 1 wrongly flagged: %+v", byPage[1])
	}
}

func TestHeatMerge(t *testing.T) {
	a := HeatReport{
		PageSize:       256,
		TotalFaults:    3,
		TotalDiffBytes: 100,
		TwinsMade:      3,
		Pages: []PageHeat{
			{Page: 0, Faults: 2, DiffRuns: 2, DiffBytes: 80},
			{Page: 1, Faults: 1, DiffRuns: 1, DiffBytes: 20},
		},
	}
	b := HeatReport{
		PageSize:       256,
		TotalFaults:    5,
		TotalDiffBytes: 60,
		TwinsMade:      5,
		Pages: []PageHeat{
			{Page: 1, Faults: 4, DiffRuns: 16, DiffBytes: 40},
			{Page: 7, Faults: 1, DiffRuns: 1, DiffBytes: 20},
		},
	}
	a.Merge(b)
	if a.TotalFaults != 8 || a.TotalDiffBytes != 160 || a.TwinsMade != 8 {
		t.Errorf("totals after merge: %+v", a)
	}
	if len(a.Pages) != 3 {
		t.Fatalf("got %d pages, want 3", len(a.Pages))
	}
	// Page 1 now has 5 faults and leads the report.
	if a.Pages[0].Page != 1 || a.Pages[0].Faults != 5 || a.Pages[0].DiffBytes != 60 {
		t.Errorf("merged hottest = %+v", a.Pages[0])
	}
	// 17 runs over 60 bytes across 5 windows: avg run ~3.5 bytes — the
	// merged counters must re-trip the suspect heuristic.
	if !a.Pages[0].FalseSharingSuspect {
		t.Errorf("merged page 1 should be a false-sharing suspect: %+v", a.Pages[0])
	}

	hot := a.Hot(2)
	if len(hot) != 2 || hot[0].Page != 1 {
		t.Errorf("Hot(2) = %+v", hot)
	}
	if got := a.Hot(0); len(got) != 3 {
		t.Errorf("Hot(0) returned %d pages, want all 3", len(got))
	}
}

func TestHeatJSONShape(t *testing.T) {
	s := MustSegment(0, 512, 256)
	writeRound(t, s, map[int][]byte{0: {1, 2, 3}})
	raw, err := json.Marshal(s.Heat())
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{`"page_size"`, `"total_faults"`, `"total_diff_bytes"`, `"twins_made"`, `"pages"`, `"faults"`, `"diff_runs"`, `"diff_bytes"`, `"false_sharing_suspect"`} {
		if !strings.Contains(string(raw), key) {
			t.Errorf("heat JSON missing %s: %s", key, raw)
		}
	}
}
