package vmem

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func seg(t *testing.T, size, page int) *Segment {
	t.Helper()
	s, err := NewSegment(0x40058000, size, page)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewSegmentValidation(t *testing.T) {
	if _, err := NewSegment(0x1000, 100, 3000); err == nil {
		t.Error("non-power-of-two page size must fail")
	}
	if _, err := NewSegment(0x1000, 0, 4096); err == nil {
		t.Error("zero size must fail")
	}
	if _, err := NewSegment(0x1001, 100, 4096); err == nil {
		t.Error("unaligned base must fail")
	}
	s, err := NewSegment(0x2000, 100, 4096)
	if err != nil {
		t.Fatal(err)
	}
	if s.Size() != 4096 || s.Pages() != 1 {
		t.Errorf("size rounded to %d pages %d, want 4096/1", s.Size(), s.Pages())
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	s := seg(t, 10000, 4096)
	data := []byte("hello, dsm")
	if err := s.Write(5000, data); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, len(data))
	got, err := s.Read(5000, len(data), buf)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Errorf("read back %q, want %q", got, data)
	}
}

func TestBoundsChecks(t *testing.T) {
	s := seg(t, 4096, 4096)
	if err := s.Write(4090, make([]byte, 10)); err == nil {
		t.Error("overflowing write must fail")
	}
	if err := s.Write(-1, []byte{0}); err == nil {
		t.Error("negative offset must fail")
	}
	if _, err := s.Read(4096, 1, make([]byte, 1)); err == nil {
		t.Error("read past end must fail")
	}
	if _, err := s.View(0, 4097); err == nil {
		t.Error("view past end must fail")
	}
}

func TestAddrOffset(t *testing.T) {
	s := seg(t, 8192, 4096)
	if got := s.Addr(100); got != 0x40058064 {
		t.Errorf("Addr(100) = %#x", got)
	}
	off, err := s.Offset(0x40058064)
	if err != nil || off != 100 {
		t.Errorf("Offset = %d, %v", off, err)
	}
	if _, err := s.Offset(0x40057FFF); err == nil {
		t.Error("address below base must fail")
	}
	if _, err := s.Offset(s.Base() + uint64(s.Size())); err == nil {
		t.Error("address at end must fail")
	}
}

func TestFirstTouchFaultSemantics(t *testing.T) {
	s := seg(t, 3*4096, 4096)
	s.ProtectAll()
	var trapped []int
	s.OnFault(func(p int) { trapped = append(trapped, p) })

	// First write to page 1 traps once.
	if err := s.Write(4096+10, []byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if len(trapped) != 1 || trapped[0] != 1 {
		t.Fatalf("trapped = %v, want [1]", trapped)
	}
	// Second write to the same page must NOT trap again — the paper's
	// "subsequent writes ... will not trigger a segmentation fault".
	if err := s.Write(4096+500, []byte{4}); err != nil {
		t.Fatal(err)
	}
	if len(trapped) != 1 {
		t.Fatalf("second write re-trapped: %v", trapped)
	}
	if s.Faults() != 1 {
		t.Errorf("fault count = %d, want 1", s.Faults())
	}
	// A write spanning a page boundary traps each protected page it
	// touches.
	if err := s.Write(2*4096-2, []byte{9, 9, 9, 9}); err != nil {
		t.Fatal(err)
	}
	if len(trapped) != 2 || trapped[1] != 2 {
		t.Fatalf("span write trapped %v, want pages 1 then 2", trapped)
	}
}

func TestTwinPreservesOriginal(t *testing.T) {
	s := seg(t, 4096, 4096)
	if err := s.Write(0, []byte{10, 20, 30}); err != nil {
		t.Fatal(err)
	}
	s.ProtectAll()
	if err := s.Write(1, []byte{99}); err != nil {
		t.Fatal(err)
	}
	rs := s.DiffPage(0, DiffByte)
	if len(rs) != 1 || rs[0] != (Range{Start: 1, End: 2}) {
		t.Fatalf("diff = %v, want [{1 2}]", rs)
	}
}

func TestDiffDetectsExactRanges(t *testing.T) {
	s := seg(t, 2*4096, 4096)
	s.ProtectAll()
	// Three writes, two adjacent (coalesce), one separate page.
	writes := []struct {
		off int
		n   int
	}{{100, 8}, {108, 4}, {5000, 16}}
	for _, w := range writes {
		b := make([]byte, w.n)
		for i := range b {
			b[i] = 0xFF
		}
		if err := s.Write(w.off, b); err != nil {
			t.Fatal(err)
		}
	}
	got := s.Diff(DiffByte)
	want := []Range{{100, 112}, {5000, 5016}}
	if len(got) != len(want) {
		t.Fatalf("diff = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("range %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestDiffIgnoresSameValueWrites(t *testing.T) {
	// Writing the value a byte already has produces no diff — twin
	// comparison is value-based, like the paper's.
	s := seg(t, 4096, 4096)
	if err := s.Write(10, []byte{7}); err != nil {
		t.Fatal(err)
	}
	s.ProtectAll()
	if err := s.Write(10, []byte{7}); err != nil {
		t.Fatal(err)
	}
	if d := s.Diff(DiffByte); len(d) != 0 {
		t.Errorf("same-value write produced diff %v", d)
	}
	if s.Faults() != 1 {
		t.Errorf("same-value write must still fault once, got %d", s.Faults())
	}
}

func TestProtectAllResetsDirtyState(t *testing.T) {
	s := seg(t, 4096, 4096)
	s.ProtectAll()
	if err := s.Write(0, []byte{1}); err != nil {
		t.Fatal(err)
	}
	if len(s.DirtyPages()) != 1 {
		t.Fatal("page should be dirty")
	}
	s.ProtectAll()
	if len(s.DirtyPages()) != 0 {
		t.Error("ProtectAll must clear twins")
	}
	if !s.Protected(0) {
		t.Error("page must be re-protected")
	}
}

func TestRawWriteBypassesDetection(t *testing.T) {
	s := seg(t, 4096, 4096)
	s.ProtectAll()
	if err := s.RawWrite(0, []byte{42}); err != nil {
		t.Fatal(err)
	}
	if s.Faults() != 0 || len(s.DirtyPages()) != 0 {
		t.Error("RawWrite must not trap or dirty pages")
	}
	b, _ := s.View(0, 1)
	if b[0] != 42 {
		t.Error("RawWrite did not store")
	}
}

func TestDropTwinsKeepsPagesWritable(t *testing.T) {
	s := seg(t, 4096, 4096)
	s.ProtectAll()
	if err := s.Write(0, []byte{1}); err != nil {
		t.Fatal(err)
	}
	s.DropTwins()
	if len(s.DirtyPages()) != 0 {
		t.Error("DropTwins must clear dirty set")
	}
	if s.Protected(0) {
		t.Error("page must remain unprotected after DropTwins")
	}
	before := s.Faults()
	if err := s.Write(1, []byte{2}); err != nil {
		t.Fatal(err)
	}
	if s.Faults() != before {
		t.Error("write after DropTwins must not re-trap")
	}
}

func TestApplyRemoteInvisibleToDiff(t *testing.T) {
	s := seg(t, 2*4096, 4096)
	s.ProtectAll()
	// Local write dirties page 0.
	if err := s.Write(100, []byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	// Remote update lands on the same (twinned) page and on a clean page.
	if err := s.ApplyRemote(200, []byte{9, 9}); err != nil {
		t.Fatal(err)
	}
	if err := s.ApplyRemote(5000, []byte{7}); err != nil {
		t.Fatal(err)
	}
	d := s.Diff(DiffByte)
	if len(d) != 1 || d[0] != (Range{Start: 100, End: 103}) {
		t.Errorf("diff = %v, want only the local write", d)
	}
	// The remote data is really there.
	b, _ := s.View(200, 2)
	if b[0] != 9 || b[1] != 9 {
		t.Error("ApplyRemote did not store")
	}
	// And a later local overwrite of the remote bytes diffs against them.
	if err := s.Write(200, []byte{5, 9}); err != nil {
		t.Fatal(err)
	}
	d = s.Diff(DiffByte)
	want := []Range{{100, 103}, {200, 201}}
	if len(d) != 2 || d[0] != want[0] || d[1] != want[1] {
		t.Errorf("diff after overwrite = %v, want %v", d, want)
	}
}

func TestApplyRemoteSpanningPages(t *testing.T) {
	s := seg(t, 2*4096, 4096)
	s.ProtectAll()
	if err := s.Write(3800, []byte{1}); err != nil { // twin page 0
		t.Fatal(err)
	}
	if err := s.Write(4500, []byte{1}); err != nil { // twin page 1
		t.Fatal(err)
	}
	b := make([]byte, 400)
	for i := range b {
		b[i] = 0xCC
	}
	if err := s.ApplyRemote(3900, b); err != nil { // spans both pages
		t.Fatal(err)
	}
	// Only the two local writes diff; the 400 remote bytes (patched into
	// both twins) do not.
	d := s.Diff(DiffByte)
	want := []Range{{3800, 3801}, {4500, 4501}}
	if len(d) != 2 || d[0] != want[0] || d[1] != want[1] {
		t.Errorf("diff = %v, want %v", d, want)
	}
	// The remote bytes really landed on both pages.
	for _, off := range []int{3900, 4095, 4096, 4299} {
		v, _ := s.View(off, 1)
		if v[0] != 0xCC {
			t.Errorf("byte %d = %#x, want 0xCC", off, v[0])
		}
	}
}

func TestTwinBytes(t *testing.T) {
	s := seg(t, 4*4096, 4096)
	s.ProtectAll()
	if err := s.Write(0, []byte{1}); err != nil {
		t.Fatal(err)
	}
	if err := s.Write(3*4096, []byte{1}); err != nil {
		t.Fatal(err)
	}
	if got := s.TwinBytes(); got != 2*4096 {
		t.Errorf("TwinBytes = %d, want %d", got, 2*4096)
	}
}

func TestSolarisPageSize(t *testing.T) {
	// An 8 KiB-page segment dirties one page where a 4 KiB one would
	// dirty two.
	s8, _ := NewSegment(0x40000000, 16384, 8192)
	s4, _ := NewSegment(0x40000000, 16384, 4096)
	s8.ProtectAll()
	s4.ProtectAll()
	b := make([]byte, 6000)
	if err := s8.Write(0, b); err != nil {
		t.Fatal(err)
	}
	if err := s4.Write(0, b); err != nil {
		t.Fatal(err)
	}
	if s8.Faults() != 1 {
		t.Errorf("8K faults = %d, want 1", s8.Faults())
	}
	if s4.Faults() != 2 {
		t.Errorf("4K faults = %d, want 2", s4.Faults())
	}
}

// Property: byte-wise and word-wise diffing agree exactly for random write
// patterns.
func TestQuickDiffGranularitiesAgree(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		s := MustSegment(0x1000, 4096, 4096)
		init := make([]byte, 4096)
		r.Read(init)
		if err := s.Write(0, init); err != nil {
			return false
		}
		s.ProtectAll()
		for i := 0; i < 10; i++ {
			off := r.Intn(4000)
			n := 1 + r.Intn(90)
			b := make([]byte, n)
			r.Read(b)
			if err := s.Write(off, b); err != nil {
				return false
			}
		}
		a := s.Diff(DiffByte)
		b := s.Diff(DiffWord)
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: applying the diff ranges from a modified segment onto a copy of
// the original reconstructs the modified image (diff/apply is lossless).
func TestQuickDiffApplyReconstructs(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		const size = 2 * 4096
		s := MustSegment(0, size, 4096)
		orig := make([]byte, size)
		r.Read(orig)
		if err := s.Write(0, orig); err != nil {
			return false
		}
		s.ProtectAll()
		for i := 0; i < 8; i++ {
			off := r.Intn(size - 100)
			b := make([]byte, 1+r.Intn(99))
			r.Read(b)
			if err := s.Write(off, b); err != nil {
				return false
			}
		}
		// Reconstruct from original + diffs.
		recon := make([]byte, size)
		copy(recon, orig)
		for _, rg := range s.Diff(DiffByte) {
			v, err := s.View(rg.Start, rg.Len())
			if err != nil {
				return false
			}
			copy(recon[rg.Start:rg.End], v)
		}
		cur, err := s.View(0, size)
		if err != nil {
			return false
		}
		return bytes.Equal(recon, cur)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
