// Package vmem is the software MMU underneath the DSD layer.
//
// The paper detects writes with mprotect(): globals are write-protected, the
// first store to a page raises SIGSEGV, the handler twins the page and
// unprotects it so later stores proceed at full speed, and at release time
// each dirty page is diffed against its twin (Section 4). Go cannot
// mprotect its own heap, so this package reproduces the same mechanism in
// software: a Segment is a paged byte region with per-page write protection;
// stores go through Segment.Write, which performs the trap/twin/unprotect
// dance with identical first-touch semantics and cost structure (one trap
// and one page copy per dirty page, then raw stores).
package vmem

import (
	"fmt"
	"sort"
)

// FaultFunc observes write traps; the DSD layer uses it for accounting.
// page is the index of the page being unprotected.
type FaultFunc func(page int)

// Segment is one virtually-addressed, paged memory region. A Segment is
// owned by a single node goroutine; it is not safe for concurrent use, just
// as a process address space belongs to one process.
type Segment struct {
	base     uint64
	pageSize int
	data     []byte
	prot     []bool
	twins    [][]byte
	onFault  FaultFunc
	faults   uint64

	// Per-page heat accounting, cumulative since creation: write traps
	// taken, diff runs produced and diff bytes found on each page. A page
	// with many faults and many small diff runs is a false-sharing
	// suspect — distinct objects on one page ping-ponging the twin/diff
	// machinery.
	heatFaults    []uint64
	heatDiffRuns  []uint64
	heatDiffBytes []uint64
	twinsMade     uint64
}

// NewSegment creates a segment of the given size at virtual address base
// with the given page size. The size is rounded up to a whole number of
// pages. base must itself be page aligned, mirroring mmap semantics.
func NewSegment(base uint64, size, pageSize int) (*Segment, error) {
	if pageSize <= 0 || pageSize&(pageSize-1) != 0 {
		return nil, fmt.Errorf("vmem: page size %d is not a power of two", pageSize)
	}
	if size <= 0 {
		return nil, fmt.Errorf("vmem: segment size %d must be positive", size)
	}
	if base%uint64(pageSize) != 0 {
		return nil, fmt.Errorf("vmem: base %#x not aligned to page size %d", base, pageSize)
	}
	pages := (size + pageSize - 1) / pageSize
	return &Segment{
		base:          base,
		pageSize:      pageSize,
		data:          make([]byte, pages*pageSize),
		prot:          make([]bool, pages),
		twins:         make([][]byte, pages),
		heatFaults:    make([]uint64, pages),
		heatDiffRuns:  make([]uint64, pages),
		heatDiffBytes: make([]uint64, pages),
	}, nil
}

// MustSegment is NewSegment that panics on error, for statically correct
// construction sites.
func MustSegment(base uint64, size, pageSize int) *Segment {
	s, err := NewSegment(base, size, pageSize)
	if err != nil {
		panic(err)
	}
	return s
}

// Base returns the virtual base address.
func (s *Segment) Base() uint64 { return s.base }

// Size returns the segment length in bytes (a whole number of pages).
func (s *Segment) Size() int { return len(s.data) }

// PageSize returns the page size.
func (s *Segment) PageSize() int { return s.pageSize }

// Pages returns the number of pages.
func (s *Segment) Pages() int { return len(s.prot) }

// Faults returns the number of write traps taken since creation.
func (s *Segment) Faults() uint64 { return s.faults }

// OnFault registers a hook invoked on every write trap (after the twin is
// made). Pass nil to remove it.
func (s *Segment) OnFault(f FaultFunc) { s.onFault = f }

// Contains reports whether the virtual address range [addr, addr+n) lies
// inside the segment.
func (s *Segment) Contains(addr uint64, n int) bool {
	return addr >= s.base && addr+uint64(n) <= s.base+uint64(len(s.data))
}

// Addr translates a segment offset to a virtual address.
func (s *Segment) Addr(off int) uint64 { return s.base + uint64(off) }

// Offset translates a virtual address to a segment offset; it returns an
// error when the address is outside the segment.
func (s *Segment) Offset(addr uint64) (int, error) {
	if addr < s.base || addr >= s.base+uint64(len(s.data)) {
		return 0, fmt.Errorf("vmem: address %#x outside segment [%#x,%#x)", addr, s.base, s.base+uint64(len(s.data)))
	}
	return int(addr - s.base), nil
}

// ProtectAll write-protects every page and discards all twins. This is the
// DSD's "mprotect the globals" step at acquire time.
func (s *Segment) ProtectAll() {
	for i := range s.prot {
		s.prot[i] = true
		s.twins[i] = nil
	}
}

// UnprotectAll removes write protection from every page without touching
// twins; used when a node wants raw access (e.g. while initially loading
// data before sharing begins).
func (s *Segment) UnprotectAll() {
	for i := range s.prot {
		s.prot[i] = false
	}
}

// Protected reports whether the page is currently write-protected.
func (s *Segment) Protected(page int) bool { return s.prot[page] }

// Read copies n bytes at offset off into buf (which must be at least n
// long) and returns buf[:n]. Reads never fault: the paper protects pages
// against writes only.
func (s *Segment) Read(off, n int, buf []byte) ([]byte, error) {
	if err := s.check(off, n); err != nil {
		return nil, err
	}
	copy(buf[:n], s.data[off:off+n])
	return buf[:n], nil
}

// View returns a read-only view of n bytes at off without copying. The
// caller must not mutate it (mutations would bypass write detection; use
// Write). It remains valid until the segment is garbage.
func (s *Segment) View(off, n int) ([]byte, error) {
	if err := s.check(off, n); err != nil {
		return nil, err
	}
	return s.data[off : off+n : off+n], nil
}

// Write stores b at offset off, taking a write trap on the first store to
// each protected page: the page is twinned, unprotected, and the fault hook
// runs — exactly the SIGSEGV-handler protocol of the paper.
func (s *Segment) Write(off int, b []byte) error {
	if err := s.check(off, len(b)); err != nil {
		return err
	}
	first := off / s.pageSize
	last := (off + len(b) - 1) / s.pageSize
	for p := first; p <= last; p++ {
		if s.prot[p] {
			s.trap(p)
		}
	}
	copy(s.data[off:], b)
	return nil
}

// trap performs the fault protocol on one page: twin, unprotect, notify.
func (s *Segment) trap(p int) {
	twin := make([]byte, s.pageSize)
	copy(twin, s.data[p*s.pageSize:(p+1)*s.pageSize])
	s.twins[p] = twin
	s.prot[p] = false
	s.faults++
	s.heatFaults[p]++
	s.twinsMade++
	if s.onFault != nil {
		s.onFault(p)
	}
}

// RawWrite stores without the protection protocol. It is used by the DSD
// when applying remote updates to the local copy: those bytes are already
// known to both sides and must not be re-detected as local writes.
func (s *Segment) RawWrite(off int, b []byte) error {
	if err := s.check(off, len(b)); err != nil {
		return err
	}
	copy(s.data[off:], b)
	return nil
}

// ApplyRemote stores an incoming DSD update. Like RawWrite it takes no
// write trap, but it additionally patches any existing twin of the touched
// pages so the remote bytes do not show up in this node's next diff: they
// are the home's data, not local writes, and echoing them back would inflate
// every release.
func (s *Segment) ApplyRemote(off int, b []byte) error {
	if err := s.check(off, len(b)); err != nil {
		return err
	}
	copy(s.data[off:], b)
	first := off / s.pageSize
	last := (off + len(b) - 1) / s.pageSize
	for p := first; p <= last; p++ {
		tw := s.twins[p]
		if tw == nil {
			continue
		}
		pageStart := p * s.pageSize
		lo, hi := off, off+len(b)
		if lo < pageStart {
			lo = pageStart
		}
		if end := pageStart + s.pageSize; hi > end {
			hi = end
		}
		copy(tw[lo-pageStart:], b[lo-off:hi-off])
	}
	return nil
}

func (s *Segment) check(off, n int) error {
	if off < 0 || n < 0 || off+n > len(s.data) {
		return fmt.Errorf("vmem: range [%d,%d) outside segment of %d bytes", off, off+n, len(s.data))
	}
	return nil
}

// DirtyPages returns the indexes of pages written since the last
// ProtectAll, in ascending order.
func (s *Segment) DirtyPages() []int {
	var out []int
	for i, tw := range s.twins {
		if tw != nil {
			out = append(out, i)
		}
	}
	sort.Ints(out)
	return out
}

// Range is a half-open byte span [Start, End) of segment offsets.
type Range struct {
	// Start is the first offset in the span.
	Start int
	// End is one past the last offset.
	End int
}

// Len returns the span length.
func (r Range) Len() int { return r.End - r.Start }

// DiffGranularity selects how the twin comparison scans memory; an ablation
// knob (DESIGN.md §5). Both produce byte-exact ranges; word-wise scans
// whole words first and refines edges.
type DiffGranularity int

const (
	// DiffByte compares byte by byte — the straightforward scheme the
	// paper describes ("each byte on the dirty page must be compared to
	// its corresponding byte on the original page", Section 4.2).
	DiffByte DiffGranularity = iota
	// DiffWord compares 8-byte words and refines edges byte-wise.
	DiffWord
)

// DiffPage compares a dirty page against its twin and returns the modified
// byte ranges as segment offsets. A page without a twin yields nil. This is
// the t_index raw material: the DSD maps these ranges through the index
// table.
func (s *Segment) DiffPage(page int, g DiffGranularity) []Range {
	tw := s.twins[page]
	if tw == nil {
		return nil
	}
	base := page * s.pageSize
	cur := s.data[base : base+s.pageSize]
	var out []Range
	switch g {
	case DiffWord:
		out = diffWord(cur, tw, base)
	default:
		out = diffByte(cur, tw, base)
	}
	s.heatDiffRuns[page] += uint64(len(out))
	for _, r := range out {
		s.heatDiffBytes[page] += uint64(r.Len())
	}
	return out
}

func diffByte(cur, tw []byte, base int) []Range {
	var out []Range
	i := 0
	n := len(cur)
	for i < n {
		if cur[i] == tw[i] {
			i++
			continue
		}
		start := i
		for i < n && cur[i] != tw[i] {
			i++
		}
		out = append(out, Range{Start: base + start, End: base + i})
	}
	return out
}

func diffWord(cur, tw []byte, base int) []Range {
	var out []Range
	n := len(cur)
	i := 0
	inRun := false
	runStart := 0
	flush := func(end int) {
		if inRun {
			out = append(out, Range{Start: base + runStart, End: base + end})
			inRun = false
		}
	}
	for i < n {
		w := 8
		if n-i < 8 {
			w = n - i
		}
		same := true
		for j := 0; j < w; j++ {
			if cur[i+j] != tw[i+j] {
				same = false
				break
			}
		}
		if same {
			flush(i)
			i += w
			continue
		}
		// Refine the word byte-wise.
		for j := 0; j < w; j++ {
			if cur[i+j] != tw[i+j] {
				if !inRun {
					inRun = true
					runStart = i + j
				}
			} else {
				flush(i + j)
			}
		}
		i += w
	}
	flush(n)
	return out
}

// Diff runs DiffPage over every dirty page and returns all modified ranges
// in ascending order, merging runs that touch across page boundaries.
func (s *Segment) Diff(g DiffGranularity) []Range {
	var out []Range
	for _, p := range s.DirtyPages() {
		rs := s.DiffPage(p, g)
		for _, r := range rs {
			if len(out) > 0 && out[len(out)-1].End == r.Start {
				out[len(out)-1].End = r.End
			} else {
				out = append(out, r)
			}
		}
	}
	return out
}

// DropTwins discards all twins without re-protecting; used after a diff has
// been consumed when the pages should stay writable.
func (s *Segment) DropTwins() {
	for i := range s.twins {
		s.twins[i] = nil
	}
}

// TwinBytes returns the number of bytes currently held in twins, a measure
// of the memory overhead of the twin/diff scheme.
func (s *Segment) TwinBytes() int {
	n := 0
	for _, tw := range s.twins {
		n += len(tw)
	}
	return n
}
