package vmem

import "sort"

// PageHeat is one page's cumulative write-detection activity: how often
// it trapped, how many diff runs its twin comparisons produced, and how
// many bytes those runs covered. The counters identify hot pages — and,
// via the run-size shape, probable false sharing.
type PageHeat struct {
	// Page is the page index within the segment.
	Page int `json:"page"`
	// Faults is the number of write traps the page took.
	Faults uint64 `json:"faults"`
	// DiffRuns is the number of modified-byte runs its diffs produced.
	DiffRuns uint64 `json:"diff_runs"`
	// DiffBytes is the total modified bytes its diffs found.
	DiffBytes uint64 `json:"diff_bytes"`
	// FalseSharingSuspect marks a fragmented-write page: repeatedly
	// trapped, diffed into several distinct runs per window on average,
	// yet with only a small fraction of the page actually modified —
	// the signature of unrelated objects sharing the page.
	FalseSharingSuspect bool `json:"false_sharing_suspect"`
}

// HeatReport is a segment's (or a whole node's, after Merge) page-heat
// profile; it marshals directly to JSON for the /heat endpoint.
type HeatReport struct {
	// PageSize is the page size the counters were collected under.
	PageSize int `json:"page_size"`
	// TotalFaults is the sum of Faults over all pages.
	TotalFaults uint64 `json:"total_faults"`
	// TotalDiffBytes is the sum of DiffBytes over all pages.
	TotalDiffBytes uint64 `json:"total_diff_bytes"`
	// TwinsMade is the number of twin pages ever copied, the memory-churn
	// half of the twin/diff scheme's cost.
	TwinsMade uint64 `json:"twins_made"`
	// Pages lists every page with activity, hottest (most faults, then
	// most diff runs) first.
	Pages []PageHeat `json:"pages"`
}

// falseSharingSuspect applies the fragmentation heuristic: at least two
// windows (faults), more than two runs per window on average, and an
// average run far smaller than the page.
func falseSharingSuspect(h PageHeat, pageSize int) bool {
	if h.Faults < 2 || h.DiffRuns < 2*h.Faults || h.DiffRuns == 0 {
		return false
	}
	avgRun := float64(h.DiffBytes) / float64(h.DiffRuns)
	return avgRun < float64(pageSize)/8
}

// sortHeat orders hottest-first.
func sortHeat(pages []PageHeat) {
	sort.SliceStable(pages, func(i, j int) bool {
		if pages[i].Faults != pages[j].Faults {
			return pages[i].Faults > pages[j].Faults
		}
		if pages[i].DiffRuns != pages[j].DiffRuns {
			return pages[i].DiffRuns > pages[j].DiffRuns
		}
		return pages[i].Page < pages[j].Page
	})
}

// Heat returns the segment's page-heat report: every page that ever
// trapped or diffed, hottest first, with false-sharing suspects marked.
func (s *Segment) Heat() HeatReport {
	r := HeatReport{PageSize: s.pageSize, TwinsMade: s.twinsMade}
	for p := range s.heatFaults {
		h := PageHeat{
			Page:      p,
			Faults:    s.heatFaults[p],
			DiffRuns:  s.heatDiffRuns[p],
			DiffBytes: s.heatDiffBytes[p],
		}
		if h.Faults == 0 && h.DiffRuns == 0 {
			continue
		}
		h.FalseSharingSuspect = falseSharingSuspect(h, s.pageSize)
		r.TotalFaults += h.Faults
		r.TotalDiffBytes += h.DiffBytes
		r.Pages = append(r.Pages, h)
	}
	sortHeat(r.Pages)
	return r
}

// Merge folds another report into r page-wise — the cluster roll-up when
// several replicas share one page size. Suspect flags are recomputed on
// the merged counters.
func (r *HeatReport) Merge(o HeatReport) {
	if r.PageSize == 0 {
		r.PageSize = o.PageSize
	}
	byPage := make(map[int]int, len(r.Pages))
	for i, p := range r.Pages {
		byPage[p.Page] = i
	}
	for _, p := range o.Pages {
		if i, ok := byPage[p.Page]; ok {
			r.Pages[i].Faults += p.Faults
			r.Pages[i].DiffRuns += p.DiffRuns
			r.Pages[i].DiffBytes += p.DiffBytes
		} else {
			byPage[p.Page] = len(r.Pages)
			r.Pages = append(r.Pages, p)
		}
	}
	r.TotalFaults += o.TotalFaults
	r.TotalDiffBytes += o.TotalDiffBytes
	r.TwinsMade += o.TwinsMade
	for i := range r.Pages {
		r.Pages[i].FalseSharingSuspect = falseSharingSuspect(r.Pages[i], r.PageSize)
	}
	sortHeat(r.Pages)
}

// Hot returns the k hottest pages (all of them when k <= 0 or exceeds
// the page count).
func (r HeatReport) Hot(k int) []PageHeat {
	if k <= 0 || k > len(r.Pages) {
		k = len(r.Pages)
	}
	out := make([]PageHeat, k)
	copy(out, r.Pages[:k])
	return out
}
