package vmem

import "testing"

// Twin/diff machinery costs: the raw material of t_index.

func BenchmarkFirstTouchTrap(b *testing.B) {
	s := MustSegment(0, 1<<20, 4096)
	payload := []byte{1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		s.ProtectAll()
		b.StartTimer()
		if err := s.Write((i%256)*4096, payload); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkUnprotectedWrite(b *testing.B) {
	s := MustSegment(0, 1<<20, 4096)
	payload := make([]byte, 64)
	b.SetBytes(64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.Write((i*64)%(1<<20-64), payload); err != nil {
			b.Fatal(err)
		}
	}
}

func benchDiff(b *testing.B, g DiffGranularity, dirtyBytes int) {
	const size = 1 << 20
	s := MustSegment(0, size, 4096)
	s.ProtectAll()
	payload := make([]byte, 64)
	for i := range payload {
		payload[i] = 0xFF
	}
	for off := 0; off < dirtyBytes; off += 4096 {
		if err := s.Write(off, payload); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(len(s.DirtyPages()) * 4096))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if d := s.Diff(g); len(d) == 0 {
			b.Fatal("no diffs")
		}
	}
}

func BenchmarkDiffByteSparse(b *testing.B) { benchDiff(b, DiffByte, 64*1024) }
func BenchmarkDiffWordSparse(b *testing.B) { benchDiff(b, DiffWord, 64*1024) }
func BenchmarkDiffByteDense(b *testing.B)  { benchDiff(b, DiffByte, 1<<20) }
func BenchmarkDiffWordDense(b *testing.B)  { benchDiff(b, DiffWord, 1<<20) }

func BenchmarkProtectAll(b *testing.B) {
	s := MustSegment(0, 1<<22, 4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.ProtectAll()
	}
}
