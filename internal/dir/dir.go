// Package dir implements the multi-home sharded directory: the global
// segment is partitioned across N home shards, each a full dsd.Home that
// is authoritative only for the index-table entries and mutexes the
// directory currently maps to it. Ownership is not static — each shard
// aggregates the page-heat samples threads piggyback on their releases,
// and entries whose heat concentrates on one rank are re-homed to that
// rank's affinity shard at a release boundary (dsd.TransferEntry), with
// the directory publishing the new owner atomically under both shards'
// mutexes.
//
// Threads never learn about shards: each worker talks to a per-thread
// Proxy over the ordinary DSD wire protocol, and the proxy splits every
// release by entry ownership, gathers every acquire from all shards, and
// chases KindDirForward corrections when its ownership cache goes stale —
// at most one extra hop per stale mapping, because the correction carries
// the authoritative owner and version.
package dir

import (
	"fmt"
	"sync"

	"hetdsm/internal/wire"
)

// mapping is one versioned ownership record. Versions bump on every
// migration, letting caches reject out-of-order corrections.
type mapping struct {
	shard int32
	ver   uint64
}

// Directory is the authoritative page/object → home-shard map. It
// implements dsd.DirectoryView for the shards, which consult it with
// their own mutex held: Directory methods must therefore never call into
// a Home (home.mu before dir.mu is the global lock order).
type Directory struct {
	mu      sync.RWMutex
	nshards int32
	entries map[int]mapping
	locks   map[int32]mapping
	// migrations counts published ownership flips (entries and locks).
	migrations     uint64
	lockMigrations uint64
}

// NewDirectory builds the startup directory: entry e lives on shard
// e % nshards, lock l on shard l % nshards — the static hash every
// client cache can derive without asking anyone.
func NewDirectory(nshards int) *Directory {
	if nshards <= 0 {
		nshards = 1
	}
	return &Directory{
		nshards: int32(nshards),
		entries: make(map[int]mapping),
		locks:   make(map[int32]mapping),
	}
}

// Shards returns the shard count.
func (d *Directory) Shards() int { return int(d.nshards) }

// StaticEntryOwner is the startup hash: entry e → shard e % nshards.
func StaticEntryOwner(entry, nshards int) int32 {
	if nshards <= 0 {
		return 0
	}
	return int32(entry % nshards)
}

// StaticLockOwner is the startup hash for mutexes.
func StaticLockOwner(idx int32, nshards int) int32 {
	if nshards <= 0 || idx < 0 {
		return 0
	}
	return int32(int(idx) % nshards)
}

// BarrierOwner maps barrier idx to its serving shard. Barriers gather ALL
// threads, so co-locating them with data buys nothing; they stay on their
// static shard forever, which keeps generation state trivially consistent.
func BarrierOwner(idx int32, nshards int) int32 { return StaticLockOwner(idx, nshards) }

// EntryOwner returns the shard owning index-table entry e and the
// mapping's version (dsd.DirectoryView).
func (d *Directory) EntryOwner(entry int) (int32, uint64) {
	d.mu.RLock()
	m, ok := d.entries[entry]
	d.mu.RUnlock()
	if !ok {
		return StaticEntryOwner(entry, int(d.nshards)), 0
	}
	return m.shard, m.ver
}

// LockOwner returns the shard owning mutex idx and the mapping's version
// (dsd.DirectoryView).
func (d *Directory) LockOwner(idx int32) (int32, uint64) {
	d.mu.RLock()
	m, ok := d.locks[idx]
	d.mu.RUnlock()
	if !ok {
		return StaticLockOwner(idx, int(d.nshards)), 0
	}
	return m.shard, m.ver
}

// PublishEntry flips entry ownership to shard, bumping the version. It is
// called from dsd.TransferEntry's publish callback with both home mutexes
// held, which is what makes a migration atomic against releases.
func (d *Directory) PublishEntry(entry int, shard int32) {
	if shard < 0 || shard >= d.nshards {
		panic(fmt.Sprintf("dir: publish entry %d to invalid shard %d", entry, shard))
	}
	d.mu.Lock()
	m := d.entries[entry]
	if m.ver == 0 {
		m.shard = StaticEntryOwner(entry, int(d.nshards))
	}
	if m.shard != shard {
		d.migrations++
	}
	d.entries[entry] = mapping{shard: shard, ver: m.ver + 1}
	d.mu.Unlock()
}

// PublishLock flips mutex ownership to shard, bumping the version; called
// from Home.MigrateLockIf's publish callback under the owning home's mutex.
func (d *Directory) PublishLock(idx, shard int32) {
	if shard < 0 || shard >= d.nshards {
		panic(fmt.Sprintf("dir: publish lock %d to invalid shard %d", idx, shard))
	}
	d.mu.Lock()
	m := d.locks[idx]
	if m.ver == 0 {
		m.shard = StaticLockOwner(idx, int(d.nshards))
	}
	if m.shard != shard {
		d.lockMigrations++
	}
	d.locks[idx] = mapping{shard: shard, ver: m.ver + 1}
	d.mu.Unlock()
}

// Migrations returns how many entry re-homings have been published.
func (d *Directory) Migrations() uint64 {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.migrations
}

// LockMigrations returns how many lock re-homings have been published.
func (d *Directory) LockMigrations() uint64 {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.lockMigrations
}

// MapEntry is one row of a directory snapshot.
type MapEntry struct {
	Object int32  `json:"object"`
	Lock   bool   `json:"lock,omitempty"`
	Shard  int32  `json:"shard"`
	Ver    uint64 `json:"ver"`
}

// Snapshot lists every non-static mapping plus the static defaults for
// the first nentries entries — the /stats shard map.
func (d *Directory) Snapshot(nentries int) []MapEntry {
	d.mu.RLock()
	defer d.mu.RUnlock()
	out := make([]MapEntry, 0, nentries+len(d.locks))
	for e := 0; e < nentries; e++ {
		m, ok := d.entries[e]
		if !ok {
			m = mapping{shard: StaticEntryOwner(e, int(d.nshards))}
		}
		out = append(out, MapEntry{Object: int32(e), Shard: m.shard, Ver: m.ver})
	}
	for idx, m := range d.locks {
		out = append(out, MapEntry{Object: idx, Lock: true, Shard: m.shard, Ver: m.ver})
	}
	return out
}

// cache is a proxy-side ownership cache: the static hash until corrected,
// then whatever the latest (by version) KindDirForward said. It is the
// mechanism behind the at-most-one-hop guarantee — a correction carries
// the authoritative mapping, so the retry lands on the owner.
type cache struct {
	nshards int
	entries map[int32]mapping
	locks   map[int32]mapping
	// staleHits counts corrections that actually changed a cached mapping.
	staleHits uint64
}

func newCache(nshards int) *cache {
	return &cache{
		nshards: nshards,
		entries: make(map[int32]mapping),
		locks:   make(map[int32]mapping),
	}
}

func (c *cache) entryOwner(entry int32) int32 {
	if m, ok := c.entries[entry]; ok {
		return m.shard
	}
	return StaticEntryOwner(int(entry), c.nshards)
}

func (c *cache) lockOwner(idx int32) int32 {
	if m, ok := c.locks[idx]; ok {
		return m.shard
	}
	return StaticLockOwner(idx, c.nshards)
}

// correct applies a KindDirForward's corrections; only newer versions win,
// so a late correction from a slow shard cannot roll the cache backwards.
// Returns how many mappings actually changed.
func (c *cache) correct(dir []wire.DirEntry) int {
	changed := 0
	for _, de := range dir {
		tbl := c.entries
		if de.Lock {
			tbl = c.locks
		}
		old, ok := tbl[de.Object]
		if ok && old.ver >= de.Ver {
			continue
		}
		if !ok {
			var static int32
			if de.Lock {
				static = StaticLockOwner(de.Object, c.nshards)
			} else {
				static = StaticEntryOwner(int(de.Object), c.nshards)
			}
			old = mapping{shard: static}
		}
		tbl[de.Object] = mapping{shard: de.Shard, ver: de.Ver}
		if old.shard != de.Shard {
			changed++
		}
	}
	c.staleHits += uint64(changed)
	return changed
}
