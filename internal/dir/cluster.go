package dir

import (
	"fmt"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"hetdsm/internal/dsd"
	"hetdsm/internal/flight"
	"hetdsm/internal/indextable"
	"hetdsm/internal/platform"
	"hetdsm/internal/tag"
	"hetdsm/internal/telemetry"
	"hetdsm/internal/transport"
	"hetdsm/internal/wal"
)

// Config configures a sharded home cluster.
type Config struct {
	// Shards is the number of home shards (at least 1).
	Shards int
	// MigrateThreshold is the per-entry fault total that triggers a
	// re-homing plan; 0 disables heat-driven migration (ForceMigrate still
	// works).
	MigrateThreshold uint64
	// Opts configures every shard home (Base, Protocol, Metrics, Trace,
	// ...). Directory, Shard, HeatSink and Epoch are overridden per shard.
	Opts dsd.Options
	// Network carries proxy-to-shard traffic; nil uses a private in-process
	// network. The simulator passes its fault-injecting network here.
	Network transport.Network
	// Backoff is the proxy-to-shard reconnect policy; a zero Attempts field
	// selects transport.DefaultBackoff. Each (rank, shard) conn derives its
	// own jitter seed from Backoff.Seed, keeping runs deterministic.
	Backoff transport.Backoff
	// WALDir, when non-empty, gives each shard a write-ahead log under
	// WALDir/shard<i>. Required for RestartShard.
	WALDir string
}

// Cluster is a multi-home sharded directory deployment: N dsd.Home shards
// over the same GThV layout, each authoritative for the entries and locks
// the Directory maps to it, plus the heat tracker and migrator that re-home
// hot entries at release boundaries. Threads attach through per-thread
// proxies (NewThread, ServeGateway) and observe a single logical home.
type Cluster struct {
	gthv     tag.Struct
	plat     *platform.Platform
	nthreads int
	cfg      Config

	dir  *Directory
	heat *heatTracker
	nw   transport.Network
	// addrs[i] is shard i's listen address on nw.
	addrs []string

	// migLock orders migrations against proxy acquire gathers: a transfer
	// holds the write side, a gather holds the read side across its sync
	// round, so entries cannot slide between shards mid-gather.
	migLock sync.RWMutex
	// migMu serializes migrations against shard restarts without blocking
	// gathers (which only take migLock.RLock). Never acquired while holding
	// migLock.
	migMu sync.Mutex

	smu   sync.Mutex
	homes []*dsd.Home
	wals  []*wal.Log

	forwards   atomic.Uint64
	staleHits  atomic.Uint64
	syncRounds atomic.Uint64

	m clusterMetrics

	migStop chan struct{}
	migDone chan struct{}
}

// clusterMetrics mirrors the cluster's counters into a telemetry registry
// when one is configured (dsm_dir_* family).
type clusterMetrics struct {
	enabled        bool
	migrations     *telemetry.Counter
	lockMigrations *telemetry.Counter
	forwards       *telemetry.Counter
	staleHits      *telemetry.Counter
	syncRounds     *telemetry.Counter
	release        []*telemetry.Histogram
}

func newClusterMetrics(reg *telemetry.Registry, shards int) clusterMetrics {
	if reg == nil {
		return clusterMetrics{}
	}
	m := clusterMetrics{
		enabled:        true,
		migrations:     reg.Counter("dsm_dir_migrations", "Entry re-homings published by the sharded directory."),
		lockMigrations: reg.Counter("dsm_dir_lock_migrations", "Lock ownership co-location moves."),
		forwards:       reg.Counter("dsm_dir_forwards", "Requests bounced with a directory forward."),
		staleHits:      reg.Counter("dsm_dir_stale_cache_hits", "Proxy ownership-cache entries corrected by forwards."),
		syncRounds:     reg.Counter("dsm_dir_sync_rounds", "Per-shard sync rounds run during acquire gathers."),
	}
	m.release = make([]*telemetry.Histogram, shards)
	for i := range m.release {
		m.release[i] = reg.Histogram(fmt.Sprintf("dsm_dir_shard%d_release_seconds", i),
			"Release round-trip latency against this shard, as seen by proxies.")
	}
	return m
}

// NewCluster builds and starts the shard fleet. Every shard serves the full
// GThV layout on platform p but owns only its directory slice; they all use
// the same base address, so checkpoint images stitch byte-compatibly.
func NewCluster(gthv tag.Struct, p *platform.Platform, nthreads int, cfg Config) (*Cluster, error) {
	if cfg.Shards <= 0 {
		cfg.Shards = 1
	}
	cl := &Cluster{
		gthv:     gthv,
		plat:     p,
		nthreads: nthreads,
		cfg:      cfg,
		dir:      NewDirectory(cfg.Shards),
		heat:     newHeatTracker(gthv, cfg.Shards, cfg.MigrateThreshold),
		nw:       cfg.Network,
		m:        newClusterMetrics(cfg.Opts.Metrics, cfg.Shards),
	}
	if cl.nw == nil {
		cl.nw = transport.NewInproc()
	}
	cl.addrs = make([]string, cfg.Shards)
	cl.homes = make([]*dsd.Home, cfg.Shards)
	cl.wals = make([]*wal.Log, cfg.Shards)
	for i := 0; i < cfg.Shards; i++ {
		cl.addrs[i] = fmt.Sprintf("dirshard%d", i)
		opts := cl.shardOpts(i)
		if cfg.WALDir != "" {
			l, err := wal.Open(wal.Options{Dir: cl.walDir(i), GThV: gthv, Metrics: cfg.Opts.Metrics,
				Spans: cfg.Opts.Spans, Node: fmt.Sprintf("wal%d", i), Flight: cfg.Opts.Flight})
			if err != nil {
				return nil, err
			}
			opts.Epoch = l.Epoch()
			cl.wals[i] = l
		}
		h, err := dsd.NewHome(gthv, p, nthreads, opts)
		if err != nil {
			return nil, err
		}
		if cl.wals[i] != nil {
			if err := h.StartReplication(cl.wals[i]); err != nil {
				return nil, err
			}
		}
		lst, err := cl.nw.Listen(cl.addrs[i])
		if err != nil {
			return nil, err
		}
		go h.Serve(lst)
		cl.homes[i] = h
	}
	return cl, nil
}

// shardOpts derives shard i's home options from the shared template.
func (cl *Cluster) shardOpts(i int) dsd.Options {
	opts := cl.cfg.Opts
	opts.Directory = cl.dir
	opts.Shard = int32(i)
	// Heat is intercepted at the proxies (which see pre-split releases);
	// the shards never aggregate it themselves.
	opts.HeatSink = nil
	return opts
}

func (cl *Cluster) walDir(i int) string {
	return filepath.Join(cl.cfg.WALDir, fmt.Sprintf("shard%d", i))
}

// backoffFor derives the reconnect policy for one proxy-to-shard conn,
// decorrelating jitter across (rank, shard) pairs while staying
// deterministic for a fixed Config.Backoff.Seed.
func (cl *Cluster) backoffFor(rank int32, shard int) transport.Backoff {
	policy := cl.cfg.Backoff
	if policy.Attempts == 0 {
		policy = transport.DefaultBackoff()
	}
	policy.Seed = cl.cfg.Backoff.Seed*1000003 + int64(rank)*31 + int64(shard) + 1
	return policy
}

// Directory returns the authoritative ownership map.
func (cl *Cluster) Directory() *Directory { return cl.dir }

// Shards returns the shard count.
func (cl *Cluster) Shards() int { return len(cl.addrs) }

// Home returns shard i's current home incarnation.
func (cl *Cluster) Home(i int) *dsd.Home {
	cl.smu.Lock()
	defer cl.smu.Unlock()
	return cl.homes[i]
}

func (cl *Cluster) noteForward(stale int) {
	cl.forwards.Add(1)
	cl.staleHits.Add(uint64(stale))
	if cl.m.enabled {
		cl.m.forwards.Inc()
		cl.m.staleHits.Add(uint64(stale))
	}
}

func (cl *Cluster) noteSync() {
	cl.syncRounds.Add(1)
	if cl.m.enabled {
		cl.m.syncRounds.Inc()
	}
}

func (cl *Cluster) observeRelease(shard int, d time.Duration) {
	if cl.m.enabled && shard < len(cl.m.release) {
		cl.m.release[shard].Observe(d.Seconds())
	}
}

// NewThread attaches a worker thread over an in-process pipe through a
// fresh proxy — the sharded counterpart of Home.LocalThread.
func (cl *Cluster) NewThread(rank int32, p *platform.Platform, opts dsd.Options) (*dsd.Thread, error) {
	a, b := transport.Pipe()
	go cl.serveProxy(b)
	return dsd.Connect(a, p, rank, cl.gthv, opts)
}

// ServeGateway accepts thread connections on l, running a proxy per
// connection, until the listener closes. Remote workers dial the gateway
// exactly as they would a single home.
func (cl *Cluster) ServeGateway(l transport.Listener) {
	for {
		c, err := l.Accept()
		if err != nil {
			return
		}
		go cl.serveProxy(c)
	}
}

// Wait blocks until every thread has joined every shard. It re-reads the
// current home incarnation while waiting, so a shard crash-restarted during
// the run (whose original done channel will never close) does not wedge it.
func (cl *Cluster) Wait() {
	for i := range cl.addrs {
		for {
			h := cl.Home(i)
			select {
			case <-h.Done():
			case <-time.After(5 * time.Millisecond):
				continue
			}
			break
		}
	}
}

// Close stops the migrator, shards and WALs.
func (cl *Cluster) Close() {
	cl.StopMigrator()
	cl.smu.Lock()
	homes := append([]*dsd.Home(nil), cl.homes...)
	wals := append([]*wal.Log(nil), cl.wals...)
	cl.smu.Unlock()
	for _, h := range homes {
		h.Close()
	}
	for _, l := range wals {
		if l != nil {
			l.Close()
		}
	}
}

// ForceMigrate re-homes one entry to dst immediately, regardless of heat —
// the chaos profiles and tests drive migration timing with it.
func (cl *Cluster) ForceMigrate(entry int, dst int32) error {
	cl.migMu.Lock()
	defer cl.migMu.Unlock()
	return cl.migrateEntry(entry, dst)
}

// migrateEntry transfers entry to dst under the migration write-lock,
// re-reading the current owner inside it so concurrent plans for the same
// entry serialize cleanly. Caller holds migMu.
func (cl *Cluster) migrateEntry(entry int, dst int32) error {
	if dst < 0 || int(dst) >= cl.Shards() {
		return fmt.Errorf("dir: migrate entry %d to invalid shard %d", entry, dst)
	}
	cl.migLock.Lock()
	defer cl.migLock.Unlock()
	cur, _ := cl.dir.EntryOwner(entry)
	if cur == dst {
		return nil
	}
	src, to := cl.Home(int(cur)), cl.Home(int(dst))
	if err := dsd.TransferEntry(src, to, entry, func() { cl.dir.PublishEntry(entry, dst) }); err != nil {
		return err
	}
	cl.cfg.Opts.Flight.Note("dir", flight.KindMigrate, cur, uint64(entry), uint64(uint32(dst)))
	if cl.m.enabled {
		cl.m.migrations.Inc()
	}
	return nil
}

// PumpMigrations runs one planner pass: every entry whose heat crossed the
// threshold is re-homed to its hottest rank's affinity shard, then each
// tracked lock chases the plurality owner of the entries its critical
// sections touch. Returns how many entry transfers were attempted.
func (cl *Cluster) PumpMigrations() (int, error) {
	cl.migMu.Lock()
	defer cl.migMu.Unlock()
	plans := cl.heat.plan()
	moved := 0
	for _, pl := range plans {
		if err := cl.migrateEntry(pl.entry, pl.dst); err != nil {
			return moved, err
		}
		moved++
	}
	for _, lk := range cl.heat.locksTracked() {
		dst := cl.heat.lockPlanFor(lk, func(entry int) int32 {
			s, _ := cl.dir.EntryOwner(entry)
			return s
		})
		if dst < 0 {
			continue
		}
		cur, _ := cl.dir.LockOwner(lk)
		if cur == dst {
			continue
		}
		if cl.Home(int(cur)).MigrateLockIf(lk, func() { cl.dir.PublishLock(lk, dst) }) && cl.m.enabled {
			cl.m.lockMigrations.Inc()
		}
	}
	return moved, nil
}

// StartMigrator pumps the planner every interval until StopMigrator.
func (cl *Cluster) StartMigrator(interval time.Duration) {
	if cl.migStop != nil {
		return
	}
	cl.migStop = make(chan struct{})
	cl.migDone = make(chan struct{})
	go func(stop, done chan struct{}) {
		defer close(done)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				cl.PumpMigrations()
			}
		}
	}(cl.migStop, cl.migDone)
}

// StopMigrator stops the background planner, if running.
func (cl *Cluster) StopMigrator() {
	if cl.migStop == nil {
		return
	}
	close(cl.migStop)
	<-cl.migDone
	cl.migStop, cl.migDone = nil, nil
}

// SeverShard cuts every live connection into shard i while keeping it
// listening — a transient network loss around one shard. Proxies reconnect
// and re-register; sibling shards are untouched.
func (cl *Cluster) SeverShard(i int) {
	cl.Home(i).Sever()
}

// RestartShard crash-restarts shard i from its write-ahead log: the old
// incarnation is killed mid-flight, the log replayed, and the recovered
// home serves the same address under a bumped fencing epoch. Only shard i's
// epoch moves — proxies track epochs per shard, so the restart cannot fence
// its healthy siblings. Requires Config.WALDir.
func (cl *Cluster) RestartShard(i int) error {
	cl.migMu.Lock()
	defer cl.migMu.Unlock()
	cl.smu.Lock()
	old, oldLog := cl.homes[i], cl.wals[i]
	cl.smu.Unlock()
	if oldLog == nil {
		return fmt.Errorf("dir: shard %d has no WAL; restart unsupported", i)
	}
	old.Kill()
	oldLog.Abandon()
	l, err := wal.Open(wal.Options{Dir: cl.walDir(i), GThV: cl.gthv, Metrics: cl.cfg.Opts.Metrics,
		Spans: cl.cfg.Opts.Spans, Node: fmt.Sprintf("wal%d", i), Flight: cl.cfg.Opts.Flight})
	if err != nil {
		return err
	}
	// A crash-restart is a black-box moment: note the new incarnation and
	// dump the ring so the post-mortem shows what preceded the crash.
	cl.cfg.Opts.Flight.Note(fmt.Sprintf("shard%d", i), flight.KindRestart, int32(i), l.Epoch(), uint64(l.Replayed()))
	cl.cfg.Opts.Flight.Trip(fmt.Sprintf("shard %d crash-restarted into epoch %d (%d records replayed)", i, l.Epoch(), l.Replayed()))
	h, err := l.RecoverHome(cl.plat, cl.shardOpts(i))
	if err != nil {
		return err
	}
	if err := h.StartReplication(l); err != nil {
		return err
	}
	lst, err := cl.nw.Listen(cl.addrs[i])
	if err != nil {
		return err
	}
	go h.Serve(lst)
	cl.smu.Lock()
	cl.homes[i] = h
	cl.wals[i] = l
	cl.smu.Unlock()
	return nil
}

// MergedImage stitches the authoritative master image together: shard 0's
// checkpoint as the canvas, every entry owned elsewhere overwritten from
// its owner's checkpoint. All shards share a platform and base, so the
// bytes are directly compatible. Meaningful as a consistent whole once the
// cluster is quiescent (after Wait, or between releases).
func (cl *Cluster) MergedImage() ([]byte, string, error) {
	n := cl.Shards()
	imgs := make([][]byte, n)
	var tagStr string
	imgs[0], tagStr = cl.Home(0).Checkpoint()
	table := cl.Home(0).Table()
	out := imgs[0]
	for e := 0; e < table.Len(); e++ {
		owner, _ := cl.dir.EntryOwner(e)
		if owner == 0 {
			continue
		}
		if imgs[owner] == nil {
			imgs[owner], _ = cl.Home(int(owner)).Checkpoint()
		}
		ent := table.Entry(e)
		nb := table.SpanBytes(indextable.Span{Entry: e, First: 0, Count: ent.Count})
		copy(out[ent.Offset:ent.Offset+nb], imgs[owner][ent.Offset:ent.Offset+nb])
	}
	return out, tagStr, nil
}

// MergedGlobals returns a typed view over the stitched master image — the
// sharded counterpart of Home.Globals for result verification.
func (cl *Cluster) MergedGlobals() (*dsd.Globals, error) {
	img, _, err := cl.MergedImage()
	if err != nil {
		return nil, err
	}
	return dsd.GlobalsFor(cl.gthv, cl.plat, cl.cfg.Opts.Base, img)
}

// Stats is the /stats view of the sharded directory.
type Stats struct {
	Shards         int          `json:"shards"`
	Migrations     uint64       `json:"migrations"`
	LockMigrations uint64       `json:"lock_migrations"`
	Forwards       uint64       `json:"forwards"`
	StaleCacheHits uint64       `json:"stale_cache_hits"`
	SyncRounds     uint64       `json:"sync_rounds"`
	ShardEpochs    []uint64     `json:"shard_epochs"`
	Map            []MapEntry   `json:"map"`
	HeatLeaders    []HeatLeader `json:"heat_leaders"`
}

// Stats snapshots the directory map, migration counters and heat leaders.
func (cl *Cluster) Stats() Stats {
	s := Stats{
		Shards:         cl.Shards(),
		Migrations:     cl.dir.Migrations(),
		LockMigrations: cl.dir.LockMigrations(),
		Forwards:       cl.forwards.Load(),
		StaleCacheHits: cl.staleHits.Load(),
		SyncRounds:     cl.syncRounds.Load(),
		Map:            cl.dir.Snapshot(cl.Home(0).Table().Len()),
		HeatLeaders:    cl.heat.leaders(),
	}
	for i := 0; i < cl.Shards(); i++ {
		s.ShardEpochs = append(s.ShardEpochs, cl.Home(i).Epoch())
	}
	return s
}
