package dir

import (
	"sort"
	"sync"

	"hetdsm/internal/indextable"
	"hetdsm/internal/platform"
	"hetdsm/internal/tag"
)

// heatTracker turns the per-page fault deltas threads piggyback on their
// releases into per-entry, per-rank heat — the signal the migration
// planner acts on. Page indexes are meaningful only within one replica
// layout, so each rank registers its platform and base and gets its own
// precomputed page → entries overlap map.
type heatTracker struct {
	gthv    tag.Struct
	nshards int
	// threshold is the per-entry fault total that triggers a re-homing
	// plan; 0 disables planning.
	threshold uint64

	mu sync.Mutex
	// pageMaps caches page → entry-index overlap per layout key.
	pageMaps map[string][][]int
	// rankMap points each rank at its layout's page map.
	rankMap map[int32][][]int
	// heat[entry][rank] accumulates faults attributed to the entry.
	heat map[int]map[int32]uint64
	// lockTouch[lock][entry] counts how often a critical section of the
	// lock released updates to the entry — the co-location signal.
	lockTouch map[int32]map[int32]uint64
}

func newHeatTracker(gthv tag.Struct, nshards int, threshold uint64) *heatTracker {
	return &heatTracker{
		gthv:      gthv,
		nshards:   nshards,
		threshold: threshold,
		pageMaps:  make(map[string][][]int),
		rankMap:   make(map[int32][][]int),
		heat:      make(map[int]map[int32]uint64),
		lockTouch: make(map[int32]map[int32]uint64),
	}
}

// registerRank points rank's future samples at the page map for its
// replica layout, building the map on first sight of the layout.
func (ht *heatTracker) registerRank(rank int32, p *platform.Platform, base uint64) error {
	key := p.Name
	ht.mu.Lock()
	defer ht.mu.Unlock()
	pm, ok := ht.pageMaps[key]
	if !ok {
		layout, err := tag.NewLayout(ht.gthv, p)
		if err != nil {
			return err
		}
		table, err := indextable.Build(layout, base)
		if err != nil {
			return err
		}
		npages := (layout.Size + p.PageSize - 1) / p.PageSize
		pm = make([][]int, npages)
		for i := 0; i < table.Len(); i++ {
			e := table.Entry(i)
			lo := e.Offset / p.PageSize
			hi := (e.Offset + e.Count*e.ElemSize - 1) / p.PageSize
			for pg := lo; pg <= hi && pg < npages; pg++ {
				pm[pg] = append(pm[pg], i)
			}
		}
		ht.pageMaps[key] = pm
	}
	ht.rankMap[rank] = pm
	return nil
}

// note attributes one release's fault deltas to the entries overlapping
// each faulted page. A page shared by several entries credits all of them:
// the planner cares about relative concentration, not exact attribution.
func (ht *heatTracker) note(rank int32, samples []heatSampleView) {
	ht.mu.Lock()
	defer ht.mu.Unlock()
	pm := ht.rankMap[rank]
	if pm == nil {
		return
	}
	for _, s := range samples {
		if s.page < 0 || int(s.page) >= len(pm) {
			continue
		}
		for _, entry := range pm[s.page] {
			m := ht.heat[entry]
			if m == nil {
				m = make(map[int32]uint64)
				ht.heat[entry] = m
			}
			m[rank] += uint64(s.faults)
		}
	}
}

// heatSampleView decouples the tracker from wire.HeatSample.
type heatSampleView struct {
	page   int32
	faults uint32
}

// noteLock records that a release of mutex lock carried updates to the
// given entries (the pre-split view only the proxy sees).
func (ht *heatTracker) noteLock(lock int32, entries []int32) {
	if lock < 0 || len(entries) == 0 {
		return
	}
	ht.mu.Lock()
	defer ht.mu.Unlock()
	m := ht.lockTouch[lock]
	if m == nil {
		m = make(map[int32]uint64)
		ht.lockTouch[lock] = m
	}
	for _, e := range entries {
		m[e]++
	}
}

// entryPlan is one planned re-homing: move entry to dst, because rank's
// heat dominates it.
type entryPlan struct {
	entry int
	rank  int32
	dst   int32
	total uint64
}

// plan emits a re-homing plan for every entry whose accumulated heat
// crossed the threshold, targeting the hottest rank's affinity shard
// (rank % nshards), and resets that entry's counters so the next window
// starts fresh. Deterministic: entries ascending, rank ties to the lower
// rank.
func (ht *heatTracker) plan() []entryPlan {
	if ht.threshold == 0 {
		return nil
	}
	ht.mu.Lock()
	defer ht.mu.Unlock()
	entries := make([]int, 0, len(ht.heat))
	for e := range ht.heat {
		entries = append(entries, e)
	}
	sort.Ints(entries)
	var plans []entryPlan
	for _, e := range entries {
		var total uint64
		best, bestRank := uint64(0), int32(-1)
		for rank, n := range ht.heat[e] {
			total += n
			if n > best || (n == best && (bestRank < 0 || rank < bestRank)) {
				best, bestRank = n, rank
			}
		}
		if total < ht.threshold || bestRank < 0 {
			continue
		}
		plans = append(plans, entryPlan{
			entry: e,
			rank:  bestRank,
			dst:   int32(int(bestRank) % ht.nshards),
			total: total,
		})
		delete(ht.heat, e)
	}
	return plans
}

// lockPlanFor returns the shard owning the plurality of lock's touched
// entries according to owner — the co-location target — or -1 when the
// lock has no recorded touches. Ties break to the lower shard id.
func (ht *heatTracker) lockPlanFor(lock int32, owner func(entry int) int32) int32 {
	ht.mu.Lock()
	touches := ht.lockTouch[lock]
	weights := make(map[int32]uint64, len(touches))
	for e, n := range touches {
		weights[owner(int(e))] += n
	}
	ht.mu.Unlock()
	best, bestShard := uint64(0), int32(-1)
	for shard, n := range weights {
		if n > best || (n == best && bestShard >= 0 && shard < bestShard) {
			best, bestShard = n, shard
		}
	}
	return bestShard
}

// locksTracked lists every lock with recorded touches, ascending.
func (ht *heatTracker) locksTracked() []int32 {
	ht.mu.Lock()
	defer ht.mu.Unlock()
	out := make([]int32, 0, len(ht.lockTouch))
	for l := range ht.lockTouch {
		out = append(out, l)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// HeatLeader is one entry's hottest rank — the /stats heat view.
type HeatLeader struct {
	Entry  int    `json:"entry"`
	Rank   int32  `json:"rank"`
	Faults uint64 `json:"faults"`
	Total  uint64 `json:"total"`
}

// leaders snapshots the current per-entry heat leaders, hottest first.
func (ht *heatTracker) leaders() []HeatLeader {
	ht.mu.Lock()
	defer ht.mu.Unlock()
	out := make([]HeatLeader, 0, len(ht.heat))
	for e, ranks := range ht.heat {
		hl := HeatLeader{Entry: e, Rank: -1}
		for rank, n := range ranks {
			hl.Total += n
			if n > hl.Faults || (n == hl.Faults && (hl.Rank < 0 || rank < hl.Rank)) {
				hl.Faults, hl.Rank = n, rank
			}
		}
		out = append(out, hl)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Total != out[j].Total {
			return out[i].Total > out[j].Total
		}
		return out[i].Entry < out[j].Entry
	})
	return out
}
