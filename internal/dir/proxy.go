package dir

import (
	"fmt"
	"time"

	"hetdsm/internal/platform"
	"hetdsm/internal/telemetry"
	"hetdsm/internal/transport"
	"hetdsm/internal/wire"
)

// maxHops bounds forward chasing per operation. Each KindDirForward carries
// the authoritative mapping, so one hop per stale entry suffices; the bound
// only guards against a mapping churning faster than the proxy can chase it.
const maxHops = 8

// shardAttempts bounds per-request retries across shard reconnects,
// matching the thread-side HA patience in Thread.call.
const shardAttempts = 16

// proxy is the per-thread shim between one worker thread and the shard
// fleet. The thread speaks the ordinary single-home DSD protocol over its
// connection; the proxy splits releases by entry ownership, gathers
// acquires from every shard, and chases directory forwards — so the thread
// never learns that the home is sharded.
//
// A proxy is single-threaded (one op at a time, driven by its thread), so
// its sequence counter and ownership cache need no locking. Every
// shard-bound frame gets a fresh sequence number at construction; retries
// inside callShard re-send the same message object, so a replay after a
// reconnect carries the same id and the shard's idempotency watermarks
// recognize it.
type proxy struct {
	cl    *Cluster
	rank  int32
	cache *cache

	// conns[i] reconnects to shard i; epochs[i] is that shard's fencing
	// epoch as last seen. Epochs are per-shard — a WAL restart bumps only
	// one shard — so shard-bound frames are stamped with that shard's own
	// epoch (stamping the max would falsely fence a healthy sibling), while
	// thread-facing frames carry the monotone maximum.
	conns    []*transport.Reconn
	epochs   []uint64
	maxEpoch uint64
	seq      uint64

	// traceID and parentSpan hold the trace context of the thread op in
	// flight; the proxy is single-threaded per op, so stamping them on
	// every shard-bound frame needs no locking. node labels the proxy's
	// own forward spans.
	traceID    uint64
	parentSpan uint64
	node       string

	threadPlat  string
	threadBase  uint64
	threadFlags uint8

	homePlat string
	homeBase uint64
	proto    uint8
	gotHome  bool
}

// serveProxy runs the proxy protocol for one thread connection. A
// connection whose first message is a ping enters heartbeat mode, like
// Home.ServeConn.
func (cl *Cluster) serveProxy(c transport.Conn) {
	defer c.Close()
	px := &proxy{cl: cl, cache: newCache(cl.dir.Shards())}
	defer px.closeShards()
	first, err := recvMsg(c)
	if err != nil {
		return
	}
	if first.Kind == wire.KindPing {
		px.servePings(c, first)
		return
	}
	if err := px.hello(c, first); err != nil {
		return
	}
	for {
		msg, err := recvMsg(c)
		if err != nil {
			return
		}
		// Adopt the op's trace context: every shard-bound frame the op
		// spawns (splits, gathers, syncs) inherits it, so the whole fan-out
		// stitches under the thread's one trace id.
		px.traceID, px.parentSpan = msg.TraceID, msg.ParentSpan
		px.noteHeat(msg)
		switch msg.Kind {
		case wire.KindLockReq:
			err = px.doLock(c, msg)
		case wire.KindUnlockReq:
			err = px.doUnlock(c, msg)
		case wire.KindBarrierReq:
			err = px.doBarrier(c, msg)
		case wire.KindFlushReq:
			err = px.doFlush(c, msg)
		case wire.KindFetchReq:
			err = px.doFetch(c, msg)
		case wire.KindJoinReq:
			err = px.doJoin(c, msg)
		case wire.KindLockAck:
			// The thread acks its grant after applying it; the granting
			// shard was already acked directly, so absorb this one.
			err = nil
		case wire.KindPing:
			err = px.sendThread(c, &wire.Message{Kind: wire.KindPong, Seq: msg.Seq, Rank: msg.Rank})
		default:
			err = fmt.Errorf("dir: unexpected %v from rank %d", msg.Kind, px.rank)
		}
		if err != nil {
			return
		}
	}
}

func (px *proxy) servePings(c transport.Conn, first *wire.Message) {
	msg := first
	for {
		if err := px.sendThread(c, &wire.Message{Kind: wire.KindPong, Seq: msg.Seq, Rank: msg.Rank}); err != nil {
			return
		}
		var err error
		msg, err = recvMsg(c)
		if err != nil || msg.Kind != wire.KindPing {
			return
		}
	}
}

// hello registers the thread with every shard and answers its handshake.
// The ack is sent only after all shards responded, because the home
// platform and base it carries come from the shards themselves.
func (px *proxy) hello(c transport.Conn, msg *wire.Message) error {
	if msg.Kind != wire.KindHello {
		return fmt.Errorf("dir: expected hello, got %v", msg.Kind)
	}
	px.rank = msg.Rank
	px.threadPlat = msg.Platform
	px.threadBase = msg.Base
	px.threadFlags = msg.Flags
	p := platform.ByName(msg.Platform)
	if p == nil {
		return fmt.Errorf("dir: unknown platform %q", msg.Platform)
	}
	if err := px.cl.heat.registerRank(px.rank, p, msg.Base); err != nil {
		return err
	}
	n := len(px.cl.addrs)
	px.conns = make([]*transport.Reconn, n)
	px.epochs = make([]uint64, n)
	for i := 0; i < n; i++ {
		i := i
		rc := transport.NewReconn(px.cl.nw, []string{px.cl.addrs[i]}, px.cl.backoffFor(px.rank, i))
		rc.OnConnect = func(raw transport.Conn) error { return px.helloShard(i, raw) }
		px.conns[i] = rc
	}
	for i := range px.conns {
		if err := px.conns[i].Connect(); err != nil {
			return err
		}
	}
	return px.sendThread(c, &wire.Message{
		Kind:     wire.KindHelloAck,
		Rank:     px.rank,
		Platform: px.homePlat,
		Base:     px.homeBase,
		Proto:    px.proto,
	})
}

// helloShard is the per-shard re-handshake, installed as the Reconn's
// OnConnect hook: it runs over every freshly dialed shard connection, so a
// severed shard link heals with a re-registration the same way HA threads
// do against a single home.
func (px *proxy) helloShard(i int, raw transport.Conn) error {
	m := &wire.Message{
		Kind:     wire.KindHello,
		Seq:      px.nextSeq(),
		Rank:     px.rank,
		Platform: px.threadPlat,
		Base:     px.threadBase,
		Flags:    px.threadFlags,
		Epoch:    px.epochs[i],
	}
	frame, err := wire.Encode(m)
	if err != nil {
		return err
	}
	if err := raw.SendFrame(frame); err != nil {
		return err
	}
	reply, err := raw.RecvFrame()
	if err != nil {
		return err
	}
	ack, err := wire.Decode(reply)
	if err != nil {
		return err
	}
	if ack.Kind != wire.KindHelloAck {
		return fmt.Errorf("dir: shard %d: expected hello-ack, got %v", i, ack.Kind)
	}
	if ack.Epoch != 0 && ack.Epoch < px.epochs[i] {
		return fmt.Errorf("dir: shard %d at stale epoch %d, already saw %d", i, ack.Epoch, px.epochs[i])
	}
	px.adoptEpoch(i, ack.Epoch)
	if !px.gotHome {
		px.homePlat, px.homeBase, px.proto = ack.Platform, ack.Base, ack.Proto
		px.gotHome = true
	} else if ack.Platform != px.homePlat || ack.Base != px.homeBase {
		return fmt.Errorf("dir: shard %d at %s/%#x, cluster at %s/%#x",
			i, ack.Platform, ack.Base, px.homePlat, px.homeBase)
	}
	return nil
}

func (px *proxy) closeShards() {
	for _, rc := range px.conns {
		if rc != nil {
			rc.Close()
		}
	}
}

func (px *proxy) nextSeq() uint64 {
	px.seq++
	return px.seq
}

func (px *proxy) adoptEpoch(i int, epoch uint64) {
	if epoch > px.epochs[i] {
		px.epochs[i] = epoch
	}
	if epoch > px.maxEpoch {
		px.maxEpoch = epoch
	}
}

// sendThread stamps the monotone maximum epoch so the thread's own fencing
// check (which rejects any decrease) never trips on shard skew.
func (px *proxy) sendThread(c transport.Conn, m *wire.Message) error {
	m.Epoch = px.maxEpoch
	frame, err := wire.Encode(m)
	if err != nil {
		return err
	}
	return c.SendFrame(frame)
}

func recvMsg(c transport.Conn) (*wire.Message, error) {
	frame, err := c.RecvFrame()
	if err != nil {
		return nil, err
	}
	return wire.Decode(frame)
}

func (px *proxy) sendShard(i int, m *wire.Message) error {
	m.Epoch = px.epochs[i]
	if m.TraceID == 0 {
		m.TraceID, m.ParentSpan = px.traceID, px.parentSpan
	}
	frame, err := wire.Encode(m)
	if err != nil {
		return err
	}
	return px.conns[i].SendFrame(frame)
}

func (px *proxy) recvShard(i int) (*wire.Message, error) {
	frame, err := px.conns[i].RecvFrame()
	if err != nil {
		return nil, err
	}
	m, err := wire.Decode(frame)
	if err != nil {
		return nil, err
	}
	if m.Epoch != 0 && m.Epoch < px.epochs[i] {
		return nil, fmt.Errorf("dir: shard %d frame from stale epoch %d, already saw %d", i, m.Epoch, px.epochs[i])
	}
	px.adoptEpoch(i, m.Epoch)
	return m, nil
}

// callShard sends m and waits for a reply of kind want (or a directory
// forward, which is returned for the caller to chase). Retries ride the
// reconnecting conn: the same message object is re-sent, so the replay
// carries the same sequence number and the shard's watermarks dedup it.
func (px *proxy) callShard(i int, m *wire.Message, want wire.Kind) (*wire.Message, error) {
	var lastErr error
	for attempt := 0; attempt < shardAttempts; attempt++ {
		if err := px.sendShard(i, m); err != nil {
			lastErr = err
			continue
		}
		reply, err := px.recvShard(i)
		if err != nil {
			lastErr = err
			continue
		}
		if reply.Kind == wire.KindDirForward {
			return reply, nil
		}
		if reply.Kind != want {
			return nil, fmt.Errorf("dir: shard %d: expected %v, got %v", i, want, reply.Kind)
		}
		return reply, nil
	}
	return nil, fmt.Errorf("dir: shard %d: %v gave up after %d attempts: %w", i, m.Kind, shardAttempts, lastErr)
}

// noteForward feeds a KindDirForward's corrections into the ownership
// cache and the cluster's staleness counters.
func (px *proxy) noteForward(reply *wire.Message) {
	changed := px.cache.correct(reply.Dir)
	px.cl.noteForward(changed)
	if sl := px.cl.cfg.Opts.Spans; sl != nil && px.traceID != 0 {
		// The wasted hop becomes a forward span on the release's DAG,
		// parented to the thread's ship span like the home-side chain.
		sl.RecordCtx(px.nodeName(), telemetry.StageForward, px.rank, 0,
			px.traceID, px.parentSpan, time.Now(), 0, len(reply.Dir))
	}
}

// nodeName labels this proxy's spans.
func (px *proxy) nodeName() string {
	if px.node == "" {
		px.node = fmt.Sprintf("proxy-%d@dir", px.rank)
	}
	return px.node
}

// noteHeat strips piggybacked page-heat samples off a thread request and
// feeds them (plus, for unlocks, the pre-split entry-touch signal the
// shards never see whole) to the migration planner.
func (px *proxy) noteHeat(msg *wire.Message) {
	if len(msg.Heat) > 0 {
		samples := make([]heatSampleView, len(msg.Heat))
		for i, s := range msg.Heat {
			samples[i] = heatSampleView{page: s.Page, faults: s.Faults}
		}
		px.cl.heat.note(px.rank, samples)
		msg.Heat = nil
	}
	if msg.Kind == wire.KindUnlockReq && len(msg.Updates) > 0 {
		seen := make(map[int32]bool, len(msg.Updates))
		entries := make([]int32, 0, len(msg.Updates))
		for i := range msg.Updates {
			e := msg.Updates[i].Entry
			if !seen[e] {
				seen[e] = true
				entries = append(entries, e)
			}
		}
		px.cl.heat.noteLock(msg.Mutex, entries)
	}
}

// gather pulls outstanding pending updates from every shard — including
// whichever shard just served the primary op — under the migration
// read-lock: no transfer can slide entries between shards mid-gather, so
// the union of the shards' queues is complete. The primary op's updates
// are merged first and the thread applies sequentially, so fresher sync
// data wins.
func (px *proxy) gather() ([]wire.Update, error) {
	px.cl.migLock.RLock()
	defer px.cl.migLock.RUnlock()
	var merged []wire.Update
	for i := range px.conns {
		req := &wire.Message{Kind: wire.KindSyncReq, Seq: px.nextSeq(), Rank: px.rank}
		reply, err := px.callShard(i, req, wire.KindSyncReply)
		if err != nil {
			return nil, err
		}
		if reply.Kind == wire.KindDirForward {
			return nil, fmt.Errorf("dir: shard %d forwarded a sync", i)
		}
		merged = append(merged, reply.Updates...)
		// A lost ack only re-materializes the drain for the next sync;
		// pressing on keeps a flaky link from wedging the acquire.
		px.sendShard(i, &wire.Message{Kind: wire.KindSyncAck, Seq: px.nextSeq(), Rank: px.rank})
		px.cl.noteSync()
	}
	return merged, nil
}

// flushSplit ships every update owned by a shard other than exclude to its
// owner, chasing forwards, and returns the updates the cache maps to
// exclude (the caller's primary-op portion). exclude -1 flushes everything.
func (px *proxy) flushSplit(updates []wire.Update, exclude int32) ([]wire.Update, error) {
	work := updates
	for hop := 0; hop <= maxHops; hop++ {
		var kept, redo []wire.Update
		byShard := make(map[int32][]wire.Update)
		for _, u := range work {
			s := px.cache.entryOwner(u.Entry)
			if s == exclude {
				kept = append(kept, u)
				continue
			}
			byShard[s] = append(byShard[s], u)
		}
		if len(byShard) == 0 {
			return kept, nil
		}
		for i := int32(0); int(i) < len(px.conns); i++ {
			part := byShard[i]
			if len(part) == 0 {
				continue
			}
			req := &wire.Message{
				Kind:     wire.KindFlushReq,
				Seq:      px.nextSeq(),
				Rank:     px.rank,
				Platform: px.threadPlat,
				Base:     px.threadBase,
				Updates:  part,
			}
			reply, err := px.callShard(int(i), req, wire.KindFlushAck)
			if err != nil {
				return nil, err
			}
			if reply.Kind == wire.KindDirForward {
				px.noteForward(reply)
				redo = append(redo, part...)
			}
		}
		if len(redo) == 0 {
			return kept, nil
		}
		work = append(kept, redo...)
	}
	return nil, fmt.Errorf("dir: flush chased more than %d forwards for rank %d", maxHops, px.rank)
}

func (px *proxy) doLock(c transport.Conn, msg *wire.Message) error {
	req := &wire.Message{Kind: wire.KindLockReq, Seq: px.nextSeq(), Mutex: msg.Mutex, Rank: px.rank}
	var grant *wire.Message
	var owner int
	for hop := 0; ; hop++ {
		owner = int(px.cache.lockOwner(msg.Mutex))
		reply, err := px.callShard(owner, req, wire.KindLockGrant)
		if err != nil {
			return err
		}
		if reply.Kind == wire.KindDirForward {
			px.noteForward(reply)
			if hop >= maxHops {
				return fmt.Errorf("dir: lock %d chased more than %d forwards", msg.Mutex, maxHops)
			}
			continue
		}
		grant = reply
		break
	}
	// Ack the grant right away: it is safe in proxy memory and the thread
	// pipe is reliable, so the shard can commit its pending-queue drain.
	// Best-effort — a lost ack just re-materializes the drain later.
	px.sendShard(owner, &wire.Message{Kind: wire.KindLockAck, Seq: px.nextSeq(), Mutex: msg.Mutex, Rank: px.rank})
	extra, err := px.gather()
	if err != nil {
		return err
	}
	return px.sendThread(c, &wire.Message{
		Kind:     wire.KindLockGrant,
		Seq:      msg.Seq,
		Mutex:    msg.Mutex,
		Rank:     px.rank,
		Platform: px.homePlat,
		Base:     px.homeBase,
		Updates:  append(grant.Updates, extra...),
	})
}

func (px *proxy) doUnlock(c transport.Conn, msg *wire.Message) error {
	work := msg.Updates
	for hop := 0; ; hop++ {
		owner := px.cache.lockOwner(msg.Mutex)
		keep, err := px.flushSplit(work, owner)
		if err != nil {
			return err
		}
		req := &wire.Message{
			Kind:     wire.KindUnlockReq,
			Seq:      px.nextSeq(),
			Mutex:    msg.Mutex,
			Rank:     px.rank,
			Platform: px.threadPlat,
			Base:     px.threadBase,
			Updates:  keep,
		}
		start := time.Now()
		reply, err := px.callShard(int(owner), req, wire.KindUnlockAck)
		if err != nil {
			return err
		}
		if reply.Kind == wire.KindDirForward {
			px.noteForward(reply)
			if hop >= maxHops {
				return fmt.Errorf("dir: unlock %d chased more than %d forwards", msg.Mutex, maxHops)
			}
			work = keep
			continue
		}
		px.cl.observeRelease(int(owner), time.Since(start))
		return px.sendThread(c, &wire.Message{Kind: wire.KindUnlockAck, Seq: msg.Seq, Mutex: msg.Mutex, Rank: px.rank})
	}
}

func (px *proxy) doBarrier(c transport.Conn, msg *wire.Message) error {
	owner := int(BarrierOwner(msg.Mutex, px.cl.dir.Shards()))
	work := msg.Updates
	for hop := 0; ; hop++ {
		keep, err := px.flushSplit(work, int32(owner))
		if err != nil {
			return err
		}
		req := &wire.Message{
			Kind:     wire.KindBarrierReq,
			Seq:      px.nextSeq(),
			Mutex:    msg.Mutex,
			Rank:     px.rank,
			Platform: px.threadPlat,
			Base:     px.threadBase,
			Updates:  keep,
		}
		start := time.Now()
		reply, err := px.callShard(owner, req, wire.KindBarrierRelease)
		if err != nil {
			return err
		}
		if reply.Kind == wire.KindDirForward {
			// The barrier owner is static; only stale ENTRY mappings in the
			// carried portion bounce here. Re-split and retry.
			px.noteForward(reply)
			if hop >= maxHops {
				return fmt.Errorf("dir: barrier %d chased more than %d forwards", msg.Mutex, maxHops)
			}
			work = keep
			continue
		}
		px.cl.observeRelease(owner, time.Since(start))
		extra, err := px.gather()
		if err != nil {
			return err
		}
		return px.sendThread(c, &wire.Message{
			Kind:     wire.KindBarrierRelease,
			Seq:      msg.Seq,
			Mutex:    msg.Mutex,
			Rank:     px.rank,
			Platform: px.homePlat,
			Base:     px.homeBase,
			Updates:  append(reply.Updates, extra...),
		})
	}
}

func (px *proxy) doFlush(c transport.Conn, msg *wire.Message) error {
	if _, err := px.flushSplit(msg.Updates, -1); err != nil {
		return err
	}
	return px.sendThread(c, &wire.Message{Kind: wire.KindFlushAck, Seq: msg.Seq, Rank: px.rank})
}

func (px *proxy) doJoin(c transport.Conn, msg *wire.Message) error {
	if _, err := px.flushSplit(msg.Updates, -1); err != nil {
		return err
	}
	// Every shard counts joins toward its own done condition, so each one
	// must hear from every rank.
	for i := range px.conns {
		req := &wire.Message{
			Kind:     wire.KindJoinReq,
			Seq:      px.nextSeq(),
			Rank:     px.rank,
			Platform: px.threadPlat,
			Base:     px.threadBase,
		}
		reply, err := px.callShard(i, req, wire.KindJoinAck)
		if err != nil {
			return err
		}
		if reply.Kind == wire.KindDirForward {
			return fmt.Errorf("dir: shard %d forwarded a join", i)
		}
	}
	return px.sendThread(c, &wire.Message{Kind: wire.KindJoinAck, Seq: msg.Seq, Rank: px.rank})
}

func (px *proxy) doFetch(c transport.Conn, msg *wire.Message) error {
	work := msg.Updates
	var got []wire.Update
	for hop := 0; len(work) > 0; hop++ {
		if hop > maxHops {
			return fmt.Errorf("dir: fetch chased more than %d forwards for rank %d", maxHops, px.rank)
		}
		byShard := make(map[int32][]wire.Update)
		for _, u := range work {
			s := px.cache.entryOwner(u.Entry)
			byShard[s] = append(byShard[s], u)
		}
		var redo []wire.Update
		for i := int32(0); int(i) < len(px.conns); i++ {
			part := byShard[i]
			if len(part) == 0 {
				continue
			}
			req := &wire.Message{Kind: wire.KindFetchReq, Seq: px.nextSeq(), Rank: px.rank, Updates: part}
			reply, err := px.callShard(int(i), req, wire.KindFetchReply)
			if err != nil {
				return err
			}
			if reply.Kind == wire.KindDirForward {
				px.noteForward(reply)
				redo = append(redo, part...)
				continue
			}
			got = append(got, reply.Updates...)
		}
		work = redo
	}
	return px.sendThread(c, &wire.Message{
		Kind:     wire.KindFetchReply,
		Seq:      msg.Seq,
		Rank:     px.rank,
		Platform: px.homePlat,
		Base:     px.homeBase,
		Updates:  got,
	})
}
