package dir

import (
	"bytes"
	"sync"
	"testing"
	"time"

	"hetdsm/internal/dsd"
	"hetdsm/internal/platform"
	"hetdsm/internal/tag"
)

// testGThV mirrors the dsd test structure: pointers, arrays and scalars.
// With two shards the static hash puts GThP(0), B(2), d(4) on shard 0 and
// A(1), sum(3) on shard 1.
func testGThV() tag.Struct {
	return tag.Struct{
		Name: "GThV_t",
		Fields: []tag.Field{
			{Name: "GThP", T: tag.Pointer{}},
			{Name: "A", T: tag.IntArray(64)},
			{Name: "B", T: tag.IntArray(64)},
			{Name: "sum", T: tag.Int()},
			{Name: "d", T: tag.DoubleArray(8)},
		},
	}
}

const (
	entryA   = 1
	entryB   = 2
	entrySum = 3
)

func newTestCluster(t *testing.T, shards int, threshold uint64, walDir string) *Cluster {
	t.Helper()
	cl, err := NewCluster(testGThV(), platform.LinuxX86, 2, Config{
		Shards:           shards,
		MigrateThreshold: threshold,
		Opts:             dsd.DefaultOptions(),
		WALDir:           walDir,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cl.Close)
	return cl
}

func newThread(t *testing.T, cl *Cluster, rank int32, p *platform.Platform) *dsd.Thread {
	t.Helper()
	th, err := cl.NewThread(rank, p, dsd.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	return th
}

func TestShardedLockUnlockPropagatesHeterogeneous(t *testing.T) {
	cl := newTestCluster(t, 2, 0, "")
	a := newThread(t, cl, 0, platform.SolarisSPARC)
	b := newThread(t, cl, 1, platform.LinuxX86)

	if err := a.Lock(0); err != nil {
		t.Fatal(err)
	}
	// Touch entries on BOTH shards in one critical section: sum and A live
	// on shard 1, B on shard 0, so the release splits.
	if err := a.Globals().MustVar("sum").SetInt(0, -12345); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := a.Globals().MustVar("A").SetInt(i, int64(i*i)); err != nil {
			t.Fatal(err)
		}
		if err := a.Globals().MustVar("B").SetInt(i, int64(7*i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := a.Unlock(0); err != nil {
		t.Fatal(err)
	}

	if err := b.Lock(0); err != nil {
		t.Fatal(err)
	}
	if got, err := b.Globals().MustVar("sum").Int(0); err != nil || got != -12345 {
		t.Fatalf("sum at B = %d (%v), want -12345", got, err)
	}
	for i := 0; i < 10; i++ {
		if v, _ := b.Globals().MustVar("A").Int(i); v != int64(i*i) {
			t.Errorf("A[%d] at B = %d, want %d", i, v, i*i)
		}
		if v, _ := b.Globals().MustVar("B").Int(i); v != int64(7*i) {
			t.Errorf("B[%d] at B = %d, want %d", i, v, 7*i)
		}
	}
	if err := b.Unlock(0); err != nil {
		t.Fatal(err)
	}
}

// runWorkload drives a deterministic two-thread mix (locked increments plus
// barrier phases) and returns the merged master image.
func runWorkload(t *testing.T, cl *Cluster, disturb func(step int)) []byte {
	t.Helper()
	var wg sync.WaitGroup
	for rank := int32(0); rank < 2; rank++ {
		th := newThread(t, cl, rank, platform.LinuxX86)
		wg.Add(1)
		go func(rank int32, th *dsd.Thread) {
			defer wg.Done()
			for step := 0; step < 6; step++ {
				if err := th.Lock(0); err != nil {
					t.Error(err)
					return
				}
				sum := th.Globals().MustVar("sum")
				v, _ := sum.Int(0)
				sum.SetInt(0, v+1)
				th.Globals().MustVar("A").SetInt(int(rank)*4+step%4, int64(rank)*1000+int64(step))
				th.Globals().MustVar("B").SetInt(int(rank)*4+step%4, int64(rank)*2000+int64(step))
				if err := th.Unlock(0); err != nil {
					t.Error(err)
					return
				}
				if rank == 0 && disturb != nil {
					disturb(step)
				}
				if err := th.Barrier(0); err != nil {
					t.Error(err)
					return
				}
			}
			if err := th.Join(); err != nil {
				t.Error(err)
			}
		}(rank, th)
	}
	wg.Wait()
	cl.Wait()
	img, _, err := cl.MergedImage()
	if err != nil {
		t.Fatal(err)
	}
	return img
}

func TestByteIdenticalAcrossShardCounts(t *testing.T) {
	var base []byte
	for _, shards := range []int{1, 2, 4} {
		cl := newTestCluster(t, shards, 0, "")
		img := runWorkload(t, cl, nil)
		if base == nil {
			base = img
			continue
		}
		if !bytes.Equal(base, img) {
			t.Fatalf("merged image at %d shards differs from 1-shard result", shards)
		}
	}
}

func TestByteIdenticalUnderForcedMigration(t *testing.T) {
	ref := runWorkload(t, newTestCluster(t, 1, 0, ""), nil)
	cl := newTestCluster(t, 2, 0, "")
	img := runWorkload(t, cl, func(step int) {
		// Bounce the hot entries between shards mid-run.
		if err := cl.ForceMigrate(entryA, int32(step%2)); err != nil {
			t.Error(err)
		}
		if err := cl.ForceMigrate(entrySum, int32((step+1)%2)); err != nil {
			t.Error(err)
		}
	})
	if !bytes.Equal(ref, img) {
		t.Fatal("merged image under forced migration differs from 1-shard result")
	}
	if got := cl.dir.Migrations(); got == 0 {
		t.Fatal("expected published migrations, got 0")
	}
}

func TestStaleCacheCorrectsInOneHop(t *testing.T) {
	cl := newTestCluster(t, 2, 0, "")
	a := newThread(t, cl, 0, platform.LinuxX86)
	b := newThread(t, cl, 1, platform.LinuxX86)

	// Warm a's ownership cache with one release touching A (shard 1).
	if err := a.Lock(0); err != nil {
		t.Fatal(err)
	}
	a.Globals().MustVar("A").SetInt(0, 1)
	if err := a.Unlock(0); err != nil {
		t.Fatal(err)
	}

	// Move A to shard 0 behind the proxies' backs.
	if err := cl.ForceMigrate(entryA, 0); err != nil {
		t.Fatal(err)
	}
	before := cl.forwards.Load()

	// a's next release still routes A to shard 1, which must answer with a
	// correction; the retry lands on shard 0. Exactly one forward.
	if err := a.Lock(0); err != nil {
		t.Fatal(err)
	}
	a.Globals().MustVar("A").SetInt(0, 42)
	if err := a.Unlock(0); err != nil {
		t.Fatal(err)
	}
	hops := cl.forwards.Load() - before
	if hops != 1 {
		t.Fatalf("stale-cache release took %d forwards, want exactly 1", hops)
	}
	if cl.staleHits.Load() == 0 {
		t.Fatal("expected stale-cache hits to be counted")
	}

	// A second release from the same proxy must not forward again.
	if err := a.Lock(0); err != nil {
		t.Fatal(err)
	}
	a.Globals().MustVar("A").SetInt(1, 43)
	if err := a.Unlock(0); err != nil {
		t.Fatal(err)
	}
	if got := cl.forwards.Load() - before; got != 1 {
		t.Fatalf("corrected cache forwarded again (%d total hops)", got)
	}

	// Re-homing never yields stale reads: b sees the post-migration writes.
	if err := b.Lock(0); err != nil {
		t.Fatal(err)
	}
	if v, _ := b.Globals().MustVar("A").Int(0); v != 42 {
		t.Fatalf("A[0] at B = %d, want 42", v)
	}
	if v, _ := b.Globals().MustVar("A").Int(1); v != 43 {
		t.Fatalf("A[1] at B = %d, want 43", v)
	}
	if err := b.Unlock(0); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentMigrationsSameEntry(t *testing.T) {
	cl := newTestCluster(t, 2, 0, "")
	stop := make(chan struct{})
	var mig sync.WaitGroup
	for g := 0; g < 2; g++ {
		mig.Add(1)
		go func(dst int32) {
			defer mig.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if err := cl.ForceMigrate(entryA, dst); err != nil {
					t.Error(err)
					return
				}
			}
		}(int32(g))
	}
	img := runWorkload(t, cl, nil)
	close(stop)
	mig.Wait()

	ref := runWorkload(t, newTestCluster(t, 1, 0, ""), nil)
	if !bytes.Equal(ref, img) {
		t.Fatal("merged image under racing same-entry migrations differs from 1-shard result")
	}
}

func TestMigrationRacingCheckpointCut(t *testing.T) {
	cl := newTestCluster(t, 2, 0, "")
	stop := make(chan struct{})
	var snap sync.WaitGroup
	snap.Add(1)
	go func() {
		defer snap.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			// Per-shard cuts racing transfers: both run under the home
			// mutexes, so images may straddle a flip but never tear.
			if _, _, err := cl.MergedImage(); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	img := runWorkload(t, cl, func(step int) {
		cl.ForceMigrate(entrySum, int32(step%2))
	})
	close(stop)
	snap.Wait()

	ref := runWorkload(t, newTestCluster(t, 1, 0, ""), nil)
	if !bytes.Equal(ref, img) {
		t.Fatal("merged image with checkpoint cuts racing migrations differs from 1-shard result")
	}
}

func TestHeatDrivenMigration(t *testing.T) {
	cl := newTestCluster(t, 2, 4, "")
	a := newThread(t, cl, 0, platform.LinuxX86)
	b := newThread(t, cl, 1, platform.LinuxX86)

	// Rank 0 hammers A (statically homed on shard 1); its faults should
	// re-home A to rank 0's affinity shard, shard 0.
	for i := 0; i < 12; i++ {
		if err := a.Lock(0); err != nil {
			t.Fatal(err)
		}
		a.Globals().MustVar("A").SetInt(i%8, int64(i))
		if err := a.Unlock(0); err != nil {
			t.Fatal(err)
		}
	}
	moved, err := cl.PumpMigrations()
	if err != nil {
		t.Fatal(err)
	}
	if moved == 0 {
		t.Fatal("planner moved nothing despite heat past the threshold")
	}
	if owner, _ := cl.dir.EntryOwner(entryA); owner != 0 {
		t.Fatalf("A owned by shard %d after pump, want 0", owner)
	}
	if cl.dir.Migrations() == 0 {
		t.Fatal("no migrations published")
	}
	st := cl.Stats()
	if st.Migrations == 0 {
		t.Fatal("Stats does not reflect migrations")
	}

	// The data survived the move and is visible to the other rank.
	if err := b.Lock(0); err != nil {
		t.Fatal(err)
	}
	if v, _ := b.Globals().MustVar("A").Int(11%8); v != 11 {
		t.Fatalf("A[%d] at B = %d, want 11", 11%8, v)
	}
	if err := b.Unlock(0); err != nil {
		t.Fatal(err)
	}
	if err := a.Join(); err != nil {
		t.Fatal(err)
	}
	if err := b.Join(); err != nil {
		t.Fatal(err)
	}
	cl.Wait()
}

func TestShardRestartFencesOnlyItself(t *testing.T) {
	cl := newTestCluster(t, 2, 0, t.TempDir())
	a := newThread(t, cl, 0, platform.LinuxX86)
	b := newThread(t, cl, 1, platform.LinuxX86)

	if err := a.Lock(0); err != nil {
		t.Fatal(err)
	}
	a.Globals().MustVar("sum").SetInt(0, 77) // sum lives on shard 1
	a.Globals().MustVar("B").SetInt(0, 88)   // B lives on shard 0
	if err := a.Unlock(0); err != nil {
		t.Fatal(err)
	}

	epoch0 := cl.Home(0).Epoch()
	if err := cl.RestartShard(1); err != nil {
		t.Fatal(err)
	}
	if got := cl.Home(1).Epoch(); got <= 1 {
		t.Fatalf("restarted shard serves at epoch %d, want a bump", got)
	}
	if cl.Home(0).Epoch() != epoch0 {
		t.Fatalf("shard 0 epoch moved across shard 1's restart")
	}

	// Both shards still serve: the WAL-recovered value and the untouched
	// shard's value are both visible, and shard 0 was not fenced.
	if err := b.Lock(0); err != nil {
		t.Fatal(err)
	}
	if v, _ := b.Globals().MustVar("sum").Int(0); v != 77 {
		t.Fatalf("sum after shard-1 restart = %d, want 77 (WAL recovery lost it)", v)
	}
	if v, _ := b.Globals().MustVar("B").Int(0); v != 88 {
		t.Fatalf("B[0] after shard-1 restart = %d, want 88", v)
	}
	b.Globals().MustVar("sum").SetInt(0, 78)
	if err := b.Unlock(0); err != nil {
		t.Fatal(err)
	}
	if cl.Home(0).Fenced() {
		t.Fatal("shard 0 fenced by shard 1's restart")
	}

	if err := a.Lock(0); err != nil {
		t.Fatal(err)
	}
	if v, _ := a.Globals().MustVar("sum").Int(0); v != 78 {
		t.Fatalf("sum at A after restart = %d, want 78", v)
	}
	if err := a.Unlock(0); err != nil {
		t.Fatal(err)
	}
	if err := a.Join(); err != nil {
		t.Fatal(err)
	}
	if err := b.Join(); err != nil {
		t.Fatal(err)
	}
	cl.Wait()
}

func TestSeverShardHeals(t *testing.T) {
	cl := newTestCluster(t, 2, 0, "")
	a := newThread(t, cl, 0, platform.LinuxX86)

	if err := a.Lock(0); err != nil {
		t.Fatal(err)
	}
	a.Globals().MustVar("sum").SetInt(0, 5)
	if err := a.Unlock(0); err != nil {
		t.Fatal(err)
	}
	cl.SeverShard(1)
	// The proxy's reconnecting conns re-register transparently.
	if err := a.Lock(0); err != nil {
		t.Fatal(err)
	}
	if v, _ := a.Globals().MustVar("sum").Int(0); v != 5 {
		t.Fatalf("sum after sever = %d, want 5", v)
	}
	if err := a.Unlock(0); err != nil {
		t.Fatal(err)
	}
}

func TestMigratorTicker(t *testing.T) {
	cl := newTestCluster(t, 2, 0, "")
	cl.StartMigrator(time.Millisecond)
	time.Sleep(5 * time.Millisecond)
	cl.StopMigrator()
	// Restartable.
	cl.StartMigrator(time.Millisecond)
	cl.StopMigrator()
}
