package transport

import (
	"errors"
	"testing"
	"time"
)

// TestSendQueueDelivers: frames flow through the queue in order.
func TestSendQueueDelivers(t *testing.T) {
	a, b := Pipe()
	q := NewSendQueue(a, 8, OverflowShed)
	for i := 0; i < 5; i++ {
		if err := q.SendFrame([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 5; i++ {
		f, err := b.RecvFrame()
		if err != nil || len(f) != 1 || f[0] != byte(i) {
			t.Fatalf("frame %d: %v %v", i, f, err)
		}
	}
	enq, sent := q.Progress()
	if enq != 5 || sent != 5 {
		t.Fatalf("progress: %d/%d, want 5/5", enq, sent)
	}
	if q.Depth() != 0 || q.OldestAge(time.Now()) != 0 {
		t.Fatalf("drained queue reports depth %d age %v", q.Depth(), q.OldestAge(time.Now()))
	}
	q.Close()
}

// TestSendQueueShedsWhenFull: with a stalled peer the shed policy drops
// overflow frames with ErrQueueFull instead of blocking the producer, and
// the watermarks expose the stall (enqueued frozen ahead of sent).
func TestSendQueueShedsWhenFull(t *testing.T) {
	inner := NewInproc()
	d := NewDelayed(inner, DelayProfile{})
	if _, err := d.Listen("h"); err != nil {
		t.Fatal(err)
	}
	c, err := d.Dial("h")
	if err != nil {
		t.Fatal(err)
	}
	d.StallConns() // writer will wedge on the first frame
	q := NewSendQueue(c, 2, OverflowShed)

	// First frame occupies the writer; two fill the queue; more must shed.
	deadline := time.Now().Add(5 * time.Second)
	shed := false
	for time.Now().Before(deadline) {
		err := q.SendFrame([]byte{1})
		if errors.Is(err, ErrQueueFull) {
			shed = true
			break
		}
		if err != nil {
			t.Fatalf("enqueue: %v", err)
		}
	}
	if !shed {
		t.Fatal("full queue never shed")
	}
	if q.Shed() == 0 {
		t.Fatal("shed counter not advanced")
	}
	enq, sent := q.Progress()
	if enq <= sent {
		t.Fatalf("stalled queue shows no backlog: %d/%d", enq, sent)
	}
	if age := q.OldestAge(time.Now().Add(time.Second)); age <= 0 {
		t.Fatalf("oldest-unsent age %v on a stalled queue", age)
	}
	d.Resume()
	q.Close()
}

// TestSendQueueBlockPolicy: the block policy applies backpressure and is
// released when the writer drains, and a dead conn surfaces its error to
// blocked producers rather than hanging them.
func TestSendQueueBlockPolicy(t *testing.T) {
	a, b := Pipe()
	q := NewSendQueue(a, 1, OverflowBlock)
	// The pipe buffers 64 frames, so pump enough to need draining.
	done := make(chan error, 1)
	go func() {
		for i := 0; i < 80; i++ {
			if err := q.SendFrame(make([]byte, 1)); err != nil {
				done <- err
				return
			}
		}
		done <- nil
	}()
	got := 0
	for got < 80 {
		if _, err := b.RecvFrame(); err != nil {
			t.Fatal(err)
		}
		got++
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}

	// Kill the conn: a producer blocked on a full queue must error out.
	a2, _ := Pipe()
	q2 := NewSendQueue(a2, 1, OverflowBlock)
	a2.Close()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if err := q2.SendFrame([]byte{1}); err != nil {
			q2.Close()
			return // surfaced, no hang
		}
	}
	t.Fatal("producer never saw the dead conn")
}
