package transport

import (
	"bytes"
	"errors"
	"testing"
	"time"
)

// TestDelayedDeliversUnchanged: whatever the delay profile, every frame
// arrives exactly once, in order, with unchanged bytes.
func TestDelayedDeliversUnchanged(t *testing.T) {
	profiles := []DelayProfile{
		{},
		{Latency: 200 * time.Microsecond, Seed: 7},
		{Latency: 300 * time.Microsecond, DribbleChunks: 4, Seed: 7},
		{Latency: 100 * time.Microsecond, StallEvery: 3, StallFor: 500 * time.Microsecond, Seed: 9},
	}
	for pi, prof := range profiles {
		inner := NewInproc()
		d := NewDelayed(inner, prof)
		l, err := d.Listen("h")
		if err != nil {
			t.Fatal(err)
		}
		srvCh := make(chan Conn, 1)
		go func() {
			c, err := l.Accept()
			if err == nil {
				srvCh <- c
			}
		}()
		c, err := d.Dial("h")
		if err != nil {
			t.Fatal(err)
		}
		srv := <-srvCh
		for i := 0; i < 20; i++ {
			want := []byte{byte(pi), byte(i), byte(i * 3)}
			if err := c.SendFrame(append([]byte(nil), want...)); err != nil {
				t.Fatalf("profile %d send %d: %v", pi, i, err)
			}
			got, err := srv.RecvFrame()
			if err != nil || !bytes.Equal(got, want) {
				t.Fatalf("profile %d frame %d: got %v/%v, want %v", pi, i, got, err, want)
			}
		}
		if prof.StallEvery > 0 && d.Stalls() == 0 {
			t.Errorf("profile %d: no stall windows served", pi)
		}
		c.Close()
		srv.Close()
		l.Close()
	}
}

// TestDelayedStallResume: StallConns freezes existing conns in both
// directions; Resume releases them; conns dialed during the stall flow.
func TestDelayedStallResume(t *testing.T) {
	inner := NewInproc()
	d := NewDelayed(inner, DelayProfile{})
	l, err := d.Listen("h")
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		for {
			c, err := l.Accept()
			if err != nil {
				return
			}
			go func(c Conn) {
				for {
					f, err := c.RecvFrame()
					if err != nil {
						return
					}
					c.SendFrame(f) // echo
				}
			}(c)
		}
	}()
	c, err := d.Dial("h")
	if err != nil {
		t.Fatal(err)
	}
	if err := c.SendFrame([]byte("a")); err != nil {
		t.Fatal(err)
	}
	if f, err := c.RecvFrame(); err != nil || string(f) != "a" {
		t.Fatalf("echo: %q, %v", f, err)
	}

	d.StallConns()
	sent := make(chan error, 1)
	go func() { sent <- c.SendFrame([]byte("b")) }()
	select {
	case err := <-sent:
		t.Fatalf("send on stalled conn returned early: %v", err)
	case <-time.After(30 * time.Millisecond):
	}

	// A fresh dial during the stall is clean: the fault is per-connection.
	c2, err := d.Dial("h")
	if err != nil {
		t.Fatal(err)
	}
	if err := c2.SendFrame([]byte("c")); err != nil {
		t.Fatal(err)
	}
	if f, err := c2.RecvFrame(); err != nil || string(f) != "c" {
		t.Fatalf("fresh conn echo during stall: %q, %v", f, err)
	}

	d.Resume()
	select {
	case err := <-sent:
		if err != nil {
			t.Fatalf("send after resume: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("stalled send never resumed")
	}
	if f, err := c.RecvFrame(); err != nil || string(f) != "b" {
		t.Fatalf("echo after resume: %q, %v", f, err)
	}
	c.Close()
	c2.Close()
	l.Close()
}

// TestDelayedCloseUnblocksStalledSend: closing a stalled conn frees its
// blocked sender with ErrClosed — teardown must not leak goroutines.
func TestDelayedCloseUnblocksStalledSend(t *testing.T) {
	inner := NewInproc()
	d := NewDelayed(inner, DelayProfile{})
	if _, err := d.Listen("h"); err != nil {
		t.Fatal(err)
	}
	c, err := d.Dial("h")
	if err != nil {
		t.Fatal(err)
	}
	d.StallConns()
	sent := make(chan error, 1)
	go func() { sent <- c.SendFrame([]byte("x")) }()
	time.Sleep(10 * time.Millisecond)
	c.Close()
	select {
	case err := <-sent:
		if !errors.Is(err, ErrClosed) {
			t.Fatalf("got %v, want ErrClosed", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("close never unblocked the stalled send")
	}
}
