package transport

// FrameObserver receives frame sizes in bytes. *telemetry.Histogram
// satisfies it (and its Observe is a safe no-op on a nil pointer), so
// callers can hand histogram handles straight in without this package
// depending on the telemetry layer.
type FrameObserver interface {
	Observe(v float64)
}

// meteredConn wraps a Conn and reports every frame's size.
type meteredConn struct {
	Conn
	sent FrameObserver
	recv FrameObserver
}

// Meter returns a Conn that observes the size of every frame crossing
// c: sent into sent, received into recv. A nil observer disables that
// direction. The wrapper adds one interface call per frame and nothing
// else — ordering, blocking and close semantics are c's.
func Meter(c Conn, sent, recv FrameObserver) Conn {
	if sent == nil && recv == nil {
		return c
	}
	return &meteredConn{Conn: c, sent: sent, recv: recv}
}

func (m *meteredConn) SendFrame(frame []byte) error {
	if m.sent != nil {
		m.sent.Observe(float64(len(frame)))
	}
	return m.Conn.SendFrame(frame)
}

func (m *meteredConn) RecvFrame() ([]byte, error) {
	frame, err := m.Conn.RecvFrame()
	if err == nil && m.recv != nil {
		m.recv.Observe(float64(len(frame)))
	}
	return frame, err
}

// meteredListener wraps every accepted conn with Meter.
type meteredListener struct {
	Listener
	sent FrameObserver
	recv FrameObserver
}

// MeterListener returns a Listener whose accepted connections are
// wrapped with Meter(c, sent, recv) — the one-line way to meter every
// frame a serving node exchanges.
func MeterListener(l Listener, sent, recv FrameObserver) Listener {
	if sent == nil && recv == nil {
		return l
	}
	return &meteredListener{Listener: l, sent: sent, recv: recv}
}

func (m *meteredListener) Accept() (Conn, error) {
	c, err := m.Listener.Accept()
	if err != nil {
		return nil, err
	}
	return Meter(c, m.sent, m.recv), nil
}
