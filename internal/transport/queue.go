package transport

import (
	"errors"
	"sync"
	"sync/atomic"
	"time"
)

// ErrQueueFull is returned by a SendQueue with OverflowShed when a frame
// is enqueued against a full queue: the frame is dropped and the caller
// must retry (safe for idempotent traffic) or treat the conn as broken.
var ErrQueueFull = errors.New("transport: outbound queue full")

// OverflowPolicy says what a full SendQueue does with a new frame.
type OverflowPolicy int

const (
	// OverflowBlock applies backpressure: SendFrame blocks until space
	// frees up or the queue closes. Use for traffic that must not be
	// dropped and whose producers may safely slow down (replication, WAL).
	OverflowBlock OverflowPolicy = iota
	// OverflowShed fails fast with ErrQueueFull: the frame is dropped and
	// the producer keeps running. Use for idempotent request/reply traffic
	// (grants, acks) whose peer re-sends under the same sequence number.
	OverflowShed
)

// SendQueue decouples a producer from a slow peer: frames land on a
// bounded queue drained by one writer goroutine, so a stalled connection
// wedges the writer, not the producer. Depth, send-progress watermarks and
// the age of the oldest unsent frame are exported for /stats and the stall
// detector. RecvFrame passes through untouched.
type SendQueue struct {
	conn     Conn
	policy   OverflowPolicy
	frames   chan queuedFrame
	quit     chan struct{}
	done     chan struct{} // writer exited
	quitOnce sync.Once

	failed atomic.Pointer[error] // sticky writer error

	enqueued atomic.Uint64
	sent     atomic.Uint64
	shed     atomic.Uint64

	mu      sync.Mutex
	pending []time.Time // enqueue times of frames not yet written, oldest first
}

type queuedFrame struct {
	frame []byte
	t0    time.Time
}

// NewSendQueue wraps conn with a queue of the given capacity (minimum 1)
// and overflow policy, and starts the writer goroutine. Close the queue —
// not just the conn — to stop the writer.
func NewSendQueue(conn Conn, capacity int, policy OverflowPolicy) *SendQueue {
	if capacity < 1 {
		capacity = 1
	}
	q := &SendQueue{
		conn:   conn,
		policy: policy,
		frames: make(chan queuedFrame, capacity),
		quit:   make(chan struct{}),
		done:   make(chan struct{}),
	}
	go q.writer()
	return q
}

// SendFrame implements Conn by enqueueing: under OverflowBlock a full
// queue blocks, under OverflowShed it returns ErrQueueFull. A writer that
// already failed reports its sticky error immediately.
func (q *SendQueue) SendFrame(frame []byte) error {
	if err := q.Err(); err != nil {
		return err
	}
	item := queuedFrame{frame: frame, t0: time.Now()}
	// Register the timestamp before the channel send so a stalled writer
	// can never observe a frame without its age entry; unwind on failure.
	q.mu.Lock()
	q.pending = append(q.pending, item.t0)
	q.mu.Unlock()
	unwind := func() {
		q.mu.Lock()
		if n := len(q.pending); n > 0 {
			q.pending = q.pending[:n-1]
		}
		q.mu.Unlock()
	}
	if q.policy == OverflowShed {
		select {
		case q.frames <- item:
		default:
			unwind()
			q.shed.Add(1)
			return ErrQueueFull
		}
	} else {
		select {
		case q.frames <- item:
		case <-q.quit:
			unwind()
			return ErrClosed
		case <-q.done:
			unwind()
			// Writer died; report its sticky error rather than blocking
			// on a queue nobody drains.
			if err := q.Err(); err != nil {
				return err
			}
			return ErrClosed
		}
	}
	q.enqueued.Add(1)
	return nil
}

// RecvFrame implements Conn, reading directly from the wrapped conn.
func (q *SendQueue) RecvFrame() ([]byte, error) { return q.conn.RecvFrame() }

// SendFrameDeadline implements DeadlineConn. Enqueueing never blocks past
// the queue's own policy (shed returns immediately; block is bounded by the
// drain), so the deadline is not applied at enqueue time — it would start
// counting queue wait against a frame the writer owns.
func (q *SendQueue) SendFrameDeadline(frame []byte, _ time.Time) error {
	return q.SendFrame(frame)
}

// RecvFrameDeadline implements DeadlineConn by forwarding to the wrapped
// conn, so budget-bounded waits (the home's grant-ack wait) work through
// the queue.
func (q *SendQueue) RecvFrameDeadline(deadline time.Time) ([]byte, error) {
	return RecvFrameDeadline(q.conn, deadline)
}

// Close implements Conn: it closes the wrapped conn and stops the writer.
func (q *SendQueue) Close() error {
	q.quitOnce.Do(func() { close(q.quit) })
	err := q.conn.Close()
	<-q.done
	return err
}

// Err returns the writer's sticky failure, or nil while healthy.
func (q *SendQueue) Err() error {
	if p := q.failed.Load(); p != nil {
		return *p
	}
	return nil
}

// Depth returns how many frames are enqueued but not yet written.
func (q *SendQueue) Depth() int {
	e, s := q.enqueued.Load(), q.sent.Load()
	if s > e {
		return 0
	}
	return int(e - s)
}

// Progress returns the send-progress watermarks: frames accepted into the
// queue and frames actually written to the conn. A growing gap with a
// frozen sent count is the signature of a stalled (not dead) peer.
func (q *SendQueue) Progress() (enqueued, sent uint64) {
	return q.enqueued.Load(), q.sent.Load()
}

// Shed returns how many frames OverflowShed dropped.
func (q *SendQueue) Shed() uint64 { return q.shed.Load() }

// OldestAge returns how long the oldest unwritten frame has been waiting,
// or zero when the queue is drained.
func (q *SendQueue) OldestAge(now time.Time) time.Duration {
	q.mu.Lock()
	defer q.mu.Unlock()
	if len(q.pending) == 0 {
		return 0
	}
	if age := now.Sub(q.pending[0]); age > 0 {
		return age
	}
	return 0
}

func (q *SendQueue) writer() {
	defer close(q.done)
	for {
		select {
		case item := <-q.frames:
			err := q.conn.SendFrame(item.frame)
			q.mu.Lock()
			if len(q.pending) > 0 {
				q.pending = q.pending[1:]
			}
			q.mu.Unlock()
			if err != nil {
				e := err
				q.failed.Store(&e)
				return
			}
			q.sent.Add(1)
		case <-q.quit:
			return
		}
	}
}
