package transport

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

// exerciseConnPair runs a generic send/recv battery over any connected pair.
func exerciseConnPair(t *testing.T, a, b Conn) {
	t.Helper()
	// Simple request/response.
	if err := a.SendFrame([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	got, err := b.RecvFrame()
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "hello" {
		t.Fatalf("got %q", got)
	}
	// Ordering: many frames arrive in send order.
	const n = 100
	done := make(chan error, 1)
	go func() {
		for i := 0; i < n; i++ {
			if err := b.SendFrame([]byte(fmt.Sprintf("frame-%03d", i))); err != nil {
				done <- err
				return
			}
		}
		done <- nil
	}()
	for i := 0; i < n; i++ {
		f, err := a.RecvFrame()
		if err != nil {
			t.Fatal(err)
		}
		if want := fmt.Sprintf("frame-%03d", i); string(f) != want {
			t.Fatalf("frame %d = %q, want %q", i, f, want)
		}
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	// Large frame survives intact.
	big := bytes.Repeat([]byte{0xAB}, 1<<20)
	go func() { _ = a.SendFrame(big) }()
	f, err := b.RecvFrame()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(f, big) {
		t.Fatal("large frame corrupted")
	}
	// Close: receiver unblocks with ErrClosed.
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	deadline := time.After(5 * time.Second)
	errCh := make(chan error, 1)
	go func() {
		for {
			if _, err := b.RecvFrame(); err != nil {
				errCh <- err
				return
			}
		}
	}()
	select {
	case err := <-errCh:
		if !errors.Is(err, ErrClosed) {
			t.Fatalf("recv after close: %v, want ErrClosed", err)
		}
	case <-deadline:
		t.Fatal("RecvFrame did not unblock after close")
	}
}

func TestPipeConnPair(t *testing.T) {
	a, b := Pipe()
	exerciseConnPair(t, a, b)
}

func TestTCPConnPair(t *testing.T) {
	var nw TCP
	l, err := nw.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	accepted := make(chan Conn, 1)
	go func() {
		c, err := l.Accept()
		if err != nil {
			return
		}
		accepted <- c
	}()
	a, err := nw.Dial(l.Addr())
	if err != nil {
		t.Fatal(err)
	}
	b := <-accepted
	exerciseConnPair(t, a, b)
}

func TestInprocListenDial(t *testing.T) {
	n := NewInproc()
	l, err := n.Listen("home")
	if err != nil {
		t.Fatal(err)
	}
	if l.Addr() != "home" {
		t.Errorf("Addr = %q", l.Addr())
	}
	accepted := make(chan Conn, 1)
	go func() {
		c, err := l.Accept()
		if err == nil {
			accepted <- c
		}
	}()
	a, err := n.Dial("home")
	if err != nil {
		t.Fatal(err)
	}
	b := <-accepted
	exerciseConnPair(t, a, b)
}

func TestInprocDuplicateListen(t *testing.T) {
	n := NewInproc()
	if _, err := n.Listen("x"); err != nil {
		t.Fatal(err)
	}
	if _, err := n.Listen("x"); err == nil {
		t.Error("duplicate listen must fail")
	}
}

func TestInprocDialUnknown(t *testing.T) {
	n := NewInproc()
	if _, err := n.Dial("nowhere"); err == nil {
		t.Error("dial to unknown address must fail")
	}
}

func TestInprocListenerClose(t *testing.T) {
	n := NewInproc()
	l, err := n.Listen("x")
	if err != nil {
		t.Fatal(err)
	}
	errCh := make(chan error, 1)
	go func() {
		_, err := l.Accept()
		errCh <- err
	}()
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-errCh:
		if !errors.Is(err, ErrClosed) {
			t.Errorf("Accept after close: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Accept did not unblock")
	}
	// The name is free again.
	if _, err := n.Listen("x"); err != nil {
		t.Errorf("re-listen after close: %v", err)
	}
}

func TestPipeDrainAfterClose(t *testing.T) {
	a, b := Pipe()
	if err := a.SendFrame([]byte("last words")); err != nil {
		t.Fatal(err)
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	// The frame sent before close must still be deliverable.
	f, err := b.RecvFrame()
	if err != nil {
		t.Fatalf("drain after close: %v", err)
	}
	if string(f) != "last words" {
		t.Errorf("drained %q", f)
	}
	if _, err := b.RecvFrame(); !errors.Is(err, ErrClosed) {
		t.Errorf("post-drain recv: %v, want ErrClosed", err)
	}
	if err := b.SendFrame([]byte("x")); !errors.Is(err, ErrClosed) {
		t.Errorf("send after close: %v, want ErrClosed", err)
	}
}

func TestTCPFrameSizeLimit(t *testing.T) {
	var nw TCP
	l, err := nw.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go func() {
		c, err := l.Accept()
		if err == nil {
			defer c.Close()
			_, _ = c.RecvFrame()
		}
	}()
	c, err := nw.Dial(l.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.SendFrame(make([]byte, maxFrame+1)); err == nil {
		t.Error("oversized frame accepted")
	}
}

func TestConcurrentSenders(t *testing.T) {
	var nw TCP
	l, err := nw.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	accepted := make(chan Conn, 1)
	go func() {
		c, err := l.Accept()
		if err == nil {
			accepted <- c
		}
	}()
	a, err := nw.Dial(l.Addr())
	if err != nil {
		t.Fatal(err)
	}
	b := <-accepted
	defer a.Close()

	// Many goroutines share one conn; frames must never interleave.
	const senders, per = 8, 50
	var wg sync.WaitGroup
	for s := 0; s < senders; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			payload := bytes.Repeat([]byte{byte(s)}, 1000+s)
			for i := 0; i < per; i++ {
				if err := a.SendFrame(payload); err != nil {
					t.Errorf("send: %v", err)
					return
				}
			}
		}(s)
	}
	go func() { wg.Wait(); a.Close() }()
	count := 0
	for {
		f, err := b.RecvFrame()
		if err != nil {
			break
		}
		if len(f) < 1000 || len(f) >= 1000+senders {
			t.Fatalf("frame of unexpected size %d", len(f))
		}
		want := f[0]
		if len(f) != 1000+int(want) {
			t.Fatalf("frame size %d does not match tag %d", len(f), want)
		}
		for _, bb := range f {
			if bb != want {
				t.Fatal("frame bytes interleaved")
			}
		}
		count++
	}
	if count != senders*per {
		t.Errorf("received %d frames, want %d", count, senders*per)
	}
}

func TestFlakyKillsDeterministically(t *testing.T) {
	nw := NewFlaky(NewInproc(), 3)
	l, err := nw.Listen("svc")
	if err != nil {
		t.Fatal(err)
	}
	accepted := make(chan Conn, 1)
	go func() {
		c, err := l.Accept()
		if err == nil {
			accepted <- c
		}
	}()
	a, err := nw.Dial("svc")
	if err != nil {
		t.Fatal(err)
	}
	b := <-accepted
	// Ops 1,2 succeed; op 3 fails.
	if err := a.SendFrame([]byte("one")); err != nil {
		t.Fatal(err)
	}
	if _, err := b.RecvFrame(); err != nil {
		t.Fatal(err)
	}
	if err := a.SendFrame([]byte("two")); err == nil {
		t.Fatal("third operation should have failed")
	}
	if nw.Ops() != 3 {
		t.Errorf("ops = %d, want 3", nw.Ops())
	}
}
