package transport

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"

	"hetdsm/internal/wire"
)

// maxFrame bounds a received frame length: the single 64 MiB limit both
// layers share lives in the wire package.
const maxFrame = wire.MaxFrame

// TCP is a Network over stdlib net. Addresses are host:port strings;
// Listen accepts ":0" style addresses and Addr reports the bound port.
type TCP struct{}

// Listen implements Network.
func (TCP) Listen(addr string) (Listener, error) {
	nl, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: %w", err)
	}
	return &tcpListener{nl: nl}, nil
}

// Dial implements Network.
func (TCP) Dial(addr string) (Conn, error) {
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: %w", err)
	}
	return newTCPConn(nc), nil
}

type tcpListener struct {
	nl net.Listener
}

func (l *tcpListener) Accept() (Conn, error) {
	nc, err := l.nl.Accept()
	if err != nil {
		return nil, ErrClosed
	}
	return newTCPConn(nc), nil
}

func (l *tcpListener) Close() error { return l.nl.Close() }
func (l *tcpListener) Addr() string { return l.nl.Addr().String() }

// tcpConn frames messages with a big-endian uint32 length prefix.
type tcpConn struct {
	nc net.Conn
	r  *bufio.Reader

	wmu sync.Mutex
	w   *bufio.Writer
}

func newTCPConn(nc net.Conn) *tcpConn {
	return &tcpConn{
		nc: nc,
		r:  bufio.NewReaderSize(nc, 64<<10),
		w:  bufio.NewWriterSize(nc, 64<<10),
	}
}

func (c *tcpConn) SendFrame(frame []byte) error {
	if len(frame) > maxFrame {
		return fmt.Errorf("transport: frame of %d bytes exceeds limit", len(frame))
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(frame)))
	c.wmu.Lock()
	defer c.wmu.Unlock()
	if _, err := c.w.Write(hdr[:]); err != nil {
		return ErrClosed
	}
	if _, err := c.w.Write(frame); err != nil {
		return ErrClosed
	}
	if err := c.w.Flush(); err != nil {
		return ErrClosed
	}
	return nil
}

func (c *tcpConn) RecvFrame() ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(c.r, hdr[:]); err != nil {
		return nil, ErrClosed
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > maxFrame {
		return nil, fmt.Errorf("transport: frame of %d bytes exceeds limit", n)
	}
	frame := make([]byte, n)
	if _, err := io.ReadFull(c.r, frame); err != nil {
		return nil, ErrClosed
	}
	return frame, nil
}

func (c *tcpConn) Close() error { return c.nc.Close() }
