package transport

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"hetdsm/internal/wire"
)

// maxFrame bounds a received frame length: the single 64 MiB limit both
// layers share lives in the wire package.
const maxFrame = wire.MaxFrame

// keepAlivePeriod is the TCP keep-alive probe interval. Without probes a
// silently-dead peer (yanked cable, NAT entry expired, machine powered
// off) holds its connection slot forever because no traffic ever forces
// the kernel to notice; half an hour of kernel defaults is far too slow
// for a DSM whose locks sit behind these connections.
const keepAlivePeriod = 30 * time.Second

// tuneTCP enables keep-alives on every dialed and accepted connection.
func tuneTCP(nc net.Conn) {
	if tc, ok := nc.(*net.TCPConn); ok {
		tc.SetKeepAlive(true)
		tc.SetKeepAlivePeriod(keepAlivePeriod)
	}
}

// TCP is a Network over stdlib net. Addresses are host:port strings;
// Listen accepts ":0" style addresses and Addr reports the bound port.
type TCP struct{}

// Listen implements Network.
func (TCP) Listen(addr string) (Listener, error) {
	nl, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: %w", err)
	}
	return &tcpListener{nl: nl}, nil
}

// Dial implements Network.
func (TCP) Dial(addr string) (Conn, error) {
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: %w", err)
	}
	tuneTCP(nc)
	return newTCPConn(nc), nil
}

type tcpListener struct {
	nl net.Listener
}

func (l *tcpListener) Accept() (Conn, error) {
	nc, err := l.nl.Accept()
	if err != nil {
		return nil, ErrClosed
	}
	tuneTCP(nc)
	return newTCPConn(nc), nil
}

func (l *tcpListener) Close() error { return l.nl.Close() }
func (l *tcpListener) Addr() string { return l.nl.Addr().String() }

// tcpConn frames messages with a big-endian uint32 length prefix.
type tcpConn struct {
	nc net.Conn
	r  *bufio.Reader

	wmu sync.Mutex
	w   *bufio.Writer
}

func newTCPConn(nc net.Conn) *tcpConn {
	return &tcpConn{
		nc: nc,
		r:  bufio.NewReaderSize(nc, 64<<10),
		w:  bufio.NewWriterSize(nc, 64<<10),
	}
}

func (c *tcpConn) SendFrame(frame []byte) error {
	if len(frame) > maxFrame {
		return fmt.Errorf("transport: frame of %d bytes exceeds limit", len(frame))
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(frame)))
	c.wmu.Lock()
	defer c.wmu.Unlock()
	if _, err := c.w.Write(hdr[:]); err != nil {
		return ErrClosed
	}
	if _, err := c.w.Write(frame); err != nil {
		return ErrClosed
	}
	if err := c.w.Flush(); err != nil {
		return ErrClosed
	}
	return nil
}

func (c *tcpConn) RecvFrame() ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(c.r, hdr[:]); err != nil {
		return nil, ErrClosed
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > maxFrame {
		return nil, fmt.Errorf("transport: frame of %d bytes exceeds limit", n)
	}
	frame := make([]byte, n)
	if _, err := io.ReadFull(c.r, frame); err != nil {
		return nil, ErrClosed
	}
	return frame, nil
}

func (c *tcpConn) Close() error { return c.nc.Close() }

// SendFrameDeadline implements DeadlineConn with a real socket write
// deadline. A timeout can strand a half-written frame in the stream, so
// the conn is closed before ErrDeadline is returned.
func (c *tcpConn) SendFrameDeadline(frame []byte, deadline time.Time) error {
	if deadline.IsZero() {
		return c.SendFrame(frame)
	}
	if len(frame) > maxFrame {
		return fmt.Errorf("transport: frame of %d bytes exceeds limit", len(frame))
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(frame)))
	c.wmu.Lock()
	defer c.wmu.Unlock()
	if err := c.nc.SetWriteDeadline(deadline); err != nil {
		return ErrClosed
	}
	defer c.nc.SetWriteDeadline(time.Time{})
	if _, err := c.w.Write(hdr[:]); err != nil {
		return c.opErr(err)
	}
	if _, err := c.w.Write(frame); err != nil {
		return c.opErr(err)
	}
	if err := c.w.Flush(); err != nil {
		return c.opErr(err)
	}
	return nil
}

// RecvFrameDeadline implements DeadlineConn with a real socket read
// deadline. A timeout can strand a half-read frame (desynced framing), so
// the conn is closed before ErrDeadline is returned.
func (c *tcpConn) RecvFrameDeadline(deadline time.Time) ([]byte, error) {
	if deadline.IsZero() {
		return c.RecvFrame()
	}
	if err := c.nc.SetReadDeadline(deadline); err != nil {
		return nil, ErrClosed
	}
	defer c.nc.SetReadDeadline(time.Time{})
	var hdr [4]byte
	if _, err := io.ReadFull(c.r, hdr[:]); err != nil {
		return nil, c.opErr(err)
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > maxFrame {
		return nil, fmt.Errorf("transport: frame of %d bytes exceeds limit", n)
	}
	frame := make([]byte, n)
	if _, err := io.ReadFull(c.r, frame); err != nil {
		return nil, c.opErr(err)
	}
	return frame, nil
}

// opErr maps a deadline expiry to ErrDeadline (severing the conn — the
// stream may be mid-frame) and everything else to ErrClosed.
func (c *tcpConn) opErr(err error) error {
	if ne, ok := err.(net.Error); ok && ne.Timeout() {
		c.nc.Close()
		return ErrDeadline
	}
	return ErrClosed
}
