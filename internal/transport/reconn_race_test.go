package transport

import (
	"sync"
	"testing"
	"time"
)

// holdNet wraps a Network and lets the test freeze dials to one address,
// pinning the exact window where SetAddrs can race an in-flight ensure().
type holdNet struct {
	inner Network

	mu   sync.Mutex
	held map[string]chan struct{}
}

func newHoldNet(inner Network) *holdNet {
	return &holdNet{inner: inner, held: make(map[string]chan struct{})}
}

func (h *holdNet) hold(addr string) chan struct{} {
	h.mu.Lock()
	defer h.mu.Unlock()
	ch := make(chan struct{})
	h.held[addr] = ch
	return ch
}

func (h *holdNet) Listen(addr string) (Listener, error) { return h.inner.Listen(addr) }

func (h *holdNet) Dial(addr string) (Conn, error) {
	h.mu.Lock()
	gate := h.held[addr]
	h.mu.Unlock()
	if gate != nil {
		<-gate
	}
	return h.inner.Dial(addr)
}

// TestReconnSetAddrsDuringDial pins the stale-address race: SetAddrs lands
// while ensure() has a dial to the old address in flight. The dial's
// success must NOT be installed — installing it would clobber the broken
// flag SetAddrs raised and silently undo the redirect. The next frame must
// reach the new address. Run under -race: the regression this pins was a
// logical race on addrs/broken between SetAddrs and ensure's success path.
func TestReconnSetAddrsDuringDial(t *testing.T) {
	inner := NewInproc()
	nw := newHoldNet(inner)

	recvAt := func(addr string) <-chan []byte {
		l, err := inner.Listen(addr)
		if err != nil {
			t.Fatal(err)
		}
		out := make(chan []byte, 16)
		go func() {
			for {
				c, err := l.Accept()
				if err != nil {
					return
				}
				go func(c Conn) {
					for {
						f, err := c.RecvFrame()
						if err != nil {
							return
						}
						out <- f
					}
				}(c)
			}
		}()
		return out
	}
	oldFrames := recvAt("old")
	newFrames := recvAt("new")

	r := NewReconn(nw, []string{"old"}, Backoff{Base: time.Millisecond, Max: time.Millisecond, Factor: 1, Attempts: 50})
	gate := nw.hold("old")

	sent := make(chan error, 1)
	go func() { sent <- r.SendFrame([]byte("payload")) }()
	// Wait until the dial to "old" is actually parked on the gate.
	for {
		r.mu.Lock()
		inFlight := r.attempts.Load() > 0
		r.mu.Unlock()
		if inFlight {
			break
		}
		time.Sleep(time.Millisecond)
	}

	// The redirect lands mid-dial.
	r.SetAddrs([]string{"new"})
	close(gate) // old dial now completes — too late to matter

	if err := <-sent; err != nil {
		t.Fatalf("send: %v", err)
	}
	select {
	case <-newFrames:
	case f := <-oldFrames:
		t.Fatalf("frame %q delivered to the stale address after SetAddrs", f)
	case <-time.After(5 * time.Second):
		t.Fatal("frame never delivered")
	}
	if addr := r.Addr(); addr != "new" {
		t.Fatalf("reconn settled on %q, want %q", addr, "new")
	}
	r.Close()
}

// TestReconnSetAddrsStorm hammers SetAddrs against concurrent traffic so
// -race can inspect every interleaving of the address-list handoff.
func TestReconnSetAddrsStorm(t *testing.T) {
	inner := NewInproc()
	for _, addr := range []string{"a", "b"} {
		l, err := inner.Listen(addr)
		if err != nil {
			t.Fatal(err)
		}
		go func() {
			for {
				c, err := l.Accept()
				if err != nil {
					return
				}
				go func(c Conn) {
					for {
						if _, err := c.RecvFrame(); err != nil {
							return
						}
					}
				}(c)
			}
		}()
	}
	r := NewReconn(inner, []string{"a"}, Backoff{Base: time.Microsecond, Max: time.Microsecond, Factor: 1, Attempts: 200})
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(2)
	go func() {
		defer wg.Done()
		lists := [][]string{{"a"}, {"b"}, {"a", "b"}, {"b", "a"}}
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			r.SetAddrs(lists[i%len(lists)])
		}
	}()
	go func() {
		defer wg.Done()
		defer close(stop)
		for i := 0; i < 300; i++ {
			r.SendFrame([]byte{byte(i)}) // errors fine; hangs and races are not
		}
	}()
	waitSends := make(chan struct{})
	go func() { wg.Wait(); close(waitSends) }()
	select {
	case <-waitSends:
	case <-time.After(30 * time.Second):
		t.Fatal("storm hung")
	}
	r.Close()
}
