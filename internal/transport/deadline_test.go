package transport

import (
	"errors"
	"testing"
	"time"

	"hetdsm/internal/vclock"
)

// TestPipeDeadlineExpires: a pipe whose peer never drains fills its buffer;
// a deadline-bounded send must fail with ErrDeadline and sever the conn.
func TestPipeDeadlineExpires(t *testing.T) {
	a, _ := Pipe()
	// Fill the 64-frame buffer without a reader.
	for i := 0; i < 64; i++ {
		if err := a.SendFrame([]byte{1}); err != nil {
			t.Fatalf("buffered send %d: %v", i, err)
		}
	}
	start := time.Now()
	err := SendFrameDeadline(a, []byte{2}, time.Now().Add(20*time.Millisecond))
	if !errors.Is(err, ErrDeadline) {
		t.Fatalf("send into full pipe: got %v, want ErrDeadline", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("deadline took %v to fire", elapsed)
	}
	// The conn is severed per the DeadlineConn contract.
	if err := a.SendFrame([]byte{3}); !errors.Is(err, ErrClosed) {
		t.Fatalf("send after missed deadline: got %v, want ErrClosed", err)
	}
}

// TestPipeRecvDeadline: receive with nothing inbound times out; buffered
// frames are still delivered ahead of the deadline check.
func TestPipeRecvDeadline(t *testing.T) {
	a, b := Pipe()
	if _, err := RecvFrameDeadline(b, time.Now().Add(10*time.Millisecond)); !errors.Is(err, ErrDeadline) {
		t.Fatalf("recv with empty pipe: want ErrDeadline")
	}
	// b is now severed; a fresh pair shows buffered delivery wins.
	a, b = Pipe()
	if err := a.SendFrame([]byte("x")); err != nil {
		t.Fatal(err)
	}
	f, err := RecvFrameDeadline(b, time.Now().Add(10*time.Millisecond))
	if err != nil || string(f) != "x" {
		t.Fatalf("buffered recv: %q, %v", f, err)
	}
}

// TestDeadlineHelpersFallBack: a Conn without deadline support (or a zero
// deadline) gets plain unbounded semantics from the helpers.
type plainConn struct{ Conn }

func TestDeadlineHelpersFallBack(t *testing.T) {
	a, b := Pipe()
	pa := plainConn{a}
	if err := SendFrameDeadline(pa, []byte("y"), time.Now().Add(time.Hour)); err != nil {
		t.Fatal(err)
	}
	f, err := RecvFrameDeadline(plainConn{b}, time.Time{})
	if err != nil || string(f) != "y" {
		t.Fatalf("fallback recv: %q, %v", f, err)
	}
}

// TestTCPDeadlines drives real socket deadlines: an unread TCP stream
// eventually exerts backpressure and the write deadline fires; a read with
// no inbound data fires the read deadline; both sever the conn.
func TestTCPDeadlines(t *testing.T) {
	var nw TCP
	l, err := nw.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	accepted := make(chan Conn, 1)
	go func() {
		c, err := l.Accept()
		if err == nil {
			accepted <- c
		}
	}()
	c, err := nw.Dial(l.Addr())
	if err != nil {
		t.Fatal(err)
	}
	server := <-accepted
	defer server.Close()

	// Read deadline with a silent peer.
	if _, err := RecvFrameDeadline(c, time.Now().Add(30*time.Millisecond)); !errors.Is(err, ErrDeadline) {
		t.Fatalf("tcp recv: got %v, want ErrDeadline", err)
	}
	// The conn was severed; the server side notices.
	if _, err := server.RecvFrame(); err == nil {
		t.Fatal("server read from severed conn succeeded")
	}
}

// TestTCPWriteDeadlineFires fills the socket until the write deadline
// trips, proving a stalled reader cannot block a deadline-bounded sender.
func TestTCPWriteDeadlineFires(t *testing.T) {
	var nw TCP
	l, err := nw.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	accepted := make(chan Conn, 1)
	go func() {
		c, err := l.Accept()
		if err == nil {
			accepted <- c
		}
	}()
	c, err := nw.Dial(l.Addr())
	if err != nil {
		t.Fatal(err)
	}
	server := <-accepted
	defer server.Close() // never reads: the classic wedged peer

	frame := make([]byte, 1<<20)
	var sawDeadline bool
	deadline := time.Now().Add(10 * time.Second)
	for i := 0; i < 256 && time.Now().Before(deadline); i++ {
		err := SendFrameDeadline(c, frame, time.Now().Add(50*time.Millisecond))
		if errors.Is(err, ErrDeadline) {
			sawDeadline = true
			break
		}
		if err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
	}
	if !sawDeadline {
		t.Fatal("write deadline never fired against a non-reading peer")
	}
	if err := c.SendFrame([]byte{1}); err == nil {
		t.Fatal("send on severed conn succeeded")
	}
}

// TestDelayedVirtualClockDeadline proves the sim net's deadlines run on a
// virtual clock: nothing fires until the clock is advanced past the
// budget, then ErrDeadline lands deterministically without real sleeps.
func TestDelayedVirtualClockDeadline(t *testing.T) {
	clock := vclock.NewVirtual(time.Unix(0, 0))
	inner := NewInproc()
	if _, err := inner.Listen("h"); err != nil {
		t.Fatal(err)
	}
	d := NewDelayed(inner, DelayProfile{Clock: clock})
	c, err := d.Dial("h")
	if err != nil {
		t.Fatal(err)
	}
	d.StallConns() // freeze: the send can only end via the deadline

	errCh := make(chan error, 1)
	go func() {
		errCh <- SendFrameDeadline(c, []byte{1}, clock.Now().Add(100*time.Millisecond))
	}()
	select {
	case err := <-errCh:
		t.Fatalf("send finished before the virtual deadline: %v", err)
	case <-time.After(20 * time.Millisecond):
	}
	clock.Advance(200 * time.Millisecond)
	select {
	case err := <-errCh:
		if !errors.Is(err, ErrDeadline) {
			t.Fatalf("got %v, want ErrDeadline", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("virtual deadline never fired")
	}
}
