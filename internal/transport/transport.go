// Package transport moves encoded wire frames between nodes.
//
// The DSD layer deals in frames (encoded wire.Messages) so that packing and
// unpacking — the t_pack/t_unpack components of Eq. 1 — are performed and
// timed by the caller regardless of transport. Two transports are provided:
// an in-process one (deterministic, used by the test and benchmark
// harnesses, standing in for the paper's LAN) and a TCP one over the
// standard net package for genuinely distributed runs.
package transport

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// ErrClosed is returned by operations on a closed connection or listener.
var ErrClosed = errors.New("transport: closed")

// ErrDeadline is returned by deadline-bounded frame operations when the
// budget expires before the frame moves. On a stream transport a missed
// deadline can leave a frame half-transferred, so implementations sever
// the connection before returning it; callers must treat the conn as
// broken and redial.
var ErrDeadline = errors.New("transport: deadline exceeded")

// Conn is a bidirectional, ordered, reliable frame connection.
type Conn interface {
	// SendFrame transmits one frame. It may block when the peer is slow.
	SendFrame(frame []byte) error
	// RecvFrame blocks for the next frame. It returns ErrClosed once the
	// connection is closed and drained.
	RecvFrame() ([]byte, error)
	// Close tears the connection down; both ends see ErrClosed.
	Close() error
}

// Listener accepts inbound connections.
type Listener interface {
	// Accept blocks for the next inbound connection.
	Accept() (Conn, error)
	// Close stops accepting; blocked Accepts return ErrClosed.
	Close() error
	// Addr returns the address peers dial.
	Addr() string
}

// Network creates listeners and dials peers; implementations are the
// in-process network and the TCP network.
type Network interface {
	// Listen opens a listener at addr (transport-specific syntax).
	Listen(addr string) (Listener, error)
	// Dial connects to a listener.
	Dial(addr string) (Conn, error)
}

// DeadlineConn is optionally implemented by Conns whose frame operations
// can be bounded by an absolute deadline. A zero deadline means no bound
// (plain SendFrame/RecvFrame semantics). After ErrDeadline the connection
// is no longer usable.
type DeadlineConn interface {
	Conn
	// SendFrameDeadline transmits one frame, failing with ErrDeadline if
	// the frame has not been handed to the transport by the deadline.
	SendFrameDeadline(frame []byte, deadline time.Time) error
	// RecvFrameDeadline blocks for the next frame until the deadline.
	RecvFrameDeadline(deadline time.Time) ([]byte, error)
}

// SendFrameDeadline sends one frame with an absolute deadline when the
// conn supports deadlines, and falls back to an unbounded SendFrame
// otherwise (or when deadline is zero). The fallback keeps deadline-free
// transports working unchanged; only deadline-capable paths gain bounded
// blocking.
func SendFrameDeadline(c Conn, frame []byte, deadline time.Time) error {
	if dc, ok := c.(DeadlineConn); ok && !deadline.IsZero() {
		return dc.SendFrameDeadline(frame, deadline)
	}
	return c.SendFrame(frame)
}

// RecvFrameDeadline is the receive counterpart of SendFrameDeadline.
func RecvFrameDeadline(c Conn, deadline time.Time) ([]byte, error) {
	if dc, ok := c.(DeadlineConn); ok && !deadline.IsZero() {
		return dc.RecvFrameDeadline(deadline)
	}
	return c.RecvFrame()
}

// --- In-process transport ---

// Inproc is an in-memory Network. Addresses are arbitrary names. The zero
// value is not usable; construct with NewInproc.
type Inproc struct {
	mu        sync.Mutex
	listeners map[string]*inprocListener
}

// NewInproc returns an empty in-process network.
func NewInproc() *Inproc {
	return &Inproc{listeners: make(map[string]*inprocListener)}
}

// Listen implements Network.
func (n *Inproc) Listen(addr string) (Listener, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, ok := n.listeners[addr]; ok {
		return nil, fmt.Errorf("transport: address %q already in use", addr)
	}
	l := &inprocListener{net: n, addr: addr, backlog: make(chan Conn, 16), done: make(chan struct{})}
	n.listeners[addr] = l
	return l, nil
}

// Dial implements Network.
func (n *Inproc) Dial(addr string) (Conn, error) {
	n.mu.Lock()
	l, ok := n.listeners[addr]
	n.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("transport: no listener at %q", addr)
	}
	client, server := Pipe()
	select {
	case l.backlog <- server:
		return client, nil
	case <-l.done:
		return nil, ErrClosed
	}
}

type inprocListener struct {
	net     *Inproc
	addr    string
	backlog chan Conn
	done    chan struct{}
	once    sync.Once
}

func (l *inprocListener) Accept() (Conn, error) {
	select {
	case c := <-l.backlog:
		return c, nil
	case <-l.done:
		return nil, ErrClosed
	}
}

func (l *inprocListener) Close() error {
	l.once.Do(func() {
		close(l.done)
		l.net.mu.Lock()
		delete(l.net.listeners, l.addr)
		l.net.mu.Unlock()
	})
	return nil
}

func (l *inprocListener) Addr() string { return l.addr }

// Pipe returns a connected pair of in-memory Conns, each end seeing the
// other's sends. Useful for directly wiring two nodes in tests.
func Pipe() (Conn, Conn) {
	ab := make(chan []byte, 64)
	ba := make(chan []byte, 64)
	done := make(chan struct{})
	var once sync.Once
	closeFn := func() { once.Do(func() { close(done) }) }
	a := &pipeConn{send: ab, recv: ba, done: done, close: closeFn}
	b := &pipeConn{send: ba, recv: ab, done: done, close: closeFn}
	return a, b
}

type pipeConn struct {
	send  chan []byte
	recv  chan []byte
	done  chan struct{}
	close func()
}

func (c *pipeConn) SendFrame(frame []byte) error {
	select {
	case <-c.done:
		return ErrClosed
	default:
	}
	select {
	case c.send <- frame:
		return nil
	case <-c.done:
		return ErrClosed
	}
}

func (c *pipeConn) RecvFrame() ([]byte, error) {
	// Drain pending frames even after close, like a TCP receive buffer.
	select {
	case f := <-c.recv:
		return f, nil
	default:
	}
	select {
	case f := <-c.recv:
		return f, nil
	case <-c.done:
		// One more non-blocking look: a frame may have raced with close.
		select {
		case f := <-c.recv:
			return f, nil
		default:
			return nil, ErrClosed
		}
	}
}

func (c *pipeConn) Close() error {
	c.close()
	return nil
}

// SendFrameDeadline implements DeadlineConn. Pipes keep frame boundaries
// on a missed deadline, but the conn is severed anyway so every transport
// reports the same post-deadline contract.
func (c *pipeConn) SendFrameDeadline(frame []byte, deadline time.Time) error {
	if deadline.IsZero() {
		return c.SendFrame(frame)
	}
	select {
	case <-c.done:
		return ErrClosed
	default:
	}
	timer := time.NewTimer(time.Until(deadline))
	defer timer.Stop()
	select {
	case c.send <- frame:
		return nil
	case <-c.done:
		return ErrClosed
	case <-timer.C:
		c.close()
		return ErrDeadline
	}
}

// RecvFrameDeadline implements DeadlineConn.
func (c *pipeConn) RecvFrameDeadline(deadline time.Time) ([]byte, error) {
	if deadline.IsZero() {
		return c.RecvFrame()
	}
	select {
	case f := <-c.recv:
		return f, nil
	default:
	}
	timer := time.NewTimer(time.Until(deadline))
	defer timer.Stop()
	select {
	case f := <-c.recv:
		return f, nil
	case <-c.done:
		// One more non-blocking look: a frame may have raced with close.
		select {
		case f := <-c.recv:
			return f, nil
		default:
			return nil, ErrClosed
		}
	case <-timer.C:
		c.close()
		return nil, ErrDeadline
	}
}
