// Package transport moves encoded wire frames between nodes.
//
// The DSD layer deals in frames (encoded wire.Messages) so that packing and
// unpacking — the t_pack/t_unpack components of Eq. 1 — are performed and
// timed by the caller regardless of transport. Two transports are provided:
// an in-process one (deterministic, used by the test and benchmark
// harnesses, standing in for the paper's LAN) and a TCP one over the
// standard net package for genuinely distributed runs.
package transport

import (
	"errors"
	"fmt"
	"sync"
)

// ErrClosed is returned by operations on a closed connection or listener.
var ErrClosed = errors.New("transport: closed")

// Conn is a bidirectional, ordered, reliable frame connection.
type Conn interface {
	// SendFrame transmits one frame. It may block when the peer is slow.
	SendFrame(frame []byte) error
	// RecvFrame blocks for the next frame. It returns ErrClosed once the
	// connection is closed and drained.
	RecvFrame() ([]byte, error)
	// Close tears the connection down; both ends see ErrClosed.
	Close() error
}

// Listener accepts inbound connections.
type Listener interface {
	// Accept blocks for the next inbound connection.
	Accept() (Conn, error)
	// Close stops accepting; blocked Accepts return ErrClosed.
	Close() error
	// Addr returns the address peers dial.
	Addr() string
}

// Network creates listeners and dials peers; implementations are the
// in-process network and the TCP network.
type Network interface {
	// Listen opens a listener at addr (transport-specific syntax).
	Listen(addr string) (Listener, error)
	// Dial connects to a listener.
	Dial(addr string) (Conn, error)
}

// --- In-process transport ---

// Inproc is an in-memory Network. Addresses are arbitrary names. The zero
// value is not usable; construct with NewInproc.
type Inproc struct {
	mu        sync.Mutex
	listeners map[string]*inprocListener
}

// NewInproc returns an empty in-process network.
func NewInproc() *Inproc {
	return &Inproc{listeners: make(map[string]*inprocListener)}
}

// Listen implements Network.
func (n *Inproc) Listen(addr string) (Listener, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, ok := n.listeners[addr]; ok {
		return nil, fmt.Errorf("transport: address %q already in use", addr)
	}
	l := &inprocListener{net: n, addr: addr, backlog: make(chan Conn, 16), done: make(chan struct{})}
	n.listeners[addr] = l
	return l, nil
}

// Dial implements Network.
func (n *Inproc) Dial(addr string) (Conn, error) {
	n.mu.Lock()
	l, ok := n.listeners[addr]
	n.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("transport: no listener at %q", addr)
	}
	client, server := Pipe()
	select {
	case l.backlog <- server:
		return client, nil
	case <-l.done:
		return nil, ErrClosed
	}
}

type inprocListener struct {
	net     *Inproc
	addr    string
	backlog chan Conn
	done    chan struct{}
	once    sync.Once
}

func (l *inprocListener) Accept() (Conn, error) {
	select {
	case c := <-l.backlog:
		return c, nil
	case <-l.done:
		return nil, ErrClosed
	}
}

func (l *inprocListener) Close() error {
	l.once.Do(func() {
		close(l.done)
		l.net.mu.Lock()
		delete(l.net.listeners, l.addr)
		l.net.mu.Unlock()
	})
	return nil
}

func (l *inprocListener) Addr() string { return l.addr }

// Pipe returns a connected pair of in-memory Conns, each end seeing the
// other's sends. Useful for directly wiring two nodes in tests.
func Pipe() (Conn, Conn) {
	ab := make(chan []byte, 64)
	ba := make(chan []byte, 64)
	done := make(chan struct{})
	var once sync.Once
	closeFn := func() { once.Do(func() { close(done) }) }
	a := &pipeConn{send: ab, recv: ba, done: done, close: closeFn}
	b := &pipeConn{send: ba, recv: ab, done: done, close: closeFn}
	return a, b
}

type pipeConn struct {
	send  chan []byte
	recv  chan []byte
	done  chan struct{}
	close func()
}

func (c *pipeConn) SendFrame(frame []byte) error {
	select {
	case <-c.done:
		return ErrClosed
	default:
	}
	select {
	case c.send <- frame:
		return nil
	case <-c.done:
		return ErrClosed
	}
}

func (c *pipeConn) RecvFrame() ([]byte, error) {
	// Drain pending frames even after close, like a TCP receive buffer.
	select {
	case f := <-c.recv:
		return f, nil
	default:
	}
	select {
	case f := <-c.recv:
		return f, nil
	case <-c.done:
		// One more non-blocking look: a frame may have raced with close.
		select {
		case f := <-c.recv:
			return f, nil
		default:
			return nil, ErrClosed
		}
	}
}

func (c *pipeConn) Close() error {
	c.close()
	return nil
}
