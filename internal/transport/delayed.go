package transport

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"hetdsm/internal/vclock"
)

// DelayProfile tunes a Delayed network's stall fault family. All three
// mechanisms only ever change wall-clock timing: frames still arrive
// exactly once, in order, with unchanged bytes, so committed DSM state is
// identical to a fault-free run — only latency (and therefore deadline
// hits) differs.
type DelayProfile struct {
	// Latency bounds a seeded uniform per-frame send delay in [0, Latency).
	Latency time.Duration
	// DribbleChunks > 1 spreads each frame's delay over that many separate
	// sleeps, modeling a sender that trickles bytes out (tiny congestion
	// windows, Nagle-vs-delayed-ack pathologies) instead of pausing once.
	DribbleChunks int
	// StallEvery > 0 freezes every Nth frame network-wide for StallFor —
	// a full-stall window during which that frame makes no progress.
	StallEvery int
	// StallFor is the full-stall window length (default 1ms if StallEvery
	// is set and StallFor is not).
	StallFor time.Duration
	// Seed makes the latency draws deterministic.
	Seed int64
	// Clock drives delays and deadlines; nil means the system clock.
	// Tests pass a vclock.Virtual to fire deadlines deterministically.
	Clock vclock.Clock
}

// Delayed wraps a Network with the stall fault family: seeded per-frame
// latency, dribbled writes and full-stall windows (see DelayProfile), plus
// manual full stalls for tests. It is the alive-but-slow counterpart of
// Flaky: the peer never dies, it just stops making progress.
//
// Conns implement DeadlineConn: a deadline expiring while a frame is
// delayed or stalled severs the conn and returns ErrDeadline, exactly the
// behavior a real socket deadline gives on a wedged connection.
type Delayed struct {
	inner Network
	prof  DelayProfile
	clock vclock.Clock

	mu    sync.Mutex
	rng   *rand.Rand
	conns []*delayedConn // every conn wrapped so far (StallConns targets)

	frames atomic.Uint64 // frames that went through a delay decision
	stalls atomic.Uint64 // full-stall windows served (scheduled + manual)
}

// NewDelayed wraps inner with the given profile.
func NewDelayed(inner Network, prof DelayProfile) *Delayed {
	if prof.StallEvery > 0 && prof.StallFor <= 0 {
		prof.StallFor = time.Millisecond
	}
	if prof.DribbleChunks < 1 {
		prof.DribbleChunks = 1
	}
	clock := prof.Clock
	if clock == nil {
		clock = vclock.System()
	}
	return &Delayed{
		inner: inner,
		prof:  prof,
		clock: clock,
		rng:   rand.New(rand.NewSource(prof.Seed)),
	}
}

// Frames returns how many sends passed through the delay schedule.
func (d *Delayed) Frames() uint64 { return d.frames.Load() }

// Stalls returns how many full-stall windows were served.
func (d *Delayed) Stalls() uint64 { return d.stalls.Load() }

// StallConns freezes every connection currently open through this network
// indefinitely: their sends and receives block until Resume (or until a
// deadline or Close severs them). Connections dialed or accepted after
// this call are unaffected — a wedged connection is a per-socket fault
// (full socket buffer, dead NAT entry), not a dead host, so a fresh dial
// reaches the peer. This models the scenario the deadline plane exists
// for: redial-and-replay recovers, waiting does not.
func (d *Delayed) StallConns() {
	d.mu.Lock()
	defer d.mu.Unlock()
	for _, c := range d.conns {
		c.setStalled(true)
	}
}

// Resume unfreezes every connection frozen by StallConns.
func (d *Delayed) Resume() {
	d.mu.Lock()
	defer d.mu.Unlock()
	for _, c := range d.conns {
		c.setStalled(false)
	}
}

// delay draws this frame's latency schedule: the number of sleep chunks,
// the per-chunk duration, and whether this frame hits a full-stall window.
func (d *Delayed) delay() (chunks int, chunk time.Duration, stall time.Duration) {
	n := d.frames.Add(1)
	var total time.Duration
	if d.prof.Latency > 0 {
		d.mu.Lock()
		total = time.Duration(d.rng.Int63n(int64(d.prof.Latency)))
		d.mu.Unlock()
	}
	chunks = d.prof.DribbleChunks
	chunk = total / time.Duration(chunks)
	if d.prof.StallEvery > 0 && n%uint64(d.prof.StallEvery) == 0 {
		stall = d.prof.StallFor
		d.stalls.Add(1)
	}
	return chunks, chunk, stall
}

// Listen implements Network.
func (d *Delayed) Listen(addr string) (Listener, error) {
	l, err := d.inner.Listen(addr)
	if err != nil {
		return nil, err
	}
	return &delayedListener{inner: l, d: d}, nil
}

// Dial implements Network.
func (d *Delayed) Dial(addr string) (Conn, error) {
	c, err := d.inner.Dial(addr)
	if err != nil {
		return nil, err
	}
	return d.wrap(c), nil
}

func (d *Delayed) wrap(c Conn) *delayedConn {
	dc := &delayedConn{inner: c, d: d, resume: make(chan struct{})}
	close(dc.resume) // not stalled: a closed chan never blocks
	d.mu.Lock()
	d.conns = append(d.conns, dc)
	d.mu.Unlock()
	return dc
}

type delayedListener struct {
	inner Listener
	d     *Delayed
}

func (l *delayedListener) Accept() (Conn, error) {
	c, err := l.inner.Accept()
	if err != nil {
		return nil, err
	}
	return l.d.wrap(c), nil
}

func (l *delayedListener) Close() error { return l.inner.Close() }
func (l *delayedListener) Addr() string { return l.inner.Addr() }

// delayedConn injects the schedule around an inner Conn. The stall gate is
// a swappable channel: closed means flowing, open means frozen until the
// channel is closed by Resume.
type delayedConn struct {
	inner Conn
	d     *Delayed

	mu     sync.Mutex
	resume chan struct{}
	closed bool
	down   chan struct{} // lazily created close signal
}

func (c *delayedConn) setStalled(on bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	select {
	case <-c.resume:
		// currently flowing
		if on {
			c.resume = make(chan struct{})
		}
	default:
		// currently frozen
		if !on {
			close(c.resume)
		}
	}
}

func (c *delayedConn) gate() <-chan struct{} {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.resume
}

func (c *delayedConn) closedCh() chan struct{} {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.down == nil {
		c.down = make(chan struct{})
	}
	return c.down
}

// wait blocks for the conn's stall gate plus the scheduled delay, bounded
// by the (possibly zero) deadline on the network's clock. It reports
// ErrDeadline/ErrClosed, or nil once the frame may proceed.
func (c *delayedConn) wait(deadline time.Time) error {
	var expire <-chan time.Time
	if !deadline.IsZero() {
		expire = c.d.clock.After(deadline.Sub(c.d.clock.Now()))
	}
	down := c.closedCh()
	// Manual stall gate first: block while frozen.
	select {
	case <-c.gate():
	case <-down:
		return ErrClosed
	case <-expire:
		c.Close()
		return ErrDeadline
	}
	chunks, chunk, stall := c.d.delay()
	if stall > 0 {
		select {
		case <-c.d.clock.After(stall):
		case <-down:
			return ErrClosed
		case <-expire:
			c.Close()
			return ErrDeadline
		}
	}
	for i := 0; i < chunks && chunk > 0; i++ {
		select {
		case <-c.d.clock.After(chunk):
		case <-down:
			return ErrClosed
		case <-expire:
			c.Close()
			return ErrDeadline
		}
	}
	return nil
}

func (c *delayedConn) SendFrame(frame []byte) error {
	if err := c.wait(time.Time{}); err != nil {
		return err
	}
	return c.inner.SendFrame(frame)
}

func (c *delayedConn) RecvFrame() ([]byte, error) {
	// Receives pay no scheduled latency (the sender already did) but do
	// honor a freeze: a wedged link delivers nothing in either direction.
	down := c.closedCh()
	select {
	case <-c.gate():
	case <-down:
		return nil, ErrClosed
	}
	return c.inner.RecvFrame()
}

func (c *delayedConn) SendFrameDeadline(frame []byte, deadline time.Time) error {
	if err := c.wait(deadline); err != nil {
		return err
	}
	return SendFrameDeadline(c.inner, frame, deadline)
}

func (c *delayedConn) RecvFrameDeadline(deadline time.Time) ([]byte, error) {
	var expire <-chan time.Time
	if !deadline.IsZero() {
		expire = c.d.clock.After(deadline.Sub(c.d.clock.Now()))
	}
	down := c.closedCh()
	select {
	case <-c.gate():
	case <-down:
		return nil, ErrClosed
	case <-expire:
		c.Close()
		return nil, ErrDeadline
	}
	return RecvFrameDeadline(c.inner, deadline)
}

func (c *delayedConn) Close() error {
	c.mu.Lock()
	if !c.closed {
		c.closed = true
		if c.down == nil {
			c.down = make(chan struct{})
		}
		close(c.down)
	}
	c.mu.Unlock()
	return c.inner.Close()
}
