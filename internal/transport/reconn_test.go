package transport

import (
	"math/rand"
	"sync/atomic"
	"testing"
	"time"
)

func TestBackoffDelayShape(t *testing.T) {
	b := Backoff{Base: time.Millisecond, Max: 8 * time.Millisecond, Factor: 2, Attempts: 10}
	// Without jitter the schedule is exact: 0, 1ms, 2ms, 4ms, 8ms, 8ms...
	want := []time.Duration{0, time.Millisecond, 2 * time.Millisecond, 4 * time.Millisecond,
		8 * time.Millisecond, 8 * time.Millisecond, 8 * time.Millisecond}
	for i, w := range want {
		if got := b.Delay(i, nil); got != w {
			t.Errorf("Delay(%d) = %v, want %v", i, got, w)
		}
	}

	// Jitter only shrinks the delay, never grows or negates it.
	b.Jitter = 0.3
	rng := rand.New(rand.NewSource(1))
	for i := 1; i < 20; i++ {
		d := b.Delay(i, rng)
		full := b.Delay(i, nil)
		if d > full || d < time.Duration(float64(full)*0.7)-time.Nanosecond {
			t.Errorf("jittered Delay(%d) = %v, outside [%v, %v]", i, d, time.Duration(float64(full)*0.7), full)
		}
	}

	// Identical seeds give identical schedules.
	a1, a2 := rand.New(rand.NewSource(7)), rand.New(rand.NewSource(7))
	for i := 0; i < 10; i++ {
		if d1, d2 := b.Delay(i, a1), b.Delay(i, a2); d1 != d2 {
			t.Fatalf("same-seed Delay(%d) diverged: %v vs %v", i, d1, d2)
		}
	}
}

// echoServe answers every received frame with itself until the listener
// closes; conns counts accepted connections.
func echoServe(l Listener, conns *atomic.Int64) {
	for {
		c, err := l.Accept()
		if err != nil {
			return
		}
		conns.Add(1)
		go func() {
			defer c.Close()
			for {
				f, err := c.RecvFrame()
				if err != nil {
					return
				}
				if err := c.SendFrame(f); err != nil {
					return
				}
			}
		}()
	}
}

func fastPolicy() Backoff {
	return Backoff{Base: 100 * time.Microsecond, Max: time.Millisecond, Factor: 2, Attempts: 20, Seed: 1}
}

func TestReconnHealsSendAfterSever(t *testing.T) {
	nw := NewInproc()
	l, err := nw.Listen("a")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	var conns atomic.Int64
	go echoServe(l, &conns)

	var hooks atomic.Int64
	r := NewReconn(nw, []string{"a"}, fastPolicy())
	r.OnConnect = func(c Conn) error { hooks.Add(1); return nil }
	if err := r.Connect(); err != nil {
		t.Fatal(err)
	}
	if r.Reconnects() != 0 {
		t.Errorf("initial dial counted as reconnect: %d", r.Reconnects())
	}

	if err := r.SendFrame([]byte("one")); err != nil {
		t.Fatal(err)
	}
	if f, err := r.RecvFrame(); err != nil || string(f) != "one" {
		t.Fatalf("echo = %q, %v", f, err)
	}

	// Sever the live conn out from under the client; the next send heals.
	r.mu.Lock()
	r.cur.Close()
	r.mu.Unlock()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if err := r.SendFrame([]byte("two")); err == nil {
			if f, err := r.RecvFrame(); err == nil && string(f) == "two" {
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatal("send never healed after sever")
		}
	}
	if r.Reconnects() == 0 {
		t.Error("healing did not count as a reconnect")
	}
	if hooks.Load() < 2 {
		t.Errorf("OnConnect ran %d times, want one per dial", hooks.Load())
	}
	if conns.Load() < 2 {
		t.Errorf("server saw %d conns, want at least 2", conns.Load())
	}
}

func TestReconnRecvNeverRedials(t *testing.T) {
	nw := NewInproc()
	l, err := nw.Listen("a")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	var conns atomic.Int64
	go echoServe(l, &conns)

	r := NewReconn(nw, []string{"a"}, fastPolicy())
	if err := r.Connect(); err != nil {
		t.Fatal(err)
	}
	dials := r.Attempts()
	r.mu.Lock()
	r.cur.Close()
	r.mu.Unlock()
	if _, err := r.RecvFrame(); err == nil {
		t.Fatal("recv on a severed conn succeeded")
	}
	// A second recv on the now-broken conn must fail fast, not dial.
	if _, err := r.RecvFrame(); err == nil {
		t.Fatal("recv redialed behind the caller's back")
	}
	if r.Attempts() != dials {
		t.Errorf("recv triggered %d extra dial attempts", r.Attempts()-dials)
	}
}

func TestReconnFailsOverAcrossAddresses(t *testing.T) {
	nw := NewInproc()
	la, err := nw.Listen("a")
	if err != nil {
		t.Fatal(err)
	}
	var connsA, connsB atomic.Int64
	go echoServe(la, &connsA)

	r := NewReconn(nw, []string{"a", "b"}, fastPolicy())
	if err := r.SendFrame([]byte("x")); err != nil { // lazy first dial lands on "a"
		t.Fatal(err)
	}

	// "a" dies for good; "b" comes up. The next sends must migrate.
	la.Close()
	r.mu.Lock()
	r.cur.Close()
	r.mu.Unlock()
	lb, err := nw.Listen("b")
	if err != nil {
		t.Fatal(err)
	}
	defer lb.Close()
	go echoServe(lb, &connsB)

	deadline := time.Now().Add(5 * time.Second)
	for connsB.Load() == 0 {
		r.SendFrame([]byte("y")) // errors while cycling are expected
		if time.Now().After(deadline) {
			t.Fatal("reconn never failed over to the second address")
		}
	}
	if err := r.SendFrame([]byte("z")); err != nil {
		t.Fatalf("send after failover: %v", err)
	}
	// Probe "y" frames sent while cycling are echoed first; drain to "z".
	for i := 0; ; i++ {
		f, err := r.RecvFrame()
		if err != nil {
			t.Fatalf("echo after failover: %v", err)
		}
		if string(f) == "z" {
			break
		}
		if i > 1000 {
			t.Fatal("echo of z never arrived")
		}
	}
	if r.Addr() != "b" {
		t.Errorf("live address = %q, want %q", r.Addr(), "b")
	}
}

func TestReconnSetAddrsForcesRedial(t *testing.T) {
	nw := NewInproc()
	la, _ := nw.Listen("a")
	lb, _ := nw.Listen("b")
	defer la.Close()
	defer lb.Close()
	var connsA, connsB atomic.Int64
	go echoServe(la, &connsA)
	go echoServe(lb, &connsB)

	r := NewReconn(nw, []string{"a"}, fastPolicy())
	if err := r.SendFrame([]byte("x")); err != nil {
		t.Fatal(err)
	}
	r.SetAddrs([]string{"b"})
	if err := r.SendFrame([]byte("y")); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for connsB.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("server b saw %d conns, want 1", connsB.Load())
		}
		time.Sleep(time.Millisecond)
	}
	if got := r.Addrs(); len(got) != 1 || got[0] != "b" {
		t.Errorf("Addrs() = %v, want [b]", got)
	}
}

func TestReconnClosedIsTerminal(t *testing.T) {
	nw := NewInproc()
	l, _ := nw.Listen("a")
	defer l.Close()
	var conns atomic.Int64
	go echoServe(l, &conns)

	r := NewReconn(nw, []string{"a"}, fastPolicy())
	if err := r.Connect(); err != nil {
		t.Fatal(err)
	}
	r.Close()
	if err := r.SendFrame([]byte("x")); err == nil {
		t.Error("send after Close succeeded")
	}
	if _, err := r.RecvFrame(); err == nil {
		t.Error("recv after Close succeeded")
	}
}

func TestFlakyRandDeterministicSchedule(t *testing.T) {
	run := func(seed int64) (kills int64, failures []bool) {
		nw := NewFlakyRand(NewInproc(), 0.3, seed)
		l, err := nw.Listen("x")
		if err != nil {
			t.Fatal(err)
		}
		defer l.Close()
		// The server accepts but never reads: frame ops draw from the
		// shared RNG, so the client's sequential sends must be the only
		// draws for the schedule to be reproducible.
		done := make(chan struct{})
		var held []Conn
		go func() {
			defer close(done)
			for {
				c, err := l.Accept()
				if err != nil {
					return
				}
				held = append(held, c)
			}
		}()
		for i := 0; i < 40; i++ {
			c, err := nw.Dial("x")
			if err != nil {
				t.Fatal(err)
			}
			failures = append(failures, c.SendFrame([]byte("f")) != nil)
			c.Close()
		}
		l.Close()
		<-done
		for _, c := range held {
			c.Close()
		}
		return nw.Kills(), failures
	}
	k1, f1 := run(99)
	k2, f2 := run(99)
	if k1 == 0 {
		t.Fatal("p=0.3 over 40 ops produced no kills")
	}
	if k1 != k2 {
		t.Errorf("same seed, different kill counts: %d vs %d", k1, k2)
	}
	for i := range f1 {
		if f1[i] != f2[i] {
			t.Fatalf("same seed diverged at op %d", i)
		}
	}

	// p=0 never kills.
	nw := NewFlakyRand(NewInproc(), 0, 1)
	l, _ := nw.Listen("x")
	defer l.Close()
	go func() {
		c, err := l.Accept()
		if err != nil {
			return
		}
		for {
			if _, err := c.RecvFrame(); err != nil {
				return
			}
		}
	}()
	c, err := nw.Dial("x")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for i := 0; i < 50; i++ {
		if err := c.SendFrame([]byte("f")); err != nil {
			t.Fatalf("p=0 op %d failed: %v", i, err)
		}
	}
	if nw.Kills() != 0 {
		t.Errorf("p=0 kills = %d", nw.Kills())
	}
}
