package transport

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"
)

// Backoff is a capped exponential backoff policy with jitter. The zero
// value is not useful; start from DefaultBackoff.
type Backoff struct {
	// Base is the delay before the second attempt (the first retries
	// immediately).
	Base time.Duration
	// Max caps the delay between attempts.
	Max time.Duration
	// Factor multiplies the delay after each failed attempt.
	Factor float64
	// Jitter is the fraction of the delay randomized away (0..1): the
	// actual sleep is uniform in [d*(1-Jitter), d], decorrelating
	// reconnect storms after a home failure.
	Jitter float64
	// Attempts bounds the number of connection attempts per Redial.
	Attempts int
	// Seed makes the jitter deterministic for tests; 0 seeds from the
	// policy values themselves (still deterministic).
	Seed int64
}

// DefaultBackoff returns the reconnect policy used by HA clients: start at
// 1ms, double up to 100ms, 30% jitter, up to 40 attempts (several seconds
// of patience, enough to ride out a backup promotion).
func DefaultBackoff() Backoff {
	return Backoff{Base: time.Millisecond, Max: 100 * time.Millisecond, Factor: 2, Jitter: 0.3, Attempts: 40}
}

// Delay returns the sleep before attempt number attempt (0-based); the
// rng supplies jitter.
func (b Backoff) Delay(attempt int, rng *rand.Rand) time.Duration {
	if attempt <= 0 {
		return 0
	}
	d := float64(b.Base)
	for i := 1; i < attempt; i++ {
		d *= b.Factor
		if d >= float64(b.Max) {
			d = float64(b.Max)
			break
		}
	}
	if d > float64(b.Max) {
		d = float64(b.Max)
	}
	if b.Jitter > 0 && rng != nil {
		d -= rng.Float64() * b.Jitter * d
	}
	return time.Duration(d)
}

// Reconn is a Conn that survives its underlying connection dying: a failed
// SendFrame marks the conn broken, and the next SendFrame transparently
// redials — cycling through the candidate addresses with capped exponential
// backoff and jitter — then runs the OnConnect hook (a protocol layer's
// re-handshake) before transmitting. RecvFrame never redials: a request
// that died with its connection cannot receive its reply, so the error
// surfaces to the caller, whose retry loop re-sends the request (which
// heals the conn).
type Reconn struct {
	nw     Network
	policy Backoff

	mu     sync.Mutex
	addrs  []string
	gen    uint64 // bumped by SetAddrs; ensure() discards dials from older lists
	cur    Conn
	broken bool
	closed bool
	rng    *rand.Rand

	// OnConnect, when set, runs over every freshly dialed connection
	// before Reconn exposes it; a failure discards the connection and
	// counts as a failed attempt. It must use the raw Conn it is given,
	// not the Reconn.
	OnConnect func(Conn) error

	reconnects atomic.Uint64
	attempts   atomic.Uint64
}

// NewReconn returns a reconnecting conn that dials the addresses in order
// (wrapping around) until one accepts. No connection is made until the
// first SendFrame.
func NewReconn(nw Network, addrs []string, policy Backoff) *Reconn {
	seed := policy.Seed
	if seed == 0 {
		seed = int64(policy.Attempts+1)*1000003 + int64(policy.Base)
	}
	if policy.Attempts <= 0 {
		policy.Attempts = 1
	}
	return &Reconn{
		nw:     nw,
		policy: policy,
		addrs:  append([]string(nil), addrs...),
		broken: true, // no conn yet; first use dials
		rng:    rand.New(rand.NewSource(seed)),
	}
}

// Reconnects returns how many times a fresh connection replaced a dead one
// (the initial dial is not counted).
func (r *Reconn) Reconnects() uint64 {
	n := r.reconnects.Load()
	if n == 0 {
		return 0
	}
	return n - 1
}

// Attempts returns the total number of dial attempts, successful or not.
func (r *Reconn) Attempts() uint64 { return r.attempts.Load() }

// SetAddrs replaces the candidate address list (e.g. after a redirect
// names a new home) and forces a redial on next use. The generation bump
// invalidates any ensure() in flight: a dial that raced this call and
// connected to an address from the old list is discarded rather than
// installed, so the redirect cannot be silently undone.
func (r *Reconn) SetAddrs(addrs []string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.addrs = append([]string(nil), addrs...)
	r.gen++
	if r.cur != nil {
		r.cur.Close()
	}
	r.broken = true
}

// Addrs returns a copy of the current candidate address list.
func (r *Reconn) Addrs() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]string(nil), r.addrs...)
}

// Addr returns the address of the live connection's target, or "".
func (r *Reconn) Addr() string {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.broken || len(r.addrs) == 0 {
		return ""
	}
	return r.addrs[0]
}

// ensure returns a live Conn, redialing with backoff if the previous one
// broke. Callers must not hold r.mu.
func (r *Reconn) ensure() (Conn, error) {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil, ErrClosed
	}
	if !r.broken && r.cur != nil {
		c := r.cur
		r.mu.Unlock()
		return c, nil
	}
	if r.cur != nil {
		r.cur.Close()
		r.cur = nil
	}
	addrs := append([]string(nil), r.addrs...)
	gen := r.gen
	r.mu.Unlock()
	if len(addrs) == 0 {
		return nil, fmt.Errorf("transport: reconn has no addresses")
	}

	var lastErr error
	for attempt := 0; attempt < r.policy.Attempts; attempt++ {
		r.mu.Lock()
		closed := r.closed
		if r.gen != gen {
			// SetAddrs replaced the candidate list mid-loop (a redirect);
			// retarget the remaining attempts at the fresh list.
			addrs = append([]string(nil), r.addrs...)
			gen = r.gen
		}
		d := r.policy.Delay(attempt, r.rng)
		r.mu.Unlock()
		if closed {
			return nil, ErrClosed
		}
		if d > 0 {
			time.Sleep(d)
		}
		if len(addrs) == 0 {
			lastErr = fmt.Errorf("transport: reconn has no addresses")
			continue
		}
		addr := addrs[attempt%len(addrs)]
		r.attempts.Add(1)
		c, err := r.nw.Dial(addr)
		if err != nil {
			lastErr = err
			continue
		}
		if r.OnConnect != nil {
			if err := r.OnConnect(c); err != nil {
				c.Close()
				lastErr = err
				continue
			}
		}
		r.mu.Lock()
		if r.closed {
			r.mu.Unlock()
			c.Close()
			return nil, ErrClosed
		}
		if r.gen != gen {
			// The list changed while this dial was in flight: the conn may
			// target a stale address, and installing it would clobber the
			// broken flag SetAddrs just raised. Discard it and retry
			// against the new list.
			addrs = append([]string(nil), r.addrs...)
			gen = r.gen
			r.mu.Unlock()
			c.Close()
			lastErr = fmt.Errorf("transport: address list changed during dial")
			continue
		}
		// Rotate the successful address to the front so steady-state
		// traffic keeps using it.
		for i, a := range r.addrs {
			if a == addr {
				r.addrs = append([]string{a}, append(append([]string(nil), r.addrs[:i]...), r.addrs[i+1:]...)...)
				break
			}
		}
		r.cur = c
		r.broken = false
		r.mu.Unlock()
		r.reconnects.Add(1)
		return c, nil
	}
	return nil, fmt.Errorf("transport: reconnect exhausted %d attempts: %w", r.policy.Attempts, lastErr)
}

// Connect forces the first dial (and the OnConnect hook) to happen now
// rather than lazily on the first SendFrame, so constructors can fail fast.
func (r *Reconn) Connect() error {
	_, err := r.ensure()
	return err
}

// SendFrame implements Conn, transparently healing a broken connection.
func (r *Reconn) SendFrame(frame []byte) error {
	c, err := r.ensure()
	if err != nil {
		return err
	}
	if err := c.SendFrame(frame); err != nil {
		r.markBroken(c)
		return err
	}
	return nil
}

// RecvFrame implements Conn. It does not redial — see the type comment.
func (r *Reconn) RecvFrame() ([]byte, error) {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil, ErrClosed
	}
	if r.broken || r.cur == nil {
		r.mu.Unlock()
		return nil, ErrClosed
	}
	c := r.cur
	r.mu.Unlock()
	f, err := c.RecvFrame()
	if err != nil {
		r.markBroken(c)
		return nil, err
	}
	return f, nil
}

// SendFrameDeadline implements DeadlineConn: the deadline bounds this
// attempt's transmission on the live conn (falling back to an unbounded
// send when the underlying transport has no deadline support). A missed
// deadline marks the conn broken so the caller's retry redials.
func (r *Reconn) SendFrameDeadline(frame []byte, deadline time.Time) error {
	c, err := r.ensure()
	if err != nil {
		return err
	}
	if err := SendFrameDeadline(c, frame, deadline); err != nil {
		r.markBroken(c)
		return err
	}
	return nil
}

// RecvFrameDeadline implements DeadlineConn. Like RecvFrame it never
// redials; a missed deadline surfaces so the caller's retry loop re-sends
// the request (which heals the conn).
func (r *Reconn) RecvFrameDeadline(deadline time.Time) ([]byte, error) {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil, ErrClosed
	}
	if r.broken || r.cur == nil {
		r.mu.Unlock()
		return nil, ErrClosed
	}
	c := r.cur
	r.mu.Unlock()
	f, err := RecvFrameDeadline(c, deadline)
	if err != nil {
		r.markBroken(c)
		return nil, err
	}
	return f, nil
}

func (r *Reconn) markBroken(c Conn) {
	r.mu.Lock()
	if r.cur == c {
		r.broken = true
		c.Close()
	}
	r.mu.Unlock()
}

// Close implements Conn; no further redials happen.
func (r *Reconn) Close() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.closed = true
	if r.cur != nil {
		return r.cur.Close()
	}
	return nil
}
