package transport

import (
	"math/rand"
	"sync"
	"sync/atomic"
)

// Flaky wraps a Network and kills connections by failure injection: a DSM
// layer must turn a dying link into a clean error, never a hang or a panic.
// Two modes exist, both deterministic:
//
//   - every-Nth (NewFlaky): the Nth, 2Nth, 3Nth... frame operations across
//     the whole network fail and sever their connection.
//   - seeded-random (NewFlakyRand): each frame operation fails with
//     probability p, drawn from a seeded generator, so chaos tests can vary
//     failure timing across seeds while staying reproducible.
type Flaky struct {
	inner Network
	every int64
	ops   atomic.Int64

	rmu  sync.Mutex
	rng  *rand.Rand
	p    float64
	kill atomic.Int64
}

// NewFlaky wraps inner so every N-th frame operation fails.
func NewFlaky(inner Network, every int) *Flaky {
	if every < 1 {
		every = 1
	}
	return &Flaky{inner: inner, every: int64(every)}
}

// NewFlakyRand wraps inner so each frame operation independently fails with
// probability p, deterministically derived from seed.
func NewFlakyRand(inner Network, p float64, seed int64) *Flaky {
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	return &Flaky{inner: inner, p: p, rng: rand.New(rand.NewSource(seed))}
}

// Ops returns the number of frame operations observed.
func (f *Flaky) Ops() int64 { return f.ops.Load() }

// Kills returns the number of operations the wrapper failed.
func (f *Flaky) Kills() int64 { return f.kill.Load() }

// Listen implements Network.
func (f *Flaky) Listen(addr string) (Listener, error) {
	l, err := f.inner.Listen(addr)
	if err != nil {
		return nil, err
	}
	return &flakyListener{l: l, net: f}, nil
}

// Dial implements Network.
func (f *Flaky) Dial(addr string) (Conn, error) {
	c, err := f.inner.Dial(addr)
	if err != nil {
		return nil, err
	}
	return &flakyConn{c: c, net: f}, nil
}

type flakyListener struct {
	l   Listener
	net *Flaky
}

func (l *flakyListener) Accept() (Conn, error) {
	c, err := l.l.Accept()
	if err != nil {
		return nil, err
	}
	return &flakyConn{c: c, net: l.net}, nil
}

func (l *flakyListener) Close() error { return l.l.Close() }
func (l *flakyListener) Addr() string { return l.l.Addr() }

type flakyConn struct {
	c   Conn
	net *Flaky
}

// shouldFail consumes one operation slot and reports whether it is doomed.
func (c *flakyConn) shouldFail() bool {
	f := c.net
	n := f.ops.Add(1)
	var doomed bool
	if f.rng != nil {
		f.rmu.Lock()
		doomed = f.rng.Float64() < f.p
		f.rmu.Unlock()
	} else {
		doomed = n%f.every == 0
	}
	if doomed {
		f.kill.Add(1)
	}
	return doomed
}

func (c *flakyConn) SendFrame(frame []byte) error {
	if c.shouldFail() {
		c.c.Close()
		return ErrClosed
	}
	return c.c.SendFrame(frame)
}

func (c *flakyConn) RecvFrame() ([]byte, error) {
	if c.shouldFail() {
		c.c.Close()
		return nil, ErrClosed
	}
	return c.c.RecvFrame()
}

func (c *flakyConn) Close() error { return c.c.Close() }
