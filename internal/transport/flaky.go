package transport

import "sync/atomic"

// Flaky wraps a Network and kills connections deterministically: the Nth,
// 2Nth, 3Nth... frame operations across the whole network fail and sever
// their connection. It exists for failure-injection tests: a DSM layer
// must turn a dying link into a clean error, never a hang or a panic.
type Flaky struct {
	inner Network
	every int64
	ops   atomic.Int64
}

// NewFlaky wraps inner so every N-th frame operation fails.
func NewFlaky(inner Network, every int) *Flaky {
	if every < 1 {
		every = 1
	}
	return &Flaky{inner: inner, every: int64(every)}
}

// Ops returns the number of frame operations observed.
func (f *Flaky) Ops() int64 { return f.ops.Load() }

// Listen implements Network.
func (f *Flaky) Listen(addr string) (Listener, error) {
	l, err := f.inner.Listen(addr)
	if err != nil {
		return nil, err
	}
	return &flakyListener{l: l, net: f}, nil
}

// Dial implements Network.
func (f *Flaky) Dial(addr string) (Conn, error) {
	c, err := f.inner.Dial(addr)
	if err != nil {
		return nil, err
	}
	return &flakyConn{c: c, net: f}, nil
}

type flakyListener struct {
	l   Listener
	net *Flaky
}

func (l *flakyListener) Accept() (Conn, error) {
	c, err := l.l.Accept()
	if err != nil {
		return nil, err
	}
	return &flakyConn{c: c, net: l.net}, nil
}

func (l *flakyListener) Close() error { return l.l.Close() }
func (l *flakyListener) Addr() string { return l.l.Addr() }

type flakyConn struct {
	c   Conn
	net *Flaky
}

// shouldFail consumes one operation slot and reports whether it is doomed.
func (c *flakyConn) shouldFail() bool {
	return c.net.ops.Add(1)%c.net.every == 0
}

func (c *flakyConn) SendFrame(frame []byte) error {
	if c.shouldFail() {
		c.c.Close()
		return ErrClosed
	}
	return c.c.SendFrame(frame)
}

func (c *flakyConn) RecvFrame() ([]byte, error) {
	if c.shouldFail() {
		c.c.Close()
		return nil, ErrClosed
	}
	return c.c.RecvFrame()
}

func (c *flakyConn) Close() error { return c.c.Close() }
