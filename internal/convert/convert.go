// Package convert implements CGT-RMR "receiver makes right" data
// conversion (paper Section 3.2 and 4.1).
//
// A sender transmits its raw memory image plus tags; the receiver compares
// the sender's representation with its own and converts only when they
// differ. Homogeneous peers take a memcpy fast path (the paper's tag
// string comparison); heterogeneous peers walk the data element by element,
// byte-swapping, resizing with sign extension, and rounding floats.
//
// Tags alone carry sizes, not signedness or float-ness; the receiver knows
// the logical type of every global from its own index table (the tables are
// architecture independent, paper Section 4), which is what allows a
// correct widening/narrowing conversion. The functions here therefore take
// the logical type alongside the two platforms.
package convert

import (
	"fmt"

	"hetdsm/internal/platform"
	"hetdsm/internal/tag"
)

// PtrMode selects how pointer values are treated when they cross platforms.
type PtrMode int

const (
	// PtrAnnul zeroes pointers at the receiver: a remote address is
	// meaningless locally and must be re-established through the index
	// table. This is the DSD default for raw pointer payloads.
	PtrAnnul PtrMode = iota
	// PtrRaw transfers the pointer bits unmodified (byte-swapped and
	// resized like an unsigned integer). Used when the value is known to
	// be an index-table-relative reference rather than a raw address.
	PtrRaw
	// PtrTranslate rewrites each pointer through a Translator.
	PtrTranslate
)

// Translator rewrites a source-platform address into the receiver's address
// space. The index table implements this: address → table index → local
// address.
type Translator interface {
	// Translate maps a remote address to a local one. ok is false when
	// the address does not fall inside any shared object, in which case
	// the pointer is annulled.
	Translate(remote uint64) (local uint64, ok bool)
}

// Options configure a conversion.
type Options struct {
	// Ptr selects pointer handling; zero value is PtrAnnul.
	Ptr PtrMode
	// Translator is required when Ptr is PtrTranslate.
	Translator Translator
}

// Stats reports what a conversion did; the DSD layer aggregates these into
// the t_conv component of Eq. 1.
type Stats struct {
	// BytesIn is the number of source bytes consumed.
	BytesIn int
	// BytesOut is the number of destination bytes produced.
	BytesOut int
	// Elements is the number of scalar elements converted.
	Elements int
	// FastPath reports whether the homogeneous memcpy path was taken.
	FastPath bool
}

// ScalarRun converts count elements of the logical C type ct from the
// source platform's representation in src to the destination platform's
// representation, appending to dst and returning the extended slice.
//
// This is the workhorse of the DSD update path: every update record is a
// run of identical scalars (the coalesced array spans of paper Section 5).
func ScalarRun(dst []byte, dstP *platform.Platform, src []byte, srcP *platform.Platform, ct platform.CType, count int, opt Options) ([]byte, Stats, error) {
	if count < 0 {
		return dst, Stats{}, fmt.Errorf("convert: negative count %d", count)
	}
	srcK, dstK := srcP.Kind(ct), dstP.Kind(ct)
	srcSize, dstSize := srcP.SizeOf(srcK), dstP.SizeOf(dstK)
	if len(src) < srcSize*count {
		return dst, Stats{}, fmt.Errorf("convert: %d elements of %v need %d source bytes, have %d",
			count, ct, srcSize*count, len(src))
	}
	st := Stats{BytesIn: srcSize * count, BytesOut: dstSize * count, Elements: count}

	// Homogeneous fast path: identical physical representation, and no
	// pointer rewriting requested. A single copy, exactly the paper's
	// memcpy() after the tag string comparison.
	if srcP.SameABI(dstP) && (ct != platform.CPtr || opt.Ptr == PtrRaw) {
		st.FastPath = true
		return append(dst, src[:srcSize*count]...), st, nil
	}

	base := len(dst)
	dst = append(dst, make([]byte, dstSize*count)...)
	if err := runInto(dst[base:], dstP, src, srcP, ct, count, opt); err != nil {
		return dst[:base], st, err
	}
	return dst, st, nil
}

// runInto converts count elements of ct into out, which must be exactly
// dstSize*count bytes. It always takes the element-wise path; fast-path
// detection is the caller's job.
func runInto(out []byte, dstP *platform.Platform, src []byte, srcP *platform.Platform, ct platform.CType, count int, opt Options) error {
	srcK, dstK := srcP.Kind(ct), dstP.Kind(ct)
	switch {
	case ct == platform.CPtr:
		return convertPointers(out, dstP, src, srcP, count, opt)
	case srcK.Float():
		convertFloats(out, dstP, dstK, src, srcP, srcK, count)
	default:
		convertInts(out, dstP, dstK, src, srcP, srcK, count)
	}
	return nil
}

func convertInts(out []byte, dstP *platform.Platform, dstK platform.Kind, src []byte, srcP *platform.Platform, srcK platform.Kind, count int) {
	srcSize, dstSize := srcP.SizeOf(srcK), dstP.SizeOf(dstK)
	signed := srcK.Signed()
	for i := 0; i < count; i++ {
		s := src[i*srcSize:]
		d := out[i*dstSize:]
		if signed {
			// Sign-extend through 64 bits, then truncate; this is
			// the "sign extension" cost the paper cites for the
			// heterogeneous path.
			dstP.PutInt(d, dstSize, srcP.Int(s, srcSize))
		} else {
			dstP.PutUint(d, dstSize, srcP.Uint(s, srcSize))
		}
	}
}

func convertFloats(out []byte, dstP *platform.Platform, dstK platform.Kind, src []byte, srcP *platform.Platform, srcK platform.Kind, count int) {
	srcSize, dstSize := srcP.SizeOf(srcK), dstP.SizeOf(dstK)
	for i := 0; i < count; i++ {
		s := src[i*srcSize:]
		d := out[i*dstSize:]
		var v float64
		if srcK == platform.Float32 {
			v = float64(srcP.Float32(s))
		} else {
			v = srcP.Float64(s)
		}
		if dstK == platform.Float32 {
			dstP.PutFloat32(d, float32(v))
		} else {
			dstP.PutFloat64(d, v)
		}
	}
}

func convertPointers(out []byte, dstP *platform.Platform, src []byte, srcP *platform.Platform, count int, opt Options) error {
	srcSize, dstSize := srcP.PtrSize(), dstP.PtrSize()
	for i := 0; i < count; i++ {
		s := src[i*srcSize:]
		d := out[i*dstSize:]
		v := srcP.Uint(s, srcSize)
		switch opt.Ptr {
		case PtrAnnul:
			dstP.PutUint(d, dstSize, 0)
		case PtrRaw:
			dstP.PutUint(d, dstSize, v)
		case PtrTranslate:
			if opt.Translator == nil {
				return fmt.Errorf("convert: PtrTranslate without a Translator")
			}
			if local, ok := opt.Translator.Translate(v); ok {
				dstP.PutUint(d, dstSize, local)
			} else {
				dstP.PutUint(d, dstSize, 0)
			}
		default:
			return fmt.Errorf("convert: unknown pointer mode %d", opt.Ptr)
		}
	}
	return nil
}

// Value converts an entire typed value between platform representations by
// walking the two layouts in parallel. src must hold the value laid out per
// srcL; the result is laid out per dstL (padding zeroed). srcL and dstL
// must realize the same logical type.
//
// This is the path MigThread uses to restore migrated thread frames and the
// DSD uses for whole-structure transfers.
func Value(dstL *tag.Layout, src []byte, srcL *tag.Layout, opt Options) ([]byte, Stats, error) {
	if len(src) < srcL.Size {
		return nil, Stats{}, fmt.Errorf("convert: value needs %d source bytes, have %d", srcL.Size, len(src))
	}
	st := Stats{BytesIn: srcL.Size, BytesOut: dstL.Size}
	if srcL.Platform.SameABI(dstL.Platform) && opt.Ptr != PtrTranslate {
		// Identical images; the paper's tag-string-equality memcpy.
		st.FastPath = true
		out := make([]byte, dstL.Size)
		copy(out, src[:srcL.Size])
		return out, st, nil
	}
	out := make([]byte, dstL.Size)
	n, err := convertValue(out, dstL, src[:srcL.Size], srcL, opt)
	st.Elements = n
	if err != nil {
		return nil, st, err
	}
	return out, st, nil
}

func convertValue(dst []byte, dstL *tag.Layout, src []byte, srcL *tag.Layout, opt Options) (int, error) {
	switch {
	case srcL.Fields != nil:
		if dstL.Fields == nil || len(dstL.Fields) != len(srcL.Fields) {
			return 0, fmt.Errorf("convert: struct shape mismatch: %s vs %s",
				tag.TypeString(srcL.Type), tag.TypeString(dstL.Type))
		}
		total := 0
		for i := range srcL.Fields {
			sf, df := srcL.Fields[i], dstL.Fields[i]
			n, err := convertValue(
				dst[df.Offset:df.Offset+df.Layout.Size],
				df.Layout,
				src[sf.Offset:sf.Offset+sf.Layout.Size],
				sf.Layout, opt)
			if err != nil {
				return total, fmt.Errorf("field %s: %w", sf.Name, err)
			}
			total += n
		}
		return total, nil
	case srcL.Elem != nil:
		if dstL.Elem == nil || dstL.N != srcL.N {
			return 0, fmt.Errorf("convert: array shape mismatch: %s vs %s",
				tag.TypeString(srcL.Type), tag.TypeString(dstL.Type))
		}
		total := 0
		ss, ds := srcL.Elem.Size, dstL.Elem.Size
		for i := 0; i < srcL.N; i++ {
			n, err := convertValue(dst[i*ds:(i+1)*ds], dstL.Elem, src[i*ss:(i+1)*ss], srcL.Elem, opt)
			if err != nil {
				return total, fmt.Errorf("element %d: %w", i, err)
			}
			total += n
		}
		return total, nil
	default:
		ct, err := scalarCType(srcL)
		if err != nil {
			return 0, err
		}
		ct2, err := scalarCType(dstL)
		if err != nil {
			return 0, err
		}
		if ct != ct2 {
			return 0, fmt.Errorf("convert: scalar type mismatch: %v vs %v", ct, ct2)
		}
		if err := runInto(dst[:dstL.Size], dstL.Platform, src, srcL.Platform, ct, 1, opt); err != nil {
			return 0, err
		}
		return 1, nil
	}
}

// scalarCType recovers the logical C type of a scalar/pointer layout.
func scalarCType(l *tag.Layout) (platform.CType, error) {
	switch t := l.Type.(type) {
	case tag.Scalar:
		return t.T, nil
	case tag.Pointer:
		return platform.CPtr, nil
	default:
		return 0, fmt.Errorf("convert: %s is not a scalar", tag.TypeString(l.Type))
	}
}
