package convert

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"hetdsm/internal/platform"
	"hetdsm/internal/tag"
)

var (
	lx  = platform.LinuxX86
	sp  = platform.SolarisSPARC
	lx6 = platform.LinuxX8664
	sp6 = platform.SolarisSPARC64
)

// encodeInts lays out int32 values per platform p.
func encodeInts(p *platform.Platform, vs []int32) []byte {
	out := make([]byte, 4*len(vs))
	for i, v := range vs {
		p.PutInt(out[i*4:], 4, int64(v))
	}
	return out
}

func decodeInts(p *platform.Platform, b []byte) []int32 {
	out := make([]int32, len(b)/4)
	for i := range out {
		out[i] = int32(p.Int(b[i*4:], 4))
	}
	return out
}

func TestScalarRunHomogeneousFastPath(t *testing.T) {
	src := encodeInts(lx, []int32{1, -2, 3})
	dst, st, err := ScalarRun(nil, lx, src, lx, platform.CInt, 3, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !st.FastPath {
		t.Error("homogeneous conversion must take the fast path")
	}
	if !bytes.Equal(dst, src) {
		t.Errorf("fast path altered bytes: % x vs % x", dst, src)
	}
}

func TestScalarRunByteSwap(t *testing.T) {
	vals := []int32{0, 1, -1, 0x12345678, -0x12345678, math.MaxInt32, math.MinInt32}
	src := encodeInts(sp, vals)
	dst, st, err := ScalarRun(nil, lx, src, sp, platform.CInt, len(vals), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if st.FastPath {
		t.Error("heterogeneous conversion must not take the fast path")
	}
	if got := decodeInts(lx, dst); !int32SliceEqual(got, vals) {
		t.Errorf("converted values %v, want %v", got, vals)
	}
}

func int32SliceEqual(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestScalarRunSignExtensionAcrossSizes(t *testing.T) {
	// long is 4 bytes on ILP32 and 8 on LP64; converting a negative long
	// must sign-extend.
	src := make([]byte, 4)
	lx.PutInt(src, 4, -42)
	dst, _, err := ScalarRun(nil, lx6, src, lx, platform.CLong, 1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(dst) != 8 {
		t.Fatalf("LP64 long must be 8 bytes, got %d", len(dst))
	}
	if got := lx6.Int(dst, 8); got != -42 {
		t.Errorf("widened long = %d, want -42", got)
	}
	// And back down: narrowing preserves in-range values.
	back, _, err := ScalarRun(nil, lx, dst, lx6, platform.CLong, 1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := lx.Int(back, 4); got != -42 {
		t.Errorf("narrowed long = %d, want -42", got)
	}
}

func TestScalarRunUnsignedWiden(t *testing.T) {
	src := make([]byte, 4)
	sp.PutUint(src, 4, 0xFFFFFFFF)
	dst, _, err := ScalarRun(nil, lx6, src, sp, platform.CULong, 1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := lx6.Uint(dst, 8); got != 0xFFFFFFFF {
		t.Errorf("widened unsigned = %#x, want 0xFFFFFFFF (no sign extension)", got)
	}
}

func TestScalarRunFloats(t *testing.T) {
	vals := []float64{0, 1.5, -math.Pi, math.MaxFloat64, math.Inf(-1)}
	src := make([]byte, 8*len(vals))
	for i, v := range vals {
		sp.PutFloat64(src[i*8:], v)
	}
	dst, _, err := ScalarRun(nil, lx, src, sp, platform.CDouble, len(vals), Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range vals {
		if got := lx.Float64(dst[i*8:]); got != want {
			t.Errorf("double %d = %g, want %g", i, got, want)
		}
	}
}

func TestScalarRunPointerAnnul(t *testing.T) {
	src := make([]byte, 4)
	sp.PutUint(src, 4, 0x40058000)
	dst, _, err := ScalarRun(nil, lx, src, sp, platform.CPtr, 1, Options{Ptr: PtrAnnul})
	if err != nil {
		t.Fatal(err)
	}
	if got := lx.Uint(dst, 4); got != 0 {
		t.Errorf("annulled pointer = %#x, want 0", got)
	}
}

type mapTranslator map[uint64]uint64

func (m mapTranslator) Translate(remote uint64) (uint64, bool) {
	local, ok := m[remote]
	return local, ok
}

func TestScalarRunPointerTranslate(t *testing.T) {
	src := make([]byte, 8)
	sp.PutUint(src, 4, 0x40058000)
	sp.PutUint(src[4:], 4, 0xdeadbeef) // unknown: must be annulled
	tr := mapTranslator{0x40058000: 0x80010000}
	dst, _, err := ScalarRun(nil, lx, src, sp, platform.CPtr, 2, Options{Ptr: PtrTranslate, Translator: tr})
	if err != nil {
		t.Fatal(err)
	}
	if got := lx.Uint(dst, 4); got != 0x80010000 {
		t.Errorf("translated pointer = %#x, want 0x80010000", got)
	}
	if got := lx.Uint(dst[4:], 4); got != 0 {
		t.Errorf("unknown pointer = %#x, want 0 (annulled)", got)
	}
}

func TestScalarRunPointerTranslateNeedsTranslator(t *testing.T) {
	src := make([]byte, 4)
	if _, _, err := ScalarRun(nil, lx, src, sp, platform.CPtr, 1, Options{Ptr: PtrTranslate}); err == nil {
		t.Error("PtrTranslate without translator must fail")
	}
}

func TestScalarRunShortSource(t *testing.T) {
	if _, _, err := ScalarRun(nil, lx, make([]byte, 7), sp, platform.CInt, 2, Options{}); err == nil {
		t.Error("short source must fail")
	}
	if _, _, err := ScalarRun(nil, lx, nil, sp, platform.CInt, -1, Options{}); err == nil {
		t.Error("negative count must fail")
	}
}

func TestScalarRunAppendsToExisting(t *testing.T) {
	prefix := []byte{0xAA, 0xBB}
	src := encodeInts(sp, []int32{7})
	dst, _, err := ScalarRun(prefix, lx, src, sp, platform.CInt, 1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(dst) != 6 || dst[0] != 0xAA || dst[1] != 0xBB {
		t.Errorf("append did not preserve prefix: % x", dst)
	}
	if got := lx.Int(dst[2:], 4); got != 7 {
		t.Errorf("appended value = %d, want 7", got)
	}
}

// buildValue constructs a struct value on platform p for the Value tests.
func buildValue(p *platform.Platform) (tag.Struct, []byte) {
	s := tag.Struct{Name: "mix", Fields: []tag.Field{
		{Name: "c", T: tag.Char()},
		{Name: "n", T: tag.Int()},
		{Name: "d", T: tag.Double()},
		{Name: "arr", T: tag.IntArray(5)},
		{Name: "p", T: tag.Pointer{}},
	}}
	l := tag.MustLayout(s, p)
	buf := make([]byte, l.Size)
	off := func(name string) int {
		o, err := l.Offset(name)
		if err != nil {
			panic(err)
		}
		return o
	}
	p.PutInt(buf[off("c"):], 1, -5)
	p.PutInt(buf[off("n"):], 4, 123456)
	p.PutFloat64(buf[off("d"):], 2.718281828)
	for i := 0; i < 5; i++ {
		p.PutInt(buf[off("arr")+i*4:], 4, int64(i*i-3))
	}
	p.PutUint(buf[off("p"):], p.PtrSize(), 0x40058000)
	return s, buf
}

func TestValueHeterogeneous(t *testing.T) {
	s, src := buildValue(sp)
	srcL := tag.MustLayout(s, sp)
	dstL := tag.MustLayout(s, lx)
	out, st, err := Value(dstL, src, srcL, Options{Ptr: PtrAnnul})
	if err != nil {
		t.Fatal(err)
	}
	if st.FastPath {
		t.Error("SPARC->x86 must not fast path")
	}
	off := func(name string) int { o, _ := dstL.Offset(name); return o }
	if got := lx.Int(out[off("c"):], 1); got != -5 {
		t.Errorf("c = %d, want -5", got)
	}
	if got := lx.Int(out[off("n"):], 4); got != 123456 {
		t.Errorf("n = %d, want 123456", got)
	}
	if got := lx.Float64(out[off("d"):]); got != 2.718281828 {
		t.Errorf("d = %g", got)
	}
	for i := 0; i < 5; i++ {
		if got := lx.Int(out[off("arr")+i*4:], 4); got != int64(i*i-3) {
			t.Errorf("arr[%d] = %d, want %d", i, got, i*i-3)
		}
	}
	if got := lx.Uint(out[off("p"):], 4); got != 0 {
		t.Errorf("pointer = %#x, want annulled", got)
	}
}

func TestValueHomogeneousFastPath(t *testing.T) {
	s, src := buildValue(lx)
	l := tag.MustLayout(s, lx)
	out, st, err := Value(l, src, l, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !st.FastPath {
		t.Error("same platform must fast path")
	}
	if !bytes.Equal(out, src) {
		t.Error("fast path altered bytes")
	}
}

func TestValueAcrossWordSizes(t *testing.T) {
	// ILP32 -> LP64: pointer and struct grow; values must survive.
	s, src := buildValue(sp)
	srcL := tag.MustLayout(s, sp)
	dstL := tag.MustLayout(s, lx6)
	out, _, err := Value(dstL, src, srcL, Options{Ptr: PtrAnnul})
	if err != nil {
		t.Fatal(err)
	}
	off := func(name string) int { o, _ := dstL.Offset(name); return o }
	if got := lx6.Int(out[off("n"):], 4); got != 123456 {
		t.Errorf("n = %d, want 123456", got)
	}
	if got := lx6.Float64(out[off("d"):]); got != 2.718281828 {
		t.Errorf("d = %g", got)
	}
}

func TestValueShapeMismatch(t *testing.T) {
	a := tag.Struct{Name: "a", Fields: []tag.Field{{Name: "x", T: tag.Int()}}}
	b := tag.Struct{Name: "b", Fields: []tag.Field{{Name: "x", T: tag.Int()}, {Name: "y", T: tag.Int()}}}
	la := tag.MustLayout(a, lx)
	lb := tag.MustLayout(b, sp)
	if _, _, err := Value(lb, make([]byte, la.Size), la, Options{}); err == nil {
		t.Error("mismatched shapes must fail")
	}
	if _, _, err := Value(la, make([]byte, 1), la, Options{}); err == nil {
		t.Error("short source must fail")
	}
}

// Property: int conversion A->B->A is the identity for every platform pair.
func TestQuickIntRoundTripAllPairs(t *testing.T) {
	plats := platform.All()
	f := func(v int32, a, b uint8) bool {
		pa := plats[int(a)%len(plats)]
		pb := plats[int(b)%len(plats)]
		src := encodeInts(pa, []int32{v})
		mid, _, err := ScalarRun(nil, pb, src, pa, platform.CInt, 1, Options{})
		if err != nil {
			return false
		}
		back, _, err := ScalarRun(nil, pa, mid, pb, platform.CInt, 1, Options{})
		if err != nil {
			return false
		}
		return bytes.Equal(back, src)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

// Property: double conversion preserves exact bit patterns for normal
// numbers across every pair.
func TestQuickDoubleRoundTrip(t *testing.T) {
	plats := platform.All()
	f := func(v float64, a, b uint8) bool {
		if math.IsNaN(v) {
			return true // NaN payload compare is not meaningful via ==
		}
		pa := plats[int(a)%len(plats)]
		pb := plats[int(b)%len(plats)]
		src := make([]byte, 8)
		pa.PutFloat64(src, v)
		mid, _, err := ScalarRun(nil, pb, src, pa, platform.CDouble, 1, Options{})
		if err != nil {
			return false
		}
		return pb.Float64(mid) == v
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

// Property: converting a whole random-typed value SPARC->Linux->SPARC is the
// identity on the non-padding bytes (padding is zeroed, values preserved).
func TestQuickValueRoundTripInts(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	for i := 0; i < 100; i++ {
		n := 1 + r.Intn(64)
		typ := tag.IntArray(n)
		srcL := tag.MustLayout(typ, sp)
		dstL := tag.MustLayout(typ, lx)
		src := make([]byte, srcL.Size)
		for j := 0; j < n; j++ {
			sp.PutInt(src[j*4:], 4, int64(int32(r.Uint32())))
		}
		mid, _, err := Value(dstL, src, srcL, Options{})
		if err != nil {
			t.Fatal(err)
		}
		back, _, err := Value(srcL, mid, dstL, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(back, src) {
			t.Fatalf("round trip of %d ints not identity", n)
		}
	}
}
