package convert

import (
	"math"
	"testing"

	"hetdsm/internal/platform"
)

// Cross-endian platform pairs at each word model: little→big and big→little
// for ILP32 and LP64, plus the model-crossing pairs that exercise widening
// and narrowing. Every edge case below runs on all of them.
var edgePairs = [][2]*platform.Platform{
	{platform.LinuxX86, platform.SolarisSPARC},     // LE→BE, ILP32
	{platform.SolarisSPARC, platform.LinuxX86},     // BE→LE, ILP32
	{platform.LinuxX8664, platform.SolarisSPARC64}, // LE→BE, LP64
	{platform.SolarisSPARC64, platform.LinuxX8664}, // BE→LE, LP64
	{platform.LinuxX86, platform.SolarisSPARC64},   // LE ILP32 → BE LP64 (widening)
	{platform.SolarisSPARC64, platform.LinuxX86},   // BE LP64 → LE ILP32 (narrowing)
}

// convertOne pushes a single encoded value of ct through ScalarRun.
func convertOne(t *testing.T, src *platform.Platform, dst *platform.Platform, ct platform.CType, raw []byte) []byte {
	t.Helper()
	out, st, err := ScalarRun(nil, dst, raw, src, ct, 1, Options{})
	if err != nil {
		t.Fatalf("%s -> %s %v: %v", src, dst, ct, err)
	}
	if st.Elements != 1 || len(out) != dst.CSizeOf(ct) {
		t.Fatalf("%s -> %s %v: stats %+v, %d bytes out", src, dst, ct, st, len(out))
	}
	return out
}

// encInt encodes v as ct on p.
func encInt(p *platform.Platform, ct platform.CType, v int64) []byte {
	b := make([]byte, p.CSizeOf(ct))
	p.PutInt(b, len(b), v)
	return b
}

// TestIntegerEdgeCases covers the signed integer tag classes — char,
// short, int, long, long long — with the values that break naive copying:
// sign extension on widening, two's-complement truncation on narrowing,
// and full-width extremes, across both endiannesses.
func TestIntegerEdgeCases(t *testing.T) {
	cases := []struct {
		name string
		ct   platform.CType
		in   int64
		// want maps the destination element size to the expected decoded
		// value; sizes absent from the map expect the input unchanged.
		want map[int]int64
	}{
		{name: "char minus one", ct: platform.CChar, in: -1},
		{name: "char min", ct: platform.CChar, in: -128},
		{name: "short min", ct: platform.CShort, in: -32768},
		{name: "short sign bit vs byte swap", ct: platform.CShort, in: -0x0102},
		{name: "int minus one", ct: platform.CInt, in: -1},
		{name: "int min", ct: platform.CInt, in: math.MinInt32},
		{name: "int max", ct: platform.CInt, in: math.MaxInt32},
		{name: "long minus one extends", ct: platform.CLong, in: -1},
		{name: "long int32 min survives width change", ct: platform.CLong, in: math.MinInt32},
		{
			// A 64-bit long narrowing to a 32-bit long keeps the low 32
			// bits, sign-extended — C's truncation semantics.
			name: "long truncation overflow",
			ct:   platform.CLong,
			in:   math.MaxInt32 + 1,
			want: map[int]int64{4: math.MinInt32, 8: math.MaxInt32 + 1},
		},
		{
			name: "long full-width pattern",
			ct:   platform.CLong,
			in:   -0x0102030405060708,
			want: map[int]int64{4: -0x05060708, 8: -0x0102030405060708},
		},
		{name: "long long min", ct: platform.CLongLong, in: math.MinInt64},
		{name: "long long max", ct: platform.CLongLong, in: math.MaxInt64},
	}
	for _, tc := range cases {
		for _, pair := range edgePairs {
			src, dst := pair[0], pair[1]
			out := convertOne(t, src, dst, tc.ct, encInt(src, tc.ct, tc.in))
			// The value passes through the narrower of the two widths:
			// encoding truncates on an ILP32 source, conversion truncates
			// into an ILP32 destination.
			narrow := src.CSizeOf(tc.ct)
			if len(out) < narrow {
				narrow = len(out)
			}
			want := tc.in
			if w, ok := tc.want[narrow]; ok {
				want = w
			}
			if got := dst.Int(out, len(out)); got != want {
				t.Errorf("%s: %s -> %s: got %d, want %d", tc.name, src, dst, got, want)
			}
		}
	}
}

// TestUnsignedEdgeCases covers the unsigned classes: zero extension on
// widening (no sign smear) and modular truncation on narrowing.
func TestUnsignedEdgeCases(t *testing.T) {
	cases := []struct {
		name string
		ct   platform.CType
		in   uint64
		want map[int]uint64
	}{
		{name: "uint max", ct: platform.CUInt, in: math.MaxUint32},
		{name: "uint high bit is not a sign", ct: platform.CUInt, in: 0x80000001},
		{
			name: "ulong wide value truncates modulo 2^32",
			ct:   platform.CULong,
			in:   0x1_0000_0003,
			want: map[int]uint64{4: 3, 8: 0x1_0000_0003},
		},
		{name: "ulong max low word", ct: platform.CULong, in: 0xffff_ffff},
	}
	for _, tc := range cases {
		for _, pair := range edgePairs {
			src, dst := pair[0], pair[1]
			raw := make([]byte, src.CSizeOf(tc.ct))
			src.PutUint(raw, len(raw), tc.in)
			out := convertOne(t, src, dst, tc.ct, raw)
			narrow := len(raw)
			if len(out) < narrow {
				narrow = len(out)
			}
			want := tc.in
			if w, ok := tc.want[narrow]; ok {
				want = w
			}
			if got := dst.Uint(out, len(out)); got != want {
				t.Errorf("%s: %s -> %s: got %#x, want %#x", tc.name, src, dst, got, want)
			}
		}
	}
}

// TestFloatEdgeCases covers the float and double classes: NaN payloads,
// signed zero, infinities, and subnormals across both endiannesses. Same
// width must be bit-exact (endianness swap only); float→double widening is
// always exact; the reverse direction is not exercised here because CGT-RMR
// never narrows floats (the logical type fixes the width).
func TestFloatEdgeCases(t *testing.T) {
	f64 := []struct {
		name string
		bits uint64
	}{
		{"quiet NaN with payload", 0x7ff8_0000_0000_babe},
		{"signaling NaN pattern", 0x7ff0_0000_0000_0001},
		{"negative NaN", 0xfff8_0000_dead_0000},
		{"+Inf", math.Float64bits(math.Inf(1))},
		{"-Inf", math.Float64bits(math.Inf(-1))},
		{"negative zero", math.Float64bits(math.Copysign(0, -1))},
		{"smallest subnormal", 1},
		{"largest subnormal", 0x000f_ffff_ffff_ffff},
		{"max finite", math.Float64bits(math.MaxFloat64)},
	}
	for _, tc := range f64 {
		for _, pair := range edgePairs {
			src, dst := pair[0], pair[1]
			raw := make([]byte, 8)
			src.PutFloat64(raw, math.Float64frombits(tc.bits))
			out := convertOne(t, src, dst, platform.CDouble, raw)
			if got := math.Float64bits(dst.Float64(out)); got != tc.bits {
				t.Errorf("double %s: %s -> %s: bits %#x, want %#x", tc.name, src, dst, got, tc.bits)
			}
		}
	}

	f32 := []struct {
		name string
		bits uint32
	}{
		{"quiet NaN with payload", 0x7fc0_beef},
		{"+Inf", math.Float32bits(float32(math.Inf(1)))},
		{"-Inf", math.Float32bits(float32(math.Inf(-1)))},
		{"negative zero", 0x8000_0000},
		{"smallest subnormal", 1},
		{"largest subnormal", 0x007f_ffff},
	}
	for _, tc := range f32 {
		for _, pair := range edgePairs {
			src, dst := pair[0], pair[1]
			raw := make([]byte, 4)
			src.PutFloat32(raw, math.Float32frombits(tc.bits))
			out := convertOne(t, src, dst, platform.CFloat, raw)
			if got := math.Float32bits(dst.Float32(out)); got != tc.bits {
				t.Errorf("float %s: %s -> %s: bits %#x, want %#x", tc.name, src, dst, got, tc.bits)
			}
		}
	}
}

// TestPointerEdgeCases covers the pointer class. Raw mode transfers bits
// (zero-extending 4→8, truncating 8→4); annul mode zeroes; a translated
// pointer that misses every shared object is annulled too.
func TestPointerEdgeCases(t *testing.T) {
	for _, pair := range edgePairs {
		src, dst := pair[0], pair[1]
		raw := make([]byte, src.PtrSize())
		src.PutUint(raw, len(raw), 0x4005_8000)

		out, _, err := ScalarRun(nil, dst, raw, src, platform.CPtr, 1, Options{Ptr: PtrRaw})
		if err != nil {
			t.Fatalf("raw %s -> %s: %v", src, dst, err)
		}
		if got := dst.Uint(out, len(out)); got != 0x4005_8000 {
			t.Errorf("raw %s -> %s: %#x, want 0x40058000", src, dst, got)
		}

		out, _, err = ScalarRun(nil, dst, raw, src, platform.CPtr, 1, Options{Ptr: PtrAnnul})
		if err != nil {
			t.Fatalf("annul %s -> %s: %v", src, dst, err)
		}
		if got := dst.Uint(out, len(out)); got != 0 {
			t.Errorf("annul %s -> %s: %#x, want 0", src, dst, got)
		}
	}

	// Truncating a 64-bit pointer keeps the low word — garbage, which is
	// exactly why the DSD defaults to PtrAnnul for raw pointer payloads.
	src, dst := platform.SolarisSPARC64, platform.LinuxX86
	raw := make([]byte, 8)
	src.PutUint(raw, 8, 0xffff_8000_4005_8000)
	out, _, err := ScalarRun(nil, dst, raw, src, platform.CPtr, 1, Options{Ptr: PtrRaw})
	if err != nil {
		t.Fatal(err)
	}
	if got := dst.Uint(out, 4); got != 0x4005_8000 {
		t.Errorf("narrowed raw pointer: %#x, want 0x40058000", got)
	}
}
