package convert

import (
	"testing"

	"hetdsm/internal/platform"
	"hetdsm/internal/tag"
)

// The raw conversion throughputs underneath Figures 10 and 11: the
// homogeneous memcpy fast path vs. the heterogeneous byte-swap path.

func benchInts(b *testing.B, dst, src *platform.Platform) {
	const n = 256 * 1024 // 1 MiB of ints
	in := make([]byte, 4*n)
	for i := 0; i < n; i++ {
		src.PutInt(in[i*4:], 4, int64(i))
	}
	out := make([]byte, 0, 4*n)
	b.SetBytes(4 * n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		out, _, err = ScalarRun(out[:0], dst, in, src, platform.CInt, n, Options{})
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkIntRunHomogeneous(b *testing.B) {
	benchInts(b, platform.LinuxX86, platform.LinuxX86)
}

func BenchmarkIntRunByteSwap(b *testing.B) {
	benchInts(b, platform.LinuxX86, platform.SolarisSPARC)
}

func BenchmarkIntRunWiden(b *testing.B) {
	const n = 256 * 1024
	src := platform.SolarisSPARC
	in := make([]byte, 4*n)
	for i := 0; i < n; i++ {
		src.PutInt(in[i*4:], 4, int64(-i))
	}
	out := make([]byte, 0, 8*n)
	b.SetBytes(4 * n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		out, _, err = ScalarRun(out[:0], platform.LinuxX8664, in, src, platform.CLong, n, Options{})
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDoubleRunByteSwap(b *testing.B) {
	const n = 128 * 1024 // 1 MiB of doubles
	src := platform.SolarisSPARC
	in := make([]byte, 8*n)
	for i := 0; i < n; i++ {
		src.PutFloat64(in[i*8:], float64(i)*1.5)
	}
	out := make([]byte, 0, 8*n)
	b.SetBytes(8 * n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		out, _, err = ScalarRun(out[:0], platform.LinuxX86, in, src, platform.CDouble, n, Options{})
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkValueStruct(b *testing.B) {
	typ := tag.Struct{Name: "s", Fields: []tag.Field{
		{Name: "a", T: tag.IntArray(1024)},
		{Name: "d", T: tag.DoubleArray(512)},
		{Name: "p", T: tag.Pointer{}},
	}}
	srcL := tag.MustLayout(typ, platform.SolarisSPARC)
	dstL := tag.MustLayout(typ, platform.LinuxX86)
	src := make([]byte, srcL.Size)
	b.SetBytes(int64(srcL.Size))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := Value(dstL, src, srcL, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}
