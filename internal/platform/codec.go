package platform

import (
	"encoding/binary"
	"fmt"
	"math"
)

// byteOrder returns the encoding/binary order for the platform.
func (p *Platform) byteOrder() binary.ByteOrder {
	if p.Order == Big {
		return binary.BigEndian
	}
	return binary.LittleEndian
}

// PutUint writes the low size bytes of v into b in the platform's byte
// order. size must be 1, 2, 4 or 8 and len(b) must be at least size.
func (p *Platform) PutUint(b []byte, size int, v uint64) {
	switch size {
	case 1:
		b[0] = byte(v)
	case 2:
		p.byteOrder().PutUint16(b, uint16(v))
	case 4:
		p.byteOrder().PutUint32(b, uint32(v))
	case 8:
		p.byteOrder().PutUint64(b, v)
	default:
		panic(fmt.Sprintf("platform: bad scalar size %d", size))
	}
}

// Uint reads a size-byte unsigned integer from b in the platform's byte
// order.
func (p *Platform) Uint(b []byte, size int) uint64 {
	switch size {
	case 1:
		return uint64(b[0])
	case 2:
		return uint64(p.byteOrder().Uint16(b))
	case 4:
		return uint64(p.byteOrder().Uint32(b))
	case 8:
		return p.byteOrder().Uint64(b)
	default:
		panic(fmt.Sprintf("platform: bad scalar size %d", size))
	}
}

// PutInt writes a size-byte signed integer (two's complement) in the
// platform's byte order.
func (p *Platform) PutInt(b []byte, size int, v int64) {
	p.PutUint(b, size, uint64(v))
}

// Int reads a size-byte signed integer, sign-extending to 64 bits.
func (p *Platform) Int(b []byte, size int) int64 {
	u := p.Uint(b, size)
	shift := uint(64 - size*8)
	return int64(u<<shift) >> shift
}

// PutFloat32 writes an IEEE-754 single in the platform's byte order.
func (p *Platform) PutFloat32(b []byte, v float32) {
	p.byteOrder().PutUint32(b, math.Float32bits(v))
}

// Float32 reads an IEEE-754 single in the platform's byte order.
func (p *Platform) Float32(b []byte) float32 {
	return math.Float32frombits(p.byteOrder().Uint32(b))
}

// PutFloat64 writes an IEEE-754 double in the platform's byte order.
func (p *Platform) PutFloat64(b []byte, v float64) {
	p.byteOrder().PutUint64(b, math.Float64bits(v))
}

// Float64 reads an IEEE-754 double in the platform's byte order.
func (p *Platform) Float64(b []byte) float64 {
	return math.Float64frombits(p.byteOrder().Uint64(b))
}

// PutScalar stores v (one of int64, uint64, float32, float64) into b using
// the physical kind k. It is the generic path used by frame and global
// accessors; hot paths use the typed Put* methods directly.
func (p *Platform) PutScalar(b []byte, k Kind, v interface{}) {
	size := p.SizeOf(k)
	switch k {
	case Float32:
		p.PutFloat32(b, toFloat64AsFloat32(v))
	case Float64:
		p.PutFloat64(b, toFloat64(v))
	default:
		switch x := v.(type) {
		case int64:
			p.PutInt(b, size, x)
		case uint64:
			p.PutUint(b, size, x)
		case int:
			p.PutInt(b, size, int64(x))
		default:
			panic(fmt.Sprintf("platform: PutScalar(%v) with %T", k, v))
		}
	}
}

// Scalar loads a value of physical kind k from b. Integers come back as
// int64 (signed kinds) or uint64 (unsigned kinds and pointers); floats as
// float32/float64.
func (p *Platform) Scalar(b []byte, k Kind) interface{} {
	size := p.SizeOf(k)
	switch {
	case k == Float32:
		return p.Float32(b)
	case k == Float64:
		return p.Float64(b)
	case k.Signed():
		return p.Int(b, size)
	default:
		return p.Uint(b, size)
	}
}

func toFloat64(v interface{}) float64 {
	switch x := v.(type) {
	case float64:
		return x
	case float32:
		return float64(x)
	case int64:
		return float64(x)
	case int:
		return float64(x)
	case uint64:
		return float64(x)
	default:
		panic(fmt.Sprintf("platform: cannot treat %T as float", v))
	}
}

func toFloat64AsFloat32(v interface{}) float32 {
	return float32(toFloat64(v))
}
