package platform

import (
	"math"
	"testing"
	"testing/quick"
)

func TestBuiltinPlatformProperties(t *testing.T) {
	cases := []struct {
		p       *Platform
		order   Endianness
		model   Model
		page    int
		ptrSize int
	}{
		{LinuxX86, Little, ILP32, 4096, 4},
		{SolarisSPARC, Big, ILP32, 8192, 4},
		{LinuxX8664, Little, LP64, 4096, 8},
		{SolarisSPARC64, Big, LP64, 8192, 8},
	}
	for _, c := range cases {
		if c.p.Order != c.order {
			t.Errorf("%s: order = %v, want %v", c.p, c.p.Order, c.order)
		}
		if c.p.Model != c.model {
			t.Errorf("%s: model = %v, want %v", c.p, c.p.Model, c.model)
		}
		if c.p.PageSize != c.page {
			t.Errorf("%s: page = %d, want %d", c.p, c.p.PageSize, c.page)
		}
		if c.p.PtrSize() != c.ptrSize {
			t.Errorf("%s: ptr size = %d, want %d", c.p, c.p.PtrSize(), c.ptrSize)
		}
	}
}

func TestKindSizes(t *testing.T) {
	for _, p := range All() {
		wants := map[Kind]int{
			Int8: 1, Uint8: 1, Int16: 2, Uint16: 2,
			Int32: 4, Uint32: 4, Int64: 8, Uint64: 8,
			Float32: 4, Float64: 8,
		}
		for k, w := range wants {
			if got := p.SizeOf(k); got != w {
				t.Errorf("%s: SizeOf(%v) = %d, want %d", p, k, got, w)
			}
			if got := p.AlignOf(k); got != w {
				t.Errorf("%s: AlignOf(%v) = %d, want %d", p, k, got, w)
			}
		}
	}
}

func TestCTypeMapping(t *testing.T) {
	// The paper's two machines are both ILP32: int, long and pointers are
	// all 4 bytes; the pair differs only in byte order and page size.
	for _, p := range []*Platform{LinuxX86, SolarisSPARC} {
		if p.CSizeOf(CInt) != 4 || p.CSizeOf(CLong) != 4 || p.CSizeOf(CPtr) != 4 {
			t.Errorf("%s: ILP32 sizes wrong: int=%d long=%d ptr=%d",
				p, p.CSizeOf(CInt), p.CSizeOf(CLong), p.CSizeOf(CPtr))
		}
	}
	for _, p := range []*Platform{LinuxX8664, SolarisSPARC64} {
		if p.CSizeOf(CInt) != 4 || p.CSizeOf(CLong) != 8 || p.CSizeOf(CPtr) != 8 {
			t.Errorf("%s: LP64 sizes wrong: int=%d long=%d ptr=%d",
				p, p.CSizeOf(CInt), p.CSizeOf(CLong), p.CSizeOf(CPtr))
		}
	}
	if LinuxX86.Kind(CChar) != Int8 {
		t.Errorf("linux char should be signed, got %v", LinuxX86.Kind(CChar))
	}
}

func TestSameABI(t *testing.T) {
	if !LinuxX86.SameABI(LinuxX86) {
		t.Error("LinuxX86 must share ABI with itself")
	}
	if LinuxX86.SameABI(SolarisSPARC) {
		t.Error("LinuxX86 and SolarisSPARC must differ (endianness)")
	}
	if LinuxX86.SameABI(LinuxX8664) {
		t.Error("ILP32 and LP64 must differ")
	}
	// Same ABI with different page size: construct a Linux-like platform
	// with Solaris pages; data layout is identical so ABI matches.
	bigPage := New("linux-x86-8k", "L", Little, ILP32, 8192, true)
	if !LinuxX86.SameABI(bigPage) {
		t.Error("page size must not affect ABI compatibility")
	}
}

func TestNewRejectsBadPageSize(t *testing.T) {
	for _, bad := range []int{0, -4096, 3000, 4097} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New with page size %d did not panic", bad)
				}
			}()
			New("bad", "B", Little, ILP32, bad, true)
		}()
	}
}

func TestByName(t *testing.T) {
	for _, p := range All() {
		if got := ByName(p.Name); got != p {
			t.Errorf("ByName(%q) = %v, want %v", p.Name, got, p)
		}
	}
	if ByName("vax") != nil {
		t.Error("ByName(vax) should be nil")
	}
}

func TestUintRoundTrip(t *testing.T) {
	buf := make([]byte, 8)
	for _, p := range All() {
		for _, size := range []int{1, 2, 4, 8} {
			mask := ^uint64(0)
			if size < 8 {
				mask = 1<<(uint(size)*8) - 1
			}
			for _, v := range []uint64{0, 1, 0x7f, 0x80, 0xff, 0xdeadbeef, math.MaxUint64} {
				p.PutUint(buf, size, v)
				if got := p.Uint(buf, size); got != v&mask {
					t.Errorf("%s size %d: Uint(PutUint(%#x)) = %#x, want %#x",
						p, size, v, got, v&mask)
				}
			}
		}
	}
}

func TestIntSignExtension(t *testing.T) {
	buf := make([]byte, 8)
	for _, p := range All() {
		for _, c := range []struct {
			size int
			v    int64
		}{
			{1, -1}, {1, -128}, {1, 127},
			{2, -32768}, {2, 32767}, {2, -1},
			{4, -2147483648}, {4, 2147483647}, {4, -1},
			{8, math.MinInt64}, {8, math.MaxInt64}, {8, -1},
		} {
			p.PutInt(buf, c.size, c.v)
			if got := p.Int(buf, c.size); got != c.v {
				t.Errorf("%s: Int%d round trip of %d gave %d", p, c.size*8, c.v, got)
			}
		}
	}
}

func TestEndiannessIsVisibleInBytes(t *testing.T) {
	b := make([]byte, 4)
	LinuxX86.PutUint(b, 4, 0x01020304)
	if b[0] != 0x04 || b[3] != 0x01 {
		t.Errorf("little-endian bytes wrong: % x", b)
	}
	SolarisSPARC.PutUint(b, 4, 0x01020304)
	if b[0] != 0x01 || b[3] != 0x04 {
		t.Errorf("big-endian bytes wrong: % x", b)
	}
}

func TestFloatRoundTrip(t *testing.T) {
	buf := make([]byte, 8)
	for _, p := range All() {
		for _, v := range []float64{0, 1.5, -2.25, math.Pi, math.Inf(1), math.Inf(-1), math.SmallestNonzeroFloat64} {
			p.PutFloat64(buf, v)
			if got := p.Float64(buf); got != v {
				t.Errorf("%s: Float64 round trip of %g gave %g", p, v, got)
			}
		}
		for _, v := range []float32{0, 1.5, -2.25, math.MaxFloat32} {
			p.PutFloat32(buf, v)
			if got := p.Float32(buf); got != v {
				t.Errorf("%s: Float32 round trip of %g gave %g", p, v, got)
			}
		}
	}
}

func TestFloatNaN(t *testing.T) {
	buf := make([]byte, 8)
	for _, p := range All() {
		p.PutFloat64(buf, math.NaN())
		if !math.IsNaN(p.Float64(buf)) {
			t.Errorf("%s: NaN did not survive the round trip", p)
		}
	}
}

func TestScalarGeneric(t *testing.T) {
	buf := make([]byte, 8)
	p := SolarisSPARC
	p.PutScalar(buf, Int32, int64(-7))
	if got := p.Scalar(buf, Int32); got.(int64) != -7 {
		t.Errorf("Scalar(Int32) = %v, want -7", got)
	}
	p.PutScalar(buf, Uint16, uint64(65535))
	if got := p.Scalar(buf, Uint16); got.(uint64) != 65535 {
		t.Errorf("Scalar(Uint16) = %v, want 65535", got)
	}
	p.PutScalar(buf, Float64, 3.75)
	if got := p.Scalar(buf, Float64); got.(float64) != 3.75 {
		t.Errorf("Scalar(Float64) = %v, want 3.75", got)
	}
	p.PutScalar(buf, Float32, float32(0.5))
	if got := p.Scalar(buf, Float32); got.(float32) != 0.5 {
		t.Errorf("Scalar(Float32) = %v, want 0.5", got)
	}
}

// Property: for every platform and every 4-byte value, cross-platform byte
// images of the same value differ between LE and BE platforms exactly by
// byte reversal.
func TestQuickEndianSwapProperty(t *testing.T) {
	f := func(v uint32) bool {
		le := make([]byte, 4)
		be := make([]byte, 4)
		LinuxX86.PutUint(le, 4, uint64(v))
		SolarisSPARC.PutUint(be, 4, uint64(v))
		for i := 0; i < 4; i++ {
			if le[i] != be[3-i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Int/PutInt round-trips any int32 on every platform at size 4.
func TestQuickIntRoundTrip(t *testing.T) {
	for _, p := range All() {
		p := p
		f := func(v int32) bool {
			b := make([]byte, 4)
			p.PutInt(b, 4, int64(v))
			return p.Int(b, 4) == int64(v)
		}
		if err := quick.Check(f, nil); err != nil {
			t.Errorf("%s: %v", p, err)
		}
	}
}

// Property: Float64 bit patterns are preserved exactly across a round trip
// (including NaN payloads), on every platform.
func TestQuickFloat64BitsRoundTrip(t *testing.T) {
	for _, p := range All() {
		p := p
		f := func(bits uint64) bool {
			b := make([]byte, 8)
			p.PutFloat64(b, math.Float64frombits(bits))
			return math.Float64bits(p.Float64(b)) == bits
		}
		if err := quick.Check(f, nil); err != nil {
			t.Errorf("%s: %v", p, err)
		}
	}
}
