// Package platform models the heterogeneous machines the paper evaluates on.
//
// The DSM in the paper (Walters, Jiang, Chaudhary, ICPP Workshops 2006) ran
// across a big-endian Sun Fire V440 (Solaris/SPARC) and a little-endian
// Pentium 4 (Linux/x86). What the DSM layer actually depends on is not the
// silicon but the ABI surface: byte order, scalar sizes, alignment rules and
// the hardware page size. A Platform captures exactly that surface, so a
// single Go process can host several virtual nodes whose memory images are
// laid out — and must be converted — exactly as they would be between the
// paper's real machines.
package platform

import "fmt"

// Endianness is the byte order of a platform.
type Endianness int

const (
	// Little means least-significant byte first (x86).
	Little Endianness = iota
	// Big means most-significant byte first (SPARC).
	Big
)

// String returns "little" or "big".
func (e Endianness) String() string {
	switch e {
	case Little:
		return "little"
	case Big:
		return "big"
	default:
		return fmt.Sprintf("Endianness(%d)", int(e))
	}
}

// Kind enumerates the physical scalar kinds a platform knows how to lay out.
// These are physical storage classes, not C type names: the mapping from
// logical C types (int, long, pointer...) to Kinds is platform-specific and
// performed by CType.Kind.
type Kind int

const (
	// Int8 is a signed 8-bit integer (C signed char).
	Int8 Kind = iota
	// Uint8 is an unsigned 8-bit integer (C unsigned char).
	Uint8
	// Int16 is a signed 16-bit integer.
	Int16
	// Uint16 is an unsigned 16-bit integer.
	Uint16
	// Int32 is a signed 32-bit integer.
	Int32
	// Uint32 is an unsigned 32-bit integer.
	Uint32
	// Int64 is a signed 64-bit integer.
	Int64
	// Uint64 is an unsigned 64-bit integer.
	Uint64
	// Float32 is an IEEE-754 single-precision float.
	Float32
	// Float64 is an IEEE-754 double-precision float.
	Float64
	// Ptr is a data pointer; its width is platform-dependent.
	Ptr
	numKinds
)

var kindNames = [...]string{
	Int8: "int8", Uint8: "uint8",
	Int16: "int16", Uint16: "uint16",
	Int32: "int32", Uint32: "uint32",
	Int64: "int64", Uint64: "uint64",
	Float32: "float32", Float64: "float64",
	Ptr: "ptr",
}

// String returns the lower-case kind name.
func (k Kind) String() string {
	if k >= 0 && int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Signed reports whether the kind is a signed integer. Floats and pointers
// return false.
func (k Kind) Signed() bool {
	switch k {
	case Int8, Int16, Int32, Int64:
		return true
	}
	return false
}

// Integer reports whether the kind is an integer (signed or unsigned).
func (k Kind) Integer() bool {
	switch k {
	case Int8, Uint8, Int16, Uint16, Int32, Uint32, Int64, Uint64:
		return true
	}
	return false
}

// Float reports whether the kind is a floating-point kind.
func (k Kind) Float() bool {
	return k == Float32 || k == Float64
}

// CType is a logical C scalar type whose physical width varies by platform.
// The paper's preprocessor emits tags from C declarations; this enumeration
// is the piece of C's type system the tags depend on.
type CType int

const (
	// CChar is C "char" (1 byte everywhere; signedness per platform).
	CChar CType = iota
	// CShort is C "short" (2 bytes on both paper platforms).
	CShort
	// CInt is C "int" (4 bytes on both paper platforms).
	CInt
	// CLong is C "long" (4 bytes on ILP32, 8 on LP64).
	CLong
	// CLongLong is C "long long" (8 bytes).
	CLongLong
	// CFloat is C "float".
	CFloat
	// CDouble is C "double".
	CDouble
	// CPtr is any C data pointer.
	CPtr
	// CUInt is C "unsigned int".
	CUInt
	// CULong is C "unsigned long".
	CULong
	numCTypes
)

var ctypeNames = [...]string{
	CChar: "char", CShort: "short", CInt: "int", CLong: "long",
	CLongLong: "long long", CFloat: "float", CDouble: "double",
	CPtr: "ptr", CUInt: "unsigned int", CULong: "unsigned long",
}

// String returns the C spelling of the type.
func (t CType) String() string {
	if t >= 0 && int(t) < len(ctypeNames) {
		return ctypeNames[t]
	}
	return fmt.Sprintf("CType(%d)", int(t))
}

// Model is the data model of a platform: it decides the width of the
// varying C types.
type Model int

const (
	// ILP32 gives 4-byte int, long and pointers (the paper's machines in
	// their 32-bit ABIs).
	ILP32 Model = iota
	// LP64 gives 4-byte int, 8-byte long and pointers.
	LP64
)

// String returns "ILP32" or "LP64".
func (m Model) String() string {
	if m == ILP32 {
		return "ILP32"
	}
	return "LP64"
}

// Platform describes one virtual machine's ABI surface. Platforms are
// immutable after construction; the package-level variables LinuxX86 etc.
// are shared and must not be mutated.
type Platform struct {
	// Name identifies the platform in reports, e.g. "linux-x86".
	Name string
	// ShortName is the single letter used by the paper's pair labels
	// ("L" for Linux, "S" for Solaris).
	ShortName string
	// Order is the platform's byte order.
	Order Endianness
	// Model is the platform's data model (ILP32 or LP64).
	Model Model
	// PageSize is the MMU page size in bytes; it must be a power of two.
	PageSize int
	// CharSigned reports whether plain C "char" is signed.
	CharSigned bool
	// MaxAlign caps structure field alignment (like #pragma pack); both
	// paper platforms use natural alignment, so this equals the largest
	// scalar size.
	MaxAlign int

	sizes  [numKinds]int
	aligns [numKinds]int
}

// New constructs a platform with natural alignment for the given byte order,
// data model and page size. It panics if pageSize is not a power of two,
// since a misconfigured MMU would corrupt every experiment built on top.
func New(name, short string, order Endianness, model Model, pageSize int, charSigned bool) *Platform {
	if pageSize <= 0 || pageSize&(pageSize-1) != 0 {
		panic(fmt.Sprintf("platform: page size %d is not a power of two", pageSize))
	}
	p := &Platform{
		Name:       name,
		ShortName:  short,
		Order:      order,
		Model:      model,
		PageSize:   pageSize,
		CharSigned: charSigned,
	}
	ptr := 4
	if model == LP64 {
		ptr = 8
	}
	set := func(k Kind, size int) {
		p.sizes[k] = size
		p.aligns[k] = size
	}
	set(Int8, 1)
	set(Uint8, 1)
	set(Int16, 2)
	set(Uint16, 2)
	set(Int32, 4)
	set(Uint32, 4)
	set(Int64, 8)
	set(Uint64, 8)
	set(Float32, 4)
	set(Float64, 8)
	set(Ptr, ptr)
	p.MaxAlign = 8
	return p
}

// SizeOf returns the storage size in bytes of a physical kind.
func (p *Platform) SizeOf(k Kind) int { return p.sizes[k] }

// AlignOf returns the required alignment in bytes of a physical kind.
func (p *Platform) AlignOf(k Kind) int { return p.aligns[k] }

// Kind maps a logical C type to the physical kind this platform stores it
// as. This is where ILP32 vs LP64 (and char signedness) is resolved.
func (p *Platform) Kind(t CType) Kind {
	switch t {
	case CChar:
		if p.CharSigned {
			return Int8
		}
		return Uint8
	case CShort:
		return Int16
	case CInt:
		return Int32
	case CUInt:
		return Uint32
	case CLong:
		if p.Model == LP64 {
			return Int64
		}
		return Int32
	case CULong:
		if p.Model == LP64 {
			return Uint64
		}
		return Uint32
	case CLongLong:
		return Int64
	case CFloat:
		return Float32
	case CDouble:
		return Float64
	case CPtr:
		return Ptr
	default:
		panic(fmt.Sprintf("platform: unknown C type %v", t))
	}
}

// CSizeOf returns the storage size of a logical C type on this platform.
func (p *Platform) CSizeOf(t CType) int { return p.SizeOf(p.Kind(t)) }

// PtrSize returns the pointer width in bytes.
func (p *Platform) PtrSize() int { return p.sizes[Ptr] }

// SameABI reports whether two platforms produce identical memory images
// for all data: same byte order, same data model, same char signedness.
// When SameABI holds, the DSM takes the paper's homogeneous memcpy fast
// path; page size may still differ without affecting data layout.
func (p *Platform) SameABI(q *Platform) bool {
	return p.Order == q.Order && p.Model == q.Model && p.CharSigned == q.CharSigned
}

// String returns the platform name.
func (p *Platform) String() string { return p.Name }

// PairLabel returns the paper's two-letter label for a platform pair, e.g.
// "SL" for Solaris/Linux, "LL" for Linux/Linux.
func PairLabel(a, b *Platform) string { return a.ShortName + b.ShortName }

// The paper's evaluation platforms, plus 64-bit variants used by the
// extension experiments. The page sizes follow the historical defaults:
// 4 KiB on x86 Linux, 8 KiB on UltraSPARC Solaris.
var (
	// LinuxX86 models the paper's 2.4 GHz Pentium 4 running Linux:
	// little-endian ILP32 with 4 KiB pages ("L" in the pair labels).
	LinuxX86 = New("linux-x86", "L", Little, ILP32, 4096, true)
	// SolarisSPARC models the paper's Sun Fire V440 running Solaris:
	// big-endian ILP32 with 8 KiB pages ("S" in the pair labels).
	SolarisSPARC = New("solaris-sparc", "S", Big, ILP32, 8192, true)
	// LinuxX8664 is a little-endian LP64 variant for the heterogeneous
	// word-size extension experiments.
	LinuxX8664 = New("linux-x86-64", "l", Little, LP64, 4096, true)
	// SolarisSPARC64 is a big-endian LP64 variant.
	SolarisSPARC64 = New("solaris-sparc64", "s", Big, LP64, 8192, true)
)

// ByName returns a built-in platform by its Name, or nil when unknown.
func ByName(name string) *Platform {
	switch name {
	case LinuxX86.Name:
		return LinuxX86
	case SolarisSPARC.Name:
		return SolarisSPARC
	case LinuxX8664.Name:
		return LinuxX8664
	case SolarisSPARC64.Name:
		return SolarisSPARC64
	default:
		return nil
	}
}

// All returns the built-in platforms in a fixed order.
func All() []*Platform {
	return []*Platform{LinuxX86, SolarisSPARC, LinuxX8664, SolarisSPARC64}
}
