package migthread

import (
	"sync"
	"testing"
	"time"

	"hetdsm/internal/dsd"
	"hetdsm/internal/platform"
	"hetdsm/internal/tag"
	"hetdsm/internal/transport"
)

// TestMasterMigrationScenario plays out the paper's full §3.1 story: the
// home node AND the computing thread both abandon the original (x86)
// machine for the SPARC machine, mid-computation.
//
//  1. The home hands off: detach at a quiescent point, successor built on
//     SPARC from the portable handoff state, threads redirected.
//  2. The worker thread then migrates into the SPARC node's skeleton slot.
//     Its fresh replica re-registers at the new home (via a redirect from
//     the old address) and is seeded with the full current state.
//
// The computation finishes on hardware the run never started on, exactly.
func TestMasterMigrationScenario(t *testing.T) {
	nw := transport.NewInproc()
	gthv := testGThV()
	opts := dsd.DefaultOptions()

	home1, err := dsd.NewHome(gthv, platform.LinuxX86, 1, opts)
	if err != nil {
		t.Fatal(err)
	}
	l1, err := nw.Listen("home")
	if err != nil {
		t.Fatal(err)
	}
	go home1.Serve(l1)
	defer home1.Close()

	n1 := NewNode("x86-box", platform.LinuxX86, nw, "home", gthv, opts)
	n2 := NewNode("sparc-box", platform.SolarisSPARC, nw, "home", gthv, opts)
	if err := n1.ListenMigrations("x86-mig"); err != nil {
		t.Fatal(err)
	}
	if err := n2.ListenMigrations("sparc-mig"); err != nil {
		t.Fatal(err)
	}
	defer n1.Close()
	defer n2.Close()

	// The workload checkpoints progress into the shared array under the
	// lock every few steps, so both phases of the move are exercised
	// against live traffic.
	const total = 400000
	mkWork := func() *publishingSum { return &publishingSum{Total: total, Chunk: 2000} }

	var handoffOnce, migrateOnce sync.Once
	var home2 *dsd.Home
	var home2Mu sync.Mutex
	w := mkWork()
	w.hook = func(pc int64) {
		if pc == 20 {
			handoffOnce.Do(func() {
				// Home handoff runs concurrently with the thread; the
				// Detach quiesce wait tolerates in-flight critical
				// sections.
				go func() {
					state, err := home1.Detach(30 * time.Second)
					if err != nil {
						t.Errorf("detach: %v", err)
						return
					}
					h2, err := dsd.NewHomeFromHandoff(gthv, platform.SolarisSPARC, 1, opts, state)
					if err != nil {
						t.Errorf("handoff: %v", err)
						return
					}
					l2, err := nw.Listen("home2")
					if err != nil {
						t.Errorf("listen: %v", err)
						return
					}
					go h2.Serve(l2)
					home1.RedirectTo("home2")
					home2Mu.Lock()
					home2 = h2
					home2Mu.Unlock()
				}()
			})
		}
		if pc == 80 {
			migrateOnce.Do(func() {
				if err := n1.RequestMigration(0, n2.MigrationAddr()); err != nil {
					t.Errorf("migration request: %v", err)
				}
			})
		}
	}
	if _, err := n2.StartSkeleton(0, mkWork()); err != nil {
		t.Fatal(err)
	}
	if _, err := n1.StartThread(0, w, RoleLocal); err != nil {
		t.Fatal(err)
	}
	if err := n1.WaitAll(); err != nil {
		t.Fatal(err)
	}
	if err := n2.WaitAll(); err != nil {
		t.Fatal(err)
	}

	home2Mu.Lock()
	h2 := home2
	home2Mu.Unlock()
	if h2 == nil {
		t.Fatal("handoff never completed")
	}
	defer h2.Close()
	h2.Wait()

	got, err := h2.Globals().MustVar("sum").Int(0)
	if err != nil {
		t.Fatal(err)
	}
	if want := int64(total) * (total + 1) / 2; got != want {
		t.Errorf("result after full move = %d, want %d", got, want)
	}
	if len(n1.Migrations()) != 1 {
		t.Errorf("migrations = %d, want 1", len(n1.Migrations()))
	}
	r2, _ := n2.Role(0)
	if r2 != RoleDone {
		t.Errorf("sparc slot role = %v, want done", r2)
	}
}

// publishingSum is sumWork that also publishes its running accumulator
// under the lock every step, generating DSD traffic throughout the move.
type publishingSum struct {
	Total int64
	Chunk int64
	hook  func(pc int64)
}

func (w *publishingSum) FrameType() tag.Struct {
	return tag.Struct{Name: "frame", Fields: []tag.Field{
		{Name: "i", T: tag.Scalar{T: platform.CLongLong}},
		{Name: "acc", T: tag.Scalar{T: platform.CLongLong}},
	}}
}

func (w *publishingSum) Init(ctx *Ctx) error {
	if err := ctx.Frame().SetInt("i", 1); err != nil {
		return err
	}
	return ctx.Frame().SetInt("acc", 0)
}

func (w *publishingSum) Step(ctx *Ctx) (bool, error) {
	f := ctx.Frame()
	i, err := f.Int("i")
	if err != nil {
		return false, err
	}
	acc, err := f.Int("acc")
	if err != nil {
		return false, err
	}
	for k := int64(0); k < w.Chunk && i <= w.Total; k++ {
		acc += i
		i++
	}
	if err := f.SetInt("i", i); err != nil {
		return false, err
	}
	if err := f.SetInt("acc", acc); err != nil {
		return false, err
	}
	// Publish progress under the distributed lock: live traffic through
	// both the handoff and the migration.
	if err := ctx.T.Lock(0); err != nil {
		return false, err
	}
	if err := ctx.T.Globals().MustVar("sum").SetInt(0, acc); err != nil {
		return false, err
	}
	if err := ctx.T.Unlock(0); err != nil {
		return false, err
	}
	if w.hook != nil {
		w.hook(ctx.PC())
	}
	return i > w.Total, nil
}
