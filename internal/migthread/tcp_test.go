package migthread

import (
	"sync"
	"testing"

	"hetdsm/internal/dsd"
	"hetdsm/internal/platform"
	"hetdsm/internal/transport"
)

// TestMigrationOverTCP runs the full stack — DSD home, two migthread nodes,
// a live migration — over real TCP sockets instead of in-process pipes.
func TestMigrationOverTCP(t *testing.T) {
	var nw transport.TCP
	home, err := dsd.NewHome(testGThV(), platform.LinuxX86, 1, dsd.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	hl, err := nw.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go home.Serve(hl)
	defer home.Close()
	homeAddr := hl.Addr()

	n1 := NewNode("tcp-x86", platform.LinuxX86, nw, homeAddr, testGThV(), dsd.DefaultOptions())
	n2 := NewNode("tcp-sparc", platform.SolarisSPARC, nw, homeAddr, testGThV(), dsd.DefaultOptions())
	if err := n1.ListenMigrations("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	if err := n2.ListenMigrations("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer n1.Close()
	defer n2.Close()

	const total = 100000
	var once sync.Once
	w := &sumWork{Total: total, Chunk: 1000}
	w.hook = func(pc int64) {
		if pc >= 5 {
			once.Do(func() {
				if err := n1.RequestMigration(0, n2.MigrationAddr()); err != nil {
					t.Errorf("request: %v", err)
				}
			})
		}
	}
	if _, err := n2.StartSkeleton(0, &sumWork{Total: total, Chunk: 1000}); err != nil {
		t.Fatal(err)
	}
	if _, err := n1.StartThread(0, w, RoleLocal); err != nil {
		t.Fatal(err)
	}
	if err := n1.WaitAll(); err != nil {
		t.Fatal(err)
	}
	if err := n2.WaitAll(); err != nil {
		t.Fatal(err)
	}
	home.Wait()
	if got, want := masterSum(t, home), int64(total)*(total+1)/2; got != want {
		t.Errorf("sum over TCP = %d, want %d", got, want)
	}
	if len(n1.Migrations()) != 1 {
		t.Errorf("migrations = %d, want 1", len(n1.Migrations()))
	}
}
