package migthread

import (
	"testing"

	"hetdsm/internal/platform"
	"hetdsm/internal/tag"
)

// Capture/restore costs of the migration machinery itself.

func benchFrameType(fields int) tag.Struct {
	fs := make([]tag.Field, fields)
	for i := range fs {
		switch i % 3 {
		case 0:
			fs[i] = tag.Field{Name: fieldName(i), T: tag.LongLong()}
		case 1:
			fs[i] = tag.Field{Name: fieldName(i), T: tag.Double()}
		default:
			fs[i] = tag.Field{Name: fieldName(i), T: tag.IntArray(16)}
		}
	}
	return tag.Struct{Name: "frame", Fields: fs}
}

func fieldName(i int) string { return string(rune('a'+i%26)) + string(rune('0'+i/26)) }

func BenchmarkFrameCapture(b *testing.B) {
	f, err := NewFrame(benchFrameType(12), platform.LinuxX86)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if tag := f.TagString(); len(tag) == 0 {
			b.Fatal("empty tag")
		}
		if img := f.Bytes(); len(img) == 0 {
			b.Fatal("empty image")
		}
	}
}

func BenchmarkFrameRestoreHeterogeneous(b *testing.B) {
	typ := benchFrameType(12)
	src, err := NewFrame(typ, platform.SolarisSPARC)
	if err != nil {
		b.Fatal(err)
	}
	tagStr := src.TagString()
	img := src.Bytes()
	b.SetBytes(int64(len(img)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := RestoreFrame(typ, platform.LinuxX86, platform.SolarisSPARC.Name, tagStr, img); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFrameRestoreHomogeneous(b *testing.B) {
	typ := benchFrameType(12)
	src, err := NewFrame(typ, platform.LinuxX86)
	if err != nil {
		b.Fatal(err)
	}
	tagStr := src.TagString()
	img := src.Bytes()
	b.SetBytes(int64(len(img)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := RestoreFrame(typ, platform.LinuxX86, platform.LinuxX86.Name, tagStr, img); err != nil {
			b.Fatal(err)
		}
	}
}
