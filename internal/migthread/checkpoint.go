package migthread

import (
	"fmt"

	"hetdsm/internal/checkpoint"
	"hetdsm/internal/dsd"
)

// Thread-level checkpointing: the same state capture migration performs,
// but written to a portable blob while the thread keeps running. Together
// with dsd.Home.Checkpoint (the globals image) this gives whole-computation
// checkpoints restorable on any platform — the MigThread checkpointing
// facility the paper's Section 3.1 builds on.

// RequestCheckpoint captures slot rank's state at its next safe point and
// returns the portable checkpoint. The thread continues running. It fails
// if the slot is not actively computing or exits before the next safe
// point.
func (n *Node) RequestCheckpoint(rank int32) (*checkpoint.Checkpoint, error) {
	n.mu.Lock()
	s := n.slots[rank]
	n.mu.Unlock()
	if s == nil {
		return nil, fmt.Errorf("migthread: node %s has no slot %d", n.name, rank)
	}
	s.mu.Lock()
	switch s.role {
	case RoleMaster, RoleLocal, RoleRemote:
	default:
		s.mu.Unlock()
		return nil, fmt.Errorf("migthread: slot %d is %v; nothing to checkpoint", rank, s.role)
	}
	reply := make(chan *checkpoint.Checkpoint, 1)
	s.chkReqs = append(s.chkReqs, reply)
	s.mu.Unlock()

	select {
	case ck := <-reply:
		if ck == nil {
			return nil, fmt.Errorf("migthread: slot %d exited before the checkpoint", rank)
		}
		return ck, nil
	case <-s.done:
		// The thread finished; a capture may still have been delivered.
		select {
		case ck := <-reply:
			if ck != nil {
				return ck, nil
			}
		default:
		}
		return nil, fmt.Errorf("migthread: slot %d exited before the checkpoint", rank)
	}
}

// StartFromCheckpoint launches a thread in slot rank resuming a portable
// checkpoint — crash recovery, possibly on a different platform than the
// one that wrote the blob. The rank must be free at the home (the original
// incarnation gone). The home's globals are NOT taken from the checkpoint;
// restore them separately with dsd.Home.Restore before starting threads.
func (n *Node) StartFromCheckpoint(rank int32, work Work, ck *checkpoint.Checkpoint) (*Slot, error) {
	if err := ck.Validate(); err != nil {
		return nil, err
	}
	s, err := n.addSlot(rank, work, RoleRemote)
	if err != nil {
		return nil, err
	}
	n.wg.Add(1)
	go func() {
		defer n.wg.Done()
		defer close(s.done)
		s.err = s.runFromCheckpoint(ck)
	}()
	return s, nil
}

func (s *Slot) runFromCheckpoint(ck *checkpoint.Checkpoint) error {
	frame, err := RestoreFrame(s.work.FrameType(), s.node.plat, ck.Platform, ck.FrameTag, ck.Frame)
	if err != nil {
		return err
	}
	th, err := dsd.Dial(s.node.nw, s.node.homeAddr, s.node.plat, s.rank, s.node.gthv, s.node.opts)
	if err != nil {
		return err
	}
	defer th.Close()
	ctx := &Ctx{
		T: th, frame: frame, pc: ck.PC, slot: s,
		extra: ck.Extra, extraTag: ck.ExtraTag, extraSrcPlat: ck.Platform,
	}
	if r, ok := s.work.(Restorer); ok {
		if err := r.Restore(ctx); err != nil {
			return err
		}
	}
	return s.stepLoop(ctx)
}

// serviceCheckpoints runs pending checkpoint requests at a safe point.
func (s *Slot) serviceCheckpoints(ctx *Ctx) error {
	s.mu.Lock()
	reqs := s.chkReqs
	s.chkReqs = nil
	s.mu.Unlock()
	if len(reqs) == 0 {
		return nil
	}
	// Push dirty shared writes home first so the blob pairs with a
	// consistent home image.
	if err := ctx.T.Flush(); err != nil {
		failCheckpoints(reqs)
		return err
	}
	ck := &checkpoint.Checkpoint{
		Platform: s.node.plat.Name,
		PC:       ctx.pc,
		FrameTag: ctx.frame.TagString(),
		Frame:    ctx.frame.Bytes(),
	}
	if cap, ok := s.work.(Capturer); ok {
		payload, tagStr, err := cap.CaptureExtra(ctx)
		if err != nil {
			failCheckpoints(reqs)
			return err
		}
		ck.Extra = payload
		ck.ExtraTag = tagStr
	}
	for _, ch := range reqs {
		ch <- ck
	}
	return nil
}

// failCheckpoints tells waiting requesters there is no capture coming.
func failCheckpoints(reqs []chan *checkpoint.Checkpoint) {
	for _, ch := range reqs {
		ch <- nil
	}
}
