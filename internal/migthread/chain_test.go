package migthread

import (
	"sync"
	"testing"

	"hetdsm/internal/dsd"
	"hetdsm/internal/platform"
	"hetdsm/internal/transport"
)

// TestChainedMigration moves one thread twice: x86 -> SPARC -> x86-64,
// crossing byte order on the first hop and word size on the second. The
// paper: "Threads can migrate again if the hosting node is overloaded."
func TestChainedMigration(t *testing.T) {
	nw := transport.NewInproc()
	home, err := dsd.NewHome(testGThV(), platform.LinuxX86, 1, dsd.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	hl, err := nw.Listen("home")
	if err != nil {
		t.Fatal(err)
	}
	go home.Serve(hl)
	defer home.Close()

	nodes := []*Node{
		NewNode("hop0", platform.LinuxX86, nw, "home", testGThV(), dsd.DefaultOptions()),
		NewNode("hop1", platform.SolarisSPARC, nw, "home", testGThV(), dsd.DefaultOptions()),
		NewNode("hop2", platform.LinuxX8664, nw, "home", testGThV(), dsd.DefaultOptions()),
	}
	for i, n := range nodes {
		if err := n.ListenMigrations(n.Name() + "-mig"); err != nil {
			t.Fatal(err)
		}
		defer n.Close()
		_ = i
	}

	const total = 200000
	mkWork := func() *sumWork { return &sumWork{Total: total, Chunk: 1000} }

	// RequestMigration is non-blocking (it only marks the slot), so the
	// hooks may call it synchronously: the request is then guaranteed to
	// be visible at the thread's next safe point. Each work instance only
	// ever runs on its own node, so each gets its own hop trigger.
	var once0, once1 sync.Once
	w0 := mkWork()
	w0.hook = func(pc int64) {
		if pc >= 5 {
			once0.Do(func() {
				if err := nodes[0].RequestMigration(0, nodes[1].MigrationAddr()); err != nil {
					t.Errorf("hop0 request: %v", err)
				}
			})
		}
	}
	w1 := mkWork()
	w1.hook = func(pc int64) {
		if pc >= 50 {
			once1.Do(func() {
				if err := nodes[1].RequestMigration(0, nodes[2].MigrationAddr()); err != nil {
					t.Errorf("hop1 request: %v", err)
				}
			})
		}
	}
	w2 := mkWork()

	if _, err := nodes[1].StartSkeleton(0, w1); err != nil {
		t.Fatal(err)
	}
	if _, err := nodes[2].StartSkeleton(0, w2); err != nil {
		t.Fatal(err)
	}
	if _, err := nodes[0].StartThread(0, w0, RoleLocal); err != nil {
		t.Fatal(err)
	}
	for _, n := range nodes {
		if err := n.WaitAll(); err != nil {
			t.Fatal(err)
		}
	}
	home.Wait()

	if got, want := masterSum(t, home), int64(total)*(total+1)/2; got != want {
		t.Errorf("sum after two hops = %d, want %d", got, want)
	}
	// Role trail: hop0 stub, hop1 stub (migrated away again), hop2 done.
	for i, want := range []Role{RoleStub, RoleStub, RoleDone} {
		got, err := nodes[i].Role(0)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("hop%d role = %v, want %v", i, got, want)
		}
	}
	if len(nodes[0].Migrations()) != 1 || len(nodes[1].Migrations()) != 1 {
		t.Errorf("migration records = %d/%d, want 1/1",
			len(nodes[0].Migrations()), len(nodes[1].Migrations()))
	}
}

// TestConcurrentMigrations moves two different ranks between two nodes at
// the same time, in opposite directions.
func TestConcurrentMigrations(t *testing.T) {
	nw := transport.NewInproc()
	home, err := dsd.NewHome(testGThV(), platform.LinuxX86, 2, dsd.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	hl, err := nw.Listen("home")
	if err != nil {
		t.Fatal(err)
	}
	go home.Serve(hl)
	defer home.Close()

	a := NewNode("a", platform.LinuxX86, nw, "home", testGThV(), dsd.DefaultOptions())
	b := NewNode("b", platform.SolarisSPARC, nw, "home", testGThV(), dsd.DefaultOptions())
	for _, n := range []*Node{a, b} {
		if err := n.ListenMigrations(n.Name() + "-mig"); err != nil {
			t.Fatal(err)
		}
		defer n.Close()
	}

	const total = 100000
	// sumWork publishes into the single shared "sum" slot under lock 0 —
	// with two threads both adding their totals we need them to
	// accumulate, not overwrite. Use distinct flags slots per rank via
	// sumPublishWork below.
	mk := func(rank int32) *publishWork {
		return &publishWork{sumWork: sumWork{Total: total, Chunk: 500}, slot: int(rank)}
	}

	var once0, once1 sync.Once
	w0 := mk(0)
	w0.hook = func(pc int64) {
		if pc >= 5 {
			once0.Do(func() {
				if err := a.RequestMigration(0, b.MigrationAddr()); err != nil {
					t.Errorf("request 0: %v", err)
				}
			})
		}
	}
	w1 := mk(1)
	w1.hook = func(pc int64) {
		if pc >= 5 {
			once1.Do(func() {
				if err := b.RequestMigration(1, a.MigrationAddr()); err != nil {
					t.Errorf("request 1: %v", err)
				}
			})
		}
	}
	if _, err := b.StartSkeleton(0, mk(0)); err != nil {
		t.Fatal(err)
	}
	if _, err := a.StartSkeleton(1, mk(1)); err != nil {
		t.Fatal(err)
	}
	if _, err := a.StartThread(0, w0, RoleLocal); err != nil {
		t.Fatal(err)
	}
	if _, err := b.StartThread(1, w1, RoleLocal); err != nil {
		t.Fatal(err)
	}
	if err := a.WaitAll(); err != nil {
		t.Fatal(err)
	}
	if err := b.WaitAll(); err != nil {
		t.Fatal(err)
	}
	home.Wait()

	g := home.Globals()
	sum := int64(total) * (total + 1) / 2
	want := int64(int32(sum)) // stored as C int (wraps)
	for slot := 0; slot < 2; slot++ {
		v, err := g.MustVar("flags").Int(slot)
		if err != nil {
			t.Fatal(err)
		}
		if v != want {
			t.Errorf("flags[%d] = %d, want %d", slot, v, want)
		}
	}
}

// publishWork is sumWork that publishes its result into flags[slot]
// instead of the shared sum scalar, so concurrent instances don't collide.
type publishWork struct {
	sumWork
	slot int
}

func (w *publishWork) Step(ctx *Ctx) (bool, error) {
	f := ctx.Frame()
	i, err := f.Int("i")
	if err != nil {
		return false, err
	}
	acc, err := f.Int("acc")
	if err != nil {
		return false, err
	}
	for k := int64(0); k < w.Chunk && i <= w.Total; k++ {
		acc += i
		i++
	}
	if err := f.SetInt("i", i); err != nil {
		return false, err
	}
	if err := f.SetInt("acc", acc); err != nil {
		return false, err
	}
	if w.hook != nil {
		w.hook(ctx.PC())
	}
	if i > w.Total {
		if err := ctx.T.Lock(0); err != nil {
			return false, err
		}
		if err := ctx.T.Globals().MustVar("flags").SetInt(w.slot, acc); err != nil {
			return false, err
		}
		if err := ctx.T.Unlock(0); err != nil {
			return false, err
		}
		return true, nil
	}
	return false, nil
}
