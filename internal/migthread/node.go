package migthread

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"time"

	"hetdsm/internal/checkpoint"
	"hetdsm/internal/dsd"
	"hetdsm/internal/platform"
	"hetdsm/internal/tag"
	"hetdsm/internal/transport"
	"hetdsm/internal/wire"
)

// Role is a thread slot's place in the paper's Figure 1 vocabulary.
type Role int

const (
	// RoleMaster is the default thread at the home node.
	RoleMaster Role = iota
	// RoleLocal is a slave thread at the home node.
	RoleLocal
	// RoleSkeleton holds a computing slot at a remote node, waiting for a
	// migrating state.
	RoleSkeleton
	// RoleRemote is a skeleton that received a state and is computing.
	RoleRemote
	// RoleStub is what a local/remote thread becomes after its state
	// leaves: it remains only for resource access bookkeeping.
	RoleStub
	// RoleDone is a thread that finished its work and joined.
	RoleDone
)

var roleNames = [...]string{"master", "local", "skeleton", "remote", "stub", "done"}

// String returns the paper's name for the role.
func (r Role) String() string {
	if r >= 0 && int(r) < len(roleNames) {
		return roleNames[r]
	}
	return fmt.Sprintf("Role(%d)", int(r))
}

// Work is a step-structured workload: the form MigThread's preprocessor
// reduces a thread function to. All migratable locals live in the Ctx's
// Frame; Step runs one safe-point-to-safe-point unit. Step must return at a
// release point (after Barrier/Unlock) so that a migration between steps
// never strands unflushed shared writes — the runtime additionally flushes
// at capture as a belt-and-suspenders measure.
type Work interface {
	// FrameType declares the thread's local frame structure.
	FrameType() tag.Struct
	// Init runs once when the thread starts fresh (not after migration).
	Init(ctx *Ctx) error
	// Step runs one unit; done reports completion.
	Step(ctx *Ctx) (done bool, err error)
}

// Capturer is an optional Work extension: when the thread migrates,
// CaptureExtra runs at the capture safe point and its payload (in the
// source platform's layout, with a CGT-RMR tag) travels with the thread
// state. The file-descriptor tables and socket states of internal/migio
// are designed to be carried this way.
type Capturer interface {
	// CaptureExtra serializes node-local resource state for the move.
	CaptureExtra(ctx *Ctx) (payload []byte, tagStr string, err error)
}

// Restorer is an optional Work extension: when a migrated state lands in a
// skeleton, Restore runs after the frame is rebuilt and before stepping
// resumes. Workloads use it to re-establish node-local resources the frame
// only describes — reopening migrated file descriptors, resuming sessions
// (see internal/migio), re-deriving pointers.
type Restorer interface {
	// Restore re-establishes node-local resources from the frame.
	Restore(ctx *Ctx) error
}

// Ctx is a running thread's view of its world: its DSD thread (globals and
// synchronization) and its local frame.
type Ctx struct {
	// T is the thread's DSD endpoint: Lock/Unlock/Barrier/Globals.
	T     *dsd.Thread
	frame *Frame
	pc    int64
	slot  *Slot

	// extra payload delivered by a migration (nil on fresh starts).
	extra        []byte
	extraTag     string
	extraSrcPlat string
}

// Frame returns the thread's migratable locals.
func (c *Ctx) Frame() *Frame { return c.frame }

// PC returns the logical program counter (completed step count).
func (c *Ctx) PC() int64 { return c.pc }

// Rank returns the thread's iso-computing rank.
func (c *Ctx) Rank() int32 { return c.slot.rank }

// Platform returns the hosting node's platform.
func (c *Ctx) Platform() *platform.Platform { return c.slot.node.plat }

// Extra returns the workload payload that travelled with a migration: the
// bytes, their CGT-RMR tag, and the name of the platform whose layout they
// are in. All zero values on a fresh start.
func (c *Ctx) Extra() (payload []byte, tagStr, srcPlatform string) {
	return c.extra, c.extraTag, c.extraSrcPlat
}

// MigrationRecord documents one completed migration for the harness.
type MigrationRecord struct {
	// Rank is the migrated thread's rank.
	Rank int32
	// From and To are node names.
	From, To string
	// PC is the step count at capture.
	PC int64
	// FrameBytes is the size of the captured frame image.
	FrameBytes int
	// CaptureTime covers flush + serialize + transfer + ack.
	CaptureTime time.Duration
}

// Node hosts thread slots on one virtual machine. Its migration listener is
// how other nodes' threads arrive.
type Node struct {
	name     string
	plat     *platform.Platform
	nw       transport.Network
	homeAddr string
	gthv     tag.Struct
	opts     dsd.Options

	mu       sync.Mutex
	slots    map[int32]*Slot
	records  []MigrationRecord
	listener transport.Listener
	wg       sync.WaitGroup
}

// Slot is one iso-computing thread slot: rank i here corresponds to rank i
// on every other node.
type Slot struct {
	node *Node
	rank int32
	work Work

	mu      sync.Mutex
	role    Role
	migDest string // requested migration destination ("" = none)

	stateCh chan *wire.Message // incoming state for skeletons
	chkReqs []chan *checkpoint.Checkpoint
	done    chan struct{}
	err     error
}

// NewNode creates a node named name on platform p whose threads reach the
// DSD home at homeAddr over nw.
func NewNode(name string, p *platform.Platform, nw transport.Network, homeAddr string, gthv tag.Struct, opts dsd.Options) *Node {
	return &Node{
		name:     name,
		plat:     p,
		nw:       nw,
		homeAddr: homeAddr,
		gthv:     gthv,
		opts:     opts,
		slots:    make(map[int32]*Slot),
	}
}

// Name returns the node name.
func (n *Node) Name() string { return n.name }

// Platform returns the node's virtual platform.
func (n *Node) Platform() *platform.Platform { return n.plat }

// ListenMigrations starts accepting migrating thread states at addr.
func (n *Node) ListenMigrations(addr string) error {
	l, err := n.nw.Listen(addr)
	if err != nil {
		return err
	}
	n.mu.Lock()
	n.listener = l
	n.mu.Unlock()
	go n.acceptLoop(l)
	return nil
}

// MigrationAddr returns the address other nodes dial to send threads here.
func (n *Node) MigrationAddr() string {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.listener == nil {
		return ""
	}
	return n.listener.Addr()
}

func (n *Node) acceptLoop(l transport.Listener) {
	for {
		c, err := l.Accept()
		if err != nil {
			return
		}
		go n.handleMigration(c)
	}
}

func (n *Node) handleMigration(c transport.Conn) {
	defer c.Close()
	frame, err := c.RecvFrame()
	if err != nil {
		return
	}
	msg, err := wire.Decode(frame)
	if err != nil {
		return
	}
	ack := &wire.Message{Kind: wire.KindMigrateAck, Rank: msg.Rank}
	if msg.Kind != wire.KindMigrate || msg.State == nil {
		ack.Err = "migthread: not a migration message"
	} else if err := n.deliverState(msg); err != nil {
		ack.Err = err.Error()
	}
	if out, err := wire.Encode(ack); err == nil {
		_ = c.SendFrame(out)
	}
}

// deliverState enforces iso-computing: the state of thread rank i may only
// land in skeleton slot i.
func (n *Node) deliverState(msg *wire.Message) error {
	n.mu.Lock()
	s := n.slots[msg.Rank]
	n.mu.Unlock()
	if s == nil {
		return fmt.Errorf("migthread: node %s has no slot for rank %d (iso-computing)", n.name, msg.Rank)
	}
	s.mu.Lock()
	role := s.role
	s.mu.Unlock()
	if role != RoleSkeleton {
		return fmt.Errorf("migthread: slot %d on %s is %v, not a skeleton", msg.Rank, n.name, role)
	}
	select {
	case s.stateCh <- msg:
		return nil
	default:
		return fmt.Errorf("migthread: slot %d on %s already has a state in flight", msg.Rank, n.name)
	}
}

func (n *Node) addSlot(rank int32, work Work, role Role) (*Slot, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, dup := n.slots[rank]; dup {
		return nil, fmt.Errorf("migthread: node %s already has slot %d", n.name, rank)
	}
	s := &Slot{
		node:    n,
		rank:    rank,
		work:    work,
		role:    role,
		stateCh: make(chan *wire.Message, 1),
		done:    make(chan struct{}),
	}
	n.slots[rank] = s
	return s, nil
}

// StartThread launches an active thread (the master or a local slave) that
// begins computing immediately.
func (n *Node) StartThread(rank int32, work Work, role Role) (*Slot, error) {
	if role != RoleMaster && role != RoleLocal {
		return nil, fmt.Errorf("migthread: active threads start as master or local, not %v", role)
	}
	s, err := n.addSlot(rank, work, role)
	if err != nil {
		return nil, err
	}
	n.wg.Add(1)
	go func() {
		defer n.wg.Done()
		defer close(s.done)
		s.err = s.runFresh()
	}()
	return s, nil
}

// StartSkeleton launches a skeleton slot that blocks until a migrating
// state arrives, then computes as a remote thread.
func (n *Node) StartSkeleton(rank int32, work Work) (*Slot, error) {
	s, err := n.addSlot(rank, work, RoleSkeleton)
	if err != nil {
		return nil, err
	}
	n.wg.Add(1)
	go func() {
		defer n.wg.Done()
		defer close(s.done)
		s.err = s.runSkeleton()
	}()
	return s, nil
}

// RequestMigration asks the running thread in slot rank to move to the node
// listening at destAddr at its next safe point.
func (n *Node) RequestMigration(rank int32, destAddr string) error {
	n.mu.Lock()
	s := n.slots[rank]
	n.mu.Unlock()
	if s == nil {
		return fmt.Errorf("migthread: node %s has no slot %d", n.name, rank)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	switch s.role {
	case RoleLocal, RoleRemote, RoleMaster:
		s.migDest = destAddr
		return nil
	default:
		return fmt.Errorf("migthread: slot %d is %v; cannot migrate", rank, s.role)
	}
}

// Role returns the slot's current role.
func (n *Node) Role(rank int32) (Role, error) {
	n.mu.Lock()
	s := n.slots[rank]
	n.mu.Unlock()
	if s == nil {
		return 0, fmt.Errorf("migthread: node %s has no slot %d", n.name, rank)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.role, nil
}

// ranksWithRole returns the ranks of slots currently in any of the given
// roles, in ascending rank order.
func (n *Node) ranksWithRole(roles ...Role) []int32 {
	n.mu.Lock()
	slots := make([]*Slot, 0, len(n.slots))
	for _, s := range n.slots {
		slots = append(slots, s)
	}
	n.mu.Unlock()
	var out []int32
	for _, s := range slots {
		s.mu.Lock()
		r := s.role
		s.mu.Unlock()
		for _, want := range roles {
			if r == want {
				out = append(out, s.rank)
				break
			}
		}
	}
	sortRanks(out)
	return out
}

func sortRanks(rs []int32) {
	for i := 1; i < len(rs); i++ {
		for j := i; j > 0 && rs[j] < rs[j-1]; j-- {
			rs[j], rs[j-1] = rs[j-1], rs[j]
		}
	}
}

// ActiveRanks returns the ranks computing on this node (master, local or
// remote roles) — the candidates a load balancer may move away.
func (n *Node) ActiveRanks() []int32 {
	return n.ranksWithRole(RoleMaster, RoleLocal, RoleRemote)
}

// SkeletonRanks returns the ranks whose slots are idle skeletons — the
// landing sites a load balancer may move threads onto.
func (n *Node) SkeletonRanks() []int32 {
	return n.ranksWithRole(RoleSkeleton)
}

// Migrations returns the records of migrations that departed this node.
func (n *Node) Migrations() []MigrationRecord {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make([]MigrationRecord, len(n.records))
	copy(out, n.records)
	return out
}

// WaitAll blocks until every slot's goroutine finishes and returns their
// combined errors.
func (n *Node) WaitAll() error {
	n.wg.Wait()
	n.mu.Lock()
	defer n.mu.Unlock()
	var errs []string
	for _, s := range n.slots {
		if s.err != nil {
			errs = append(errs, fmt.Sprintf("rank %d: %v", s.rank, s.err))
		}
	}
	if len(errs) > 0 {
		return errors.New("migthread: " + strings.Join(errs, "; "))
	}
	return nil
}

// Close stops the migration listener.
func (n *Node) Close() {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.listener != nil {
		n.listener.Close()
		n.listener = nil
	}
}

// runFresh drives a thread from Init.
func (s *Slot) runFresh() error {
	th, err := dsd.Dial(s.node.nw, s.node.homeAddr, s.node.plat, s.rank, s.node.gthv, s.node.opts)
	if err != nil {
		return err
	}
	defer th.Close()
	frame, err := NewFrame(s.work.FrameType(), s.node.plat)
	if err != nil {
		return err
	}
	ctx := &Ctx{T: th, frame: frame, slot: s}
	if err := s.work.Init(ctx); err != nil {
		return err
	}
	return s.stepLoop(ctx)
}

// runSkeleton waits for a state, restores it, and computes.
func (s *Slot) runSkeleton() error {
	msg, ok := <-s.stateCh
	if !ok {
		return nil
	}
	frame, err := RestoreFrame(s.work.FrameType(), s.node.plat, msg.Platform, msg.State.FrameTag, msg.State.Frame)
	if err != nil {
		return err
	}
	// Re-register the rank; the source releases it when its DSD
	// connection closes, which races with the ack we already sent.
	var th *dsd.Thread
	deadline := time.Now().Add(10 * time.Second)
	for {
		th, err = dsd.Dial(s.node.nw, s.node.homeAddr, s.node.plat, s.rank, s.node.gthv, s.node.opts)
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("migthread: rank %d never freed at home: %w", s.rank, err)
		}
		time.Sleep(time.Millisecond)
	}
	defer th.Close()

	s.mu.Lock()
	s.role = RoleRemote
	s.mu.Unlock()

	ctx := &Ctx{
		T: th, frame: frame, pc: msg.State.PC, slot: s,
		extra: msg.State.Extra, extraTag: msg.State.ExtraTag, extraSrcPlat: msg.Platform,
	}
	if r, ok := s.work.(Restorer); ok {
		if err := r.Restore(ctx); err != nil {
			return err
		}
	}
	return s.stepLoop(ctx)
}

// stepLoop alternates work steps with migration and checkpoint safe points.
func (s *Slot) stepLoop(ctx *Ctx) error {
	defer func() {
		// Anyone still waiting on a checkpoint gets a definitive no.
		s.mu.Lock()
		reqs := s.chkReqs
		s.chkReqs = nil
		s.mu.Unlock()
		failCheckpoints(reqs)
	}()
	for {
		if err := s.serviceCheckpoints(ctx); err != nil {
			return err
		}
		if dest := s.takeMigrationRequest(); dest != "" {
			if migrated, err := s.migrate(ctx, dest); err != nil {
				return err
			} else if migrated {
				return nil
			}
			// Migration refused (e.g. no skeleton there): keep
			// computing here.
		}
		done, err := s.work.Step(ctx)
		if err != nil {
			return err
		}
		ctx.pc++
		if done {
			if err := ctx.T.Join(); err != nil {
				return err
			}
			s.mu.Lock()
			s.role = RoleDone
			s.mu.Unlock()
			return nil
		}
	}
}

func (s *Slot) takeMigrationRequest() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	dest := s.migDest
	s.migDest = ""
	return dest
}

// migrate performs the capture protocol: flush shared writes home, ship
// the frame and PC to the destination skeleton, and retire to stub.
func (s *Slot) migrate(ctx *Ctx, dest string) (bool, error) {
	start := time.Now()
	if err := ctx.T.Flush(); err != nil {
		return false, err
	}
	state := &wire.ThreadState{
		PC:       ctx.pc,
		FrameTag: ctx.frame.TagString(),
		Frame:    ctx.frame.Bytes(),
	}
	if cap, ok := s.work.(Capturer); ok {
		payload, tagStr, err := cap.CaptureExtra(ctx)
		if err != nil {
			return false, err
		}
		state.Extra = payload
		state.ExtraTag = tagStr
	}
	msg := &wire.Message{
		Kind:     wire.KindMigrate,
		Rank:     s.rank,
		Platform: s.node.plat.Name,
		State:    state,
	}
	conn, err := s.node.nw.Dial(dest)
	if err != nil {
		return false, nil // destination unreachable: keep computing
	}
	defer conn.Close()
	frame, err := wire.Encode(msg)
	if err != nil {
		return false, err
	}
	if err := conn.SendFrame(frame); err != nil {
		return false, nil
	}
	ackFrame, err := conn.RecvFrame()
	if err != nil {
		return false, nil
	}
	ack, err := wire.Decode(ackFrame)
	if err != nil || ack.Kind != wire.KindMigrateAck {
		return false, nil
	}
	if ack.Err != "" {
		// Destination refused (iso-computing violation, busy slot):
		// resume locally; the Flush already happened and is harmless.
		return false, nil
	}
	// Committed: the state now lives at dest. Free the rank.
	if err := ctx.T.Close(); err != nil {
		return false, err
	}
	s.mu.Lock()
	s.role = RoleStub
	s.mu.Unlock()
	s.node.mu.Lock()
	s.node.records = append(s.node.records, MigrationRecord{
		Rank:        s.rank,
		From:        s.node.name,
		To:          dest,
		PC:          ctx.pc,
		FrameBytes:  len(state.Frame),
		CaptureTime: time.Since(start),
	})
	s.node.mu.Unlock()
	return true, nil
}
