package migthread

import (
	"bytes"
	"sync"
	"testing"
	"time"

	"hetdsm/internal/checkpoint"
	"hetdsm/internal/dsd"
	"hetdsm/internal/platform"
	"hetdsm/internal/transport"
)

// TestWholeComputationCheckpointRecovery checkpoints a running computation
// mid-way (thread state via the migthread layer, globals image via the
// home), destroys the entire cluster, rebuilds it on DIFFERENT platforms,
// restores both halves from the portable blobs, and finishes. The final
// result is exact: heterogeneous crash recovery.
func TestWholeComputationCheckpointRecovery(t *testing.T) {
	const total, chunk = 100000, 500

	// --- original cluster: linux home, linux worker ---
	nw := transport.NewInproc()
	home, err := dsd.NewHome(testGThV(), platform.LinuxX86, 1, dsd.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	hl, err := nw.Listen("home")
	if err != nil {
		t.Fatal(err)
	}
	go home.Serve(hl)

	n1 := NewNode("orig", platform.LinuxX86, nw, "home", testGThV(), dsd.DefaultOptions())

	// The work marks progress into the shared array so the globals
	// checkpoint is observably mid-flight.
	captured := make(chan *checkpoint.Checkpoint, 1)
	gotIt := make(chan struct{})
	var once sync.Once
	w := &sumWork{Total: total, Chunk: chunk}
	w.hook = func(pc int64) {
		if pc == 20 {
			// RequestCheckpoint blocks until the thread's next safe
			// point, so it must come from outside the thread.
			once.Do(func() {
				go func() {
					defer close(gotIt)
					ck, err := n1.RequestCheckpoint(4)
					if err != nil {
						t.Errorf("checkpoint: %v", err)
						close(captured)
						return
					}
					captured <- ck
				}()
			})
		}
		if pc >= 20 {
			// Throttle until the capture lands so the thread cannot
			// finish first.
			select {
			case <-gotIt:
			default:
				time.Sleep(2 * time.Millisecond)
			}
		}
	}
	if _, err := n1.StartThread(4, w, RoleLocal); err != nil {
		t.Fatal(err)
	}

	ck, ok := <-captured
	if !ok || ck == nil {
		t.Fatal("no checkpoint captured")
	}
	if ck.PC < 20 {
		t.Fatalf("checkpoint at pc %d, want >= 20", ck.PC)
	}
	// Pair it with the home's globals image, and serialize both to one
	// blob as a real checkpointer would.
	gImg, gTag := home.Checkpoint()
	ck.Globals = gImg
	ck.GlobalsTag = gTag
	var blobBuf bytes.Buffer
	if err := ck.Save(&blobBuf); err != nil {
		t.Fatal(err)
	}
	blob := blobBuf.Bytes()

	// --- "crash": abandon the original cluster entirely ---
	// (The original thread keeps running in the background; its home is
	// independent of the new one, so it cannot interfere.)
	home.Close()

	// --- recovery on the OPPOSITE platforms from the blob ---
	loaded, err := checkpoint.Load(bytes.NewReader(blob))
	if err != nil {
		t.Fatal(err)
	}
	if err := loaded.Validate(); err != nil {
		t.Fatal(err)
	}
	nw2 := transport.NewInproc()
	home2, err := dsd.NewHome(testGThV(), platform.SolarisSPARC, 1, dsd.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := home2.Restore(loaded.Globals, loaded.GlobalsTag, loaded.Platform, dsd.DefaultBase); err != nil {
		t.Fatal(err)
	}
	hl2, err := nw2.Listen("home")
	if err != nil {
		t.Fatal(err)
	}
	go home2.Serve(hl2)
	defer home2.Close()

	n2 := NewNode("recovered", platform.SolarisSPARC, nw2, "home", testGThV(), dsd.DefaultOptions())
	if _, err := n2.StartFromCheckpoint(4, &sumWork{Total: total, Chunk: chunk}, loaded); err != nil {
		t.Fatal(err)
	}
	if err := n2.WaitAll(); err != nil {
		t.Fatal(err)
	}
	home2.Wait()

	got, err := home2.Globals().MustVar("sum").Int(0)
	if err != nil {
		t.Fatal(err)
	}
	if want := int64(total) * (total + 1) / 2; got != want {
		t.Errorf("recovered result = %d, want %d", got, want)
	}
	role, _ := n2.Role(4)
	if role != RoleDone {
		t.Errorf("recovered slot role = %v", role)
	}

	// Let the original finish too so goroutines drain.
	_ = n1.WaitAll()
}

func TestRequestCheckpointErrors(t *testing.T) {
	_, _, n1, _ := rig(t)
	if _, err := n1.RequestCheckpoint(99); err == nil {
		t.Error("unknown slot must fail")
	}
	// A finished thread cannot be checkpointed.
	if _, err := n1.StartThread(0, &sumWork{Total: 10, Chunk: 10}, RoleLocal); err != nil {
		t.Fatal(err)
	}
	if err := n1.WaitAll(); err != nil {
		t.Fatal(err)
	}
	if _, err := n1.RequestCheckpoint(0); err == nil {
		t.Error("done slot must fail")
	}
}

func TestStartFromCheckpointValidates(t *testing.T) {
	_, _, n1, _ := rig(t)
	bad := &checkpoint.Checkpoint{Platform: "vax"}
	if _, err := n1.StartFromCheckpoint(5, &sumWork{Total: 10, Chunk: 10}, bad); err == nil {
		t.Error("invalid checkpoint accepted")
	}
}

func TestCheckpointDoesNotStopThread(t *testing.T) {
	_, home, n1, _ := rig(t)
	captured := make(chan struct{})
	var once sync.Once
	w := &sumWork{Total: 20000, Chunk: 100}
	w.hook = func(pc int64) {
		if pc == 3 {
			once.Do(func() {
				go func() {
					if _, err := n1.RequestCheckpoint(1); err != nil {
						t.Errorf("checkpoint: %v", err)
					}
					close(captured)
				}()
			})
		}
		if pc >= 3 {
			select {
			case <-captured:
			default:
				time.Sleep(2 * time.Millisecond)
			}
		}
	}
	if _, err := n1.StartThread(1, w, RoleLocal); err != nil {
		t.Fatal(err)
	}
	<-captured
	if err := n1.WaitAll(); err != nil {
		t.Fatal(err)
	}
	home.Wait()
	// The ORIGINAL thread finished normally after being checkpointed.
	if got, want := masterSum(t, home), int64(20000)*20001/2; got != want {
		t.Errorf("sum = %d, want %d", got, want)
	}
}
