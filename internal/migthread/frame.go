// Package migthread reproduces the MigThread substrate of paper Section 3:
// application-level thread state capture, heterogeneous restoration via
// CGT-RMR, iso-computing thread slots, and the home/local/stub/skeleton/
// remote role bookkeeping of Figure 1.
//
// The original system lifts C thread stacks to the application level with a
// preprocessor. Go's runtime owns goroutine stacks (the repro gate noted in
// DESIGN.md), so workloads here are written in the form the preprocessor
// would have produced: all migratable locals live in a typed Frame laid out
// per the host platform's ABI, and execution advances in Steps between safe
// points. Capturing a thread is then exactly what MigThread does: serialize
// the frame with its CGT-RMR tag and restore it receiver-makes-right on the
// destination platform.
package migthread

import (
	"fmt"

	"hetdsm/internal/convert"
	"hetdsm/internal/platform"
	"hetdsm/internal/tag"
)

// Frame is the MThV-equivalent: one thread's migratable local variables,
// stored in the host platform's byte representation. A Frame belongs to a
// single thread goroutine.
type Frame struct {
	typ    tag.Struct
	plat   *platform.Platform
	layout *tag.Layout
	data   []byte
}

// NewFrame allocates a zeroed frame of the given type on a platform.
func NewFrame(typ tag.Struct, p *platform.Platform) (*Frame, error) {
	layout, err := tag.NewLayout(typ, p)
	if err != nil {
		return nil, err
	}
	return &Frame{typ: typ, plat: p, layout: layout, data: make([]byte, layout.Size)}, nil
}

// Platform returns the platform the frame is laid out for.
func (f *Frame) Platform() *platform.Platform { return f.plat }

// Size returns the frame's storage size on this platform.
func (f *Frame) Size() int { return len(f.data) }

// TagString returns the frame's CGT-RMR tag in the paper's grammar.
func (f *Frame) TagString() string { return tag.FromLayout(f.layout).String() }

// Bytes returns a copy of the frame image; the capture payload.
func (f *Frame) Bytes() []byte {
	out := make([]byte, len(f.data))
	copy(out, f.data)
	return out
}

func (f *Frame) field(name string) (tag.FieldLayout, error) {
	fl, ok := f.layout.FieldByName(name)
	if !ok {
		return tag.FieldLayout{}, fmt.Errorf("migthread: frame has no field %q", name)
	}
	return fl, nil
}

func (f *Frame) scalarAt(name string, i int) (off, size int, kind platform.Kind, err error) {
	fl, err := f.field(name)
	if err != nil {
		return 0, 0, 0, err
	}
	l := fl.Layout
	off = fl.Offset
	if l.Elem != nil {
		if i < 0 || i >= l.N {
			return 0, 0, 0, fmt.Errorf("migthread: %s[%d] out of range [0,%d)", name, i, l.N)
		}
		off += i * l.Elem.Size
		l = l.Elem
	} else if i != 0 {
		return 0, 0, 0, fmt.Errorf("migthread: %s is scalar, index %d invalid", name, i)
	}
	if !l.IsScalar() {
		return 0, 0, 0, fmt.Errorf("migthread: %s is not a scalar", name)
	}
	return off, l.Size, l.Kind, nil
}

// SetInt stores a signed integer into a scalar field.
func (f *Frame) SetInt(name string, v int64) error { return f.SetIntAt(name, 0, v) }

// Int loads a signed integer from a scalar field.
func (f *Frame) Int(name string) (int64, error) { return f.IntAt(name, 0) }

// SetIntAt stores into element i of an integer array field.
func (f *Frame) SetIntAt(name string, i int, v int64) error {
	off, size, _, err := f.scalarAt(name, i)
	if err != nil {
		return err
	}
	f.plat.PutInt(f.data[off:], size, v)
	return nil
}

// IntAt loads element i of an integer array field.
func (f *Frame) IntAt(name string, i int) (int64, error) {
	off, size, _, err := f.scalarAt(name, i)
	if err != nil {
		return 0, err
	}
	return f.plat.Int(f.data[off:], size), nil
}

// SetFloat64 stores a double field.
func (f *Frame) SetFloat64(name string, v float64) error {
	off, size, kind, err := f.scalarAt(name, 0)
	if err != nil {
		return err
	}
	if kind != platform.Float64 || size != 8 {
		return fmt.Errorf("migthread: %s is not a double", name)
	}
	f.plat.PutFloat64(f.data[off:], v)
	return nil
}

// Float64 loads a double field.
func (f *Frame) Float64(name string) (float64, error) {
	off, size, kind, err := f.scalarAt(name, 0)
	if err != nil {
		return 0, err
	}
	if kind != platform.Float64 || size != 8 {
		return 0, fmt.Errorf("migthread: %s is not a double", name)
	}
	return f.plat.Float64(f.data[off:]), nil
}

// RestoreFrame rebuilds a frame on destPlat from a captured image produced
// on the platform named srcPlatName: the receiver-makes-right path of
// thread migration. The source tag must match the tag the source layout
// implies — a mismatch means the two sides disagree about the frame type.
func RestoreFrame(typ tag.Struct, destPlat *platform.Platform, srcPlatName, srcTag string, srcBytes []byte) (*Frame, error) {
	srcPlat := platform.ByName(srcPlatName)
	if srcPlat == nil {
		return nil, fmt.Errorf("migthread: unknown source platform %q", srcPlatName)
	}
	srcLayout, err := tag.NewLayout(typ, srcPlat)
	if err != nil {
		return nil, err
	}
	if want := tag.FromLayout(srcLayout).String(); srcTag != want {
		return nil, fmt.Errorf("migthread: frame tag %q does not match expected %q", srcTag, want)
	}
	if len(srcBytes) != srcLayout.Size {
		return nil, fmt.Errorf("migthread: frame image %d bytes, want %d", len(srcBytes), srcLayout.Size)
	}
	dst, err := NewFrame(typ, destPlat)
	if err != nil {
		return nil, err
	}
	// Frames hold only values; pointers in frames are MThP business and
	// are annulled here (the paper re-derives them on the destination).
	out, _, err := convert.Value(dst.layout, srcBytes, srcLayout, convert.Options{Ptr: convert.PtrAnnul})
	if err != nil {
		return nil, err
	}
	dst.data = out
	return dst, nil
}
