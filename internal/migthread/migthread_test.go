package migthread

import (
	"strings"
	"sync"
	"testing"
	"time"

	"hetdsm/internal/dsd"
	"hetdsm/internal/platform"
	"hetdsm/internal/tag"
	"hetdsm/internal/transport"
	"hetdsm/internal/wire"
)

func testGThV() tag.Struct {
	return tag.Struct{
		Name: "GThV_t",
		Fields: []tag.Field{
			{Name: "sum", T: tag.Scalar{T: platform.CLongLong}},
			{Name: "flags", T: tag.IntArray(8)},
		},
	}
}

// sumWork adds the integers 1..Total in chunks of Chunk per step, keeping
// its loop state in the frame — the archetypal migratable thread.
type sumWork struct {
	Total int64
	Chunk int64
	hook  func(pc int64) // test instrumentation, called after each step
}

func (w *sumWork) FrameType() tag.Struct {
	return tag.Struct{Name: "frame", Fields: []tag.Field{
		{Name: "i", T: tag.Scalar{T: platform.CLongLong}},
		{Name: "acc", T: tag.Scalar{T: platform.CLongLong}},
	}}
}

func (w *sumWork) Init(ctx *Ctx) error {
	if err := ctx.Frame().SetInt("i", 1); err != nil {
		return err
	}
	return ctx.Frame().SetInt("acc", 0)
}

func (w *sumWork) Step(ctx *Ctx) (bool, error) {
	f := ctx.Frame()
	i, err := f.Int("i")
	if err != nil {
		return false, err
	}
	acc, err := f.Int("acc")
	if err != nil {
		return false, err
	}
	for k := int64(0); k < w.Chunk && i <= w.Total; k++ {
		acc += i
		i++
	}
	if err := f.SetInt("i", i); err != nil {
		return false, err
	}
	if err := f.SetInt("acc", acc); err != nil {
		return false, err
	}
	if w.hook != nil {
		w.hook(ctx.PC())
	}
	if i > w.Total {
		// Publish the result through the DSD under the lock.
		if err := ctx.T.Lock(0); err != nil {
			return false, err
		}
		if err := ctx.T.Globals().MustVar("sum").SetInt(0, acc); err != nil {
			return false, err
		}
		if err := ctx.T.Unlock(0); err != nil {
			return false, err
		}
		return true, nil
	}
	return false, nil
}

// rig builds a home (linux) plus two nodes over an in-process network.
func rig(t *testing.T) (nw *transport.Inproc, home *dsd.Home, n1, n2 *Node) {
	t.Helper()
	nw = transport.NewInproc()
	home, err := dsd.NewHome(testGThV(), platform.LinuxX86, 1, dsd.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	hl, err := nw.Listen("home")
	if err != nil {
		t.Fatal(err)
	}
	go home.Serve(hl)
	t.Cleanup(home.Close)

	n1 = NewNode("node1", platform.LinuxX86, nw, "home", testGThV(), dsd.DefaultOptions())
	n2 = NewNode("node2", platform.SolarisSPARC, nw, "home", testGThV(), dsd.DefaultOptions())
	if err := n1.ListenMigrations("node1-mig"); err != nil {
		t.Fatal(err)
	}
	if err := n2.ListenMigrations("node2-mig"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(n1.Close)
	t.Cleanup(n2.Close)
	return nw, home, n1, n2
}

func masterSum(t *testing.T, home *dsd.Home) int64 {
	t.Helper()
	v, err := home.Globals().MustVar("sum").Int(0)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func TestRunToCompletionWithoutMigration(t *testing.T) {
	_, home, n1, _ := rig(t)
	w := &sumWork{Total: 1000, Chunk: 64}
	if _, err := n1.StartThread(0, w, RoleLocal); err != nil {
		t.Fatal(err)
	}
	if err := n1.WaitAll(); err != nil {
		t.Fatal(err)
	}
	home.Wait()
	if got, want := masterSum(t, home), int64(1000*1001/2); got != want {
		t.Errorf("sum = %d, want %d", got, want)
	}
	role, err := n1.Role(0)
	if err != nil {
		t.Fatal(err)
	}
	if role != RoleDone {
		t.Errorf("role = %v, want done", role)
	}
}

func TestHeterogeneousMigrationMidComputation(t *testing.T) {
	_, home, n1, n2 := rig(t)

	var once sync.Once
	w := &sumWork{Total: 100000, Chunk: 1000}
	w.hook = func(pc int64) {
		if pc >= 5 {
			once.Do(func() {
				if err := n1.RequestMigration(7, n2.MigrationAddr()); err != nil {
					t.Errorf("request migration: %v", err)
				}
			})
		}
	}
	// The skeleton on node2 (SPARC) must use the SAME work definition
	// (iso-computing: same application started everywhere).
	if _, err := n2.StartSkeleton(7, &sumWork{Total: 100000, Chunk: 1000}); err != nil {
		t.Fatal(err)
	}
	if _, err := n1.StartThread(7, w, RoleLocal); err != nil {
		t.Fatal(err)
	}
	if err := n1.WaitAll(); err != nil {
		t.Fatal(err)
	}
	if err := n2.WaitAll(); err != nil {
		t.Fatal(err)
	}
	home.Wait()
	if got, want := masterSum(t, home), int64(100000)*100001/2; got != want {
		t.Errorf("sum after migration = %d, want %d", got, want)
	}
	// Role transitions per Figure 1: local -> stub; skeleton -> remote ->
	// done.
	r1, _ := n1.Role(7)
	if r1 != RoleStub {
		t.Errorf("source role = %v, want stub", r1)
	}
	r2, _ := n2.Role(7)
	if r2 != RoleDone {
		t.Errorf("destination role = %v, want done", r2)
	}
	recs := n1.Migrations()
	if len(recs) != 1 {
		t.Fatalf("migration records = %d, want 1", len(recs))
	}
	rec := recs[0]
	if rec.Rank != 7 || rec.From != "node1" || rec.To != n2.MigrationAddr() {
		t.Errorf("record = %+v", rec)
	}
	if rec.PC < 5 {
		t.Errorf("migrated at pc %d, expected >= 5", rec.PC)
	}
	if rec.FrameBytes != 16 {
		t.Errorf("frame bytes = %d, want 16 (two long longs)", rec.FrameBytes)
	}
}

func TestIsoComputingRefusesWrongSlot(t *testing.T) {
	_, home, n1, n2 := rig(t)
	// node2 has NO skeleton for rank 3: migration must be refused and the
	// thread must finish at node1.
	var once sync.Once
	w := &sumWork{Total: 5000, Chunk: 100}
	w.hook = func(pc int64) {
		once.Do(func() {
			if err := n1.RequestMigration(3, n2.MigrationAddr()); err != nil {
				t.Errorf("request: %v", err)
			}
		})
	}
	if _, err := n1.StartThread(3, w, RoleLocal); err != nil {
		t.Fatal(err)
	}
	if err := n1.WaitAll(); err != nil {
		t.Fatal(err)
	}
	home.Wait()
	if got, want := masterSum(t, home), int64(5000)*5001/2; got != want {
		t.Errorf("sum = %d, want %d", got, want)
	}
	if len(n1.Migrations()) != 0 {
		t.Error("refused migration must not be recorded")
	}
	role, _ := n1.Role(3)
	if role != RoleDone {
		t.Errorf("role = %v, want done (kept computing locally)", role)
	}
}

func TestDeliverStateValidation(t *testing.T) {
	_, _, n1, n2 := rig(t)
	f, err := NewFrame(tag.Struct{Name: "frame", Fields: []tag.Field{
		{Name: "i", T: tag.Scalar{T: platform.CLongLong}},
		{Name: "acc", T: tag.Scalar{T: platform.CLongLong}},
	}}, platform.LinuxX86)
	if err != nil {
		t.Fatal(err)
	}
	msg := func(rank int32) *wire.Message {
		return &wire.Message{
			Kind:     wire.KindMigrate,
			Rank:     rank,
			Platform: platform.LinuxX86.Name,
			State:    &wire.ThreadState{PC: 1, FrameTag: f.TagString(), Frame: f.Bytes()},
		}
	}
	// No slot at all: iso-computing refuses the delivery.
	if err := n2.deliverState(msg(9)); err == nil || !strings.Contains(err.Error(), "iso-computing") {
		t.Errorf("delivery to missing slot: %v", err)
	}
	// An active (non-skeleton) slot refuses too.
	if _, err := n1.StartThread(9, &sumWork{Total: 10, Chunk: 10}, RoleLocal); err != nil {
		t.Fatal(err)
	}
	if err := n1.WaitAll(); err != nil {
		t.Fatal(err)
	}
	if err := n1.deliverState(msg(9)); err == nil || !strings.Contains(err.Error(), "not a skeleton") {
		t.Errorf("delivery to done slot: %v, want 'not a skeleton'", err)
	}
}

func TestFrameAccessors(t *testing.T) {
	typ := tag.Struct{Name: "f", Fields: []tag.Field{
		{Name: "i", T: tag.Int()},
		{Name: "d", T: tag.Double()},
		{Name: "arr", T: tag.IntArray(4)},
	}}
	f, err := NewFrame(typ, platform.SolarisSPARC)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.SetInt("i", -42); err != nil {
		t.Fatal(err)
	}
	if v, _ := f.Int("i"); v != -42 {
		t.Errorf("i = %d", v)
	}
	if err := f.SetFloat64("d", 1.25); err != nil {
		t.Fatal(err)
	}
	if v, _ := f.Float64("d"); v != 1.25 {
		t.Errorf("d = %g", v)
	}
	for k := 0; k < 4; k++ {
		if err := f.SetIntAt("arr", k, int64(k*k)); err != nil {
			t.Fatal(err)
		}
	}
	if v, _ := f.IntAt("arr", 3); v != 9 {
		t.Errorf("arr[3] = %d", v)
	}
	// Errors.
	if err := f.SetInt("zzz", 1); err == nil {
		t.Error("unknown field must fail")
	}
	if err := f.SetIntAt("arr", 4, 1); err == nil {
		t.Error("out-of-range element must fail")
	}
	if err := f.SetFloat64("i", 1); err == nil {
		t.Error("SetFloat64 on int must fail")
	}
	if _, err := f.Int("d"); err == nil {
		// Int on a double reads its bits; the accessor does not forbid
		// it for integers of the right size, but d is a float64 kind.
		// Reading is allowed structurally — ensure no panic happened.
		_ = err
	}
	if err := f.SetIntAt("i", 1, 5); err == nil {
		t.Error("indexing a scalar must fail")
	}
}

func TestRestoreFrameHeterogeneous(t *testing.T) {
	typ := tag.Struct{Name: "f", Fields: []tag.Field{
		{Name: "i", T: tag.Scalar{T: platform.CLongLong}},
		{Name: "d", T: tag.Double()},
	}}
	src, err := NewFrame(typ, platform.SolarisSPARC)
	if err != nil {
		t.Fatal(err)
	}
	if err := src.SetInt("i", -777); err != nil {
		t.Fatal(err)
	}
	if err := src.SetFloat64("d", 2.5); err != nil {
		t.Fatal(err)
	}
	dst, err := RestoreFrame(typ, platform.LinuxX86, src.Platform().Name, src.TagString(), src.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := dst.Int("i"); v != -777 {
		t.Errorf("restored i = %d", v)
	}
	if v, _ := dst.Float64("d"); v != 2.5 {
		t.Errorf("restored d = %g", v)
	}
	// Tag mismatch must be rejected.
	if _, err := RestoreFrame(typ, platform.LinuxX86, src.Platform().Name, "(4,1)(0,0)", src.Bytes()); err == nil {
		t.Error("wrong tag accepted")
	}
	// Wrong length must be rejected.
	if _, err := RestoreFrame(typ, platform.LinuxX86, src.Platform().Name, src.TagString(), src.Bytes()[:4]); err == nil {
		t.Error("short image accepted")
	}
	// Unknown platform must be rejected.
	if _, err := RestoreFrame(typ, platform.LinuxX86, "vax", src.TagString(), src.Bytes()); err == nil {
		t.Error("unknown platform accepted")
	}
}

func TestRestoreAcrossWordSize(t *testing.T) {
	// A frame with C long migrating ILP32 -> LP64: the value must widen.
	typ := tag.Struct{Name: "f", Fields: []tag.Field{{Name: "n", T: tag.Long()}}}
	src, err := NewFrame(typ, platform.SolarisSPARC)
	if err != nil {
		t.Fatal(err)
	}
	if err := src.SetInt("n", -123456); err != nil {
		t.Fatal(err)
	}
	if src.Size() != 4 {
		t.Fatalf("ILP32 long frame = %d bytes", src.Size())
	}
	dst, err := RestoreFrame(typ, platform.LinuxX8664, src.Platform().Name, src.TagString(), src.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if dst.Size() != 8 {
		t.Errorf("LP64 long frame = %d bytes", dst.Size())
	}
	if v, _ := dst.Int("n"); v != -123456 {
		t.Errorf("widened n = %d", v)
	}
}

func TestDuplicateSlotRejected(t *testing.T) {
	_, _, n1, _ := rig(t)
	w := &sumWork{Total: 10, Chunk: 10}
	if _, err := n1.StartThread(1, w, RoleLocal); err != nil {
		t.Fatal(err)
	}
	if _, err := n1.StartSkeleton(1, w); err == nil {
		t.Error("duplicate slot must fail")
	}
	if err := n1.WaitAll(); err != nil {
		t.Fatal(err)
	}
}

func TestRequestMigrationErrors(t *testing.T) {
	_, _, n1, _ := rig(t)
	if err := n1.RequestMigration(99, "x"); err == nil {
		t.Error("unknown slot must fail")
	}
	if _, err := n1.Role(99); err == nil {
		t.Error("unknown slot role must fail")
	}
}

func TestMigrationToDeadAddressKeepsComputing(t *testing.T) {
	_, home, n1, _ := rig(t)
	var once sync.Once
	w := &sumWork{Total: 3000, Chunk: 100}
	w.hook = func(pc int64) {
		once.Do(func() {
			_ = n1.RequestMigration(2, "no-such-node")
		})
	}
	if _, err := n1.StartThread(2, w, RoleLocal); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- n1.WaitAll() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("thread hung after failed migration")
	}
	home.Wait()
	if got, want := masterSum(t, home), int64(3000)*3001/2; got != want {
		t.Errorf("sum = %d, want %d", got, want)
	}
}
