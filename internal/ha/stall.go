package ha

import (
	"fmt"
	"sync"
	"time"

	"hetdsm/internal/trace"
	"hetdsm/internal/vclock"
)

// SendProgress exposes send-side watermarks: how much has been handed to a
// peer's connection and how much the peer has demonstrably consumed.
// transport.SendQueue (frames enqueued / frames written) and ha.Replicator
// (records enqueued / records acked) both implement it.
type SendProgress interface {
	Progress() (enqueued, consumed uint64)
}

// StallDetector watches a peer's send-progress watermarks and declares the
// peer stalled when a backlog stops draining for the stall timeout. It is
// the complement of Detector: a Detector catches dead peers (no pongs), a
// StallDetector catches slow ones — the peer still answers heartbeats on a
// fresh connection while its established one has stopped consuming (a full
// socket buffer, a dead NAT entry, a wedged reader). Both verdicts need
// escalation, because a sender blocked on a stalled peer is as wedged as
// one blocked on a dead peer; the stall verdict is merely reversible.
type StallDetector struct {
	src      SendProgress
	addr     string
	interval time.Duration
	timeout  time.Duration

	// OnStall, when set, runs once per stall episode (re-armed when
	// progress resumes). Escalation hooks go here: aborting a wedged
	// replicator, or kicking a client connection onto the failover path.
	OnStall func(addr string, reason error)
	// View, when set, receives stalled/alive transitions.
	View *View
	// Counters, when set, receives stall counts.
	Counters *Counters
	// Trace, when non-nil, records stall events.
	Trace *trace.Log
	// Clock provides sample timing; nil means the system clock. Tests
	// drive stalls deterministically with a vclock.Virtual.
	Clock vclock.Clock

	stop     chan struct{}
	done     chan struct{}
	stopOnce sync.Once
}

// NewStallDetector builds a detector sampling src every interval and
// declaring addr stalled after timeout without consumption progress while
// a backlog exists. Start it with Start.
func NewStallDetector(src SendProgress, addr string, interval, timeout time.Duration) *StallDetector {
	if interval <= 0 {
		interval = 50 * time.Millisecond
	}
	if timeout <= interval {
		timeout = 4 * interval
	}
	return &StallDetector{
		src:      src,
		addr:     addr,
		interval: interval,
		timeout:  timeout,
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
}

// Start launches the sampling loop; unlike Detector it keeps running after
// a verdict (stalls are reversible) until Stop.
func (d *StallDetector) Start() { go d.run() }

// Stop terminates the sampling loop and waits for it.
func (d *StallDetector) Stop() {
	d.stopOnce.Do(func() { close(d.stop) })
	<-d.done
}

// Done is closed when the sampling loop has exited.
func (d *StallDetector) Done() <-chan struct{} { return d.done }

func (d *StallDetector) run() {
	defer close(d.done)
	clock := d.Clock
	if clock == nil {
		clock = vclock.System()
	}
	// lastMove is the last time the peer demonstrated consumption — the
	// consumed watermark advanced, or there was nothing owed to it.
	lastMove := clock.Now()
	var lastConsumed uint64
	stalled := false
	ticker := clock.Ticker(d.interval)
	defer ticker.Stop()
	for {
		select {
		case <-d.stop:
			return
		case <-ticker.Chan():
			enq, consumed := d.src.Progress()
			now := clock.Now()
			if consumed != lastConsumed || enq <= consumed {
				// Draining, or nothing outstanding: healthy.
				lastConsumed = consumed
				lastMove = now
				if stalled {
					stalled = false
					if d.View != nil {
						d.View.set(d.addr, StateAlive)
					}
				}
				continue
			}
			if !stalled && now.Sub(lastMove) > d.timeout {
				stalled = true
				d.declare(enq, consumed, now.Sub(lastMove))
			}
		}
	}
}

func (d *StallDetector) declare(enq, consumed uint64, idle time.Duration) {
	reason := fmt.Errorf("ha: %s stalled: %d sent, %d consumed, no progress in %v",
		d.addr, enq, consumed, idle)
	if d.Counters != nil {
		d.Counters.Stalls.Add(1)
	}
	d.Trace.Record("stall-detector", trace.KindSuspect, -1, -1, int(enq-consumed), d.addr)
	if d.View != nil {
		d.View.set(d.addr, StateStalled)
	}
	if d.OnStall != nil {
		d.OnStall(d.addr, reason)
	}
}
