package ha_test

import (
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"hetdsm/internal/ha"
	"hetdsm/internal/transport"
	"hetdsm/internal/vclock"
	"hetdsm/internal/wire"
)

// fakeProgress is a hand-cranked SendProgress source.
type fakeProgress struct{ enq, consumed atomic.Uint64 }

func (f *fakeProgress) Progress() (uint64, uint64) { return f.enq.Load(), f.consumed.Load() }

// advanceUntil cranks the virtual clock until cond holds, with a real-time
// hang guard.
func advanceUntil(t *testing.T, vc *vclock.Virtual, step time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("%s never happened", what)
		}
		vc.Advance(step)
		runtime.Gosched()
	}
}

// A frozen backlog is declared stalled; consumption resuming reverses the
// verdict; a second freeze is a second episode.
func TestStallDetectorDeclaresAndRecovers(t *testing.T) {
	src := &fakeProgress{}
	counters := &ha.Counters{}
	view := ha.NewView()
	vc := vclock.NewVirtual(time.Time{})

	var stallCalls atomic.Int64
	d := ha.NewStallDetector(src, "peer", 2*time.Millisecond, 10*time.Millisecond)
	d.Clock = vc
	d.Counters = counters
	d.View = view
	d.OnStall = func(addr string, reason error) {
		if addr != "peer" || reason == nil {
			t.Errorf("OnStall(%q, %v)", addr, reason)
		}
		stallCalls.Add(1)
	}
	d.Start()
	defer d.Stop()

	// Backlog of 5, nothing consumed: must be declared stalled.
	src.enq.Store(5)
	advanceUntil(t, vc, 2*time.Millisecond, "stall verdict", func() bool {
		return view.State("peer") == ha.StateStalled
	})
	if counters.Stalls.Load() != 1 || stallCalls.Load() != 1 {
		t.Fatalf("stalls=%d calls=%d, want 1/1", counters.Stalls.Load(), stallCalls.Load())
	}

	// The peer drains: the verdict reverses.
	src.consumed.Store(5)
	advanceUntil(t, vc, 2*time.Millisecond, "recovery", func() bool {
		return view.State("peer") == ha.StateAlive
	})

	// A fresh backlog freezes again: a second episode, re-armed OnStall.
	src.enq.Store(9)
	advanceUntil(t, vc, 2*time.Millisecond, "second stall verdict", func() bool {
		return counters.Stalls.Load() == 2
	})
	if stallCalls.Load() != 2 {
		t.Fatalf("OnStall fired %d times, want 2", stallCalls.Load())
	}
}

// A drained (or never-used) queue is healthy forever: no backlog, no stall,
// however much time passes.
func TestStallDetectorIgnoresIdlePeer(t *testing.T) {
	src := &fakeProgress{}
	counters := &ha.Counters{}
	vc := vclock.NewVirtual(time.Time{})
	d := ha.NewStallDetector(src, "peer", 2*time.Millisecond, 10*time.Millisecond)
	d.Clock = vc
	d.Counters = counters
	d.Start()
	defer d.Stop()

	for i := 0; i < 100; i++ {
		vc.Advance(2 * time.Millisecond)
		runtime.Gosched()
	}
	// Balanced watermarks must stay healthy too.
	src.enq.Store(7)
	src.consumed.Store(7)
	for i := 0; i < 100; i++ {
		vc.Advance(2 * time.Millisecond)
		runtime.Gosched()
	}
	if n := counters.Stalls.Load(); n != 0 {
		t.Fatalf("idle peer declared stalled %d times", n)
	}
}

// The escalation ladder end to end: a standby that accepts the connection
// but never acks wedges Flush behind the durability barrier; the stall
// detector sees the frozen replication watermarks and aborts the
// replicator, so the home degrades to unreplicated instead of hanging.
func TestStallEscalationAbortsWedgedReplicator(t *testing.T) {
	a, _ := transport.Pipe() // the far end never reads nor acks
	counters := &ha.Counters{}
	repl := ha.NewReplicator(a, counters)
	defer repl.Close()

	for i := 0; i < 3; i++ {
		repl.Record(&wire.Replication{Event: wire.RepLock, Rank: int32(i), Mutex: 0})
	}
	flushed := make(chan struct{})
	go func() { repl.Flush(); close(flushed) }()
	select {
	case <-flushed:
		t.Fatal("Flush returned with nothing acked")
	case <-time.After(20 * time.Millisecond):
	}

	vc := vclock.NewVirtual(time.Time{})
	d := ha.NewStallDetector(repl, "standby", 2*time.Millisecond, 10*time.Millisecond)
	d.Clock = vc
	d.Counters = counters
	d.OnStall = func(addr string, reason error) { repl.Abort(reason) }
	d.Start()
	defer d.Stop()

	deadline := time.Now().Add(5 * time.Second)
	for done := false; !done; {
		select {
		case <-flushed:
			done = true
		default:
			if time.Now().After(deadline) {
				t.Fatal("stall escalation never unblocked Flush")
			}
			vc.Advance(2 * time.Millisecond)
			runtime.Gosched()
		}
	}
	if repl.Err() == nil {
		t.Fatal("aborted replicator reports no error")
	}
	if counters.Stalls.Load() == 0 {
		t.Fatal("stall not counted")
	}
}
