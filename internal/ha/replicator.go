package ha

import (
	"sort"
	"sync"
	"time"

	"hetdsm/internal/telemetry"
	"hetdsm/internal/trace"
	"hetdsm/internal/transport"
	"hetdsm/internal/wire"
)

// Replicator streams home-state mutations to a standby over one connection
// and implements dsd.Replicator. Record only enqueues (it is called with
// the home mutex held); a sender goroutine ships KindReplicate frames and
// an ack reader advances the cumulative acknowledgement. Flush blocks until
// everything recorded so far is acknowledged — the synchronous-replication
// barrier the home's handlers call before releasing a client — or until
// replication has failed, in which case the home degrades to running
// unreplicated rather than stalling the computation.
type Replicator struct {
	conn     transport.Conn
	counters *Counters
	// Trace, when non-nil, records one event per shipped record.
	Trace *trace.Log
	// Spans, when non-nil, receives a replicate span (enqueue → acked)
	// for every record carrying trace context, parented to the home's
	// apply span; Node labels them (default "replicator").
	Spans *telemetry.SpanLog
	Node  string

	mu      sync.Mutex
	cond    *sync.Cond
	queue   []*wire.Replication
	next    uint64 // last sequence number stamped by Record
	acked   uint64 // highest cumulative ack from the standby
	pending map[uint64]pendingSpan
	failed  error
	closed  bool
}

// pendingSpan remembers a traced record's enqueue time until its ack.
type pendingSpan struct {
	rec *wire.Replication
	t0  time.Time
}

// NewReplicator starts replicating over an established connection to a
// Backup's replication listener. counters may be nil.
func NewReplicator(conn transport.Conn, counters *Counters) *Replicator {
	r := &Replicator{conn: conn, counters: counters}
	r.cond = sync.NewCond(&r.mu)
	go r.sender()
	go r.ackReader()
	return r
}

// Record implements dsd.Replicator: stamp the record's log position and
// enqueue it. Called with the home mutex held, so it must not block; the
// stamp order under r.mu matches the mutation order because every caller
// already serializes on the home mutex.
func (r *Replicator) Record(rec *wire.Replication) {
	r.mu.Lock()
	r.next++
	rec.Seq = r.next
	r.queue = append(r.queue, rec)
	if r.Spans != nil && rec.TraceID != 0 {
		if r.pending == nil {
			r.pending = make(map[uint64]pendingSpan)
		}
		r.pending[rec.Seq] = pendingSpan{rec: rec, t0: time.Now()}
	}
	r.cond.Broadcast()
	r.mu.Unlock()
	if r.counters != nil {
		r.counters.RepRecords.Add(1)
	}
}

// Flush implements dsd.Replicator: block until the standby has acknowledged
// every record enqueued so far, or replication has failed or been closed.
func (r *Replicator) Flush() {
	r.mu.Lock()
	target := r.next
	for r.acked < target && r.failed == nil && !r.closed {
		r.cond.Wait()
	}
	r.mu.Unlock()
}

// Err returns the error that stopped replication, or nil while healthy.
func (r *Replicator) Err() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.failed
}

// Acked returns the standby's cumulative acknowledgement.
func (r *Replicator) Acked() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.acked
}

// Progress returns the replication watermarks — records enqueued and
// records acknowledged by the standby — implementing the stall detector's
// SendProgress: an enqueued count advancing ahead of a frozen ack count is
// the signature of a stalled (not dead) standby.
func (r *Replicator) Progress() (enqueued, acked uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.next, r.acked
}

// Abort fails replication from the outside — the stall detector's
// escalation: Flush waiters unblock and the home degrades to running
// unreplicated, so a standby that is alive but not consuming cannot wedge
// every grant behind the durability barrier.
func (r *Replicator) Abort(err error) { r.fail(err) }

// Close stops replication and releases any Flush waiter.
func (r *Replicator) Close() error {
	r.mu.Lock()
	r.closed = true
	r.cond.Broadcast()
	r.mu.Unlock()
	return r.conn.Close()
}

func (r *Replicator) fail(err error) {
	r.mu.Lock()
	if r.failed == nil {
		r.failed = err
	}
	r.cond.Broadcast()
	r.mu.Unlock()
	r.conn.Close()
}

func (r *Replicator) sender() {
	for {
		r.mu.Lock()
		for len(r.queue) == 0 && r.failed == nil && !r.closed {
			r.cond.Wait()
		}
		if r.failed != nil || r.closed {
			r.mu.Unlock()
			return
		}
		rec := r.queue[0]
		r.queue = r.queue[1:]
		r.mu.Unlock()
		frame, err := wire.Encode(&wire.Message{
			Kind:  wire.KindReplicate,
			Seq:   rec.Seq,
			Rank:  rec.Rank,
			Mutex: rec.Mutex,
			Rep:   rec,
		})
		if err == nil {
			err = r.conn.SendFrame(frame)
		}
		if err != nil {
			r.fail(err)
			return
		}
		r.Trace.Record("replicator", trace.KindReplicate, rec.Rank, rec.Mutex, len(rec.Image)+wire.UpdateBytes(rec.Updates), "")
	}
}

func (r *Replicator) ackReader() {
	for {
		frame, err := r.conn.RecvFrame()
		if err != nil {
			r.fail(err)
			return
		}
		m, err := wire.Decode(frame)
		if err != nil || m.Kind != wire.KindReplicateAck || m.Rep == nil {
			r.fail(transport.ErrClosed)
			return
		}
		r.mu.Lock()
		if m.Rep.Seq > r.acked {
			r.acked = m.Rep.Seq
		}
		var done []pendingSpan
		for seq, p := range r.pending {
			if seq <= r.acked {
				done = append(done, p)
				delete(r.pending, seq)
			}
		}
		r.cond.Broadcast()
		r.mu.Unlock()
		if len(done) > 0 && r.Spans != nil {
			node := r.Node
			if node == "" {
				node = "replicator"
			}
			sort.Slice(done, func(i, j int) bool { return done[i].rec.Seq < done[j].rec.Seq })
			now := time.Now()
			for _, p := range done {
				r.Spans.RecordCtx(node, telemetry.StageReplicate, p.rec.Rank, 0,
					p.rec.TraceID, p.rec.ParentSpan, p.t0, now.Sub(p.t0), wire.UpdateBytes(p.rec.Updates))
			}
		}
		if r.counters != nil {
			r.counters.RepAcks.Add(1)
		}
	}
}
