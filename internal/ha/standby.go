package ha

import (
	"fmt"
	"sync"
	"time"

	"hetdsm/internal/dsd"
	"hetdsm/internal/platform"
	"hetdsm/internal/transport"
	"hetdsm/internal/vclock"
)

// StandbyConfig tunes a Standby.
type StandbyConfig struct {
	// PrimaryAddr is the primary home's serving address (probed).
	PrimaryAddr string
	// ReplicaAddr is where the standby listens for the replication
	// stream.
	ReplicaAddr string
	// ServeAddr is where the promoted home will serve; HA clients list it
	// after PrimaryAddr in their candidate addresses.
	ServeAddr string
	// Platform is the platform the promoted home runs on.
	Platform *platform.Platform
	// Opts configure the promoted home (StickyLocks is forced on).
	Opts dsd.Options
	// HeartbeatInterval is the probe period (default 10ms).
	HeartbeatInterval time.Duration
	// FailoverTimeout is the suspicion timeout (default 4 intervals).
	FailoverTimeout time.Duration
	// Clock, when set, drives the detector's probe timing (tests use a
	// vclock.Virtual); nil means the system clock.
	Clock vclock.Clock
}

// Standby ties the pieces into automatic failover: it serves the
// replication stream into a Backup, probes the primary with a Detector,
// and on suspicion promotes the Backup into a live Home serving on the
// pre-agreed address.
type Standby struct {
	Backup *Backup
	// Counters, when set, is shared observability (also handed to the
	// detector and backup).
	Counters *Counters

	nw  transport.Network
	cfg StandbyConfig
	det *Detector
	rl  transport.Listener

	mu       sync.Mutex
	home     *dsd.Home
	sl       transport.Listener
	err      error
	promoted chan struct{}
}

// NewStandby builds a standby around a Backup and starts its replication
// listener; the primary can attach a Replicator to ReplicaAddr as soon as
// this returns. Call Start to begin probing the primary.
func NewStandby(nw transport.Network, b *Backup, cfg StandbyConfig) (*Standby, error) {
	if cfg.PrimaryAddr == "" || cfg.ReplicaAddr == "" || cfg.ServeAddr == "" {
		return nil, fmt.Errorf("ha: standby needs primary, replica and serve addresses")
	}
	if cfg.Platform == nil {
		return nil, fmt.Errorf("ha: standby needs a platform")
	}
	if cfg.HeartbeatInterval <= 0 {
		cfg.HeartbeatInterval = 10 * time.Millisecond
	}
	if cfg.FailoverTimeout <= cfg.HeartbeatInterval {
		cfg.FailoverTimeout = 4 * cfg.HeartbeatInterval
	}
	rl, err := nw.Listen(cfg.ReplicaAddr)
	if err != nil {
		return nil, err
	}
	s := &Standby{
		Backup:   b,
		nw:       nw,
		cfg:      cfg,
		rl:       rl,
		promoted: make(chan struct{}),
	}
	go b.ServeReplication(rl)
	return s, nil
}

// Start begins probing the primary; on suspicion the backup promotes and
// serves. Counters and Trace set on the Standby/Backup before Start are
// honored.
func (s *Standby) Start() {
	s.det = NewDetector(s.nw, s.cfg.PrimaryAddr, s.cfg.HeartbeatInterval, s.cfg.FailoverTimeout)
	s.det.Clock = s.cfg.Clock
	s.det.Counters = s.Counters
	s.det.Trace = s.Backup.Trace
	s.det.OnSuspect = func(addr string, reason error) { s.failover() }
	s.det.Start()
}

func (s *Standby) failover() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.home != nil || s.err != nil {
		return
	}
	s.Backup.Counters = s.Counters
	home, err := s.Backup.Promote(s.cfg.Platform, s.cfg.Opts)
	if err != nil {
		s.err = err
		close(s.promoted)
		return
	}
	l, err := s.nw.Listen(s.cfg.ServeAddr)
	if err != nil {
		s.err = err
		close(s.promoted)
		return
	}
	s.home = home
	s.sl = l
	go home.Serve(l)
	close(s.promoted)
}

// Promoted is closed once failover has run (successfully or not).
func (s *Standby) Promoted() <-chan struct{} { return s.promoted }

// Home returns the promoted home and any failover error; both are nil/zero
// before Promoted fires.
func (s *Standby) Home() (*dsd.Home, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.home, s.err
}

// Stop halts probing and closes the standby's listeners. A home already
// promoted keeps serving; close it separately.
func (s *Standby) Stop() {
	if s.det != nil {
		s.det.Stop()
	}
	s.rl.Close()
}
