package ha

import (
	"fmt"
	"sync"
	"time"

	"hetdsm/internal/trace"
	"hetdsm/internal/transport"
	"hetdsm/internal/vclock"
	"hetdsm/internal/wire"
)

// NodeState is a monitored node's health as the failure detector sees it.
type NodeState int

const (
	// StateUnknown means the node has never answered a probe.
	StateUnknown NodeState = iota
	// StateAlive means the node answered a probe recently.
	StateAlive
	// StateSuspect means the node missed the suspicion timeout. The
	// detector cannot distinguish a crashed node from a slow or
	// partitioned one; suspicion is a local verdict, not ground truth.
	StateSuspect
	// StateStalled means the node still answers probes (it is not dead)
	// but has stopped consuming what we send it: the send-progress
	// watermarks show a backlog with no drain for the stall timeout. A
	// stalled peer needs the same escalation as a dead one — waiting on it
	// wedges the sender — but the verdict is reversible: progress resuming
	// returns it to alive.
	StateStalled
)

// String returns "unknown", "alive", "suspect" or "stalled".
func (s NodeState) String() string {
	switch s {
	case StateAlive:
		return "alive"
	case StateSuspect:
		return "suspect"
	case StateStalled:
		return "stalled"
	}
	return "unknown"
}

// View is a membership view: the health of every monitored address, with
// change callbacks. Detectors feed it; failover logic watches it.
type View struct {
	mu       sync.Mutex
	nodes    map[string]NodeState
	watchers []func(addr string, s NodeState)
}

// NewView returns an empty membership view.
func NewView() *View {
	return &View{nodes: make(map[string]NodeState)}
}

// Watch registers a callback invoked on every state transition. Callbacks
// run synchronously on the detector goroutine and must not block.
func (v *View) Watch(fn func(addr string, s NodeState)) {
	v.mu.Lock()
	v.watchers = append(v.watchers, fn)
	v.mu.Unlock()
}

// State returns the recorded state of addr.
func (v *View) State(addr string) NodeState {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.nodes[addr]
}

// set records a transition and notifies watchers; no-op if unchanged.
func (v *View) set(addr string, s NodeState) {
	v.mu.Lock()
	if v.nodes[addr] == s {
		v.mu.Unlock()
		return
	}
	v.nodes[addr] = s
	var watchers []func(string, NodeState)
	watchers = append(watchers, v.watchers...)
	v.mu.Unlock()
	for _, fn := range watchers {
		fn(addr, s)
	}
}

// Detector probes one address with KindPing heartbeats and declares it
// suspect when no pong arrives within the suspicion timeout. It probes the
// node's real serving path — a home answers pings from the same accept loop
// that serves DSD traffic — so a wedged listener is as suspect as a dead
// process.
type Detector struct {
	nw       transport.Network
	addr     string
	interval time.Duration
	timeout  time.Duration

	// OnSuspect, when set, runs once when the address is declared
	// suspect; the detector stops afterwards.
	OnSuspect func(addr string, reason error)
	// View, when set, receives alive/suspect transitions.
	View *View
	// Counters, when set, receives heartbeat/suspicion counts.
	Counters *Counters
	// Trace, when non-nil, records suspect events.
	Trace *trace.Log
	// Clock provides probe timing; nil means the system clock. Tests
	// drive suspicion deterministically with a vclock.Virtual instead of
	// sleeping past real timeouts.
	Clock vclock.Clock

	stop     chan struct{}
	done     chan struct{}
	stopOnce sync.Once
}

// NewDetector builds a detector probing addr every interval, suspecting
// after timeout without a pong. Start it with Start.
func NewDetector(nw transport.Network, addr string, interval, timeout time.Duration) *Detector {
	if interval <= 0 {
		interval = 50 * time.Millisecond
	}
	if timeout <= interval {
		timeout = 4 * interval
	}
	return &Detector{
		nw:       nw,
		addr:     addr,
		interval: interval,
		timeout:  timeout,
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
}

// Start launches the probe loop; it runs until Stop or until the address is
// declared suspect.
func (d *Detector) Start() { go d.run() }

// Stop terminates the probe loop without a verdict and waits for it.
func (d *Detector) Stop() {
	d.stopOnce.Do(func() { close(d.stop) })
	<-d.done
}

// Done is closed when the probe loop has exited (suspicion or Stop).
func (d *Detector) Done() <-chan struct{} { return d.done }

func (d *Detector) run() {
	defer close(d.done)
	clock := d.Clock
	if clock == nil {
		clock = vclock.System()
	}
	lastOK := clock.Now()
	var conn transport.Conn
	var pongs chan uint64
	var seq uint64
	ticker := clock.Ticker(d.interval)
	defer ticker.Stop()
	defer func() {
		if conn != nil {
			conn.Close()
		}
	}()
	for {
		select {
		case <-d.stop:
			return
		case _, ok := <-pongs:
			if !ok {
				// Reader died with its connection; redial on next tick.
				conn.Close()
				conn, pongs = nil, nil
				continue
			}
			lastOK = clock.Now()
			if d.Counters != nil {
				d.Counters.Pongs.Add(1)
			}
			if d.View != nil {
				d.View.set(d.addr, StateAlive)
			}
		case <-ticker.Chan():
			if clock.Now().Sub(lastOK) > d.timeout {
				d.suspect(fmt.Errorf("ha: no pong from %s in %v", d.addr, d.timeout))
				return
			}
			if conn == nil {
				c, err := d.nw.Dial(d.addr)
				if err != nil {
					continue // counts toward the timeout via lastOK
				}
				conn = c
				pongs = make(chan uint64, 16)
				go readPongs(c, pongs)
			}
			seq++
			frame, err := wire.Encode(&wire.Message{Kind: wire.KindPing, Seq: seq, Rank: -1, Mutex: -1})
			if err != nil {
				continue
			}
			if err := conn.SendFrame(frame); err != nil {
				conn.Close()
				conn, pongs = nil, nil
			} else if d.Counters != nil {
				d.Counters.HeartbeatsSent.Add(1)
			}
		}
	}
}

func (d *Detector) suspect(reason error) {
	if d.Counters != nil {
		d.Counters.Suspicions.Add(1)
	}
	d.Trace.Record("detector", trace.KindSuspect, -1, -1, 0, d.addr)
	if d.View != nil {
		d.View.set(d.addr, StateSuspect)
	}
	if d.OnSuspect != nil {
		d.OnSuspect(d.addr, reason)
	}
}

// readPongs forwards pong sequence numbers until the connection dies, then
// closes the channel.
func readPongs(c transport.Conn, out chan<- uint64) {
	defer close(out)
	for {
		frame, err := c.RecvFrame()
		if err != nil {
			return
		}
		m, err := wire.Decode(frame)
		if err != nil || m.Kind != wire.KindPong {
			return
		}
		select {
		case out <- m.Seq:
		default: // probe loop is behind; dropping a pong is fine
		}
	}
}
