package ha_test

import (
	"testing"

	"hetdsm/internal/dsd"
	"hetdsm/internal/ha"
	"hetdsm/internal/platform"
	"hetdsm/internal/wire"
)

// TestBackupRearmsAfterPromotion covers the promote-once bug: a standby
// used to be spent after its first promotion, leaving the cluster
// unprotected. A fresh RepInit from the new incarnation must re-arm the
// mirror so the backup can absorb the new stream and promote again.
func TestBackupRearmsAfterPromotion(t *testing.T) {
	gthv := testGThV()
	b := ha.NewBackup(gthv)

	if err := b.Apply(initRecord(t, gthv, platform.LinuxX86, 1)); err != nil {
		t.Fatal(err)
	}
	if err := b.Apply(&wire.Replication{Seq: 2, Event: wire.RepLock, Mutex: 0, Rank: 1}); err != nil {
		t.Fatal(err)
	}
	h1, err := b.Promote(platform.SolarisSPARC, dsd.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer h1.Close()
	if h1.Epoch() == 0 {
		t.Fatal("promoted home did not bump the fencing epoch")
	}

	// The spent backup refuses ordinary records and a second promotion —
	// its mirror stopped being a shadow the moment it became the master.
	if err := b.Apply(&wire.Replication{Seq: 3, Event: wire.RepLock, Mutex: 1, Rank: 0}); err == nil {
		t.Fatal("promoted backup accepted a stream record")
	}
	if _, err := b.Promote(platform.SolarisSPARC, dsd.DefaultOptions()); err == nil {
		t.Fatal("backup promoted twice off one stream")
	}

	// The new incarnation attaches a fresh stream. Its bootstrap record
	// re-arms the mirror.
	rearm := initRecord(t, gthv, platform.SolarisSPARC, 1)
	rearm.Epoch = h1.Epoch()
	if err := b.Apply(rearm); err != nil {
		t.Fatalf("fresh RepInit did not re-arm the backup: %v", err)
	}
	if !b.Ready() {
		t.Fatal("re-armed backup not ready")
	}
	if err := b.Apply(&wire.Replication{Seq: 2, Event: wire.RepUnlock, Mutex: 0, Rank: 1, Epoch: h1.Epoch()}); err != nil {
		t.Fatalf("re-armed backup rejected the new stream: %v", err)
	}

	// Second failover: promotion works again and the epoch keeps rising.
	h2, err := b.Promote(platform.SolarisSPARC64, dsd.DefaultOptions())
	if err != nil {
		t.Fatalf("second promotion failed: %v", err)
	}
	defer h2.Close()
	if h2.Epoch() <= h1.Epoch() {
		t.Fatalf("second promotion epoch %d, want above the first's %d", h2.Epoch(), h1.Epoch())
	}
}

// TestBackupRejectsStaleEpochRecords pins the fencing rule on the
// replication stream: once the mirror has seen epoch E, records from any
// earlier incarnation — including a whole stale bootstrap — are refused.
func TestBackupRejectsStaleEpochRecords(t *testing.T) {
	gthv := testGThV()
	b := ha.NewBackup(gthv)

	current := initRecord(t, gthv, platform.LinuxX86, 1)
	current.Epoch = 3
	if err := b.Apply(current); err != nil {
		t.Fatal(err)
	}
	if b.Epoch() != 3 {
		t.Fatalf("backup epoch = %d, want 3", b.Epoch())
	}

	if err := b.Apply(&wire.Replication{Seq: 2, Event: wire.RepLock, Mutex: 0, Rank: 1, Epoch: 2}); err == nil {
		t.Fatal("record from a stale epoch accepted")
	}
	stale := initRecord(t, gthv, platform.LinuxX86, 9)
	stale.Epoch = 1
	if err := b.Apply(stale); err == nil {
		t.Fatal("bootstrap from a stale epoch re-armed the backup")
	}
	// Epoch-unstamped records (a pre-fencing home) still flow.
	if err := b.Apply(&wire.Replication{Seq: 2, Event: wire.RepLock, Mutex: 0, Rank: 1}); err != nil {
		t.Fatalf("unstamped record rejected: %v", err)
	}
	if b.LastSeq() != 2 {
		t.Fatalf("LastSeq = %d, want 2", b.LastSeq())
	}
}
