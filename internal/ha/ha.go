// Package ha adds fault tolerance to the DSD layer: heartbeat failure
// detection, hot-standby replication of the home node's state machine, and
// automatic failover.
//
// The paper's home node is a single point of failure — every mutex, every
// barrier and the master GThV copy live there. This package keeps a warm
// standby at most one release operation behind the primary:
//
//   - A Detector sends KindPing probes on the home's own serving path and
//     declares the home suspect when no pong arrives within a timeout,
//     publishing the transition through a View.
//   - A Replicator streams every home-state mutation (applied updates, lock
//     transitions, barrier generations, joins) to a Backup as KindReplicate
//     records; the home's handlers block on the acknowledgement before they
//     release a client, so anything a client has observed is durable at the
//     standby.
//   - On suspicion, a Standby promotes its Backup into a full Home through
//     the existing handoff path and serves on a pre-agreed address; clients
//     created with dsd.DialHA reconnect with capped exponential backoff and
//     re-send their in-flight request under its original sequence number,
//     which the idempotency watermarks apply at most once.
//
// The package detects failure; it does not arbitrate it. If the primary is
// alive but unreachable (a partition between standby and primary), the
// standby still promotes, and clients that can still reach the primary keep
// using it. Fencing such a split brain needs an external arbiter and is out
// of scope.
package ha

import (
	"sync/atomic"

	"hetdsm/internal/telemetry"
)

// Counters aggregates the package's observability counters; all fields are
// safe for concurrent use and a nil *Counters is a valid sink that records
// nothing.
type Counters struct {
	// HeartbeatsSent counts KindPing probes transmitted.
	HeartbeatsSent atomic.Uint64
	// Pongs counts heartbeat answers received.
	Pongs atomic.Uint64
	// Suspicions counts nodes declared suspect.
	Suspicions atomic.Uint64
	// Stalls counts stall verdicts: peers alive but not consuming
	// (send-progress frozen behind a backlog past the stall timeout).
	Stalls atomic.Uint64
	// Failovers counts standby promotions.
	Failovers atomic.Uint64
	// Reconnects counts client connections re-established after a failure
	// (fed by the caller from dsd.Thread.Reconnects at shutdown).
	Reconnects atomic.Uint64
	// RepRecords counts replication records streamed to the standby.
	RepRecords atomic.Uint64
	// RepAcks counts replication acknowledgements received.
	RepAcks atomic.Uint64
}

// Map returns the counters as plain data for JSON dumping (-stats-json).
// Safe on a nil receiver.
func (c *Counters) Map() map[string]uint64 {
	if c == nil {
		return map[string]uint64{}
	}
	return map[string]uint64{
		"heartbeats_sent": c.HeartbeatsSent.Load(),
		"pongs":           c.Pongs.Load(),
		"suspicions":      c.Suspicions.Load(),
		"stalls":          c.Stalls.Load(),
		"failovers":       c.Failovers.Load(),
		"reconnects":      c.Reconnects.Load(),
		"rep_records":     c.RepRecords.Load(),
		"rep_acks":        c.RepAcks.Load(),
	}
}

// ReplicationLag returns how many replication records have been streamed
// to the standby but not yet acknowledged — 0 means the standby is fully
// caught up. Safe on a nil receiver.
func (c *Counters) ReplicationLag() uint64 {
	if c == nil {
		return 0
	}
	recs, acks := c.RepRecords.Load(), c.RepAcks.Load()
	if acks > recs {
		// Ack counting races record counting by a hair; never go negative.
		return 0
	}
	return recs - acks
}

// Register publishes the counters — and the derived replication lag — on
// a telemetry registry as live gauges, so a node's /metrics endpoint
// exposes its HA health (suspicions, failovers, replication lag,
// reconnects) alongside the DSD histograms. Safe when either receiver or
// registry is nil.
func (c *Counters) Register(r *telemetry.Registry) {
	if c == nil || r == nil {
		return
	}
	gauge := func(name, help string, load func() uint64) {
		r.GaugeFunc(name, help, func() float64 { return float64(load()) })
	}
	gauge("dsm_ha_heartbeats_sent", "KindPing probes transmitted", c.HeartbeatsSent.Load)
	gauge("dsm_ha_pongs", "heartbeat answers received", c.Pongs.Load)
	gauge("dsm_ha_suspicions", "nodes declared suspect", c.Suspicions.Load)
	gauge("dsm_ha_stalls", "peers declared stalled (alive but not consuming)", c.Stalls.Load)
	gauge("dsm_ha_failovers", "standby promotions", c.Failovers.Load)
	gauge("dsm_ha_reconnects", "client connections re-established after a failure", c.Reconnects.Load)
	gauge("dsm_ha_rep_records", "replication records streamed to the standby", c.RepRecords.Load)
	gauge("dsm_ha_rep_acks", "replication acknowledgements received", c.RepAcks.Load)
	gauge("dsm_ha_replication_lag_records", "records streamed but not yet acknowledged by the standby", c.ReplicationLag)
}
