package ha

import (
	"fmt"
	"sync"

	"hetdsm/internal/dsd"
	"hetdsm/internal/indextable"
	"hetdsm/internal/platform"
	"hetdsm/internal/tag"
	"hetdsm/internal/trace"
	"hetdsm/internal/transport"
	"hetdsm/internal/wire"
)

// Backup is a hot standby for a DSD home: it consumes the replication
// stream and mirrors the home's durable state — the master image
// byte-for-byte in the primary's own layout (no conversion on the hot
// path), held locks, the joined set, and the idempotency and barrier
// watermarks. Because the primary's handlers block on replication before
// releasing any client, the mirror is never more than one release
// operation behind what any client has observed.
type Backup struct {
	gthv tag.Struct
	// Counters, when set, is shared observability.
	Counters *Counters
	// Trace, when non-nil, records promote events.
	Trace *trace.Log

	mu       sync.Mutex
	haveInit bool
	srcPlat  *platform.Platform
	srcBase  uint64
	srcTable *indextable.Table
	image    []byte
	tagStr   string
	dirty    bool
	proto    uint8
	nthreads int
	held     map[int32]int32
	joined   map[int32]bool
	applied  map[int32]uint64
	released map[int32]uint64
	lastSeq  uint64
	promoted bool
	// epoch is the highest fencing epoch seen on the stream; records
	// stamped with a lower epoch come from a fenced-off primary and are
	// rejected.
	epoch uint64
}

// NewBackup builds a standby for the given GThV type. Everything else —
// the primary's platform, thread count, image — arrives with the RepInit
// record.
func NewBackup(gthv tag.Struct) *Backup {
	return &Backup{
		gthv:     gthv,
		held:     make(map[int32]int32),
		joined:   make(map[int32]bool),
		applied:  make(map[int32]uint64),
		released: make(map[int32]uint64),
	}
}

// ServeReplication accepts replication connections on l and applies their
// records until the listener closes. It also answers KindPing, so a
// detector can probe the standby itself.
func (b *Backup) ServeReplication(l transport.Listener) {
	for {
		c, err := l.Accept()
		if err != nil {
			return
		}
		go b.serveConn(c)
	}
}

func (b *Backup) serveConn(c transport.Conn) {
	defer c.Close()
	for {
		frame, err := c.RecvFrame()
		if err != nil {
			return
		}
		m, err := wire.Decode(frame)
		if err != nil {
			return
		}
		switch m.Kind {
		case wire.KindPing:
			out, err := wire.Encode(&wire.Message{Kind: wire.KindPong, Seq: m.Seq, Rank: m.Rank})
			if err != nil || c.SendFrame(out) != nil {
				return
			}
		case wire.KindReplicate:
			if m.Rep == nil {
				return
			}
			if err := b.Apply(m.Rep); err != nil {
				return
			}
			out, err := wire.Encode(&wire.Message{
				Kind: wire.KindReplicateAck,
				Seq:  m.Seq,
				Rep:  &wire.Replication{Seq: m.Rep.Seq},
			})
			if err != nil || c.SendFrame(out) != nil {
				return
			}
		default:
			return
		}
	}
}

// Apply folds one replication record into the mirror. A fresh RepInit
// re-arms a promoted backup: the promoted (or WAL-restarted) home attaches
// a new replication stream whose bootstrap record resets the mirror, so
// protection continues instead of ending at the first failover.
func (b *Backup) Apply(rec *wire.Replication) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if rec.Epoch != 0 && rec.Epoch < b.epoch {
		return fmt.Errorf("ha: replication record from stale epoch %d, stream is at %d", rec.Epoch, b.epoch)
	}
	if rec.Event != wire.RepInit {
		if b.promoted {
			return fmt.Errorf("ha: backup already promoted")
		}
		if rec.Seq != 0 && rec.Seq <= b.lastSeq {
			return nil // duplicate delivery
		}
	}
	if rec.Epoch > b.epoch {
		b.epoch = rec.Epoch
	}
	switch rec.Event {
	case wire.RepInit:
		p := platform.ByName(rec.Platform)
		if p == nil {
			return fmt.Errorf("ha: replication from unknown platform %q", rec.Platform)
		}
		layout, err := tag.NewLayout(b.gthv, p)
		if err != nil {
			return err
		}
		if want := tag.FromLayout(layout).String(); rec.Tag != want {
			return fmt.Errorf("ha: replication tag %q does not match GThV (%q)", rec.Tag, want)
		}
		if len(rec.Image) != layout.Size {
			return fmt.Errorf("ha: replicated image %d bytes, want %d", len(rec.Image), layout.Size)
		}
		table, err := indextable.Build(layout, rec.Base)
		if err != nil {
			return err
		}
		b.srcPlat = p
		b.srcBase = rec.Base
		b.srcTable = table
		b.image = append([]byte(nil), rec.Image...)
		b.tagStr = rec.Tag
		b.dirty = rec.Dirty
		b.proto = rec.Proto
		b.nthreads = int(rec.Nthreads)
		b.held = make(map[int32]int32, len(rec.Held))
		for _, p := range rec.Held {
			b.held[int32(p.Seq)] = p.Rank
		}
		b.joined = make(map[int32]bool, len(rec.Joined))
		for _, rank := range rec.Joined {
			b.joined[rank] = true
		}
		b.applied = make(map[int32]uint64, len(rec.Applied))
		for _, p := range rec.Applied {
			b.applied[p.Rank] = p.Seq
		}
		b.released = make(map[int32]uint64, len(rec.Released))
		for _, p := range rec.Released {
			b.released[p.Rank] = p.Seq
		}
		b.haveInit = true
		b.promoted = false
		b.lastSeq = rec.Seq
	case wire.RepUpdate:
		if !b.haveInit {
			return fmt.Errorf("ha: update record before init")
		}
		for i := range rec.Updates {
			u := &rec.Updates[i]
			if int(u.Entry) >= b.srcTable.Len() || u.First < 0 || u.Count <= 0 {
				return fmt.Errorf("ha: replicated span %d/%d/%d invalid", u.Entry, u.First, u.Count)
			}
			span := indextable.Span{Entry: int(u.Entry), First: int(u.First), Count: int(u.Count)}
			e := b.srcTable.Entry(span.Entry)
			if span.First+span.Count > e.Count {
				return fmt.Errorf("ha: replicated span %s[%d..%d) exceeds %d elements",
					e.Name, span.First, span.First+span.Count, e.Count)
			}
			if len(u.Data) != b.srcTable.SpanBytes(span) {
				return fmt.Errorf("ha: replicated span %s has %d bytes, want %d",
					e.Name, len(u.Data), b.srcTable.SpanBytes(span))
			}
			copy(b.image[b.srcTable.SpanOffset(span):], u.Data)
		}
		b.dirty = true
		b.advanceLocked(rec.Applied, b.applied)
	case wire.RepLock:
		b.held[rec.Mutex] = rec.Rank
	case wire.RepUnlock:
		delete(b.held, rec.Mutex)
	case wire.RepBarrier:
		b.advanceLocked(rec.Released, b.released)
	case wire.RepJoin:
		b.joined[rec.Rank] = true
	case wire.RepEpoch:
		// Epoch advance only; the adoption above is the whole effect.
	default:
		return fmt.Errorf("ha: unknown replication event %d", rec.Event)
	}
	if rec.Seq > b.lastSeq {
		b.lastSeq = rec.Seq
	}
	return nil
}

// advanceLocked folds watermark pairs into a map, never regressing.
func (b *Backup) advanceLocked(pairs []wire.RepPair, into map[int32]uint64) {
	for _, p := range pairs {
		if p.Seq > into[p.Rank] {
			into[p.Rank] = p.Seq
		}
	}
}

// Ready reports whether the bootstrap record has arrived.
func (b *Backup) Ready() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.haveInit
}

// LastSeq returns the highest replication sequence applied.
func (b *Backup) LastSeq() uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.lastSeq
}

// Epoch returns the highest fencing epoch seen on the stream.
func (b *Backup) Epoch() uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.epoch
}

// InitRecord synthesizes a RepInit record describing the mirror's current
// state, exactly as a home snapshotting itself would emit. The WAL uses it
// for snapshot compaction: the folded mirror replaces the record tail.
func (b *Backup) InitRecord() (*wire.Replication, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if !b.haveInit {
		return nil, fmt.Errorf("ha: backup has no state to snapshot")
	}
	rec := &wire.Replication{
		Event:    wire.RepInit,
		Rank:     -1,
		Mutex:    -1,
		Seq:      b.lastSeq,
		Epoch:    b.epoch,
		Platform: b.srcPlat.Name,
		Base:     b.srcBase,
		Image:    append([]byte(nil), b.image...),
		Tag:      b.tagStr,
		Dirty:    b.dirty,
		Proto:    b.proto,
		Nthreads: int32(b.nthreads),
	}
	for idx, rank := range b.held {
		rec.Held = append(rec.Held, wire.RepPair{Rank: rank, Seq: uint64(idx)})
	}
	for rank := range b.joined {
		rec.Joined = append(rec.Joined, rank)
	}
	for rank, seq := range b.applied {
		rec.Applied = append(rec.Applied, wire.RepPair{Rank: rank, Seq: seq})
	}
	for rank, seq := range b.released {
		rec.Released = append(rec.Released, wire.RepPair{Rank: rank, Seq: seq})
	}
	return rec, nil
}

// Promote turns the mirror into a live Home on platform p by replaying it
// through the planned-handoff path. The handoff carries no per-rank
// pending queues and no known set, so every rank's reconnect handshake
// reseeds its replica with the full state — the price of a crash cut is
// one full-image transfer per thread, in exchange for never losing an
// update. Held locks and both watermark families carry over, so replayed
// unlocks, barriers and grants stay idempotent, and StickyLocks is forced
// on: reconnecting holders must keep their mutexes.
//
// The promoted home runs under a bumped fencing epoch — opts.Epoch when
// set (WAL recovery supplies its persisted epoch), one past the stream's
// highest otherwise — so the old primary's frames are rejected everywhere
// should it come back. After promoting, the replication stream is refused
// until a fresh RepInit re-arms the mirror (the new home attaching its own
// stream), at which point the backup can promote again.
func (b *Backup) Promote(p *platform.Platform, opts dsd.Options) (*dsd.Home, error) {
	b.mu.Lock()
	if !b.haveInit {
		b.mu.Unlock()
		return nil, fmt.Errorf("ha: backup never received the bootstrap record")
	}
	if b.promoted {
		b.mu.Unlock()
		return nil, fmt.Errorf("ha: backup already promoted")
	}
	b.promoted = true
	if opts.Epoch == 0 {
		opts.Epoch = b.epoch + 1
	}
	state := &dsd.Handoff{
		Platform: b.srcPlat.Name,
		Base:     b.srcBase,
		Image:    append([]byte(nil), b.image...),
		Tag:      b.tagStr,
		Dirty:    b.dirty,
		Held:     make(map[int32]int32, len(b.held)),
		Applied:  make(map[int32]uint64, len(b.applied)),
		Released: make(map[int32]uint64, len(b.released)),
	}
	for idx, rank := range b.held {
		state.Held[idx] = rank
	}
	for rank, seq := range b.applied {
		state.Applied[rank] = seq
	}
	for rank, seq := range b.released {
		state.Released[rank] = seq
	}
	for rank := range b.joined {
		state.Joined = append(state.Joined, rank)
	}
	nthreads := b.nthreads
	proto := b.proto
	b.mu.Unlock()

	opts.StickyLocks = true
	opts.Protocol = dsd.Protocol(proto)
	h, err := dsd.NewHomeFromHandoff(b.gthv, p, nthreads, opts, state)
	if err != nil {
		return nil, err
	}
	if b.Counters != nil {
		b.Counters.Failovers.Add(1)
	}
	b.Trace.Record("backup@"+p.Name, trace.KindPromote, -1, -1, len(state.Image), "")
	return h, nil
}
