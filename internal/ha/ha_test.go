package ha_test

import (
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"hetdsm/internal/dsd"
	"hetdsm/internal/ha"
	"hetdsm/internal/platform"
	"hetdsm/internal/tag"
	"hetdsm/internal/transport"
	"hetdsm/internal/vclock"
	"hetdsm/internal/wire"
)

// testGThV mirrors the small shared structure the dsd tests use.
func testGThV() tag.Struct {
	return tag.Struct{
		Name: "GThV_t",
		Fields: []tag.Field{
			{Name: "GThP", T: tag.Pointer{}},
			{Name: "A", T: tag.IntArray(64)},
			{Name: "sum", T: tag.Int()},
			{Name: "d", T: tag.DoubleArray(8)},
		},
	}
}

// waitFor polls cond until it holds or the deadline passes. Yielding
// instead of sleeping keeps the poll loop deterministic under -race and on
// loaded single-core CI runners.
func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		runtime.Gosched()
	}
}

func TestDetectorSuspectsUnreachableAddress(t *testing.T) {
	nw := transport.NewInproc()
	counters := &ha.Counters{}
	view := ha.NewView()

	var transitions atomic.Int64
	view.Watch(func(addr string, s ha.NodeState) {
		if addr == "ghost" && s == ha.StateSuspect {
			transitions.Add(1)
		}
	})

	var suspected atomic.Bool
	d := ha.NewDetector(nw, "ghost", 2*time.Millisecond, 10*time.Millisecond)
	// Drive probe timing on a virtual clock: the suspicion timeout
	// elapses because the test advances time, not because it sleeps.
	vc := vclock.NewVirtual(time.Time{})
	d.Clock = vc
	d.Counters = counters
	d.View = view
	d.OnSuspect = func(addr string, reason error) {
		if addr != "ghost" || reason == nil {
			t.Errorf("OnSuspect(%q, %v)", addr, reason)
		}
		suspected.Store(true)
	}
	d.Start()

	deadline := time.Now().Add(5 * time.Second)
	for verdict := false; !verdict; {
		select {
		case <-d.Done():
			verdict = true
		default:
			if time.Now().After(deadline) {
				t.Fatal("detector never gave a verdict on an unreachable address")
			}
			vc.Advance(2 * time.Millisecond)
			runtime.Gosched()
		}
	}
	if !suspected.Load() {
		t.Error("OnSuspect did not fire")
	}
	if got := view.State("ghost"); got != ha.StateSuspect {
		t.Errorf("view state = %v, want suspect", got)
	}
	if transitions.Load() != 1 {
		t.Errorf("suspect transitions = %d, want 1", transitions.Load())
	}
	if counters.Suspicions.Load() != 1 {
		t.Errorf("suspicions = %d, want 1", counters.Suspicions.Load())
	}
	d.Stop() // idempotent after Done
}

func TestDetectorStaysAliveWhilePongsFlow(t *testing.T) {
	nw := transport.NewInproc()
	backup := ha.NewBackup(testGThV())
	l, err := nw.Listen("standby")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go backup.ServeReplication(l) // answers KindPing

	counters := &ha.Counters{}
	view := ha.NewView()
	d := ha.NewDetector(nw, "standby", 2*time.Millisecond, 50*time.Millisecond)
	d.Counters = counters
	d.View = view
	d.OnSuspect = func(addr string, reason error) {
		t.Errorf("unexpected suspicion of %q: %v", addr, reason)
	}
	d.Start()
	defer d.Stop()

	waitFor(t, 5*time.Second, "pongs", func() bool { return counters.Pongs.Load() >= 3 })
	if got := view.State("standby"); got != ha.StateAlive {
		t.Errorf("view state = %v, want alive", got)
	}
	if counters.HeartbeatsSent.Load() == 0 {
		t.Error("no heartbeats counted")
	}
	if counters.Suspicions.Load() != 0 {
		t.Errorf("suspicions = %d, want 0", counters.Suspicions.Load())
	}
}

// TestReplicationMirrorsHome drives a real home with a local thread, streams
// its mutations through a Replicator into a Backup, and promotes the backup
// on a *different* platform; the promoted home must hold the same values.
func TestReplicationMirrorsHome(t *testing.T) {
	gthv := testGThV()
	nw := transport.NewInproc()
	backup := ha.NewBackup(gthv)
	l, err := nw.Listen("replica")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go backup.ServeReplication(l)

	h, err := dsd.NewHome(gthv, platform.LinuxX86, 1, dsd.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	conn, err := nw.Dial("replica")
	if err != nil {
		t.Fatal(err)
	}
	counters := &ha.Counters{}
	repl := ha.NewReplicator(conn, counters)
	defer repl.Close()
	if err := h.StartReplication(repl); err != nil {
		t.Fatal(err)
	}

	th, err := h.LocalThread(0, platform.SolarisSPARC, dsd.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := th.Lock(0); err != nil {
		t.Fatal(err)
	}
	if err := th.Globals().MustVar("sum").SetInt(0, -7); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if err := th.Globals().MustVar("A").SetInt(i, int64(3*i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := th.Globals().MustVar("d").SetFloat64(2, 6.5); err != nil {
		t.Fatal(err)
	}
	// The unlock handler blocks on replication before acknowledging, so by
	// the time Unlock returns the standby has applied everything.
	if err := th.Unlock(0); err != nil {
		t.Fatal(err)
	}

	if !backup.Ready() {
		t.Fatal("backup never received the bootstrap record")
	}
	if backup.LastSeq() == 0 {
		t.Fatal("no replication records applied")
	}
	if counters.RepRecords.Load() == 0 || counters.RepAcks.Load() == 0 {
		t.Errorf("counters: records=%d acks=%d, want both > 0",
			counters.RepRecords.Load(), counters.RepAcks.Load())
	}

	h2, err := backup.Promote(platform.SolarisSPARC, dsd.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if counters.Failovers.Load() != 0 {
		// Promote bumps the backup's own counters, which were never set.
		t.Errorf("failovers on replicator counters = %d", counters.Failovers.Load())
	}
	g := h2.Globals()
	if got, err := g.MustVar("sum").Int(0); err != nil || got != -7 {
		t.Errorf("promoted sum = %d (%v), want -7", got, err)
	}
	for i := 0; i < 8; i++ {
		if got, err := g.MustVar("A").Int(i); err != nil || got != int64(3*i) {
			t.Errorf("promoted A[%d] = %d (%v), want %d", i, got, err, 3*i)
		}
	}
	if got, err := g.MustVar("d").Float64(2); err != nil || got != 6.5 {
		t.Errorf("promoted d[2] = %g (%v), want 6.5", got, err)
	}

	if _, err := backup.Promote(platform.SolarisSPARC, dsd.DefaultOptions()); err == nil {
		t.Error("second promotion succeeded, want error")
	}
	if err := backup.Apply(&wire.Replication{Seq: 99, Event: wire.RepJoin, Rank: 0}); err == nil {
		t.Error("replication accepted after promotion, want error")
	}
}

// initRecord hand-builds a valid bootstrap record for the test GThV on the
// given platform.
func initRecord(t *testing.T, gthv tag.Struct, p *platform.Platform, seq uint64) *wire.Replication {
	t.Helper()
	layout, err := tag.NewLayout(gthv, p)
	if err != nil {
		t.Fatal(err)
	}
	return &wire.Replication{
		Seq:      seq,
		Event:    wire.RepInit,
		Rank:     -1,
		Mutex:    -1,
		Platform: p.Name,
		Base:     0x40000000,
		Image:    make([]byte, layout.Size),
		Tag:      tag.FromLayout(layout).String(),
		Nthreads: 2,
	}
}

func TestBackupDeduplicatesAndValidates(t *testing.T) {
	gthv := testGThV()

	b := ha.NewBackup(gthv)
	if err := b.Apply(&wire.Replication{Seq: 1, Event: wire.RepUpdate}); err == nil {
		t.Error("update before init accepted")
	}

	bad := initRecord(t, gthv, platform.LinuxX86, 1)
	bad.Image = bad.Image[:len(bad.Image)-1]
	if err := b.Apply(bad); err == nil {
		t.Error("short image accepted")
	}
	bad = initRecord(t, gthv, platform.LinuxX86, 1)
	bad.Tag = "(4,1)"
	if err := b.Apply(bad); err == nil {
		t.Error("mismatched tag accepted")
	}
	bad = initRecord(t, gthv, platform.LinuxX86, 1)
	bad.Platform = "vax-780"
	if err := b.Apply(bad); err == nil {
		t.Error("unknown platform accepted")
	}

	if _, err := b.Promote(platform.LinuxX86, dsd.DefaultOptions()); err == nil {
		t.Error("promotion before init succeeded")
	}

	if err := b.Apply(initRecord(t, gthv, platform.LinuxX86, 1)); err != nil {
		t.Fatal(err)
	}
	if err := b.Apply(&wire.Replication{Seq: 2, Event: wire.RepLock, Mutex: 3, Rank: 1}); err != nil {
		t.Fatal(err)
	}
	if b.LastSeq() != 2 {
		t.Fatalf("LastSeq = %d, want 2", b.LastSeq())
	}
	// Duplicate and stale deliveries are absorbed without effect.
	if err := b.Apply(&wire.Replication{Seq: 2, Event: wire.RepLock, Mutex: 4, Rank: 9}); err != nil {
		t.Fatal(err)
	}
	if err := b.Apply(&wire.Replication{Seq: 1, Event: wire.RepUnlock, Mutex: 3}); err != nil {
		t.Fatal(err)
	}
	if b.LastSeq() != 2 {
		t.Errorf("LastSeq after duplicates = %d, want 2", b.LastSeq())
	}

	// An out-of-range replicated span must be rejected, not written.
	if err := b.Apply(&wire.Replication{
		Seq:   3,
		Event: wire.RepUpdate,
		Updates: []wire.Update{
			{Entry: 999, First: 0, Count: 1, Data: []byte{0, 0, 0, 0}},
		},
	}); err == nil {
		t.Error("out-of-range span accepted")
	}
}

func TestCountersMap(t *testing.T) {
	var nilCounters *ha.Counters
	if m := nilCounters.Map(); len(m) != 0 {
		t.Errorf("nil counters map = %v, want empty", m)
	}
	c := &ha.Counters{}
	c.HeartbeatsSent.Add(3)
	c.Failovers.Add(1)
	m := c.Map()
	if m["heartbeats_sent"] != 3 || m["failovers"] != 1 {
		t.Errorf("map = %v", m)
	}
	for _, key := range []string{"heartbeats_sent", "pongs", "suspicions", "failovers", "reconnects", "rep_records", "rep_acks"} {
		if _, ok := m[key]; !ok {
			t.Errorf("map missing key %q", key)
		}
	}
}
