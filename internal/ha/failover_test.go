package ha_test

import (
	"fmt"
	"testing"
	"time"

	"hetdsm/internal/apps"
	"hetdsm/internal/dsd"
	"hetdsm/internal/ha"
	"hetdsm/internal/platform"
	"hetdsm/internal/tag"
	"hetdsm/internal/trace"
	"hetdsm/internal/transport"
)

// haHarness is an in-process HA deployment: a primary home serving on
// "primary", a standby replicating on "replica" and ready to serve on
// "standby", and the replication stream between them.
type haHarness struct {
	nw       transport.Network
	primary  *dsd.Home
	ptrace   *trace.Log
	standby  *ha.Standby
	repl     *ha.Replicator
	counters *ha.Counters
}

// haAddrs is the candidate list every HA client dials through.
var haAddrs = []string{"primary", "standby"}

// newHarness brings up primary, standby and the replication stream, waits
// for the bootstrap record, and starts the failure detector.
func newHarness(t *testing.T, nw transport.Network, gthv tag.Struct, nthreads int, standbyPlat *platform.Platform) *haHarness {
	t.Helper()
	ptrace := trace.NewLog(16384)
	opts := dsd.DefaultOptions()
	opts.StickyLocks = true
	opts.Trace = ptrace
	primary, err := dsd.NewHome(gthv, platform.LinuxX86, nthreads, opts)
	if err != nil {
		t.Fatal(err)
	}
	pl, err := nw.Listen("primary")
	if err != nil {
		t.Fatal(err)
	}
	go primary.Serve(pl)

	counters := &ha.Counters{}
	backup := ha.NewBackup(gthv)
	backup.Trace = trace.NewLog(1024)
	standby, err := ha.NewStandby(nw, backup, ha.StandbyConfig{
		PrimaryAddr:       "primary",
		ReplicaAddr:       "replica",
		ServeAddr:         "standby",
		Platform:          standbyPlat,
		Opts:              dsd.DefaultOptions(),
		HeartbeatInterval: 3 * time.Millisecond,
		FailoverTimeout:   30 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	standby.Counters = counters

	repConn, err := nw.Dial("replica")
	if err != nil {
		t.Fatal(err)
	}
	repl := ha.NewReplicator(repConn, counters)
	if err := primary.StartReplication(repl); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 5*time.Second, "bootstrap record", backup.Ready)
	standby.Start()
	t.Cleanup(standby.Stop)
	return &haHarness{nw: nw, primary: primary, ptrace: ptrace, standby: standby, repl: repl, counters: counters}
}

// kill simulates the primary process dying: every connection (including the
// replication stream) is severed at once.
func (h *haHarness) kill() {
	h.primary.Kill()
	h.repl.Close()
}

// promotedHome waits for failover and returns the promoted home.
func (h *haHarness) promotedHome(t *testing.T) *dsd.Home {
	t.Helper()
	select {
	case <-h.standby.Promoted():
	case <-time.After(30 * time.Second):
		t.Fatal("standby never promoted")
	}
	home, err := h.standby.Home()
	if err != nil {
		t.Fatalf("failover failed: %v", err)
	}
	t.Cleanup(home.Close)
	return home
}

// runBody dials an HA client and runs body on it, reporting the result and
// folding the thread's reconnect count into the harness counters.
func (h *haHarness) runBody(gthv tag.Struct, p *platform.Platform, rank int32,
	body func(th *dsd.Thread) error, errs chan<- error) {
	th, err := dsd.DialHA(h.nw, haAddrs, p, rank, gthv, dsd.DefaultOptions())
	if err != nil {
		errs <- fmt.Errorf("rank %d dial: %w", rank, err)
		return
	}
	err = body(th)
	h.counters.Reconnects.Add(th.Reconnects())
	if err != nil {
		errs <- fmt.Errorf("rank %d: %w", rank, err)
		return
	}
	errs <- nil
}

// collectErrs waits for n body results, failing on the first error.
func collectErrs(t *testing.T, errs <-chan error, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		select {
		case err := <-errs:
			if err != nil {
				t.Fatal(err)
			}
		case <-time.After(60 * time.Second):
			t.Fatal("workload hung after the failover")
		}
	}
}

// barrierEvents counts barrier arrivals and generation openings recorded by
// the primary.
func (h *haHarness) barrierEvents() (arrivals, opens int) {
	return len(h.ptrace.Filter(trace.KindBarrierArrive)), len(h.ptrace.Filter(trace.KindBarrierOpen))
}

// assertFailoverCounters checks that the chaos run actually exercised the
// failover machinery.
func (h *haHarness) assertFailoverCounters(t *testing.T) {
	t.Helper()
	if got := h.counters.Failovers.Load(); got != 1 {
		t.Errorf("failovers = %d, want 1", got)
	}
	if h.counters.Suspicions.Load() == 0 {
		t.Error("no suspicion recorded")
	}
	if h.counters.Reconnects.Load() == 0 {
		t.Error("no client reconnected; the failover path was not exercised")
	}
	if h.counters.RepRecords.Load() == 0 || h.counters.RepAcks.Load() == 0 {
		t.Error("replication stream never flowed")
	}
}

// TestFailoverMatMulMidRun kills the primary home while a heterogeneous
// matmul is between its two barriers and checks the run completes with the
// correct product on the promoted (big-endian!) standby.
//
// A fourth "gate" thread participates in every barrier but holds its second
// arrival until the test releases it. The second barrier therefore cannot
// open before the kill, which makes "the home died mid-run" deterministic
// rather than a race against the compute loop.
func TestFailoverMatMulMidRun(t *testing.T) {
	const (
		n        = 8
		workers  = 3
		seedA    = int64(41)
		seedB    = int64(42)
		nthreads = workers + 1 // workers + gate
	)
	gthv := apps.MatMulGThV(n)
	nw := transport.NewInproc()
	h := newHarness(t, nw, gthv, nthreads, platform.SolarisSPARC)

	plats := []*platform.Platform{platform.LinuxX86, platform.SolarisSPARC, platform.LinuxX86}
	errs := make(chan error, nthreads)
	for rank := 0; rank < workers; rank++ {
		rank := rank
		go h.runBody(gthv, plats[rank], int32(rank), func(th *dsd.Thread) error {
			return apps.MatMulThread(th, rank, workers, n, seedA, seedB)
		}, errs)
	}
	hold := make(chan struct{})
	go h.runBody(gthv, platform.SolarisSPARC, workers, func(th *dsd.Thread) error {
		if err := th.Barrier(0); err != nil {
			return err
		}
		<-hold
		if err := th.Barrier(0); err != nil {
			return err
		}
		return th.Join()
	}, errs)

	// Wait until the first barrier opened (inputs published) and all three
	// workers have arrived at the second barrier — i.e. their C rows are
	// applied at the primary and the threads are parked waiting for the
	// gate. Killing now is guaranteed to be mid-run.
	waitFor(t, 10*time.Second, "workers parked at the final barrier", func() bool {
		arrivals, opens := h.barrierEvents()
		return opens >= 1 && arrivals >= nthreads+workers
	})
	h.kill()
	close(hold)

	collectErrs(t, errs, nthreads)
	home := h.promotedHome(t)
	home.Wait() // every rank joined at the promoted home

	got, err := home.Globals().MustVar("C").Ints(0, n*n)
	if err != nil {
		t.Fatal(err)
	}
	want := apps.MatMulSeq(apps.GenIntMatrix(n, seedA), apps.GenIntMatrix(n, seedB), n)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("C[%d] = %d, want %d (result diverged after failover)", i, got[i], want[i])
		}
	}
	h.assertFailoverCounters(t)
}

// TestFailoverLUMidRun is the same chaos scenario over the LU factorization,
// whose n-1 elimination steps give the failover a long barrier chain to land
// in: the gate holds step 3's barrier, so three generations complete on the
// primary and the rest run on the promoted standby. LU doubles are bit-exact
// across platforms, so the factorization must equal LUSeq exactly.
func TestFailoverLUMidRun(t *testing.T) {
	const (
		n        = 8
		workers  = 3
		seed     = int64(7)
		holdStep = 2
		nthreads = workers + 1
	)
	gthv := apps.LUGThV(n)
	nw := transport.NewInproc()
	h := newHarness(t, nw, gthv, nthreads, platform.SolarisSPARC)

	plats := []*platform.Platform{platform.SolarisSPARC, platform.LinuxX86, platform.SolarisSPARC}
	errs := make(chan error, nthreads)
	for rank := 0; rank < workers; rank++ {
		rank := rank
		go h.runBody(gthv, plats[rank], int32(rank), func(th *dsd.Thread) error {
			return apps.LUThread(th, rank, workers, n, seed)
		}, errs)
	}
	hold := make(chan struct{})
	go h.runBody(gthv, platform.LinuxX86, workers, func(th *dsd.Thread) error {
		if err := th.Barrier(0); err != nil { // init barrier
			return err
		}
		for k := 0; k < n-1; k++ {
			if k == holdStep {
				<-hold
			}
			if err := th.Barrier(0); err != nil {
				return err
			}
		}
		return th.Join()
	}, errs)

	// holdStep generations have opened beyond the init barrier; the
	// workers' arrivals for the held generation are in. Kill mid-chain.
	waitFor(t, 10*time.Second, "workers parked at the held elimination step", func() bool {
		arrivals, opens := h.barrierEvents()
		return opens >= 1+holdStep && arrivals >= (1+holdStep)*nthreads+workers
	})
	h.kill()
	close(hold)

	collectErrs(t, errs, nthreads)
	home := h.promotedHome(t)
	home.Wait()

	got, err := home.Globals().MustVar("A").Float64s(0, n*n)
	if err != nil {
		t.Fatal(err)
	}
	want := apps.GenLUMatrix(n, seed)
	apps.LUSeq(want, n)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("A[%d] = %g, want %g (LU diverged after failover)", i, got[i], want[i])
		}
	}
	h.assertFailoverCounters(t)
}

// TestTransientPartitionReplay runs the lock-heavy transfer workload over a
// transport that randomly severs connections. The home stays alive the whole
// time: every failure is a transient partition, so sticky locks plus
// sequence-number replay must carry each thread through — reconnect with
// backoff, re-send the in-flight request, and have the home apply it at most
// once. Balance conservation catches any double-applied transfer.
func TestTransientPartitionReplay(t *testing.T) {
	const (
		nAccounts = 64
		nOps      = 40
		workers   = 3
		seed      = int64(20060814)
	)
	gthv := apps.TransferGThV(nAccounts)
	flaky := transport.NewFlakyRand(transport.NewInproc(), 0.02, 1)

	opts := dsd.DefaultOptions()
	opts.StickyLocks = true
	home, err := dsd.NewHome(gthv, platform.LinuxX86, workers, opts)
	if err != nil {
		t.Fatal(err)
	}
	l, err := flaky.Listen("home")
	if err != nil {
		t.Fatal(err)
	}
	go home.Serve(l)

	plats := []*platform.Platform{platform.SolarisSPARC, platform.LinuxX86, platform.SolarisSPARC}
	errs := make(chan error, workers)
	var reconnects [workers]uint64
	for rank := 0; rank < workers; rank++ {
		rank := rank
		go func() {
			th, err := dsd.DialHA(flaky, []string{"home"}, plats[rank], int32(rank), gthv, dsd.DefaultOptions())
			if err != nil {
				errs <- fmt.Errorf("rank %d dial: %w", rank, err)
				return
			}
			err = apps.TransferThread(th, rank, workers, nAccounts, nOps, seed)
			reconnects[rank] = th.Reconnects()
			if err != nil {
				errs <- fmt.Errorf("rank %d: %w", rank, err)
				return
			}
			errs <- nil
		}()
	}
	collectErrs(t, errs, workers)
	home.Wait()

	got, err := home.Globals().MustVar("balances").Ints(0, nAccounts)
	if err != nil {
		t.Fatal(err)
	}
	want := apps.TransferExpected(nAccounts, nOps, workers, seed)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("balances[%d] = %d, want %d (a replayed transfer applied twice?)", i, got[i], want[i])
		}
	}
	if flaky.Kills() == 0 {
		t.Error("flaky transport never dropped anything; partition path untested")
	}
	var total uint64
	for _, r := range reconnects {
		total += r
	}
	if total == 0 {
		t.Error("no thread reconnected; replay-after-partition path untested")
	}
}
