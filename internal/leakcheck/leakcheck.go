// Package leakcheck verifies that a test tears its goroutines down. The
// deadline plane multiplies background goroutines — queue writers, stall
// detectors, stub goroutines parked on severed conns — and a leaked one is
// a wedged teardown path the tests would otherwise never notice.
package leakcheck

import (
	"runtime"
	"strings"
	"testing"
	"time"
)

// Check snapshots the goroutines alive now and returns a function to defer:
// it fails the test if goroutines born since are still alive at the end of
// a settle window. Usage:
//
//	defer leakcheck.Check(t)()
func Check(t *testing.T) func() {
	t.Helper()
	before := count()
	return func() {
		t.Helper()
		// Exiting goroutines need a moment to unwind; retry before blaming.
		deadline := time.Now().Add(2 * time.Second)
		var after int
		for {
			after = count()
			if after <= before || time.Now().After(deadline) {
				break
			}
			time.Sleep(10 * time.Millisecond)
		}
		if after > before {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Errorf("leaked %d goroutine(s) (%d -> %d):\n%s", after-before, before, after, buf[:n])
		}
	}
}

// count returns the number of interesting goroutines: everything except
// the runtime's own housekeeping and the testing harness.
func count() int {
	buf := make([]byte, 1<<20)
	n := runtime.Stack(buf, true)
	stacks := strings.Split(string(buf[:n]), "\n\n")
	alive := 0
	for _, s := range stacks {
		if s == "" || benign(s) {
			continue
		}
		alive++
	}
	return alive
}

// benign reports goroutines that are not a test's to clean up.
func benign(stack string) bool {
	for _, marker := range []string{
		"testing.(*T).Run",      // the test runner itself
		"testing.(*M).",         // test main
		"testing.runTests",      //
		"runtime.goexit",        // header-only fragment
		"runtime/trace",         //
		"signal.signal_recv",    // signal handling
		"runtime.gc",            // collector helpers
		"runtime.bgsweep",       //
		"runtime.bgscavenge",    //
		"runtime.forcegchelper", //
		"testing.tRunner.func",  // cleanup hooks
		"runtime.ReadTrace",     //
		"leakcheck.Check",       // ourselves
		"os/signal.loop",        //
	} {
		if strings.Contains(stack, marker) {
			return true
		}
	}
	return false
}
