package leakcheck

import (
	"testing"
	"time"
)

// A well-behaved body passes: goroutines started and stopped inside the
// window do not trip the check.
func TestCheckPassesOnCleanTeardown(t *testing.T) {
	done := Check(t)
	stop := make(chan struct{})
	exited := make(chan struct{})
	go func() { <-stop; close(exited) }()
	close(stop)
	<-exited
	done()
}

// The detector actually detects: a goroutine left parked is reported. The
// failure is observed through a throwaway testing.T so this test passes.
func TestCheckCatchesLeak(t *testing.T) {
	leaky := &testing.T{}
	done := Check(leaky)
	stop := make(chan struct{})
	go func() { <-stop }()
	start := time.Now()
	done()
	if !leaky.Failed() {
		t.Error("leaked goroutine not reported")
	}
	if waited := time.Since(start); waited < time.Second {
		t.Logf("settle window cut short (%v) — fine, the leak persisted", waited)
	}
	close(stop)
}
