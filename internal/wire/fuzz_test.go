package wire

import (
	"bytes"
	"testing"
)

// FuzzDecode exercises the frame parser with arbitrary bytes (run with
// `go test -fuzz=FuzzDecode ./internal/wire`); in normal test runs the
// seed corpus below executes. Decode must never panic, and anything it
// accepts must re-encode and re-decode to the same message.
func FuzzDecode(f *testing.F) {
	seeds := []*Message{
		{Kind: KindHello, Rank: 1, Platform: "linux-x86", Base: 0x40058000},
		{Kind: KindLockGrant, Rank: 2, Mutex: 3, Updates: []Update{
			{Entry: 1, First: 0, Count: 2, Tag: "(4,2)", Data: []byte{1, 2, 3, 4, 5, 6, 7, 8}},
		}},
		{Kind: KindMigrate, Platform: "solaris-sparc", State: &ThreadState{
			PC: 9, FrameTag: "(8,1)(0,0)", Frame: make([]byte, 8), ExtraTag: "(1,2)", Extra: []byte{1, 2},
		}},
		{Kind: KindRedirect, Addr: "home2", Err: "moved"},
	}
	for _, m := range seeds {
		b, err := Encode(m)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(b)
	}
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0x00, 0x01})

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := Decode(data)
		if err != nil {
			return
		}
		re, err := Encode(m)
		if err != nil {
			t.Fatalf("decoded message does not re-encode: %v", err)
		}
		m2, err := Decode(re)
		if err != nil {
			t.Fatalf("re-encoded message does not decode: %v", err)
		}
		re2, err := Encode(m2)
		if err != nil || !bytes.Equal(re, re2) {
			t.Fatalf("encode not stable: %v", err)
		}
	})
}
