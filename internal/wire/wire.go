// Package wire defines the message vocabulary of the DSD protocol and its
// binary encoding.
//
// Messages carry updates in the paper's form: CGT-RMR tags plus raw data in
// the *sender's* representation. The receiver converts ("receiver makes
// right"), so the wire format never canonicalizes payload bytes; only the
// framing itself uses a fixed (big-endian) order. Packing and unpacking are
// the t_pack and t_unpack components of Eq. 1; callers time Encode/Decode
// into their stats.Breakdown.
package wire

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Kind discriminates protocol messages.
type Kind uint8

const (
	// KindInvalid is the zero value; never sent.
	KindInvalid Kind = iota
	// KindHello registers a node with the home: platform name and rank.
	KindHello
	// KindHelloAck acknowledges registration and carries the home's
	// platform name.
	KindHelloAck
	// KindLockReq asks the home for a distributed mutex (MTh_lock).
	KindLockReq
	// KindLockGrant grants the mutex and carries outstanding updates.
	KindLockGrant
	// KindLockAck acknowledges receipt of a grant's updates.
	KindLockAck
	// KindUnlockReq releases the mutex and carries the holder's updates
	// (MTh_unlock).
	KindUnlockReq
	// KindUnlockAck acknowledges the release.
	KindUnlockAck
	// KindBarrierReq enters a barrier and carries the caller's updates
	// (MTh_barrier).
	KindBarrierReq
	// KindBarrierRelease releases a barrier and carries merged updates.
	KindBarrierRelease
	// KindJoinReq announces thread termination (MTh_join).
	KindJoinReq
	// KindJoinAck acknowledges the join.
	KindJoinAck
	// KindMigrate ships a captured thread state to a skeleton slot.
	KindMigrate
	// KindMigrateAck acknowledges a migration landed.
	KindMigrateAck
	// KindFlushReq pushes a thread's dirty updates home outside any lock;
	// used by the migration protocol so no write is lost when a thread's
	// replica is abandoned at the source node.
	KindFlushReq
	// KindFlushAck acknowledges a flush.
	KindFlushAck
	// KindRedirect tells a thread the home has moved; Addr carries the
	// new home's address. The thread reconnects and re-sends its request.
	KindRedirect
	// KindFetchReq asks the home for current data of specific spans
	// (invalidate protocol: a thread reads an invalidated element).
	KindFetchReq
	// KindFetchReply carries the requested spans with data.
	KindFetchReply
	// KindPing is a heartbeat probe (failure detection); any node that
	// serves DSD traffic answers with KindPong.
	KindPing
	// KindPong answers a ping, echoing its Seq.
	KindPong
	// KindReplicate streams one home-state mutation to a hot-standby
	// backup; the Rep payload describes the mutation and Updates carries
	// span data (already in the home's representation).
	KindReplicate
	// KindReplicateAck acknowledges a replication record by its Rep.Seq.
	KindReplicateAck
	// KindSyncReq asks a home shard for the sender's outstanding pending
	// updates outside any lock or barrier. The sharded directory's proxy
	// sends it to every non-granting shard after an acquire, so a grant
	// gathers updates from all owners, not just the lock's.
	KindSyncReq
	// KindSyncReply carries the requested pending updates.
	KindSyncReply
	// KindSyncAck confirms a sync reply was applied; the shard drains the
	// peeked pending prefix only on the ack (same receipt discipline as
	// lock grants).
	KindSyncAck
	// KindDirForward answers a request that hit a shard which no longer
	// owns the touched entries (or lock): Dir carries the corrected
	// entry→shard mappings from the authoritative directory, so a stale
	// client cache chases at most one hop before re-sending.
	KindDirForward
	numKinds
)

var kindNames = [...]string{
	KindInvalid: "invalid",
	KindHello:   "hello", KindHelloAck: "hello-ack",
	KindLockReq: "lock-req", KindLockGrant: "lock-grant", KindLockAck: "lock-ack",
	KindUnlockReq: "unlock-req", KindUnlockAck: "unlock-ack",
	KindBarrierReq: "barrier-req", KindBarrierRelease: "barrier-release",
	KindJoinReq: "join-req", KindJoinAck: "join-ack",
	KindMigrate: "migrate", KindMigrateAck: "migrate-ack",
	KindFlushReq: "flush-req", KindFlushAck: "flush-ack",
	KindRedirect: "redirect",
	KindFetchReq: "fetch-req", KindFetchReply: "fetch-reply",
	KindPing: "ping", KindPong: "pong",
	KindReplicate: "replicate", KindReplicateAck: "replicate-ack",
	KindSyncReq: "sync-req", KindSyncReply: "sync-reply", KindSyncAck: "sync-ack",
	KindDirForward: "dir-forward",
}

// String returns the protocol name of the kind.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Update is one object-granular modification: an index-table span, its
// CGT-RMR tag, and the raw bytes in the sender's representation.
type Update struct {
	// Entry is the index-table entry (architecture independent).
	Entry int32
	// First is the first modified element within the entry.
	First int32
	// Count is the number of consecutive elements.
	Count int32
	// Tag is the CGT-RMR tag string for the span, e.g. "(4,10)".
	Tag string
	// Data holds Count elements in the sender's byte representation.
	Data []byte
}

// DirEntry is one directory mapping: an index-table entry (or, with Lock
// set, a mutex index) and the shard that currently owns it. KindDirForward
// replies carry the authoritative mappings for everything a misdelivered
// request touched; Ver orders corrections so a late forward cannot roll a
// client cache back to an older owner.
type DirEntry struct {
	// Object is the index-table entry id, or the mutex index when Lock.
	Object int32
	// Lock marks a mutex mapping rather than an entry mapping.
	Lock bool
	// Shard is the owning shard id.
	Shard int32
	// Ver is the directory version of this mapping (bumped per migration).
	Ver uint64
}

// HeatSample is one page's write-trap activity since the sender's previous
// release: threads piggyback their vmem heat deltas on release messages so
// home shards can aggregate cluster-wide page heat and drive re-homing.
type HeatSample struct {
	// Page is the page index within the GThV segment.
	Page int32
	// Faults is the number of write traps the page took in the window.
	Faults uint32
}

// ThreadState is a captured MigThread state in portable form: the logical
// program counter plus the frame image and its tag, in the source
// platform's representation.
type ThreadState struct {
	// PC is the logical program counter (workload step).
	PC int64
	// FrameTag is the CGT-RMR tag of the frame image.
	FrameTag string
	// Frame is the frame image in the source platform's layout.
	Frame []byte
	// ExtraTag and Extra carry an optional workload-defined payload in
	// the source platform's layout (e.g. a migrated file-descriptor
	// table), tagged like any other CGT-RMR state.
	ExtraTag string
	Extra    []byte
}

// RepEvent discriminates replication records on the home→backup stream.
type RepEvent uint8

const (
	// RepInvalid is the zero value; never sent.
	RepInvalid RepEvent = iota
	// RepInit bootstraps the backup: full master image plus lock, join
	// and watermark state at stream start.
	RepInit
	// RepUpdate mirrors an applied update batch; the enclosing message's
	// Updates carry the spans with data in the home's representation.
	RepUpdate
	// RepLock mirrors a mutex grant: Rank now holds Mutex.
	RepLock
	// RepUnlock mirrors a mutex becoming free.
	RepUnlock
	// RepBarrier mirrors a barrier generation opening; Released lists
	// each arrived rank with the request id its release answers.
	RepBarrier
	// RepJoin mirrors a rank joining.
	RepJoin
	// RepEpoch persists a fencing-epoch advance (WAL recovery bumps the
	// epoch before serving); carries no other state.
	RepEpoch
)

// String names the event for traces and diagnostics.
func (e RepEvent) String() string {
	switch e {
	case RepInit:
		return "rep-init"
	case RepUpdate:
		return "rep-update"
	case RepLock:
		return "rep-lock"
	case RepUnlock:
		return "rep-unlock"
	case RepBarrier:
		return "rep-barrier"
	case RepJoin:
		return "rep-join"
	case RepEpoch:
		return "rep-epoch"
	}
	return fmt.Sprintf("rep-event-%d", uint8(e))
}

// RepPair is a (rank, sequence) pair used for replicated watermarks and,
// with Seq holding a mutex index, for replicated lock holders.
type RepPair struct {
	Rank int32
	Seq  uint64
}

// Replication is the payload of KindReplicate: one ordered mutation of the
// home's state machine, letting a hot standby mirror it.
type Replication struct {
	// Seq is the record's position in the replication log; acks echo it.
	Seq uint64
	// Event discriminates the mutation.
	Event RepEvent
	// Rank is the thread involved (holder, joiner, updater); -1 if none.
	Rank int32
	// Mutex is the lock/barrier index; -1 if none.
	Mutex int32
	// Platform, Base, Image, Tag, Dirty, Proto and Nthreads describe the
	// home at stream start (RepInit only): the master image travels in
	// the home's own representation.
	Platform string
	Base     uint64
	Image    []byte
	Tag      string
	Dirty    bool
	Proto    uint8
	Nthreads int32
	// Updates carries the mutated spans with data in the home's own
	// representation (RepUpdate only): the backup mirrors the master
	// image byte-for-byte, no conversion.
	Updates []Update
	// Held lists currently held locks as {holder rank, mutex} (RepInit).
	Held []RepPair
	// Joined lists ranks that have joined (RepInit).
	Joined []int32
	// Applied carries per-rank idempotency watermarks: the highest
	// update-bearing request id applied for each rank.
	Applied []RepPair
	// Released carries per-rank barrier-release watermarks: the request
	// id of the last barrier arrival whose release was issued.
	Released []RepPair
	// Epoch is the fencing epoch of the home that emitted the record;
	// mirrors and the WAL reject records from a stale epoch.
	Epoch uint64
	// TraceID and ParentSpan carry the causal trace context of the
	// client release that produced this record, so WAL fsync and standby
	// replication spans stitch into the same cross-node DAG. Zero when
	// the record is not attributable to one traced release.
	TraceID    uint64
	ParentSpan uint64
}

// Message is one protocol datagram.
type Message struct {
	// Kind discriminates the message.
	Kind Kind
	// Seq is a per-connection sequence number for tracing.
	Seq uint64
	// Rank is the sending thread's rank (iso-computing slot).
	Rank int32
	// Mutex is the lock or barrier index for synchronization messages.
	Mutex int32
	// Platform is the sender's platform name; set on Hello/HelloAck and
	// on every update-bearing message so the receiver can convert.
	Platform string
	// Base is the sender's GThV virtual base address, announced on
	// Hello/HelloAck so peers can build each other's index tables for
	// pointer translation.
	Base uint64
	// Updates carries object-granular modifications.
	Updates []Update
	// State carries a migrating thread's captured state.
	State *ThreadState
	// Err carries a protocol-level failure description on ack messages;
	// empty means success.
	Err string
	// Addr carries the new home address on KindRedirect messages.
	Addr string
	// Proto carries the home's consistency protocol on KindHelloAck
	// (0 = update, 1 = invalidate); threads adopt it.
	Proto uint8
	// Flags carries per-kind bits; on KindHello, FlagWarmReplica means
	// the sender's replica already holds state from a previous home
	// (redirect re-registration) rather than being freshly allocated.
	Flags uint8
	// Epoch is the sender's fencing epoch. Homes stamp their current
	// epoch on every frame; threads echo the highest epoch they have
	// adopted. A receiver that has adopted a higher epoch rejects the
	// frame (stale primary), and a home that sees a higher epoch fences
	// itself. Zero means "not stamped" (legacy/unaware sender).
	Epoch uint64
	// Rep carries the replication payload on KindReplicate and the acked
	// sequence number on KindReplicateAck.
	Rep *Replication
	// Shard is the sending shard's id in a multi-home directory
	// deployment; -1 (or 0 in single-home runs, where it is never read)
	// when not applicable.
	Shard int32
	// Dir carries corrected directory mappings on KindDirForward.
	Dir []DirEntry
	// Heat carries the sender's page-fault deltas since its previous
	// release; home shards aggregate them for heat-driven re-homing.
	Heat []HeatSample
	// TraceID identifies the causal trace this message belongs to (one
	// trace per release or acquire), unique process-wide even when two
	// shard incarnations reuse a (rank, seq) pair. Zero means untraced.
	TraceID uint64
	// ParentSpan is the span id of the sender-side stage that emitted the
	// message (the ship span for releases); receiver-side spans parent to
	// it so the cross-node DAG stitches by id, not by (rank, seq) guess.
	ParentSpan uint64
	// DeadlineMS is the remaining per-operation budget in milliseconds,
	// stamped by the client when dsd.Options.OpTimeout is set. It is a
	// relative budget, not an absolute timestamp, so it survives clock
	// skew between nodes; a receiver uses it to bound its own blocking on
	// behalf of this request (e.g. the home's grant-ack wait). Zero means
	// unbounded (the seed behavior).
	DeadlineMS uint32
}

// FlagWarmReplica marks a Hello from a thread whose replica is already
// populated (home-handoff re-registration); without it the home seeds the
// full state.
const FlagWarmReplica uint8 = 1 << 0

// maxStringLen bounds decoded strings; tags and platform names are tiny.
const maxStringLen = 1 << 16

// MaxFrame bounds any encoded frame and any decoded byte payload (64 MiB),
// far above any experiment in the paper while still preventing a corrupt
// length from allocating unbounded memory. The transport layer enforces
// the same bound on received frames.
const MaxFrame = 64 << 20

// maxDataLen is MaxFrame under its historical internal name.
const maxDataLen = MaxFrame

// Encode serializes a message. This is the t_pack work.
func Encode(m *Message) ([]byte, error) {
	if m.Kind == KindInvalid || m.Kind >= numKinds {
		return nil, fmt.Errorf("wire: cannot encode kind %v", m.Kind)
	}
	buf := make([]byte, 0, 64+encodedUpdatesSize(m.Updates))
	buf = append(buf, byte(m.Kind))
	buf = be64(buf, m.Seq)
	buf = be32(buf, uint32(m.Rank))
	buf = be32(buf, uint32(m.Mutex))
	buf = appendString(buf, m.Platform)
	buf = be64(buf, m.Base)
	buf = appendUpdates(buf, m.Updates)
	if m.State != nil {
		buf = append(buf, 1)
		buf = be64(buf, uint64(m.State.PC))
		buf = appendString(buf, m.State.FrameTag)
		buf = appendBytes(buf, m.State.Frame)
		buf = appendString(buf, m.State.ExtraTag)
		buf = appendBytes(buf, m.State.Extra)
	} else {
		buf = append(buf, 0)
	}
	buf = appendString(buf, m.Err)
	buf = appendString(buf, m.Addr)
	buf = append(buf, m.Proto)
	buf = append(buf, m.Flags)
	buf = be64(buf, m.Epoch)
	if m.Rep != nil {
		buf = append(buf, 1)
		buf = appendRep(buf, m.Rep)
	} else {
		buf = append(buf, 0)
	}
	buf = be32(buf, uint32(m.Shard))
	buf = be32(buf, uint32(len(m.Dir)))
	for _, de := range m.Dir {
		buf = be32(buf, uint32(de.Object))
		if de.Lock {
			buf = append(buf, 1)
		} else {
			buf = append(buf, 0)
		}
		buf = be32(buf, uint32(de.Shard))
		buf = be64(buf, de.Ver)
	}
	buf = be32(buf, uint32(len(m.Heat)))
	for _, hs := range m.Heat {
		buf = be32(buf, uint32(hs.Page))
		buf = be32(buf, hs.Faults)
	}
	buf = be64(buf, m.TraceID)
	buf = be64(buf, m.ParentSpan)
	buf = be32(buf, m.DeadlineMS)
	return buf, nil
}

func appendRep(buf []byte, r *Replication) []byte {
	buf = be64(buf, r.Seq)
	buf = append(buf, byte(r.Event))
	buf = be32(buf, uint32(r.Rank))
	buf = be32(buf, uint32(r.Mutex))
	buf = appendString(buf, r.Platform)
	buf = be64(buf, r.Base)
	buf = appendBytes(buf, r.Image)
	buf = appendString(buf, r.Tag)
	if r.Dirty {
		buf = append(buf, 1)
	} else {
		buf = append(buf, 0)
	}
	buf = append(buf, r.Proto)
	buf = be32(buf, uint32(r.Nthreads))
	buf = appendUpdates(buf, r.Updates)
	buf = appendPairs(buf, r.Held)
	buf = be32(buf, uint32(len(r.Joined)))
	for _, rank := range r.Joined {
		buf = be32(buf, uint32(rank))
	}
	buf = appendPairs(buf, r.Applied)
	buf = appendPairs(buf, r.Released)
	buf = be64(buf, r.Epoch)
	buf = be64(buf, r.TraceID)
	buf = be64(buf, r.ParentSpan)
	return buf
}

// EncodeReplication serializes a bare replication record outside any
// message frame; the write-ahead log stores records in this form.
func EncodeReplication(r *Replication) []byte {
	buf := make([]byte, 0, 96+len(r.Image)+encodedUpdatesSize(r.Updates))
	return appendRep(buf, r)
}

// DecodeReplication parses a record encoded by EncodeReplication,
// rejecting trailing bytes. Like Decode, the result aliases b's storage.
func DecodeReplication(b []byte) (*Replication, error) {
	d := decoder{b: b}
	r, err := d.rep()
	if err != nil {
		return nil, err
	}
	if d.err != nil {
		return nil, d.err
	}
	if d.off != len(b) {
		return nil, fmt.Errorf("wire: %d trailing bytes", len(b)-d.off)
	}
	return r, nil
}

func appendUpdates(buf []byte, us []Update) []byte {
	buf = be32(buf, uint32(len(us)))
	for i := range us {
		u := &us[i]
		buf = be32(buf, uint32(u.Entry))
		buf = be32(buf, uint32(u.First))
		buf = be32(buf, uint32(u.Count))
		buf = appendString(buf, u.Tag)
		buf = appendBytes(buf, u.Data)
	}
	return buf
}

func appendPairs(buf []byte, ps []RepPair) []byte {
	buf = be32(buf, uint32(len(ps)))
	for _, p := range ps {
		buf = be32(buf, uint32(p.Rank))
		buf = be64(buf, p.Seq)
	}
	return buf
}

func encodedUpdatesSize(us []Update) int {
	n := 0
	for i := range us {
		n += 12 + 4 + len(us[i].Tag) + 4 + len(us[i].Data)
	}
	return n
}

// Decode parses a message encoded by Encode. This is the t_unpack work.
// The returned message aliases b's storage for Data/Frame slices; callers
// that retain them past b's lifetime must copy.
func Decode(b []byte) (*Message, error) {
	d := decoder{b: b}
	k := Kind(d.u8())
	if k == KindInvalid || k >= numKinds {
		return nil, fmt.Errorf("wire: bad kind %d", k)
	}
	m := &Message{Kind: k}
	m.Seq = d.u64()
	m.Rank = int32(d.u32())
	m.Mutex = int32(d.u32())
	m.Platform = d.str()
	m.Base = d.u64()
	var err error
	if m.Updates, err = d.updates(); err != nil {
		return nil, err
	}
	if d.u8() == 1 {
		st := &ThreadState{}
		st.PC = int64(d.u64())
		st.FrameTag = d.str()
		st.Frame = d.bytes()
		st.ExtraTag = d.str()
		st.Extra = d.bytes()
		m.State = st
	}
	m.Err = d.str()
	m.Addr = d.str()
	m.Proto = d.u8()
	m.Flags = d.u8()
	m.Epoch = d.u64()
	if d.u8() == 1 {
		r, err := d.rep()
		if err != nil {
			return nil, err
		}
		m.Rep = r
	}
	m.Shard = int32(d.u32())
	if n := int(d.u32()); d.err == nil && n > 0 {
		if n > maxRepEntries {
			return nil, fmt.Errorf("wire: implausible dir-entry count %d", n)
		}
		m.Dir = make([]DirEntry, n)
		for i := range m.Dir {
			m.Dir[i].Object = int32(d.u32())
			m.Dir[i].Lock = d.u8() == 1
			m.Dir[i].Shard = int32(d.u32())
			m.Dir[i].Ver = d.u64()
		}
	}
	if n := int(d.u32()); d.err == nil && n > 0 {
		if n > maxRepEntries {
			return nil, fmt.Errorf("wire: implausible heat-sample count %d", n)
		}
		m.Heat = make([]HeatSample, n)
		for i := range m.Heat {
			m.Heat[i].Page = int32(d.u32())
			m.Heat[i].Faults = d.u32()
		}
	}
	m.TraceID = d.u64()
	m.ParentSpan = d.u64()
	m.DeadlineMS = d.u32()
	if d.err != nil {
		return nil, d.err
	}
	if d.off != len(b) {
		return nil, fmt.Errorf("wire: %d trailing bytes", len(b)-d.off)
	}
	return m, nil
}

func be32(b []byte, v uint32) []byte {
	return append(b, byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
}

func be64(b []byte, v uint64) []byte {
	return append(b,
		byte(v>>56), byte(v>>48), byte(v>>40), byte(v>>32),
		byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
}

func appendString(b []byte, s string) []byte {
	if len(s) > maxStringLen {
		// Callers only pass tags and platform names; truncation would be
		// a bug, so refuse loudly at encode time via panic-free path:
		// clamp never happens in practice because Encode inputs are
		// program-generated. Guard anyway.
		s = s[:maxStringLen]
	}
	b = be32(b, uint32(len(s)))
	return append(b, s...)
}

func appendBytes(b, p []byte) []byte {
	b = be32(b, uint32(len(p)))
	return append(b, p...)
}

type decoder struct {
	b   []byte
	off int
	err error
}

func (d *decoder) fail() {
	if d.err == nil {
		d.err = fmt.Errorf("wire: truncated message at offset %d", d.off)
	}
}

func (d *decoder) u8() byte {
	if d.err != nil || d.off+1 > len(d.b) {
		d.fail()
		return 0
	}
	v := d.b[d.off]
	d.off++
	return v
}

func (d *decoder) u32() uint32 {
	if d.err != nil || d.off+4 > len(d.b) {
		d.fail()
		return 0
	}
	v := binary.BigEndian.Uint32(d.b[d.off:])
	d.off += 4
	return v
}

func (d *decoder) u64() uint64 {
	if d.err != nil || d.off+8 > len(d.b) {
		d.fail()
		return 0
	}
	v := binary.BigEndian.Uint64(d.b[d.off:])
	d.off += 8
	return v
}

func (d *decoder) str() string {
	n := int(d.u32())
	if d.err != nil {
		return ""
	}
	if n > maxStringLen || d.off+n > len(d.b) {
		d.fail()
		return ""
	}
	s := string(d.b[d.off : d.off+n])
	d.off += n
	return s
}

// maxRepEntries bounds the pair and joined lists in a replication record;
// entries are per-rank, so even huge clusters stay far below this.
const maxRepEntries = 1 << 20

func (d *decoder) rep() (*Replication, error) {
	r := &Replication{}
	r.Seq = d.u64()
	r.Event = RepEvent(d.u8())
	r.Rank = int32(d.u32())
	r.Mutex = int32(d.u32())
	r.Platform = d.str()
	r.Base = d.u64()
	r.Image = d.bytes()
	r.Tag = d.str()
	r.Dirty = d.u8() == 1
	r.Proto = d.u8()
	r.Nthreads = int32(d.u32())
	var err error
	if r.Updates, err = d.updates(); err != nil {
		return nil, err
	}
	if r.Held, err = d.pairs(); err != nil {
		return nil, err
	}
	n := int(d.u32())
	if d.err == nil && n > 0 {
		if n > maxRepEntries {
			return nil, fmt.Errorf("wire: implausible joined count %d", n)
		}
		r.Joined = make([]int32, n)
		for i := range r.Joined {
			r.Joined[i] = int32(d.u32())
		}
	}
	if r.Applied, err = d.pairs(); err != nil {
		return nil, err
	}
	if r.Released, err = d.pairs(); err != nil {
		return nil, err
	}
	r.Epoch = d.u64()
	r.TraceID = d.u64()
	r.ParentSpan = d.u64()
	return r, nil
}

func (d *decoder) updates() ([]Update, error) {
	n := int(d.u32())
	if d.err != nil || n == 0 {
		return nil, nil
	}
	if n > maxDataLen/16 {
		return nil, fmt.Errorf("wire: implausible update count %d", n)
	}
	us := make([]Update, n)
	for i := range us {
		u := &us[i]
		u.Entry = int32(d.u32())
		u.First = int32(d.u32())
		u.Count = int32(d.u32())
		u.Tag = d.str()
		u.Data = d.bytes()
	}
	return us, nil
}

func (d *decoder) pairs() ([]RepPair, error) {
	n := int(d.u32())
	if d.err != nil || n == 0 {
		return nil, nil
	}
	if n > maxRepEntries {
		return nil, fmt.Errorf("wire: implausible pair count %d", n)
	}
	ps := make([]RepPair, n)
	for i := range ps {
		ps[i].Rank = int32(d.u32())
		ps[i].Seq = d.u64()
	}
	return ps, nil
}

func (d *decoder) bytes() []byte {
	n := int(d.u32())
	if d.err != nil || n == 0 {
		return nil
	}
	if n > maxDataLen || d.off+n > len(d.b) {
		d.fail()
		return nil
	}
	p := d.b[d.off : d.off+n : d.off+n]
	d.off += n
	return p
}

// UpdateBytes sums the payload sizes of a set of updates; used for the
// byte counters in stats.
func UpdateBytes(us []Update) int {
	n := 0
	for i := range us {
		n += len(us[i].Data)
	}
	return n
}

// Validate performs structural sanity checks on a decoded message before
// the DSD trusts it: counts must be positive and data lengths plausible
// for the tag.
func (m *Message) Validate() error {
	for i := range m.Updates {
		u := &m.Updates[i]
		if u.Entry < 0 || u.First < 0 || u.Count <= 0 {
			return fmt.Errorf("wire: update %d has bad span %d/%d/%d", i, u.Entry, u.First, u.Count)
		}
		if int64(u.First)+int64(u.Count) > math.MaxInt32 {
			return fmt.Errorf("wire: update %d span overflows", i)
		}
		if len(u.Data)%int(u.Count) != 0 {
			return fmt.Errorf("wire: update %d data %d not divisible by count %d", i, len(u.Data), u.Count)
		}
	}
	return nil
}
