package wire

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func sampleMessage() *Message {
	return &Message{
		Kind:     KindUnlockReq,
		Seq:      42,
		Rank:     2,
		Mutex:    0,
		Platform: "solaris-sparc",
		Base:     0x40058000,
		Updates: []Update{
			{Entry: 1, First: 10, Count: 3, Tag: "(4,3)", Data: []byte{0, 0, 0, 1, 0, 0, 0, 2, 0, 0, 0, 3}},
			{Entry: 4, First: 0, Count: 1, Tag: "(4,1)", Data: []byte{0, 0, 0, 9}},
		},
		DeadlineMS: 250,
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	m := sampleMessage()
	b, err := Encode(m)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(b)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(m, got) {
		t.Errorf("round trip mismatch:\n got %+v\nwant %+v", got, m)
	}
}

func TestEncodeDecodeWithState(t *testing.T) {
	m := &Message{
		Kind:     KindMigrate,
		Rank:     1,
		Platform: "linux-x86",
		State: &ThreadState{
			PC:       7,
			FrameTag: "(4,-1)(0,0)(4,1)(0,0)",
			Frame:    []byte{1, 2, 3, 4, 5, 6, 7, 8},
		},
	}
	b, err := Encode(m)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(b)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(m, got) {
		t.Errorf("state round trip mismatch: %+v vs %+v", got, m)
	}
}

func TestEncodeDecodeEmptyMessage(t *testing.T) {
	m := &Message{Kind: KindJoinReq, Rank: 3}
	b, err := Encode(m)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(b)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(m, got) {
		t.Errorf("empty round trip mismatch: %+v vs %+v", got, m)
	}
}

func TestEncodeRejectsInvalidKind(t *testing.T) {
	if _, err := Encode(&Message{Kind: KindInvalid}); err == nil {
		t.Error("invalid kind must fail")
	}
	if _, err := Encode(&Message{Kind: numKinds}); err == nil {
		t.Error("out-of-range kind must fail")
	}
}

func TestDecodeRejectsCorruptInput(t *testing.T) {
	m := sampleMessage()
	b, err := Encode(m)
	if err != nil {
		t.Fatal(err)
	}
	// Truncations at every length must error, never panic.
	for n := 0; n < len(b); n++ {
		if _, err := Decode(b[:n]); err == nil {
			t.Errorf("truncation to %d bytes decoded successfully", n)
		}
	}
	// Trailing garbage.
	if _, err := Decode(append(append([]byte{}, b...), 0xFF)); err == nil {
		t.Error("trailing garbage decoded successfully")
	}
	// Bad kind byte.
	bad := append([]byte{}, b...)
	bad[0] = 0
	if _, err := Decode(bad); err == nil {
		t.Error("zero kind decoded successfully")
	}
	// Implausible update count.
	bad2 := append([]byte{}, b...)
	// Update count sits after kind(1)+seq(8)+rank(4)+mutex(4)+strlen(4)+str+base(8).
	off := 1 + 8 + 4 + 4 + 4 + len(m.Platform) + 8
	copy(bad2[off:], []byte{0xFF, 0xFF, 0xFF, 0xFF})
	if _, err := Decode(bad2); err == nil {
		t.Error("implausible update count decoded successfully")
	}
}

func TestValidate(t *testing.T) {
	good := sampleMessage()
	if err := good.Validate(); err != nil {
		t.Errorf("good message invalid: %v", err)
	}
	for _, bad := range []Update{
		{Entry: -1, First: 0, Count: 1, Data: []byte{1}},
		{Entry: 0, First: -1, Count: 1, Data: []byte{1}},
		{Entry: 0, First: 0, Count: 0},
		{Entry: 0, First: 0, Count: 2, Data: []byte{1, 2, 3}},
	} {
		m := &Message{Kind: KindLockGrant, Updates: []Update{bad}}
		if err := m.Validate(); err == nil {
			t.Errorf("update %+v validated", bad)
		}
	}
}

func TestUpdateBytes(t *testing.T) {
	if got := UpdateBytes(sampleMessage().Updates); got != 16 {
		t.Errorf("UpdateBytes = %d, want 16", got)
	}
	if got := UpdateBytes(nil); got != 0 {
		t.Errorf("UpdateBytes(nil) = %d", got)
	}
}

func TestKindStrings(t *testing.T) {
	for k := KindInvalid; k < numKinds; k++ {
		if k.String() == "" {
			t.Errorf("kind %d has empty name", k)
		}
	}
	if Kind(200).String() != "Kind(200)" {
		t.Errorf("out-of-range kind name = %q", Kind(200).String())
	}
}

// randomMessage builds an arbitrary valid message for round-trip fuzzing.
func randomMessage(r *rand.Rand) *Message {
	m := &Message{
		Kind:     Kind(1 + r.Intn(int(numKinds)-1)),
		Seq:      r.Uint64(),
		Rank:     int32(r.Intn(100)),
		Mutex:    int32(r.Intn(100)),
		Platform: []string{"linux-x86", "solaris-sparc", ""}[r.Intn(3)],
		Base:     r.Uint64(),
	}
	for i := 0; i < r.Intn(5); i++ {
		n := r.Intn(64)
		data := make([]byte, n)
		r.Read(data)
		m.Updates = append(m.Updates, Update{
			Entry: int32(r.Intn(10)),
			First: int32(r.Intn(1000)),
			Count: int32(1 + r.Intn(100)),
			Tag:   "(4,10)",
			Data:  data,
		})
	}
	if r.Intn(3) == 0 {
		m.Err = "skeleton slot busy"
	}
	if r.Intn(4) == 0 {
		m.Addr = "home-2"
	}
	m.Proto = uint8(r.Intn(2))
	m.Flags = uint8(r.Intn(4))
	if r.Intn(2) == 0 {
		frame := make([]byte, r.Intn(64))
		r.Read(frame)
		m.State = &ThreadState{PC: int64(r.Intn(1 << 30)), FrameTag: "(4,1)(0,0)", Frame: frame}
		if r.Intn(2) == 0 {
			extra := make([]byte, r.Intn(32))
			r.Read(extra)
			m.State.ExtraTag = "(1,32)"
			m.State.Extra = extra
		}
	}
	m.Shard = int32(r.Intn(8)) - 1
	for i := 0; i < r.Intn(4); i++ {
		m.Dir = append(m.Dir, DirEntry{
			Object: int32(r.Intn(16)),
			Lock:   r.Intn(2) == 0,
			Shard:  int32(r.Intn(8)),
			Ver:    r.Uint64(),
		})
	}
	for i := 0; i < r.Intn(4); i++ {
		m.Heat = append(m.Heat, HeatSample{Page: int32(r.Intn(64)), Faults: r.Uint32()})
	}
	return m
}

// Directory-forward frames round-trip their correction payload exactly.
func TestEncodeDecodeDirForward(t *testing.T) {
	m := &Message{
		Kind:  KindDirForward,
		Rank:  2,
		Shard: 3,
		Dir: []DirEntry{
			{Object: 5, Shard: 1, Ver: 9},
			{Object: 0, Lock: true, Shard: 2, Ver: 4},
		},
		Heat: []HeatSample{{Page: 7, Faults: 12}},
	}
	b, err := Encode(m)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(b)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(m, got) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, m)
	}
}

// Property: Decode(Encode(m)) == m for arbitrary valid messages.
func TestQuickRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m := randomMessage(r)
		b, err := Encode(m)
		if err != nil {
			return false
		}
		got, err := Decode(b)
		if err != nil {
			return false
		}
		// Normalize empty vs nil slices for comparison.
		if len(m.Updates) == 0 {
			m.Updates = nil
		}
		for i := range m.Updates {
			if len(m.Updates[i].Data) == 0 {
				m.Updates[i].Data = nil
			}
		}
		if m.State != nil && len(m.State.Frame) == 0 {
			m.State.Frame = nil
		}
		if m.State != nil && len(m.State.Extra) == 0 {
			m.State.Extra = nil
		}
		if got.State != nil && len(got.State.Frame) == 0 {
			got.State.Frame = nil
		}
		if got.State != nil && len(got.State.Extra) == 0 {
			got.State.Extra = nil
		}
		for i := range got.Updates {
			if len(got.Updates[i].Data) == 0 {
				got.Updates[i].Data = nil
			}
		}
		return reflect.DeepEqual(m, got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: Decode never panics on random byte soup.
func TestQuickDecodeNeverPanics(t *testing.T) {
	f := func(b []byte) bool {
		defer func() {
			if recover() != nil {
				t.Fatalf("Decode panicked on % x", b)
			}
		}()
		_, _ = Decode(b)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// Property: encoding is deterministic.
func TestQuickEncodeDeterministic(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m := randomMessage(r)
		a, err1 := Encode(m)
		b, err2 := Encode(m)
		return err1 == nil && err2 == nil && bytes.Equal(a, b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
