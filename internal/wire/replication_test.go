package wire

import (
	"reflect"
	"testing"
)

func TestEncodeDecodeHeartbeat(t *testing.T) {
	for _, m := range []*Message{
		{Kind: KindPing, Seq: 17, Rank: -1, Mutex: -1},
		{Kind: KindPong, Seq: 17, Rank: 3},
	} {
		b, err := Encode(m)
		if err != nil {
			t.Fatalf("%v: %v", m.Kind, err)
		}
		got, err := Decode(b)
		if err != nil {
			t.Fatalf("%v: %v", m.Kind, err)
		}
		if !reflect.DeepEqual(m, got) {
			t.Errorf("%v round trip mismatch:\n got %+v\nwant %+v", m.Kind, got, m)
		}
	}
}

func TestEncodeDecodeReplication(t *testing.T) {
	m := &Message{
		Kind:  KindReplicate,
		Seq:   9,
		Rank:  -1,
		Mutex: 2,
		Rep: &Replication{
			Seq:      9,
			Event:    RepInit,
			Rank:     -1,
			Mutex:    2,
			Platform: "solaris-sparc",
			Base:     0x40058000,
			Image:    []byte{1, 2, 3, 4, 5, 6, 7, 8},
			Tag:      "(4,-1)(4,3)",
			Dirty:    true,
			Proto:    1,
			Nthreads: 4,
			Updates: []Update{
				{Entry: 1, First: 2, Count: 2, Tag: "(4,2)", Data: []byte{0, 0, 0, 1, 0, 0, 0, 2}},
			},
			Held:     []RepPair{{Rank: 1, Seq: 0}, {Rank: 2, Seq: 5}},
			Applied:  []RepPair{{Rank: 0, Seq: 12}, {Rank: 1, Seq: 7}},
			Released: []RepPair{{Rank: 2, Seq: 3}},
			Joined:   []int32{0, 2},
		},
	}
	b, err := Encode(m)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(b)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(m, got) {
		t.Errorf("replication round trip mismatch:\n got %+v %+v\nwant %+v %+v", got, got.Rep, m, m.Rep)
	}
}

func TestEncodeDecodeReplicationAck(t *testing.T) {
	m := &Message{Kind: KindReplicateAck, Seq: 4, Rep: &Replication{Seq: 4}}
	b, err := Encode(m)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(b)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(m, got) {
		t.Errorf("ack round trip mismatch:\n got %+v %+v\nwant %+v %+v", got, got.Rep, m, m.Rep)
	}
}

func TestReplicationEventNames(t *testing.T) {
	for ev, want := range map[RepEvent]string{
		RepInit:    "rep-init",
		RepUpdate:  "rep-update",
		RepLock:    "rep-lock",
		RepUnlock:  "rep-unlock",
		RepBarrier: "rep-barrier",
		RepJoin:    "rep-join",
	} {
		if got := ev.String(); got != want {
			t.Errorf("RepEvent(%d).String() = %q, want %q", ev, got, want)
		}
	}
}
