package wire

import "testing"

// Encode/Decode are the t_pack/t_unpack kernels.

func benchMessage(updateSize, nUpdates int) *Message {
	m := &Message{
		Kind:     KindUnlockReq,
		Rank:     1,
		Platform: "solaris-sparc",
		Base:     0x40058000,
	}
	for i := 0; i < nUpdates; i++ {
		m.Updates = append(m.Updates, Update{
			Entry: int32(i % 4),
			First: int32(i * 100),
			Count: int32(updateSize / 4),
			Tag:   "(4,256)",
			Data:  make([]byte, updateSize),
		})
	}
	return m
}

func benchEncode(b *testing.B, updateSize, nUpdates int) {
	m := benchMessage(updateSize, nUpdates)
	var total int64
	for i := range m.Updates {
		total += int64(len(m.Updates[i].Data))
	}
	b.SetBytes(total)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Encode(m); err != nil {
			b.Fatal(err)
		}
	}
}

func benchDecode(b *testing.B, updateSize, nUpdates int) {
	frame, err := Encode(benchMessage(updateSize, nUpdates))
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(frame)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Decode(frame); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEncodeFewLargeUpdates(b *testing.B)  { benchEncode(b, 64*1024, 4) }
func BenchmarkEncodeManySmallUpdates(b *testing.B) { benchEncode(b, 64, 1000) }
func BenchmarkDecodeFewLargeUpdates(b *testing.B)  { benchDecode(b, 64*1024, 4) }
func BenchmarkDecodeManySmallUpdates(b *testing.B) { benchDecode(b, 64, 1000) }
