// Package apps contains the paper's evaluation workloads — matrix
// multiplication and LU decomposition (Section 5) — written against the DSD
// API exactly as a Pthreads program ported with MigThread would be: one
// global structure (Figure 4's GThV shape), three threads, lock-protected
// initialization, barrier-separated compute phases.
package apps

import (
	"fmt"
	"math/rand"

	"hetdsm/internal/dsd"
	"hetdsm/internal/tag"
)

// MatMulGThV returns the Figure 4 global structure for an n×n integer
// matrix multiplication: {void* GThP; int A[n*n]; int B[n*n]; int C[n*n];
// int n;}.
func MatMulGThV(n int) tag.Struct {
	return tag.Struct{
		Name: "GThV_t",
		Fields: []tag.Field{
			{Name: "GThP", T: tag.Pointer{}},
			{Name: "A", T: tag.IntArray(n * n)},
			{Name: "B", T: tag.IntArray(n * n)},
			{Name: "C", T: tag.IntArray(n * n)},
			{Name: "n", T: tag.Int()},
		},
	}
}

// GenIntMatrix deterministically generates the n×n input matrix used by
// both the distributed run and the sequential verifier.
func GenIntMatrix(n int, seed int64) []int64 {
	r := rand.New(rand.NewSource(seed))
	out := make([]int64, n*n)
	for i := range out {
		out[i] = int64(r.Intn(100))
	}
	return out
}

// MatMulSeq computes C = A×B sequentially; the ground truth for
// verification.
func MatMulSeq(a, b []int64, n int) []int64 {
	c := make([]int64, n*n)
	for i := 0; i < n; i++ {
		for k := 0; k < n; k++ {
			aik := a[i*n+k]
			if aik == 0 {
				continue
			}
			row := b[k*n:]
			out := c[i*n:]
			for j := 0; j < n; j++ {
				out[j] += aik * row[j]
			}
		}
	}
	return c
}

// rowsOf partitions n rows among nthreads, giving rank a contiguous block.
func rowsOf(n, nthreads, rank int) (first, count int) {
	base := n / nthreads
	extra := n % nthreads
	first = rank*base + min(rank, extra)
	count = base
	if rank < extra {
		count++
	}
	return first, count
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// MatMulThread is the per-thread body of the distributed matrix
// multiplication: rank 0 initializes A and B under the distributed lock,
// a barrier publishes them, every thread computes its block of C rows, and
// a final barrier flushes the products home.
func MatMulThread(th *dsd.Thread, rank, nthreads, n int, seedA, seedB int64) error {
	g := th.Globals()
	vA, err := g.Var("A")
	if err != nil {
		return err
	}
	vB, err := g.Var("B")
	if err != nil {
		return err
	}
	vN, err := g.Var("n")
	if err != nil {
		return err
	}

	if rank == 0 {
		if err := th.Lock(0); err != nil {
			return err
		}
		if err := vA.SetInts(0, GenIntMatrix(n, seedA)); err != nil {
			return err
		}
		if err := vB.SetInts(0, GenIntMatrix(n, seedB)); err != nil {
			return err
		}
		if err := vN.SetInt(0, int64(n)); err != nil {
			return err
		}
		if err := th.Unlock(0); err != nil {
			return err
		}
	}
	if err := th.Barrier(0); err != nil {
		return err
	}
	if err := matmulCompute(th, rank, nthreads, n); err != nil {
		return err
	}
	return th.Join()
}

// matmulCompute is the post-publish half of the workload: verify the
// published size, compute this rank's block of C rows, and flush the
// products home through the closing barrier.
func matmulCompute(th *dsd.Thread, rank, nthreads, n int) error {
	g := th.Globals()
	vA, err := g.Var("A")
	if err != nil {
		return err
	}
	vB, err := g.Var("B")
	if err != nil {
		return err
	}
	vC, err := g.Var("C")
	if err != nil {
		return err
	}
	vN, err := g.Var("n")
	if err != nil {
		return err
	}

	// Every thread sees the inputs now; check the published size.
	gotN, err := vN.Int(0)
	if err != nil {
		return err
	}
	if int(gotN) != n {
		return fmt.Errorf("apps: thread %d sees n=%d, want %d", rank, gotN, n)
	}

	first, count := rowsOf(n, nthreads, rank)
	if count > 0 {
		a, err := vA.Ints(first*n, count*n)
		if err != nil {
			return err
		}
		b, err := vB.Ints(0, n*n)
		if err != nil {
			return err
		}
		c := make([]int64, count*n)
		for i := 0; i < count; i++ {
			for k := 0; k < n; k++ {
				aik := a[i*n+k]
				if aik == 0 {
					continue
				}
				row := b[k*n:]
				out := c[i*n:]
				for j := 0; j < n; j++ {
					out[j] += aik * row[j]
				}
			}
		}
		if err := vC.SetInts(first*n, c); err != nil {
			return err
		}
	}
	return th.Barrier(0)
}

// MatMulThreadFrom resumes the matmul body at a barrier generation taken
// from a coordinated cluster checkpoint: phase 0 is a fresh run, phase 1
// resumes with the inputs already published (the compute phase remains),
// and phase 2 resumes after the products were flushed (only the join
// remains). Every resumed rank opens with a resynchronization barrier — a
// fresh replica is all zeros until its first acquire pulls the restored
// image home-to-thread, so no global may be read before that acquire, and
// every rank must take part for the barrier count to close.
func MatMulThreadFrom(th *dsd.Thread, rank, nthreads, n int, seedA, seedB int64, phase uint64) error {
	if phase == 0 {
		return MatMulThread(th, rank, nthreads, n, seedA, seedB)
	}
	if err := th.Barrier(0); err != nil {
		return err
	}
	if phase == 1 {
		if err := matmulCompute(th, rank, nthreads, n); err != nil {
			return err
		}
	}
	return th.Join()
}
