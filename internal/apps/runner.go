package apps

import (
	"fmt"
	"sync"
	"time"

	"hetdsm/internal/dir"
	"hetdsm/internal/dsd"
	"hetdsm/internal/platform"
	"hetdsm/internal/stats"
	"hetdsm/internal/tag"
	"hetdsm/internal/vmem"
	"hetdsm/internal/wal"
	"hetdsm/internal/wire"
)

// Pair is a platform pairing in the paper's notation: the home machine and
// the machine hosting the two migrated threads.
type Pair struct {
	// Label is the paper's two-letter name ("LL", "SS", "SL").
	Label string
	// Home is the home node's platform (thread 0 stays here).
	Home *platform.Platform
	// Remote hosts threads 1 and 2.
	Remote *platform.Platform
}

// Pairs returns the paper's three evaluation pairs: Linux/Linux,
// Solaris/Solaris and Solaris/Linux.
func Pairs() []Pair {
	return []Pair{
		{Label: "LL", Home: platform.LinuxX86, Remote: platform.LinuxX86},
		{Label: "SS", Home: platform.SolarisSPARC, Remote: platform.SolarisSPARC},
		{Label: "SL", Home: platform.SolarisSPARC, Remote: platform.LinuxX86},
	}
}

// ExtPairs returns the extension pairings beyond the paper's testbed:
// word-size heterogeneity (ILP32 vs LP64), where scalars must not only be
// byte-swapped but resized with sign extension and pointers change width.
func ExtPairs() []Pair {
	return []Pair{
		{Label: "S64L", Home: platform.SolarisSPARC64, Remote: platform.LinuxX86},
		{Label: "L64S", Home: platform.LinuxX8664, Remote: platform.SolarisSPARC},
		{Label: "S64L64", Home: platform.SolarisSPARC64, Remote: platform.LinuxX8664},
	}
}

// PairByLabel resolves a pair by its label, searching the paper pairs and
// the extension pairs.
func PairByLabel(label string) (Pair, bool) {
	for _, p := range append(Pairs(), ExtPairs()...) {
		if p.Label == label {
			return p, true
		}
	}
	return Pair{}, false
}

// Config describes one experiment run.
type Config struct {
	// Workload is "matmul" or "lu".
	Workload string
	// N is the matrix dimension.
	N int
	// Pair selects the platform pairing.
	Pair Pair
	// Threads is the worker count; the paper uses 3 (default when 0).
	Threads int
	// Opts tunes the DSD pipeline.
	Opts dsd.Options
	// Iters is the sweep count for the jacobi workload (default 10).
	Iters int
	// Verify compares the distributed result against a sequential run.
	Verify bool
	// Seed feeds the deterministic input generators.
	Seed int64
	// OnCluster, when non-nil, runs after the home and all threads are
	// built but before the workload starts — the hook dsmrun uses to
	// point a live diagnostics endpoint at the cluster.
	OnCluster func(home *dsd.Home, threads []*dsd.Thread)
	// Shards partitions the home across this many directory shards
	// (internal/dir); 0 or 1 runs the classic single home. Checkpoint and
	// restore are single-home only.
	Shards int
	// MigrateThreshold enables heat-driven page re-homing in sharded runs:
	// an entry whose accumulated faults cross it is moved to its hottest
	// rank's affinity shard. 0 leaves the static hash in place.
	MigrateThreshold uint64
	// MigrateEvery is the background migration planner period for sharded
	// runs (default 2ms when MigrateThreshold > 0).
	MigrateEvery time.Duration
	// ShardWALDir gives every shard a write-ahead log under this directory
	// (sharded runs only).
	ShardWALDir string
	// OnShards is OnCluster's sharded counterpart, handed the directory
	// cluster instead of a single home.
	OnShards func(cl *dir.Cluster, threads []*dsd.Thread)
	// CheckpointDir, with CheckpointEvery > 0, makes the home write a
	// coordinated cluster checkpoint there every CheckpointEvery barrier
	// generations (matmul and lu only).
	CheckpointDir   string
	CheckpointEvery int
	// Restore resumes from the cluster checkpoint in CheckpointDir: the
	// home image is converted receiver-makes-right onto Pair.Home and the
	// workload bodies rejoin at the checkpointed barrier generation.
	Restore bool
}

// Result is one experiment's measurements.
type Result struct {
	// Config echoes the run parameters.
	Config Config
	// Wall is the end-to-end wall time.
	Wall time.Duration
	// Agg is the cluster-wide Eq. 1 breakdown (home + all threads).
	Agg [stats.NumPhases]time.Duration
	// Home is the home-side breakdown alone; its Conv component is the
	// paper's t_conv ("time to update the copy at home node").
	Home [stats.NumPhases]time.Duration
	// ByPlatform groups the thread-side breakdowns by platform name —
	// the per-machine series of Figures 8 and 9.
	ByPlatform map[string][stats.NumPhases]time.Duration
	// UpdateBytes is the total payload volume that crossed the DSD.
	UpdateBytes uint64
	// PageFaults is the total number of software write traps taken across
	// all replicas — the mprotect/SEGV cost the paper's design amortizes
	// to one per page per window.
	PageFaults uint64
	// Verified reports whether the result matched the sequential run
	// (only meaningful when Config.Verify).
	Verified bool
	// Heat is the cluster-wide page-heat profile: every replica's
	// fault/diff counters merged page-wise, hottest page first, with
	// false-sharing suspects flagged.
	Heat vmem.HeatReport
	// Dir carries the sharded directory's migration and forwarding
	// counters; nil for single-home runs.
	Dir *dir.Stats
}

// AggTotal returns Cshare: the sum of the aggregate components.
func (r *Result) AggTotal() time.Duration {
	var t time.Duration
	for _, d := range r.Agg {
		t += d
	}
	return t
}

// Run executes one experiment: a home on cfg.Pair.Home, thread 0 on the
// home platform, and threads 1..Threads-1 on the remote platform — the
// post-migration configuration of the paper's tests (three threads, two
// migrated).
func Run(cfg Config) (*Result, error) {
	if cfg.Threads == 0 {
		cfg.Threads = 3
	}
	if cfg.Threads < 1 {
		return nil, fmt.Errorf("apps: %d threads", cfg.Threads)
	}
	if cfg.N < 2 {
		return nil, fmt.Errorf("apps: matrix size %d too small", cfg.N)
	}
	if cfg.Opts.Base == 0 {
		cfg.Opts = dsd.DefaultOptions()
	}

	if (cfg.Restore || cfg.CheckpointEvery > 0) && cfg.Workload != "matmul" && cfg.Workload != "lu" {
		return nil, fmt.Errorf("apps: checkpoint/restore supports matmul and lu only, not %q", cfg.Workload)
	}
	if cfg.Shards > 1 && (cfg.Restore || cfg.CheckpointEvery > 0) {
		return nil, fmt.Errorf("apps: coordinated checkpoint/restore is single-home only; run with 1 shard")
	}

	// Restore resumes from a coordinated cluster cut; phase is the barrier
	// generation the cut was taken at and basePhase renumbers generations
	// of the resumed run so further cuts continue the logical count.
	var cut *wal.Cut
	var phase uint64
	if cfg.Restore {
		if cfg.CheckpointDir == "" {
			return nil, fmt.Errorf("apps: restore needs a checkpoint dir")
		}
		var err error
		if cut, err = wal.LoadCut(cfg.CheckpointDir); err != nil {
			return nil, err
		}
		if len(cut.Ranks) != cfg.Threads {
			return nil, fmt.Errorf("apps: checkpoint has %d ranks, run has %d threads",
				len(cut.Ranks), cfg.Threads)
		}
		phase = cut.Gen
	}

	var gthv tag.Struct
	var body func(th *dsd.Thread, rank int) error
	switch cfg.Workload {
	case "matmul":
		gthv = MatMulGThV(cfg.N)
		body = func(th *dsd.Thread, rank int) error {
			return MatMulThreadFrom(th, rank, cfg.Threads, cfg.N, cfg.Seed, cfg.Seed+1, phase)
		}
	case "lu":
		gthv = LUGThV(cfg.N)
		body = func(th *dsd.Thread, rank int) error {
			return LUThreadFrom(th, rank, cfg.Threads, cfg.N, cfg.Seed, phase)
		}
	case "jacobi":
		if cfg.Iters == 0 {
			cfg.Iters = 10
		}
		gthv = JacobiGThV(cfg.N)
		body = func(th *dsd.Thread, rank int) error {
			return JacobiThread(th, rank, cfg.Threads, cfg.N, cfg.Iters, cfg.Seed)
		}
	case "transfer":
		// N is the account count here; Iters the per-thread op count.
		if cfg.Iters == 0 {
			cfg.Iters = 100
		}
		if cfg.N%TransferStripe != 0 {
			return nil, fmt.Errorf("apps: transfer accounts %d must be a multiple of %d", cfg.N, TransferStripe)
		}
		gthv = TransferGThV(cfg.N)
		body = func(th *dsd.Thread, rank int) error {
			return TransferThread(th, rank, cfg.Threads, cfg.N, cfg.Iters, cfg.Seed)
		}
	default:
		return nil, fmt.Errorf("apps: unknown workload %q", cfg.Workload)
	}

	if cfg.Shards > 1 {
		return runSharded(cfg, gthv, body)
	}

	if cfg.CheckpointEvery > 0 {
		if cfg.CheckpointDir == "" {
			return nil, fmt.Errorf("apps: checkpointing needs a checkpoint dir")
		}
		rankPlats := make(map[int32]string, cfg.Threads)
		for rank := 0; rank < cfg.Threads; rank++ {
			p := cfg.Pair.Remote
			if rank == 0 {
				p = cfg.Pair.Home
			}
			rankPlats[int32(rank)] = p.Name
		}
		// A resumed run's local generation 1 is the resynchronization
		// barrier, which re-opens the checkpointed generation.
		var base uint64
		if cfg.Restore {
			base = phase - 1
		}
		dir := cfg.CheckpointDir
		cfg.Opts.CheckpointEvery = cfg.CheckpointEvery
		cfg.Opts.CheckpointSink = func(snap *wire.Replication, gen uint64) {
			// A failed or torn cut is never loadable (the manifest rename
			// commits it), so an error here only loses one checkpoint.
			_ = wal.WriteCut(dir, snap, gen+base, rankPlats)
		}
	}

	home, err := dsd.NewHome(gthv, cfg.Pair.Home, cfg.Threads, cfg.Opts)
	if err != nil {
		return nil, err
	}
	if cut != nil {
		if err := home.Restore(cut.Snap.Image, cut.Snap.Tag, cut.Snap.Platform, cut.Snap.Base); err != nil {
			return nil, fmt.Errorf("apps: restoring checkpoint: %w", err)
		}
	}
	threads := make([]*dsd.Thread, cfg.Threads)
	for rank := 0; rank < cfg.Threads; rank++ {
		p := cfg.Pair.Remote
		if rank == 0 {
			p = cfg.Pair.Home
		}
		th, err := home.LocalThread(int32(rank), p, cfg.Opts)
		if err != nil {
			return nil, err
		}
		threads[rank] = th
	}
	if cfg.OnCluster != nil {
		cfg.OnCluster(home, threads)
	}

	start := time.Now()
	errs := make([]error, cfg.Threads)
	var wg sync.WaitGroup
	for rank, th := range threads {
		wg.Add(1)
		go func(rank int, th *dsd.Thread) {
			defer wg.Done()
			errs[rank] = body(th, rank)
		}(rank, th)
	}
	wg.Wait()
	for rank, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("apps: thread %d: %w", rank, err)
		}
	}
	home.Wait()
	wall := time.Since(start)

	res := &Result{
		Config:     cfg,
		Wall:       wall,
		Home:       home.Stats().Snapshot(),
		ByPlatform: make(map[string][stats.NumPhases]time.Duration),
	}
	var agg stats.Breakdown
	agg.Merge(home.Stats())
	res.UpdateBytes = home.Stats().Bytes(stats.Conv)
	for rank, th := range threads {
		res.PageFaults += th.Segment().Faults()
		res.Heat.Merge(th.Heat())
		agg.Merge(th.Stats())
		snap := th.Stats().Snapshot()
		key := th.Platform().Name
		cur := res.ByPlatform[key]
		for i := range cur {
			cur[i] += snap[i]
		}
		res.ByPlatform[key] = cur
		_ = rank
	}
	res.Agg = agg.Snapshot()

	if cfg.Verify {
		ok, err := verify(cfg, home.Globals())
		if err != nil {
			return nil, err
		}
		res.Verified = ok
		if !ok {
			return res, fmt.Errorf("apps: %s N=%d %s: distributed result does not match sequential",
				cfg.Workload, cfg.N, cfg.Pair.Label)
		}
	}
	return res, nil
}

func verify(cfg Config, g *dsd.Globals) (bool, error) {
	switch cfg.Workload {
	case "matmul":
		want := MatMulSeq(GenIntMatrix(cfg.N, cfg.Seed), GenIntMatrix(cfg.N, cfg.Seed+1), cfg.N)
		got, err := g.MustVar("C").Ints(0, cfg.N*cfg.N)
		if err != nil {
			return false, err
		}
		for i := range want {
			if got[i] != want[i] {
				return false, nil
			}
		}
		return true, nil
	case "lu":
		want := GenLUMatrix(cfg.N, cfg.Seed)
		LUSeq(want, cfg.N)
		got, err := g.MustVar("A").Float64s(0, cfg.N*cfg.N)
		if err != nil {
			return false, err
		}
		for i := range want {
			if got[i] != want[i] {
				return false, nil
			}
		}
		return true, nil
	case "transfer":
		want := TransferExpected(cfg.N, cfg.Iters, cfg.Threads, cfg.Seed)
		got, err := g.MustVar("balances").Ints(0, cfg.N)
		if err != nil {
			return false, err
		}
		for i := range want {
			if got[i] != want[i] {
				return false, nil
			}
		}
		return true, nil
	case "jacobi":
		want := JacobiSeq(GenJacobiGrid(cfg.N, cfg.Seed), cfg.N, cfg.Iters)
		// The final sweep wrote into B when Iters is odd, A when even.
		buf := "A"
		if cfg.Iters%2 == 1 {
			buf = "B"
		}
		got, err := g.MustVar(buf).Float64s(0, cfg.N*cfg.N)
		if err != nil {
			return false, err
		}
		for i := range want {
			if got[i] != want[i] {
				return false, nil
			}
		}
		return true, nil
	default:
		return false, fmt.Errorf("apps: unknown workload %q", cfg.Workload)
	}
}
