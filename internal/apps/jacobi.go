package apps

import (
	"fmt"
	"math/rand"

	"hetdsm/internal/dsd"
	"hetdsm/internal/tag"
)

// Jacobi iteration — the barrier-per-sweep stencil workload every DSM of
// the paper's era was judged on (TreadMarks, Strings). It is not in the
// paper's evaluation; we include it as an extension workload because its
// sharing pattern is the opposite of matmul's: every iteration every
// thread rewrites its whole block and reads its neighbours' halo rows, so
// the DSD's per-barrier update volume is high and steady.

// JacobiGThV returns the global structure: two n×n double grids (source
// and destination roles alternate each sweep) plus the size.
func JacobiGThV(n int) tag.Struct {
	return tag.Struct{
		Name: "GThV_t",
		Fields: []tag.Field{
			{Name: "GThP", T: tag.Pointer{}},
			{Name: "A", T: tag.DoubleArray(n * n)},
			{Name: "B", T: tag.DoubleArray(n * n)},
			{Name: "n", T: tag.Int()},
		},
	}
}

// GenJacobiGrid generates the deterministic initial grid: hot boundary,
// cold interior.
func GenJacobiGrid(n int, seed int64) []float64 {
	r := rand.New(rand.NewSource(seed))
	g := make([]float64, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == 0 || j == 0 || i == n-1 || j == n-1 {
				g[i*n+j] = 100 + r.Float64()
			}
		}
	}
	return g
}

// JacobiSeq runs iters sweeps sequentially and returns the final grid (the
// buffer holding the last result).
func JacobiSeq(grid []float64, n, iters int) []float64 {
	src := append([]float64(nil), grid...)
	dst := append([]float64(nil), grid...)
	for it := 0; it < iters; it++ {
		for i := 1; i < n-1; i++ {
			for j := 1; j < n-1; j++ {
				dst[i*n+j] = 0.25 * (src[(i-1)*n+j] + src[(i+1)*n+j] + src[i*n+j-1] + src[i*n+j+1])
			}
		}
		src, dst = dst, src
	}
	return src
}

// JacobiThread is the per-thread body: rank 0 initializes the grids, then
// every thread sweeps its block of interior rows, alternating the A/B
// roles, with a barrier after every sweep publishing the halo rows.
func JacobiThread(th *dsd.Thread, rank, nthreads, n, iters int, seed int64) error {
	g := th.Globals()
	vA, err := g.Var("A")
	if err != nil {
		return err
	}
	vB, err := g.Var("B")
	if err != nil {
		return err
	}
	vN, err := g.Var("n")
	if err != nil {
		return err
	}

	if rank == 0 {
		grid := GenJacobiGrid(n, seed)
		if err := th.Lock(0); err != nil {
			return err
		}
		if err := vA.SetFloat64s(0, grid); err != nil {
			return err
		}
		if err := vB.SetFloat64s(0, grid); err != nil {
			return err
		}
		if err := vN.SetInt(0, int64(n)); err != nil {
			return err
		}
		if err := th.Unlock(0); err != nil {
			return err
		}
	}
	if err := th.Barrier(0); err != nil {
		return err
	}
	if gotN, err := vN.Int(0); err != nil {
		return err
	} else if int(gotN) != n {
		return fmt.Errorf("apps: thread %d sees n=%d, want %d", rank, gotN, n)
	}

	// Interior rows 1..n-2 are dealt in contiguous blocks.
	first, count := rowsOf(n-2, nthreads, rank)
	first++ // shift into the interior
	for it := 0; it < iters; it++ {
		src, dst := vA, vB
		if it%2 == 1 {
			src, dst = vB, vA
		}
		if count > 0 {
			// Read my block plus one halo row on each side.
			lo := first - 1
			rows := count + 2
			in, err := src.Float64s(lo*n, rows*n)
			if err != nil {
				return err
			}
			out := make([]float64, count*n)
			for i := 0; i < count; i++ {
				gi := first + i // global row
				// Local row index into `in` is i+1.
				for j := 1; j < n-1; j++ {
					out[i*n+j] = 0.25 * (in[i*n+j] + in[(i+2)*n+j] + in[(i+1)*n+j-1] + in[(i+1)*n+j+1])
				}
				// Boundary columns keep their fixed values.
				out[i*n] = in[(i+1)*n]
				out[i*n+n-1] = in[(i+1)*n+n-1]
				_ = gi
			}
			if err := dst.SetFloat64s(first*n, out); err != nil {
				return err
			}
		}
		if err := th.Barrier(0); err != nil {
			return err
		}
	}
	return th.Join()
}
