package apps

import (
	"fmt"
	"sync"
	"time"

	"hetdsm/internal/dir"
	"hetdsm/internal/dsd"
	"hetdsm/internal/stats"
	"hetdsm/internal/tag"
)

// runSharded executes a workload against a multi-home sharded directory
// instead of a single home: the same thread bodies run unchanged (threads
// cannot tell a proxy from a home), results are verified against the
// stitched master image, and the background migration planner re-homes hot
// entries while the workload runs.
func runSharded(cfg Config, gthv tag.Struct, body func(th *dsd.Thread, rank int) error) (*Result, error) {
	cl, err := dir.NewCluster(gthv, cfg.Pair.Home, cfg.Threads, dir.Config{
		Shards:           cfg.Shards,
		MigrateThreshold: cfg.MigrateThreshold,
		Opts:             cfg.Opts,
		WALDir:           cfg.ShardWALDir,
	})
	if err != nil {
		return nil, err
	}
	defer cl.Close()

	threads := make([]*dsd.Thread, cfg.Threads)
	for rank := 0; rank < cfg.Threads; rank++ {
		p := cfg.Pair.Remote
		if rank == 0 {
			p = cfg.Pair.Home
		}
		th, err := cl.NewThread(int32(rank), p, cfg.Opts)
		if err != nil {
			return nil, err
		}
		threads[rank] = th
	}
	if cfg.OnShards != nil {
		cfg.OnShards(cl, threads)
	}
	if cfg.MigrateThreshold > 0 {
		every := cfg.MigrateEvery
		if every <= 0 {
			every = 2 * time.Millisecond
		}
		cl.StartMigrator(every)
	}

	start := time.Now()
	errs := make([]error, cfg.Threads)
	var wg sync.WaitGroup
	for rank, th := range threads {
		wg.Add(1)
		go func(rank int, th *dsd.Thread) {
			defer wg.Done()
			errs[rank] = body(th, rank)
		}(rank, th)
	}
	wg.Wait()
	for rank, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("apps: thread %d: %w", rank, err)
		}
	}
	cl.Wait()
	cl.StopMigrator()
	if cfg.MigrateThreshold > 0 {
		// Drain heat accrued after the last tick so short runs still show
		// their re-homings in the counters.
		if _, err := cl.PumpMigrations(); err != nil {
			return nil, err
		}
	}
	wall := time.Since(start)

	res := &Result{
		Config:     cfg,
		Wall:       wall,
		ByPlatform: make(map[string][stats.NumPhases]time.Duration),
	}
	var agg, homeSide stats.Breakdown
	for i := 0; i < cl.Shards(); i++ {
		hs := cl.Home(i).Stats()
		agg.Merge(hs)
		homeSide.Merge(hs)
		res.UpdateBytes += hs.Bytes(stats.Conv)
	}
	res.Home = homeSide.Snapshot()
	for _, th := range threads {
		res.PageFaults += th.Segment().Faults()
		res.Heat.Merge(th.Heat())
		agg.Merge(th.Stats())
		snap := th.Stats().Snapshot()
		key := th.Platform().Name
		cur := res.ByPlatform[key]
		for i := range cur {
			cur[i] += snap[i]
		}
		res.ByPlatform[key] = cur
	}
	res.Agg = agg.Snapshot()
	st := cl.Stats()
	res.Dir = &st

	if cfg.Verify {
		g, err := cl.MergedGlobals()
		if err != nil {
			return nil, err
		}
		ok, err := verify(cfg, g)
		if err != nil {
			return nil, err
		}
		res.Verified = ok
		if !ok {
			return res, fmt.Errorf("apps: %s N=%d %s shards=%d: distributed result does not match sequential",
				cfg.Workload, cfg.N, cfg.Pair.Label, cfg.Shards)
		}
	}
	return res, nil
}
