package apps

import (
	"testing"

	"hetdsm/internal/dsd"
	"hetdsm/internal/stats"
)

func TestRowsOf(t *testing.T) {
	// Partitions cover every row exactly once for various n/nthreads.
	for _, n := range []int{1, 2, 3, 7, 99, 100} {
		for _, nt := range []int{1, 2, 3, 4} {
			covered := make([]int, n)
			total := 0
			for r := 0; r < nt; r++ {
				first, count := rowsOf(n, nt, r)
				total += count
				for i := first; i < first+count; i++ {
					covered[i]++
				}
			}
			if total != n {
				t.Errorf("n=%d nt=%d: total %d", n, nt, total)
			}
			for i, c := range covered {
				if c != 1 {
					t.Errorf("n=%d nt=%d: row %d covered %d times", n, nt, i, c)
				}
			}
		}
	}
}

func TestMatMulSeqKnownProduct(t *testing.T) {
	// [[1,2],[3,4]] x [[5,6],[7,8]] = [[19,22],[43,50]]
	a := []int64{1, 2, 3, 4}
	b := []int64{5, 6, 7, 8}
	got := MatMulSeq(a, b, 2)
	want := []int64{19, 22, 43, 50}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("C[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestLUSeqReconstructs(t *testing.T) {
	const n = 8
	orig := GenLUMatrix(n, 42)
	a := append([]float64(nil), orig...)
	LUSeq(a, n)
	// Reconstruct L*U and compare with the original within tolerance.
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			sum := 0.0
			for k := 0; k <= min(i, j); k++ {
				var l, u float64
				if k == i {
					l = 1
				} else {
					l = a[i*n+k]
				}
				u = a[k*n+j]
				if k <= j && k <= i {
					sum += l * u
				}
			}
			diff := sum - orig[i*n+j]
			if diff < -1e-9 || diff > 1e-9 {
				t.Fatalf("LU reconstruction off at (%d,%d): %g vs %g", i, j, sum, orig[i*n+j])
			}
		}
	}
}

func TestGenMatricesDeterministic(t *testing.T) {
	a1 := GenIntMatrix(10, 7)
	a2 := GenIntMatrix(10, 7)
	for i := range a1 {
		if a1[i] != a2[i] {
			t.Fatal("GenIntMatrix not deterministic")
		}
	}
	b1 := GenLUMatrix(10, 7)
	b2 := GenLUMatrix(10, 7)
	for i := range b1 {
		if b1[i] != b2[i] {
			t.Fatal("GenLUMatrix not deterministic")
		}
	}
}

func TestRunMatMulAllPairs(t *testing.T) {
	for _, pair := range Pairs() {
		pair := pair
		t.Run(pair.Label, func(t *testing.T) {
			res, err := Run(Config{Workload: "matmul", N: 24, Pair: pair, Verify: true, Seed: 1})
			if err != nil {
				t.Fatal(err)
			}
			if !res.Verified {
				t.Fatal("result not verified")
			}
			if res.AggTotal() == 0 {
				t.Error("no Cshare time recorded")
			}
			if res.UpdateBytes == 0 {
				t.Error("no update bytes recorded")
			}
		})
	}
}

func TestRunLUAllPairs(t *testing.T) {
	for _, pair := range Pairs() {
		pair := pair
		t.Run(pair.Label, func(t *testing.T) {
			res, err := Run(Config{Workload: "lu", N: 16, Pair: pair, Verify: true, Seed: 2})
			if err != nil {
				t.Fatal(err)
			}
			if !res.Verified {
				t.Fatal("LU result not verified")
			}
		})
	}
}

func TestHeterogeneousConversionCostVisible(t *testing.T) {
	// The SL pair must record strictly more home-side conversion time
	// behaviourally: its conversions cannot take the memcpy fast path.
	// Rather than compare wall times (noisy), check the structural
	// signal: conversion bytes flow in both cases, and the homogeneous
	// pair's Conv duration is small relative to the heterogeneous one
	// over the same workload at a decent size.
	ll, err := Run(Config{Workload: "matmul", N: 48, Pair: mustPair(t, "LL"), Verify: true, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	sl, err := Run(Config{Workload: "matmul", N: 48, Pair: mustPair(t, "SL"), Verify: true, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if sl.Home[stats.Conv] <= ll.Home[stats.Conv] {
		t.Logf("warning: SL home conv %v <= LL %v (timing noise possible at small N)",
			sl.Home[stats.Conv], ll.Home[stats.Conv])
	}
	// Same data volume must have crossed in both configurations.
	if ll.UpdateBytes != sl.UpdateBytes {
		t.Errorf("update bytes differ: LL=%d SL=%d", ll.UpdateBytes, sl.UpdateBytes)
	}
}

func mustPair(t *testing.T, label string) Pair {
	t.Helper()
	p, ok := PairByLabel(label)
	if !ok {
		t.Fatalf("no pair %q", label)
	}
	return p
}

func TestRunWithAblations(t *testing.T) {
	for _, mod := range []struct {
		name string
		f    func(*dsd.Options)
	}{
		{"no-coalesce", func(o *dsd.Options) { o.Coalesce = false }},
		{"no-whole-array", func(o *dsd.Options) { o.WholeArrayThreshold = 0 }},
		{"word-diff", func(o *dsd.Options) { o.Diff = 1 }},
	} {
		mod := mod
		t.Run(mod.name, func(t *testing.T) {
			opts := dsd.DefaultOptions()
			mod.f(&opts)
			res, err := Run(Config{Workload: "matmul", N: 20, Pair: mustPair(t, "SL"), Opts: opts, Verify: true, Seed: 4})
			if err != nil {
				t.Fatal(err)
			}
			if !res.Verified {
				t.Fatal("ablation broke correctness")
			}
		})
	}
}

func TestRunRejectsBadConfig(t *testing.T) {
	if _, err := Run(Config{Workload: "sort", N: 10, Pair: mustPair(t, "LL")}); err == nil {
		t.Error("unknown workload must fail")
	}
	if _, err := Run(Config{Workload: "matmul", N: 1, Pair: mustPair(t, "LL")}); err == nil {
		t.Error("tiny N must fail")
	}
	if _, err := Run(Config{Workload: "matmul", N: 10, Pair: mustPair(t, "LL"), Threads: -1}); err == nil {
		t.Error("negative threads must fail")
	}
}

func TestRunSingleThread(t *testing.T) {
	res, err := Run(Config{Workload: "matmul", N: 12, Pair: mustPair(t, "LL"), Threads: 1, Verify: true, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Verified {
		t.Error("single-thread run wrong")
	}
}

func TestByPlatformBreakdownPopulated(t *testing.T) {
	res, err := Run(Config{Workload: "matmul", N: 24, Pair: mustPair(t, "SL"), Verify: true, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	// SL: home thread on solaris-sparc, two workers on linux-x86.
	if len(res.ByPlatform) != 2 {
		t.Fatalf("ByPlatform has %d platforms: %v", len(res.ByPlatform), res.ByPlatform)
	}
	for _, name := range []string{"solaris-sparc", "linux-x86"} {
		bd, ok := res.ByPlatform[name]
		if !ok {
			t.Errorf("missing platform %s", name)
			continue
		}
		if bd[stats.Index] == 0 && bd[stats.Pack] == 0 {
			t.Errorf("%s recorded no release-side work", name)
		}
	}
}

func TestJacobiSeqConverges(t *testing.T) {
	const n = 16
	grid := GenJacobiGrid(n, 5)
	out := JacobiSeq(grid, n, 50)
	// Boundaries unchanged.
	for j := 0; j < n; j++ {
		if out[j] != grid[j] || out[(n-1)*n+j] != grid[(n-1)*n+j] {
			t.Fatalf("boundary row changed at column %d", j)
		}
	}
	// Interior warmed up from zero toward the boundary values.
	center := out[(n/2)*n+n/2]
	if center <= 0 || center >= 101 {
		t.Errorf("center = %g, expected within (0, 101)", center)
	}
	// More sweeps move the center monotonically toward equilibrium.
	out2 := JacobiSeq(grid, n, 100)
	if out2[(n/2)*n+n/2] < center {
		t.Errorf("center cooled down: %g -> %g", center, out2[(n/2)*n+n/2])
	}
}

func TestRunJacobiAllPairs(t *testing.T) {
	for _, pair := range Pairs() {
		pair := pair
		t.Run(pair.Label, func(t *testing.T) {
			res, err := Run(Config{Workload: "jacobi", N: 20, Iters: 7, Pair: pair, Verify: true, Seed: 3})
			if err != nil {
				t.Fatal(err)
			}
			if !res.Verified {
				t.Fatal("jacobi result not verified")
			}
		})
	}
}

func TestRunJacobiEvenAndOddIters(t *testing.T) {
	for _, iters := range []int{4, 5} {
		res, err := Run(Config{Workload: "jacobi", N: 16, Iters: iters, Pair: mustPair(t, "SL"), Verify: true, Seed: 8})
		if err != nil {
			t.Fatalf("iters=%d: %v", iters, err)
		}
		if !res.Verified {
			t.Fatalf("iters=%d not verified", iters)
		}
	}
}

func TestRunAcrossWordSizes(t *testing.T) {
	// The extension pairs mix ILP32 and LP64: the pointer member changes
	// width and C long would too. All three workloads must stay exact.
	for _, pair := range ExtPairs() {
		pair := pair
		t.Run(pair.Label, func(t *testing.T) {
			for _, wl := range []string{"matmul", "lu", "jacobi"} {
				res, err := Run(Config{Workload: wl, N: 16, Iters: 5, Pair: pair, Verify: true, Seed: 11})
				if err != nil {
					t.Fatalf("%s: %v", wl, err)
				}
				if !res.Verified {
					t.Fatalf("%s not verified on %s", wl, pair.Label)
				}
			}
		})
	}
}

func TestRunTransferAllPairs(t *testing.T) {
	// The multi-lock workload: stripe mutexes held concurrently by
	// different threads, with nested acquisition. Exact balances and
	// conserved total across every platform pair.
	for _, pair := range Pairs() {
		pair := pair
		t.Run(pair.Label, func(t *testing.T) {
			res, err := Run(Config{Workload: "transfer", N: 64, Iters: 60, Pair: pair, Verify: true, Seed: 13})
			if err != nil {
				t.Fatal(err)
			}
			if !res.Verified {
				t.Fatal("transfer result not verified")
			}
		})
	}
}

func TestTransferConservesTotal(t *testing.T) {
	init := TransferInitial(64, 13)
	final := TransferExpected(64, 60, 3, 13)
	var a, b int64
	for i := range init {
		a += init[i]
		b += final[i]
	}
	if a != b {
		t.Errorf("total not conserved: %d -> %d", a, b)
	}
	// And the plans actually move money.
	moved := false
	for i := range init {
		if init[i] != final[i] {
			moved = true
		}
	}
	if !moved {
		t.Error("no transfers planned (vacuous test)")
	}
}

func TestRunTransferInvalidate(t *testing.T) {
	opts := dsd.DefaultOptions()
	opts.Protocol = dsd.ProtocolInvalidate
	res, err := Run(Config{Workload: "transfer", N: 64, Iters: 60, Pair: mustPair(t, "SL"), Opts: opts, Verify: true, Seed: 14})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Verified {
		t.Fatal("transfer under invalidate not verified")
	}
}

func TestRunTransferRejectsBadAccountCount(t *testing.T) {
	if _, err := Run(Config{Workload: "transfer", N: 65, Pair: mustPair(t, "LL")}); err == nil {
		t.Error("non-multiple account count must fail")
	}
}

func TestPageFaultsReported(t *testing.T) {
	res, err := Run(Config{Workload: "matmul", N: 24, Pair: mustPair(t, "LL"), Verify: true, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	if res.PageFaults == 0 {
		t.Error("no page faults recorded — write detection inactive?")
	}
	// First-touch semantics bound the fault count: at most one fault per
	// page per detection window. Windows = per thread, one per release
	// point; generous upper bound here.
	pages := uint64((12*24*24+8)/4096 + 2)
	releases := uint64(3 * 4) // 3 threads x (init unlock + 2 barriers + join)
	if res.PageFaults > pages*releases {
		t.Errorf("faults = %d exceeds first-touch bound %d", res.PageFaults, pages*releases)
	}
}

func TestRunShardedVerifies(t *testing.T) {
	for _, shards := range []int{2, 4} {
		for _, wl := range []struct {
			name string
			n    int
		}{{"matmul", 24}, {"lu", 16}, {"transfer", 64}} {
			res, err := Run(Config{Workload: wl.name, N: wl.n, Pair: mustPair(t, "SL"),
				Verify: true, Seed: 5, Shards: shards})
			if err != nil {
				t.Fatalf("%s shards=%d: %v", wl.name, shards, err)
			}
			if !res.Verified {
				t.Fatalf("%s shards=%d: not verified", wl.name, shards)
			}
			if res.Dir == nil || res.Dir.Shards != shards {
				t.Fatalf("%s shards=%d: missing dir stats", wl.name, shards)
			}
		}
	}
}

func TestRunShardedHeatMigrationObservable(t *testing.T) {
	res, err := Run(Config{Workload: "matmul", N: 32, Pair: mustPair(t, "LL"),
		Verify: true, Seed: 6, Shards: 4, MigrateThreshold: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Dir == nil {
		t.Fatal("no dir stats")
	}
	if res.Dir.Migrations == 0 {
		t.Fatal("no entry re-homed despite a low migration threshold")
	}
}

func TestRunShardedRefusesCheckpoint(t *testing.T) {
	if _, err := Run(Config{Workload: "matmul", N: 16, Pair: mustPair(t, "LL"),
		Shards: 2, CheckpointEvery: 1, CheckpointDir: t.TempDir()}); err == nil {
		t.Fatal("sharded checkpoint run unexpectedly accepted")
	}
}
