package apps

import (
	"fmt"
	"math/rand"

	"hetdsm/internal/dsd"
	"hetdsm/internal/tag"
)

// LUGThV returns the global structure for the LU-decomposition workload: a
// single n×n double matrix factored in place, plus the size. LU rewrites
// most of the matrix every elimination step, which is why the paper's
// Figure 11 shows it transferring more data per update than matmul.
func LUGThV(n int) tag.Struct {
	return tag.Struct{
		Name: "GThV_t",
		Fields: []tag.Field{
			{Name: "GThP", T: tag.Pointer{}},
			{Name: "A", T: tag.DoubleArray(n * n)},
			{Name: "n", T: tag.Int()},
		},
	}
}

// GenLUMatrix generates a deterministic, diagonally dominant n×n matrix so
// the factorization is numerically stable without pivoting.
func GenLUMatrix(n int, seed int64) []float64 {
	r := rand.New(rand.NewSource(seed))
	out := make([]float64, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			out[i*n+j] = r.Float64()*2 - 1
		}
		out[i*n+i] = float64(n) + r.Float64() // dominance
	}
	return out
}

// LUSeq factors A in place sequentially (Doolittle, no pivoting): after it
// returns, the strict lower triangle holds L's multipliers and the upper
// triangle holds U. Row operations are performed in exactly the order the
// distributed version uses, so results match bit for bit.
func LUSeq(a []float64, n int) {
	for k := 0; k < n-1; k++ {
		pivot := a[k*n+k]
		for i := k + 1; i < n; i++ {
			l := a[i*n+k] / pivot
			a[i*n+k] = l
			rowK := a[k*n:]
			rowI := a[i*n:]
			for j := k + 1; j < n; j++ {
				rowI[j] -= l * rowK[j]
			}
		}
	}
}

// LUThread is the per-thread body of the distributed factorization: rows
// are dealt cyclically, each elimination step updates the owned rows below
// the pivot, and a barrier per step publishes the new pivot row. Because
// double conversion is bit-exact, the distributed result equals LUSeq
// exactly on every platform pair.
func LUThread(th *dsd.Thread, rank, nthreads, n int, seed int64) error {
	g := th.Globals()
	vA, err := g.Var("A")
	if err != nil {
		return err
	}
	vN, err := g.Var("n")
	if err != nil {
		return err
	}

	if rank == 0 {
		if err := th.Lock(0); err != nil {
			return err
		}
		if err := vA.SetFloat64s(0, GenLUMatrix(n, seed)); err != nil {
			return err
		}
		if err := vN.SetInt(0, int64(n)); err != nil {
			return err
		}
		if err := th.Unlock(0); err != nil {
			return err
		}
	}
	if err := th.Barrier(0); err != nil {
		return err
	}
	if gotN, err := vN.Int(0); err != nil {
		return err
	} else if int(gotN) != n {
		return fmt.Errorf("apps: thread %d sees n=%d, want %d", rank, gotN, n)
	}

	if err := luEliminate(th, rank, nthreads, n, 0); err != nil {
		return err
	}
	return th.Join()
}

// luEliminate runs the elimination steps from startK through n-2, one
// barrier per step publishing the new pivot row.
func luEliminate(th *dsd.Thread, rank, nthreads, n, startK int) error {
	vA, err := th.Globals().Var("A")
	if err != nil {
		return err
	}
	for k := startK; k < n-1; k++ {
		// The pivot row is final after the previous step's barrier.
		rowK, err := vA.Float64s(k*n+k, n-k)
		if err != nil {
			return err
		}
		pivot := rowK[0]
		for i := k + 1; i < n; i++ {
			if i%nthreads != rank {
				continue
			}
			rowI, err := vA.Float64s(i*n+k, n-k)
			if err != nil {
				return err
			}
			l := rowI[0] / pivot
			rowI[0] = l
			for j := 1; j < n-k; j++ {
				rowI[j] -= l * rowK[j]
			}
			if err := vA.SetFloat64s(i*n+k, rowI); err != nil {
				return err
			}
		}
		if err := th.Barrier(0); err != nil {
			return err
		}
	}
	return nil
}

// LUThreadFrom resumes the factorization at a barrier generation from a
// coordinated cluster checkpoint. Generation g opens after steps 0..g-2
// completed (generation 1 is the input-publishing barrier), so the resumed
// run starts eliminating at k = phase-1. Phase 0 is a fresh run. As with
// matmul, every resumed rank opens with a resynchronization barrier: a
// fresh replica holds zeros until its first acquire delivers the restored
// image, so nothing may be read before it.
func LUThreadFrom(th *dsd.Thread, rank, nthreads, n int, seed int64, phase uint64) error {
	if phase == 0 {
		return LUThread(th, rank, nthreads, n, seed)
	}
	if err := th.Barrier(0); err != nil {
		return err
	}
	if err := luEliminate(th, rank, nthreads, n, int(phase)-1); err != nil {
		return err
	}
	return th.Join()
}
