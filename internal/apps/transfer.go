package apps

import (
	"fmt"
	"math/rand"

	"hetdsm/internal/dsd"
	"hetdsm/internal/tag"
)

// Account-transfer workload — an extension beyond the paper exercising the
// DSD under *multiple* distributed mutexes held concurrently by different
// threads, including nested acquisition. The account array is striped;
// mutex i protects stripe i; a transfer locks both stripes in ascending
// order (the classic deadlock-avoidance discipline) and moves money.
// Because every mutation is an increment under its stripe's lock, the
// final balances equal the initial ones plus the planned deltas, whatever
// the interleaving — and the total is conserved.

// TransferStripe is the number of accounts protected by one mutex.
const TransferStripe = 16

// TransferGThV returns the global structure: nAccounts balances.
func TransferGThV(nAccounts int) tag.Struct {
	return tag.Struct{
		Name: "GThV_t",
		Fields: []tag.Field{
			{Name: "balances", T: tag.Array{Elem: tag.LongLong(), N: nAccounts}},
			{Name: "n", T: tag.Int()},
		},
	}
}

// transferOp is one planned movement.
type transferOp struct {
	from, to int
	amount   int64
}

// planTransfers deterministically plans ops for one thread.
func planTransfers(nAccounts, nOps int, seed int64) []transferOp {
	r := rand.New(rand.NewSource(seed))
	ops := make([]transferOp, nOps)
	for i := range ops {
		from := r.Intn(nAccounts)
		to := r.Intn(nAccounts)
		for to/TransferStripe == from/TransferStripe {
			to = r.Intn(nAccounts) // force distinct stripes
		}
		ops[i] = transferOp{from: from, to: to, amount: int64(r.Intn(1000))}
	}
	return ops
}

// TransferExpected computes the final balances implied by every thread's
// plan, starting from the deterministic initial funding.
func TransferExpected(nAccounts, nOps, nthreads int, seed int64) []int64 {
	out := TransferInitial(nAccounts, seed)
	for rank := 0; rank < nthreads; rank++ {
		for _, op := range planTransfers(nAccounts, nOps, seed+int64(rank)*1000) {
			out[op.from] -= op.amount
			out[op.to] += op.amount
		}
	}
	return out
}

// TransferInitial returns the deterministic initial balances.
func TransferInitial(nAccounts int, seed int64) []int64 {
	r := rand.New(rand.NewSource(seed ^ 0x5eed))
	out := make([]int64, nAccounts)
	for i := range out {
		out[i] = int64(10000 + r.Intn(5000))
	}
	return out
}

// TransferThread is the per-thread body: rank 0 funds the accounts, then
// every thread executes its planned transfers under the two stripes' locks.
// Stripe mutexes are numbered from 1; mutex 0 guards initialization.
func TransferThread(th *dsd.Thread, rank, nthreads, nAccounts, nOps int, seed int64) error {
	if nAccounts%TransferStripe != 0 {
		return fmt.Errorf("apps: accounts %d not a multiple of stripe %d", nAccounts, TransferStripe)
	}
	g := th.Globals()
	bal, err := g.Var("balances")
	if err != nil {
		return err
	}
	vN, err := g.Var("n")
	if err != nil {
		return err
	}
	if rank == 0 {
		if err := th.Lock(0); err != nil {
			return err
		}
		if err := bal.SetInts(0, TransferInitial(nAccounts, seed)); err != nil {
			return err
		}
		if err := vN.SetInt(0, int64(nAccounts)); err != nil {
			return err
		}
		if err := th.Unlock(0); err != nil {
			return err
		}
	}
	if err := th.Barrier(0); err != nil {
		return err
	}

	stripeLock := func(acct int) int { return 1 + acct/TransferStripe }
	for _, op := range planTransfers(nAccounts, nOps, seed+int64(rank)*1000) {
		lo, hi := stripeLock(op.from), stripeLock(op.to)
		if lo > hi {
			lo, hi = hi, lo
		}
		if err := th.Lock(lo); err != nil {
			return err
		}
		if err := th.Lock(hi); err != nil {
			return err
		}
		f, err := bal.Int(op.from)
		if err != nil {
			return err
		}
		t, err := bal.Int(op.to)
		if err != nil {
			return err
		}
		if err := bal.SetInt(op.from, f-op.amount); err != nil {
			return err
		}
		if err := bal.SetInt(op.to, t+op.amount); err != nil {
			return err
		}
		if err := th.Unlock(hi); err != nil {
			return err
		}
		if err := th.Unlock(lo); err != nil {
			return err
		}
	}
	if err := th.Barrier(0); err != nil {
		return err
	}
	return th.Join()
}
