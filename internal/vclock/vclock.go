// Package vclock abstracts time for components that must be testable
// without real sleeps: a Clock interface with a system implementation and a
// virtual, manually-advanced implementation.
//
// The failure detector (internal/ha) and the deterministic simulator
// (internal/sim) take a Clock instead of calling the time package directly.
// Production code passes System(); tests pass a Virtual clock and drive it
// with Advance, so a "50ms suspicion timeout" elapses in microseconds of
// wall time and every timer firing is an explicit, deterministic step of
// the test rather than a race against the scheduler.
package vclock

import (
	"sort"
	"sync"
	"time"
)

// Clock is the time surface the DSM's timing-sensitive components use.
type Clock interface {
	// Now returns the current time on this clock.
	Now() time.Time
	// After returns a channel that delivers one tick once d has elapsed.
	After(d time.Duration) <-chan time.Time
	// Ticker returns a ticker firing every d.
	Ticker(d time.Duration) Ticker
	// Sleep blocks until d has elapsed on this clock.
	Sleep(d time.Duration)
}

// Ticker is a stoppable periodic timer.
type Ticker interface {
	// Chan returns the tick delivery channel.
	Chan() <-chan time.Time
	// Stop halts future deliveries.
	Stop()
}

// --- System clock ---

type systemClock struct{}

var system Clock = systemClock{}

// System returns the real-time clock backed by the time package.
func System() Clock { return system }

func (systemClock) Now() time.Time                         { return time.Now() }
func (systemClock) After(d time.Duration) <-chan time.Time { return time.After(d) }
func (systemClock) Sleep(d time.Duration)                  { time.Sleep(d) }

func (systemClock) Ticker(d time.Duration) Ticker {
	return systemTicker{time.NewTicker(d)}
}

type systemTicker struct{ t *time.Ticker }

func (t systemTicker) Chan() <-chan time.Time { return t.t.C }
func (t systemTicker) Stop()                  { t.t.Stop() }

// --- Virtual clock ---

// Virtual is a manually-advanced clock. Time moves only when Advance (or
// AdvanceTo) is called; due timers fire in timestamp order during the
// advance. Deliveries are non-blocking onto capacity-1 channels, matching
// the time package's coalescing ticker semantics: a consumer that falls
// behind sees fewer ticks, never a deadlocked clock.
type Virtual struct {
	mu     sync.Mutex
	now    time.Time
	timers []*vtimer
}

type vtimer struct {
	when   time.Time
	period time.Duration // 0 for one-shot
	ch     chan time.Time
	done   chan struct{} // closed when a Sleep's deadline passes
	stop   bool
}

// NewVirtual returns a virtual clock starting at start. A zero start is
// normalized to a fixed, arbitrary epoch so tests are reproducible.
func NewVirtual(start time.Time) *Virtual {
	if start.IsZero() {
		start = time.Date(2006, 8, 14, 0, 0, 0, 0, time.UTC)
	}
	return &Virtual{now: start}
}

// Now implements Clock.
func (v *Virtual) Now() time.Time {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.now
}

// After implements Clock.
func (v *Virtual) After(d time.Duration) <-chan time.Time {
	v.mu.Lock()
	defer v.mu.Unlock()
	t := &vtimer{when: v.now.Add(d), ch: make(chan time.Time, 1)}
	v.timers = append(v.timers, t)
	return t.ch
}

// Ticker implements Clock.
func (v *Virtual) Ticker(d time.Duration) Ticker {
	v.mu.Lock()
	defer v.mu.Unlock()
	t := &vtimer{when: v.now.Add(d), period: d, ch: make(chan time.Time, 1)}
	v.timers = append(v.timers, t)
	return &virtualTicker{v: v, t: t}
}

type virtualTicker struct {
	v *Virtual
	t *vtimer
}

func (t *virtualTicker) Chan() <-chan time.Time { return t.t.ch }

func (t *virtualTicker) Stop() {
	t.v.mu.Lock()
	t.t.stop = true
	t.v.mu.Unlock()
}

// Sleep implements Clock: it blocks until another goroutine advances the
// clock past the deadline.
func (v *Virtual) Sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	v.mu.Lock()
	t := &vtimer{when: v.now.Add(d), done: make(chan struct{})}
	v.timers = append(v.timers, t)
	v.mu.Unlock()
	<-t.done
}

// Advance moves the clock forward by d, firing every due timer in
// timestamp order.
func (v *Virtual) Advance(d time.Duration) {
	v.mu.Lock()
	target := v.now.Add(d)
	v.mu.Unlock()
	v.AdvanceTo(target)
}

// AdvanceTo moves the clock to t (no-op when t is in the past), firing
// every due timer in timestamp order. Periodic timers re-arm and may fire
// multiple times within one advance.
func (v *Virtual) AdvanceTo(target time.Time) {
	for {
		v.mu.Lock()
		if !target.After(v.now) {
			v.mu.Unlock()
			return
		}
		// Find the earliest pending timer at or before target.
		var next *vtimer
		for _, t := range v.timers {
			if t.stop || t.when.After(target) {
				continue
			}
			if next == nil || t.when.Before(next.when) {
				next = t
			}
		}
		if next == nil {
			v.now = target
			v.mu.Unlock()
			return
		}
		if next.when.After(v.now) {
			v.now = next.when
		}
		fireAt := v.now
		if next.period > 0 {
			next.when = next.when.Add(next.period)
		} else {
			next.stop = true
		}
		v.compactLocked()
		ch, done := next.ch, next.done
		v.mu.Unlock()
		if done != nil {
			close(done)
		}
		if ch != nil {
			select {
			case ch <- fireAt:
			default: // consumer behind; coalesce like time.Ticker
			}
		}
	}
}

// compactLocked drops stopped timers; caller holds v.mu.
func (v *Virtual) compactLocked() {
	live := v.timers[:0]
	for _, t := range v.timers {
		if !t.stop {
			live = append(live, t)
		}
	}
	v.timers = live
}

// Pending returns the deadlines of the live timers, soonest first; tests
// use it to assert what the clock is waiting on.
func (v *Virtual) Pending() []time.Time {
	v.mu.Lock()
	defer v.mu.Unlock()
	out := make([]time.Time, 0, len(v.timers))
	for _, t := range v.timers {
		if !t.stop {
			out = append(out, t.when)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Before(out[j]) })
	return out
}
