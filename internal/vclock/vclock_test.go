package vclock

import (
	"sync"
	"testing"
	"time"
)

func TestSystemClockBasics(t *testing.T) {
	c := System()
	before := c.Now()
	<-c.After(time.Millisecond)
	if !c.Now().After(before) {
		t.Fatalf("system clock did not advance across After")
	}
	tk := c.Ticker(time.Millisecond)
	defer tk.Stop()
	<-tk.Chan()
}

func TestVirtualAfterFiresInOrder(t *testing.T) {
	v := NewVirtual(time.Time{})
	start := v.Now()
	a := v.After(10 * time.Millisecond)
	b := v.After(5 * time.Millisecond)

	v.Advance(20 * time.Millisecond)

	at := <-a
	bt := <-b
	if want := start.Add(10 * time.Millisecond); !at.Equal(want) {
		t.Fatalf("a fired at %v, want %v", at, want)
	}
	if want := start.Add(5 * time.Millisecond); !bt.Equal(want) {
		t.Fatalf("b fired at %v, want %v", bt, want)
	}
	if got, want := v.Now(), start.Add(20*time.Millisecond); !got.Equal(want) {
		t.Fatalf("clock at %v, want %v", got, want)
	}
}

func TestVirtualAfterDoesNotFireEarly(t *testing.T) {
	v := NewVirtual(time.Time{})
	ch := v.After(10 * time.Millisecond)
	v.Advance(9 * time.Millisecond)
	select {
	case <-ch:
		t.Fatalf("timer fired before its deadline")
	default:
	}
	v.Advance(time.Millisecond)
	select {
	case <-ch:
	default:
		t.Fatalf("timer did not fire at its deadline")
	}
}

func TestVirtualTickerPeriodicAndStop(t *testing.T) {
	v := NewVirtual(time.Time{})
	tk := v.Ticker(3 * time.Millisecond)

	// One advance spanning several periods coalesces (cap-1 channel), so
	// step period by period and count deliveries.
	fired := 0
	for i := 0; i < 4; i++ {
		v.Advance(3 * time.Millisecond)
		select {
		case <-tk.Chan():
			fired++
		default:
		}
	}
	if fired != 4 {
		t.Fatalf("ticker fired %d times over 4 periods, want 4", fired)
	}

	tk.Stop()
	v.Advance(30 * time.Millisecond)
	select {
	case <-tk.Chan():
		t.Fatalf("ticker fired after Stop")
	default:
	}
}

func TestVirtualTickerCoalesces(t *testing.T) {
	v := NewVirtual(time.Time{})
	tk := v.Ticker(time.Millisecond)
	defer tk.Stop()
	v.Advance(10 * time.Millisecond) // 10 periods, nobody reading
	n := 0
	for {
		select {
		case <-tk.Chan():
			n++
			continue
		default:
		}
		break
	}
	if n != 1 {
		t.Fatalf("got %d buffered ticks, want 1 (coalesced)", n)
	}
}

func TestVirtualSleepBlocksUntilAdvance(t *testing.T) {
	v := NewVirtual(time.Time{})
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		v.Sleep(5 * time.Millisecond)
		close(done)
	}()
	// Wait for the sleeper to register its timer, then advance past it.
	for len(v.Pending()) == 0 {
	}
	select {
	case <-done:
		t.Fatalf("Sleep returned before the clock advanced")
	default:
	}
	v.Advance(5 * time.Millisecond)
	wg.Wait()
	<-done
}

func TestVirtualAdvanceToPastIsNoop(t *testing.T) {
	v := NewVirtual(time.Time{})
	now := v.Now()
	v.AdvanceTo(now.Add(-time.Hour))
	if !v.Now().Equal(now) {
		t.Fatalf("AdvanceTo into the past moved the clock")
	}
}

func TestVirtualPending(t *testing.T) {
	v := NewVirtual(time.Time{})
	v.After(7 * time.Millisecond)
	v.After(2 * time.Millisecond)
	p := v.Pending()
	if len(p) != 2 || !p[0].Before(p[1]) {
		t.Fatalf("Pending = %v, want two deadlines soonest-first", p)
	}
	v.Advance(10 * time.Millisecond)
	if got := v.Pending(); len(got) != 0 {
		t.Fatalf("Pending after firing = %v, want empty", got)
	}
}
