// Package stats accumulates the data-sharing cost breakdown of the paper's
// Equation 1:
//
//	Cshare = t_index + t_tag + t_pack + t_unpack + t_conv
//
// Every stage of the DSD update pipeline is timed into one of these five
// buckets; the evaluation harness (Figures 6–11) reads them back out.
package stats

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// Phase labels one component of Eq. 1.
type Phase int

const (
	// Index is t_index: mapping dirty-page diffs to index-table spans.
	Index Phase = iota
	// Tag is t_tag: forming CGT-RMR tags from the spans.
	Tag
	// Pack is t_pack: serializing tags and raw data into messages.
	Pack
	// Unpack is t_unpack: deserializing received messages.
	Unpack
	// Conv is t_conv: receiver-makes-right data conversion.
	Conv
	// NumPhases is the number of Eq. 1 components.
	NumPhases
)

var phaseNames = [...]string{
	Index:  "index",
	Tag:    "tag",
	Pack:   "pack",
	Unpack: "unpack",
	Conv:   "conv",
}

// String returns the short phase name used in reports.
func (p Phase) String() string {
	if p >= 0 && int(p) < len(phaseNames) {
		return phaseNames[p]
	}
	return fmt.Sprintf("Phase(%d)", int(p))
}

// Breakdown is an accumulated Cshare decomposition. The zero value is an
// empty breakdown ready to use. Breakdowns are safe for concurrent use;
// every node and the home manager feed one from their own goroutines.
type Breakdown struct {
	mu     sync.Mutex
	phases [NumPhases]time.Duration
	counts [NumPhases]uint64
	bytes  [NumPhases]uint64
}

// Add charges d to phase p.
func (b *Breakdown) Add(p Phase, d time.Duration) {
	b.mu.Lock()
	b.phases[p] += d
	b.counts[p]++
	b.mu.Unlock()
}

// AddBytes charges d to phase p and records n bytes processed in it.
func (b *Breakdown) AddBytes(p Phase, d time.Duration, n int) {
	b.mu.Lock()
	b.phases[p] += d
	b.counts[p]++
	b.bytes[p] += uint64(n)
	b.mu.Unlock()
}

// Time runs f, charging its wall time to phase p.
func (b *Breakdown) Time(p Phase, f func()) {
	start := time.Now()
	f()
	b.Add(p, time.Since(start))
}

// Phase returns the accumulated duration of one phase.
func (b *Breakdown) Phase(p Phase) time.Duration {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.phases[p]
}

// Count returns how many times phase p was charged.
func (b *Breakdown) Count(p Phase) uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.counts[p]
}

// Bytes returns the bytes recorded for phase p.
func (b *Breakdown) Bytes(p Phase) uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.bytes[p]
}

// Total returns Cshare: the sum of all five components.
func (b *Breakdown) Total() time.Duration {
	b.mu.Lock()
	defer b.mu.Unlock()
	var t time.Duration
	for _, d := range b.phases {
		t += d
	}
	return t
}

// Snapshot returns a frozen copy of the per-phase durations.
func (b *Breakdown) Snapshot() [NumPhases]time.Duration {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.phases
}

// Reset zeroes all accumulators.
func (b *Breakdown) Reset() {
	b.mu.Lock()
	b.phases = [NumPhases]time.Duration{}
	b.counts = [NumPhases]uint64{}
	b.bytes = [NumPhases]uint64{}
	b.mu.Unlock()
}

// Merge adds another breakdown's accumulators into b.
func (b *Breakdown) Merge(o *Breakdown) {
	o.mu.Lock()
	phases, counts, bytes := o.phases, o.counts, o.bytes
	o.mu.Unlock()
	b.mu.Lock()
	for i := range phases {
		b.phases[i] += phases[i]
		b.counts[i] += counts[i]
		b.bytes[i] += bytes[i]
	}
	b.mu.Unlock()
}

// String renders a one-line summary: "index=1ms tag=2ms ... total=9ms".
// One lock acquisition copies the phases; the total is computed from
// that same copy, so the line is internally consistent even under
// concurrent Adds.
func (b *Breakdown) String() string {
	b.mu.Lock()
	phases := b.phases
	b.mu.Unlock()
	var parts []string
	var total time.Duration
	for p := Phase(0); p < NumPhases; p++ {
		parts = append(parts, fmt.Sprintf("%s=%v", p, phases[p]))
		total += phases[p]
	}
	parts = append(parts, fmt.Sprintf("total=%v", total))
	return strings.Join(parts, " ")
}

// Percentages returns each phase's share of Cshare in percent (Figure 7's
// presentation). An all-zero breakdown yields all zeros.
func (b *Breakdown) Percentages() [NumPhases]float64 {
	snap := b.Snapshot()
	var total time.Duration
	for _, d := range snap {
		total += d
	}
	var out [NumPhases]float64
	if total == 0 {
		return out
	}
	for i, d := range snap {
		out[i] = 100 * float64(d) / float64(total)
	}
	return out
}

// Map returns the breakdown as plain data keyed by phase name — seconds,
// charge counts and bytes per Eq. 1 component plus the Cshare total — in a
// shape that marshals directly to JSON (the -stats-json flags).
func (b *Breakdown) Map() map[string]any {
	b.mu.Lock()
	phases, counts, bytes := b.phases, b.counts, b.bytes
	b.mu.Unlock()
	out := make(map[string]any, int(NumPhases)+1)
	var total time.Duration
	for p := Phase(0); p < NumPhases; p++ {
		total += phases[p]
		out[p.String()] = map[string]any{
			"seconds": phases[p].Seconds(),
			"count":   counts[p],
			"bytes":   bytes[p],
		}
	}
	out["total_seconds"] = total.Seconds()
	return out
}

// Series is a labeled sequence of measurements, one per sweep point — the
// raw material of the paper's line plots (Figures 8–11).
type Series struct {
	// Label names the series (e.g. "Solaris/Linux").
	Label string
	// X holds the sweep parameter (matrix size).
	X []int
	// Y holds the measured durations, parallel to X.
	Y []time.Duration
}

// Append adds one point.
func (s *Series) Append(x int, y time.Duration) {
	s.X = append(s.X, x)
	s.Y = append(s.Y, y)
}

// Format renders the series as aligned columns.
func (s *Series) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "# %s\n", s.Label)
	for i := range s.X {
		fmt.Fprintf(&b, "%8d %14.6f\n", s.X[i], s.Y[i].Seconds())
	}
	return b.String()
}

// Table formats multiple series side by side keyed by X, for figures that
// plot several platform pairs on one axis. Series may have different X
// sets; missing cells print as "-".
func Table(series []*Series) string {
	xs := map[int]bool{}
	for _, s := range series {
		for _, x := range s.X {
			xs[x] = true
		}
	}
	var order []int
	for x := range xs {
		order = append(order, x)
	}
	sort.Ints(order)

	var b strings.Builder
	fmt.Fprintf(&b, "%8s", "N")
	for _, s := range series {
		fmt.Fprintf(&b, " %16s", s.Label)
	}
	b.WriteByte('\n')
	for _, x := range order {
		fmt.Fprintf(&b, "%8d", x)
		for _, s := range series {
			cell := "-"
			for i := range s.X {
				if s.X[i] == x {
					cell = fmt.Sprintf("%.6f", s.Y[i].Seconds())
					break
				}
			}
			fmt.Fprintf(&b, " %16s", cell)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
