package stats

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestAddAndTotal(t *testing.T) {
	var b Breakdown
	b.Add(Index, 10*time.Millisecond)
	b.Add(Tag, 20*time.Millisecond)
	b.Add(Conv, 30*time.Millisecond)
	if got := b.Total(); got != 60*time.Millisecond {
		t.Errorf("Total = %v, want 60ms", got)
	}
	if got := b.Phase(Tag); got != 20*time.Millisecond {
		t.Errorf("Phase(Tag) = %v", got)
	}
	if got := b.Count(Index); got != 1 {
		t.Errorf("Count(Index) = %d", got)
	}
}

func TestAddBytes(t *testing.T) {
	var b Breakdown
	b.AddBytes(Pack, time.Millisecond, 100)
	b.AddBytes(Pack, time.Millisecond, 50)
	if got := b.Bytes(Pack); got != 150 {
		t.Errorf("Bytes = %d, want 150", got)
	}
	if got := b.Count(Pack); got != 2 {
		t.Errorf("Count = %d, want 2", got)
	}
}

func TestTime(t *testing.T) {
	var b Breakdown
	b.Time(Unpack, func() { time.Sleep(time.Millisecond) })
	if b.Phase(Unpack) < time.Millisecond {
		t.Errorf("Time charged %v, want >= 1ms", b.Phase(Unpack))
	}
}

func TestMergeAndReset(t *testing.T) {
	var a, b Breakdown
	a.Add(Index, time.Second)
	b.Add(Index, time.Second)
	b.Add(Conv, 2*time.Second)
	a.Merge(&b)
	if a.Phase(Index) != 2*time.Second || a.Phase(Conv) != 2*time.Second {
		t.Errorf("merge wrong: %v", a.String())
	}
	a.Reset()
	if a.Total() != 0 {
		t.Errorf("reset left %v", a.Total())
	}
}

func TestPercentages(t *testing.T) {
	var b Breakdown
	if p := b.Percentages(); p != ([NumPhases]float64{}) {
		t.Errorf("empty breakdown percentages = %v", p)
	}
	b.Add(Index, 25*time.Millisecond)
	b.Add(Conv, 75*time.Millisecond)
	p := b.Percentages()
	if p[Index] != 25 || p[Conv] != 75 {
		t.Errorf("percentages = %v", p)
	}
	sum := 0.0
	for _, v := range p {
		sum += v
	}
	if sum != 100 {
		t.Errorf("percentages sum to %g", sum)
	}
}

func TestConcurrentAdds(t *testing.T) {
	var b Breakdown
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				b.Add(Conv, time.Microsecond)
			}
		}()
	}
	wg.Wait()
	if got := b.Count(Conv); got != 8000 {
		t.Errorf("Count = %d, want 8000", got)
	}
	if got := b.Phase(Conv); got != 8000*time.Microsecond {
		t.Errorf("Phase = %v, want 8ms", got)
	}
}

func TestPhaseNames(t *testing.T) {
	want := []string{"index", "tag", "pack", "unpack", "conv"}
	for p := Phase(0); p < NumPhases; p++ {
		if p.String() != want[p] {
			t.Errorf("phase %d = %q, want %q", p, p.String(), want[p])
		}
	}
}

func TestStringContainsAll(t *testing.T) {
	var b Breakdown
	b.Add(Index, time.Millisecond)
	s := b.String()
	for _, sub := range []string{"index=", "tag=", "pack=", "unpack=", "conv=", "total="} {
		if !strings.Contains(s, sub) {
			t.Errorf("String %q missing %q", s, sub)
		}
	}
}

func TestSeriesAndTable(t *testing.T) {
	a := &Series{Label: "Linux/Linux"}
	a.Append(99, time.Millisecond)
	a.Append(138, 2*time.Millisecond)
	b := &Series{Label: "Solaris/Linux"}
	b.Append(99, 10*time.Millisecond)

	if out := a.Format(); !strings.Contains(out, "Linux/Linux") || !strings.Contains(out, "99") {
		t.Errorf("Format = %q", out)
	}
	table := Table([]*Series{a, b})
	lines := strings.Split(strings.TrimSpace(table), "\n")
	if len(lines) != 3 {
		t.Fatalf("table has %d lines, want 3:\n%s", len(lines), table)
	}
	if !strings.Contains(lines[2], "-") {
		t.Errorf("missing cell should print '-':\n%s", table)
	}
}

func TestMapForJSON(t *testing.T) {
	var b Breakdown
	b.Add(Index, 10*time.Millisecond)
	b.AddBytes(Pack, 20*time.Millisecond, 512)
	m := b.Map()
	for p := Phase(0); p < NumPhases; p++ {
		entry, ok := m[p.String()].(map[string]any)
		if !ok {
			t.Fatalf("Map() missing phase %q", p)
		}
		for _, key := range []string{"seconds", "count", "bytes"} {
			if _, ok := entry[key]; !ok {
				t.Errorf("phase %q missing %q", p, key)
			}
		}
	}
	pack := m[Pack.String()].(map[string]any)
	if got := pack["seconds"].(float64); got != 0.02 {
		t.Errorf("pack seconds = %v, want 0.02", got)
	}
	if got := pack["bytes"].(uint64); got != 512 {
		t.Errorf("pack bytes = %v, want 512", got)
	}
	if got := m["total_seconds"].(float64); got != 0.03 {
		t.Errorf("total_seconds = %v, want 0.03", got)
	}
}
