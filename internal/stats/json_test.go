package stats

import (
	"encoding/json"
	"math/rand"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestMapJSONShape pins the wire shape of the -stats-json / /stats
// output: count and bytes are JSON numbers (not strings), and the keys
// marshal in a stable sorted order.
func TestMapJSONShape(t *testing.T) {
	var b Breakdown
	b.AddBytes(Index, 2*time.Millisecond, 100)
	b.AddBytes(Conv, 3*time.Millisecond, 7)
	b.Add(Tag, time.Millisecond)

	raw, err := json.Marshal(b.Map())
	if err != nil {
		t.Fatal(err)
	}
	s := string(raw)

	// encoding/json sorts map keys, so the phase keys appear in a fixed
	// lexical order on every run.
	wantOrder := []string{`"conv"`, `"index"`, `"pack"`, `"tag"`, `"total_seconds"`, `"unpack"`}
	last := -1
	for _, key := range wantOrder {
		i := strings.Index(s, key)
		if i < 0 {
			t.Fatalf("output missing key %s: %s", key, s)
		}
		if i < last {
			t.Fatalf("key %s out of order: %s", key, s)
		}
		last = i
	}

	if strings.Contains(s, `"count":"`) || strings.Contains(s, `"bytes":"`) {
		t.Fatalf("count/bytes marshaled as strings: %s", s)
	}
	if !strings.Contains(s, `"bytes":100`) {
		t.Fatalf("index bytes not a JSON number 100: %s", s)
	}
	if !strings.Contains(s, `"count":1`) {
		t.Fatalf("counts not JSON numbers: %s", s)
	}

	// Marshal twice; byte-identical output means downstream diffing of
	// /stats dumps is meaningful.
	raw2, err := json.Marshal(b.Map())
	if err != nil {
		t.Fatal(err)
	}
	if s != string(raw2) {
		t.Fatalf("Map marshaling unstable:\n%s\n%s", s, raw2)
	}
}

// TestStringSingleSnapshot checks the rendered total equals the sum of
// the rendered phases — both must come from one locked snapshot.
func TestStringSingleSnapshot(t *testing.T) {
	var b Breakdown
	b.Add(Index, 3*time.Millisecond)
	b.Add(Unpack, 4*time.Millisecond)
	got := b.String()
	for _, want := range []string{"index=3ms", "unpack=4ms", "total=7ms"} {
		if !strings.Contains(got, want) {
			t.Errorf("String() = %q, missing %q", got, want)
		}
	}
}

func randomize(b *Breakdown, r *rand.Rand, ops int) {
	for i := 0; i < ops; i++ {
		p := Phase(r.Intn(int(NumPhases)))
		d := time.Duration(r.Intn(1000)) * time.Microsecond
		if r.Intn(2) == 0 {
			b.Add(p, d)
		} else {
			b.AddBytes(p, d, r.Intn(4096))
		}
	}
}

func snapshotAll(b *Breakdown) (phases [NumPhases]time.Duration, counts, bytes [NumPhases]uint64) {
	for p := Phase(0); p < NumPhases; p++ {
		phases[p] = b.Phase(p)
		counts[p] = b.Count(p)
		bytes[p] = b.Bytes(p)
	}
	return
}

// TestMergeCommutativeLossless is a property test: for random
// breakdowns x and y, merging x into y and y into x yield identical
// accumulators, and both equal the element-wise sum of the inputs.
func TestMergeCommutativeLossless(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		var x, y Breakdown
		randomize(&x, r, 1+r.Intn(40))
		randomize(&y, r, 1+r.Intn(40))

		xp, xc, xb := snapshotAll(&x)
		yp, yc, yb := snapshotAll(&y)

		var xy, yx Breakdown
		xy.Merge(&x)
		xy.Merge(&y)
		yx.Merge(&y)
		yx.Merge(&x)

		ap, ac, ab := snapshotAll(&xy)
		bp, bc, bb := snapshotAll(&yx)
		if ap != bp || ac != bc || ab != bb {
			t.Fatalf("trial %d: merge order changed the result:\n x+y: %v %v %v\n y+x: %v %v %v",
				trial, ap, ac, ab, bp, bc, bb)
		}
		for p := Phase(0); p < NumPhases; p++ {
			if ap[p] != xp[p]+yp[p] || ac[p] != xc[p]+yc[p] || ab[p] != xb[p]+yb[p] {
				t.Fatalf("trial %d phase %v: merge lossy: got (%v,%d,%d), want (%v,%d,%d)",
					trial, p, ap[p], ac[p], ab[p], xp[p]+yp[p], xc[p]+yc[p], xb[p]+yb[p])
			}
		}
	}
}

// TestMergeUnderConcurrentAdds merges sources while they are still
// being fed from other goroutines and checks nothing is lost once the
// writers finish: final(dst)+final(residual sources) covers every Add.
func TestMergeUnderConcurrentAdds(t *testing.T) {
	const (
		writers = 4
		perW    = 500
	)
	srcs := make([]*Breakdown, writers)
	for i := range srcs {
		srcs[i] = &Breakdown{}
	}

	var wg sync.WaitGroup
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func(b *Breakdown, seed int64) {
			defer wg.Done()
			r := rand.New(rand.NewSource(seed))
			for j := 0; j < perW; j++ {
				b.AddBytes(Phase(r.Intn(int(NumPhases))), time.Microsecond, 8)
			}
		}(srcs[i], int64(i))
	}

	// Merge repeatedly while writers run; the lock ordering inside
	// Merge must never deadlock or tear a (phases, counts, bytes) triple.
	var mid Breakdown
	for k := 0; k < 10; k++ {
		for _, s := range srcs {
			mid.Merge(s)
		}
	}
	wg.Wait()

	// After the writers stop, one final clean sweep must account for
	// every operation: sum over sources of counts == writers*perW.
	var final Breakdown
	for _, s := range srcs {
		final.Merge(s)
	}
	var totalCount, totalBytes uint64
	for p := Phase(0); p < NumPhases; p++ {
		totalCount += final.Count(p)
		totalBytes += final.Bytes(p)
	}
	if totalCount != writers*perW {
		t.Errorf("count lost under concurrency: got %d, want %d", totalCount, writers*perW)
	}
	if totalBytes != writers*perW*8 {
		t.Errorf("bytes lost under concurrency: got %d, want %d", totalBytes, writers*perW*8)
	}
	if final.Total() != time.Duration(writers*perW)*time.Microsecond {
		t.Errorf("durations lost: got %v", final.Total())
	}
}
