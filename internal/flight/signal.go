package flight

import (
	"io"
	"os"
	"os/signal"
	"sync"
	"syscall"
)

// The process-wide registry lets a SIGQUIT handler dump every recorder a
// binary created without threading references through main.
var (
	regMu    sync.Mutex
	registry []*Recorder
)

// Register adds a recorder to the process registry dumped by the SIGQUIT
// handler. No-op on nil.
func Register(r *Recorder) {
	if r == nil {
		return
	}
	regMu.Lock()
	registry = append(registry, r)
	regMu.Unlock()
}

// DumpAll writes every registered recorder's dump to w.
func DumpAll(w io.Writer, reason string) {
	regMu.Lock()
	recs := append([]*Recorder(nil), registry...)
	regMu.Unlock()
	for _, r := range recs {
		_ = r.Dump(w, reason)
	}
}

// InstallSIGQUIT arranges for SIGQUIT to dump every registered recorder
// to w (stderr when nil) and then deliver the runtime's default SIGQUIT
// behavior (goroutine dump + exit) by re-raising with the handler reset.
// Call once from a binary's main.
func InstallSIGQUIT(w io.Writer) {
	if w == nil {
		w = os.Stderr
	}
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, syscall.SIGQUIT)
	go func() {
		<-ch
		DumpAll(w, "SIGQUIT")
		signal.Reset(syscall.SIGQUIT)
		_ = syscall.Kill(syscall.Getpid(), syscall.SIGQUIT)
	}()
}
