package flight

import (
	"strings"
	"testing"
)

// TestRingWrap pins the black-box property: the recorder keeps exactly
// the last capacity events, oldest first, and counts the total honestly.
func TestRingWrap(t *testing.T) {
	r := New(4)
	for i := 0; i < 6; i++ {
		r.Note("n", KindGrant, int32(i), uint64(i), 0)
	}
	if r.Len() != 4 || r.Total() != 6 {
		t.Fatalf("len=%d total=%d, want 4 and 6", r.Len(), r.Total())
	}
	snap := r.Snapshot()
	if len(snap) != 4 {
		t.Fatalf("snapshot has %d events", len(snap))
	}
	for i, e := range snap {
		if e.Rank != int32(i+2) {
			t.Fatalf("snapshot[%d].Rank = %d, want %d (oldest-first after wrap)", i, e.Rank, i+2)
		}
	}
}

// TestTripDeliversSnapshot wires the dump sink and trips: the callback
// must see the reason and the retained tail.
func TestTripDeliversSnapshot(t *testing.T) {
	r := New(8)
	r.Note("shard0", KindFence, -1, 9, 5)
	var gotReason string
	var gotEvents []Event
	r.OnTrip(func(reason string, events []Event) {
		gotReason, gotEvents = reason, events
	})
	r.Trip("shard0 fenced")
	if gotReason != "shard0 fenced" {
		t.Fatalf("reason = %q", gotReason)
	}
	if len(gotEvents) != 1 || gotEvents[0].Kind != KindFence || gotEvents[0].A != 9 {
		t.Fatalf("events = %+v", gotEvents)
	}
}

// TestFormatReadable checks the dump text carries the fields a post-mortem
// reads: the reason, the kind name, the node, and the operands.
func TestFormatReadable(t *testing.T) {
	r := New(8)
	r.Note("shard1", KindRestart, 1, 3, 12)
	r.Note("shard1", KindEpochAdopt, 0, 3, 2)
	var sb strings.Builder
	if err := r.Dump(&sb, "crash-restart"); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"crash-restart", "2 events", "restart", "epoch-adopt", "node=shard1", "a=3"} {
		if !strings.Contains(out, want) {
			t.Fatalf("dump missing %q:\n%s", want, out)
		}
	}
}

// TestNilRecorderSafe makes every method a no-op on nil — the disabled
// path every non-instrumented deployment runs.
func TestNilRecorderSafe(t *testing.T) {
	var r *Recorder
	r.Note("n", KindGrant, 0, 0, 0)
	r.OnTrip(func(string, []Event) { t.Fatal("trip on nil recorder") })
	r.Trip("x")
	if r.Len() != 0 || r.Total() != 0 || r.Snapshot() != nil || r.String() != "" {
		t.Fatal("nil recorder not inert")
	}
}

// TestNoteZeroAlloc pins the hot-path promise for both the disabled and
// the enabled recorder: one Note is a struct store, never an allocation.
func TestNoteZeroAlloc(t *testing.T) {
	var nilRec *Recorder
	if allocs := testing.AllocsPerRun(1000, func() {
		nilRec.Note("n", KindGrant, 1, 2, 3)
	}); allocs != 0 {
		t.Errorf("nil Note allocated %v, want 0", allocs)
	}
	r := New(64)
	if allocs := testing.AllocsPerRun(1000, func() {
		r.Note("n", KindGrant, 1, 2, 3)
	}); allocs != 0 {
		t.Errorf("enabled Note allocated %v, want 0", allocs)
	}
}

// TestKindNames keeps every kind printable (dumps never show raw bytes).
func TestKindNames(t *testing.T) {
	for k := KindInvalid; k <= KindViolation; k++ {
		if name := k.String(); name == "" || strings.HasPrefix(name, "flight-kind-") {
			t.Fatalf("kind %d has no name", k)
		}
	}
}
