// Package flight is the cluster's black box: a fixed-size, near-zero-
// overhead per-process ring of protocol-defining events (grants, fences,
// epoch adoptions, migrations, drops, restarts). Recording one event is a
// mutex-guarded struct store into a preallocated slot — no allocation, no
// formatting, no I/O — so the recorder can stay on even in benchmarked
// hot paths; a nil *Recorder is a valid disabled sink.
//
// The ring is only ever read when something went wrong: a home fences
// itself, a crash-restart recovers a shard, the release-consistency
// checker flags a violation, or an operator sends SIGQUIT. Trip formats
// the retained tail and hands it to the configured sink, so every
// violation artifact and post-mortem comes with the last protocol events
// that led up to it.
package flight

import (
	"fmt"
	"io"
	"strings"
	"sync"
	"time"
)

// Kind discriminates recorded protocol events.
type Kind uint8

const (
	// KindInvalid is the zero value; never recorded.
	KindInvalid Kind = iota
	// KindGrant is a lock grant: Rank received mutex A under epoch B.
	KindGrant
	// KindRelease is an unlock/barrier/flush acknowledged: Rank's release
	// of mutex A carried B payload bytes.
	KindRelease
	// KindFence is a home fencing itself: it saw frame epoch A while
	// serving epoch B.
	KindFence
	// KindEpochAdopt is a client adopting a higher epoch A (was B).
	KindEpochAdopt
	// KindMigrate is a page/lock re-homing: object A moved to shard B
	// (Rank holds the source shard).
	KindMigrate
	// KindRestart is a shard/home incarnation change: shard Rank restarted
	// into epoch A having replayed B WAL records.
	KindRestart
	// KindDrop is a fault-injected or observed frame loss: wire kind A on
	// Rank's connection, B bytes.
	KindDrop
	// KindPromote is a standby promotion to primary under epoch A.
	KindPromote
	// KindViolation is a checker violation being attached; A indexes the
	// violation within the run.
	KindViolation
)

var kindNames = [...]string{
	KindInvalid:    "invalid",
	KindGrant:      "grant",
	KindRelease:    "release",
	KindFence:      "fence",
	KindEpochAdopt: "epoch-adopt",
	KindMigrate:    "migrate",
	KindRestart:    "restart",
	KindDrop:       "drop",
	KindPromote:    "promote",
	KindViolation:  "violation",
}

// String names the kind for dumps.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("flight-kind-%d", uint8(k))
}

// Event is one fixed-size ring slot. Node is a pointer copy of an
// interned per-component string, so recording never allocates.
type Event struct {
	// At is the event wall-clock time in Unix nanoseconds.
	At int64
	// Node names the recording component ("shard1@linux-x86", "rank-0@…").
	Node string
	// Kind discriminates the event.
	Kind Kind
	// Rank is the involved thread or shard id; -1 when not applicable.
	Rank int32
	// A and B are kind-specific operands (mutex, epoch, object, bytes…).
	A, B uint64
}

// Recorder is the fixed-capacity ring. Construct with New; a nil
// *Recorder is a valid disabled recorder for every method.
type Recorder struct {
	capa int
	mu   sync.Mutex
	buf  []Event // preallocated to capa at construction
	next uint64  // total events ever recorded
	trip func(reason string, events []Event)
}

// New returns a recorder retaining the last capacity events (default
// 1024 when capacity <= 0). Slots are preallocated; Note never grows the
// ring.
func New(capacity int) *Recorder {
	if capacity <= 0 {
		capacity = 1024
	}
	return &Recorder{capa: capacity, buf: make([]Event, capacity)}
}

// OnTrip installs the dump sink invoked by Trip with the formatted
// reason and a snapshot of the retained events. No-op on nil.
func (r *Recorder) OnTrip(fn func(reason string, events []Event)) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.trip = fn
	r.mu.Unlock()
}

// Note records one event; no-op on a nil receiver. The hot path is one
// mutex-guarded struct store into a preallocated slot.
func (r *Recorder) Note(node string, kind Kind, rank int32, a, b uint64) {
	if r == nil {
		return
	}
	at := time.Now().UnixNano()
	r.mu.Lock()
	slot := &r.buf[int(r.next)%r.capa]
	slot.At = at
	slot.Node = node
	slot.Kind = kind
	slot.Rank = rank
	slot.A = a
	slot.B = b
	r.next++
	r.mu.Unlock()
}

// Len returns the number of retained events (0 on nil).
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.next < uint64(r.capa) {
		return int(r.next)
	}
	return r.capa
}

// Total returns the number of events ever recorded (0 on nil).
func (r *Recorder) Total() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.next
}

// Snapshot returns the retained events oldest-first (nil on nil).
func (r *Recorder) Snapshot() []Event {
	if r == nil {
		return nil
	}
	out := make([]Event, 0, r.capa)
	r.mu.Lock()
	if r.next < uint64(r.capa) {
		out = append(out, r.buf[:r.next]...)
	} else {
		start := int(r.next) % r.capa
		out = append(out, r.buf[start:]...)
		out = append(out, r.buf[:start]...)
	}
	r.mu.Unlock()
	return out
}

// Trip snapshots the ring and hands it to the OnTrip sink (if any). It
// is called on fencing, crash-restart recovery, checker violations and
// SIGQUIT — the moments the black box exists for.
func (r *Recorder) Trip(reason string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	fn := r.trip
	r.mu.Unlock()
	if fn == nil {
		return
	}
	fn(reason, r.Snapshot())
}

// Dump writes the retained events as a human-readable post-mortem.
func (r *Recorder) Dump(w io.Writer, reason string) error {
	return Format(w, reason, r.Snapshot())
}

// String returns the dump as a string (empty on nil).
func (r *Recorder) String() string {
	if r == nil {
		return ""
	}
	var sb strings.Builder
	_ = r.Dump(&sb, "")
	return sb.String()
}

// Format writes one flight-recorder dump: a header line and one line per
// event, oldest first.
func Format(w io.Writer, reason string, events []Event) error {
	if reason == "" {
		reason = "snapshot"
	}
	if _, err := fmt.Fprintf(w, "--- flight recorder (%s, %d events) ---\n", reason, len(events)); err != nil {
		return err
	}
	for i := range events {
		e := &events[i]
		if _, err := fmt.Fprintf(w, "%s %-12s node=%s rank=%d a=%d b=%d\n",
			time.Unix(0, e.At).UTC().Format("15:04:05.000000"),
			e.Kind, e.Node, e.Rank, e.A, e.B); err != nil {
			return err
		}
	}
	return nil
}
