package dsd

import (
	"fmt"

	"hetdsm/internal/convert"
	"hetdsm/internal/indextable"
	"hetdsm/internal/wire"
)

// TransferEntry moves the master copy of one index-table entry from the
// src shard to the dst shard: the re-homing half of heat-driven migration
// (internal/dir plans WHEN and WHERE; this executes the move).
//
// Both home mutexes are held for the whole transfer, acquired in shard-id
// order so concurrent transfers cannot deadlock. That makes the move
// atomic against every release: an in-flight request either lands before
// the flip (applied at src, its value carried over by the copy) or after
// (src answers KindDirForward, the sender re-routes to dst). publish is
// called while both mutexes are held — it must flip the directory mapping
// and nothing else (no calls back into either home).
//
// The copied bytes are converted receiver-makes-right, so shards on
// different virtual platforms exchange master state the same way threads
// do. dst queues a conservative full-entry span for every rank it knows,
// because src's undelivered pending spans for this entry are dropped at
// materialization from now on; receivers that already had the data apply
// an idempotent overwrite.
func TransferEntry(src, dst *Home, entry int, publish func()) error {
	if src == dst {
		src.mu.Lock()
		publish()
		src.mu.Unlock()
		return nil
	}
	if entry < 0 || entry >= src.table.Len() {
		return fmt.Errorf("dsd: transfer of entry %d out of range [0,%d)", entry, src.table.Len())
	}
	lo, hi := src, dst
	if lo.opts.Shard > hi.opts.Shard {
		lo, hi = hi, lo
	}
	lo.mu.Lock()
	defer lo.mu.Unlock()
	hi.mu.Lock()
	defer hi.mu.Unlock()

	e := src.table.Entry(entry)
	n := src.table.SpanBytes(indextable.Span{Entry: entry, First: 0, Count: e.Count})
	buf := make([]byte, n)
	if _, err := src.master.Read(e.Offset, n, buf); err != nil {
		return err
	}
	copt := convert.Options{Ptr: convert.PtrTranslate, Translator: dst.table.Translator(src.table)}
	data, _, err := convert.ScalarRun(nil, dst.plat, buf, src.plat, e.CType, e.Count, copt)
	if err != nil {
		return err
	}
	de := dst.table.Entry(entry)
	if err := dst.master.RawWrite(de.Offset, data); err != nil {
		return err
	}
	dst.dirty = true
	// Every rank gets the conservative span, connected or not: a rank that
	// has not (re)registered with dst yet — it may never have touched this
	// shard, or dst may be a crash-restarted incarnation the rank has not
	// redialed — must still find the migrated bytes queued when it does.
	span := indextable.Span{Entry: entry, First: 0, Count: de.Count}
	for rank := int32(0); rank < int32(dst.nthreads); rank++ {
		dst.pending[rank] = append(dst.pending[rank], span)
	}
	// Make the migrated bytes durable at dst's replicators (WAL, standby)
	// before the flip: after publish, dst is the only authoritative copy,
	// and a dst crash-restart must recover it. Rank -1 marks the record as
	// a transfer, not any thread's release — no watermark advances.
	dst.repRecord(&wire.Replication{
		Event: wire.RepUpdate, Rank: -1, Mutex: -1,
		Updates: []wire.Update{{
			Entry: int32(entry), First: 0, Count: int32(de.Count), Data: data,
		}},
	})
	// Block until the record is durable (fsynced WAL, streamed standby)
	// BEFORE the flip: a recorded-but-unflushed transfer is exactly what a
	// kill -9 loses, and after publish dst holds the only authoritative
	// copy. repFlush re-acquires h.mu, so walk the replicators directly —
	// their Flush methods never call back into either home.
	for _, r := range dst.reps {
		r.Flush()
	}
	publish()
	return nil
}

// MigrateLockIf moves mutex idx's ownership to another shard by flipping
// the directory mapping, but only at a quiescent point: the mutex must be
// free with no waiters. publish runs under h.mu, atomic with acquire's
// ownership check — a racing acquire either wins the mutex first (blocking
// this migration until some later attempt) or arrives after the flip and
// is answered with a forward. Returns whether the flip happened.
//
// Lock state is NOT copied: a free lock has none (no holder, no waiters),
// so the destination shard materializes it fresh on first acquire.
func (h *Home) MigrateLockIf(idx int32, publish func()) bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	if ls := h.locks[idx]; ls != nil && (ls.held || len(ls.waiters) > 0) {
		return false
	}
	delete(h.locks, idx)
	publish()
	return true
}
