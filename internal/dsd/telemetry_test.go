package dsd

import (
	"strings"
	"testing"

	"hetdsm/internal/platform"
	"hetdsm/internal/telemetry"
)

// TestTelemetryEndToEnd runs a small heterogeneous workload with the
// full observability stack on and checks every promised signal comes
// out: operation histograms, release spans mergeable across sender and
// home with a consistent (rank, seq), and a page-heat report.
func TestTelemetryEndToEnd(t *testing.T) {
	reg := telemetry.New()
	homeSpans := telemetry.NewSpanLog(256)
	senderSpans := telemetry.NewSpanLog(256)

	homeOpts := DefaultOptions()
	homeOpts.Metrics = reg
	homeOpts.Spans = homeSpans
	h, err := NewHome(testGThV(), platform.LinuxX86, 2, homeOpts)
	if err != nil {
		t.Fatal(err)
	}

	thOpts := DefaultOptions()
	thOpts.Metrics = reg
	thOpts.Spans = senderSpans
	plats := []*platform.Platform{platform.SolarisSPARC, platform.LinuxX86}
	ths := make([]*Thread, len(plats))
	for i, p := range plats {
		if ths[i], err = h.LocalThread(int32(i), p, thOpts); err != nil {
			t.Fatal(err)
		}
	}

	// A couple of lock/write/unlock rounds plus a barrier, so every
	// instrumented operation fires at least once.
	for round := 0; round < 2; round++ {
		for i, th := range ths {
			if err := th.Lock(0); err != nil {
				t.Fatal(err)
			}
			arr := th.Globals().MustVar("A")
			for j := 0; j < 8; j++ {
				if err := arr.SetInt(j, int64(round*100+i*10+j+1)); err != nil {
					t.Fatal(err)
				}
			}
			if err := th.Unlock(0); err != nil {
				t.Fatal(err)
			}
		}
	}
	done := make(chan error, len(ths))
	for _, th := range ths {
		go func(th *Thread) { done <- th.Barrier(0) }(th)
	}
	for range ths {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}

	// Histograms: lock acquire and barrier wait carry samples.
	if n := reg.Histogram("dsm_lock_acquire_seconds", "").Count(); n < 4 {
		t.Errorf("lock-acquire samples = %d, want >= 4", n)
	}
	if n := reg.Histogram("dsm_barrier_wait_seconds", "").Count(); n < 2 {
		t.Errorf("barrier-wait samples = %d, want >= 2", n)
	}
	if n := reg.Histogram("dsm_release_roundtrip_seconds", "").Count(); n < 4 {
		t.Errorf("release round-trips = %d, want >= 4", n)
	}
	if reg.Histogram("dsm_release_diff_bytes", "").Sum() <= 0 {
		t.Error("no diff bytes observed")
	}
	if reg.Histogram("dsm_frame_sent_bytes", "").Count() == 0 {
		t.Error("thread frame sizes not observed")
	}
	if reg.Counter("dsm_home_applies_total", "").Value() == 0 {
		t.Error("home applies not counted")
	}
	if reg.Histogram("dsm_home_lock_acquire_seconds", "").Count() == 0 {
		t.Error("home lock waits not observed")
	}

	// The Prometheus exposition includes the lock-acquire quantiles the
	// acceptance criteria name.
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"dsm_lock_acquire_seconds_p50",
		"dsm_lock_acquire_seconds_p99",
		"dsm_barrier_wait_seconds_p95",
		"# TYPE dsm_release_roundtrip_seconds histogram",
	} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("/metrics output missing %q", want)
		}
	}

	// Spans: sender and home logs merge into per-release timelines, and
	// at least one unlock release shows the full seven-stage pipeline.
	rels := telemetry.MergeTimeline(senderSpans.Spans(), homeSpans.Spans())
	if len(rels) == 0 {
		t.Fatal("no merged releases")
	}
	full := 0
	stages := []string{
		telemetry.StageIndex, telemetry.StageTag, telemetry.StagePack, telemetry.StageShip,
		telemetry.StageUnpack, telemetry.StageConv, telemetry.StageApply,
	}
	for _, r := range rels {
		if r.Seq == 0 {
			t.Fatalf("release with zero seq: %+v", r)
		}
		complete := true
		for _, st := range stages {
			sp, ok := r.Stage(st)
			if !ok {
				complete = false
				continue
			}
			// Every span of the release carries the same id.
			if sp.Rank != r.Rank || sp.Seq != r.Seq {
				t.Errorf("span id (%d,%d) != release id (%d,%d)", sp.Rank, sp.Seq, r.Rank, r.Seq)
			}
		}
		if complete {
			full++
		}
	}
	if full == 0 {
		t.Errorf("no release with all stages %v; got %+v", stages, rels)
	}

	// Page heat: the written pages show up, and two threads' reports
	// merge into a cluster view.
	agg := ths[0].Heat()
	agg.Merge(ths[1].Heat())
	if agg.TotalFaults == 0 || len(agg.Pages) == 0 {
		t.Errorf("empty merged heat report: %+v", agg)
	}
	if agg.PageSize == 0 {
		t.Error("heat report lost its page size")
	}
}
