package dsd

import (
	"sync"
	"testing"

	"hetdsm/internal/platform"
	"hetdsm/internal/stats"
)

func invalidateCluster(t *testing.T, plats []*platform.Platform) (*Home, []*Thread) {
	t.Helper()
	opts := DefaultOptions()
	opts.Protocol = ProtocolInvalidate
	h, err := NewHome(testGThV(), platform.LinuxX86, len(plats), opts)
	if err != nil {
		t.Fatal(err)
	}
	threads := make([]*Thread, len(plats))
	for i, p := range plats {
		th, err := h.LocalThread(int32(i), p, opts)
		if err != nil {
			t.Fatal(err)
		}
		if th.Protocol() != ProtocolInvalidate {
			t.Fatalf("thread did not adopt invalidate protocol: %v", th.Protocol())
		}
		threads[i] = th
	}
	return h, threads
}

func TestInvalidateFetchOnRead(t *testing.T) {
	_, ths := invalidateCluster(t, []*platform.Platform{platform.SolarisSPARC, platform.LinuxX86})
	a, b := ths[0], ths[1]
	if err := a.Lock(0); err != nil {
		t.Fatal(err)
	}
	if err := a.Globals().MustVar("sum").SetInt(0, -777); err != nil {
		t.Fatal(err)
	}
	arr := a.Globals().MustVar("A")
	for i := 0; i < 20; i++ {
		if err := arr.SetInt(i, int64(3*i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := a.Unlock(0); err != nil {
		t.Fatal(err)
	}

	if err := b.Lock(0); err != nil {
		t.Fatal(err)
	}
	// The grant carried only invalidations; reads now fetch on demand and
	// must see the exact values across the endianness boundary.
	v, err := b.Globals().MustVar("sum").Int(0)
	if err != nil {
		t.Fatal(err)
	}
	if v != -777 {
		t.Errorf("fetched sum = %d, want -777", v)
	}
	got, err := b.Globals().MustVar("A").Ints(0, 20)
	if err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if got[i] != int64(3*i) {
			t.Errorf("A[%d] = %d, want %d", i, got[i], 3*i)
		}
	}
	// A second read of the same range must NOT fetch again: the conv
	// byte counter stays put.
	before := b.Stats().Bytes(stats.Conv)
	if _, err := b.Globals().MustVar("A").Ints(0, 20); err != nil {
		t.Fatal(err)
	}
	if after := b.Stats().Bytes(stats.Conv); after != before {
		t.Errorf("second read re-fetched: conv bytes %d -> %d", before, after)
	}
	if err := b.Unlock(0); err != nil {
		t.Fatal(err)
	}
}

func TestInvalidateWriteWithoutReadWins(t *testing.T) {
	// B's element is invalidated by A's write; B then overwrites it
	// WITHOUT reading. B's value must survive (no fetch may clobber it)
	// and must reach the master at release.
	h, ths := invalidateCluster(t, []*platform.Platform{platform.LinuxX86, platform.SolarisSPARC})
	a, b := ths[0], ths[1]
	if err := a.Lock(0); err != nil {
		t.Fatal(err)
	}
	if err := a.Globals().MustVar("sum").SetInt(0, 111); err != nil {
		t.Fatal(err)
	}
	if err := a.Unlock(0); err != nil {
		t.Fatal(err)
	}

	if err := b.Lock(0); err != nil {
		t.Fatal(err)
	}
	if err := b.Globals().MustVar("sum").SetInt(0, 222); err != nil {
		t.Fatal(err)
	}
	// Read AFTER the local write: must see 222, not fetch 111.
	v, err := b.Globals().MustVar("sum").Int(0)
	if err != nil {
		t.Fatal(err)
	}
	if v != 222 {
		t.Errorf("local write clobbered by fetch: sum = %d", v)
	}
	if err := b.Unlock(0); err != nil {
		t.Fatal(err)
	}

	if err := a.Lock(0); err != nil {
		t.Fatal(err)
	}
	v, err = a.Globals().MustVar("sum").Int(0)
	if err != nil {
		t.Fatal(err)
	}
	if v != 222 {
		t.Errorf("master missed B's write: sum = %d", v)
	}
	if err := a.Unlock(0); err != nil {
		t.Fatal(err)
	}
	_ = h
}

func TestInvalidateMutualExclusionCounter(t *testing.T) {
	plats := []*platform.Platform{
		platform.LinuxX86, platform.SolarisSPARC, platform.LinuxX8664,
	}
	h, ths := invalidateCluster(t, plats)
	const perThread = 30
	var wg sync.WaitGroup
	errs := make(chan error, len(ths))
	for _, th := range ths {
		wg.Add(1)
		go func(th *Thread) {
			defer wg.Done()
			sum := th.Globals().MustVar("sum")
			for i := 0; i < perThread; i++ {
				if err := th.Lock(0); err != nil {
					errs <- err
					return
				}
				v, err := sum.Int(0)
				if err != nil {
					errs <- err
					return
				}
				if err := sum.SetInt(0, v+1); err != nil {
					errs <- err
					return
				}
				if err := th.Unlock(0); err != nil {
					errs <- err
					return
				}
			}
			errs <- th.Join()
		}(th)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	h.Wait()
	v, err := h.Globals().MustVar("sum").Int(0)
	if err != nil {
		t.Fatal(err)
	}
	if want := int64(perThread * len(plats)); v != want {
		t.Errorf("counter = %d, want %d", v, want)
	}
}

func TestInvalidateSkipsUnreadData(t *testing.T) {
	// The protocol's payoff: A writes a large array B never reads; under
	// invalidate the data never crosses to B.
	runWith := func(proto Protocol) uint64 {
		opts := DefaultOptions()
		opts.Protocol = proto
		h, err := NewHome(testGThV(), platform.LinuxX86, 2, opts)
		if err != nil {
			t.Fatal(err)
		}
		a, err := h.LocalThread(0, platform.SolarisSPARC, opts)
		if err != nil {
			t.Fatal(err)
		}
		b, err := h.LocalThread(1, platform.LinuxX86, opts)
		if err != nil {
			t.Fatal(err)
		}
		if err := a.Lock(0); err != nil {
			t.Fatal(err)
		}
		vals := make([]int64, 64)
		for i := range vals {
			vals[i] = int64(i)
		}
		if err := a.Globals().MustVar("A").SetInts(0, vals); err != nil {
			t.Fatal(err)
		}
		if err := a.Unlock(0); err != nil {
			t.Fatal(err)
		}
		// B acquires (receiving updates or invalidations) and releases
		// without ever reading A.
		if err := b.Lock(0); err != nil {
			t.Fatal(err)
		}
		if err := b.Unlock(0); err != nil {
			t.Fatal(err)
		}
		return b.Stats().Bytes(stats.Conv)
	}
	updateBytes := runWith(ProtocolUpdate)
	invalidateBytes := runWith(ProtocolInvalidate)
	if invalidateBytes != 0 {
		t.Errorf("invalidate moved %d bytes to a non-reader", invalidateBytes)
	}
	if updateBytes == 0 {
		t.Error("update protocol moved no bytes (test is vacuous)")
	}
}

func TestInvalidateBarriers(t *testing.T) {
	plats := []*platform.Platform{platform.LinuxX86, platform.SolarisSPARC}
	_, ths := invalidateCluster(t, plats)
	var wg sync.WaitGroup
	errs := make(chan error, len(ths))
	for r, th := range ths {
		wg.Add(1)
		go func(r int, th *Thread) {
			defer wg.Done()
			a := th.Globals().MustVar("A")
			for i := r * 16; i < (r+1)*16; i++ {
				if err := a.SetInt(i, int64(100+i)); err != nil {
					errs <- err
					return
				}
			}
			if err := th.Barrier(0); err != nil {
				errs <- err
				return
			}
			for i := 0; i < 32; i++ {
				v, err := a.Int(i)
				if err != nil {
					errs <- err
					return
				}
				if v != int64(100+i) {
					errs <- errInvalid(r, i, v)
					return
				}
			}
			errs <- th.Join()
		}(r, th)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}

type errInvalidT struct {
	r, i int
	v    int64
}

func errInvalid(r, i int, v int64) error { return errInvalidT{r, i, v} }
func (e errInvalidT) Error() string {
	return "invalidate barrier: wrong value"
}
