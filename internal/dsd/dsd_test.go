package dsd

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"hetdsm/internal/platform"
	"hetdsm/internal/stats"
	"hetdsm/internal/tag"
	"hetdsm/internal/trace"
	"hetdsm/internal/transport"
)

// testGThV is a small shared structure exercising pointers, arrays and
// scalars.
func testGThV() tag.Struct {
	return tag.Struct{
		Name: "GThV_t",
		Fields: []tag.Field{
			{Name: "GThP", T: tag.Pointer{}},
			{Name: "A", T: tag.IntArray(64)},
			{Name: "B", T: tag.IntArray(64)},
			{Name: "sum", T: tag.Int()},
			{Name: "d", T: tag.DoubleArray(8)},
		},
	}
}

// cluster builds a home plus one local thread per platform in plats, all
// over in-process pipes.
func cluster(t *testing.T, homePlat *platform.Platform, plats []*platform.Platform) (*Home, []*Thread) {
	t.Helper()
	h, err := NewHome(testGThV(), homePlat, len(plats), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	threads := make([]*Thread, len(plats))
	for i, p := range plats {
		th, err := h.LocalThread(int32(i), p, DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		threads[i] = th
	}
	return h, threads
}

func TestLockUnlockPropagatesHeterogeneous(t *testing.T) {
	_, ths := cluster(t, platform.LinuxX86, []*platform.Platform{platform.SolarisSPARC, platform.LinuxX86})
	a, b := ths[0], ths[1]

	if err := a.Lock(0); err != nil {
		t.Fatal(err)
	}
	sum := a.Globals().MustVar("sum")
	if err := sum.SetInt(0, -12345); err != nil {
		t.Fatal(err)
	}
	arr := a.Globals().MustVar("A")
	for i := 0; i < 10; i++ {
		if err := arr.SetInt(i, int64(i*i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := a.Unlock(0); err != nil {
		t.Fatal(err)
	}

	if err := b.Lock(0); err != nil {
		t.Fatal(err)
	}
	got, err := b.Globals().MustVar("sum").Int(0)
	if err != nil {
		t.Fatal(err)
	}
	if got != -12345 {
		t.Errorf("sum at B = %d, want -12345 (endianness conversion broken?)", got)
	}
	bArr := b.Globals().MustVar("A")
	for i := 0; i < 10; i++ {
		v, err := bArr.Int(i)
		if err != nil {
			t.Fatal(err)
		}
		if v != int64(i*i) {
			t.Errorf("A[%d] at B = %d, want %d", i, v, i*i)
		}
	}
	if err := b.Unlock(0); err != nil {
		t.Fatal(err)
	}
}

func TestDoublePropagation(t *testing.T) {
	_, ths := cluster(t, platform.SolarisSPARC, []*platform.Platform{platform.LinuxX86, platform.SolarisSPARC})
	a, b := ths[0], ths[1]
	if err := a.Lock(0); err != nil {
		t.Fatal(err)
	}
	d := a.Globals().MustVar("d")
	if err := d.SetFloat64s(0, []float64{3.14159, -2.5, 1e-300, 1e300}); err != nil {
		t.Fatal(err)
	}
	if err := a.Unlock(0); err != nil {
		t.Fatal(err)
	}
	if err := b.Lock(0); err != nil {
		t.Fatal(err)
	}
	got, err := b.Globals().MustVar("d").Float64s(0, 4)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{3.14159, -2.5, 1e-300, 1e300}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("d[%d] = %g, want %g", i, got[i], want[i])
		}
	}
	if err := b.Unlock(0); err != nil {
		t.Fatal(err)
	}
}

func TestMutualExclusionCounter(t *testing.T) {
	plats := []*platform.Platform{
		platform.LinuxX86, platform.SolarisSPARC, platform.LinuxX86, platform.SolarisSPARC,
	}
	_, ths := cluster(t, platform.LinuxX86, plats)
	const perThread = 25
	var wg sync.WaitGroup
	errs := make(chan error, len(ths))
	for _, th := range ths {
		wg.Add(1)
		go func(th *Thread) {
			defer wg.Done()
			sum := th.Globals().MustVar("sum")
			for i := 0; i < perThread; i++ {
				if err := th.Lock(0); err != nil {
					errs <- err
					return
				}
				v, err := sum.Int(0)
				if err != nil {
					errs <- err
					return
				}
				if err := sum.SetInt(0, v+1); err != nil {
					errs <- err
					return
				}
				if err := th.Unlock(0); err != nil {
					errs <- err
					return
				}
			}
			errs <- th.Join()
		}(th)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	// After all joins, the master copy holds the exact count: no lost
	// updates despite four heterogeneous writers.
	want := int64(perThread * len(ths))
	home := ths[0] // any thread could check; read master directly instead
	_ = home
	hG, err := hGlobalsSum(t, ths)
	if err != nil {
		t.Fatal(err)
	}
	if hG != want {
		t.Errorf("final counter = %d, want %d", hG, want)
	}
}

// hGlobalsSum reads the final counter through a fresh thread (which, as a
// late joiner, receives the full current state on its first acquire).
func hGlobalsSum(t *testing.T, ths []*Thread) (int64, error) {
	t.Helper()
	return readBack(ths[0])
}

func readBack(th *Thread) (int64, error) {
	if err := th.Lock(1); err != nil {
		return 0, err
	}
	v, err := th.Globals().MustVar("sum").Int(0)
	if err != nil {
		return 0, err
	}
	return v, th.Unlock(1)
}

func TestBarrierPropagation(t *testing.T) {
	plats := []*platform.Platform{platform.LinuxX86, platform.SolarisSPARC, platform.SolarisSPARC}
	_, ths := cluster(t, platform.LinuxX86, plats)
	var wg sync.WaitGroup
	errs := make(chan error, len(ths))
	for r, th := range ths {
		wg.Add(1)
		go func(r int, th *Thread) {
			defer wg.Done()
			a := th.Globals().MustVar("A")
			// Phase 1: each thread writes its slice of A.
			for i := r * 20; i < (r+1)*20; i++ {
				if err := a.SetInt(i, int64(1000+i)); err != nil {
					errs <- err
					return
				}
			}
			if err := th.Barrier(0); err != nil {
				errs <- err
				return
			}
			// Phase 2: every thread sees every slice.
			for i := 0; i < 60; i++ {
				v, err := a.Int(i)
				if err != nil {
					errs <- err
					return
				}
				if v != int64(1000+i) {
					errs <- fmt.Errorf("rank %d: A[%d] = %d, want %d", r, i, v, 1000+i)
					return
				}
			}
			errs <- th.Join()
		}(r, th)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}

func TestPointerTranslation(t *testing.T) {
	// Thread A (sparc, base X) stores the address of A[3]; thread B
	// (linux, different base) must read the address of ITS A[3].
	h, err := NewHome(testGThV(), platform.LinuxX86, 2, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	optA := DefaultOptions()
	optA.Base = 0x70000000
	a, err := h.LocalThread(0, platform.SolarisSPARC, optA)
	if err != nil {
		t.Fatal(err)
	}
	optB := DefaultOptions()
	optB.Base = 0x20000000
	b, err := h.LocalThread(1, platform.LinuxX86, optB)
	if err != nil {
		t.Fatal(err)
	}

	if err := a.Lock(0); err != nil {
		t.Fatal(err)
	}
	aArr := a.Globals().MustVar("A")
	addr, err := aArr.Addr(3)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Globals().MustVar("GThP").SetPtr(0, addr); err != nil {
		t.Fatal(err)
	}
	if err := a.Unlock(0); err != nil {
		t.Fatal(err)
	}

	if err := b.Lock(0); err != nil {
		t.Fatal(err)
	}
	got, err := b.Globals().MustVar("GThP").Ptr(0)
	if err != nil {
		t.Fatal(err)
	}
	want, err := b.Globals().MustVar("A").Addr(3)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("translated pointer = %#x, want %#x", got, want)
	}
	if err := b.Unlock(0); err != nil {
		t.Fatal(err)
	}
}

func TestJoinReleasesWait(t *testing.T) {
	h, ths := cluster(t, platform.LinuxX86, []*platform.Platform{platform.LinuxX86, platform.SolarisSPARC})
	for _, th := range ths {
		if err := th.Join(); err != nil {
			t.Fatal(err)
		}
	}
	h.Wait() // must not hang
}

func TestLateJoinerReceivesFullState(t *testing.T) {
	h, err := NewHome(testGThV(), platform.LinuxX86, 3, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	a, err := h.LocalThread(0, platform.LinuxX86, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Lock(0); err != nil {
		t.Fatal(err)
	}
	if err := a.Globals().MustVar("sum").SetInt(0, 777); err != nil {
		t.Fatal(err)
	}
	if err := a.Unlock(0); err != nil {
		t.Fatal(err)
	}
	// A heterogeneous thread connects only now.
	late, err := h.LocalThread(2, platform.SolarisSPARC, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := late.Lock(0); err != nil {
		t.Fatal(err)
	}
	v, err := late.Globals().MustVar("sum").Int(0)
	if err != nil {
		t.Fatal(err)
	}
	if v != 777 {
		t.Errorf("late joiner sees sum = %d, want 777", v)
	}
	if err := late.Unlock(0); err != nil {
		t.Fatal(err)
	}
}

func TestStatsAccumulate(t *testing.T) {
	h, ths := cluster(t, platform.LinuxX86, []*platform.Platform{platform.SolarisSPARC, platform.LinuxX86})
	a, b := ths[0], ths[1]
	if err := a.Lock(0); err != nil {
		t.Fatal(err)
	}
	arr := a.Globals().MustVar("A")
	vals := make([]int64, 64)
	for i := range vals {
		vals[i] = int64(i)
	}
	if err := arr.SetInts(0, vals); err != nil {
		t.Fatal(err)
	}
	if err := a.Unlock(0); err != nil {
		t.Fatal(err)
	}
	if err := b.Lock(0); err != nil {
		t.Fatal(err)
	}
	if err := b.Unlock(0); err != nil {
		t.Fatal(err)
	}

	// The releasing thread paid index/tag/pack.
	for _, p := range []stats.Phase{stats.Index, stats.Tag, stats.Pack} {
		if a.Stats().Count(p) == 0 {
			t.Errorf("releasing thread has no %v samples", p)
		}
	}
	// The home paid unpack and conversion, and B paid unpack+conv on its
	// grant.
	if h.Stats().Bytes(stats.Conv) == 0 {
		t.Error("home recorded no conversion bytes")
	}
	if b.Stats().Bytes(stats.Conv) == 0 {
		t.Error("grantee recorded no conversion bytes")
	}
}

func TestTCPTransportEndToEnd(t *testing.T) {
	h, err := NewHome(testGThV(), platform.LinuxX86, 2, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	var nw transport.TCP
	l, err := nw.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	go h.Serve(l)

	a, err := Dial(nw, l.Addr(), platform.SolarisSPARC, 0, testGThV(), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := Dial(nw, l.Addr(), platform.LinuxX86, 1, testGThV(), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	if err := a.Lock(0); err != nil {
		t.Fatal(err)
	}
	if err := a.Globals().MustVar("sum").SetInt(0, 42); err != nil {
		t.Fatal(err)
	}
	if err := a.Unlock(0); err != nil {
		t.Fatal(err)
	}
	if err := b.Lock(0); err != nil {
		t.Fatal(err)
	}
	v, err := b.Globals().MustVar("sum").Int(0)
	if err != nil {
		t.Fatal(err)
	}
	if v != 42 {
		t.Errorf("over TCP: sum = %d, want 42", v)
	}
	if err := b.Unlock(0); err != nil {
		t.Fatal(err)
	}
}

func TestAblationOptionsStillCorrect(t *testing.T) {
	for _, mode := range []struct {
		name string
		mod  func(*Options)
	}{
		{"no-coalesce", func(o *Options) { o.Coalesce = false }},
		{"no-whole-array", func(o *Options) { o.WholeArrayThreshold = 0 }},
		{"word-diff", func(o *Options) { o.Diff = 1 }},
	} {
		t.Run(mode.name, func(t *testing.T) {
			opts := DefaultOptions()
			mode.mod(&opts)
			h, err := NewHome(testGThV(), platform.LinuxX86, 2, opts)
			if err != nil {
				t.Fatal(err)
			}
			a, err := h.LocalThread(0, platform.SolarisSPARC, opts)
			if err != nil {
				t.Fatal(err)
			}
			b, err := h.LocalThread(1, platform.LinuxX86, opts)
			if err != nil {
				t.Fatal(err)
			}
			if err := a.Lock(0); err != nil {
				t.Fatal(err)
			}
			arr := a.Globals().MustVar("A")
			for i := 0; i < 64; i += 3 { // strided writes: many spans
				if err := arr.SetInt(i, int64(7*i)); err != nil {
					t.Fatal(err)
				}
			}
			if err := a.Unlock(0); err != nil {
				t.Fatal(err)
			}
			if err := b.Lock(0); err != nil {
				t.Fatal(err)
			}
			bArr := b.Globals().MustVar("A")
			for i := 0; i < 64; i += 3 {
				v, err := bArr.Int(i)
				if err != nil {
					t.Fatal(err)
				}
				if v != int64(7*i) {
					t.Errorf("%s: A[%d] = %d, want %d", mode.name, i, v, 7*i)
				}
			}
			if err := b.Unlock(0); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestFlushPropagatesWithoutLock(t *testing.T) {
	_, ths := cluster(t, platform.LinuxX86, []*platform.Platform{platform.SolarisSPARC, platform.LinuxX86})
	a, b := ths[0], ths[1]
	// Writes outside any critical section, then Flush.
	if err := a.Globals().MustVar("sum").SetInt(0, 99); err != nil {
		t.Fatal(err)
	}
	if err := a.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := b.Lock(0); err != nil {
		t.Fatal(err)
	}
	v, err := b.Globals().MustVar("sum").Int(0)
	if err != nil {
		t.Fatal(err)
	}
	if v != 99 {
		t.Errorf("after flush: sum = %d, want 99", v)
	}
	if err := b.Unlock(0); err != nil {
		t.Fatal(err)
	}
}

func TestRankReregistrationAfterClose(t *testing.T) {
	// A migrated thread gives up its connection; the same rank must be
	// able to re-register from a different platform and see full state.
	h, err := NewHome(testGThV(), platform.LinuxX86, 2, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	a, err := h.LocalThread(0, platform.LinuxX86, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Globals().MustVar("sum").SetInt(0, 31); err != nil {
		t.Fatal(err)
	}
	if err := a.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	// Re-register rank 0 from SPARC; may need a moment for the stub to
	// notice the close.
	var a2 *Thread
	for i := 0; i < 500; i++ {
		a2, err = h.LocalThread(0, platform.SolarisSPARC, DefaultOptions())
		if err == nil {
			break
		}
		time.Sleep(time.Millisecond)
	}
	if err != nil {
		t.Fatalf("re-registration never succeeded: %v", err)
	}
	if err := a2.Lock(0); err != nil {
		t.Fatal(err)
	}
	v, err := a2.Globals().MustVar("sum").Int(0)
	if err != nil {
		t.Fatal(err)
	}
	if v != 31 {
		t.Errorf("reincarnated thread sees sum = %d, want 31", v)
	}
	if err := a2.Unlock(0); err != nil {
		t.Fatal(err)
	}
}

func TestTracingRecordsProtocol(t *testing.T) {
	log := trace.NewLog(256)
	opts := DefaultOptions()
	opts.Trace = log
	h, err := NewHome(testGThV(), platform.LinuxX86, 2, opts)
	if err != nil {
		t.Fatal(err)
	}
	a, err := h.LocalThread(0, platform.SolarisSPARC, opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := h.LocalThread(1, platform.LinuxX86, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Lock(0); err != nil {
		t.Fatal(err)
	}
	if err := a.Globals().MustVar("sum").SetInt(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := a.Unlock(0); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 2)
	for _, th := range []*Thread{a, b} {
		go func(th *Thread) {
			if err := th.Barrier(0); err != nil {
				done <- err
				return
			}
			done <- th.Join()
		}(th)
	}
	for i := 0; i < 2; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	h.Wait()

	if got := len(log.Filter(trace.KindHello)); got != 2 {
		t.Errorf("hello events = %d, want 2", got)
	}
	grants := log.Filter(trace.KindLockGrant)
	if len(grants) != 1 {
		t.Errorf("lock-grant events = %d, want 1", len(grants))
	}
	unlocks := log.Filter(trace.KindUnlock)
	if len(unlocks) != 1 || unlocks[0].Bytes == 0 {
		t.Errorf("unlock events = %v", unlocks)
	}
	if got := len(log.Filter(trace.KindBarrierArrive)); got != 2 {
		t.Errorf("barrier arrivals = %d, want 2", got)
	}
	if got := len(log.Filter(trace.KindBarrierOpen)); got != 1 {
		t.Errorf("barrier opens = %d, want 1", got)
	}
	if got := len(log.Filter(trace.KindJoin)); got != 2 {
		t.Errorf("joins = %d, want 2", got)
	}
	// B received A's update at some point: an apply with bytes on B's side.
	applied := false
	for _, e := range log.Filter(trace.KindApply) {
		if e.Rank == 1 && e.Bytes > 0 {
			applied = true
		}
	}
	if !applied {
		t.Error("no apply event recorded at thread B")
	}
}

func TestValidationErrors(t *testing.T) {
	if _, err := NewHome(testGThV(), platform.LinuxX86, 0, DefaultOptions()); err == nil {
		t.Error("zero threads must fail")
	}
	bad := DefaultOptions()
	bad.Base = 0
	if _, err := NewHome(testGThV(), platform.LinuxX86, 1, bad); err == nil {
		t.Error("zero base must fail")
	}
	bad = DefaultOptions()
	bad.Base = 4097 // unaligned
	if _, err := NewHome(testGThV(), platform.LinuxX86, 1, bad); err == nil {
		t.Error("unaligned base must fail")
	}
	bad = DefaultOptions()
	bad.WholeArrayThreshold = 2
	if _, err := NewHome(testGThV(), platform.LinuxX86, 1, bad); err == nil {
		t.Error("threshold > 1 must fail")
	}
	h, err := NewHome(testGThV(), platform.LinuxX86, 2, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.LocalThread(0, platform.LinuxX86, DefaultOptions()); err != nil {
		t.Fatal(err)
	}
	// Duplicate rank is rejected by the home: the handshake fails and the
	// pipe closes.
	if _, err := h.LocalThread(0, platform.LinuxX86, DefaultOptions()); err == nil {
		t.Error("duplicate rank must fail")
	}
}

func TestUnknownHomePlatformRejected(t *testing.T) {
	h, err := NewHome(testGThV(), platform.LinuxX86, 1, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	// A platform not registered in platform.ByName: the home cannot build
	// a table for it and must reject the hello.
	exotic := platform.New("vax", "V", platform.Little, platform.ILP32, 4096, true)
	if _, err := h.LocalThread(0, exotic, DefaultOptions()); err == nil {
		t.Error("unknown platform must be rejected")
	}
}

func TestUnsignedAccessors(t *testing.T) {
	gthv := tag.Struct{Name: "G", Fields: []tag.Field{
		{Name: "u", T: tag.Scalar{T: platform.CUInt}},
	}}
	h, err := NewHome(gthv, platform.LinuxX86, 2, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	a, err := h.LocalThread(0, platform.SolarisSPARC, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	b, err := h.LocalThread(1, platform.LinuxX86, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Lock(0); err != nil {
		t.Fatal(err)
	}
	u := a.Globals().MustVar("u")
	if err := u.SetUint(0, 0xFFFF0001); err != nil {
		t.Fatal(err)
	}
	if got, _ := u.Uint(0); got != 0xFFFF0001 {
		t.Errorf("local Uint = %#x", got)
	}
	if err := a.Unlock(0); err != nil {
		t.Fatal(err)
	}
	if err := b.Lock(0); err != nil {
		t.Fatal(err)
	}
	// Conversion of the unsigned value across endianness is exact and
	// does NOT sign-extend.
	got, err := b.Globals().MustVar("u").Uint(0)
	if err != nil {
		t.Fatal(err)
	}
	if got != 0xFFFF0001 {
		t.Errorf("converted Uint = %#x, want 0xFFFF0001", got)
	}
	if err := b.Unlock(0); err != nil {
		t.Fatal(err)
	}
}

func TestGlobalsAccessorErrors(t *testing.T) {
	_, ths := cluster(t, platform.LinuxX86, []*platform.Platform{platform.LinuxX86})
	g := ths[0].Globals()
	if _, err := g.Var("missing"); err == nil {
		t.Error("unknown var must fail")
	}
	a := g.MustVar("A")
	if err := a.SetInt(64, 1); err == nil {
		t.Error("out-of-range index must fail")
	}
	if _, err := a.Int(-1); err == nil {
		t.Error("negative index must fail")
	}
	if err := a.SetInts(60, make([]int64, 10)); err == nil {
		t.Error("overflowing bulk write must fail")
	}
	if _, err := a.Float64(0); err == nil {
		t.Error("Float64 on int var must fail")
	}
	if err := a.SetPtr(0, 1); err == nil {
		t.Error("SetPtr on int var must fail")
	}
	p := g.MustVar("GThP")
	if _, err := p.Ptr(0); err != nil {
		t.Errorf("Ptr on pointer var: %v", err)
	}
	if a.Len() != 64 || a.Name() != "A" || a.ElemSize() != 4 {
		t.Errorf("metadata wrong: %d %s %d", a.Len(), a.Name(), a.ElemSize())
	}
}

// TestKitchenSinkTypes propagates every supported C scalar type across
// every heterogeneous pairing in one shared structure.
func TestKitchenSinkTypes(t *testing.T) {
	gthv := tag.Struct{Name: "GThV_t", Fields: []tag.Field{
		{Name: "c", T: tag.Char()},
		{Name: "s", T: tag.Scalar{T: platform.CShort}},
		{Name: "i", T: tag.Int()},
		{Name: "u", T: tag.Scalar{T: platform.CUInt}},
		{Name: "l", T: tag.Long()},
		{Name: "ll", T: tag.LongLong()},
		{Name: "f", T: tag.Scalar{T: platform.CFloat}},
		{Name: "d", T: tag.Double()},
		{Name: "p", T: tag.Pointer{}},
		{Name: "ca", T: tag.Array{Elem: tag.Char(), N: 13}},
		{Name: "da", T: tag.DoubleArray(5)},
	}}
	plats := platform.All()
	for _, homePlat := range plats {
		for _, remotePlat := range plats {
			h, err := NewHome(gthv, homePlat, 2, DefaultOptions())
			if err != nil {
				t.Fatal(err)
			}
			a, err := h.LocalThread(0, remotePlat, DefaultOptions())
			if err != nil {
				t.Fatal(err)
			}
			b, err := h.LocalThread(1, homePlat, DefaultOptions())
			if err != nil {
				t.Fatal(err)
			}
			if err := a.Lock(0); err != nil {
				t.Fatal(err)
			}
			g := a.Globals()
			must := func(err error) {
				t.Helper()
				if err != nil {
					t.Fatalf("%s->%s: %v", remotePlat, homePlat, err)
				}
			}
			must(g.MustVar("c").SetInt(0, -7))
			must(g.MustVar("s").SetInt(0, -30000))
			must(g.MustVar("i").SetInt(0, -2000000000))
			must(g.MustVar("u").SetUint(0, 0xFEDCBA98))
			must(g.MustVar("l").SetInt(0, -123456)) // fits ILP32 long
			must(g.MustVar("ll").SetInt(0, -9e15))
			must(g.MustVar("f").SetFloat32(0, 1.5))
			must(g.MustVar("d").SetFloat64(0, -2.25e100))
			for k, ch := range "hello, world" {
				must(g.MustVar("ca").SetInt(k, int64(ch)))
			}
			must(g.MustVar("da").SetFloat64s(0, []float64{1, -2, 4e-300, 8e300, 0}))
			must(a.Unlock(0))

			must(b.Lock(0))
			gb := b.Globals()
			check := func(name string, got, want interface{}) {
				t.Helper()
				if got != want {
					t.Errorf("%s->%s: %s = %v, want %v", remotePlat, homePlat, name, got, want)
				}
			}
			vi, _ := gb.MustVar("c").Int(0)
			check("c", vi, int64(-7))
			vi, _ = gb.MustVar("s").Int(0)
			check("s", vi, int64(-30000))
			vi, _ = gb.MustVar("i").Int(0)
			check("i", vi, int64(-2000000000))
			vu, _ := gb.MustVar("u").Uint(0)
			check("u", vu, uint64(0xFEDCBA98))
			vi, _ = gb.MustVar("l").Int(0)
			check("l", vi, int64(-123456))
			vi, _ = gb.MustVar("ll").Int(0)
			check("ll", vi, int64(-9e15))
			vf, _ := gb.MustVar("f").Float32(0)
			check("f", vf, float32(1.5))
			vd, _ := gb.MustVar("d").Float64(0)
			check("d", vd, -2.25e100)
			for k, ch := range "hello, world" {
				vi, _ = gb.MustVar("ca").Int(k)
				check("ca", vi, int64(ch))
			}
			ds, err := gb.MustVar("da").Float64s(0, 5)
			must(err)
			for k, want := range []float64{1, -2, 4e-300, 8e300, 0} {
				check("da", ds[k], want)
			}
			must(b.Unlock(0))
		}
	}
}

// TestBatchUpdateBuildup validates the mechanism behind the paper's Figure
// 9 spike: "a series of updates can build up at the home node, resulting in
// a rather large batch update being transferred". One thread releases many
// times while another stays away; the absentee's next grant arrives as one
// merged batch.
func TestBatchUpdateBuildup(t *testing.T) {
	_, ths := cluster(t, platform.LinuxX86, []*platform.Platform{platform.SolarisSPARC, platform.LinuxX86})
	a, b := ths[0], ths[1]
	// A performs many small critical sections.
	arr := a.Globals().MustVar("A")
	for round := 0; round < 16; round++ {
		if err := a.Lock(0); err != nil {
			t.Fatal(err)
		}
		for k := 0; k < 4; k++ {
			if err := arr.SetInt(round*4+k, int64(round*100+k)); err != nil {
				t.Fatal(err)
			}
		}
		if err := a.Unlock(0); err != nil {
			t.Fatal(err)
		}
	}
	// B's single acquire receives the whole accumulation, coalesced.
	beforeConv := b.Stats().Bytes(stats.Conv)
	beforeCount := b.Stats().Count(stats.Conv)
	if err := b.Lock(0); err != nil {
		t.Fatal(err)
	}
	batchBytes := b.Stats().Bytes(stats.Conv) - beforeConv
	batchApplies := b.Stats().Count(stats.Conv) - beforeCount
	if batchBytes < 64*4 {
		t.Errorf("batch only %d bytes; 16 rounds x 16 bytes expected", batchBytes)
	}
	if batchApplies != 1 {
		t.Errorf("batch arrived in %d applications, want 1 merged grant", batchApplies)
	}
	for i := 0; i < 64; i++ {
		v, err := b.Globals().MustVar("A").Int(i)
		if err != nil {
			t.Fatal(err)
		}
		if v != int64((i/4)*100+i%4) {
			t.Errorf("A[%d] = %d", i, v)
		}
	}
	if err := b.Unlock(0); err != nil {
		t.Fatal(err)
	}
}
