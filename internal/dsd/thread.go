package dsd

import (
	"errors"
	"fmt"
	"math/rand"
	"sync/atomic"
	"time"

	"hetdsm/internal/convert"
	"hetdsm/internal/flight"
	"hetdsm/internal/indextable"
	"hetdsm/internal/platform"
	"hetdsm/internal/stats"
	"hetdsm/internal/tag"
	"hetdsm/internal/telemetry"
	"hetdsm/internal/trace"
	"hetdsm/internal/transport"
	"hetdsm/internal/vmem"
	"hetdsm/internal/wire"
)

// Thread is one DSD worker: a rank, a platform, a GThV replica in that
// platform's layout, and a connection to its stub at the home node. All
// methods must be called from the single goroutine that owns the thread
// (the paper's one-thread-one-address-space model).
type Thread struct {
	rank int32
	plat *platform.Platform
	opts Options
	gthv tag.Struct
	conn transport.Conn

	layout     *tag.Layout
	table      *indextable.Table
	seg        *vmem.Segment
	globals    *Globals
	homePlat   *platform.Platform
	homeTable  *indextable.Table
	translator convert.Translator

	bd  stats.Breakdown
	seq atomic.Uint64
	tm  threadMetrics

	// proto is the home's propagation protocol, adopted at registration.
	proto Protocol
	// homeEpoch is the highest fencing epoch this thread has seen from a
	// home. A handshake or frame from a lower epoch is a stale incarnation
	// (a revived pre-failover primary, say) and is rejected.
	homeEpoch uint64
	// warm marks that the replica already holds state synchronized with a
	// previous home; set before redirect re-registrations.
	warm bool
	// invalid tracks element spans whose local copies are stale under the
	// invalidate protocol; reads overlapping them fetch from the home.
	invalid []indextable.Span
	// pending tracks element spans written locally since the last release
	// point. A local write is authoritative until its release ships it, so
	// incoming updates (lock grants, barrier releases, fetch replies — in
	// particular a home's conservative catch-up after a reconnect or an
	// entry re-homing) must never overwrite these spans: doing so would
	// silently lose the write, because applying remote data also rewrites
	// the twin and erases the diff.
	pending []indextable.Span
	// heatPrev holds the per-page fault totals already reported to the
	// home, so each release piggybacks only the window's delta.
	heatPrev map[int]uint64

	// nw and addr are set by Dial-created threads and enable transparent
	// home-handoff redirect following; Connect-created threads (raw
	// conns, in-process pipes) cannot follow redirects.
	nw   transport.Network
	addr string

	// rc is set by DialHA-created threads: conn is then a reconnecting
	// wrapper whose OnConnect re-registers with whichever home answers,
	// and call retries requests across connection failures.
	rc *transport.Reconn

	// deadline is the current attempt's expiry, armed at the top of each
	// call attempt when Options.OpTimeout is set; zero means unbounded.
	// Single-goroutine like the rest of the thread, so unguarded.
	deadline time.Time
	// retryRng jitters the backoff between deadline-expired replays so a
	// cluster of expired ranks does not hammer a recovering home in
	// lockstep; seeded per rank for reproducibility.
	retryRng *rand.Rand
	// deadlineHits counts attempts that expired (mirrors the
	// dsm_op_deadline_exceeded counter for metric-less threads).
	deadlineHits atomic.Uint64
}

// Connect performs the hello handshake over an established connection and
// returns a ready thread with an armed (write-protected) replica.
func Connect(conn transport.Conn, p *platform.Platform, rank int32, gthv tag.Struct, opts Options) (*Thread, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	if opts.Base%uint64(p.PageSize) != 0 {
		return nil, fmt.Errorf("dsd: base %#x not aligned to %s page size %d", opts.Base, p, p.PageSize)
	}
	layout, err := tag.NewLayout(gthv, p)
	if err != nil {
		return nil, err
	}
	table, err := indextable.Build(layout, opts.Base)
	if err != nil {
		return nil, err
	}
	seg, err := vmem.NewSegment(opts.Base, layout.Size, p.PageSize)
	if err != nil {
		return nil, err
	}
	t := &Thread{
		rank:   rank,
		plat:   p,
		opts:   opts,
		gthv:   gthv,
		conn:   conn,
		layout: layout,
		table:  table,
		seg:    seg,
		tm:     newThreadMetrics(opts.Metrics),
	}
	t.initDeadlinePlane()
	t.globals = newGlobals(p, table, seg)
	t.globals.ensure = t.ensureValid
	t.globals.wrote = t.noteLocalWrite
	t.globals.rec = opts.Recorder
	t.globals.rank = rank
	if err := t.handshake(); err != nil {
		return nil, err
	}
	t.seg.ProtectAll()
	return t, nil
}

// handshake registers the thread with its (possibly new, after a redirect)
// home and learns the home's platform and base for conversions.
func (t *Thread) handshake() error { return t.handshakeOn(t.conn) }

// handshakeOn runs the hello exchange over an explicit connection. HA
// threads install it as the Reconn's OnConnect hook, which hands them the
// raw, freshly dialed conn — sending through t.conn there would re-enter
// the redial path and deadlock.
func (t *Thread) handshakeOn(c transport.Conn) error {
	var flags uint8
	if t.warm {
		flags |= wire.FlagWarmReplica
	}
	if err := t.sendOn(c, &wire.Message{
		Kind:     wire.KindHello,
		Rank:     t.rank,
		Platform: t.plat.Name,
		Base:     t.opts.Base,
		Flags:    flags,
	}); err != nil {
		return err
	}
	ack, err := t.recvOn(c)
	if err != nil {
		return err
	}
	if ack.Kind != wire.KindHelloAck {
		return fmt.Errorf("dsd: expected %v, got %v", wire.KindHelloAck, ack.Kind)
	}
	if ack.Epoch != 0 && ack.Epoch < t.homeEpoch {
		// A home from an older epoch answered (the revived original after
		// a failover or WAL restart). Registering with it would fork the
		// master state; refuse, and let the reconnect policy find the
		// current incarnation.
		return fmt.Errorf("dsd: home at stale epoch %d, already saw %d", ack.Epoch, t.homeEpoch)
	}
	if ack.Epoch > t.homeEpoch {
		t.homeEpoch = ack.Epoch
	}
	t.homePlat = platform.ByName(ack.Platform)
	if t.homePlat == nil {
		return fmt.Errorf("dsd: home reported unknown platform %q", ack.Platform)
	}
	homeLayout, err := tag.NewLayout(t.gthv, t.homePlat)
	if err != nil {
		return err
	}
	t.homeTable, err = indextable.Build(homeLayout, ack.Base)
	if err != nil {
		return err
	}
	t.translator = t.table.Translator(t.homeTable)
	t.proto = Protocol(ack.Proto)
	// From now on the replica tracks this home: any later registration
	// (redirect, reconnect) is a warm one, and the home's pending queue
	// for this rank is its exact catch-up.
	t.warm = true
	return nil
}

// Protocol returns the propagation protocol in force (the home's choice).
func (t *Thread) Protocol() Protocol { return t.proto }

// noteLocalWrite records the span in the pending set and drops any stale
// marking: the local write is authoritative until the next release point.
func (t *Thread) noteLocalWrite(entry, first, count int) {
	sp := indextable.Span{Entry: entry, First: first, Count: count}
	t.pending = indextable.MergeSpans(append(t.pending, sp))
	if len(t.invalid) == 0 {
		return
	}
	t.invalid = indextable.SubtractSpan(t.invalid, sp)
}

// ensureValid makes [first, first+count) of entry current before a read:
// under the invalidate protocol, any overlap with the invalid set is
// fetched from the home on demand.
func (t *Thread) ensureValid(entry, first, count int) error {
	if len(t.invalid) == 0 {
		return nil
	}
	want := indextable.Span{Entry: entry, First: first, Count: count}
	need := indextable.IntersectSpans(t.invalid, want)
	if len(need) == 0 {
		return nil
	}
	req := make([]wire.Update, len(need))
	for i, s := range need {
		req[i] = wire.Update{Entry: int32(s.Entry), First: int32(s.First), Count: int32(s.Count)}
	}
	reply, err := t.call(&wire.Message{
		Kind:    wire.KindFetchReq,
		Rank:    t.rank,
		Updates: req,
	}, wire.KindFetchReply)
	if err != nil {
		return err
	}
	if err := t.applyIncoming(reply); err != nil {
		return err
	}
	for _, s := range need {
		t.invalid = indextable.SubtractSpan(t.invalid, s)
	}
	return nil
}

// Dial connects to a home node over a network and returns a ready thread.
func Dial(nw transport.Network, addr string, p *platform.Platform, rank int32, gthv tag.Struct, opts Options) (*Thread, error) {
	conn, err := nw.Dial(addr)
	if err != nil {
		return nil, err
	}
	t, err := Connect(conn, p, rank, gthv, opts)
	if err != nil {
		conn.Close()
		return nil, err
	}
	t.nw = nw
	t.addr = addr
	return t, nil
}

// DialHA connects to a home that may fail over: addrs lists the candidate
// homes (primary first, then standbys). The connection is a reconnecting
// wrapper — when it breaks, the next request redials through the candidate
// list with capped exponential backoff and jitter, re-registers via the
// hello handshake, and re-sends the in-flight request under its original
// sequence number so the home (original or promoted standby) applies it at
// most once.
func DialHA(nw transport.Network, addrs []string, p *platform.Platform, rank int32, gthv tag.Struct, opts Options) (*Thread, error) {
	return DialHABackoff(nw, addrs, p, rank, gthv, opts, transport.DefaultBackoff())
}

// DialHABackoff is DialHA with an explicit reconnect policy.
func DialHABackoff(nw transport.Network, addrs []string, p *platform.Platform, rank int32, gthv tag.Struct, opts Options, policy transport.Backoff) (*Thread, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	if opts.Base%uint64(p.PageSize) != 0 {
		return nil, fmt.Errorf("dsd: base %#x not aligned to %s page size %d", opts.Base, p, p.PageSize)
	}
	layout, err := tag.NewLayout(gthv, p)
	if err != nil {
		return nil, err
	}
	table, err := indextable.Build(layout, opts.Base)
	if err != nil {
		return nil, err
	}
	seg, err := vmem.NewSegment(opts.Base, layout.Size, p.PageSize)
	if err != nil {
		return nil, err
	}
	rc := transport.NewReconn(nw, addrs, policy)
	t := &Thread{
		rank:   rank,
		plat:   p,
		opts:   opts,
		gthv:   gthv,
		conn:   rc,
		layout: layout,
		table:  table,
		seg:    seg,
		nw:     nw,
		rc:     rc,
		tm:     newThreadMetrics(opts.Metrics),
	}
	t.initDeadlinePlane()
	t.globals = newGlobals(p, table, seg)
	t.globals.ensure = t.ensureValid
	t.globals.wrote = t.noteLocalWrite
	t.globals.rec = opts.Recorder
	t.globals.rank = rank
	rc.OnConnect = func(c transport.Conn) error {
		if err := t.handshakeOn(c); err != nil {
			return err
		}
		t.opts.Trace.Record(t.traceName(), trace.KindReconnect, t.rank, -1, 0, "")
		return nil
	}
	if err := rc.Connect(); err != nil {
		rc.Close()
		return nil, err
	}
	t.seg.ProtectAll()
	return t, nil
}

// Reconnects returns how many times this thread's connection was redialed
// after a failure (0 for non-HA threads and unbroken HA threads).
func (t *Thread) Reconnects() uint64 {
	if t.rc == nil {
		return 0
	}
	return t.rc.Reconnects()
}

// Rank returns the thread's iso-computing rank.
func (t *Thread) Rank() int32 { return t.rank }

// HomeEpoch returns the highest fencing epoch this thread has adopted
// from a home (1 for a never-failed cluster).
func (t *Thread) HomeEpoch() uint64 { return t.homeEpoch }

// Platform returns the thread's virtual platform.
func (t *Thread) Platform() *platform.Platform { return t.plat }

// Globals returns the typed view of the replica.
func (t *Thread) Globals() *Globals { return t.globals }

// Stats returns this thread's Cshare breakdown (index/tag/pack on release,
// unpack/conversion on acquire).
func (t *Thread) Stats() *stats.Breakdown { return &t.bd }

// Segment exposes the underlying replica segment for inspection (fault
// counts, twin bytes); tests and the migration layer use it.
func (t *Thread) Segment() *vmem.Segment { return t.seg }

// Heat returns the replica's page-heat report: per-page fault/diff
// counters with false-sharing suspects, hottest pages first.
func (t *Thread) Heat() vmem.HeatReport { return t.seg.Heat() }

// Close tears down the connection.
func (t *Thread) Close() error { return t.conn.Close() }

// call sends a request and receives the expected reply, transparently
// following home-handoff redirects (KindRedirect) when the thread was
// created with Dial: it reconnects to the new home, re-registers, and
// re-sends the request.
//
// HA threads (DialHA) additionally retry the request across connection
// failures: the re-send goes through the reconnecting conn, whose redial
// re-registers with whichever home answers — the original after a transient
// partition, or a promoted standby after a failover. The request keeps its
// sequence number (send stamps it once), so the home recognizes a replay of
// something it already processed and answers idempotently.
func (t *Thread) call(m *wire.Message, want wire.Kind) (*wire.Message, error) {
	attempts := 4
	if t.rc != nil {
		// Each failed attempt already rode out a full redial cycle, so
		// this bounds total patience, not dial count.
		attempts = 16
	}
	// Deadline expiries retry on a separate, larger budget: a lock or
	// barrier wait legitimately outlives OpTimeout under contention, and
	// every expiry severed the connection, so the replay is exactly the
	// reconnect replay the idempotency watermarks already dedup. The cap
	// only bounds a permanently wedged cluster.
	deadlineRetries := 0
	const maxDeadlineRetries = 64
	var lastErr error
	for attempt := 0; attempt < attempts; attempt++ {
		t.armDeadline()
		if err := t.send(m); err != nil {
			if t.rc != nil {
				lastErr = err
				if t.deadlineExpired(err) && deadlineRetries < maxDeadlineRetries {
					deadlineRetries++
					attempt--
				}
				continue
			}
			return nil, err
		}
		reply, err := t.recvAny()
		if err != nil {
			if t.rc != nil {
				lastErr = err
				if t.deadlineExpired(err) && deadlineRetries < maxDeadlineRetries {
					deadlineRetries++
					attempt--
				}
				continue
			}
			return nil, err
		}
		if reply.Kind == wire.KindRedirect {
			if err := t.followRedirect(reply.Addr); err != nil {
				return nil, err
			}
			continue
		}
		if reply.Kind != want {
			return nil, fmt.Errorf("dsd: expected %v, got %v", want, reply.Kind)
		}
		return reply, nil
	}
	if lastErr != nil {
		return nil, fmt.Errorf("dsd: %v gave up after %d attempts: %w", m.Kind, attempts, lastErr)
	}
	return nil, fmt.Errorf("dsd: too many home redirects")
}

// initDeadlinePlane arms the per-attempt deadline machinery when
// Options.OpTimeout is set; with it unset every field stays zero and the
// send/recv paths take the exact pre-deadline code path.
func (t *Thread) initDeadlinePlane() {
	if t.opts.OpTimeout > 0 {
		t.retryRng = rand.New(rand.NewSource(0x6ea511 + int64(t.rank)))
	}
}

// armDeadline starts a fresh attempt budget (no-op with OpTimeout unset).
func (t *Thread) armDeadline() {
	if t.opts.OpTimeout > 0 {
		t.deadline = time.Now().Add(t.opts.OpTimeout)
	}
}

// deadlineExpired reports whether err is an attempt-deadline expiry,
// counting it and sleeping a short jittered backoff so expired ranks do
// not replay against a recovering home in lockstep.
func (t *Thread) deadlineExpired(err error) bool {
	if !errors.Is(err, transport.ErrDeadline) {
		return false
	}
	t.deadlineHits.Add(1)
	t.tm.deadlines.Inc()
	if t.retryRng != nil {
		time.Sleep(time.Duration(t.retryRng.Int63n(int64(4*time.Millisecond))) + time.Millisecond)
	}
	return true
}

// DeadlineExceeded returns how many operation attempts hit their OpTimeout
// and were retried over a fresh connection (0 with the plane disabled).
func (t *Thread) DeadlineExceeded() uint64 { return t.deadlineHits.Load() }

// followRedirect reconnects to a moved home and re-registers.
func (t *Thread) followRedirect(addr string) error {
	if addr == "" {
		return fmt.Errorf("dsd: redirect without an address")
	}
	if t.rc != nil {
		// Point the reconnecting conn at the new home (keeping the old
		// candidates as fallbacks) and let the next send's redial run the
		// re-handshake through OnConnect.
		old := t.rc.Addrs()
		addrs := []string{addr}
		for _, a := range old {
			if a != addr {
				addrs = append(addrs, a)
			}
		}
		t.rc.SetAddrs(addrs)
		t.opts.Trace.Record(t.traceName(), trace.KindRedirect, t.rank, -1, 0, "to "+addr)
		return nil
	}
	if t.nw == nil {
		return fmt.Errorf("dsd: home moved to %q but this thread cannot redial (created with Connect, not Dial)", addr)
	}
	conn, err := t.nw.Dial(addr)
	if err != nil {
		return fmt.Errorf("dsd: following redirect to %q: %w", addr, err)
	}
	t.conn.Close()
	t.conn = conn
	t.addr = addr
	// The replica carries its state to the new home. (A crashed-and-
	// reincarnated rank that reaches the successor through the old
	// address would wrongly claim warmth; distinguishing that would need
	// replica generation numbers. Migration, the supported path, closes
	// the connection instead and re-registers cold.)
	t.warm = true
	t.opts.Trace.Record(t.traceName(), trace.KindRedirect, t.rank, -1, 0, "to "+addr)
	return t.handshake()
}

// Lock acquires distributed mutex idx (MTh_lock): the grant carries all
// outstanding updates, which are converted receiver-makes-right and applied
// before Lock returns.
func (t *Thread) Lock(idx int) error {
	var acqStart time.Time
	if t.tm.enabled {
		acqStart = time.Now()
	}
	grant, err := t.call(&wire.Message{Kind: wire.KindLockReq, Mutex: int32(idx), Rank: t.rank}, wire.KindLockGrant)
	if err != nil {
		return err
	}
	if t.tm.enabled {
		t.tm.lockAcquire.Observe(time.Since(acqStart).Seconds())
		t.tm.locks.Inc()
	}
	if err := t.applyIncoming(grant); err != nil {
		return err
	}
	if t.opts.Recorder != nil {
		t.opts.Recorder.Acquire(t.rank, idx)
	}
	// The ack is the one request without a reply; for HA threads a re-send
	// rides the reconnecting conn onto a fresh connection, whose home-side
	// stub tolerates a stray ack.
	ack := &wire.Message{Kind: wire.KindLockAck, Mutex: int32(idx), Rank: t.rank}
	attempts := 1
	if t.rc != nil {
		attempts = 16
	}
	var sendErr error
	for i := 0; i < attempts; i++ {
		t.armDeadline()
		if sendErr = t.send(ack); sendErr == nil {
			return nil
		}
	}
	return sendErr
}

// Unlock releases mutex idx (MTh_unlock): dirty pages are diffed, the
// diffs abstracted to index spans (t_index), tagged (t_tag), packed and
// shipped home with the release.
func (t *Thread) Unlock(idx int) error {
	updates, st := t.collectUpdates()
	m := &wire.Message{
		Kind:     wire.KindUnlockReq,
		Mutex:    int32(idx),
		Rank:     t.rank,
		Platform: t.plat.Name,
		Base:     t.opts.Base,
		Updates:  updates,
		Heat:     t.heatDelta(),
	}
	var shipStart time.Time
	if t.observesReleases() {
		shipStart = time.Now()
	}
	if _, err := t.call(m, wire.KindUnlockAck); err != nil {
		return err
	}
	if t.opts.Recorder != nil {
		t.opts.Recorder.Release(t.rank, idx)
	}
	if t.observesReleases() {
		t.finishRelease(m, st, shipStart)
	}
	t.rearm()
	return nil
}

// Barrier enters barrier idx (MTh_barrier): local updates are flushed like
// an unlock, the thread waits for all participants, and the merged updates
// of the phase are applied before Barrier returns.
func (t *Thread) Barrier(idx int) error {
	if t.opts.Recorder != nil {
		t.opts.Recorder.BarrierEnter(t.rank, idx)
	}
	updates, st := t.collectUpdates()
	m := &wire.Message{
		Kind:     wire.KindBarrierReq,
		Mutex:    int32(idx),
		Rank:     t.rank,
		Platform: t.plat.Name,
		Base:     t.opts.Base,
		Updates:  updates,
		Heat:     t.heatDelta(),
	}
	var shipStart time.Time
	if t.observesReleases() {
		shipStart = time.Now()
	}
	release, err := t.call(m, wire.KindBarrierRelease)
	if err != nil {
		return err
	}
	if t.observesReleases() {
		d := time.Since(shipStart)
		t.tm.barriers.Inc()
		t.tm.barrierWait.Observe(d.Seconds())
		t.tm.diffBytes.Observe(float64(st.bytes))
		t.emitReleaseSpans(m, st, shipStart, d)
	}
	if err := t.applyIncoming(release); err != nil {
		return err
	}
	if t.opts.Recorder != nil {
		t.opts.Recorder.BarrierExit(t.rank, idx)
	}
	t.rearm()
	return nil
}

// Flush pushes the current detection window's dirty updates home without
// touching any lock. The migration protocol calls it at the capture safe
// point so writes made since the last release survive the replica being
// abandoned; well-synchronized programs never need it directly.
func (t *Thread) Flush() error {
	updates, st := t.collectUpdates()
	m := &wire.Message{
		Kind:     wire.KindFlushReq,
		Rank:     t.rank,
		Platform: t.plat.Name,
		Base:     t.opts.Base,
		Updates:  updates,
		Heat:     t.heatDelta(),
	}
	var shipStart time.Time
	if t.observesReleases() {
		shipStart = time.Now()
	}
	if _, err := t.call(m, wire.KindFlushAck); err != nil {
		return err
	}
	if t.observesReleases() {
		t.finishRelease(m, st, shipStart)
	}
	t.rearm()
	return nil
}

// Join announces termination (MTh_join), flushing any remaining updates so
// the final state reaches the base thread.
func (t *Thread) Join() error {
	updates, st := t.collectUpdates()
	m := &wire.Message{
		Kind:     wire.KindJoinReq,
		Rank:     t.rank,
		Platform: t.plat.Name,
		Base:     t.opts.Base,
		Updates:  updates,
		Heat:     t.heatDelta(),
	}
	var shipStart time.Time
	if t.observesReleases() {
		shipStart = time.Now()
	}
	if _, err := t.call(m, wire.KindJoinAck); err != nil {
		return err
	}
	if t.opts.Recorder != nil {
		t.opts.Recorder.Join(t.rank)
	}
	if t.observesReleases() {
		t.finishRelease(m, st, shipStart)
	}
	return nil
}

// rearm restarts the write-detection window after a release point. The
// pending set clears with it: the release shipped every outstanding local
// write, so remote updates may touch those spans again.
func (t *Thread) rearm() {
	t.seg.ProtectAll()
	t.pending = t.pending[:0]
}

// heatDelta snapshots the page-fault counters accrued since the last
// release message as piggyback samples for the home's heat sink. Shipping
// deltas (not cumulative totals) lets the sink accumulate across releases
// without per-thread bookkeeping; a replayed release re-delivers its
// samples, a harmless overcount for an advisory signal. Returns nil when
// nothing new trapped, costing the message no bytes.
func (t *Thread) heatDelta() []wire.HeatSample {
	r := t.seg.Heat()
	var out []wire.HeatSample
	for _, p := range r.Pages {
		prev := t.heatPrev[p.Page]
		if p.Faults <= prev {
			continue
		}
		if t.heatPrev == nil {
			t.heatPrev = make(map[int]uint64)
		}
		t.heatPrev[p.Page] = p.Faults
		out = append(out, wire.HeatSample{Page: int32(p.Page), Faults: uint32(p.Faults - prev)})
	}
	return out
}

// collectUpdates runs the release-side pipeline: twin/diff plus index
// mapping (t_index), tag formation (t_tag), and data gathering (the copy
// half of t_pack; the encode half is charged in send). The returned
// relStages reuses the stage clocks the Eq. 1 stats already require, so
// span recording costs nothing extra here.
func (t *Thread) collectUpdates() ([]wire.Update, relStages) {
	var st relStages
	st.indexStart = time.Now()
	ranges := t.seg.Diff(t.opts.Diff)
	var spans []indextable.Span
	if t.opts.Coalesce {
		spans = t.table.MapRanges(ranges)
	} else {
		spans = t.table.MapRangesNoCoalesce(ranges)
	}
	spans = widenSpans(t.table, spans, t.opts.WholeArrayThreshold)
	st.indexDur = time.Since(st.indexStart)
	t.bd.Add(stats.Index, st.indexDur)
	if len(spans) == 0 {
		return nil, st
	}

	st.tagStart = time.Now()
	tags := make([]string, len(spans))
	for i, s := range spans {
		tags[i] = t.table.SpanTag(s).String()
	}
	st.tagDur = time.Since(st.tagStart)
	t.bd.Add(stats.Tag, st.tagDur)

	st.packStart = time.Now()
	updates := make([]wire.Update, len(spans))
	var packBytes int
	for i, s := range spans {
		n := t.table.SpanBytes(s)
		buf := make([]byte, n)
		if _, err := t.seg.Read(t.table.SpanOffset(s), n, buf); err != nil {
			panic(fmt.Sprintf("dsd: replica read of own span failed: %v", err))
		}
		packBytes += n
		updates[i] = wire.Update{
			Entry: int32(s.Entry),
			First: int32(s.First),
			Count: int32(s.Count),
			Tag:   tags[i],
			Data:  buf,
		}
	}
	st.packDur = time.Since(st.packStart)
	st.bytes = packBytes
	t.bd.AddBytes(stats.Pack, st.packDur, packBytes)
	return updates, st
}

// applyIncoming converts a grant's or release's updates to the local
// representation (t_conv) and applies them to the replica without
// disturbing local write detection.
func (t *Thread) applyIncoming(msg *wire.Message) error {
	if len(msg.Updates) == 0 {
		return nil
	}
	if err := msg.Validate(); err != nil {
		return err
	}
	srcP := t.homePlat
	if msg.Platform != "" && msg.Platform != srcP.Name {
		srcP = platform.ByName(msg.Platform)
		if srcP == nil {
			return fmt.Errorf("dsd: update from unknown platform %q", msg.Platform)
		}
	}
	copt := convert.Options{Ptr: convert.PtrTranslate, Translator: t.translator}
	start := time.Now()
	var convBytes int
	for i := range msg.Updates {
		u := &msg.Updates[i]
		if int(u.Entry) >= t.table.Len() {
			return fmt.Errorf("dsd: update entry %d out of range", u.Entry)
		}
		e := t.table.Entry(int(u.Entry))
		if int(u.First)+int(u.Count) > e.Count {
			return fmt.Errorf("dsd: update %s[%d..%d) exceeds %d elements",
				e.Name, u.First, int(u.First)+int(u.Count), e.Count)
		}
		if len(u.Data) == 0 {
			// Invalidation record (invalidate protocol): mark stale.
			t.invalid = indextable.MergeSpans(append(t.invalid,
				indextable.Span{Entry: int(u.Entry), First: int(u.First), Count: int(u.Count)}))
			continue
		}
		if srcSize := len(u.Data) / int(u.Count); srcSize != srcP.CSizeOf(e.CType) {
			return fmt.Errorf("dsd: update %s element size %d, want %d on %s",
				e.Name, srcSize, srcP.CSizeOf(e.CType), srcP)
		}
		data, _, err := convert.ScalarRun(nil, t.plat, u.Data, srcP, e.CType, int(u.Count), copt)
		if err != nil {
			return err
		}
		convBytes += len(u.Data)
		// Apply around the pending set: a span written locally since the
		// last release is authoritative here (exactly as the RC model keeps
		// dirty cells through an acquire's refresh), and a conservative
		// catch-up grant after a reconnect or re-homing must not erase it.
		frags := []indextable.Span{{Entry: int(u.Entry), First: int(u.First), Count: int(u.Count)}}
		for _, d := range t.pending {
			frags = indextable.SubtractSpan(frags, d)
			if len(frags) == 0 {
				break
			}
		}
		for _, f := range frags {
			off := e.Offset + f.First*e.ElemSize
			b := data[(f.First-int(u.First))*e.ElemSize : (f.First-int(u.First)+f.Count)*e.ElemSize]
			if err := t.seg.ApplyRemote(off, b); err != nil {
				return err
			}
		}
	}
	t.bd.AddBytes(stats.Conv, time.Since(start), convBytes)
	t.opts.Trace.Record(t.traceName(), trace.KindApply, t.rank, -1, convBytes, "from "+srcP.Name)
	return nil
}

// traceName labels this thread's trace events.
func (t *Thread) traceName() string {
	return fmt.Sprintf("rank-%d@%s", t.rank, t.plat.Name)
}

// send encodes (t_pack) and transmits. The sequence number is stamped only
// once, on the first transmission: a request re-sent after a reconnect must
// carry the same id so the home's idempotency watermarks recognize the
// replay.
func (t *Thread) send(m *wire.Message) error {
	return t.sendOn(t.conn, m)
}

// sendOn is send over an explicit connection (see handshakeOn).
func (t *Thread) sendOn(c transport.Conn, m *wire.Message) error {
	if m.Seq == 0 {
		m.Seq = t.seq.Add(1)
		if t.opts.Spans != nil && m.TraceID == 0 {
			// Mint the causal trace context exactly once, alongside the
			// sequence number: a replayed request keeps its trace identity,
			// and the receiver parents its spans to our ship span without
			// the id ever being negotiated.
			m.TraceID = telemetry.NewTraceID(t.rank)
			m.ParentSpan = telemetry.SpanID(m.TraceID, t.traceName(), telemetry.StageShip, t.rank)
		}
	}
	// Echo the adopted epoch: a stale home that receives a frame stamped
	// with a higher epoch fences itself.
	m.Epoch = t.homeEpoch
	// Stamp the remaining attempt budget (relative, so it survives clock
	// skew) so the home can bound its own blocking on our behalf. Re-stamped
	// per transmission: a replay carries its fresh attempt's budget.
	if !t.deadline.IsZero() {
		m.DeadlineMS = 0
		if rem := time.Until(t.deadline); rem > 0 {
			m.DeadlineMS = uint32(rem/time.Millisecond) + 1
		}
	}
	start := time.Now()
	frame, err := wire.Encode(m)
	if err != nil {
		return err
	}
	t.bd.Add(stats.Pack, time.Since(start))
	t.tm.frameSent.Observe(float64(len(frame)))
	return transport.SendFrameDeadline(c, frame, t.deadline)
}

// recvAny receives and decodes (t_unpack) the next message.
func (t *Thread) recvAny() (*wire.Message, error) {
	return t.recvOn(t.conn)
}

// recvOn is recvAny over an explicit connection (see handshakeOn).
func (t *Thread) recvOn(c transport.Conn) (*wire.Message, error) {
	frame, err := transport.RecvFrameDeadline(c, t.deadline)
	if err != nil {
		return nil, err
	}
	t.tm.frameRecv.Observe(float64(len(frame)))
	start := time.Now()
	m, err := wire.Decode(frame)
	if err != nil {
		return nil, err
	}
	t.bd.AddBytes(stats.Unpack, time.Since(start), wire.UpdateBytes(m.Updates))
	if m.Epoch != 0 && m.Epoch < t.homeEpoch {
		// Frame from a stale home incarnation. The request this answers
		// carried our higher epoch, so that home is fencing itself; the
		// error here just keeps the stale reply from being applied.
		return nil, fmt.Errorf("dsd: frame from stale epoch %d, already saw %d", m.Epoch, t.homeEpoch)
	}
	if m.Epoch > t.homeEpoch {
		t.opts.Flight.Note(t.traceName(), flight.KindEpochAdopt, t.rank, m.Epoch, t.homeEpoch)
		t.homeEpoch = m.Epoch
	}
	return m, nil
}

// recv receives, decodes (t_unpack) and checks the message kind.
func (t *Thread) recv(want wire.Kind) (*wire.Message, error) {
	m, err := t.recvAny()
	if err != nil {
		return nil, err
	}
	if m.Kind != want {
		return nil, fmt.Errorf("dsd: expected %v, got %v", want, m.Kind)
	}
	return m, nil
}
