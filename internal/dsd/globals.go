package dsd

import (
	"fmt"

	"hetdsm/internal/indextable"
	"hetdsm/internal/platform"
	"hetdsm/internal/tag"
	"hetdsm/internal/vmem"
)

// Globals is the typed view of one node's GThV replica. All stores go
// through the segment's write-detection path, so the DSM sees them; loads
// are free. A Globals belongs to one thread and is not safe for concurrent
// use, matching the paper's model where each thread owns its address space.
type Globals struct {
	plat  *platform.Platform
	table *indextable.Table
	seg   *vmem.Segment
	// ensure, when set, is invoked before reads to make the element range
	// current (the invalidate protocol's demand fetch). nil on the home's
	// master view and under the update protocol (where it is a no-op).
	ensure func(entry, first, count int) error
	// wrote, when set, records that the element range was overwritten
	// locally: a stale marking no longer applies (the local value is the
	// truth until the next release).
	wrote func(entry, first, count int)
	// rec, when set, observes typed signed-integer accesses for the
	// deterministic test harness; rank labels them.
	rec  Recorder
	rank int32
}

func newGlobals(p *platform.Platform, t *indextable.Table, s *vmem.Segment) *Globals {
	return &Globals{plat: p, table: t, seg: s}
}

// GlobalsFor builds a typed view over a raw GThV image laid out for plat
// at base — no home, no thread. The sharded directory uses it to verify a
// merged master image (each shard contributes its owned entries) against
// the single-home result; checkpoint tooling can inspect snapshots with it.
// The image is copied into a fresh segment, so the caller's buffer is not
// aliased.
func GlobalsFor(gthv tag.Struct, p *platform.Platform, base uint64, img []byte) (*Globals, error) {
	layout, err := tag.NewLayout(gthv, p)
	if err != nil {
		return nil, err
	}
	if len(img) != layout.Size {
		return nil, fmt.Errorf("dsd: image %d bytes, want %d for %s", len(img), layout.Size, p)
	}
	table, err := indextable.Build(layout, base)
	if err != nil {
		return nil, err
	}
	seg, err := vmem.NewSegment(base, layout.Size, p.PageSize)
	if err != nil {
		return nil, err
	}
	if err := seg.RawWrite(0, img); err != nil {
		return nil, err
	}
	return newGlobals(p, table, seg), nil
}

// Platform returns the platform the replica is laid out for.
func (g *Globals) Platform() *platform.Platform { return g.plat }

// Table returns the node's index table.
func (g *Globals) Table() *indextable.Table { return g.table }

// Var resolves a GThV member by its dotted path into a typed handle.
func (g *Globals) Var(name string) (*Var, error) {
	e, ok := g.table.EntryByName(name)
	if !ok {
		return nil, fmt.Errorf("dsd: GThV has no member %q", name)
	}
	return &Var{g: g, e: e}, nil
}

// MustVar is Var that panics on unknown members; for statically known
// member names in workloads and examples.
func (g *Globals) MustVar(name string) *Var {
	v, err := g.Var(name)
	if err != nil {
		panic(err)
	}
	return v
}

// Var is a typed handle on one GThV element (a scalar or an array of
// scalars). Element indexes are 0-based.
type Var struct {
	g *Globals
	e indextable.Entry
}

// Name returns the member path.
func (v *Var) Name() string { return v.e.Name }

// Len returns the element count (1 for scalars).
func (v *Var) Len() int { return v.e.Count }

// ElemSize returns the per-element size on this platform.
func (v *Var) ElemSize() int { return v.e.ElemSize }

// IsPointer reports whether the elements are pointers (use Ptr/SetPtr, not
// the integer accessors).
func (v *Var) IsPointer() bool { return v.e.Pointer }

func (v *Var) offsetOf(i int) (int, error) {
	if i < 0 || i >= v.e.Count {
		return 0, fmt.Errorf("dsd: %s[%d] out of range [0,%d)", v.e.Name, i, v.e.Count)
	}
	return v.e.Offset + i*v.e.ElemSize, nil
}

// ensureRead makes [first, first+count) current before a load.
func (v *Var) ensureRead(first, count int) error {
	if v.g.ensure == nil {
		return nil
	}
	return v.g.ensure(v.e.Index, first, count)
}

// noteWrite marks [first, first+count) locally authoritative.
func (v *Var) noteWrite(first, count int) {
	if v.g.wrote != nil {
		v.g.wrote(v.e.Index, first, count)
	}
}

// SetInt stores a signed integer into element i in the platform's native
// representation (size and byte order), trapping write detection.
func (v *Var) SetInt(i int, x int64) error {
	off, err := v.offsetOf(i)
	if err != nil {
		return err
	}
	buf := make([]byte, v.e.ElemSize)
	v.g.plat.PutInt(buf, v.e.ElemSize, x)
	v.noteWrite(i, 1)
	if err := v.g.seg.Write(off, buf); err != nil {
		return err
	}
	if v.g.rec != nil {
		// Record the canonical stored value — what a load returns after the
		// element's size truncation — not the caller's argument, so a
		// checker's memory model matches the replica bit-for-bit.
		v.g.rec.Write(v.g.rank, v.e.Name, i, v.g.plat.Int(buf, v.e.ElemSize))
	}
	return nil
}

// Int loads element i as a signed integer.
func (v *Var) Int(i int) (int64, error) {
	off, err := v.offsetOf(i)
	if err != nil {
		return 0, err
	}
	if err := v.ensureRead(i, 1); err != nil {
		return 0, err
	}
	b, err := v.g.seg.View(off, v.e.ElemSize)
	if err != nil {
		return 0, err
	}
	x := v.g.plat.Int(b, v.e.ElemSize)
	if v.g.rec != nil {
		v.g.rec.Read(v.g.rank, v.e.Name, i, x)
	}
	return x, nil
}

// SetInts stores consecutive elements starting at first with one segment
// write — the bulk store workloads use for matrix rows.
func (v *Var) SetInts(first int, xs []int64) error {
	if len(xs) == 0 {
		return nil
	}
	if _, err := v.offsetOf(first); err != nil {
		return err
	}
	if _, err := v.offsetOf(first + len(xs) - 1); err != nil {
		return err
	}
	buf := make([]byte, len(xs)*v.e.ElemSize)
	for i, x := range xs {
		v.g.plat.PutInt(buf[i*v.e.ElemSize:], v.e.ElemSize, x)
	}
	v.noteWrite(first, len(xs))
	if err := v.g.seg.Write(v.e.Offset+first*v.e.ElemSize, buf); err != nil {
		return err
	}
	if v.g.rec != nil {
		for i := range xs {
			v.g.rec.Write(v.g.rank, v.e.Name, first+i, v.g.plat.Int(buf[i*v.e.ElemSize:], v.e.ElemSize))
		}
	}
	return nil
}

// Ints loads count consecutive elements starting at first.
func (v *Var) Ints(first, count int) ([]int64, error) {
	if count == 0 {
		return nil, nil
	}
	if _, err := v.offsetOf(first); err != nil {
		return nil, err
	}
	if _, err := v.offsetOf(first + count - 1); err != nil {
		return nil, err
	}
	if err := v.ensureRead(first, count); err != nil {
		return nil, err
	}
	b, err := v.g.seg.View(v.e.Offset+first*v.e.ElemSize, count*v.e.ElemSize)
	if err != nil {
		return nil, err
	}
	out := make([]int64, count)
	for i := range out {
		out[i] = v.g.plat.Int(b[i*v.e.ElemSize:], v.e.ElemSize)
	}
	if v.g.rec != nil {
		for i, x := range out {
			v.g.rec.Read(v.g.rank, v.e.Name, first+i, x)
		}
	}
	return out, nil
}

// SetUint stores an unsigned integer into element i. Use this (not SetInt)
// for unsigned C types so large values survive the round trip; SetInt on an
// unsigned element stores the two's-complement bits, which read back
// sign-extended through Int.
func (v *Var) SetUint(i int, x uint64) error {
	off, err := v.offsetOf(i)
	if err != nil {
		return err
	}
	buf := make([]byte, v.e.ElemSize)
	v.g.plat.PutUint(buf, v.e.ElemSize, x)
	v.noteWrite(i, 1)
	return v.g.seg.Write(off, buf)
}

// Uint loads element i as an unsigned integer (zero-extended).
func (v *Var) Uint(i int) (uint64, error) {
	off, err := v.offsetOf(i)
	if err != nil {
		return 0, err
	}
	if err := v.ensureRead(i, 1); err != nil {
		return 0, err
	}
	b, err := v.g.seg.View(off, v.e.ElemSize)
	if err != nil {
		return 0, err
	}
	return v.g.plat.Uint(b, v.e.ElemSize), nil
}

// SetFloat64 stores a double into element i. The element's logical type
// must be double.
func (v *Var) SetFloat64(i int, x float64) error {
	if err := v.requireKind(platform.CDouble); err != nil {
		return err
	}
	off, err := v.offsetOf(i)
	if err != nil {
		return err
	}
	buf := make([]byte, 8)
	v.g.plat.PutFloat64(buf, x)
	v.noteWrite(i, 1)
	return v.g.seg.Write(off, buf)
}

// Float64 loads element i as a double.
func (v *Var) Float64(i int) (float64, error) {
	if err := v.requireKind(platform.CDouble); err != nil {
		return 0, err
	}
	off, err := v.offsetOf(i)
	if err != nil {
		return 0, err
	}
	if err := v.ensureRead(i, 1); err != nil {
		return 0, err
	}
	b, err := v.g.seg.View(off, 8)
	if err != nil {
		return 0, err
	}
	return v.g.plat.Float64(b), nil
}

// SetFloat64s stores consecutive doubles starting at first in one write.
func (v *Var) SetFloat64s(first int, xs []float64) error {
	if err := v.requireKind(platform.CDouble); err != nil {
		return err
	}
	if len(xs) == 0 {
		return nil
	}
	if _, err := v.offsetOf(first); err != nil {
		return err
	}
	if _, err := v.offsetOf(first + len(xs) - 1); err != nil {
		return err
	}
	buf := make([]byte, 8*len(xs))
	for i, x := range xs {
		v.g.plat.PutFloat64(buf[i*8:], x)
	}
	v.noteWrite(first, len(xs))
	return v.g.seg.Write(v.e.Offset+first*8, buf)
}

// Float64s loads count consecutive doubles starting at first.
func (v *Var) Float64s(first, count int) ([]float64, error) {
	if err := v.requireKind(platform.CDouble); err != nil {
		return nil, err
	}
	if count == 0 {
		return nil, nil
	}
	if _, err := v.offsetOf(first); err != nil {
		return nil, err
	}
	if _, err := v.offsetOf(first + count - 1); err != nil {
		return nil, err
	}
	if err := v.ensureRead(first, count); err != nil {
		return nil, err
	}
	b, err := v.g.seg.View(v.e.Offset+first*8, count*8)
	if err != nil {
		return nil, err
	}
	out := make([]float64, count)
	for i := range out {
		out[i] = v.g.plat.Float64(b[i*8:])
	}
	return out, nil
}

// SetPtr stores a pointer value (a local GThV address) into element i. The
// element must be a pointer.
func (v *Var) SetPtr(i int, addr uint64) error {
	if !v.e.Pointer {
		return fmt.Errorf("dsd: %s is not a pointer", v.e.Name)
	}
	off, err := v.offsetOf(i)
	if err != nil {
		return err
	}
	buf := make([]byte, v.e.ElemSize)
	v.g.plat.PutUint(buf, v.e.ElemSize, addr)
	v.noteWrite(i, 1)
	if err := v.g.seg.Write(off, buf); err != nil {
		return err
	}
	if v.g.rec != nil {
		// Record the logical target of the canonical stored address (after
		// the element's size truncation), so the checker compares
		// platform-independent (member, element) pairs, never raw bits.
		t, ti := v.g.resolveAddr(v.g.plat.Uint(buf, v.e.ElemSize))
		v.g.rec.WritePtr(v.g.rank, v.e.Name, i, t, ti)
	}
	return nil
}

// Ptr loads element i as a pointer value.
func (v *Var) Ptr(i int) (uint64, error) {
	if !v.e.Pointer {
		return 0, fmt.Errorf("dsd: %s is not a pointer", v.e.Name)
	}
	off, err := v.offsetOf(i)
	if err != nil {
		return 0, err
	}
	if err := v.ensureRead(i, 1); err != nil {
		return 0, err
	}
	b, err := v.g.seg.View(off, v.e.ElemSize)
	if err != nil {
		return 0, err
	}
	addr := v.g.plat.Uint(b, v.e.ElemSize)
	if v.g.rec != nil {
		t, ti := v.g.resolveAddr(addr)
		v.g.rec.ReadPtr(v.g.rank, v.e.Name, i, t, ti)
	}
	return addr, nil
}

// Resolve maps a pointer value (a local GThV address, e.g. one loaded via
// Ptr) back to the member path and element index it points at. It returns
// ok false for null or out-of-segment addresses — the pointer-chasing
// workloads' stop condition.
func (g *Globals) Resolve(addr uint64) (name string, index int, ok bool) {
	name, index = g.resolveAddr(addr)
	return name, index, name != ""
}

// resolveAddr is Resolve without the ok bit: ("", -1) marks unresolvable.
func (g *Globals) resolveAddr(addr uint64) (string, int) {
	if addr == 0 {
		return "", -1
	}
	entry, elem, ok := g.table.MapAddr(addr)
	if !ok {
		return "", -1
	}
	return g.table.Entry(entry).Name, elem
}

// Addr returns the local virtual address of element i, the value one
// stores into pointer members.
func (v *Var) Addr(i int) (uint64, error) {
	off, err := v.offsetOf(i)
	if err != nil {
		return 0, err
	}
	return v.g.seg.Addr(off), nil
}

func (v *Var) requireKind(ct platform.CType) error {
	if v.e.CType != ct {
		return fmt.Errorf("dsd: %s is %v, not %v", v.e.Name, v.e.CType, ct)
	}
	return nil
}

// SetFloat32 stores a C float into element i. The element's logical type
// must be float.
func (v *Var) SetFloat32(i int, x float32) error {
	if err := v.requireKind(platform.CFloat); err != nil {
		return err
	}
	off, err := v.offsetOf(i)
	if err != nil {
		return err
	}
	buf := make([]byte, 4)
	v.g.plat.PutFloat32(buf, x)
	v.noteWrite(i, 1)
	return v.g.seg.Write(off, buf)
}

// Float32 loads element i as a C float.
func (v *Var) Float32(i int) (float32, error) {
	if err := v.requireKind(platform.CFloat); err != nil {
		return 0, err
	}
	off, err := v.offsetOf(i)
	if err != nil {
		return 0, err
	}
	if err := v.ensureRead(i, 1); err != nil {
		return 0, err
	}
	b, err := v.g.seg.View(off, 4)
	if err != nil {
		return 0, err
	}
	return v.g.plat.Float32(b), nil
}
