package dsd

import (
	"math/rand"
	"sync"
	"testing"

	"hetdsm/internal/platform"
	"hetdsm/internal/tag"
)

// TestQuickRandomWorkloads is the full-stack property test: random thread
// counts on random platform mixes perform random read-modify-write
// critical sections against one shared array. Because every mutation is an
// in-lock increment, the final master state is the seed state plus the sum
// of all deltas regardless of interleaving — any lost update, misconverted
// byte, misapplied span or double-applied diff breaks the equality.
func TestQuickRandomWorkloads(t *testing.T) {
	if testing.Short() {
		t.Skip("randomized integration test")
	}
	for trial := 0; trial < 12; trial++ {
		trial := trial
		t.Run("", func(t *testing.T) {
			t.Parallel()
			runRandomWorkload(t, int64(1000+trial))
		})
	}
}

func runRandomWorkload(t *testing.T, seed int64) {
	r := rand.New(rand.NewSource(seed))
	const arrLen = 512
	gthv := tag.Struct{Name: "GThV_t", Fields: []tag.Field{
		{Name: "A", T: tag.IntArray(arrLen)},
		{Name: "rounds", T: tag.Scalar{T: platform.CLongLong}},
	}}
	plats := platform.All()
	nthreads := 2 + r.Intn(3)
	homePlat := plats[r.Intn(len(plats))]
	opts := DefaultOptions()
	// Randomize the pipeline knobs too.
	opts.Coalesce = r.Intn(2) == 0
	if r.Intn(2) == 0 {
		opts.WholeArrayThreshold = 0
	}
	if r.Intn(2) == 0 {
		opts.Diff = 1 // word-wise
	}
	if r.Intn(2) == 0 {
		opts.Protocol = ProtocolInvalidate
	}

	home, err := NewHome(gthv, homePlat, nthreads, opts)
	if err != nil {
		t.Fatal(err)
	}
	threads := make([]*Thread, nthreads)
	for i := range threads {
		th, err := home.LocalThread(int32(i), plats[r.Intn(len(plats))], opts)
		if err != nil {
			t.Fatal(err)
		}
		threads[i] = th
	}

	// Pre-plan every thread's operations so the expected final state is
	// computable up front.
	const iters = 15
	type op struct {
		idx   int
		delta int64
	}
	plans := make([][][]op, nthreads)
	expect := make([]int64, arrLen)
	var expectRounds int64
	for ti := range plans {
		tr := rand.New(rand.NewSource(seed*31 + int64(ti)))
		plans[ti] = make([][]op, iters)
		for it := 0; it < iters; it++ {
			n := 1 + tr.Intn(30)
			ops := make([]op, n)
			for k := range ops {
				idx := tr.Intn(arrLen)
				delta := int64(int32(tr.Uint32()))
				ops[k] = op{idx: idx, delta: delta}
				expect[idx] = int64(int32(expect[idx] + delta)) // C int wraps
			}
			plans[ti][it] = ops
			expectRounds++
		}
	}

	var wg sync.WaitGroup
	errCh := make(chan error, nthreads)
	for ti, th := range threads {
		wg.Add(1)
		go func(ti int, th *Thread) {
			defer wg.Done()
			a := th.Globals().MustVar("A")
			rounds := th.Globals().MustVar("rounds")
			for _, ops := range plans[ti] {
				if err := th.Lock(0); err != nil {
					errCh <- err
					return
				}
				for _, o := range ops {
					v, err := a.Int(o.idx)
					if err != nil {
						errCh <- err
						return
					}
					if err := a.SetInt(o.idx, v+o.delta); err != nil {
						errCh <- err
						return
					}
				}
				rv, err := rounds.Int(0)
				if err != nil {
					errCh <- err
					return
				}
				if err := rounds.SetInt(0, rv+1); err != nil {
					errCh <- err
					return
				}
				if err := th.Unlock(0); err != nil {
					errCh <- err
					return
				}
			}
			errCh <- th.Join()
		}(ti, th)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		if err != nil {
			t.Fatal(err)
		}
	}
	home.Wait()

	g := home.Globals()
	got, err := g.MustVar("A").Ints(0, arrLen)
	if err != nil {
		t.Fatal(err)
	}
	for i := range expect {
		if got[i] != expect[i] {
			t.Errorf("seed %d: A[%d] = %d, want %d", seed, i, got[i], expect[i])
		}
	}
	gotRounds, err := g.MustVar("rounds").Int(0)
	if err != nil {
		t.Fatal(err)
	}
	if gotRounds != expectRounds {
		t.Errorf("seed %d: rounds = %d, want %d", seed, gotRounds, expectRounds)
	}
}
