package dsd

import (
	"testing"
	"time"

	"hetdsm/internal/platform"
	"hetdsm/internal/transport"
	"hetdsm/internal/wire"
)

// fenceBackoff gives up quickly so tests observe rejection, not a hang.
func fenceBackoff() transport.Backoff {
	return transport.Backoff{
		Base:     100 * time.Microsecond,
		Max:      time.Millisecond,
		Factor:   2,
		Attempts: 12,
		Seed:     1,
	}
}

// TestThreadRejectsStaleEpochHome is the split-brain negative test: a
// thread that has served under epoch 2 must never register with a revived
// epoch-1 home, even when that home is the only one answering — the stale
// master state would fork. The stale home, seeing the thread's higher
// epoch, must fence itself.
func TestThreadRejectsStaleEpochHome(t *testing.T) {
	nw := transport.NewInproc()
	gthv := testGThV()

	optsNew := DefaultOptions()
	optsNew.Epoch = 2
	optsNew.StickyLocks = true
	homeNew, err := NewHome(gthv, platform.LinuxX86, 1, optsNew)
	if err != nil {
		t.Fatal(err)
	}
	lNew, err := nw.Listen("new")
	if err != nil {
		t.Fatal(err)
	}
	go homeNew.Serve(lNew)

	optsOld := DefaultOptions()
	optsOld.Epoch = 1
	optsOld.StickyLocks = true
	homeOld, err := NewHome(gthv, platform.LinuxX86, 1, optsOld)
	if err != nil {
		t.Fatal(err)
	}
	lOld, err := nw.Listen("old")
	if err != nil {
		t.Fatal(err)
	}
	go homeOld.Serve(lOld)

	// The old home is genuinely alive: an epoch-naive client can register
	// and run a full critical section against it.
	control, err := Dial(nw, "old", platform.SolarisSPARC, 0, gthv, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := control.Lock(0); err != nil {
		t.Fatal(err)
	}
	if err := control.Unlock(0); err != nil {
		t.Fatal(err)
	}
	if got := control.HomeEpoch(); got != 1 {
		t.Fatalf("control thread adopted epoch %d from the old home, want 1", got)
	}

	// The worker registers with the current incarnation and adopts its
	// epoch.
	th, err := DialHABackoff(nw, []string{"new", "old"}, platform.SolarisSPARC, 0, gthv, DefaultOptions(), fenceBackoff())
	if err != nil {
		t.Fatal(err)
	}
	if got := th.HomeEpoch(); got != 2 {
		t.Fatalf("thread adopted epoch %d, want 2", got)
	}

	// The current home dies; only the stale one remains. The thread's
	// reconnect must refuse it and the operation must fail rather than
	// fork state.
	homeNew.Kill()
	if err := th.Lock(0); err == nil {
		t.Fatal("lock succeeded against a stale-epoch home")
	}
	if !homeOld.Fenced() {
		t.Fatal("stale home saw an epoch-2 frame but did not fence itself")
	}
}

// TestHomeFencesOnNewerEpochFrame sends a raw frame stamped with a higher
// epoch: the home must refuse to answer and permanently stop serving —
// proof somewhere a newer incarnation took over.
func TestHomeFencesOnNewerEpochFrame(t *testing.T) {
	opts := DefaultOptions()
	opts.Epoch = 5
	h, err := NewHome(testGThV(), platform.LinuxX86, 1, opts)
	if err != nil {
		t.Fatal(err)
	}
	if h.Fenced() {
		t.Fatal("fresh home is fenced")
	}
	a, b := transport.Pipe()
	go h.ServeConn(b)
	frame, err := wire.Encode(&wire.Message{
		Kind: wire.KindHello, Rank: 0, Platform: platform.LinuxX86.Name, Epoch: 99,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := a.SendFrame(frame); err != nil {
		t.Fatal(err)
	}
	if _, err := a.RecvFrame(); err == nil {
		t.Fatal("fenced home answered a hello")
	}
	if !h.Fenced() {
		t.Fatal("home did not fence on a newer-epoch frame")
	}
	if h.Epoch() != 5 {
		t.Fatalf("fencing changed the home's own epoch to %d", h.Epoch())
	}
	// Fencing is permanent: fresh handshakes are refused too.
	c, d := transport.Pipe()
	go h.ServeConn(d)
	plain, err := wire.Encode(&wire.Message{
		Kind: wire.KindHello, Rank: 0, Platform: platform.LinuxX86.Name,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.SendFrame(plain); err == nil {
		if m, err := recvDecoded(c); err == nil && m.Kind == wire.KindHelloAck {
			t.Fatal("fenced home accepted a new registration")
		}
	}
}

// recvDecoded reads and decodes one frame.
func recvDecoded(c transport.Conn) (*wire.Message, error) {
	frame, err := c.RecvFrame()
	if err != nil {
		return nil, err
	}
	return wire.Decode(frame)
}

// TestThreadAdoptsHomeEpoch verifies the happy path: an epoch-naive thread
// learns the home's epoch at handshake and stamps it on every later frame.
func TestThreadAdoptsHomeEpoch(t *testing.T) {
	opts := DefaultOptions()
	opts.Epoch = 7
	h, err := NewHome(testGThV(), platform.LinuxX86, 1, opts)
	if err != nil {
		t.Fatal(err)
	}
	th, err := h.LocalThread(0, platform.SolarisSPARC, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if got := th.HomeEpoch(); got != 7 {
		t.Fatalf("thread adopted epoch %d, want 7", got)
	}
	if err := th.Lock(0); err != nil {
		t.Fatal(err)
	}
	if err := th.Unlock(0); err != nil {
		t.Fatal(err)
	}
	if h.Fenced() {
		t.Fatal("echoed epoch fenced the home that issued it")
	}
}
