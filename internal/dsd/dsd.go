// Package dsd implements the paper's primary contribution: the Distributed
// Shared Data layer (Section 4), a home-based release-consistency software
// DSM for heterogeneous machines.
//
// One Home node holds the master copy of the single global structure GThV
// and manages distributed mutexes, barriers and joins. Every worker thread
// (local or remote, on any virtual platform) holds a replica of GThV in its
// own platform's layout and synchronizes through the four primitives the
// paper maps onto Pthreads:
//
//	Lock    (MTh_lock)    — acquire a distributed mutex; outstanding
//	                        updates arrive with the grant.
//	Unlock  (MTh_unlock)  — diff the write-protected globals, abstract the
//	                        page diffs to index-table spans, tag them, and
//	                        ship them home with the release.
//	Barrier (MTh_barrier) — flush updates, wait for all threads, receive
//	                        the merged updates of the phase.
//	Join    (MTh_join)    — announce termination to the base thread.
//
// Write detection is page-granular (vmem software MMU), propagation is
// object-granular (indextable spans + CGT-RMR tags), and conversion is
// receiver-makes-right (convert package): homogeneous pairs memcpy,
// heterogeneous pairs transform. Every stage is timed into a
// stats.Breakdown following Eq. 1.
package dsd

import (
	"fmt"
	"time"

	"hetdsm/internal/flight"
	"hetdsm/internal/telemetry"
	"hetdsm/internal/trace"
	"hetdsm/internal/vmem"
	"hetdsm/internal/wire"
)

// DefaultBase is the default GThV virtual base address, the address the
// paper's Table 1 shows on the Linux machine.
const DefaultBase uint64 = 0x40058000

// Options tune the DSD pipeline; zero value is not useful — start from
// DefaultOptions.
type Options struct {
	// Base is the virtual base address for the local GThV segment. It
	// must be aligned to the platform page size.
	Base uint64
	// Coalesce groups consecutive modified array elements into single
	// tags (paper Section 5); disabling it is the per-element ablation.
	Coalesce bool
	// WholeArrayThreshold widens a span to its entire entry when the
	// span already covers at least this fraction of the entry's
	// elements, letting large arrays be transferred and converted "as a
	// whole" (paper Section 4). Zero disables widening.
	WholeArrayThreshold float64
	// Diff selects the twin comparison granularity.
	Diff vmem.DiffGranularity
	// Trace, when non-nil, records protocol events into the ring buffer
	// for debugging; nil disables tracing.
	Trace *trace.Log
	// Metrics, when non-nil, receives operation histograms (lock-acquire
	// latency, barrier-wait time, release round-trip, diff/frame sizes)
	// and protocol counters. nil disables metric recording entirely; the
	// hot path then takes no timestamps and allocates nothing.
	Metrics *telemetry.Registry
	// Spans, when non-nil, receives per-release pipeline span records:
	// each release is stamped with its (rank, seq) request id and every
	// stage — index, tag, pack, ship on the sender; unpack, conv, apply
	// at the home — is recorded against it, so sender-side and home-side
	// rings merge into a cross-node timeline (telemetry.MergeTimeline).
	// With spans enabled, threads additionally mint a TraceID per
	// release and stamp it (plus the ship span's id) on the wire, so the
	// merged timeline is a causal DAG stitched by ids.
	Spans *telemetry.SpanLog
	// Flight, when non-nil, is the black-box flight recorder: grants,
	// fences, epoch adoptions and restarts are noted into its fixed ring
	// and dumped on fencing, crash-restart or SIGQUIT. nil disables it.
	Flight *flight.Recorder
	// Protocol selects how the home propagates remote modifications. It
	// is a home-side setting: threads adopt the home's protocol at
	// registration.
	Protocol Protocol
	// Recorder, when non-nil, observes this thread's synchronization
	// operations and typed replica accesses for the deterministic test
	// harness (internal/check). It is a thread-side setting; homes ignore
	// it. nil disables recording entirely.
	Recorder Recorder
	// OpTimeout bounds each attempt of a synchronization operation (lock,
	// unlock, barrier, flush, join, fetch): sends and receives carry real
	// socket deadlines, the remaining budget is stamped on the wire so the
	// home bounds its own blocking (the grant-ack wait), and an expired
	// attempt severs the connection and retries idempotently through the
	// HA redial path. The home additionally bounds each peer's outbound
	// queue, shedding grants to slow consumers instead of wedging the stub.
	// Zero (the default) disables the deadline plane entirely: operations
	// block indefinitely, exactly the pre-deadline behavior.
	OpTimeout time.Duration
	// StickyLocks keeps a disconnected rank's mutexes held instead of
	// force-releasing them. Set it when threads reconnect after transient
	// failures (HA mode): the holder will come back and re-send its
	// unlock, and releasing early would let another thread enter the
	// critical section concurrently. Leave it off for fail-stop threads,
	// where a dead holder must not wedge the lock forever.
	StickyLocks bool
	// Epoch is the home's fencing epoch (home-side). Every frame and
	// replication record carries it; peers that adopted a higher epoch
	// reject the home as stale, and the home fences itself when it sees a
	// higher one. Zero means epoch 1 (a fresh, never-recovered home).
	// Promotion and WAL recovery construct homes with a bumped epoch.
	Epoch uint64
	// CheckpointEvery, with CheckpointSink, writes a coordinated cluster
	// checkpoint every CheckpointEvery-th barrier generation (home-side).
	// Zero disables checkpointing.
	CheckpointEvery int
	// CheckpointSink receives the consistent cut: the home's full state
	// as a RepInit-shaped snapshot plus the opened barrier generation
	// number. It is called synchronously with the home mutex held, so it
	// must not call back into the home; write the blob and return.
	CheckpointSink func(snap *wire.Replication, gen uint64)
	// Directory, when non-nil, makes this home one shard of a multi-home
	// directory (internal/dir): it is authoritative only for the entries
	// and locks the directory currently maps to Shard, and answers
	// misdelivered requests with KindDirForward corrections instead of
	// applying them. nil (the default) keeps the classic single-home
	// behavior: the home owns everything.
	Directory DirectoryView
	// Shard is this home's shard id within the directory; meaningful only
	// with Directory set.
	Shard int32
	// HeatSink, when non-nil, receives the page-fault heat samples threads
	// piggyback on release messages (home-side). The sharded directory
	// aggregates them into its heat-driven migration planner.
	HeatSink func(rank int32, samples []wire.HeatSample)
}

// DirectoryView resolves authoritative page/lock ownership for a sharded
// home. Implementations must be safe for concurrent use and must never
// call back into a Home: homes consult the view with their own mutex held
// (home.mu before directory state is the global lock order).
type DirectoryView interface {
	// EntryOwner returns the shard owning index-table entry e and the
	// mapping's version (bumped on every migration).
	EntryOwner(entry int) (shard int32, ver uint64)
	// LockOwner returns the shard owning mutex idx and the mapping's
	// version.
	LockOwner(idx int32) (shard int32, ver uint64)
}

// Protocol is the consistency-propagation scheme.
type Protocol uint8

const (
	// ProtocolUpdate is the paper's scheme: lock grants and barrier
	// releases carry the modified data itself.
	ProtocolUpdate Protocol = iota
	// ProtocolInvalidate is the classic alternative: grants carry only
	// invalidation spans; a thread that actually reads an invalidated
	// element fetches its current value from the home on demand. Threads
	// that never read each other's output skip the data movement
	// entirely.
	ProtocolInvalidate
)

// String returns "update" or "invalidate".
func (p Protocol) String() string {
	if p == ProtocolInvalidate {
		return "invalidate"
	}
	return "update"
}

// DefaultOptions returns the configuration the paper describes: coalescing
// on, whole-array transfers on at half coverage, byte-granular diffs.
func DefaultOptions() Options {
	return Options{
		Base:                DefaultBase,
		Coalesce:            true,
		WholeArrayThreshold: 0.5,
		Diff:                vmem.DiffByte,
	}
}

func (o Options) validate() error {
	if o.Base == 0 {
		return fmt.Errorf("dsd: options missing Base (use DefaultOptions)")
	}
	if o.WholeArrayThreshold < 0 || o.WholeArrayThreshold > 1 {
		return fmt.Errorf("dsd: WholeArrayThreshold %v outside [0,1]", o.WholeArrayThreshold)
	}
	if o.CheckpointEvery < 0 {
		return fmt.Errorf("dsd: CheckpointEvery %d must not be negative", o.CheckpointEvery)
	}
	if o.OpTimeout < 0 {
		return fmt.Errorf("dsd: OpTimeout %v must not be negative", o.OpTimeout)
	}
	return nil
}
