package dsd

import (
	"strings"
	"testing"

	"hetdsm/internal/flight"
	"hetdsm/internal/platform"
	"hetdsm/internal/transport"
	"hetdsm/internal/wire"
)

// TestFlightRecordsFenceSequence kills a home the fencing way — a frame
// from a newer incarnation — and requires the black box to have the whole
// story: the fence event with both epochs, and a trip whose dump an
// operator can read after the process is gone.
func TestFlightRecordsFenceSequence(t *testing.T) {
	fr := flight.New(64)
	tripped := make(chan string, 1)
	fr.OnTrip(func(reason string, events []flight.Event) {
		tripped <- reason
	})
	opts := DefaultOptions()
	opts.Epoch = 5
	opts.Flight = fr
	h, err := NewHome(testGThV(), platform.LinuxX86, 1, opts)
	if err != nil {
		t.Fatal(err)
	}
	a, b := transport.Pipe()
	go h.ServeConn(b)
	frame, err := wire.Encode(&wire.Message{
		Kind: wire.KindHello, Rank: 0, Platform: platform.LinuxX86.Name, Epoch: 99,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := a.SendFrame(frame); err != nil {
		t.Fatal(err)
	}
	if _, err := a.RecvFrame(); err == nil {
		t.Fatal("fenced home answered a hello")
	}
	if !h.Fenced() {
		t.Fatal("home did not fence")
	}
	reason := <-tripped
	if !strings.Contains(reason, "fenced") {
		t.Fatalf("trip reason %q does not mention fencing", reason)
	}
	var fence *flight.Event
	for _, e := range fr.Snapshot() {
		if e.Kind == flight.KindFence {
			ev := e
			fence = &ev
		}
	}
	if fence == nil {
		t.Fatalf("no fence event in flight ring: %s", fr.String())
	}
	if fence.A != 99 || fence.B != 5 {
		t.Fatalf("fence operands = (%d, %d), want (seen epoch 99, own epoch 5)", fence.A, fence.B)
	}
	dump := fr.String()
	for _, want := range []string{"fence", "a=99", "b=5"} {
		if !strings.Contains(dump, want) {
			t.Fatalf("dump missing %q:\n%s", want, dump)
		}
	}
}

// TestFlightRecordsGrants checks the steady-state event the ring mostly
// holds: every lock grant lands with mutex and epoch operands, so a
// post-mortem shows who held what right before the trip.
func TestFlightRecordsGrants(t *testing.T) {
	fr := flight.New(64)
	opts := DefaultOptions()
	opts.Flight = fr
	nw := transport.NewInproc()
	h, err := NewHome(testGThV(), platform.LinuxX86, 1, opts)
	if err != nil {
		t.Fatal(err)
	}
	l, err := nw.Listen("home")
	if err != nil {
		t.Fatal(err)
	}
	go h.Serve(l)
	th, err := Dial(nw, "home", platform.LinuxX86, 0, testGThV(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := th.Lock(0); err != nil {
		t.Fatal(err)
	}
	if err := th.Unlock(0); err != nil {
		t.Fatal(err)
	}
	if err := th.Join(); err != nil {
		t.Fatal(err)
	}
	h.Wait()
	h.Close()
	found := false
	for _, e := range fr.Snapshot() {
		if e.Kind == flight.KindGrant && e.Rank == 0 && e.A == 0 {
			found = true
		}
	}
	if !found {
		t.Fatalf("no grant event recorded: %s", fr.String())
	}
}
