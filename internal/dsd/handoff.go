package dsd

import (
	"fmt"
	"time"

	"hetdsm/internal/indextable"
	"hetdsm/internal/platform"
	"hetdsm/internal/tag"
	"hetdsm/internal/trace"
	"hetdsm/internal/transport"
	"hetdsm/internal/wire"
)

// Home-node handoff (paper Section 3.1): "If the master thread moves to a
// default thread at a remote node, the latter will become the new home
// node. Previous local threads become remote threads."
//
// The protocol has three phases, driven by the operator (or the migration
// layer) rather than by the old home alone:
//
//  1. Detach: the old home freezes — new acquisitions, flushes, barriers
//     and joins are answered with redirects once the redirect address is
//     known — waits until no lock is held and no barrier generation is in
//     flight (a release-consistent quiescent cut), and snapshots its state.
//  2. NewHomeFromHandoff builds the successor anywhere, on any platform:
//     the master image converts receiver-makes-right; pending-update
//     queues and the joined set carry over unchanged because spans and
//     ranks are architecture independent.
//  3. RedirectTo publishes the successor's address; every thread's next
//     request bounces with KindRedirect and the thread re-registers with
//     the new home transparently (see Thread.call).

// Handoff is the portable state of a home node at a quiescent point.
type Handoff struct {
	// Platform is the old home's platform name.
	Platform string
	// Base is the old home's GThV base address.
	Base uint64
	// Image is the master GThV image in the old home's layout.
	Image []byte
	// Tag is the image's CGT-RMR tag.
	Tag string
	// Pending carries each registered rank's outstanding update spans.
	Pending map[int32][]indextable.Span
	// Known lists the ranks registered at detach time; their replicas
	// stay valid across the handoff (Pending is their exact catch-up).
	Known []int32
	// Joined lists the ranks that had already joined.
	Joined []int32
	// Dirty records whether any update was ever applied.
	Dirty bool
	// Held maps mutex index to holder rank for locks held at the cut.
	// Empty after a quiescent Detach; a crash promotion carries the locks
	// the standby saw held.
	Held map[int32]int32
	// Applied carries each rank's idempotency watermark: the highest
	// update-bearing request id already applied. A replayed request at or
	// below it must not re-apply its updates.
	Applied map[int32]uint64
	// Released carries each rank's barrier-release watermark: the request
	// id of its last barrier arrival whose release was issued. A replayed
	// arrival at or below it gets an immediate release instead of waiting
	// for a generation that already opened.
	Released map[int32]uint64
}

// Detach freezes the home, waits for quiescence, and returns the handoff
// state. After Detach, call RedirectTo to release waiting threads toward
// the successor. Detach fails after timeout if the system never quiesces
// (e.g. a thread holds a lock indefinitely).
func (h *Home) Detach(timeout time.Duration) (*Handoff, error) {
	if h.opts.Directory != nil {
		// Whole-home handoff assumes this node owns every entry and lock —
		// a shard does not. Re-homing within a sharded directory goes
		// entry-by-entry through TransferEntry; a failed shard restarts
		// from its own WAL with a bumped epoch instead.
		return nil, fmt.Errorf("dsd: shard %d cannot hand off whole-home state; use directory migration", h.opts.Shard)
	}
	h.mu.Lock()
	if h.frozen {
		h.mu.Unlock()
		return nil, fmt.Errorf("dsd: home already detached")
	}
	h.frozen = true
	h.mu.Unlock()
	h.opts.Trace.Record(h.node, trace.KindDetach, -1, -1, 0, "")

	deadline := time.Now().Add(timeout)
	for {
		h.mu.Lock()
		if h.quiescentLocked() {
			break // keep h.mu held for the snapshot
		}
		h.mu.Unlock()
		if time.Now().After(deadline) {
			h.mu.Lock()
			h.frozen = false
			h.mu.Unlock()
			// Re-admit any lock requester that bounced during the
			// failed freeze: they are blocked in redirect() waiting
			// for an address that will never come... they are not —
			// redirect() blocks on redirectReady; an aborted detach
			// must release them to retry. Publishing an empty address
			// is not possible, so a failed Detach leaves the home
			// usable for non-redirected operations only. Callers
			// should treat a Detach timeout as fatal for this home.
			return nil, fmt.Errorf("dsd: home did not quiesce within %v", timeout)
		}
		time.Sleep(100 * time.Microsecond)
	}
	defer h.mu.Unlock()
	h.snapshotted = true

	img := make([]byte, h.layout.Size)
	if _, err := h.master.Read(0, h.layout.Size, img); err != nil {
		return nil, err
	}
	state := &Handoff{
		Platform: h.plat.Name,
		Base:     h.table.Base(),
		Image:    img,
		Tag:      tag.FromLayout(h.layout).String(),
		Pending:  make(map[int32][]indextable.Span, len(h.pending)),
		Dirty:    h.dirty,
	}
	for rank, spans := range h.pending {
		state.Pending[rank] = indextable.MergeSpans(spans)
	}
	for rank := range h.peers {
		state.Known = append(state.Known, rank)
	}
	for rank := range h.joined {
		state.Joined = append(state.Joined, rank)
	}
	state.Applied = make(map[int32]uint64, len(h.applied))
	for rank, seq := range h.applied {
		state.Applied[rank] = seq
	}
	state.Released = make(map[int32]uint64, len(h.released))
	for rank, seq := range h.released {
		state.Released[rank] = seq
	}
	// Quiescence guarantees no lock is held, so Held stays empty here;
	// only crash promotions populate it.
	return state, nil
}

// quiescentLocked reports whether no lock is held and no barrier
// generation is in flight. Caller holds h.mu.
func (h *Home) quiescentLocked() bool {
	for _, ls := range h.locks {
		if ls.held {
			return false
		}
	}
	for _, bs := range h.barriers {
		if len(bs.ranks) != 0 {
			return false
		}
	}
	return true
}

// RedirectTo publishes the successor's address; frozen handlers reply with
// redirects from now on.
func (h *Home) RedirectTo(addr string) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.redirectAddr == "" {
		h.redirectAddr = addr
		close(h.redirectReady)
	}
}

// redirect answers one request with the successor's address, blocking
// until RedirectTo has been called.
func (h *Home) redirect(c transport.Conn, rank int32) error {
	<-h.redirectReady
	h.mu.Lock()
	addr := h.redirectAddr
	h.mu.Unlock()
	h.opts.Trace.Record(h.node, trace.KindRedirect, rank, -1, 0, addr)
	return h.send(c, &wire.Message{Kind: wire.KindRedirect, Rank: rank, Addr: addr})
}

// frozenNow reports the freeze flag.
func (h *Home) frozenNow() bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.frozen
}

// NewHomeFromHandoff builds a successor home from a detached predecessor's
// state, converting the master image receiver-makes-right. nthreads and
// the GThV type must match the original application.
func NewHomeFromHandoff(gthv tag.Struct, p *platform.Platform, nthreads int, opts Options, state *Handoff) (*Home, error) {
	h, err := NewHome(gthv, p, nthreads, opts)
	if err != nil {
		return nil, err
	}
	if err := h.Restore(state.Image, state.Tag, state.Platform, state.Base); err != nil {
		return nil, err
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	h.dirty = state.Dirty || h.dirty
	// Restore's own full-seed applies only to already-registered peers
	// (none yet). Seed the carried pending queues: each known rank's
	// replica is exactly as stale as its queue says.
	h.pending = make(map[int32][]indextable.Span, len(state.Pending))
	for rank, spans := range state.Pending {
		h.pending[rank] = append([]indextable.Span(nil), spans...)
	}
	h.carried = make(map[int32]bool, len(state.Known))
	for _, rank := range state.Known {
		h.carried[rank] = true
	}
	for _, rank := range state.Joined {
		h.joined[rank] = true
	}
	for idx, rank := range state.Held {
		if idx < 0 {
			continue
		}
		// The lock map starts empty in a fresh home, so each carried
		// holder needs its state allocated, not looked up: a crash
		// promotion that silently dropped held locks would let a second
		// thread into a critical section the dead-connection holder is
		// still (stickily) inside.
		h.locks[idx] = &lockState{held: true, holder: rank}
	}
	for rank, seq := range state.Applied {
		h.applied[rank] = seq
	}
	for rank, seq := range state.Released {
		h.released[rank] = seq
	}
	if len(h.joined) == h.nthreads {
		close(h.done)
	}
	return h, nil
}
