package dsd

import (
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"hetdsm/internal/platform"
	"hetdsm/internal/transport"
)

// TestHomeHandoffMidRun moves the home node from a Linux machine to a
// SPARC machine while three heterogeneous threads hammer a lock-protected
// counter. Threads follow the redirect transparently; no increment is
// lost; the final master (at the NEW home, in big-endian layout) is exact.
func TestHomeHandoffMidRun(t *testing.T) {
	nw := transport.NewInproc()
	gthv := testGThV()
	opts := DefaultOptions()

	oldHome, err := NewHome(gthv, platform.LinuxX86, 3, opts)
	if err != nil {
		t.Fatal(err)
	}
	l1, err := nw.Listen("home1")
	if err != nil {
		t.Fatal(err)
	}
	go oldHome.Serve(l1)
	defer oldHome.Close()

	plats := []*platform.Platform{platform.LinuxX86, platform.SolarisSPARC, platform.LinuxX8664}
	threads := make([]*Thread, 3)
	for i, p := range plats {
		th, err := Dial(nw, "home1", p, int32(i), gthv, opts)
		if err != nil {
			t.Fatal(err)
		}
		threads[i] = th
	}

	const perThread = 120
	var wg sync.WaitGroup
	errCh := make(chan error, len(threads))
	for _, th := range threads {
		wg.Add(1)
		go func(th *Thread) {
			defer wg.Done()
			sum := th.Globals().MustVar("sum")
			for i := 0; i < perThread; i++ {
				if err := th.Lock(0); err != nil {
					errCh <- err
					return
				}
				v, err := sum.Int(0)
				if err != nil {
					errCh <- err
					return
				}
				if err := sum.SetInt(0, v+1); err != nil {
					errCh <- err
					return
				}
				if err := th.Unlock(0); err != nil {
					errCh <- err
					return
				}
			}
			errCh <- th.Join()
		}(th)
	}

	// Let the run get going, then hand the home over to a SPARC box.
	// Polling the idempotency watermarks — rather than sleeping a fixed
	// interval — guarantees the detach really lands mid-run: at least one
	// thread has committed an update by the time we pull the rug.
	trafficDeadline := time.Now().Add(5 * time.Second)
	for {
		oldHome.mu.Lock()
		started := false
		for _, seq := range oldHome.applied {
			if seq > 0 {
				started = true
				break
			}
		}
		oldHome.mu.Unlock()
		if started {
			break
		}
		if time.Now().After(trafficDeadline) {
			t.Fatal("workers never started committing updates")
		}
		runtime.Gosched()
	}
	state, err := oldHome.Detach(10 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	newHome, err := NewHomeFromHandoff(gthv, platform.SolarisSPARC, 3, opts, state)
	if err != nil {
		t.Fatal(err)
	}
	l2, err := nw.Listen("home2")
	if err != nil {
		t.Fatal(err)
	}
	go newHome.Serve(l2)
	defer newHome.Close()
	oldHome.RedirectTo("home2")

	wg.Wait()
	close(errCh)
	for err := range errCh {
		if err != nil {
			t.Fatal(err)
		}
	}
	newHome.Wait()

	got, err := newHome.Globals().MustVar("sum").Int(0)
	if err != nil {
		t.Fatal(err)
	}
	if want := int64(perThread * len(threads)); got != want {
		t.Errorf("counter after handoff = %d, want %d", got, want)
	}
}

// TestHandoffCarriesPendingUpdates verifies a thread whose catch-up queue
// straddles the handoff still receives it: A writes under lock at the old
// home, the home moves, then B locks at the new home and must see A's
// write without a full-state reseed.
func TestHandoffCarriesPendingUpdates(t *testing.T) {
	nw := transport.NewInproc()
	gthv := testGThV()
	opts := DefaultOptions()
	oldHome, err := NewHome(gthv, platform.SolarisSPARC, 2, opts)
	if err != nil {
		t.Fatal(err)
	}
	l1, err := nw.Listen("h1")
	if err != nil {
		t.Fatal(err)
	}
	go oldHome.Serve(l1)
	defer oldHome.Close()

	a, err := Dial(nw, "h1", platform.LinuxX86, 0, gthv, opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Dial(nw, "h1", platform.SolarisSPARC, 1, gthv, opts)
	if err != nil {
		t.Fatal(err)
	}

	if err := a.Lock(0); err != nil {
		t.Fatal(err)
	}
	if err := a.Globals().MustVar("sum").SetInt(0, 4242); err != nil {
		t.Fatal(err)
	}
	if err := a.Unlock(0); err != nil {
		t.Fatal(err)
	}
	// B has NOT synced yet: its catch-up spans sit in the pending queue.

	state, err := oldHome.Detach(5 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(state.Pending[1]) == 0 {
		t.Fatal("B's pending queue should have carried over")
	}
	newHome, err := NewHomeFromHandoff(gthv, platform.LinuxX8664, 2, opts, state)
	if err != nil {
		t.Fatal(err)
	}
	l2, err := nw.Listen("h2")
	if err != nil {
		t.Fatal(err)
	}
	go newHome.Serve(l2)
	defer newHome.Close()
	oldHome.RedirectTo("h2")

	if err := b.Lock(0); err != nil {
		t.Fatal(err)
	}
	v, err := b.Globals().MustVar("sum").Int(0)
	if err != nil {
		t.Fatal(err)
	}
	if v != 4242 {
		t.Errorf("B sees sum=%d after handoff, want 4242", v)
	}
	if err := b.Unlock(0); err != nil {
		t.Fatal(err)
	}
	if err := a.Join(); err != nil {
		t.Fatal(err)
	}
	if err := b.Join(); err != nil {
		t.Fatal(err)
	}
	newHome.Wait()
}

func TestDetachErrors(t *testing.T) {
	nw := transport.NewInproc()
	gthv := testGThV()
	h, err := NewHome(gthv, platform.LinuxX86, 1, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	l, err := nw.Listen("hx")
	if err != nil {
		t.Fatal(err)
	}
	go h.Serve(l)
	defer h.Close()

	th, err := Dial(nw, "hx", platform.LinuxX86, 0, gthv, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	// A held lock prevents quiescence: Detach must time out.
	if err := th.Lock(0); err != nil {
		t.Fatal(err)
	}
	if _, err := h.Detach(20 * time.Millisecond); err == nil {
		t.Fatal("detach with a held lock must time out")
	}
	if err := th.Unlock(0); err != nil {
		t.Fatal(err)
	}
	// Now it succeeds; a second detach fails.
	if _, err := h.Detach(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	if _, err := h.Detach(time.Second); err == nil {
		t.Error("double detach must fail")
	}
}

func TestConnectThreadCannotFollowRedirect(t *testing.T) {
	// LocalThread (pipe-based) threads have no dialer; a redirect must
	// surface a clear error instead of hanging.
	gthv := testGThV()
	h, err := NewHome(gthv, platform.LinuxX86, 1, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	th, err := h.LocalThread(0, platform.LinuxX86, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.Detach(time.Second); err != nil {
		t.Fatal(err)
	}
	h.RedirectTo("nowhere")
	err = th.Lock(0)
	if err == nil || !strings.Contains(err.Error(), "cannot redial") {
		t.Errorf("pipe thread redirect error = %v", err)
	}
}
