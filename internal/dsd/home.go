package dsd

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"hetdsm/internal/convert"
	"hetdsm/internal/flight"
	"hetdsm/internal/indextable"
	"hetdsm/internal/platform"
	"hetdsm/internal/stats"
	"hetdsm/internal/tag"
	"hetdsm/internal/telemetry"
	"hetdsm/internal/trace"
	"hetdsm/internal/transport"
	"hetdsm/internal/vmem"
	"hetdsm/internal/wire"
)

// Home is the base node of the DSD: it owns the master GThV copy, the
// distributed mutexes, the barriers, and the per-thread pending-update
// queues. One goroutine per connected thread acts as that thread's stub
// (paper Figure 5), so Home methods are internally synchronized.
type Home struct {
	opts     Options
	gthv     tag.Struct
	plat     *platform.Platform
	layout   *tag.Layout
	table    *indextable.Table
	nthreads int

	mu       sync.Mutex
	master   *vmem.Segment
	locks    map[int32]*lockState
	barriers map[int32]*barrierState
	pending  map[int32][]indextable.Span
	peers    map[int32]*peer
	joined   map[int32]bool
	done     chan struct{}
	// applied holds per-rank idempotency watermarks: the highest request
	// id whose updates were applied. A reconnecting thread re-sends its
	// in-flight request; the watermark keeps the replay from applying the
	// same updates twice.
	applied map[int32]uint64
	// released holds per-rank barrier-release watermarks: the request id
	// of the rank's last barrier arrival whose generation opened. A
	// replayed arrival at or below the watermark is answered with a
	// release immediately instead of re-entering (and deadlocking) the
	// barrier.
	released map[int32]uint64
	// reps mirror every state mutation to attached replicators (hot
	// standby streams, the write-ahead log); each stamps its own Seq, so
	// records are fanned out as copies.
	reps []Replicator
	// epoch is this home incarnation's fencing epoch, stamped on every
	// frame and replication record. It is immutable after construction.
	epoch uint64
	// fenced marks a home that saw a frame from a higher epoch (a newer
	// incarnation exists); it stops serving to prevent split-brain.
	fenced bool
	// gens counts opened barrier generations across all barrier indices;
	// every Options.CheckpointEvery-th generation triggers CheckpointSink.
	gens uint64
	// dirty records that updates have ever been applied; a thread that
	// registers after that point is queued the full GThV so its first
	// acquire brings it up to date (late joiners, migration targets).
	dirty bool
	// frozen marks a home detached for handoff: new acquisitions bounce
	// with redirects once redirectAddr is published. snapshotted marks
	// the handoff state captured: from then on NO state mutation may be
	// accepted (it would be lost), so update-bearing requests redirect.
	frozen        bool
	snapshotted   bool
	redirectAddr  string
	redirectReady chan struct{}
	// carried marks ranks whose pending queues came from a handoff; they
	// re-register without the late-joiner full-state seed.
	carried map[int32]bool

	bd stats.Breakdown
	hm homeMetrics
	// node labels this home's trace events and spans.
	node string

	lmu       sync.Mutex
	listeners []transport.Listener
	conns     map[transport.Conn]bool
	// queues tracks the bounded per-peer outbound queues (OpTimeout > 0
	// only) by rank, for /stats and the dsm_transport_queue_depth gauge.
	queues map[int32]*transport.SendQueue
	// deadlineHits counts budget-bounded home-side waits (grant acks, sync
	// acks) that expired on the requester's own stamped budget.
	deadlineHits atomic.Uint64
}

// homeQueueCap bounds each peer's outbound queue when the deadline plane
// is on. Grants and acks are small and the consumer acks promptly in
// steady state, so a backlog this deep already means the peer is stalled;
// overflow sheds (the peer's replay re-materializes the grant).
const homeQueueCap = 64

// Replicator mirrors home-state mutations to a hot standby. Record is
// called with the home mutex held, so it must only enqueue; Flush blocks
// until everything recorded so far is acknowledged by the standby (or
// replication has failed, in which case it returns without error and the
// home continues unreplicated).
type Replicator interface {
	Record(rec *wire.Replication)
	Flush()
}

type peer struct {
	rank  int32
	plat  *platform.Platform
	table *indextable.Table
	// pendOpen/pendMark/pendSeq track a barrier release in flight: the
	// drain of the pending queue (first pendMark raw spans) commits only
	// once a later request (Seq > pendSeq) proves the release arrived.
	// Barrier releases carry no ack, so this is their delivery receipt.
	pendOpen bool
	pendMark int
	pendSeq  uint64
}

type lockState struct {
	held    bool
	holder  int32
	waiters []lockWaiter
}

type lockWaiter struct {
	ch   chan struct{}
	rank int32
}

// barrierState keys arrivals by rank so a reconnecting thread's replayed
// arrival cannot double-count, and remembers each arrival's request id so
// the release watermark can be published when the generation opens.
type barrierState struct {
	ranks map[int32]uint64
	gen   chan struct{}
}

// NewHome builds the home node for a GThV type on the given platform.
// nthreads is the total number of worker threads (local and remote) that
// will participate in barriers and joins.
func NewHome(gthv tag.Struct, p *platform.Platform, nthreads int, opts Options) (*Home, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	if nthreads <= 0 {
		return nil, fmt.Errorf("dsd: nthreads %d must be positive", nthreads)
	}
	layout, err := tag.NewLayout(gthv, p)
	if err != nil {
		return nil, err
	}
	if opts.Base%uint64(p.PageSize) != 0 {
		return nil, fmt.Errorf("dsd: base %#x not aligned to %s page size %d", opts.Base, p, p.PageSize)
	}
	table, err := indextable.Build(layout, opts.Base)
	if err != nil {
		return nil, err
	}
	master, err := vmem.NewSegment(opts.Base, layout.Size, p.PageSize)
	if err != nil {
		return nil, err
	}
	epoch := opts.Epoch
	if epoch == 0 {
		epoch = 1
	}
	node := "home@" + p.Name
	if opts.Directory != nil {
		node = fmt.Sprintf("shard%d@%s", opts.Shard, p.Name)
	}
	h := &Home{
		opts:          opts,
		gthv:          gthv,
		plat:          p,
		layout:        layout,
		table:         table,
		nthreads:      nthreads,
		master:        master,
		epoch:         epoch,
		hm:            newHomeMetrics(opts.Metrics),
		node:          node,
		locks:         make(map[int32]*lockState),
		barriers:      make(map[int32]*barrierState),
		pending:       make(map[int32][]indextable.Span),
		peers:         make(map[int32]*peer),
		joined:        make(map[int32]bool),
		done:          make(chan struct{}),
		applied:       make(map[int32]uint64),
		released:      make(map[int32]uint64),
		carried:       make(map[int32]bool),
		redirectReady: make(chan struct{}),
		conns:         make(map[transport.Conn]bool),
		queues:        make(map[int32]*transport.SendQueue),
	}
	if opts.OpTimeout > 0 {
		opts.Metrics.GaugeFunc("dsm_transport_queue_depth",
			"frames parked in per-peer bounded outbound queues at the home",
			func() float64 {
				var total int
				h.lmu.Lock()
				for _, q := range h.queues {
					total += q.Depth()
				}
				h.lmu.Unlock()
				return float64(total)
			})
	}
	return h, nil
}

// Platform returns the home platform.
func (h *Home) Platform() *platform.Platform { return h.plat }

// Epoch returns the home's fencing epoch.
func (h *Home) Epoch() uint64 { return h.epoch }

// Fenced reports whether the home stopped serving because it saw a frame
// from a higher epoch (a newer incarnation of itself exists).
func (h *Home) Fenced() bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.fenced
}

// Watermarks returns copies of the per-rank idempotency watermarks: the
// highest applied update-bearing request id and the last barrier-release
// request id for each rank. Diagnostics endpoints expose them so a
// recovered home's replayed state can be inspected.
func (h *Home) Watermarks() (applied, released map[int32]uint64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	applied = make(map[int32]uint64, len(h.applied))
	for r, s := range h.applied {
		applied[r] = s
	}
	released = make(map[int32]uint64, len(h.released))
	for r, s := range h.released {
		released[r] = s
	}
	return applied, released
}

// Table returns the home's index table.
func (h *Home) Table() *indextable.Table { return h.table }

// ownsEntry reports whether this home is authoritative for an index-table
// entry: always, in single-home deployments, or when the directory maps
// the entry to this shard.
func (h *Home) ownsEntry(entry int) bool {
	if h.opts.Directory == nil {
		return true
	}
	shard, _ := h.opts.Directory.EntryOwner(entry)
	return shard == h.opts.Shard
}

// ownsLock reports whether this home is authoritative for a mutex.
func (h *Home) ownsLock(idx int32) bool {
	if h.opts.Directory == nil {
		return true
	}
	shard, _ := h.opts.Directory.LockOwner(idx)
	return shard == h.opts.Shard
}

// seedFullLocked queues a full-state catch-up for a rank: every entry this
// home is authoritative for, as whole-entry spans. Non-owned entries are a
// sibling shard's to seed — serving them here would ship data that may be
// stale the moment the owner applies a newer release. Caller holds h.mu.
func (h *Home) seedFullLocked(rank int32) {
	for i := 0; i < h.table.Len(); i++ {
		if !h.ownsEntry(i) {
			continue
		}
		h.pending[rank] = append(h.pending[rank],
			indextable.Span{Entry: i, First: 0, Count: h.table.Entry(i).Count})
	}
}

// Stats returns the home-side Cshare breakdown (stub-thread work: tag and
// pack on grants, unpack and conversion on releases).
func (h *Home) Stats() *stats.Breakdown { return &h.bd }

// Globals returns a typed view of the master copy. It is only safe to use
// when no thread is active — before threads start or after Wait returns.
func (h *Home) Globals() *Globals {
	return newGlobals(h.plat, h.table, h.master)
}

// Checkpoint snapshots the master GThV image and its CGT-RMR tag — the
// globals half of a whole-computation checkpoint (thread states are
// captured by the migthread layer). Safe to call while threads run: the
// snapshot is taken under the home mutex, i.e. between update applications,
// which is a release-consistent cut.
func (h *Home) Checkpoint() ([]byte, string) {
	h.mu.Lock()
	defer h.mu.Unlock()
	img := make([]byte, h.layout.Size)
	if _, err := h.master.Read(0, h.layout.Size, img); err != nil {
		panic(fmt.Sprintf("dsd: master snapshot failed: %v", err))
	}
	return img, tag.FromLayout(h.layout).String()
}

// Restore loads a checkpointed GThV image taken on the platform named
// srcPlatName into the master copy, converting receiver-makes-right.
// srcBase is the checkpointed home's GThV base address, needed to translate
// pointer members into this home's address space. Any thread that registers
// afterwards receives the restored state in full.
func (h *Home) Restore(img []byte, tagStr, srcPlatName string, srcBase uint64) error {
	srcPlat := platform.ByName(srcPlatName)
	if srcPlat == nil {
		return fmt.Errorf("dsd: unknown checkpoint platform %q", srcPlatName)
	}
	srcLayout, err := tag.NewLayout(h.gthv, srcPlat)
	if err != nil {
		return err
	}
	if want := tag.FromLayout(srcLayout).String(); tagStr != want {
		return fmt.Errorf("dsd: checkpoint tag %q does not match GThV (%q)", tagStr, want)
	}
	if len(img) != srcLayout.Size {
		return fmt.Errorf("dsd: checkpoint image %d bytes, want %d", len(img), srcLayout.Size)
	}
	srcTable, err := indextable.Build(srcLayout, srcBase)
	if err != nil {
		return err
	}
	out, _, err := convert.Value(h.layout, img, srcLayout,
		convert.Options{Ptr: convert.PtrTranslate, Translator: h.table.Translator(srcTable)})
	if err != nil {
		return err
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if err := h.master.RawWrite(0, out); err != nil {
		return err
	}
	h.dirty = true
	// Anything already-registered is now stale: queue the full image.
	for rank := range h.peers {
		h.seedFullLocked(rank)
	}
	return nil
}

// Serve accepts connections on l and runs a stub goroutine per thread until
// the listener is closed.
func (h *Home) Serve(l transport.Listener) {
	h.lmu.Lock()
	h.listeners = append(h.listeners, l)
	h.lmu.Unlock()
	for {
		c, err := l.Accept()
		if err != nil {
			return
		}
		go h.ServeConn(c)
	}
}

// ServeConn runs the stub protocol for one thread connection until the
// connection closes. Exported so in-process clusters can wire Pipe ends
// directly. A connection whose first message is a ping enters heartbeat
// mode instead: every KindPing is answered with a KindPong, so failure
// detectors probe the same serving path DSD traffic uses.
func (h *Home) ServeConn(c transport.Conn) {
	var q *transport.SendQueue
	if h.opts.OpTimeout > 0 {
		// Deadline plane on: decouple this stub from a slow consumer. A
		// peer that stops draining wedges the queue's writer, not the stub;
		// overflow sheds the frame and the stub treats the conn as broken,
		// exactly as if the send had failed — the peer's deadline-expired
		// replay re-materializes whatever was dropped.
		q = transport.NewSendQueue(c, homeQueueCap, transport.OverflowShed)
		c = q
	}
	h.lmu.Lock()
	if h.conns != nil {
		h.conns[c] = true
	}
	h.lmu.Unlock()
	defer func() {
		h.lmu.Lock()
		delete(h.conns, c)
		h.lmu.Unlock()
		c.Close()
	}()
	first, err := h.recv(c)
	if err != nil {
		return
	}
	if first.Epoch > h.epoch {
		h.fence(first.Epoch)
		return
	}
	if first.Kind == wire.KindPing {
		h.servePings(c, first)
		return
	}
	p, err := h.handshake(c, first)
	if err != nil {
		return
	}
	// When the connection drops, the rank becomes free again so a
	// migrated incarnation of the thread can re-register from another
	// platform; its pending queue is discarded (the new replica is blank
	// and will be seeded with the full state).
	defer h.removePeer(p)
	if q != nil {
		h.lmu.Lock()
		h.queues[p.rank] = q
		h.lmu.Unlock()
		defer func() {
			h.lmu.Lock()
			if h.queues[p.rank] == q {
				delete(h.queues, p.rank)
			}
			h.lmu.Unlock()
		}()
	}
	for {
		msg, err := h.recv(c)
		if err != nil {
			return
		}
		if msg.Epoch > h.epoch {
			h.fence(msg.Epoch)
			return
		}
		if p.pendOpen && msg.Seq > p.pendSeq {
			// A later request proves the in-flight barrier release was
			// processed; its pending-queue drain is now safe to commit.
			h.commitPending(p, p.pendMark)
			p.pendOpen = false
		}
		if len(msg.Heat) > 0 && h.opts.HeatSink != nil {
			// Piggybacked page-heat samples feed the migration planner
			// before the request is served, so a release that crosses the
			// threshold can be acted on at the very boundary it created.
			h.opts.HeatSink(p.rank, msg.Heat)
		}
		switch msg.Kind {
		case wire.KindLockReq:
			// The freeze check is inside acquire, atomic with the
			// grant: checking here first would race Detach's snapshot.
			err = h.handleLock(c, p, msg)
		case wire.KindUnlockReq:
			// Releases are always processed: a holder must be able to
			// drain so a detaching home can reach quiescence. (A held
			// lock blocks the snapshot, so an unlock can never arrive
			// after it.)
			err = h.handleUnlock(c, p, msg)
		case wire.KindBarrierReq:
			err = h.handleBarrier(c, p, msg)
		case wire.KindFlushReq:
			err = h.handleFlush(c, p, msg)
		case wire.KindFetchReq:
			// Fetches are answered even while frozen: the data is
			// consistent until the handoff snapshot, and a redirect
			// would race the thread's critical section. (The successor
			// serves later fetches after the thread's next acquire.)
			err = h.handleFetch(c, p, msg)
		case wire.KindJoinReq:
			err = h.handleJoin(c, p, msg)
		case wire.KindSyncReq:
			err = h.handleSync(c, p, msg)
		case wire.KindLockAck:
			// A grant ack that lost its race with a reconnect lands on
			// the fresh stub; the grant was delivered, so ignore it.
		case wire.KindPing:
			err = h.send(c, &wire.Message{Kind: wire.KindPong, Seq: msg.Seq, Rank: msg.Rank})
		default:
			err = fmt.Errorf("dsd: unexpected %v from rank %d", msg.Kind, p.rank)
		}
		if err != nil {
			return
		}
	}
}

// servePings answers heartbeat probes until the connection closes.
func (h *Home) servePings(c transport.Conn, first *wire.Message) {
	msg := first
	for {
		if err := h.send(c, &wire.Message{Kind: wire.KindPong, Seq: msg.Seq, Rank: msg.Rank}); err != nil {
			return
		}
		var err error
		msg, err = h.recv(c)
		if err != nil || msg.Kind != wire.KindPing {
			return
		}
	}
}

func (h *Home) removePeer(p *peer) {
	h.mu.Lock()
	if h.peers[p.rank] == p {
		delete(h.peers, p.rank)
		delete(h.pending, p.rank)
		// Recover any mutex the dead thread still held: leaving it
		// orphaned would deadlock every other thread. Its uncommitted
		// writes are lost — the crashing-holder semantics every lock
		// service chooses. Under StickyLocks (HA mode) a disconnect is
		// presumed transient: the holder keeps its mutex and releases it
		// after reconnecting, preserving mutual exclusion across the
		// partition.
		if !h.opts.StickyLocks {
			for idx, ls := range h.locks {
				if ls.held && ls.holder == p.rank {
					h.releaseLocked(idx)
				}
			}
		}
	}
	h.mu.Unlock()
}

// LocalThread creates a worker thread served by this home over an
// in-process pipe; used for the home node's own (non-migrated) thread and
// by single-process clusters.
func (h *Home) LocalThread(rank int32, p *platform.Platform, opts Options) (*Thread, error) {
	a, b := transport.Pipe()
	go h.ServeConn(b)
	return Connect(a, p, rank, h.gthv, opts)
}

// Wait blocks until every thread has joined (MTh_join semantics for the
// base thread: "this informs the base thread that it too should
// terminate").
func (h *Home) Wait() { <-h.done }

// Done exposes the join-completion channel so multi-home clusters can wait
// on a shard that may be replaced (crash-restarted) while they wait.
func (h *Home) Done() <-chan struct{} { return h.done }

// Close shuts down all listeners.
func (h *Home) Close() {
	h.lmu.Lock()
	defer h.lmu.Unlock()
	for _, l := range h.listeners {
		l.Close()
	}
	h.listeners = nil
}

// Kill simulates a crash: every listener and every live connection is
// severed at once, with no quiescence, no redirects and no goodbyes. The
// HA layer's failover tests use it to drop the home mid-workload.
func (h *Home) Kill() {
	h.Close()
	h.lmu.Lock()
	conns := make([]transport.Conn, 0, len(h.conns))
	for c := range h.conns {
		conns = append(conns, c)
	}
	h.conns = nil
	h.lmu.Unlock()
	for _, c := range conns {
		c.Close()
	}
	// Wake handler goroutines parked in a barrier generation; their
	// release sends fail on the severed connections and they exit instead
	// of waiting on a barrier that can never fill again.
	h.mu.Lock()
	for _, bs := range h.barriers {
		bs.ranks = make(map[int32]uint64)
		gen := bs.gen
		bs.gen = make(chan struct{})
		close(gen)
	}
	h.mu.Unlock()
}

// Sever cuts every live connection while keeping the listeners open — a
// transient network loss around one home shard, as opposed to Kill's
// crash. Threads reconnect through their HA conns and re-register; barrier
// state is deliberately NOT reset: a replayed arrival re-keys its rank in
// the open generation (count unchanged), and the handler goroutines parked
// in arrive() drain once the generation fills — their release send fails
// on the severed conn, and the replayed arrival is answered through the
// release watermark.
func (h *Home) Sever() {
	h.lmu.Lock()
	conns := make([]transport.Conn, 0, len(h.conns))
	for c := range h.conns {
		conns = append(conns, c)
	}
	h.lmu.Unlock()
	for _, c := range conns {
		c.Close()
	}
}

// fence stops a stale home: a frame stamped with a higher epoch proves a
// newer incarnation (promoted standby or WAL-restart) owns the state now,
// so continuing to serve would split-brain. The home severs everything,
// exactly as if it had crashed.
func (h *Home) fence(newer uint64) {
	h.mu.Lock()
	already := h.fenced
	h.fenced = true
	h.mu.Unlock()
	if already {
		return
	}
	h.opts.Trace.Record(h.node, trace.KindDetach, -1, -1, 0,
		fmt.Sprintf("fenced: saw epoch %d, own epoch %d", newer, h.epoch))
	// Fencing is a black-box moment: note it and dump the flight ring so
	// the post-mortem shows the protocol events that led here.
	h.opts.Flight.Note(h.node, flight.KindFence, -1, newer, h.epoch)
	h.opts.Flight.Trip(fmt.Sprintf("%s fenced: saw epoch %d, own epoch %d", h.node, newer, h.epoch))
	h.Kill()
}

func (h *Home) handshake(c transport.Conn, msg *wire.Message) (*peer, error) {
	if msg.Kind != wire.KindHello {
		return nil, fmt.Errorf("dsd: expected hello, got %v", msg.Kind)
	}
	plat := platform.ByName(msg.Platform)
	if plat == nil {
		return nil, fmt.Errorf("dsd: unknown platform %q", msg.Platform)
	}
	layout, err := tag.NewLayout(h.gthv, plat)
	if err != nil {
		return nil, err
	}
	ptable, err := indextable.Build(layout, msg.Base)
	if err != nil {
		return nil, err
	}
	if err := indextable.Compatible(h.table, ptable); err != nil {
		return nil, err
	}
	h.opts.Trace.Record(h.node, trace.KindHello, msg.Rank, -1, 0, msg.Platform)
	p := &peer{rank: msg.Rank, plat: plat, table: ptable}
	h.mu.Lock()
	if h.fenced {
		h.mu.Unlock()
		return nil, fmt.Errorf("dsd: home fenced by a newer epoch")
	}
	if _, dup := h.peers[p.rank]; dup {
		h.mu.Unlock()
		return nil, fmt.Errorf("dsd: rank %d already registered", p.rank)
	}
	h.peers[p.rank] = p
	if h.carried[p.rank] && msg.Flags&wire.FlagWarmReplica != 0 {
		// Handoff-carried rank re-registering with its original
		// replica: the carried pending queue is its exact catch-up.
		delete(h.carried, p.rank)
	} else if h.carried[p.rank] {
		// Carried rank arriving with a FRESH replica (it migrated
		// after the handoff): the carried queue is useless; seed the
		// full state instead.
		delete(h.carried, p.rank)
		h.pending[p.rank] = nil
		h.seedFullLocked(p.rank)
	} else if h.dirty {
		h.seedFullLocked(p.rank)
	}
	h.mu.Unlock()
	if err := h.send(c, &wire.Message{
		Kind:     wire.KindHelloAck,
		Rank:     p.rank,
		Platform: h.plat.Name,
		Base:     h.table.Base(),
		Proto:    uint8(h.opts.Protocol),
	}); err != nil {
		// The caller only installs its removePeer cleanup after a
		// successful handshake; unregister here or the rank's slot leaks
		// and every reconnect is rejected as a duplicate forever.
		h.removePeer(p)
		return nil, err
	}
	return p, nil
}

func (h *Home) handleLock(c transport.Conn, p *peer, msg *wire.Message) error {
	var acqStart time.Time
	if h.hm.enabled {
		acqStart = time.Now()
	}
	switch h.acquire(msg.Mutex, p.rank) {
	case acqFrozen:
		return h.redirect(c, p.rank)
	case acqNotOwned:
		return h.sendForward(c, p, msg)
	}
	if h.hm.enabled {
		h.hm.lockWait.Observe(time.Since(acqStart).Seconds())
	}
	// The grant must be durable at the standby before the client enters
	// its critical section, or a failover could hand the mutex to a
	// second thread.
	h.repFlush()
	updates, mark := h.peekPending(p)
	h.opts.Trace.Record(h.node, trace.KindLockGrant, p.rank, msg.Mutex, wire.UpdateBytes(updates), "")
	h.opts.Flight.Note(h.node, flight.KindGrant, p.rank, uint64(uint32(msg.Mutex)), h.epoch)
	if err := h.send(c, &wire.Message{
		Kind:     wire.KindLockGrant,
		Mutex:    msg.Mutex,
		Rank:     p.rank,
		Platform: h.plat.Name,
		Base:     h.table.Base(),
		Updates:  updates,
	}); err != nil {
		// The grantee vanished; put the lock back so others proceed.
		// Under StickyLocks the disconnect is presumed transient: the
		// grantee keeps the mutex and its replayed request is re-granted
		// (with the pending queue intact, since nothing was committed).
		if !h.opts.StickyLocks {
			h.releaseIfHolder(msg.Mutex, p.rank)
		}
		return err
	}
	// The ack wait is bounded by the requester's own budget: if its
	// deadline passes, it has already severed the conn and will replay the
	// lock request — waiting longer only pins the grant state.
	ack, err := h.recvBudget(c, msg.DeadlineMS)
	if err != nil {
		if !h.opts.StickyLocks {
			h.releaseIfHolder(msg.Mutex, p.rank)
		}
		return err
	}
	if ack.Kind != wire.KindLockAck {
		if !h.opts.StickyLocks {
			h.releaseIfHolder(msg.Mutex, p.rank)
		}
		return fmt.Errorf("dsd: expected lock-ack, got %v", ack.Kind)
	}
	h.commitPending(p, mark)
	return nil
}

func (h *Home) handleUnlock(c transport.Conn, p *peer, msg *wire.Message) error {
	if !h.ownsLock(msg.Mutex) {
		// A held mutex never migrates (MigrateLockIf refuses), so this is
		// a stale-cache delivery or a replay after the (free) mutex moved;
		// nothing here to release. Correct the sender's cache.
		return h.sendForward(c, p, msg)
	}
	if err := h.applyUpdates(p, msg); err != nil {
		if err == errMoved {
			// Unreachable while the quiescence protocol holds (a held
			// lock blocks the snapshot), but redirect defensively.
			return h.redirect(c, p.rank)
		}
		if err == errNotOwned {
			return h.sendForward(c, p, msg)
		}
		return err
	}
	h.opts.Trace.Record(h.node, trace.KindUnlock, p.rank, msg.Mutex, wire.UpdateBytes(msg.Updates), "")
	// Guarding on the holder makes a replayed unlock (re-sent after a
	// reconnect, already applied via the watermark) a no-op instead of
	// releasing a mutex some other thread now holds.
	h.releaseIfHolder(msg.Mutex, p.rank)
	h.repFlush()
	return h.send(c, &wire.Message{Kind: wire.KindUnlockAck, Mutex: msg.Mutex, Rank: p.rank})
}

func (h *Home) handleBarrier(c transport.Conn, p *peer, msg *wire.Message) error {
	if msg.Seq != 0 && h.releasedMark(p.rank) >= msg.Seq {
		// Replay of an arrival whose generation already opened (the
		// release was lost with the connection): re-entering the barrier
		// would wait for peers that have long moved on, so answer with a
		// release straight away. The pending queue holds everything the
		// rank has not yet acknowledged seeing.
		return h.sendBarrierRelease(c, p, msg.Mutex, msg.Seq)
	}
	if err := h.applyUpdates(p, msg); err != nil {
		if err == errMoved {
			return h.redirect(c, p.rank)
		}
		if err == errNotOwned {
			return h.sendForward(c, p, msg)
		}
		return err
	}
	h.opts.Trace.Record(h.node, trace.KindBarrierArrive, p.rank, msg.Mutex, wire.UpdateBytes(msg.Updates), "")
	var waitStart time.Time
	if h.hm.enabled {
		waitStart = time.Now()
	}
	proceed, err := h.arrive(msg.Mutex, p.rank, msg.Seq)
	if err != nil {
		return err
	}
	if h.hm.enabled {
		h.hm.barrierWait.Observe(time.Since(waitStart).Seconds())
	}
	if !proceed {
		// The home handed off after this thread's updates were applied
		// (idempotent value updates: re-applying at the successor is
		// harmless); the whole barrier must re-run there.
		return h.redirect(c, p.rank)
	}
	h.repFlush()
	return h.sendBarrierRelease(c, p, msg.Mutex, msg.Seq)
}

// sendBarrierRelease ships a barrier release carrying the rank's pending
// updates. The queue drain is not committed here: releases carry no ack,
// so the drain commits when the rank's next request (Seq > reqSeq) proves
// this release was processed; until then a replayed arrival re-delivers.
func (h *Home) sendBarrierRelease(c transport.Conn, p *peer, mutex int32, reqSeq uint64) error {
	updates, mark := h.peekPending(p)
	if err := h.send(c, &wire.Message{
		Kind:     wire.KindBarrierRelease,
		Mutex:    mutex,
		Rank:     p.rank,
		Platform: h.plat.Name,
		Base:     h.table.Base(),
		Updates:  updates,
	}); err != nil {
		return err
	}
	p.pendOpen = true
	p.pendMark = mark
	p.pendSeq = reqSeq
	return nil
}

func (h *Home) handleFlush(c transport.Conn, p *peer, msg *wire.Message) error {
	if err := h.applyUpdates(p, msg); err != nil {
		if err == errMoved {
			return h.redirect(c, p.rank)
		}
		if err == errNotOwned {
			return h.sendForward(c, p, msg)
		}
		return err
	}
	h.opts.Trace.Record(h.node, trace.KindFlush, p.rank, -1, wire.UpdateBytes(msg.Updates), "")
	h.repFlush()
	return h.send(c, &wire.Message{Kind: wire.KindFlushAck, Rank: p.rank})
}

// handleFetch materializes current master data for explicitly requested
// spans (invalidate protocol): tags (t_tag) plus data (t_pack), exactly
// like a grant, but demand-driven.
func (h *Home) handleFetch(c transport.Conn, p *peer, msg *wire.Message) error {
	spans := make([]indextable.Span, 0, len(msg.Updates))
	for i := range msg.Updates {
		u := &msg.Updates[i]
		if int(u.Entry) >= h.table.Len() || u.First < 0 || u.Count <= 0 {
			return fmt.Errorf("dsd: fetch span %d/%d/%d invalid", u.Entry, u.First, u.Count)
		}
		e := h.table.Entry(int(u.Entry))
		if int(u.First)+int(u.Count) > e.Count {
			return fmt.Errorf("dsd: fetch of %s[%d..%d) exceeds %d elements",
				e.Name, u.First, int(u.First)+int(u.Count), e.Count)
		}
		spans = append(spans, indextable.Span{Entry: int(u.Entry), First: int(u.First), Count: int(u.Count)})
	}
	for _, s := range spans {
		if !h.ownsEntry(s.Entry) {
			// The requested element lives at a sibling shard now; serving
			// our copy could return pre-migration data.
			return h.sendForward(c, p, msg)
		}
	}
	spans = indextable.MergeSpans(spans)

	tagStart := time.Now()
	tags := make([]string, len(spans))
	for i, s := range spans {
		tags[i] = h.table.SpanTag(s).String()
	}
	h.bd.Add(stats.Tag, time.Since(tagStart))

	packStart := time.Now()
	updates := make([]wire.Update, len(spans))
	var packBytes int
	h.mu.Lock()
	for i, s := range spans {
		n := h.table.SpanBytes(s)
		buf := make([]byte, n)
		if _, err := h.master.Read(h.table.SpanOffset(s), n, buf); err != nil {
			h.mu.Unlock()
			return err
		}
		packBytes += n
		updates[i] = wire.Update{
			Entry: int32(s.Entry), First: int32(s.First), Count: int32(s.Count),
			Tag: tags[i], Data: buf,
		}
	}
	h.mu.Unlock()
	h.bd.AddBytes(stats.Pack, time.Since(packStart), packBytes)
	return h.send(c, &wire.Message{
		Kind:     wire.KindFetchReply,
		Rank:     p.rank,
		Platform: h.plat.Name,
		Base:     h.table.Base(),
		Updates:  updates,
	})
}

func (h *Home) handleJoin(c transport.Conn, p *peer, msg *wire.Message) error {
	if err := h.applyUpdates(p, msg); err != nil {
		if err == errMoved {
			return h.redirect(c, p.rank)
		}
		if err == errNotOwned {
			return h.sendForward(c, p, msg)
		}
		return err
	}
	h.mu.Lock()
	if h.snapshotted {
		// The successor owns the joined set now.
		h.mu.Unlock()
		return h.redirect(c, p.rank)
	}
	if !h.joined[p.rank] {
		h.joined[p.rank] = true
		h.repRecord(&wire.Replication{Event: wire.RepJoin, Rank: p.rank, Mutex: -1})
		// Close only on the transition: a thread whose JoinAck was lost
		// in flight replays its join after reconnecting, and a second
		// close would panic while h.mu is held — hanging every peer.
		if len(h.joined) == h.nthreads {
			close(h.done)
		}
	}
	h.mu.Unlock()
	h.opts.Trace.Record(h.node, trace.KindJoin, p.rank, -1, 0, "")
	h.repFlush()
	return h.send(c, &wire.Message{Kind: wire.KindJoinAck, Rank: p.rank})
}

// handleSync serves a KindSyncReq: the sharded acquire path's gather leg.
// After the lock-owner shard grants, the thread's proxy pulls outstanding
// pending updates from every OTHER shard with a sync round. Unlike barrier
// releases, the reply carries an explicit three-way ack: the drain commits
// only on KindSyncAck, so a reply lost to a severed shard connection is
// re-materialized for the replayed request.
func (h *Home) handleSync(c transport.Conn, p *peer, msg *wire.Message) error {
	updates, mark := h.peekPending(p)
	h.opts.Trace.Record(h.node, trace.KindLockGrant, p.rank, -1, wire.UpdateBytes(updates), "sync")
	if err := h.send(c, &wire.Message{
		Kind:     wire.KindSyncReply,
		Seq:      msg.Seq,
		Rank:     p.rank,
		Platform: h.plat.Name,
		Base:     h.table.Base(),
		Updates:  updates,
	}); err != nil {
		return err
	}
	ack, err := h.recvBudget(c, msg.DeadlineMS)
	if err != nil {
		return err
	}
	if ack.Kind != wire.KindSyncAck {
		return fmt.Errorf("dsd: expected sync-ack, got %v", ack.Kind)
	}
	h.commitPending(p, mark)
	return nil
}

// errMoved reports an update-bearing request arriving after the handoff
// snapshot; the caller answers with a redirect.
var errMoved = fmt.Errorf("dsd: home state already handed off")

// errNotOwned reports a request touching an entry (or lock) the directory
// maps to a sibling shard — the sender's cache is stale. The caller answers
// with a KindDirForward correction; nothing was applied.
var errNotOwned = fmt.Errorf("dsd: entry owned by another shard")

// sendForward answers a misdelivered request with directory corrections:
// the current owner (and mapping version) of every entry the request
// touched, plus the lock mapping for lock-addressed kinds. The sender
// updates its cache and re-routes — at most one extra hop per stale
// mapping, since the correction carries the authoritative owner.
func (h *Home) sendForward(c transport.Conn, p *peer, msg *wire.Message) error {
	if h.opts.Directory == nil {
		return fmt.Errorf("dsd: forward without a directory")
	}
	var dir []wire.DirEntry
	seen := make(map[int32]bool, len(msg.Updates))
	for i := range msg.Updates {
		e := msg.Updates[i].Entry
		if seen[e] {
			continue
		}
		seen[e] = true
		shard, ver := h.opts.Directory.EntryOwner(int(e))
		dir = append(dir, wire.DirEntry{Object: e, Shard: shard, Ver: ver})
	}
	switch msg.Kind {
	case wire.KindLockReq, wire.KindUnlockReq:
		shard, ver := h.opts.Directory.LockOwner(msg.Mutex)
		dir = append(dir, wire.DirEntry{Object: msg.Mutex, Lock: true, Shard: shard, Ver: ver})
	}
	h.opts.Trace.Record(h.node, trace.KindRedirect, p.rank, msg.Mutex, 0,
		fmt.Sprintf("dir-forward %v", msg.Kind))
	return h.send(c, &wire.Message{
		Kind:  wire.KindDirForward,
		Seq:   msg.Seq,
		Rank:  p.rank,
		Mutex: msg.Mutex,
		Dir:   dir,
	})
}

// acqResult is acquire's outcome: granted, refused because the home is
// frozen for handoff, or refused because the directory moved the mutex to
// a sibling shard.
type acqResult int

const (
	acqGranted acqResult = iota
	acqFrozen
	acqNotOwned
)

// acquire blocks until mutex idx is held by rank's thread, or reports
// why it cannot be (the freeze and ownership checks are atomic with the
// grant — a check-then-acquire would race the detach snapshot or a
// MigrateLockIf publish, both of which run under h.mu). A waiter enqueued
// before the freeze may still be granted afterwards via release handoff;
// the unbroken held chain keeps the snapshot waiting until that thread
// releases. A waiter can never be orphaned by lock migration: MigrateLockIf
// refuses to move a mutex with holders or waiters.
func (h *Home) acquire(idx, rank int32) acqResult {
	h.mu.Lock()
	if h.frozen {
		h.mu.Unlock()
		return acqFrozen
	}
	if !h.ownsLock(idx) {
		h.mu.Unlock()
		return acqNotOwned
	}
	ls := h.locks[idx]
	if ls == nil {
		ls = &lockState{}
		h.locks[idx] = ls
	}
	if !ls.held {
		ls.held = true
		ls.holder = rank
		h.repRecord(&wire.Replication{Event: wire.RepLock, Rank: rank, Mutex: idx})
		h.mu.Unlock()
		return acqGranted
	}
	if ls.holder == rank {
		// Replayed request from a reconnected holder whose grant was
		// lost in flight: re-grant rather than deadlocking behind
		// ourselves. Well-synchronized programs never double-lock, so
		// this branch only fires on replay.
		h.mu.Unlock()
		return acqGranted
	}
	ch := make(chan struct{})
	ls.waiters = append(ls.waiters, lockWaiter{ch: ch, rank: rank})
	h.mu.Unlock()
	<-ch // ownership handed off by release
	return acqGranted
}

// releaseIfHolder hands mutex idx to the oldest waiter (FIFO) or marks it
// free, but only when rank actually holds it — a replayed unlock from a
// reconnected thread must not release someone else's mutex.
func (h *Home) releaseIfHolder(idx, rank int32) {
	h.mu.Lock()
	ls := h.locks[idx]
	if ls != nil && ls.held && ls.holder == rank {
		h.releaseLocked(idx)
	}
	h.mu.Unlock()
}

// releaseLocked is the unconditional release with h.mu held.
func (h *Home) releaseLocked(idx int32) {
	ls := h.locks[idx]
	if ls == nil || !ls.held {
		return
	}
	if len(ls.waiters) > 0 {
		w := ls.waiters[0]
		ls.waiters = ls.waiters[1:]
		ls.holder = w.rank
		h.repRecord(&wire.Replication{Event: wire.RepLock, Rank: w.rank, Mutex: idx})
		close(w.ch)
		return
	}
	ls.held = false
	h.repRecord(&wire.Replication{Event: wire.RepUnlock, Rank: -1, Mutex: idx})
}

// arrive blocks in barrier idx until all nthreads threads have arrived.
// Arrivals are keyed by rank so a replayed arrival (reconnected thread
// re-sending its in-flight request) cannot double-count. reqID is the
// arriving request's idempotency id; when the generation opens it becomes
// the rank's release watermark. proceed is false when the home has handed
// off: quiescence guarantees no generation is in flight at the snapshot,
// so every post-snapshot arrival belongs to the successor.
func (h *Home) arrive(idx, rank int32, reqID uint64) (proceed bool, err error) {
	h.mu.Lock()
	if h.snapshotted {
		h.mu.Unlock()
		return false, nil
	}
	bs := h.barriers[idx]
	if bs == nil {
		bs = &barrierState{ranks: make(map[int32]uint64), gen: make(chan struct{})}
		h.barriers[idx] = bs
	}
	bs.ranks[rank] = reqID
	gen := bs.gen
	if len(bs.ranks) > h.nthreads {
		h.mu.Unlock()
		return false, fmt.Errorf("dsd: barrier %d over-subscribed", idx)
	}
	if len(bs.ranks) == h.nthreads {
		pairs := make([]wire.RepPair, 0, len(bs.ranks))
		for r, id := range bs.ranks {
			if id > h.released[r] {
				h.released[r] = id
			}
			pairs = append(pairs, wire.RepPair{Rank: r, Seq: id})
		}
		h.repRecord(&wire.Replication{Event: wire.RepBarrier, Rank: -1, Mutex: idx, Released: pairs})
		h.gens++
		if h.opts.CheckpointEvery > 0 && h.opts.CheckpointSink != nil &&
			h.gens%uint64(h.opts.CheckpointEvery) == 0 {
			// A barrier open is a consistent cut: every rank's updates for
			// the closing generation are applied and no release has been
			// sent yet, so the snapshot plus "resume at generation gens"
			// describes the whole cluster.
			if snap, err := h.snapshotInitLocked(); err == nil {
				h.opts.CheckpointSink(snap, h.gens)
			}
		}
		bs.ranks = make(map[int32]uint64)
		bs.gen = make(chan struct{})
		h.mu.Unlock()
		h.opts.Trace.Record(h.node, trace.KindBarrierOpen, -1, idx, 0, "")
		close(gen)
		return true, nil
	}
	h.mu.Unlock()
	<-gen
	return true, nil
}

// releasedMark returns rank's barrier-release watermark.
func (h *Home) releasedMark(rank int32) uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.released[rank]
}

// applyUpdates converts incoming updates to the home representation
// (receiver makes right, t_conv), applies them to the master copy, and
// queues the spans for every other thread.
func (h *Home) applyUpdates(p *peer, msg *wire.Message) error {
	if len(msg.Updates) == 0 {
		return nil
	}
	if err := msg.Validate(); err != nil {
		return err
	}
	type converted struct {
		span indextable.Span
		data []byte
	}
	convs := make([]converted, 0, len(msg.Updates))
	copt := convert.Options{Ptr: convert.PtrTranslate, Translator: h.table.Translator(p.table)}

	start := time.Now()
	var convBytes int
	for i := range msg.Updates {
		u := &msg.Updates[i]
		if int(u.Entry) >= h.table.Len() {
			return fmt.Errorf("dsd: update entry %d out of range", u.Entry)
		}
		e := h.table.Entry(int(u.Entry))
		if int(u.First)+int(u.Count) > e.Count {
			return fmt.Errorf("dsd: update %s[%d..%d) exceeds %d elements",
				e.Name, u.First, int(u.First)+int(u.Count), e.Count)
		}
		srcSize := len(u.Data) / int(u.Count)
		if want := p.plat.CSizeOf(e.CType); srcSize != want {
			return fmt.Errorf("dsd: update %s element size %d, want %d on %s",
				e.Name, srcSize, want, p.plat)
		}
		data, _, err := convert.ScalarRun(nil, h.plat, u.Data, p.plat, e.CType, int(u.Count), copt)
		if err != nil {
			return err
		}
		convBytes += len(u.Data)
		convs = append(convs, converted{
			span: indextable.Span{Entry: int(u.Entry), First: int(u.First), Count: int(u.Count)},
			data: data,
		})
	}
	convDur := time.Since(start)
	h.bd.AddBytes(stats.Conv, convDur, convBytes)
	if h.opts.Spans != nil && msg.Seq != 0 {
		h.opts.Spans.RecordCtx(h.node, telemetry.StageConv, p.rank, msg.Seq, msg.TraceID,
			telemetry.SpanID(msg.TraceID, h.node, telemetry.StageUnpack, p.rank), start, convDur, convBytes)
	}

	var applyStart time.Time
	if h.hm.enabled || h.opts.Spans != nil {
		applyStart = time.Now()
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.snapshotted {
		// The handoff state is already captured; accepting this update
		// would lose it. The successor must take it instead.
		return errMoved
	}
	if msg.Seq != 0 && h.applied[p.rank] >= msg.Seq {
		// Replayed request: a reconnected thread re-sent an unlock,
		// barrier, flush or join whose updates already landed. Applying
		// them twice would be harmless for the master (idempotent value
		// writes) but would re-queue spans; skip cleanly.
		return nil
	}
	// Ownership gate, atomic with migration (TransferEntry publishes under
	// both home mutexes): refuse the WHOLE request before any write lands,
	// so a partial application can never slip through a stale cache. The
	// check sits after the replay gate — entries this shard applied while
	// it owned them stay deduplicated even after they migrate away.
	for _, cv := range convs {
		if !h.ownsEntry(cv.span.Entry) {
			return errNotOwned
		}
	}
	h.dirty = true
	rep := make([]wire.Update, 0, len(convs))
	for _, cv := range convs {
		if err := h.master.RawWrite(h.table.SpanOffset(cv.span), cv.data); err != nil {
			return err
		}
		rep = append(rep, wire.Update{
			Entry: int32(cv.span.Entry), First: int32(cv.span.First), Count: int32(cv.span.Count),
			Data: cv.data,
		})
		for rank := range h.peers {
			if rank == p.rank {
				continue
			}
			h.pending[rank] = append(h.pending[rank], cv.span)
		}
		// Handoff-carried ranks that have not re-registered yet must
		// accrue updates too: their carried queue is their exact
		// catch-up, and missing this window would lose updates.
		for rank := range h.carried {
			if rank == p.rank {
				continue
			}
			if _, registered := h.peers[rank]; registered {
				continue
			}
			h.pending[rank] = append(h.pending[rank], cv.span)
		}
	}
	if msg.Seq > h.applied[p.rank] {
		h.applied[p.rank] = msg.Seq
	}
	h.repRecord(&wire.Replication{
		Event: wire.RepUpdate, Rank: p.rank, Mutex: -1,
		Updates: rep,
		Applied: []wire.RepPair{{Rank: p.rank, Seq: msg.Seq}},
		// Carry the release's trace context onto the durability tail: the
		// WAL fsync and standby-replication spans parent to our apply span.
		TraceID:    msg.TraceID,
		ParentSpan: telemetry.SpanID(msg.TraceID, h.node, telemetry.StageApply, p.rank),
	})
	if h.hm.enabled {
		h.hm.applies.Inc()
		h.hm.applyBytes.Observe(float64(convBytes))
	}
	if h.opts.Spans != nil && msg.Seq != 0 {
		h.opts.Spans.RecordCtx(h.node, telemetry.StageApply, p.rank, msg.Seq, msg.TraceID,
			telemetry.SpanID(msg.TraceID, h.node, telemetry.StageConv, p.rank), applyStart, time.Since(applyStart), convBytes)
	}
	return nil
}

// peekPending materializes the pending updates for one thread without
// draining the queue: coalesce spans, form tags (t_tag), copy master data
// (t_pack's gather half). The encode half of t_pack is charged in send.
// Under the invalidate protocol only the spans travel, as data-less
// records. The returned mark is the raw queue length covered by the peek;
// commitPending(mark) drains exactly that prefix once delivery is
// confirmed, so spans appended meanwhile survive and a lost grant or
// release can be re-materialized for the replayed request.
func (h *Home) peekPending(p *peer) ([]wire.Update, int) {
	h.mu.Lock()
	mark := len(h.pending[p.rank])
	// Entries that migrated away since their spans were queued must not be
	// materialized from our master copy — the new owner may have applied
	// newer releases, making ours stale. The new owner queued conservative
	// full-entry spans for every rank at transfer time, so dropping the
	// stale ones here loses nothing. The mark still covers the raw prefix:
	// the drop happens at materialization, never by editing the queue.
	kept := make([]indextable.Span, 0, mark)
	for _, s := range h.pending[p.rank] {
		if h.ownsEntry(s.Entry) {
			kept = append(kept, s)
		}
	}
	spans := indextable.MergeSpans(kept)
	if len(spans) == 0 {
		h.mu.Unlock()
		return nil, mark
	}
	if h.opts.Protocol == ProtocolInvalidate {
		h.mu.Unlock()
		updates := make([]wire.Update, len(spans))
		for i, s := range spans {
			updates[i] = wire.Update{Entry: int32(s.Entry), First: int32(s.First), Count: int32(s.Count)}
		}
		return updates, mark
	}
	spans = widenSpans(h.table, spans, h.opts.WholeArrayThreshold)

	tagStart := time.Now()
	tags := make([]string, len(spans))
	for i, s := range spans {
		tags[i] = h.table.SpanTag(s).String()
	}
	h.bd.Add(stats.Tag, time.Since(tagStart))

	packStart := time.Now()
	updates := make([]wire.Update, len(spans))
	var packBytes int
	for i, s := range spans {
		n := h.table.SpanBytes(s)
		buf := make([]byte, n)
		if _, err := h.master.Read(h.table.SpanOffset(s), n, buf); err != nil {
			// Spans come from our own table; a read failure is a bug.
			panic(fmt.Sprintf("dsd: master read of own span failed: %v", err))
		}
		packBytes += n
		updates[i] = wire.Update{
			Entry: int32(s.Entry),
			First: int32(s.First),
			Count: int32(s.Count),
			Tag:   tags[i],
			Data:  buf,
		}
	}
	h.bd.AddBytes(stats.Pack, time.Since(packStart), packBytes)
	h.mu.Unlock()
	return updates, mark
}

// commitPending drains the first mark raw entries of a rank's pending
// queue — the prefix a prior peekPending materialized — now that their
// delivery is confirmed (lock-ack received, or a later request arrived).
func (h *Home) commitPending(p *peer, mark int) {
	h.mu.Lock()
	q := h.pending[p.rank]
	if mark >= len(q) {
		h.pending[p.rank] = nil
	} else {
		h.pending[p.rank] = append([]indextable.Span(nil), q[mark:]...)
	}
	h.mu.Unlock()
}

// repRecord mirrors one mutation to every attached replicator; caller
// holds h.mu. Each replicator stamps its own Seq on the record, so all
// but the last receive a private copy.
func (h *Home) repRecord(rec *wire.Replication) {
	if len(h.reps) == 0 {
		return
	}
	rec.Epoch = h.epoch
	for _, r := range h.reps[:len(h.reps)-1] {
		cp := *rec
		r.Record(&cp)
	}
	h.reps[len(h.reps)-1].Record(rec)
}

// repFlush blocks until every mutation recorded so far is durable at each
// attached replicator (no-op without one). Callers must not hold h.mu.
func (h *Home) repFlush() {
	h.mu.Lock()
	reps := append([]Replicator(nil), h.reps...)
	h.mu.Unlock()
	for _, r := range reps {
		r.Flush()
	}
}

// snapshotInitLocked captures the home's full state as a RepInit record —
// master image plus lock, join and watermark state. Caller holds h.mu, so
// the snapshot is a release-consistent cut.
func (h *Home) snapshotInitLocked() (*wire.Replication, error) {
	img := make([]byte, h.layout.Size)
	if _, err := h.master.Read(0, h.layout.Size, img); err != nil {
		return nil, err
	}
	init := &wire.Replication{
		Event:    wire.RepInit,
		Rank:     -1,
		Mutex:    -1,
		Platform: h.plat.Name,
		Base:     h.table.Base(),
		Image:    img,
		Tag:      tag.FromLayout(h.layout).String(),
		Dirty:    h.dirty,
		Proto:    uint8(h.opts.Protocol),
		Nthreads: int32(h.nthreads),
		Epoch:    h.epoch,
	}
	for idx, ls := range h.locks {
		if ls.held {
			init.Held = append(init.Held, wire.RepPair{Rank: ls.holder, Seq: uint64(idx)})
		}
	}
	for rank := range h.joined {
		init.Joined = append(init.Joined, rank)
	}
	for rank, seq := range h.applied {
		init.Applied = append(init.Applied, wire.RepPair{Rank: rank, Seq: seq})
	}
	for rank, seq := range h.released {
		init.Released = append(init.Released, wire.RepPair{Rank: rank, Seq: seq})
	}
	return init, nil
}

// StartReplication attaches a replicator and hands it a RepInit bootstrap
// record — full master image plus lock, join and watermark state — under
// the home mutex, so no mutation can slip between the snapshot and the
// stream start. Multiple replicators may attach (a standby stream and a
// write-ahead log, say); each sees the full record sequence from its own
// RepInit on.
func (h *Home) StartReplication(r Replicator) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	init, err := h.snapshotInitLocked()
	if err != nil {
		return err
	}
	h.reps = append(h.reps, r)
	r.Record(init)
	return nil
}

// widenSpans applies the whole-array transfer rule: a span covering at
// least threshold of its entry grows to the full entry.
func widenSpans(t *indextable.Table, spans []indextable.Span, threshold float64) []indextable.Span {
	if threshold <= 0 {
		return spans
	}
	widened := false
	for i, s := range spans {
		e := t.Entry(s.Entry)
		if e.Count > 1 && float64(s.Count) >= threshold*float64(e.Count) && s.Count < e.Count {
			spans[i] = indextable.Span{Entry: s.Entry, First: 0, Count: e.Count}
			widened = true
		}
	}
	if widened {
		return indextable.MergeSpans(spans)
	}
	return spans
}

// send encodes (t_pack) and transmits a message, stamping the home's
// fencing epoch so peers can detect a stale incarnation.
func (h *Home) send(c transport.Conn, m *wire.Message) error {
	m.Epoch = h.epoch
	m.Shard = h.opts.Shard
	start := time.Now()
	frame, err := wire.Encode(m)
	if err != nil {
		return err
	}
	h.bd.Add(stats.Pack, time.Since(start))
	h.hm.frameSent.Observe(float64(len(frame)))
	if err := c.SendFrame(frame); err != nil {
		if errors.Is(err, transport.ErrQueueFull) {
			h.hm.shed.Inc()
		}
		return err
	}
	return nil
}

// QueueStat is one peer's bounded-outbound-queue snapshot for /stats.
type QueueStat struct {
	Rank      int32
	Depth     int
	OldestAge time.Duration
	Enqueued  uint64
	Sent      uint64
	Shed      uint64
}

// QueueStats snapshots every connected peer's outbound queue, rank order.
// Empty when the deadline plane is off (no queues exist).
func (h *Home) QueueStats() []QueueStat {
	now := time.Now()
	h.lmu.Lock()
	out := make([]QueueStat, 0, len(h.queues))
	for rank, q := range h.queues {
		enq, sent := q.Progress()
		out = append(out, QueueStat{
			Rank: rank, Depth: q.Depth(), OldestAge: q.OldestAge(now),
			Enqueued: enq, Sent: sent, Shed: q.Shed(),
		})
	}
	h.lmu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Rank < out[j].Rank })
	return out
}

// DeadlineExceeded returns how many budget-bounded home-side waits expired
// on a requester's stamped deadline budget (0 with the plane unused).
func (h *Home) DeadlineExceeded() uint64 { return h.deadlineHits.Load() }

// recv receives and decodes (t_unpack) a message. Update-bearing
// requests get an unpack span against their (rank, seq) release id —
// the home-side continuation of the sender's index/tag/pack/ship spans.
func (h *Home) recv(c transport.Conn) (*wire.Message, error) {
	frame, err := c.RecvFrame()
	if err != nil {
		return nil, err
	}
	return h.decode(frame)
}

// recvBudget receives like recv but bounds the wait by the peer-supplied
// relative budget (the request's DeadlineMS): the home must not block its
// stub longer than the peer is willing to wait, or a vanished peer pins
// home-side state (a granted lock, an undrained pending queue) for the
// whole TCP timeout. Zero budget means the peer runs undeadlined — wait
// indefinitely, the seed behavior.
func (h *Home) recvBudget(c transport.Conn, budgetMS uint32) (*wire.Message, error) {
	if budgetMS == 0 {
		return h.recv(c)
	}
	frame, err := transport.RecvFrameDeadline(c, time.Now().Add(time.Duration(budgetMS)*time.Millisecond))
	if err != nil {
		if errors.Is(err, transport.ErrDeadline) {
			h.deadlineHits.Add(1)
			h.hm.deadlines.Inc()
		}
		return nil, err
	}
	return h.decode(frame)
}

// decode is recv's second half: unpack a received frame and record its
// telemetry.
func (h *Home) decode(frame []byte) (*wire.Message, error) {
	h.hm.frameRecv.Observe(float64(len(frame)))
	start := time.Now()
	m, err := wire.Decode(frame)
	if err != nil {
		return nil, err
	}
	unpackDur := time.Since(start)
	h.bd.AddBytes(stats.Unpack, unpackDur, wire.UpdateBytes(m.Updates))
	if h.opts.Spans != nil && m.Seq != 0 && len(m.Updates) > 0 {
		// Parent to the sender's ship span, carried on the frame; the rest
		// of the home-side chain (conv, apply) hangs off this span.
		h.opts.Spans.RecordCtx(h.node, telemetry.StageUnpack, m.Rank, m.Seq, m.TraceID, m.ParentSpan, start, unpackDur, wire.UpdateBytes(m.Updates))
	}
	return m, nil
}
