package dsd

import (
	"testing"

	"hetdsm/internal/platform"
)

// Synchronization round-trip costs of the DSD primitives themselves.

func benchLockUnlock(b *testing.B, homeP, threadP *platform.Platform, dirty int) {
	h, err := NewHome(testGThV(), homeP, 1, DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	th, err := h.LocalThread(0, threadP, DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	arr := th.Globals().MustVar("A")
	vals := make([]int64, dirty)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := th.Lock(0); err != nil {
			b.Fatal(err)
		}
		for j := range vals {
			vals[j] = int64(i + j)
		}
		if dirty > 0 {
			if err := arr.SetInts(0, vals); err != nil {
				b.Fatal(err)
			}
		}
		if err := th.Unlock(0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLockUnlockEmpty(b *testing.B) {
	benchLockUnlock(b, platform.LinuxX86, platform.LinuxX86, 0)
}

func BenchmarkLockUnlockHomogeneousUpdate(b *testing.B) {
	benchLockUnlock(b, platform.LinuxX86, platform.LinuxX86, 64)
}

func BenchmarkLockUnlockHeterogeneousUpdate(b *testing.B) {
	benchLockUnlock(b, platform.SolarisSPARC, platform.LinuxX86, 64)
}

func BenchmarkBarrierThreeThreads(b *testing.B) {
	h, err := NewHome(testGThV(), platform.LinuxX86, 3, DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	plats := []*platform.Platform{platform.LinuxX86, platform.SolarisSPARC, platform.LinuxX86}
	threads := make([]*Thread, 3)
	for i, p := range plats {
		th, err := h.LocalThread(int32(i), p, DefaultOptions())
		if err != nil {
			b.Fatal(err)
		}
		threads[i] = th
	}
	b.ResetTimer()
	errs := make(chan error, 3)
	for _, th := range threads {
		go func(th *Thread) {
			for i := 0; i < b.N; i++ {
				if err := th.Barrier(0); err != nil {
					errs <- err
					return
				}
			}
			errs <- nil
		}(th)
	}
	for i := 0; i < 3; i++ {
		if err := <-errs; err != nil {
			b.Fatal(err)
		}
	}
}
