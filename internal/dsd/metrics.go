package dsd

import (
	"time"

	"hetdsm/internal/telemetry"
	"hetdsm/internal/wire"
)

// threadMetrics holds the thread-side metric handles, resolved once at
// construction. With Options.Metrics nil every handle is nil and every
// record is a no-op; enabled additionally gates the time.Now calls so a
// disabled thread takes no extra timestamps on the hot path.
type threadMetrics struct {
	enabled     bool
	lockAcquire *telemetry.Histogram
	barrierWait *telemetry.Histogram
	releaseRTT  *telemetry.Histogram
	diffBytes   *telemetry.Histogram
	frameSent   *telemetry.Histogram
	frameRecv   *telemetry.Histogram
	locks       *telemetry.Counter
	barriers    *telemetry.Counter
	releases    *telemetry.Counter
	deadlines   *telemetry.Counter
}

func newThreadMetrics(r *telemetry.Registry) threadMetrics {
	return threadMetrics{
		enabled:     r != nil,
		lockAcquire: r.Histogram("dsm_lock_acquire_seconds", "MTh_lock latency: request to grant, including queue wait and update transfer"),
		barrierWait: r.Histogram("dsm_barrier_wait_seconds", "MTh_barrier latency: arrival to release, including peers' compute"),
		releaseRTT:  r.Histogram("dsm_release_roundtrip_seconds", "release (unlock/flush/join) round-trip: updates shipped until ack"),
		diffBytes:   r.Histogram("dsm_release_diff_bytes", "update payload bytes shipped per release"),
		frameSent:   r.Histogram("dsm_frame_sent_bytes", "encoded frame sizes transmitted by threads"),
		frameRecv:   r.Histogram("dsm_frame_recv_bytes", "encoded frame sizes received by threads"),
		locks:       r.Counter("dsm_locks_total", "MTh_lock acquisitions"),
		barriers:    r.Counter("dsm_barriers_total", "MTh_barrier arrivals"),
		releases:    r.Counter("dsm_releases_total", "releases shipped (unlock, barrier, flush, join)"),
		deadlines:   r.Counter("dsm_op_deadline_exceeded", "operation attempts that hit their OpTimeout deadline and retried through a fresh connection"),
	}
}

// homeMetrics is the home-side counterpart of threadMetrics.
type homeMetrics struct {
	enabled     bool
	lockWait    *telemetry.Histogram
	barrierWait *telemetry.Histogram
	applyBytes  *telemetry.Histogram
	frameSent   *telemetry.Histogram
	frameRecv   *telemetry.Histogram
	applies     *telemetry.Counter
	deadlines   *telemetry.Counter
	shed        *telemetry.Counter
}

func newHomeMetrics(r *telemetry.Registry) homeMetrics {
	return homeMetrics{
		enabled:     r != nil,
		lockWait:    r.Histogram("dsm_home_lock_acquire_seconds", "time a lock request waited at the home before its grant"),
		barrierWait: r.Histogram("dsm_home_barrier_wait_seconds", "time a barrier arrival waited for its generation to open"),
		applyBytes:  r.Histogram("dsm_home_apply_bytes", "update payload bytes applied to the master copy per release"),
		frameSent:   r.Histogram("dsm_home_frame_sent_bytes", "encoded frame sizes transmitted by the home"),
		frameRecv:   r.Histogram("dsm_home_frame_recv_bytes", "encoded frame sizes received by the home"),
		applies:     r.Counter("dsm_home_applies_total", "update batches applied to the master copy"),
		deadlines:   r.Counter("dsm_home_op_deadline_exceeded", "budget-bounded waits (grant-ack, sync-ack) that expired at the home"),
		shed:        r.Counter("dsm_home_frames_shed_total", "outbound frames shed by full per-peer queues (peer retries idempotently)"),
	}
}

// relStages captures the sender-side pipeline timings of one release;
// collectUpdates fills it (the stage clocks already run for the Eq. 1
// stats) and the caller emits spans once the request id is known.
type relStages struct {
	indexStart time.Time
	indexDur   time.Duration
	tagStart   time.Time
	tagDur     time.Duration
	packStart  time.Time
	packDur    time.Duration
	bytes      int
}

// emitReleaseSpans records the sender-side spans of one release, chained
// index → tag → pack → ship under the message's trace id; the ship span's
// id equals the ParentSpan the send stamped on the wire, so receiver-side
// spans attach to it without any id exchange.
func (t *Thread) emitReleaseSpans(m *wire.Message, st relStages, shipStart time.Time, shipDur time.Duration) {
	sl := t.opts.Spans
	if sl == nil || m.Seq == 0 {
		return
	}
	node := t.traceName()
	tid := m.TraceID
	sl.RecordCtx(node, telemetry.StageIndex, t.rank, m.Seq, tid, 0, st.indexStart, st.indexDur, 0)
	parent := telemetry.SpanID(tid, node, telemetry.StageIndex, t.rank)
	if !st.tagStart.IsZero() {
		sl.RecordCtx(node, telemetry.StageTag, t.rank, m.Seq, tid, parent, st.tagStart, st.tagDur, 0)
		parent = telemetry.SpanID(tid, node, telemetry.StageTag, t.rank)
		sl.RecordCtx(node, telemetry.StagePack, t.rank, m.Seq, tid, parent, st.packStart, st.packDur, st.bytes)
		parent = telemetry.SpanID(tid, node, telemetry.StagePack, t.rank)
	}
	sl.RecordCtx(node, telemetry.StageShip, t.rank, m.Seq, tid, parent, shipStart, shipDur, st.bytes)
}

// observesReleases reports whether the thread wants release round-trip
// timestamps (metrics or spans enabled).
func (t *Thread) observesReleases() bool {
	return t.tm.enabled || t.opts.Spans != nil
}

// finishRelease records the metrics and spans of one completed release.
func (t *Thread) finishRelease(m *wire.Message, st relStages, shipStart time.Time) {
	d := time.Since(shipStart)
	t.tm.releases.Inc()
	t.tm.releaseRTT.Observe(d.Seconds())
	t.tm.diffBytes.Observe(float64(st.bytes))
	t.emitReleaseSpans(m, st, shipStart, d)
}
