package dsd

import (
	"fmt"
	"testing"
	"time"

	"hetdsm/internal/leakcheck"
	"hetdsm/internal/platform"
	"hetdsm/internal/transport"
)

// The chaos e2e deployment: a home on a real TCP listener, rank 0 dialing
// straight TCP, rank 1 dialing through its own Delayed wrapper so the test
// can freeze exactly that rank's established connection. Fresh dials bypass
// the freeze — a wedged connection is a per-socket fault (full socket
// buffer, dead NAT entry), so redial-and-replay recovers where waiting
// cannot.
type stallCluster struct {
	home    *Home
	ths     [2]*Thread
	delayed *transport.Delayed
}

func newStallCluster(t *testing.T, opTimeout time.Duration) *stallCluster {
	t.Helper()
	opts := DefaultOptions()
	opts.StickyLocks = true
	opts.OpTimeout = opTimeout

	h, err := NewHome(testGThV(), platform.LinuxX86, 2, opts)
	if err != nil {
		t.Fatal(err)
	}
	var tcp transport.TCP
	l, err := tcp.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go h.Serve(l)

	bo := transport.Backoff{
		Base: time.Millisecond, Max: 10 * time.Millisecond,
		Factor: 2, Jitter: 0.3, Attempts: 2000, Seed: 1,
	}
	c := &stallCluster{home: h, delayed: transport.NewDelayed(tcp, transport.DelayProfile{})}
	c.ths[0], err = DialHABackoff(tcp, []string{l.Addr()}, platform.LinuxX86, 0, testGThV(), opts, bo)
	if err != nil {
		t.Fatal(err)
	}
	c.ths[1], err = DialHABackoff(c.delayed, []string{l.Addr()}, platform.SolarisSPARC, 1, testGThV(), opts, bo)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func (c *stallCluster) close() {
	for _, th := range c.ths {
		th.Close()
	}
	c.home.Close()
}

// The workload is a 4x4 distributed matmul over the shared structure:
// matrix A in "A"[0..15], matrix B in "A"[16..31], result C in "B"[0..15].
// Rank r computes rows 2r and 2r+1, each row inside Lock(0) so the inputs
// arrive with the grant and the row ships with the release.
const mmN = 4

func mmA(i, j int) int64 { return int64(i*mmN + j + 1) }
func mmB(i, j int) int64 { return int64((i + 1) * (j + 2)) }

func mmExpected() [mmN][mmN]int64 {
	var want [mmN][mmN]int64
	for i := 0; i < mmN; i++ {
		for j := 0; j < mmN; j++ {
			for k := 0; k < mmN; k++ {
				want[i][j] += mmA(i, k) * mmB(k, j)
			}
		}
	}
	return want
}

// worker drives one rank's share of the matmul. onFirstCS, when non-nil,
// runs inside the rank's first row critical section, after the lock is held
// and before anything is computed — the stall hook.
func (c *stallCluster) worker(rank int, onFirstCS func()) error {
	th := c.ths[rank]
	g := th.Globals()
	if rank == 0 {
		if err := th.Lock(0); err != nil {
			return fmt.Errorf("rank 0 init lock: %w", err)
		}
		in := g.MustVar("A")
		for i := 0; i < mmN; i++ {
			for j := 0; j < mmN; j++ {
				if err := in.SetInt(i*mmN+j, mmA(i, j)); err != nil {
					return err
				}
				if err := in.SetInt(16+i*mmN+j, mmB(i, j)); err != nil {
					return err
				}
			}
		}
		if err := th.Unlock(0); err != nil {
			return fmt.Errorf("rank 0 init unlock: %w", err)
		}
	}
	if err := th.Barrier(0); err != nil {
		return fmt.Errorf("rank %d barrier 0: %w", rank, err)
	}
	for row := rank * 2; row < rank*2+2; row++ {
		if err := th.Lock(0); err != nil {
			return fmt.Errorf("rank %d row %d lock: %w", rank, row, err)
		}
		if onFirstCS != nil {
			onFirstCS()
			onFirstCS = nil
		}
		in, out := g.MustVar("A"), g.MustVar("B")
		for j := 0; j < mmN; j++ {
			var sum int64
			for k := 0; k < mmN; k++ {
				av, err := in.Int(row*mmN + k)
				if err != nil {
					return err
				}
				bv, err := in.Int(16 + k*mmN + j)
				if err != nil {
					return err
				}
				sum += av * bv
			}
			if err := out.SetInt(row*mmN+j, sum); err != nil {
				return err
			}
		}
		if err := th.Unlock(0); err != nil {
			return fmt.Errorf("rank %d row %d unlock: %w", rank, row, err)
		}
	}
	if err := th.Barrier(1); err != nil {
		return fmt.Errorf("rank %d barrier 1: %w", rank, err)
	}
	if rank == 0 {
		if err := th.Lock(0); err != nil {
			return fmt.Errorf("rank 0 verify lock: %w", err)
		}
		out := g.MustVar("B")
		want := mmExpected()
		for i := 0; i < mmN; i++ {
			for j := 0; j < mmN; j++ {
				got, err := out.Int(i*mmN + j)
				if err != nil {
					return err
				}
				if got != want[i][j] {
					return fmt.Errorf("C[%d][%d] = %d, want %d", i, j, got, want[i][j])
				}
			}
		}
		if err := th.Unlock(0); err != nil {
			return fmt.Errorf("rank 0 verify unlock: %w", err)
		}
	}
	return th.Join()
}

// run starts both workers and freezes rank 1's established connection while
// it holds the mutex mid-critical-section. It returns the workers' result
// channel (2 sends).
func (c *stallCluster) run() chan error {
	entered := make(chan struct{})
	release := make(chan struct{})
	done := make(chan error, 2)
	go func() { done <- c.worker(0, nil) }()
	go func() {
		done <- c.worker(1, func() {
			close(entered)
			<-release
		})
	}()
	<-entered
	c.delayed.StallConns()
	close(release)
	return done
}

// The tentpole acceptance test: with the deadline plane on, the matmul
// completes over real TCP even though rank 1's connection is frozen — for
// longer than the op deadline — while it holds the mutex. The unlock hits
// its deadline, severs the wedged socket, redials a clean one, re-registers
// and replays under its original sequence number; the home's idempotency
// watermarks apply it once, rank 0 (whose lock wait also rides out deadline
// expiries) gets the grant, and the result verifies.
func TestStalledRankCompletesWithDeadlinePlane(t *testing.T) {
	defer leakcheck.Check(t)()
	c := newStallCluster(t, 150*time.Millisecond)
	defer c.close()

	done := c.run()
	for i := 0; i < 2; i++ {
		select {
		case err := <-done:
			if err != nil {
				t.Fatalf("worker: %v", err)
			}
		case <-time.After(30 * time.Second):
			t.Fatal("matmul did not complete with the deadline plane on")
		}
	}
	if c.ths[1].DeadlineExceeded() == 0 {
		t.Error("stalled rank never hit its op deadline")
	}
	if c.ths[1].Reconnects() == 0 {
		t.Error("stalled rank never redialed off the wedged socket")
	}
}

// The control run: the identical scenario with the deadline plane disabled
// wedges — rank 1's unlock blocks forever on the frozen socket and rank 0
// waits forever for the grant. Resuming the connection afterwards lets the
// same run drain and verify, proving the wedge was the frozen socket and
// nothing else in the harness.
func TestStalledRankDeadlocksWithoutDeadlinePlane(t *testing.T) {
	defer leakcheck.Check(t)()
	c := newStallCluster(t, 0)
	defer c.close()

	done := c.run()
	select {
	case err := <-done:
		t.Fatalf("run completed without the deadline plane (err=%v) — the stall did not wedge", err)
	case <-time.After(2 * time.Second):
	}

	c.delayed.Resume()
	for i := 0; i < 2; i++ {
		select {
		case err := <-done:
			if err != nil {
				t.Fatalf("worker after resume: %v", err)
			}
		case <-time.After(30 * time.Second):
			t.Fatal("matmul did not complete after resume")
		}
	}
	if got := c.ths[1].DeadlineExceeded(); got != 0 {
		t.Errorf("deadline plane disabled but %d expiries counted", got)
	}
}
